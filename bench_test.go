package parmcts_test

// One benchmark per table/figure of the paper's evaluation (Section 5),
// plus ablation benches for the design choices DESIGN.md calls out. The
// figure benchmarks print their stats.Table once (on the first iteration)
// so `go test -bench=.` both times the generators and records the data
// behind EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/experiments"
	"github.com/parmcts/parmcts/internal/game/games"
	"github.com/parmcts/parmcts/internal/game/gomoku"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/perfmodel"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/simsched"
	"github.com/parmcts/parmcts/internal/stats"
	"github.com/parmcts/parmcts/internal/tree"
)

var printOnce sync.Map

func printFirst(b *testing.B, key string, tb *stats.Table) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Logf("\n%s", tb.String())
	}
}

// BenchmarkPhaseSplit reproduces the Section 2.1 claim (tree-based search
// dominates serial DNN-MCTS runtime) on a real network; each iteration is
// one profiled 60-playout move on a 9x9 board.
func BenchmarkPhaseSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, evalShare := experiments.PhaseSplit(9, 60)
		if i == 0 {
			printFirst(b, "phase", tb)
			b.Logf("DNN-evaluation share of move time: %.1f%%", evalShare*100)
		}
	}
}

// BenchmarkFigure3BatchSweep regenerates Figure 3 (per-iteration latency of
// the local-tree accelerator configuration across batch sizes B).
func BenchmarkFigure3BatchSweep(b *testing.B) {
	p := experiments.PaperShapedParams(1600)
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure3BatchSweep(p, []int{16, 32, 64})
		if i == 0 {
			printFirst(b, "fig3", tb)
			printFirst(b, "fig3opt", experiments.OptimalBatch(p, []int{16, 32, 64}))
		}
	}
}

// BenchmarkFigure4LatencyCPU regenerates Figure 4 (CPU-only iteration
// latency: local vs shared vs adaptive across N).
func BenchmarkFigure4LatencyCPU(b *testing.B) {
	p := experiments.PaperShapedParams(1600)
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure4LatencyCPU(p, experiments.DefaultWorkerCounts)
		if i == 0 {
			printFirst(b, "fig4", tb)
		}
	}
}

// BenchmarkFigure5LatencyGPU regenerates Figure 5 (CPU-GPU iteration
// latency with batched inference) and the headline speedup table.
func BenchmarkFigure5LatencyGPU(b *testing.B) {
	p := experiments.PaperShapedParams(1600)
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure5LatencyGPU(p, experiments.DefaultWorkerCounts)
		if i == 0 {
			printFirst(b, "fig5", tb)
			printFirst(b, "headline", experiments.HeadlineSpeedups(p, experiments.DefaultWorkerCounts))
		}
	}
}

// BenchmarkFigure6Throughput regenerates Figure 6 (training throughput
// under optimal configurations) at the laptop scale.
func BenchmarkFigure6Throughput(b *testing.B) {
	sc := experiments.DefaultTrainingScale()
	sc.Game = "gomoku:7"
	sc.Playouts = 24
	sc.Episodes = 1
	sc.SGDIterations = 2
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure6Throughput(sc, []int{1, 2, 4}, []bool{false, true})
		if i == 0 {
			printFirst(b, "fig6", tb)
		}
	}
}

// BenchmarkFigure7Loss regenerates Figure 7 (loss over wall-clock time for
// several worker counts) at the laptop scale.
func BenchmarkFigure7Loss(b *testing.B) {
	sc := experiments.DefaultTrainingScale()
	sc.Game = "gomoku:7"
	sc.Playouts = 24
	sc.Episodes = 2
	sc.SGDIterations = 2
	for i := 0; i < b.N; i++ {
		tb := experiments.Figure7Loss(sc, []int{1, 2, 4}, false)
		if i == 0 {
			printFirst(b, "fig7", tb)
		}
	}
}

// BenchmarkFindMinVvsLinear is the Algorithm 4 ablation: the O(log N)
// V-sequence search against the naive O(N) sweep over simulated test runs.
func BenchmarkFindMinVvsLinear(b *testing.B) {
	p := experiments.PaperShapedParams(1600)
	probe := func(bb int) time.Duration {
		return simsched.LocalAccel(p.Workload, p.Accel, 64, bb).PerIteration
	}
	b.Run("Alg4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perfmodel.FindMinV(1, 64, probe)
		}
	})
	b.Run("Linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			perfmodel.ArgminLinear(1, 64, probe)
		}
	})
}

// BenchmarkEngineMoveReal times one real 200-playout move per engine on a
// 9x9 board with a cheap evaluator — the wall-clock counterpart of the
// simulated latency figures (note: host-core-count bound).
func BenchmarkEngineMoveReal(b *testing.B) {
	g := gomoku.NewSized(9)
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 200
	eval := &evaluate.Random{Latency: 50 * time.Microsecond}

	b.Run("serial", func(b *testing.B) {
		e := mcts.NewSerial(cfg, eval)
		dist := make([]float32, g.NumActions())
		st := g.NewInitial()
		for i := 0; i < b.N; i++ {
			e.Search(st, dist)
		}
	})
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("shared-%d", n), func(b *testing.B) {
			e := mcts.NewShared(cfg, n, eval)
			dist := make([]float32, g.NumActions())
			st := g.NewInitial()
			for i := 0; i < b.N; i++ {
				e.Search(st, dist)
			}
		})
		b.Run(fmt.Sprintf("local-%d", n), func(b *testing.B) {
			pool := evaluate.NewPool(eval, n)
			defer pool.Close()
			e := mcts.NewLocal(cfg, pool, n)
			dist := make([]float32, g.NumActions())
			st := g.NewInitial()
			for i := 0; i < b.N; i++ {
				e.Search(st, dist)
			}
		})
	}
}

// BenchmarkAblationInterconnect times the accelerator-generality sweep
// (conclusion claim): re-running Algorithm 4 across interconnect classes.
func BenchmarkAblationInterconnect(b *testing.B) {
	p := experiments.PaperShapedParams(1600)
	for i := 0; i < b.N; i++ {
		tb := experiments.AblationInterconnect(p, 64)
		if i == 0 {
			printFirst(b, "interconnect", tb)
		}
	}
}

// BenchmarkAblationBaselines times the related-work comparison (shared /
// local / root-parallel / leaf-parallel at equal budgets).
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.AblationBaselines(games.MustNew("gomoku:9"), 4, 100)
		if i == 0 {
			printFirst(b, "baselines", tb)
		}
	}
}

// BenchmarkVirtualLossModes is the virtual-loss ablation (constant VL vs
// WU-UCT-style unobserved counting) on the shared engine.
func BenchmarkVirtualLossModes(b *testing.B) {
	g := gomoku.NewSized(9)
	for name, mode := range map[string]tree.VirtualLossMode{"constant": tree.VLConstant, "unobserved": tree.VLUnobserved} {
		b.Run(name, func(b *testing.B) {
			cfg := mcts.DefaultConfig()
			cfg.Playouts = 200
			cfg.Tree.VLMode = mode
			e := mcts.NewShared(cfg, 4, &evaluate.Random{})
			dist := make([]float32, g.NumActions())
			st := g.NewInitial()
			for i := 0; i < b.N; i++ {
				e.Search(st, dist)
			}
		})
	}
}

// benchTreeReuse plays the opening of a Gomoku self-play game and measures
// the evaluation demand per move with persistent search sessions on or off:
// warm trees credit the played child's retained visits against the playout
// budget, so every retained visit is a DNN evaluation the move does not
// re-buy. The exploitation-leaning CPuct concentrates visits on the played
// child the way a trained prior does, and the modelled evaluation latency
// makes the saved evaluations visible in wall-clock. playouts/s counts
// budget-equivalents delivered per second — retained visits are playouts
// the move did not have to run. The fresh/warm pair backs
// BENCH_tree_reuse.json.
func benchTreeReuse(b *testing.B, reuse bool) {
	g := gomoku.NewSized(7)
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 800
	cfg.Tree.CPuct = 0.8
	cfg.ReuseTree = reuse
	cfg.Seed = 5
	const moves = 12
	var evals, playoutsRun, reused, movesPlayed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := mcts.NewSerial(cfg, &evaluate.Random{Latency: 20 * time.Microsecond})
		st := g.NewInitial()
		dist := make([]float32, g.NumActions())
		for mv := 0; mv < moves && !st.Terminal(); mv++ {
			s := e.Search(st, dist)
			evals += s.Evaluations
			playoutsRun += s.Playouts
			reused += s.ReusedVisits
			movesPlayed++
			best, bestV := 0, float32(-1)
			for a, p := range dist {
				if p > bestV {
					best, bestV = a, p
				}
			}
			st.Play(best)
			e.Advance(best)
		}
		e.Close()
	}
	b.ReportMetric(float64(evals)/float64(movesPlayed), "evals/move")
	b.ReportMetric(float64(reused)/float64(reused+playoutsRun), "reuse-frac")
	b.ReportMetric(float64(playoutsRun+reused)/b.Elapsed().Seconds(), "playouts/s")
}

func BenchmarkTreeReuseGomokuFresh(b *testing.B) { benchTreeReuse(b, false) }
func BenchmarkTreeReuseGomokuWarm(b *testing.B)  { benchTreeReuse(b, true) }

// benchForwardBatch times nn.ForwardBatch on the paper's Gomoku network at
// one batch size; BenchmarkForwardBatch{1,8,32} back the throughput claims
// in BENCH_batched_inference.json.
func benchForwardBatch(b *testing.B, batch int) {
	r := rng.New(7)
	net := nn.MustNew(nn.GomokuConfig(4, 15, 15, 225), r)
	ws := nn.NewBatchWorkspace(net, batch)
	inputs := make([][]float32, batch)
	policies := make([][]float32, batch)
	values := make([]float64, batch)
	for i := range inputs {
		in := make([]float32, net.InputLen())
		for j := range in {
			if r.Float32() < 0.1 {
				in[j] = 1
			}
		}
		inputs[i] = in
		policies[i] = make([]float32, 225)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(ws, inputs, policies, values)
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkForwardBatch1(b *testing.B)  { benchForwardBatch(b, 1) }
func BenchmarkForwardBatch8(b *testing.B)  { benchForwardBatch(b, 8) }
func BenchmarkForwardBatch32(b *testing.B) { benchForwardBatch(b, 32) }

// BenchmarkCacheContention compares the lock-striped evaluation cache
// against a single-mutex (shards=1) configuration under concurrent
// shared-tree-style access: 8 goroutines, hot working set, cheap inner
// evaluator so lock handoff dominates.
func BenchmarkCacheContention(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{{"global", 1}, {"sharded64", 64}} {
		b.Run(cfg.name, func(b *testing.B) {
			c := evaluate.NewCachedSharded(&evaluate.Random{}, 4096, cfg.shards)
			const workers = 8
			inputs := make([][]float32, 256)
			r := rng.New(3)
			for i := range inputs {
				in := make([]float32, 64)
				for j := range in {
					if r.Float32() < 0.3 {
						in[j] = 1
					}
				}
				inputs[i] = in
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := (b.N + workers - 1) / workers
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					pol := make([]float32, 9)
					for i := 0; i < per; i++ {
						c.Evaluate(inputs[(seed*31+i)%len(inputs)], pol)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
