package parmcts_test

// End-to-end integration: the full life of a DNN-MCTS deployment — design
// configuration, adaptive engine construction, self-play training
// (Algorithm 1), candidate gating, and model serialisation — exercised in
// one flow across module boundaries.

import (
	"bytes"
	"testing"

	"github.com/parmcts/parmcts/internal/adaptive"
	"github.com/parmcts/parmcts/internal/arena"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/gomoku"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/train"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	const board = 7
	g := gomoku.NewSized(board)
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(1))
	baseline := net.Clone() // frozen pre-training snapshot for the gate

	// 1. Design configuration picks a scheme for this host and budget.
	search := mcts.DefaultConfig()
	search.Playouts = 32
	search.DirichletAlpha = 0.3
	search.NoiseFrac = 0.25
	eng, err := adaptive.Configure(g, adaptive.Options{
		Search:          search,
		Workers:         2,
		Platform:        adaptive.PlatformCPU,
		Evaluator:       evaluate.NewCached(evaluate.NewNN(net), 1<<14),
		ProfilePlayouts: 100,
		DNNProfileIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// 2. Train through the Algorithm 1 loop.
	tr := train.NewTrainer(g, eng, net, train.TrainerConfig{
		Episodes:      2,
		SGDIterations: 3,
		BatchSize:     32,
		LR:            0.02,
		Momentum:      0.9,
		WeightDecay:   1e-4,
		TempMoves:     4,
		Augmenter:     train.GomokuAugmenter{Size: board, Planes: c},
		Seed:          2,
	})
	stats := tr.Run(nil)
	if len(stats) != 2 {
		t.Fatalf("episodes = %d", len(stats))
	}
	if tr.Replay().Len() == 0 {
		t.Fatal("no training data generated")
	}

	// 3. Gate the trained candidate against the frozen baseline. Two
	// episodes prove nothing about strength; we assert only that the gate
	// machinery runs and accounts correctly.
	gateCfg := arena.DefaultGateConfig()
	gateCfg.Games = 2
	gateCfg.Playouts = 16
	_, res := arena.GateCandidate(g, net, baseline, gateCfg)
	if res.Games != 2 || res.WinsA+res.WinsB+res.Draws != 2 {
		t.Fatalf("gate accounting wrong: %+v", res)
	}

	// 4. Serialise and reload; the reloaded model must reproduce outputs.
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, net.InputLen())
	st := g.NewInitial()
	st.Play(board * board / 2)
	st.Encode(in)
	ws1, ws2 := nn.NewWorkspace(net), nn.NewWorkspace(loaded)
	p1, v1 := net.Forward(ws1, in)
	p2, v2 := loaded.Forward(ws2, in)
	if v1 != v2 {
		t.Fatal("reloaded model value differs")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("reloaded model policy differs")
		}
	}
}

func TestAdaptiveEngineAcrossGames(t *testing.T) {
	// The "arbitrary DNN-MCTS algorithm" claim: the same adaptive API must
	// configure and search for games with very different fanout/depth.
	for _, boardSize := range []int{5, 9} {
		g := gomoku.NewSized(boardSize)
		eng, err := adaptive.Configure(g, adaptive.Options{
			Search:          func() mcts.Config { c := mcts.DefaultConfig(); c.Playouts = 40; return c }(),
			Workers:         2,
			Platform:        adaptive.PlatformCPU,
			Evaluator:       &evaluate.Random{},
			ProfilePlayouts: 60,
			DNNProfileIters: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := g.NewInitial()
		dist := make([]float32, g.NumActions())
		s := eng.Search(st, dist)
		if s.Playouts != 40 {
			t.Fatalf("board %d: playouts = %d", boardSize, s.Playouts)
		}
		eng.Close()
	}
}
