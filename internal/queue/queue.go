// Package queue provides the two communication primitives the paper's
// local-tree scheme is built from: the FIFO pipes connecting the master
// thread to its worker pool (Figure 2a), and the accelerator request queue
// that accumulates DNN inference tasks until a threshold batch size is
// reached (Section 3.3).
package queue

import (
	"sync"
	"time"
)

// FIFO is a first-in-first-out pipe with a fixed capacity. Push blocks when
// the pipe is full, Pop blocks when it is empty; both unblock on Close.
// It is a thin wrapper over a buffered channel, named to match the paper's
// terminology and to centralise closed-pipe semantics.
type FIFO[T any] struct {
	ch chan T
}

// NewFIFO creates a pipe holding up to capacity elements.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity < 0 {
		panic("queue: negative capacity")
	}
	return &FIFO[T]{ch: make(chan T, capacity)}
}

// Push enqueues v, blocking while the pipe is full. Pushing to a closed
// pipe panics (a closed pipe means the consumer is gone — a program bug).
func (q *FIFO[T]) Push(v T) { q.ch <- v }

// TryPush enqueues v without blocking; it reports whether v was accepted.
func (q *FIFO[T]) TryPush(v T) bool {
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// Pop dequeues the oldest element, blocking while the pipe is empty.
// ok is false once the pipe is closed and drained.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	v, ok = <-q.ch
	return v, ok
}

// TryPop dequeues without blocking; ok is false if the pipe was empty or
// closed-and-drained.
func (q *FIFO[T]) TryPop() (v T, ok bool) {
	select {
	case v, ok = <-q.ch:
		return v, ok
	default:
		var zero T
		return zero, false
	}
}

// Len returns the number of buffered elements.
func (q *FIFO[T]) Len() int { return len(q.ch) }

// Cap returns the pipe capacity.
func (q *FIFO[T]) Cap() int { return cap(q.ch) }

// Close marks the producer side finished. Pending elements remain poppable.
func (q *FIFO[T]) Close() { close(q.ch) }

// Chan exposes the receive side for use in select statements.
func (q *FIFO[T]) Chan() <-chan T { return q.ch }

// Batcher is the accelerator queue of Section 3.3: producers Add requests,
// and whenever the buffered count reaches the threshold the whole batch is
// handed to the flush function. Flush runs synchronously on the Add (or
// FlushNow) caller's goroutine while holding no Batcher lock, so producers
// on other goroutines keep accumulating the next batch concurrently.
//
// A Batcher may additionally carry a flush deadline (NewDeadlineBatcher):
// whenever a request enters an empty buffer a timer is armed, and if the
// threshold is not reached within the deadline the partial batch is flushed
// from the timer goroutine. Because the timer is armed by the *first*
// request of each buffer generation, no request ever waits longer than the
// deadline between Add and the hand-off to flush — the service-level
// guarantee the multi-tenant inference server is built on.
type Batcher[T any] struct {
	mu        sync.Mutex
	buf       []T
	threshold int
	deadline  time.Duration
	gen       uint64 // buffer generation; invalidates stale deadline timers
	flush     func([]T)
}

// NewBatcher creates a batcher that calls flush with each full batch of
// size threshold. The slice passed to flush is owned by the callee.
func NewBatcher[T any](threshold int, flush func([]T)) *Batcher[T] {
	return NewDeadlineBatcher(threshold, 0, flush)
}

// NewDeadlineBatcher creates a batcher that flushes when the buffer reaches
// threshold OR when the oldest buffered request has waited for deadline,
// whichever comes first. A deadline of 0 disables timer-driven flushing
// (threshold-only, the classic accelerator queue).
func NewDeadlineBatcher[T any](threshold int, deadline time.Duration, flush func([]T)) *Batcher[T] {
	if threshold < 1 {
		panic("queue: batch threshold must be >= 1")
	}
	if flush == nil {
		panic("queue: nil flush")
	}
	if deadline < 0 {
		panic("queue: negative flush deadline")
	}
	return &Batcher[T]{threshold: threshold, deadline: deadline, flush: flush, buf: make([]T, 0, threshold)}
}

// Deadline returns the flush deadline (0 = threshold-only).
func (b *Batcher[T]) Deadline() time.Duration { return b.deadline }

// Threshold returns the current flush threshold.
func (b *Batcher[T]) Threshold() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.threshold
}

// SetThreshold changes the flush threshold; if the buffer already holds at
// least n elements they are flushed immediately.
func (b *Batcher[T]) SetThreshold(n int) {
	if n < 1 {
		panic("queue: batch threshold must be >= 1")
	}
	b.mu.Lock()
	b.threshold = n
	batch := b.takeIfFullLocked()
	b.mu.Unlock()
	if batch != nil {
		b.flush(batch)
	}
}

// Add enqueues one request, flushing if the threshold is reached. When a
// deadline is configured and v enters an empty buffer, a timer is armed so
// the partial batch launches no later than deadline from now.
func (b *Batcher[T]) Add(v T) {
	b.mu.Lock()
	b.buf = append(b.buf, v)
	if len(b.buf) == 1 && b.deadline > 0 && len(b.buf) < b.threshold {
		gen := b.gen
		time.AfterFunc(b.deadline, func() { b.flushDeadline(gen) })
	}
	batch := b.takeIfFullLocked()
	b.mu.Unlock()
	if batch != nil {
		b.flush(batch)
	}
}

// takeLocked hands the caller the current buffer and starts a new
// generation, invalidating any armed deadline timer. Caller holds b.mu.
func (b *Batcher[T]) takeLocked() []T {
	batch := b.buf
	b.buf = make([]T, 0, b.threshold)
	b.gen++
	return batch
}

func (b *Batcher[T]) takeIfFullLocked() []T {
	if len(b.buf) < b.threshold {
		return nil
	}
	return b.takeLocked()
}

// flushDeadline is the timer callback: it flushes the partial batch only if
// the buffer generation it was armed for is still accumulating.
func (b *Batcher[T]) flushDeadline(gen uint64) {
	b.mu.Lock()
	if b.gen != gen || len(b.buf) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.takeLocked()
	b.mu.Unlock()
	b.flush(batch)
}

// FlushNow hands any buffered requests to flush regardless of threshold.
// Used at the end of a search to drain a partial batch.
func (b *Batcher[T]) FlushNow() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch)
	}
}

// Pending returns the number of buffered (unflushed) requests.
func (b *Batcher[T]) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}
