package queue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestFIFOOrdering(t *testing.T) {
	q := NewFIFO[int](10)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 || q.Cap() != 10 {
		t.Fatalf("len/cap = %d/%d", q.Len(), q.Cap())
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: got %d ok=%v", i, v, ok)
		}
	}
}

func TestFIFOTryOps(t *testing.T) {
	q := NewFIFO[string](1)
	if !q.TryPush("a") {
		t.Fatal("TryPush into empty failed")
	}
	if q.TryPush("b") {
		t.Fatal("TryPush into full succeeded")
	}
	v, ok := q.TryPop()
	if !ok || v != "a" {
		t.Fatalf("TryPop got %q ok=%v", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop from empty succeeded")
	}
}

func TestFIFOCloseDrains(t *testing.T) {
	q := NewFIFO[int](4)
	q.Push(1)
	q.Push(2)
	q.Close()
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatal("pending element lost after close")
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatal("second element lost")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after drain should report closed")
	}
}

func TestFIFOPushAfterClosePanics(t *testing.T) {
	q := NewFIFO[int](2)
	q.Push(1)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Close did not panic")
		}
	}()
	q.Push(2)
}

func TestFIFOTryPushAfterClosePanics(t *testing.T) {
	q := NewFIFO[int](2)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("TryPush after Close did not panic")
		}
	}()
	q.TryPush(1)
}

func TestFIFOTryPopClosedAndDrained(t *testing.T) {
	q := NewFIFO[int](4)
	q.Push(7)
	q.Close()
	// Pending elements remain poppable after Close...
	if v, ok := q.TryPop(); !ok || v != 7 {
		t.Fatalf("TryPop after Close = (%d, %v), want (7, true)", v, ok)
	}
	// ...and once drained, TryPop reports closed (ok=false), not "empty but
	// maybe later": the zero value must come back too.
	for i := 0; i < 3; i++ {
		if v, ok := q.TryPop(); ok || v != 0 {
			t.Fatalf("TryPop on closed-and-drained = (%d, %v), want (0, false)", v, ok)
		}
	}
}

func TestFIFODoubleClosePanics(t *testing.T) {
	q := NewFIFO[int](1)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("double Close did not panic")
		}
	}()
	q.Close()
}

func TestFIFONegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity did not panic")
		}
	}()
	NewFIFO[int](-1)
}

func TestFIFOConcurrentProducersConsumers(t *testing.T) {
	q := NewFIFO[int](8)
	const producers, perProducer = 4, 1000
	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				sum.Add(int64(v))
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 1; i <= perProducer; i++ {
				q.Push(i)
			}
		}()
	}
	pwg.Wait()
	q.Close()
	wg.Wait()
	want := int64(producers) * perProducer * (perProducer + 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestBatcherFlushesAtThreshold(t *testing.T) {
	var batches [][]int
	b := NewBatcher[int](3, func(batch []int) { batches = append(batches, batch) })
	for i := 0; i < 7; i++ {
		b.Add(i)
	}
	if len(batches) != 2 {
		t.Fatalf("flushed %d batches, want 2", len(batches))
	}
	if len(batches[0]) != 3 || batches[0][0] != 0 || batches[1][0] != 3 {
		t.Fatalf("batch contents wrong: %v", batches)
	}
	if b.Pending() != 1 {
		t.Fatalf("pending = %d", b.Pending())
	}
	b.FlushNow()
	if len(batches) != 3 || len(batches[2]) != 1 || batches[2][0] != 6 {
		t.Fatalf("FlushNow wrong: %v", batches)
	}
	if b.Pending() != 0 {
		t.Fatal("pending after FlushNow")
	}
	b.FlushNow() // empty flush is a no-op
	if len(batches) != 3 {
		t.Fatal("empty FlushNow produced a batch")
	}
}

func TestBatcherSetThreshold(t *testing.T) {
	var flushed [][]int
	b := NewBatcher[int](10, func(batch []int) { flushed = append(flushed, batch) })
	b.Add(1)
	b.Add(2)
	b.Add(3)
	b.SetThreshold(2) // buffer (3) already >= 2: immediate flush
	if len(flushed) != 1 || len(flushed[0]) != 3 {
		t.Fatalf("SetThreshold flush wrong: %v", flushed)
	}
	if b.Threshold() != 2 {
		t.Fatalf("threshold = %d", b.Threshold())
	}
	b.Add(4)
	b.Add(5)
	if len(flushed) != 2 {
		t.Fatal("new threshold not applied")
	}
}

func TestBatcherPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero threshold": func() { NewBatcher[int](0, func([]int) {}) },
		"nil flush":      func() { NewBatcher[int](1, nil) },
		"bad set":        func() { NewBatcher[int](1, func([]int) {}).SetThreshold(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBatcherConcurrentAddsLoseNothing(t *testing.T) {
	var total atomic.Int64
	var calls atomic.Int64
	b := NewBatcher[int](16, func(batch []int) {
		calls.Add(1)
		for _, v := range batch {
			total.Add(int64(v))
		}
	})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				b.Add(i)
			}
		}()
	}
	wg.Wait()
	b.FlushNow()
	want := int64(workers) * per * (per + 1) / 2
	if total.Load() != want {
		t.Fatalf("sum = %d, want %d (lost requests)", total.Load(), want)
	}
	if calls.Load() < int64(workers*per/16) {
		t.Fatalf("too few flush calls: %d", calls.Load())
	}
}

func TestDeadlineBatcherFlushesPartialBatch(t *testing.T) {
	const deadline = 15 * time.Millisecond
	flushed := make(chan []int, 4)
	b := NewDeadlineBatcher(100, deadline, func(batch []int) { flushed <- batch })
	start := time.Now()
	b.Add(1)
	b.Add(2)
	select {
	case batch := <-flushed:
		if len(batch) != 2 {
			t.Fatalf("deadline flush delivered %v", batch)
		}
		if waited := time.Since(start); waited < deadline/2 {
			t.Fatalf("flushed after %v, before the deadline", waited)
		}
	case <-time.After(10 * deadline):
		t.Fatal("deadline flush never fired")
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after deadline flush", b.Pending())
	}
}

func TestDeadlineBatcherThresholdCancelsTimer(t *testing.T) {
	flushed := make(chan []int, 4)
	b := NewDeadlineBatcher(2, 10*time.Millisecond, func(batch []int) { flushed <- batch })
	b.Add(1)
	b.Add(2) // threshold flush; the armed timer must become a no-op
	<-flushed
	select {
	case batch := <-flushed:
		t.Fatalf("stale timer produced a second flush: %v", batch)
	case <-time.After(50 * time.Millisecond):
	}
	// The next generation arms its own timer.
	b.Add(3)
	select {
	case batch := <-flushed:
		if len(batch) != 1 || batch[0] != 3 {
			t.Fatalf("second-generation flush = %v", batch)
		}
	case <-time.After(time.Second):
		t.Fatal("second-generation deadline never fired")
	}
}

func TestDeadlineBatcherFlushNowInvalidatesTimer(t *testing.T) {
	var calls atomic.Int64
	b := NewDeadlineBatcher(100, 10*time.Millisecond, func(batch []int) { calls.Add(1) })
	b.Add(1)
	b.FlushNow()
	time.Sleep(40 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("flush called %d times, want 1 (stale timer must not re-fire)", calls.Load())
	}
}

func TestDeadlineBatcherNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative deadline did not panic")
		}
	}()
	NewDeadlineBatcher(1, -time.Millisecond, func([]int) {})
}

func TestBatcherPropertyNoneLostAnyThreshold(t *testing.T) {
	if err := quick.Check(func(thrRaw uint8, nRaw uint16) bool {
		thr := int(thrRaw)%20 + 1
		n := int(nRaw) % 500
		count := 0
		b := NewBatcher[int](thr, func(batch []int) { count += len(batch) })
		for i := 0; i < n; i++ {
			b.Add(i)
		}
		b.FlushNow()
		return count == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}
