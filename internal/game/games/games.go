// Package games links the complete scenario catalogue into the game
// registry: blank-importing it (or importing anything from it) makes every
// game in the repository constructible through game.New / game.NewFromSpec.
// Binaries with a -game flag import this package instead of naming concrete
// game packages, so adding a scenario means registering it here and nowhere
// else.
package games

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/parmcts/parmcts/internal/game"
	_ "github.com/parmcts/parmcts/internal/game/connect4"
	_ "github.com/parmcts/parmcts/internal/game/gomoku"
	_ "github.com/parmcts/parmcts/internal/game/hex"
	_ "github.com/parmcts/parmcts/internal/game/othello"
	_ "github.com/parmcts/parmcts/internal/game/tictactoe"
)

// MustNew instantiates a game from a "name[:size]" spec and panics on
// error — for examples and tests where a bad spec is a programming bug.
func MustNew(spec string) game.Game {
	g, err := game.NewFromSpec(spec)
	if err != nil {
		panic(err)
	}
	return g
}

// ResolveFlag instantiates a -game flag value, falling back to def when
// the flag was left empty, and exits the process (stderr, code 2) on a bad
// spec — the uniform error behavior of every cmd binary. binary names the
// program for the error prefix.
func ResolveFlag(binary, spec, def string) game.Game {
	if spec == "" {
		spec = def
	}
	g, err := game.NewFromSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", binary, err)
		os.Exit(2)
	}
	return g
}

// SpecName extracts the base game name from a spec or a checkpoint
// manifest's Game field: "hex:7" -> "hex", and the legacy "gomoku-9"
// manifest naming from before the registry -> "gomoku". Used to refuse
// resuming a checkpoint store onto a different game even when the two
// games' network shapes coincide (hex:9 and gomoku:9 both encode 4x9x9/81).
func SpecName(spec string) string {
	name, _, _ := strings.Cut(strings.TrimSpace(spec), ":")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// FlagHelp returns the -game flag usage string listing every registered
// scenario.
func FlagHelp() string {
	return "game spec: one of " + strings.Join(game.Names(), ", ") + ", with an optional :size (e.g. gomoku:9, hex:7)"
}
