package games

import (
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/gametest"
)

// conformanceSpecs are the per-game instantiations the cross-game suite
// runs at: every registered scenario appears, at a board size that keeps
// one run in seconds. The CI matrix narrows the list to one game per leg
// via the GAMETEST_GAMES environment variable (comma-separated specs).
var conformanceSpecs = []string{
	"tictactoe",
	"connect4",
	"gomoku:9",
	"othello",
	"hex:7",
}

func specsUnderTest(t *testing.T) []string {
	if env := os.Getenv("GAMETEST_GAMES"); env != "" {
		var specs []string
		for _, s := range strings.Split(env, ",") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
		if len(specs) == 0 {
			t.Fatalf("GAMETEST_GAMES=%q selects no games", env)
		}
		return specs
	}
	return conformanceSpecs
}

// TestConformance runs the exported gametest property table against every
// registered scenario.
func TestConformance(t *testing.T) {
	for _, spec := range specsUnderTest(t) {
		g, err := game.NewFromSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		t.Run(spec, func(t *testing.T) { gametest.Run(t, g) })
	}
}

// TestRegistryComplete pins the catalogue: every scenario this repository
// ships is registered, and the default conformance list covers all of them.
func TestRegistryComplete(t *testing.T) {
	want := []string{"connect4", "gomoku", "hex", "othello", "tictactoe"}
	got := game.Names()
	if len(got) != len(want) {
		t.Fatalf("registered games = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered games = %v, want %v", got, want)
		}
	}
	covered := map[string]bool{}
	for _, spec := range conformanceSpecs {
		name, _, _ := strings.Cut(spec, ":")
		covered[name] = true
	}
	for _, name := range want {
		if !covered[name] {
			t.Errorf("registered game %q missing from the conformance suite", name)
		}
	}
}

// TestRegistrySpecs exercises the spec grammar and the factory validation
// behind the shared -game flag.
func TestRegistrySpecs(t *testing.T) {
	good := map[string]struct {
		actions int
	}{
		"othello":    {65},
		"othello:6":  {37},
		"hex":        {121},
		"hex:7":      {49},
		"gomoku:9":   {81},
		"gomoku":     {225},
		"tictactoe":  {9},
		"connect4":   {7},
		" gomoku:9 ": {81}, // surrounding whitespace tolerated
	}
	for spec, want := range good {
		g, err := game.NewFromSpec(spec)
		if err != nil {
			t.Errorf("spec %q: %v", spec, err)
			continue
		}
		if g.NumActions() != want.actions {
			t.Errorf("spec %q: NumActions = %d, want %d", spec, g.NumActions(), want.actions)
		}
	}
	bad := []string{
		"", "nosuchgame", "othello:7", "othello:2", "othello:18",
		"hex:1", "hex:20", "gomoku:3", "connect4:8", "tictactoe:5",
		"hex:", "hex:x", "hex:-3", "hex:0",
	}
	for _, spec := range bad {
		if g, err := game.NewFromSpec(spec); err == nil {
			t.Errorf("spec %q: expected error, got %T", spec, g)
		}
	}
}

// TestConcurrentFirstStates is the regression for the lazy Zobrist-table
// race: a G-game fleet driver creates every tenant's first state on G
// goroutines at once, so the per-size table memoisation must be
// synchronized (game.ZobristTable). Before the shared helper, othello/hex/
// gomoku each populated an unguarded package-level map here — a fatal
// "concurrent map read and map write" on the first fleet round.
func TestConcurrentFirstStates(t *testing.T) {
	for _, spec := range conformanceSpecs {
		g, err := game.NewFromSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		var wg sync.WaitGroup
		hashes := make([]uint64, 16)
		for i := range hashes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				hashes[i] = g.NewInitial().Hash()
			}(i)
		}
		wg.Wait()
		for i := 1; i < len(hashes); i++ {
			if hashes[i] != hashes[0] {
				t.Fatalf("%s: concurrent initial states disagree on hash", spec)
			}
		}
	}
}

// TestMustNew covers the panic path used by examples.
func TestMustNew(t *testing.T) {
	if g := MustNew("othello"); g.Name() != "othello" {
		t.Fatalf("MustNew returned %q", g.Name())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on a bad spec did not panic")
		}
	}()
	MustNew("nosuchgame")
}
