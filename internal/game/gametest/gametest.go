// Package gametest is the exported conformance harness for game.Game
// implementations: one table of property checks that every scenario must
// pass before the search engines, the persistent-session layer, and the
// training drivers may assume anything about it. The properties pin down
// the parts of the game.State contract that the rest of the repository
// silently relies on — Clone independence, Legal↔LegalMoves agreement,
// strict turn alternation (tree.Backup negates the value once per ply),
// the own/opponent plane convention of Encode, Zobrist hashes that change
// on every Play (pass moves included), the MaxGameLength bound that sizes
// replay buffers and synthetic-tree depth limits, and terminal stability.
//
// Use it from a game package's tests:
//
//	func TestConformance(t *testing.T) { gametest.Run(t, othello.New()) }
//
// and from a fuzz target:
//
//	func FuzzStatePlayout(f *testing.F) { gametest.FuzzPlayout(f, othello.New()) }
package gametest

import (
	"fmt"
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
)

// playoutSeeds drives the random-playout checks: enough trajectories to
// reach pass chains and terminal variety without slowing the suite.
var playoutSeeds = []uint64{1, 2, 3, 5, 8, 13}

// Run executes the full conformance table against g as named subtests.
func Run(t *testing.T, g game.Game) {
	t.Helper()
	checks := []struct {
		name  string
		check func(t *testing.T, g game.Game)
	}{
		{"Metadata", checkMetadata},
		{"InitialState", checkInitialState},
		{"CloneIndependence", checkCloneIndependence},
		{"LegalAgreement", checkLegalAgreement},
		{"LegalMovesNonEmptyUntilTerminal", checkLegalMovesNonEmpty},
		{"IllegalPlayPanics", checkIllegalPlayPanics},
		{"TurnAlternation", checkTurnAlternation},
		{"EncodeShape", checkEncodeShape},
		{"EncodePerspectiveFlip", checkEncodePerspectiveFlip},
		{"HashChangesOnPlay", checkHashChangesOnPlay},
		{"HashDeterminism", checkHashDeterminism},
		{"MaxGameLengthBound", checkMaxGameLengthBound},
		{"WinnerOnlyAtTerminal", checkWinnerOnlyAtTerminal},
		{"TerminalStability", checkTerminalStability},
		{"ActionSpaceStable", checkActionSpaceStable},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) { c.check(t, g) })
	}
}

// walk plays a deterministic random playout from the initial position,
// invoking visit before every move (and once on the terminal or
// length-capped final state with action -1). It stops after maxPlies moves
// even if the game claims not to be over, so a non-terminating game cannot
// hang the suite.
func walk(g game.Game, seed uint64, maxPlies int, visit func(st game.State, ply, action int)) game.State {
	r := rng.New(seed)
	st := g.NewInitial()
	for ply := 0; ply < maxPlies && !st.Terminal(); ply++ {
		legal := st.LegalMoves(nil)
		if len(legal) == 0 {
			break // checkLegalMovesNonEmpty reports this case
		}
		a := legal[r.Intn(len(legal))]
		if visit != nil {
			visit(st, ply, a)
		}
		st.Play(a)
	}
	if visit != nil {
		visit(st, -1, -1)
	}
	return st
}

func checkMetadata(t *testing.T, g game.Game) {
	if g.Name() == "" {
		t.Error("Name is empty")
	}
	if g.NumActions() < 1 {
		t.Errorf("NumActions = %d", g.NumActions())
	}
	c, h, w := g.EncodedShape()
	if c < 1 || h < 1 || w < 1 {
		t.Errorf("EncodedShape = (%d, %d, %d)", c, h, w)
	}
	if g.MaxGameLength() < 1 {
		t.Errorf("MaxGameLength = %d", g.MaxGameLength())
	}
}

func checkInitialState(t *testing.T, g game.Game) {
	st := g.NewInitial()
	if st.Terminal() {
		t.Fatal("initial state is terminal")
	}
	if st.ToMove() != game.P1 {
		t.Errorf("initial ToMove = %d, want P1", st.ToMove())
	}
	if st.Winner() != game.Nobody {
		t.Errorf("initial Winner = %d, want Nobody", st.Winner())
	}
	if len(st.LegalMoves(nil)) == 0 {
		t.Error("initial state has no legal moves")
	}
}

func checkCloneIndependence(t *testing.T, g game.Game) {
	st := g.NewInitial()
	// A few plies in, so the clone carries real structure.
	walkInto(st, 3)
	if st.Terminal() {
		return
	}
	hash := st.Hash()
	enc := encodeOf(st)
	legal := st.LegalMoves(nil)

	cl := st.Clone()
	if cl.Hash() != hash {
		t.Fatalf("clone hash %#x != original %#x", cl.Hash(), hash)
	}
	// Mutating the clone must not leak into the original.
	cl.Play(cl.LegalMoves(nil)[0])
	if st.Hash() != hash {
		t.Error("playing on a clone changed the original's hash")
	}
	if got := encodeOf(st); !equal32(got, enc) {
		t.Error("playing on a clone changed the original's encoding")
	}
	if got := st.LegalMoves(nil); !equalInts(got, legal) {
		t.Error("playing on a clone changed the original's legal moves")
	}
	// And the original is still playable.
	st.Play(legal[0])
}

func checkLegalAgreement(t *testing.T, g game.Game) {
	for _, seed := range playoutSeeds {
		walk(g, seed, g.MaxGameLength()+2, func(st game.State, ply, _ int) {
			inList := map[int]bool{}
			for _, a := range st.LegalMoves(nil) {
				inList[a] = true
			}
			for a := -1; a <= st.NumActions(); a++ {
				if got := st.Legal(a); got != inList[a] {
					t.Fatalf("seed %d ply %d: Legal(%d) = %v but LegalMoves membership = %v",
						seed, ply, a, got, inList[a])
				}
			}
		})
	}
}

func checkLegalMovesNonEmpty(t *testing.T, g game.Game) {
	for _, seed := range playoutSeeds {
		walk(g, seed, g.MaxGameLength()+2, func(st game.State, ply, _ int) {
			n := len(st.LegalMoves(nil))
			if !st.Terminal() && n == 0 {
				t.Fatalf("seed %d ply %d: non-terminal state with no legal moves (pass must be an explicit action)", seed, ply)
			}
			if st.Terminal() && n != 0 {
				t.Fatalf("seed %d: terminal state still offers %d legal moves", seed, n)
			}
		})
	}
}

func checkIllegalPlayPanics(t *testing.T, g game.Game) {
	st := g.NewInitial()
	for a := 0; a < st.NumActions(); a++ {
		if !st.Legal(a) {
			assertPanics(t, fmt.Sprintf("Play(%d) on illegal action", a), func() { st.Clone().Play(a) })
			break
		}
	}
	assertPanics(t, "Play(-1)", func() { g.NewInitial().Play(-1) })
	assertPanics(t, "Play(NumActions)", func() { g.NewInitial().Play(g.NewInitial().NumActions()) })
}

func checkTurnAlternation(t *testing.T, g game.Game) {
	for _, seed := range playoutSeeds {
		var prev game.Player
		walk(g, seed, g.MaxGameLength()+2, func(st game.State, ply, _ int) {
			mover := st.ToMove()
			if mover != game.P1 && mover != game.P2 {
				t.Fatalf("seed %d ply %d: ToMove = %d", seed, ply, mover)
			}
			// tree.Backup negates the value exactly once per ply, so even
			// "skip" dynamics (an Othello pass) must surface as an explicit
			// move that hands the turn to the opponent.
			if ply > 0 && mover != prev.Opponent() {
				t.Fatalf("seed %d ply %d: turn did not alternate (%d after %d)", seed, ply, mover, prev)
			}
			if ply >= 0 {
				prev = mover
			}
		})
	}
}

func checkEncodeShape(t *testing.T, g game.Game) {
	c, h, w := g.EncodedShape()
	st := g.NewInitial()
	sc, sh, sw := st.EncodedShape()
	if sc != c || sh != h || sw != w {
		t.Fatalf("state EncodedShape (%d,%d,%d) != game (%d,%d,%d)", sc, sh, sw, c, h, w)
	}
	assertPanics(t, "Encode with short buffer", func() { st.Encode(make([]float32, c*h*w-1)) })
	a, b := make([]float32, c*h*w), make([]float32, c*h*w)
	st.Encode(a)
	st.Encode(b)
	if !equal32(a, b) {
		t.Error("Encode is not deterministic")
	}
	for i, v := range a {
		if v < 0 || v > 1 {
			t.Fatalf("Encode[%d] = %v outside [0, 1]", i, v)
		}
	}
}

// checkEncodePerspectiveFlip pins the repository-wide plane convention:
// plane 0 holds the mover's stones and plane 1 the opponent's, so after a
// move (turns alternate) every previous own stone reappears in the new
// opponent plane. Moves may add to or subtract from the OPPONENT's material
// (Othello flips, the Hex steal), but never silently remove the mover's
// own pieces.
func checkEncodePerspectiveFlip(t *testing.T, g game.Game) {
	c, h, w := g.EncodedShape()
	plane := h * w
	for _, seed := range playoutSeeds {
		walk(g, seed, g.MaxGameLength()+2, func(st game.State, ply, action int) {
			if action < 0 {
				return
			}
			before := make([]float32, c*h*w)
			st.Encode(before)
			next := st.Clone()
			next.Play(action)
			after := make([]float32, c*h*w)
			next.Encode(after)
			for i := 0; i < plane; i++ {
				if before[i] == 1 && after[plane+i] != 1 {
					t.Fatalf("seed %d ply %d: own stone at cell %d vanished from the opponent plane after Play(%d)",
						seed, ply, i, action)
				}
			}
		})
	}
}

func checkHashChangesOnPlay(t *testing.T, g game.Game) {
	for _, seed := range playoutSeeds {
		seen := map[uint64]int{}
		walk(g, seed, g.MaxGameLength()+2, func(st game.State, ply, action int) {
			if action < 0 {
				return
			}
			before := st.Hash()
			next := st.Clone()
			next.Play(action)
			if next.Hash() == before {
				t.Fatalf("seed %d ply %d: Hash unchanged by Play(%d)", seed, ply, action)
			}
			seen[before]++
		})
		// A Zobrist hash worthy of transposition detection should not
		// collapse a whole trajectory onto a couple of values.
		if len(seen) < 3 && g.MaxGameLength() >= 5 {
			t.Errorf("seed %d: only %d distinct hashes along a playout", seed, len(seen))
		}
	}
}

func checkHashDeterminism(t *testing.T, g game.Game) {
	final := walk(g, 1, g.MaxGameLength()+2, nil)
	again := walk(g, 1, g.MaxGameLength()+2, nil)
	if final.Hash() != again.Hash() {
		t.Error("identical move sequences produced different hashes")
	}
	if cl := final.Clone(); cl.Hash() != final.Hash() {
		t.Error("Clone changed the hash")
	}
}

func checkMaxGameLengthBound(t *testing.T, g game.Game) {
	for _, seed := range playoutSeeds {
		plies := 0
		st := walk(g, seed, g.MaxGameLength(), func(st game.State, ply, action int) {
			if action >= 0 {
				plies++
			}
		})
		if !st.Terminal() {
			t.Fatalf("seed %d: game not terminal after MaxGameLength = %d plies", seed, g.MaxGameLength())
		}
		if plies > g.MaxGameLength() {
			t.Fatalf("seed %d: %d plies exceeds MaxGameLength %d", seed, plies, g.MaxGameLength())
		}
	}
}

func checkWinnerOnlyAtTerminal(t *testing.T, g game.Game) {
	for _, seed := range playoutSeeds {
		walk(g, seed, g.MaxGameLength()+2, func(st game.State, ply, _ int) {
			if !st.Terminal() && st.Winner() != game.Nobody {
				t.Fatalf("seed %d ply %d: non-terminal state reports winner %d", seed, ply, st.Winner())
			}
		})
	}
}

func checkTerminalStability(t *testing.T, g game.Game) {
	st := walk(g, 2, g.MaxGameLength()+2, nil)
	if !st.Terminal() {
		t.Fatal("playout did not reach a terminal state")
	}
	w := st.Winner()
	for i := 0; i < 3; i++ {
		if !st.Terminal() || st.Winner() != w {
			t.Fatal("Terminal/Winner are not stable under repeated reads")
		}
	}
	for a := -1; a <= st.NumActions(); a++ {
		if st.Legal(a) {
			t.Fatalf("terminal state reports Legal(%d)", a)
		}
	}
	// Terminal states are still encoded (the value target of the final
	// sample) and cloned (engine scratch) without blowing up.
	c, h, wdt := st.EncodedShape()
	st.Encode(make([]float32, c*h*wdt))
	if cl := st.Clone(); cl.Winner() != w {
		t.Error("clone of a terminal state changed the winner")
	}
}

func checkActionSpaceStable(t *testing.T, g game.Game) {
	c, h, w := g.EncodedShape()
	walk(g, 3, g.MaxGameLength()+2, func(st game.State, ply, _ int) {
		if st.NumActions() != g.NumActions() {
			t.Fatalf("ply %d: state NumActions %d != game %d", ply, st.NumActions(), g.NumActions())
		}
		sc, sh, sw := st.EncodedShape()
		if sc != c || sh != h || sw != w {
			t.Fatalf("ply %d: EncodedShape changed mid-game", ply)
		}
	})
}

// FuzzPlayout is the shared body of each game's FuzzStatePlayout target:
// the fuzz input is interpreted as a move-selection script, and the engine
// invariants (no panic on legal play, Winner only at Terminal, hash
// movement, the MaxGameLength bound) are asserted along the trajectory.
func FuzzPlayout(f *testing.F, g game.Game) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 254, 0, 128, 17, 3, 99, 42, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		st := g.NewInitial()
		maxPlies := g.MaxGameLength()
		for ply := 0; ; ply++ {
			if st.Terminal() {
				if len(st.LegalMoves(nil)) != 0 {
					t.Fatal("terminal state offers legal moves")
				}
				break
			}
			if st.Winner() != game.Nobody {
				t.Fatalf("ply %d: winner %d before Terminal", ply, st.Winner())
			}
			if ply >= maxPlies {
				t.Fatalf("game exceeded MaxGameLength %d", maxPlies)
			}
			legal := st.LegalMoves(nil)
			if len(legal) == 0 {
				t.Fatalf("ply %d: non-terminal state with no legal moves", ply)
			}
			pick := 0
			if ply < len(script) {
				pick = int(script[ply]) % len(legal)
			}
			a := legal[pick]
			if !st.Legal(a) {
				t.Fatalf("ply %d: LegalMoves offered %d but Legal rejects it", ply, a)
			}
			before := st.Hash()
			st.Play(a)
			if st.Hash() == before {
				t.Fatalf("ply %d: Play(%d) left the hash unchanged", ply, a)
			}
		}
	})
}

func walkInto(st game.State, plies int) {
	for i := 0; i < plies && !st.Terminal(); i++ {
		st.Play(st.LegalMoves(nil)[0])
	}
}

func encodeOf(st game.State) []float32 {
	c, h, w := st.EncodedShape()
	buf := make([]float32, c*h*w)
	st.Encode(buf)
	return buf
}

func equal32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertPanics(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}
