// Package game defines the environment interface consumed by the MCTS
// engines, mirroring the paper's "high-level libraries for simulating
// various benchmarks" integration point. Concrete games live in
// sub-packages and register themselves in the catalogue (Register /
// New / NewFromSpec / Names): gomoku is the paper's benchmark; connect4
// and tictactoe exercise the same interface at different fanouts/depths;
// othello adds flip dynamics with explicit pass moves; hex adds a
// draw-free connection topology. Importing internal/game/games links the
// full set.
//
// Two contract points the engines rely on (enforced for every registered
// game by internal/game/gametest): turns strictly alternate — a player
// with nothing to place must expose an explicit pass ACTION rather than
// an empty LegalMoves, because tree.Backup negates the value exactly once
// per ply — and a non-terminal state always has at least one legal move.
package game

// Player identifies a side. Two-player zero-sum games use +1 and -1 so a
// value from one player's perspective is negated by multiplying by -1.
type Player int8

// Player constants.
const (
	Nobody Player = 0  // empty cell / no winner (draw or game in progress)
	P1     Player = 1  // first mover
	P2     Player = -1 // second mover
)

// Opponent returns the other player.
func (p Player) Opponent() Player { return -p }

// State is a mutable game position. Implementations are NOT safe for
// concurrent mutation; engines clone states before handing them to workers,
// exactly as Algorithm 2 line 2 copies the environment.
type State interface {
	// Clone returns an independent deep copy.
	Clone() State

	// ToMove returns the player whose turn it is.
	ToMove() Player

	// LegalMoves appends the legal action indices to dst and returns it.
	// Action indices are in [0, NumActions()).
	LegalMoves(dst []int) []int

	// Legal reports whether the single action is legal in this state.
	Legal(action int) bool

	// Play applies an action. It panics on illegal actions; engines only
	// play actions obtained from LegalMoves or Legal.
	Play(action int)

	// Terminal reports whether the game has ended.
	Terminal() bool

	// Winner returns the winning player, or Nobody for a draw or an
	// unfinished game.
	Winner() Player

	// NumActions returns the size of the (fixed) action space.
	NumActions() int

	// Encode writes the network input planes for the position into dst,
	// which must have length C*H*W per EncodedShape. The encoding is
	// always from the perspective of the player to move.
	Encode(dst []float32)

	// EncodedShape returns the (channels, height, width) of Encode output.
	EncodedShape() (c, h, w int)

	// Hash returns a position hash (Zobrist) suitable for transposition
	// detection and test assertions.
	Hash() uint64
}

// StateKeyer is an optional State extension: a canonical identity key for
// transposition detection. AppendStateKey appends bytes covering exactly
// the information the Zobrist Hash covers — board occupancy, side to move,
// and any extra identity the game folds into its hash (e.g. Othello's
// pending-pass streak) — and returns the extended slice. Two states with
// equal keys are the same position for search purposes; the transposition
// table compares keys on every hash hit so a 64-bit collision can never
// merge distinct positions.
//
// Note the key deliberately EXCLUDES presentation-only history such as the
// last-move encoding plane: sharing one evaluation across transposed lines
// that differ only in arrival order is the standard transposition-table
// approximation (documented in EXPERIMENTS.md).
type StateKeyer interface {
	AppendStateKey(dst []byte) []byte
}

// StateKey appends the state's canonical identity key to dst. States
// implementing StateKeyer use their compact native key; anything else falls
// back to packing the Encode planes bitwise, which is always available but
// costs a full encode per call.
func StateKey(st State, dst []byte) []byte {
	if k, ok := st.(StateKeyer); ok {
		return k.AppendStateKey(dst)
	}
	c, h, w := st.EncodedShape()
	n := c * h * w
	buf := make([]float32, n)
	st.Encode(buf)
	var acc byte
	bits := 0
	for _, v := range buf {
		acc <<= 1
		if v != 0 {
			acc |= 1
		}
		bits++
		if bits == 8 {
			dst = append(dst, acc)
			acc, bits = 0, 0
		}
	}
	if bits > 0 {
		dst = append(dst, acc<<(8-bits))
	}
	return append(dst, byte(st.ToMove()+2))
}

// Game is a factory for initial states plus static metadata.
type Game interface {
	Name() string
	NewInitial() State
	NumActions() int
	EncodedShape() (c, h, w int)
	// MaxGameLength bounds the number of plies in any playable game,
	// used to size replay buffers and synthetic-tree depth limits.
	MaxGameLength() int
}

// Outcome converts a winner into a scalar reward from the perspective of
// the given player: +1 win, -1 loss, 0 draw.
func Outcome(winner, perspective Player) float64 {
	switch {
	case winner == Nobody:
		return 0
	case winner == perspective:
		return 1
	default:
		return -1
	}
}
