package hex

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/gametest"
	"github.com/parmcts/parmcts/internal/rng"
)

func TestConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Game
	}{
		{"hex-11", New()},
		{"hex-5", NewSized(5)},
		{"hex-2", NewSized(2)},
		{"hex-swap-5", NewSwap(5)},
	} {
		t.Run(tc.name, func(t *testing.T) { gametest.Run(t, tc.g) })
	}
}

func TestVerticalConnectionWinsP1(t *testing.T) {
	st := NewSized(3).NewInitial().(*State)
	for _, a := range []int{0 /*P1 (0,0)*/, 1 /*P2*/, 3 /*P1 (1,0)*/, 2 /*P2*/, 6 /*P1 (2,0)*/} {
		st.Play(a)
	}
	if !st.Terminal() || st.Winner() != game.P1 {
		t.Fatalf("terminal=%v winner=%d, want P1 win via left column", st.Terminal(), st.Winner())
	}
}

func TestHorizontalConnectionWinsP2(t *testing.T) {
	st := NewSized(3).NewInitial().(*State)
	// P2 builds row 2 (cells 6,7,8); P1 wastes moves on row 0 without
	// completing a chain (cells 0, 2 and then 4 — never three in a column).
	for _, a := range []int{0, 6, 2, 7, 4, 8} {
		st.Play(a)
	}
	if !st.Terminal() || st.Winner() != game.P2 {
		t.Fatalf("terminal=%v winner=%d, want P2 win via bottom row", st.Terminal(), st.Winner())
	}
}

// TestDiagonalAdjacency pins the rhombus topology: (r, c) touches
// (r+1, c-1) but not (r+1, c+1).
func TestDiagonalAdjacency(t *testing.T) {
	st := NewSized(3).NewInitial().(*State)
	// P1: (0,1)=1, (1,0)=3, (2,0)=6 — a staircase using the {1,-1} edge.
	for _, a := range []int{1, 5, 3, 8, 6} {
		st.Play(a)
	}
	if !st.Terminal() || st.Winner() != game.P1 {
		t.Fatalf("terminal=%v winner=%d, want P1 staircase win", st.Terminal(), st.Winner())
	}
	// Anti-diagonal (r+1, c+1) must NOT connect: on a 2x2 board, P1's
	// (0,0) top stone and (1,1) bottom stone share no edge, so placing
	// both does not end the game.
	st2 := NewSized(2).NewInitial().(*State)
	st2.Play(0) // P1 (0,0)
	st2.Play(1) // P2 (0,1)
	if st2.Terminal() {
		t.Fatal("premature terminal")
	}
	st2.Play(3) // P1 (1,1)
	if st2.Terminal() {
		t.Fatal("anti-diagonal cells must not be adjacent")
	}
}

// TestNeverDraws fills boards through seeded random playouts: every game
// must end with a winner strictly before the move budget runs out, and a
// full board is impossible without a prior connection (the Hex theorem).
func TestNeverDraws(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		g := NewSized(4)
		st := g.NewInitial()
		r := rng.New(seed)
		plies := 0
		for !st.Terminal() {
			if plies >= g.MaxGameLength() {
				t.Fatalf("seed %d: board full without a connection", seed)
			}
			legal := st.LegalMoves(nil)
			st.Play(legal[r.Intn(len(legal))])
			plies++
		}
		if st.Winner() == game.Nobody {
			t.Fatalf("seed %d: hex game ended in a draw", seed)
		}
	}
}

// TestSwapRule covers the pie-rule steal variant: P2's first move may take
// P1's opening stone, converting it, and the game stays consistent after.
func TestSwapRule(t *testing.T) {
	g := NewSwap(5)
	st := g.NewInitial().(*State)
	centre := 2*5 + 2
	st.Play(centre) // P1 opens in the centre
	if !st.Legal(centre) {
		t.Fatal("swap game: P2 cannot steal the opening stone")
	}
	legal := st.LegalMoves(nil)
	if len(legal) != 25 {
		t.Fatalf("swap game: P2 has %d moves, want all 25 (24 empty + steal)", len(legal))
	}
	before := st.Hash()
	st.Play(centre) // steal
	if st.Cell(2, 2) != game.P2 {
		t.Fatal("steal did not convert the stone to P2")
	}
	if st.Hash() == before {
		t.Fatal("steal left the hash unchanged")
	}
	if st.ToMove() != game.P1 || st.MoveCount() != 2 {
		t.Fatalf("after steal: toMove=%d moves=%d", st.ToMove(), st.MoveCount())
	}
	// The steal window is one ply wide: P1 cannot steal back.
	if st.Legal(centre) {
		t.Fatal("occupied cell playable after the swap window closed")
	}
	// The stolen stone participates in P2's connectivity: complete row 2.
	for _, a := range []int{0, 2*5 + 0, 1, 2*5 + 1, 5, 2*5 + 3, 6, 2*5 + 4} {
		st.Play(a)
	}
	if !st.Terminal() || st.Winner() != game.P2 {
		t.Fatalf("terminal=%v winner=%d, want P2 row win through the stolen stone",
			st.Terminal(), st.Winner())
	}
}

// TestNoSwapByDefault pins that the registered variant plays without the
// pie rule: occupied cells are never legal.
func TestNoSwapByDefault(t *testing.T) {
	st := NewSized(5).NewInitial()
	centre := 2*5 + 2
	st.Play(centre)
	if st.Legal(centre) {
		t.Fatal("non-swap game allowed playing on an occupied cell")
	}
}

func TestSizeValidation(t *testing.T) {
	for _, bad := range []int{-1, 0, 1, 20} {
		if _, err := newSized(bad, false); err == nil {
			t.Errorf("size %d accepted", bad)
		}
	}
	if g := NewSwap(5); g.MaxGameLength() != 26 {
		t.Errorf("swap MaxGameLength = %d, want 26", g.MaxGameLength())
	}
}
