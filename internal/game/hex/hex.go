// Package hex implements the connection game Hex on an NxN rhombus. P1
// (vertical) wins by connecting the top and bottom edges, P2 (horizontal)
// by connecting the left and right edges; the Hex theorem guarantees a full
// board contains exactly one winning chain, so the game NEVER draws — the
// opposite outcome topology from the placement games, which exercises the
// Winner/Outcome plumbing with a guaranteed decisive result. Connectivity
// is tracked incrementally with a union-find over the stones plus four
// virtual edge nodes, so Terminal/Winner are O(1) reads.
//
// The optional pie (swap) rule is the steal variant: when enabled, the
// second player's first move may be played on P1's opening stone, replacing
// it with a P2 stone. The registry's "hex" entry plays without the swap
// rule; construct NewSwap explicitly to enable it.
package hex

import (
	"fmt"
	"strings"

	"github.com/parmcts/parmcts/internal/game"
)

// DefaultSize is the standard tournament board edge.
const DefaultSize = 11

// Planes is the number of input feature planes produced by Encode:
// own stones, opponent stones, last move, side-to-move indicator.
const Planes = 4

func init() {
	game.Register("hex", func(size int) (game.Game, error) {
		if size == 0 {
			size = DefaultSize
		}
		return newSized(size, false)
	})
}

// zobrist layout: [2*n*n cell keys][side-to-move key]. game.ZobristTable
// is synchronized and cached per size.
func zobrist(size int) []uint64 {
	return game.ZobristTable(0x4E8A60+uint64(size), 2*size*size+1)
}

// Game is the Hex game factory.
type Game struct {
	Size int
	// Swap enables the pie rule: the second player's first move may steal
	// P1's opening stone by playing on its cell.
	Swap bool
}

// New returns the standard 11x11 game without the swap rule.
func New() *Game { return &Game{Size: DefaultSize} }

// NewSized returns a game with a custom board edge in [2, 19].
func NewSized(size int) *Game {
	g, err := newSized(size, false)
	if err != nil {
		panic("hex: " + err.Error())
	}
	return g
}

// NewSwap returns a sized game with the pie rule enabled.
func NewSwap(size int) *Game {
	g, err := newSized(size, true)
	if err != nil {
		panic("hex: " + err.Error())
	}
	return g
}

func newSized(size int, swap bool) (*Game, error) {
	if size < 2 || size > 19 {
		return nil, fmt.Errorf("board edge must be in [2, 19], got %d", size)
	}
	return &Game{Size: size, Swap: swap}, nil
}

// Name implements game.Game.
func (g *Game) Name() string { return "hex" }

// NumActions implements game.Game.
func (g *Game) NumActions() int { return g.Size * g.Size }

// EncodedShape implements game.Game.
func (g *Game) EncodedShape() (c, h, w int) { return Planes, g.Size, g.Size }

// MaxGameLength implements game.Game: one ply per cell, plus one for the
// pie-rule steal when enabled (the steal consumes a ply without occupying a
// fresh cell).
func (g *Game) MaxGameLength() int {
	if g.Swap {
		return g.Size*g.Size + 1
	}
	return g.Size * g.Size
}

// NewInitial implements game.Game.
func (g *Game) NewInitial() game.State {
	n := g.Size
	s := &State{
		size:     n,
		swap:     g.Swap,
		cells:    make([]game.Player, n*n),
		uf:       make([]int32, n*n+4),
		toMove:   game.P1,
		lastMove: -1,
		zob:      zobrist(n),
	}
	for i := range s.uf {
		s.uf[i] = int32(i)
	}
	return s
}

// Virtual union-find nodes for the four board edges, stored after the
// cells: P1 owns top/bottom, P2 owns left/right.
const (
	ufTop = iota
	ufBottom
	ufLeft
	ufRight
)

// State is a Hex position.
type State struct {
	size     int
	swap     bool
	cells    []game.Player
	uf       []int32 // union-find parents: cells then the 4 edge nodes
	toMove   game.Player
	lastMove int
	moves    int
	winner   game.Player
	done     bool
	hash     uint64
	zob      []uint64
}

var _ game.State = (*State)(nil)

// Clone implements game.State.
func (s *State) Clone() game.State {
	c := *s
	c.cells = make([]game.Player, len(s.cells))
	copy(c.cells, s.cells)
	c.uf = make([]int32, len(s.uf))
	copy(c.uf, s.uf)
	return &c
}

// ToMove implements game.State.
func (s *State) ToMove() game.Player { return s.toMove }

// Size returns the board edge length.
func (s *State) Size() int { return s.size }

// Cell returns the occupant of (row, col).
func (s *State) Cell(row, col int) game.Player { return s.cells[row*s.size+col] }

// LastMove returns the most recent action index, or -1 at the start.
func (s *State) LastMove() int { return s.lastMove }

// MoveCount returns the number of stones played (a steal counts as a move).
func (s *State) MoveCount() int { return s.moves }

// edgeNode maps the virtual edge constants to union-find indices.
func (s *State) edgeNode(e int) int32 { return int32(s.size*s.size + e) }

func (s *State) find(x int32) int32 {
	for s.uf[x] != x {
		s.uf[x] = s.uf[s.uf[x]] // path halving
		x = s.uf[x]
	}
	return x
}

func (s *State) union(a, b int32) {
	ra, rb := s.find(a), s.find(b)
	if ra != rb {
		s.uf[ra] = rb
	}
}

// hexNeighbors enumerates the six neighbours of (r, c) on the rhombus.
var hexNeighbors = [6][2]int{
	{-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0},
}

// stealAllowed reports whether action is the pie-rule steal: P2's first
// move played on P1's single opening stone.
func (s *State) stealAllowed(action int) bool {
	return s.swap && s.moves == 1 && s.toMove == game.P2 && s.cells[action] == game.P1
}

// LegalMoves implements game.State.
func (s *State) LegalMoves(dst []int) []int {
	if s.done {
		return dst
	}
	for i, c := range s.cells {
		if c == game.Nobody || s.stealAllowed(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Legal implements game.State.
func (s *State) Legal(action int) bool {
	if s.done || action < 0 || action >= len(s.cells) {
		return false
	}
	return s.cells[action] == game.Nobody || s.stealAllowed(action)
}

// Play implements game.State. Placing a stone unions it with same-colour
// neighbours and its own edges; the game ends as soon as the mover's two
// edges share a root. A pie-rule steal replaces P1's opening stone with a
// P2 stone (the trivial one-stone union-find is rebuilt).
func (s *State) Play(action int) {
	if !s.Legal(action) {
		panic("hex: illegal move")
	}
	p := s.toMove
	n := s.size
	if s.stealAllowed(action) {
		// Remove P1's stone from the hash, reset the one-stone union-find,
		// and fall through to a normal P2 placement on the freed cell.
		s.hash ^= s.zob[0*n*n+action]
		s.cells[action] = game.Nobody
		for i := range s.uf {
			s.uf[i] = int32(i)
		}
	}
	side := 0
	if p == game.P2 {
		side = 1
	}
	s.cells[action] = p
	s.hash ^= s.zob[side*n*n+action]
	s.hash ^= s.zob[len(s.zob)-1] // toggle side-to-move key
	s.lastMove = action
	s.moves++

	r, c := action/n, action%n
	for _, d := range hexNeighbors {
		nr, nc := r+d[0], c+d[1]
		if nr >= 0 && nr < n && nc >= 0 && nc < n && s.cells[nr*n+nc] == p {
			s.union(int32(action), int32(nr*n+nc))
		}
	}
	if p == game.P1 {
		if r == 0 {
			s.union(int32(action), s.edgeNode(ufTop))
		}
		if r == n-1 {
			s.union(int32(action), s.edgeNode(ufBottom))
		}
		if s.find(s.edgeNode(ufTop)) == s.find(s.edgeNode(ufBottom)) {
			s.winner = game.P1
			s.done = true
		}
	} else {
		if c == 0 {
			s.union(int32(action), s.edgeNode(ufLeft))
		}
		if c == n-1 {
			s.union(int32(action), s.edgeNode(ufRight))
		}
		if s.find(s.edgeNode(ufLeft)) == s.find(s.edgeNode(ufRight)) {
			s.winner = game.P2
			s.done = true
		}
	}
	s.toMove = p.Opponent()
}

// Terminal implements game.State.
func (s *State) Terminal() bool { return s.done }

// Winner implements game.State. Hex cannot draw: a terminal state always
// has a winner (Nobody only appears while the game is still running).
func (s *State) Winner() game.Player { return s.winner }

// NumActions implements game.State.
func (s *State) NumActions() int { return len(s.cells) }

// EncodedShape implements game.State.
func (s *State) EncodedShape() (c, h, w int) { return Planes, s.size, s.size }

// Encode implements game.State. Planes (from the mover's perspective):
//
//	0: stones of the player to move
//	1: stones of the opponent
//	2: one-hot last move
//	3: all-ones if the player to move is P1, else zeros
func (s *State) Encode(dst []float32) {
	n := s.size * s.size
	if len(dst) != Planes*n {
		panic("hex: Encode buffer has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	me := s.toMove
	for i, c := range s.cells {
		switch c {
		case me:
			dst[i] = 1
		case me.Opponent():
			dst[n+i] = 1
		}
	}
	if s.lastMove >= 0 {
		dst[2*n+s.lastMove] = 1
	}
	if s.toMove == game.P1 {
		for i := 0; i < n; i++ {
			dst[3*n+i] = 1
		}
	}
}

// Hash implements game.State.
func (s *State) Hash() uint64 { return s.hash }

// AppendStateKey implements game.StateKeyer: cell occupancy, the side to
// move, and whether the pie-rule steal is still live — the same board one
// ply later is a different position while the steal option exists, even
// though the cells and mover match.
func (s *State) AppendStateKey(dst []byte) []byte {
	for _, c := range s.cells {
		dst = append(dst, byte(c+1))
	}
	stealLive := byte(0)
	if s.swap && s.moves <= 1 {
		stealLive = 1
	}
	return append(dst, byte(s.toMove+1), stealLive)
}

// String renders the rhombus with the usual row indentation (X = P1
// connecting top-bottom, O = P2 connecting left-right).
func (s *State) String() string {
	var sb strings.Builder
	for r := 0; r < s.size; r++ {
		sb.WriteString(strings.Repeat(" ", r))
		for c := 0; c < s.size; c++ {
			switch s.cells[r*s.size+c] {
			case game.P1:
				sb.WriteByte('X')
			case game.P2:
				sb.WriteByte('O')
			default:
				sb.WriteByte('.')
			}
			if c < s.size-1 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
