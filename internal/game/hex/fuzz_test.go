package hex

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game/gametest"
)

// FuzzStatePlayout drives random legal playouts through the shared
// gametest invariants; the swap variant gets its own target so the steal
// ply is fuzzed too.
func FuzzStatePlayout(f *testing.F) { gametest.FuzzPlayout(f, NewSized(5)) }

func FuzzStatePlayoutSwap(f *testing.F) { gametest.FuzzPlayout(f, NewSwap(5)) }
