package othello

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/gametest"
	"github.com/parmcts/parmcts/internal/rng"
)

func TestConformance(t *testing.T) {
	for _, g := range []*Game{New(), NewSized(4), NewSized(6)} {
		t.Run(g.Name()+"-sized", func(t *testing.T) { gametest.Run(t, g) })
	}
}

func TestInitialPosition(t *testing.T) {
	st := New().NewInitial().(*State)
	p1, p2 := st.Discs()
	if p1 != 2 || p2 != 2 {
		t.Fatalf("initial discs = %d/%d, want 2/2", p1, p2)
	}
	legal := st.LegalMoves(nil)
	want := []int{2*8 + 3, 3*8 + 2, 4*8 + 5, 5*8 + 4}
	if len(legal) != len(want) {
		t.Fatalf("initial legal moves = %v, want %v", legal, want)
	}
	for i := range want {
		if legal[i] != want[i] {
			t.Fatalf("initial legal moves = %v, want %v", legal, want)
		}
	}
	if st.Legal(st.PassAction()) {
		t.Fatal("pass must be illegal while placements exist")
	}
}

func TestFlipMechanics(t *testing.T) {
	st := New().NewInitial().(*State)
	// P1 plays (2,3): brackets the P2 disc at (3,3) against P1's (4,3).
	st.Play(2*8 + 3)
	if got := st.Cell(3, 3); got != game.P1 {
		t.Fatalf("disc at (3,3) = %d, want flipped to P1", got)
	}
	p1, p2 := st.Discs()
	if p1 != 4 || p2 != 1 {
		t.Fatalf("discs after first move = %d/%d, want 4/1", p1, p2)
	}
	if st.ToMove() != game.P2 {
		t.Fatal("turn did not pass to P2")
	}
}

// TestPassAndDoublePass drives seeded random playouts on small boards and
// checks the pass machinery wherever it fires: pass is offered exactly when
// no placement exists, a single pass keeps the game going, and every game
// terminates through a double pass with the disc count deciding the winner.
func TestPassAndDoublePass(t *testing.T) {
	passesSeen, gamesEnded := 0, 0
	for seed := uint64(1); seed <= 40; seed++ {
		g := NewSized(4)
		st := g.NewInitial().(*State)
		r := rng.New(seed)
		prevWasPass := false
		for !st.Terminal() {
			legal := st.LegalMoves(nil)
			isPassTurn := len(legal) == 1 && legal[0] == st.PassAction()
			if isPassTurn != !st.hasPlacement(st.ToMove()) {
				t.Fatal("pass offered while placements exist (or withheld while none do)")
			}
			if isPassTurn {
				passesSeen++
			}
			a := legal[r.Intn(len(legal))]
			st.Play(a)
			if st.Terminal() {
				gamesEnded++
				// The only termination rule is the double pass.
				if a != st.PassAction() || !prevWasPass {
					t.Fatalf("seed %d: game ended without a double pass", seed)
				}
				p1, p2 := st.Discs()
				switch {
				case p1 > p2 && st.Winner() != game.P1:
					t.Fatalf("seed %d: winner %d with discs %d/%d", seed, st.Winner(), p1, p2)
				case p2 > p1 && st.Winner() != game.P2:
					t.Fatalf("seed %d: winner %d with discs %d/%d", seed, st.Winner(), p1, p2)
				case p1 == p2 && st.Winner() != game.Nobody:
					t.Fatalf("seed %d: drawish discs %d/%d but winner %d", seed, p1, p2, st.Winner())
				}
			}
			prevWasPass = a == st.PassAction()
		}
	}
	if passesSeen == 0 {
		t.Fatal("40 random 4x4 games never produced a forced pass; pass path untested")
	}
	if gamesEnded == 0 {
		t.Fatal("no games finished")
	}
}

// TestPassChangesHash pins the Zobrist treatment of passes: a pass flips no
// discs yet must still move the hash (side to move AND the pending-pass
// streak both change), and two same-board states that differ only in the
// pass streak hash differently.
func TestPassChangesHash(t *testing.T) {
	// Find a reachable forced-pass position on the 4x4 board.
	for seed := uint64(1); seed <= 60; seed++ {
		st := NewSized(4).NewInitial().(*State)
		r := rng.New(seed)
		for !st.Terminal() {
			legal := st.LegalMoves(nil)
			if legal[0] == st.PassAction() && len(legal) == 1 {
				before := st.Hash()
				passed := st.Clone().(*State)
				passed.Play(passed.PassAction())
				if passed.Hash() == before {
					t.Fatal("pass left the hash unchanged")
				}
				// The streak key is its own dimension: toggling only the
				// side key would collide with a no-pass transposition.
				n2 := st.size * st.size
				sideOnly := before ^ st.zob[2*n2]
				if passed.Hash() == sideOnly {
					t.Fatal("pass hashed identically to a plain side-to-move toggle")
				}
				return
			}
			st.Play(legal[r.Intn(len(legal))])
		}
	}
	t.Fatal("no forced-pass position found in 60 seeded games")
}

func TestSizeValidation(t *testing.T) {
	for _, bad := range []int{-2, 1, 2, 3, 5, 7, 18} {
		if _, err := newSized(bad); err == nil {
			t.Errorf("size %d accepted", bad)
		}
	}
	if g := NewSized(6); g.NumActions() != 37 || g.PassAction() != 36 {
		t.Errorf("6x6 actions/pass = %d/%d", g.NumActions(), g.PassAction())
	}
}
