// Package othello implements Reversi/Othello (8x8 by default). It is the
// repository's first scenario whose move dynamics go beyond stone
// placement: playing a disc flips every bracketed opponent line, a player
// with no placement must play an explicit PASS action, and two consecutive
// passes end the game with the disc count deciding the winner. The pass
// action stresses exactly the invariants the persistent-session layer
// assumes ("warm root children == legal moves"): a forced-pass position has
// a single-child root, and every game ends through the pass path.
package othello

import (
	"fmt"
	"strings"

	"github.com/parmcts/parmcts/internal/game"
)

// DefaultSize is the standard board edge length.
const DefaultSize = 8

// Planes is the number of input feature planes produced by Encode:
// own discs, opponent discs, last placement, side-to-move indicator.
const Planes = 4

func init() {
	game.Register("othello", func(size int) (game.Game, error) {
		if size == 0 {
			size = DefaultSize
		}
		return newSized(size)
	})
}

// zobrist returns the per-size table (game.ZobristTable is synchronized —
// concurrent fleet drivers create first states on G goroutines at once).
// The layout is [2*n*n cell keys][side-to-move key][pass-streak key]: a
// pending single pass changes the position's identity (the same board with
// the same mover terminates one pass sooner), so it participates in the
// hash.
func zobrist(size int) []uint64 {
	return game.ZobristTable(0x07E110+uint64(size), 2*size*size+2)
}

// Game is the Othello game factory.
type Game struct {
	Size int
}

// New returns the standard 8x8 game.
func New() *Game { return &Game{Size: DefaultSize} }

// NewSized returns a game with a custom even board edge in [4, 16] — small
// boards keep conformance and fuzz runs fast.
func NewSized(size int) *Game {
	g, err := newSized(size)
	if err != nil {
		panic("othello: " + err.Error())
	}
	return g
}

func newSized(size int) (*Game, error) {
	if size < 4 || size > 16 || size%2 != 0 {
		return nil, fmt.Errorf("board edge must be even and in [4, 16], got %d", size)
	}
	return &Game{Size: size}, nil
}

// Name implements game.Game.
func (g *Game) Name() string { return "othello" }

// NumActions implements game.Game: one action per cell plus the pass action.
func (g *Game) NumActions() int { return g.Size*g.Size + 1 }

// PassAction returns the action index of the explicit pass move.
func (g *Game) PassAction() int { return g.Size * g.Size }

// EncodedShape implements game.Game.
func (g *Game) EncodedShape() (c, h, w int) { return Planes, g.Size, g.Size }

// MaxGameLength implements game.Game. Placements are bounded by the empty
// cells (n*n - 4) and passes are never consecutive except the terminal
// pair, so 2*n*n bounds any playable game with room to spare.
func (g *Game) MaxGameLength() int { return 2 * g.Size * g.Size }

// NewInitial implements game.Game: the four centre discs in the standard
// crosswise arrangement, dark (P1) to move.
func (g *Game) NewInitial() game.State {
	n := g.Size
	s := &State{
		size:     n,
		cells:    make([]game.Player, n*n),
		toMove:   game.P1,
		lastMove: -1,
		zob:      zobrist(n),
	}
	mid := n / 2
	s.place((mid-1)*n+mid-1, game.P2)
	s.place((mid-1)*n+mid, game.P1)
	s.place(mid*n+mid-1, game.P1)
	s.place(mid*n+mid, game.P2)
	return s
}

// place puts a disc during initial setup, maintaining hash and counts.
func (s *State) place(cell int, p game.Player) {
	s.cells[cell] = p
	s.hash ^= s.zob[sideIndex(p)*s.size*s.size+cell]
	if p == game.P1 {
		s.discsP1++
	} else {
		s.discsP2++
	}
}

func sideIndex(p game.Player) int {
	if p == game.P2 {
		return 1
	}
	return 0
}

// State is an Othello position.
type State struct {
	size     int
	cells    []game.Player
	toMove   game.Player
	lastMove int // action index of the previous ply (pass included), -1 at start
	moves    int // plies played, passes included
	passes   int // consecutive passes ending at the current position
	discsP1  int
	discsP2  int
	winner   game.Player
	done     bool
	hash     uint64
	zob      []uint64
}

var _ game.State = (*State)(nil)

// Clone implements game.State.
func (s *State) Clone() game.State {
	c := *s
	c.cells = make([]game.Player, len(s.cells))
	copy(c.cells, s.cells)
	return &c
}

// ToMove implements game.State.
func (s *State) ToMove() game.Player { return s.toMove }

// Size returns the board edge length.
func (s *State) Size() int { return s.size }

// Cell returns the occupant of (row, col).
func (s *State) Cell(row, col int) game.Player { return s.cells[row*s.size+col] }

// PassAction returns the action index of the explicit pass move.
func (s *State) PassAction() int { return s.size * s.size }

// LastMove returns the previous ply's action index (PassAction for a pass),
// or -1 at the start.
func (s *State) LastMove() int { return s.lastMove }

// MoveCount returns the number of plies played, passes included.
func (s *State) MoveCount() int { return s.moves }

// Discs returns the disc counts for P1 and P2.
func (s *State) Discs() (p1, p2 int) { return s.discsP1, s.discsP2 }

var dirs = [8][2]int{
	{-1, -1}, {-1, 0}, {-1, 1},
	{0, -1}, {0, 1},
	{1, -1}, {1, 0}, {1, 1},
}

// flipsInDir returns the number of opponent discs bracketed from cell in
// one direction, or 0 when the line is not closed by one of p's discs.
func (s *State) flipsInDir(cell int, p game.Player, dr, dc int) int {
	n := s.size
	r, c := cell/n, cell%n
	count := 0
	for {
		r += dr
		c += dc
		if r < 0 || r >= n || c < 0 || c >= n {
			return 0
		}
		switch s.cells[r*n+c] {
		case p.Opponent():
			count++
		case p:
			return count
		default:
			return 0
		}
	}
}

// placementLegal reports whether p may place a disc on cell.
func (s *State) placementLegal(cell int, p game.Player) bool {
	if s.cells[cell] != game.Nobody {
		return false
	}
	for _, d := range dirs {
		if s.flipsInDir(cell, p, d[0], d[1]) > 0 {
			return true
		}
	}
	return false
}

// hasPlacement reports whether p has any legal disc placement.
func (s *State) hasPlacement(p game.Player) bool {
	for cell, occ := range s.cells {
		if occ == game.Nobody && s.placementLegal(cell, p) {
			return true
		}
	}
	return false
}

// LegalMoves implements game.State: every legal placement, or the single
// PASS action when the mover has none. The list is never empty before the
// game ends — pass is an explicit move, not an empty action set.
func (s *State) LegalMoves(dst []int) []int {
	if s.done {
		return dst
	}
	start := len(dst)
	for cell, occ := range s.cells {
		if occ == game.Nobody && s.placementLegal(cell, s.toMove) {
			dst = append(dst, cell)
		}
	}
	if len(dst) == start {
		dst = append(dst, s.PassAction())
	}
	return dst
}

// Legal implements game.State. Pass is legal exactly when the mover has no
// placement.
func (s *State) Legal(action int) bool {
	if s.done || action < 0 || action > s.PassAction() {
		return false
	}
	if action == s.PassAction() {
		return !s.hasPlacement(s.toMove)
	}
	return s.placementLegal(action, s.toMove)
}

// Play implements game.State. A placement flips every bracketed line; a
// pass flips nothing and the second consecutive pass ends the game with the
// disc count deciding the winner (equal counts draw). A full board or a
// wiped-out colour terminates through the same double-pass path, since
// neither player can place.
func (s *State) Play(action int) {
	if !s.Legal(action) {
		panic("othello: illegal move")
	}
	p := s.toMove
	n2 := s.size * s.size
	sideKey := s.zob[2*n2]
	streakKey := s.zob[2*n2+1]

	if action == s.PassAction() {
		if s.passes == 0 {
			s.hash ^= streakKey
		}
		s.passes++
		if s.passes >= 2 {
			s.done = true
			s.setWinnerByCount()
		}
	} else {
		me, opp := sideIndex(p), sideIndex(p.Opponent())
		s.cells[action] = p
		s.hash ^= s.zob[me*n2+action]
		gained := 1
		for _, d := range dirs {
			k := s.flipsInDir(action, p, d[0], d[1])
			r, c := action/s.size, action%s.size
			for i := 1; i <= k; i++ {
				cell := (r+i*d[0])*s.size + (c + i*d[1])
				s.cells[cell] = p
				s.hash ^= s.zob[opp*n2+cell]
				s.hash ^= s.zob[me*n2+cell]
				gained++
			}
		}
		flipped := gained - 1
		if p == game.P1 {
			s.discsP1 += flipped + 1
			s.discsP2 -= flipped
		} else {
			s.discsP2 += flipped + 1
			s.discsP1 -= flipped
		}
		if s.passes == 1 {
			s.hash ^= streakKey
		}
		s.passes = 0
	}
	s.hash ^= sideKey
	s.lastMove = action
	s.moves++
	s.toMove = p.Opponent()
}

func (s *State) setWinnerByCount() {
	switch {
	case s.discsP1 > s.discsP2:
		s.winner = game.P1
	case s.discsP2 > s.discsP1:
		s.winner = game.P2
	default:
		s.winner = game.Nobody
	}
}

// Terminal implements game.State.
func (s *State) Terminal() bool { return s.done }

// Winner implements game.State.
func (s *State) Winner() game.Player { return s.winner }

// NumActions implements game.State.
func (s *State) NumActions() int { return s.size*s.size + 1 }

// EncodedShape implements game.State.
func (s *State) EncodedShape() (c, h, w int) { return Planes, s.size, s.size }

// Encode implements game.State. Planes (from the mover's perspective):
//
//	0: discs of the player to move
//	1: discs of the opponent
//	2: one-hot last placement (empty after a pass or at the start)
//	3: all-ones if the player to move is P1, else zeros
func (s *State) Encode(dst []float32) {
	n := s.size * s.size
	if len(dst) != Planes*n {
		panic("othello: Encode buffer has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	me := s.toMove
	for i, c := range s.cells {
		switch c {
		case me:
			dst[i] = 1
		case me.Opponent():
			dst[n+i] = 1
		}
	}
	if s.lastMove >= 0 && s.lastMove < n {
		dst[2*n+s.lastMove] = 1
	}
	if s.toMove == game.P1 {
		for i := 0; i < n; i++ {
			dst[3*n+i] = 1
		}
	}
}

// Hash implements game.State.
func (s *State) Hash() uint64 { return s.hash }

// AppendStateKey implements game.StateKeyer: cell occupancy, the side to
// move, and the pending-pass indicator — the same identity the Zobrist
// hash covers (a position reached with one pass already on the streak
// terminates one pass sooner than the same board without it).
func (s *State) AppendStateKey(dst []byte) []byte {
	for _, c := range s.cells {
		dst = append(dst, byte(c+1))
	}
	pending := byte(0)
	if s.passes > 0 {
		pending = 1
	}
	return append(dst, byte(s.toMove+1), pending)
}

// String renders the board for debugging (X = P1 dark, O = P2 light).
func (s *State) String() string {
	var sb strings.Builder
	for r := 0; r < s.size; r++ {
		for c := 0; c < s.size; c++ {
			switch s.cells[r*s.size+c] {
			case game.P1:
				sb.WriteByte('X')
			case game.P2:
				sb.WriteByte('O')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
