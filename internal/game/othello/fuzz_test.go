package othello

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game/gametest"
)

// FuzzStatePlayout drives random legal playouts (pass chains included)
// through the shared gametest invariants: no panics, Winner only at
// Terminal, hashes move on every ply, MaxGameLength holds.
func FuzzStatePlayout(f *testing.F) { gametest.FuzzPlayout(f, NewSized(6)) }
