package tictactoe

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
)

func TestRowWin(t *testing.T) {
	g := New()
	s := g.NewInitial()
	for _, mv := range []int{0, 3, 1, 4, 2} {
		s.Play(mv)
	}
	if !s.Terminal() || s.Winner() != game.P1 {
		t.Fatal("expected P1 top-row win")
	}
}

func TestDiagonalWinP2(t *testing.T) {
	g := New()
	s := g.NewInitial()
	for _, mv := range []int{1, 0, 3, 4, 5, 8} {
		s.Play(mv)
	}
	if !s.Terminal() || s.Winner() != game.P2 {
		t.Fatalf("expected P2 diagonal win, got %v", s.Winner())
	}
}

func TestDraw(t *testing.T) {
	g := New()
	s := g.NewInitial()
	// X O X / X O O / O X X : a known draw sequence
	for _, mv := range []int{0, 1, 2, 4, 3, 5, 7, 6, 8} {
		s.Play(mv)
	}
	if !s.Terminal() || s.Winner() != game.Nobody {
		t.Fatalf("expected draw, terminal=%v winner=%v", s.Terminal(), s.Winner())
	}
}

func TestExhaustiveEnumeration(t *testing.T) {
	// Walk the entire game tree and check global invariants. The full
	// tic-tac-toe tree has 255168 leaf games; we also verify the standard
	// win/draw/loss counts as a strong correctness oracle.
	var wins1, wins2, draws int
	var walk func(s game.State)
	walk = func(s game.State) {
		if s.Terminal() {
			switch s.Winner() {
			case game.P1:
				wins1++
			case game.P2:
				wins2++
			default:
				draws++
			}
			return
		}
		for _, mv := range s.LegalMoves(nil) {
			c := s.Clone()
			c.Play(mv)
			walk(c)
		}
	}
	walk(New().NewInitial())
	if wins1 != 131184 || wins2 != 77904 || draws != 46080 {
		t.Fatalf("tree counts: P1=%d P2=%d draws=%d, want 131184/77904/46080",
			wins1, wins2, draws)
	}
}

func TestEncodeRoundTripsPerspective(t *testing.T) {
	g := New()
	s := g.NewInitial()
	s.Play(4)
	enc := make([]float32, 36)
	s.Encode(enc)
	if enc[9+4] != 1 {
		t.Error("X's center stone should be on the opponent plane for O")
	}
	if enc[27] != 0 {
		t.Error("side plane should be 0 when O to move")
	}
}

func TestRandomGamesTerminate(t *testing.T) {
	r := rng.New(8)
	g := New()
	for i := 0; i < 1000; i++ {
		s := g.NewInitial()
		var buf []int
		for !s.Terminal() {
			buf = s.LegalMoves(buf[:0])
			s.Play(buf[r.Intn(len(buf))])
		}
	}
}
