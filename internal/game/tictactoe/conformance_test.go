package tictactoe

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game/gametest"
)

func TestConformance(t *testing.T) { gametest.Run(t, New()) }

func FuzzStatePlayout(f *testing.F) { gametest.FuzzPlayout(f, New()) }
