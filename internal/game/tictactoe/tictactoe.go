// Package tictactoe implements 3x3 noughts-and-crosses. Its game tree is
// small enough to solve exhaustively, which makes it the correctness anchor
// for the search engines: a sufficiently-deep MCTS must never lose from the
// empty board, and must find immediate wins/blocks.
package tictactoe

import (
	"fmt"
	"strings"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
)

const size = 3

func init() {
	game.Register("tictactoe", func(sz int) (game.Game, error) {
		if sz != 0 && sz != size {
			return nil, fmt.Errorf("board is fixed at %dx%d, cannot size to %d", size, size, sz)
		}
		return New(), nil
	})
}

// Planes is the number of encoding planes (mirrors gomoku's layout).
const Planes = 4

var zobristTab = func() []uint64 {
	r := rng.New(0x7AC7AC)
	t := make([]uint64, 2*size*size+1)
	for i := range t {
		t[i] = r.Uint64()
	}
	return t
}()

var winLines = [8][3]int{
	{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, // rows
	{0, 3, 6}, {1, 4, 7}, {2, 5, 8}, // cols
	{0, 4, 8}, {2, 4, 6}, // diagonals
}

// Game is the tic-tac-toe factory.
type Game struct{}

// New returns the game.
func New() *Game { return &Game{} }

// Name implements game.Game.
func (*Game) Name() string { return "tictactoe" }

// NumActions implements game.Game.
func (*Game) NumActions() int { return 9 }

// EncodedShape implements game.Game.
func (*Game) EncodedShape() (c, h, w int) { return Planes, size, size }

// MaxGameLength implements game.Game.
func (*Game) MaxGameLength() int { return 9 }

// NewInitial implements game.Game.
func (*Game) NewInitial() game.State {
	return &State{toMove: game.P1, lastMove: -1}
}

// State is a tic-tac-toe position.
type State struct {
	cells    [9]game.Player
	toMove   game.Player
	lastMove int
	moves    int
	winner   game.Player
	done     bool
	hash     uint64
}

var _ game.State = (*State)(nil)

// Clone implements game.State.
func (s *State) Clone() game.State {
	c := *s
	return &c
}

// ToMove implements game.State.
func (s *State) ToMove() game.Player { return s.toMove }

// LegalMoves implements game.State.
func (s *State) LegalMoves(dst []int) []int {
	if s.done {
		return dst
	}
	for i, c := range s.cells {
		if c == game.Nobody {
			dst = append(dst, i)
		}
	}
	return dst
}

// Legal implements game.State.
func (s *State) Legal(action int) bool {
	return !s.done && action >= 0 && action < 9 && s.cells[action] == game.Nobody
}

// Play implements game.State.
func (s *State) Play(action int) {
	if !s.Legal(action) {
		panic("tictactoe: illegal move")
	}
	p := s.toMove
	s.cells[action] = p
	side := 0
	if p == game.P2 {
		side = 1
	}
	s.hash ^= zobristTab[side*9+action]
	s.hash ^= zobristTab[len(zobristTab)-1]
	s.lastMove = action
	s.moves++
	for _, line := range winLines {
		if s.cells[line[0]] == p && s.cells[line[1]] == p && s.cells[line[2]] == p {
			s.winner = p
			s.done = true
			break
		}
	}
	if !s.done && s.moves == 9 {
		s.done = true
	}
	s.toMove = p.Opponent()
}

// Terminal implements game.State.
func (s *State) Terminal() bool { return s.done }

// Winner implements game.State.
func (s *State) Winner() game.Player { return s.winner }

// NumActions implements game.State.
func (s *State) NumActions() int { return 9 }

// EncodedShape implements game.State.
func (s *State) EncodedShape() (c, h, w int) { return Planes, size, size }

// Encode implements game.State (same plane layout as gomoku).
func (s *State) Encode(dst []float32) {
	if len(dst) != Planes*9 {
		panic("tictactoe: Encode buffer has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	me := s.toMove
	for i, c := range s.cells {
		switch c {
		case me:
			dst[i] = 1
		case me.Opponent():
			dst[9+i] = 1
		}
	}
	if s.lastMove >= 0 {
		dst[18+s.lastMove] = 1
	}
	if s.toMove == game.P1 {
		for i := 0; i < 9; i++ {
			dst[27+i] = 1
		}
	}
}

// Hash implements game.State.
func (s *State) Hash() uint64 { return s.hash }

// AppendStateKey implements game.StateKeyer: cell occupancy plus the side
// to move — exactly the identity the Zobrist hash covers.
func (s *State) AppendStateKey(dst []byte) []byte {
	for _, c := range s.cells {
		dst = append(dst, byte(c+1))
	}
	return append(dst, byte(s.toMove+1))
}

// String renders the board.
func (s *State) String() string {
	var sb strings.Builder
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			switch s.cells[r*3+c] {
			case game.P1:
				sb.WriteByte('X')
			case game.P2:
				sb.WriteByte('O')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
