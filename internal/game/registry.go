package game

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Factory builds a Game instance. size is the caller-requested board edge
// (0 selects the game's default); factories reject sizes the game does not
// support so a bad -game flag fails loudly instead of mis-sizing a network.
type Factory func(size int) (Game, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a game factory under name. Game packages call it from
// init(); importing internal/game/games (blank import is enough) links the
// whole scenario catalogue into a binary. Registering an empty name, a nil
// factory, or a duplicate name panics: all three are programmer errors that
// must fail at init time, not at flag-parse time.
func Register(name string, f Factory) {
	if name == "" {
		panic("game: Register with empty name")
	}
	if strings.ContainsAny(name, ": \t\n") {
		panic(fmt.Sprintf("game: Register name %q contains a separator", name))
	}
	if f == nil {
		panic(fmt.Sprintf("game: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("game: Register(%q) called twice", name))
	}
	registry[name] = f
}

// New instantiates a registered game. size 0 selects the game's default
// board; games with a fixed board reject any other size.
func New(name string, size int) (Game, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("game: unknown game %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	g, err := f(size)
	if err != nil {
		return nil, fmt.Errorf("game: %s: %w", name, err)
	}
	return g, nil
}

// NewFromSpec instantiates a game from a "name" or "name:size" spec — the
// grammar of the shared -game command-line flag (e.g. "othello", "hex:11",
// "gomoku:9").
func NewFromSpec(spec string) (Game, error) {
	name, sizeStr, hasSize := strings.Cut(strings.TrimSpace(spec), ":")
	size := 0
	if hasSize {
		v, err := strconv.Atoi(sizeStr)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("game: bad size %q in spec %q", sizeStr, spec)
		}
		size = v
	}
	return New(name, size)
}

// Names returns the sorted names of all registered games.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
