package gomoku

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
)

func TestInitialState(t *testing.T) {
	g := New()
	s := g.NewInitial()
	if s.Terminal() {
		t.Fatal("initial state terminal")
	}
	if s.ToMove() != game.P1 {
		t.Fatal("P1 should move first")
	}
	moves := s.LegalMoves(nil)
	if len(moves) != 225 {
		t.Fatalf("legal moves = %d, want 225", len(moves))
	}
	if g.NumActions() != 225 || g.MaxGameLength() != 225 {
		t.Error("metadata wrong")
	}
	c, h, w := g.EncodedShape()
	if c != 4 || h != 15 || w != 15 {
		t.Errorf("shape = %d,%d,%d", c, h, w)
	}
}

func TestNewSizedRejectsTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSized(3) did not panic")
		}
	}()
	NewSized(3)
}

func TestHorizontalWin(t *testing.T) {
	g := NewSized(7)
	s := g.NewInitial().(*State)
	// P1 plays row 0 cols 0..4; P2 plays row 6.
	for i := 0; i < 4; i++ {
		s.Play(i)       // P1
		s.Play(6*7 + i) // P2
	}
	s.Play(4) // fifth in a row
	if !s.Terminal() || s.Winner() != game.P1 {
		t.Fatalf("expected P1 win, terminal=%v winner=%v\n%s", s.Terminal(), s.Winner(), s)
	}
}

func TestVerticalAndDiagonalWins(t *testing.T) {
	dirs := []struct {
		name string
		move func(i int) (r, c int)
	}{
		{"vertical", func(i int) (int, int) { return i, 0 }},
		{"diag", func(i int) (int, int) { return i, i }},
		{"antidiag", func(i int) (int, int) { return i, 6 - i }},
	}
	for _, d := range dirs {
		g := NewSized(7)
		s := g.NewInitial().(*State)
		for i := 0; i < 4; i++ {
			r, c := d.move(i)
			s.Play(r*7 + c)
			s.Play(6*7 + 6 - i) // P2 filler on top row
		}
		r, c := d.move(4)
		s.Play(r*7 + c)
		if !s.Terminal() || s.Winner() != game.P1 {
			t.Errorf("%s: expected P1 win\n%s", d.name, s)
		}
	}
}

func TestP2CanWin(t *testing.T) {
	g := NewSized(7)
	s := g.NewInitial().(*State)
	// P1 scatters, P2 builds row 3.
	fill := []int{0, 1, 2, 3, 5}
	for i := 0; i < 5; i++ {
		s.Play(fill[i]) // P1 (row 0, skipping a five-in-a-row)
		s.Play(3*7 + i) // P2
		if s.Terminal() {
			break
		}
	}
	if s.Winner() != game.P2 {
		t.Fatalf("expected P2 win, got %v\n%s", s.Winner(), s)
	}
}

func TestNoFalseWin(t *testing.T) {
	g := NewSized(7)
	s := g.NewInitial().(*State)
	// Four in a row only — must not be terminal.
	for i := 0; i < 4; i++ {
		s.Play(i)
		s.Play(6*7 + i)
	}
	if s.Terminal() {
		t.Fatal("four in a row should not end the game")
	}
}

func TestDrawOnFullBoard(t *testing.T) {
	// Play a 5x5 board to exhaustion with a pattern that avoids 5-in-a-row:
	// column permutation pattern rows of XXOOX etc. Simplest: verify with
	// random playouts that a finished game is either a win or a full-board
	// draw, and draws report Nobody.
	r := rng.New(77)
	g := NewSized(5)
	for trial := 0; trial < 200; trial++ {
		s := g.NewInitial().(*State)
		var buf []int
		for !s.Terminal() {
			buf = s.LegalMoves(buf[:0])
			s.Play(buf[r.Intn(len(buf))])
		}
		if s.Winner() == game.Nobody && s.MoveCount() != 25 {
			t.Fatal("draw declared before board full")
		}
		if s.Winner() != game.Nobody {
			// terminal with a winner: last mover is the winner
			if s.ToMove() == s.Winner() {
				t.Fatal("winner should be the player who just moved")
			}
		}
	}
}

func TestIllegalMovePanics(t *testing.T) {
	g := New()
	s := g.NewInitial()
	s.Play(0)
	defer func() {
		if recover() == nil {
			t.Fatal("occupied-cell move did not panic")
		}
	}()
	s.Play(0)
}

func TestMovesAfterTerminalAreEmpty(t *testing.T) {
	g := NewSized(7)
	s := g.NewInitial().(*State)
	for i := 0; i < 4; i++ {
		s.Play(i)
		s.Play(6*7 + i)
	}
	s.Play(4)
	if got := s.LegalMoves(nil); len(got) != 0 {
		t.Fatalf("terminal state reports %d legal moves", len(got))
	}
	if s.Legal(10) {
		t.Fatal("Legal should be false after terminal")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	s := g.NewInitial().(*State)
	s.Play(112)
	c := s.Clone().(*State)
	c.Play(113)
	if s.MoveCount() != 1 || c.MoveCount() != 2 {
		t.Fatal("clone shares state")
	}
	if s.Cell(7, 8) != game.Nobody {
		t.Fatal("clone mutation leaked into parent")
	}
}

func TestHashTransposition(t *testing.T) {
	// Same position reached by different move orders hashes equally.
	g := New()
	a := g.NewInitial()
	b := g.NewInitial()
	a.Play(0)
	a.Play(50)
	a.Play(1)
	b.Play(1)
	b.Play(50)
	b.Play(0)
	// Note: lastMove differs (1 vs 0) but the zobrist hash intentionally
	// tracks only stone placement + side, so hashes must match.
	if a.Hash() != b.Hash() {
		t.Fatal("transposed positions hash differently")
	}
	c := g.NewInitial()
	c.Play(0)
	if c.Hash() == a.Hash() {
		t.Fatal("different positions hash equal")
	}
}

func TestHashSideToMove(t *testing.T) {
	g := New()
	a := g.NewInitial()
	if a.Hash() == func() uint64 { s := g.NewInitial(); s.Play(0); return s.Hash() }() {
		t.Fatal("hash ignores moves")
	}
}

func TestEncodePerspective(t *testing.T) {
	g := NewSized(5)
	s := g.NewInitial().(*State)
	s.Play(0) // P1 at 0
	n := 25
	enc := make([]float32, 4*n)
	s.Encode(enc)
	// Now P2 to move: plane 0 = P2 stones (none), plane 1 = P1 stones.
	if enc[0] != 0 {
		t.Error("plane 0 should be empty for P2")
	}
	if enc[n+0] != 1 {
		t.Error("plane 1 should contain P1's stone")
	}
	if enc[2*n+0] != 1 {
		t.Error("plane 2 should mark last move")
	}
	for i := 0; i < n; i++ {
		if enc[3*n+i] != 0 {
			t.Fatal("plane 3 should be zeros when P2 to move")
		}
	}
	s.Play(1) // P2 at 1; back to P1
	s.Encode(enc)
	if enc[0] != 1 || enc[n+1] != 1 || enc[3*n] != 1 {
		t.Error("perspective encoding wrong after second move")
	}
}

func TestEncodeBufferLengthPanics(t *testing.T) {
	g := New()
	s := g.NewInitial()
	defer func() {
		if recover() == nil {
			t.Fatal("short Encode buffer did not panic")
		}
	}()
	s.Encode(make([]float32, 10))
}

func TestRandomPlayoutsInvariants(t *testing.T) {
	r := rng.New(99)
	g := New()
	if err := quick.Check(func(seed uint64) bool {
		rr := rng.New(seed)
		s := g.NewInitial().(*State)
		var buf []int
		plies := 0
		for !s.Terminal() && plies < 225 {
			buf = s.LegalMoves(buf[:0])
			if len(buf) != 225-plies {
				return false
			}
			mv := buf[rr.Intn(len(buf))]
			if !s.Legal(mv) {
				return false
			}
			before := s.ToMove()
			s.Play(mv)
			if !s.Terminal() && s.ToMove() == before {
				return false
			}
			plies++
		}
		return s.Terminal() || plies == 225
	}, &quick.Config{MaxCount: 20, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSymmetryIndexIsPermutation(t *testing.T) {
	for sym := 0; sym < NumSymmetries; sym++ {
		seen := make(map[int]bool, 225)
		for idx := 0; idx < 225; idx++ {
			j := SymmetryIndex(sym, 15, idx)
			if j < 0 || j >= 225 || seen[j] {
				t.Fatalf("sym %d not a permutation at %d", sym, idx)
			}
			seen[j] = true
		}
	}
}

func TestInverseSymmetry(t *testing.T) {
	for sym := 0; sym < NumSymmetries; sym++ {
		inv := InverseSymmetry(sym)
		for idx := 0; idx < 225; idx += 13 {
			if got := SymmetryIndex(inv, 15, SymmetryIndex(sym, 15, idx)); got != idx {
				t.Fatalf("inverse of sym %d wrong: idx %d -> %d", sym, idx, got)
			}
		}
	}
}

func TestSymmetryPolicyMassPreserved(t *testing.T) {
	r := rng.New(31)
	src := make([]float32, 225)
	var sum float32
	for i := range src {
		src[i] = r.Float32()
		sum += src[i]
	}
	for sym := 0; sym < NumSymmetries; sym++ {
		dst := make([]float32, 225)
		ApplySymmetryPolicy(dst, src, sym, 15)
		var got float32
		for _, v := range dst {
			got += v
		}
		if math.Abs(float64(got-sum)) > 1e-3 {
			t.Errorf("sym %d lost mass: %v vs %v", sym, got, sum)
		}
	}
}

func TestSymmetryPlanesConsistentWithPolicy(t *testing.T) {
	// Transforming the encoding planes and the policy with the same symmetry
	// must keep them aligned: the stone plane equals the policy one-hot.
	g := NewSized(7)
	s := g.NewInitial().(*State)
	s.Play(2*7 + 3)
	n := 49
	enc := make([]float32, 4*n)
	s.Encode(enc)
	policy := make([]float32, n)
	policy[2*7+3] = 1
	for sym := 0; sym < NumSymmetries; sym++ {
		encT := make([]float32, 4*n)
		polT := make([]float32, n)
		ApplySymmetryPlanes(encT, enc, sym, 4, 7)
		ApplySymmetryPolicy(polT, policy, sym, 7)
		for i := 0; i < n; i++ {
			if encT[n+i] != polT[i] { // plane 1 holds P1's stone (P2 to move)
				t.Fatalf("sym %d misaligned at %d", sym, i)
			}
		}
	}
}

func BenchmarkPlayClone(b *testing.B) {
	g := New()
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := g.NewInitial().(*State)
		var buf []int
		for j := 0; j < 30 && !s.Terminal(); j++ {
			buf = s.LegalMoves(buf[:0])
			s.Play(buf[r.Intn(len(buf))])
			_ = s.Clone()
		}
	}
}
