package gomoku

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game/gametest"
)

func TestConformance(t *testing.T) {
	for _, g := range []*Game{New(), NewSized(7)} {
		t.Run(g.Name(), func(t *testing.T) { gametest.Run(t, g) })
	}
}

func FuzzStatePlayout(f *testing.F) { gametest.FuzzPlayout(f, NewSized(7)) }
