// Package gomoku implements the 15x15 five-in-a-row benchmark used in the
// paper's evaluation (Section 5.1). The board size, action space (225) and
// four-plane network encoding follow the reference Gomoku AlphaZero setup
// the paper builds on.
package gomoku

import (
	"fmt"
	"strings"

	"github.com/parmcts/parmcts/internal/game"
)

// DefaultSize is the board edge length used throughout the paper.
const DefaultSize = 15

func init() {
	game.Register("gomoku", func(size int) (game.Game, error) {
		if size == 0 {
			size = DefaultSize
		}
		if size < WinLength {
			return nil, fmt.Errorf("board %d smaller than win length %d", size, WinLength)
		}
		return &Game{Size: size}, nil
	})
}

// WinLength is the number of aligned stones required to win.
const WinLength = 5

// Planes is the number of input feature planes produced by Encode:
// own stones, opponent stones, last move, side-to-move indicator.
const Planes = 4

// zobrist tables are generated once per board size from a fixed seed so
// hashes are stable across runs; game.ZobristTable synchronizes the lazy
// cache against concurrent fleet drivers.
func zobrist(size int) []uint64 {
	return game.ZobristTable(0x60AB0C0DE+uint64(size), 2*size*size+1)
}

// Game is the Gomoku game factory.
type Game struct {
	Size int
}

// New returns a Gomoku game with the standard 15x15 board.
func New() *Game { return &Game{Size: DefaultSize} }

// NewSized returns a Gomoku game with a custom board edge (min 5), useful
// for fast tests.
func NewSized(size int) *Game {
	if size < WinLength {
		panic("gomoku: board smaller than win length")
	}
	return &Game{Size: size}
}

// Name implements game.Game.
func (g *Game) Name() string { return "gomoku" }

// NumActions implements game.Game.
func (g *Game) NumActions() int { return g.Size * g.Size }

// EncodedShape implements game.Game.
func (g *Game) EncodedShape() (c, h, w int) { return Planes, g.Size, g.Size }

// MaxGameLength implements game.Game.
func (g *Game) MaxGameLength() int { return g.Size * g.Size }

// NewInitial implements game.Game.
func (g *Game) NewInitial() game.State {
	return &State{
		size:     g.Size,
		cells:    make([]game.Player, g.Size*g.Size),
		toMove:   game.P1,
		lastMove: -1,
		zob:      zobrist(g.Size),
	}
}

// State is a Gomoku position.
type State struct {
	size     int
	cells    []game.Player
	toMove   game.Player
	lastMove int
	moves    int
	winner   game.Player
	done     bool
	hash     uint64
	zob      []uint64
}

var _ game.State = (*State)(nil)

// Clone implements game.State.
func (s *State) Clone() game.State {
	c := *s
	c.cells = make([]game.Player, len(s.cells))
	copy(c.cells, s.cells)
	return &c
}

// ToMove implements game.State.
func (s *State) ToMove() game.Player { return s.toMove }

// Size returns the board edge length.
func (s *State) Size() int { return s.size }

// Cell returns the occupant of (row, col).
func (s *State) Cell(row, col int) game.Player { return s.cells[row*s.size+col] }

// LastMove returns the most recent action index, or -1 at the start.
func (s *State) LastMove() int { return s.lastMove }

// MoveCount returns the number of stones placed.
func (s *State) MoveCount() int { return s.moves }

// LegalMoves implements game.State.
func (s *State) LegalMoves(dst []int) []int {
	if s.done {
		return dst
	}
	for i, c := range s.cells {
		if c == game.Nobody {
			dst = append(dst, i)
		}
	}
	return dst
}

// Legal implements game.State.
func (s *State) Legal(action int) bool {
	return !s.done && action >= 0 && action < len(s.cells) && s.cells[action] == game.Nobody
}

// Play implements game.State.
func (s *State) Play(action int) {
	if !s.Legal(action) {
		panic("gomoku: illegal move")
	}
	p := s.toMove
	s.cells[action] = p
	side := 0
	if p == game.P2 {
		side = 1
	}
	s.hash ^= s.zob[side*s.size*s.size+action]
	s.hash ^= s.zob[len(s.zob)-1] // toggle side-to-move key
	s.lastMove = action
	s.moves++
	if s.winsAt(action, p) {
		s.winner = p
		s.done = true
	} else if s.moves == len(s.cells) {
		s.done = true // draw: board full
	}
	s.toMove = p.Opponent()
}

// winsAt checks the four line directions through the just-played cell,
// an O(WinLength) incremental check instead of a full board scan.
func (s *State) winsAt(action int, p game.Player) bool {
	row, col := action/s.size, action%s.size
	dirs := [4][2]int{{0, 1}, {1, 0}, {1, 1}, {1, -1}}
	for _, d := range dirs {
		count := 1
		for sign := -1; sign <= 1; sign += 2 {
			r, c := row, col
			for {
				r += sign * d[0]
				c += sign * d[1]
				if r < 0 || r >= s.size || c < 0 || c >= s.size || s.cells[r*s.size+c] != p {
					break
				}
				count++
			}
		}
		if count >= WinLength {
			return true
		}
	}
	return false
}

// Terminal implements game.State.
func (s *State) Terminal() bool { return s.done }

// Winner implements game.State.
func (s *State) Winner() game.Player { return s.winner }

// NumActions implements game.State.
func (s *State) NumActions() int { return len(s.cells) }

// EncodedShape implements game.State.
func (s *State) EncodedShape() (c, h, w int) { return Planes, s.size, s.size }

// Encode implements game.State. Planes (from the mover's perspective):
//
//	0: stones of the player to move
//	1: stones of the opponent
//	2: one-hot last move
//	3: all-ones if the player to move is P1, else zeros
func (s *State) Encode(dst []float32) {
	n := s.size * s.size
	if len(dst) != Planes*n {
		panic("gomoku: Encode buffer has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	me := s.toMove
	for i, c := range s.cells {
		switch c {
		case me:
			dst[i] = 1
		case me.Opponent():
			dst[n+i] = 1
		}
	}
	if s.lastMove >= 0 {
		dst[2*n+s.lastMove] = 1
	}
	if s.toMove == game.P1 {
		for i := 0; i < n; i++ {
			dst[3*n+i] = 1
		}
	}
}

// Hash implements game.State.
func (s *State) Hash() uint64 { return s.hash }

// AppendStateKey implements game.StateKeyer: cell occupancy plus the side
// to move — exactly the identity the Zobrist hash covers.
func (s *State) AppendStateKey(dst []byte) []byte {
	for _, c := range s.cells {
		dst = append(dst, byte(c+1))
	}
	return append(dst, byte(s.toMove+1))
}

// String renders the board for debugging.
func (s *State) String() string {
	var sb strings.Builder
	for r := 0; r < s.size; r++ {
		for c := 0; c < s.size; c++ {
			switch s.cells[r*s.size+c] {
			case game.P1:
				sb.WriteByte('X')
			case game.P2:
				sb.WriteByte('O')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
