package gomoku

// NumSymmetries is the size of the dihedral group of the square board:
// 4 rotations x optional reflection. Self-play training data is augmented
// 8-fold, which is standard for AlphaZero-style Gomoku/Go training and
// multiplies the samples produced per episode.
const NumSymmetries = 8

// SymmetryIndex maps a cell index through dihedral symmetry sym
// (0..NumSymmetries-1) on a size x size board. Symmetry 0 is the identity;
// 1..3 are 90/180/270-degree rotations; 4..7 are the same after a horizontal
// flip.
func SymmetryIndex(sym, size, idx int) int {
	r, c := idx/size, idx%size
	if sym >= 4 {
		c = size - 1 - c
	}
	for i := 0; i < sym%4; i++ {
		r, c = c, size-1-r // rotate 90 degrees clockwise
	}
	return r*size + c
}

// InverseSymmetry returns the symmetry that undoes sym.
func InverseSymmetry(sym int) int {
	switch sym {
	case 1:
		return 3
	case 3:
		return 1
	default:
		return sym // identity, 180, and all reflections are involutions
	}
}

// ApplySymmetryPolicy writes into dst the policy vector transformed by sym.
// dst and src must both have size*size entries and must not alias.
func ApplySymmetryPolicy(dst, src []float32, sym, size int) {
	for idx := range src {
		dst[SymmetryIndex(sym, size, idx)] = src[idx]
	}
}

// ApplySymmetryPlanes transforms a planes x size x size feature tensor.
// dst and src must not alias.
func ApplySymmetryPlanes(dst, src []float32, sym, planes, size int) {
	n := size * size
	for p := 0; p < planes; p++ {
		sp := src[p*n : (p+1)*n]
		dp := dst[p*n : (p+1)*n]
		for idx := range sp {
			dp[SymmetryIndex(sym, size, idx)] = sp[idx]
		}
	}
}
