package game

import "testing"

func TestOpponent(t *testing.T) {
	if P1.Opponent() != P2 || P2.Opponent() != P1 {
		t.Fatal("Opponent wrong")
	}
}

func TestOutcome(t *testing.T) {
	cases := []struct {
		winner, persp Player
		want          float64
	}{
		{P1, P1, 1}, {P1, P2, -1}, {P2, P2, 1}, {P2, P1, -1},
		{Nobody, P1, 0}, {Nobody, P2, 0},
	}
	for _, c := range cases {
		if got := Outcome(c.winner, c.persp); got != c.want {
			t.Errorf("Outcome(%v,%v) = %v, want %v", c.winner, c.persp, got, c.want)
		}
	}
}
