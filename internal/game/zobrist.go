package game

import (
	"sync"

	"github.com/parmcts/parmcts/internal/rng"
)

// zobristCache memoises generated tables per (seed, length) so every state
// of a given game+size shares one table. The mutex matters: concurrent
// drivers (the G-game self-play fleet) create their first states on G
// goroutines at once, and an unsynchronized lazy map here is a runtime
// "concurrent map read and map write" crash.
var (
	zobristMu    sync.Mutex
	zobristCache = map[zobristKey][]uint64{}
)

type zobristKey struct {
	seed uint64
	n    int
}

// ZobristTable returns a deterministic table of n hash keys derived from
// seed, cached and safe for concurrent use. Game packages use it for their
// per-board-size Zobrist tables; identical (seed, n) pairs always yield
// the identical table, keeping hashes stable across runs and machines.
func ZobristTable(seed uint64, n int) []uint64 {
	zobristMu.Lock()
	defer zobristMu.Unlock()
	key := zobristKey{seed, n}
	if tab, ok := zobristCache[key]; ok {
		return tab
	}
	r := rng.New(seed)
	tab := make([]uint64, n)
	for i := range tab {
		tab[i] = r.Uint64()
	}
	zobristCache[key] = tab
	return tab
}
