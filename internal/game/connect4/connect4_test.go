package connect4

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
)

func TestGravity(t *testing.T) {
	g := New()
	s := g.NewInitial().(*State)
	s.Play(3) // P1 bottom of col 3
	s.Play(3) // P2 stacks on top
	if s.cells[0*Cols+3] != game.P1 {
		t.Error("first drop should land at row 0")
	}
	if s.cells[1*Cols+3] != game.P2 {
		t.Error("second drop should stack at row 1")
	}
}

func TestColumnFillsUp(t *testing.T) {
	g := New()
	s := g.NewInitial().(*State)
	for i := 0; i < Rows; i++ {
		s.Play(0)
	}
	if s.Legal(0) {
		t.Fatal("full column should be illegal")
	}
	moves := s.LegalMoves(nil)
	if len(moves) != Cols-1 {
		t.Fatalf("legal moves = %d, want %d", len(moves), Cols-1)
	}
}

func TestVerticalWin(t *testing.T) {
	g := New()
	s := g.NewInitial().(*State)
	for i := 0; i < 3; i++ {
		s.Play(0) // P1
		s.Play(1) // P2
	}
	s.Play(0) // P1 fourth
	if !s.Terminal() || s.Winner() != game.P1 {
		t.Fatalf("expected P1 vertical win:\n%s", s)
	}
}

func TestHorizontalWin(t *testing.T) {
	g := New()
	s := g.NewInitial().(*State)
	for i := 0; i < 3; i++ {
		s.Play(i) // P1 bottom row
		s.Play(i) // P2 stacks above
	}
	s.Play(3)
	if !s.Terminal() || s.Winner() != game.P1 {
		t.Fatalf("expected P1 horizontal win:\n%s", s)
	}
}

func TestDiagonalWin(t *testing.T) {
	g := New()
	s := g.NewInitial().(*State)
	// Build a / diagonal for P1 at (0,0),(1,1),(2,2),(3,3).
	plays := []int{0, 1, 1, 2, 2, 3, 2, 3, 3, 5, 3}
	for _, c := range plays {
		s.Play(c)
	}
	if !s.Terminal() || s.Winner() != game.P1 {
		t.Fatalf("expected P1 diagonal win:\n%s", s)
	}
}

func TestIllegalPanics(t *testing.T) {
	g := New()
	s := g.NewInitial()
	defer func() {
		if recover() == nil {
			t.Fatal("column 9 did not panic")
		}
	}()
	s.Play(9)
}

func TestRandomPlayoutInvariants(t *testing.T) {
	r := rng.New(5)
	g := New()
	for trial := 0; trial < 500; trial++ {
		s := g.NewInitial().(*State)
		var buf []int
		plies := 0
		for !s.Terminal() {
			buf = s.LegalMoves(buf[:0])
			if len(buf) == 0 {
				t.Fatal("non-terminal state with no moves")
			}
			s.Play(buf[r.Intn(len(buf))])
			plies++
			if plies > Rows*Cols {
				t.Fatal("game exceeded max length")
			}
		}
		if s.Winner() == game.Nobody && plies != Rows*Cols {
			t.Fatal("draw before board full")
		}
	}
}

func TestEncodeShape(t *testing.T) {
	g := New()
	s := g.NewInitial()
	c, h, w := s.EncodedShape()
	if c != Planes || h != Rows || w != Cols {
		t.Fatalf("shape %d,%d,%d", c, h, w)
	}
	enc := make([]float32, c*h*w)
	s.Play(3)
	s.Encode(enc)
	n := Rows * Cols
	if enc[n+3] != 1 { // P1 stone from P2's perspective
		t.Error("opponent plane missing stone")
	}
	if enc[2*n+3] != 1 {
		t.Error("last-move plane missing")
	}
}

func TestHashChangesPerMove(t *testing.T) {
	g := New()
	s := g.NewInitial()
	h0 := s.Hash()
	s.Play(0)
	h1 := s.Hash()
	s.Play(0)
	h2 := s.Hash()
	if h0 == h1 || h1 == h2 || h0 == h2 {
		t.Fatal("hash collisions across consecutive moves")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New()
	s := g.NewInitial().(*State)
	s.Play(0)
	c := s.Clone().(*State)
	c.Play(0)
	if s.height[0] != 1 || c.height[0] != 2 {
		t.Fatal("clone shares height array")
	}
}
