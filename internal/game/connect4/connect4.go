// Package connect4 implements 7x6 Connect Four. Compared to Gomoku it has a
// much smaller fanout (7) and deeper forced tactics, which stresses the
// opposite corner of the performance-model parameter space (the tree-depth
// term of T_select) and serves as the second domain-specific example.
package connect4

import (
	"fmt"
	"strings"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
)

// Board dimensions.
const (
	Cols = 7
	Rows = 6
)

func init() {
	game.Register("connect4", func(size int) (game.Game, error) {
		if size != 0 {
			return nil, fmt.Errorf("board is fixed at %dx%d, cannot size to %d", Cols, Rows, size)
		}
		return New(), nil
	})
}

// Planes is the number of encoding planes (mirrors gomoku's layout).
const Planes = 4

var zobristTab = func() []uint64 {
	r := rng.New(0xC0441EC7)
	t := make([]uint64, 2*Cols*Rows+1)
	for i := range t {
		t[i] = r.Uint64()
	}
	return t
}()

// Game is the Connect Four factory.
type Game struct{}

// New returns the game.
func New() *Game { return &Game{} }

// Name implements game.Game.
func (*Game) Name() string { return "connect4" }

// NumActions implements game.Game. Actions are column drops.
func (*Game) NumActions() int { return Cols }

// EncodedShape implements game.Game.
func (*Game) EncodedShape() (c, h, w int) { return Planes, Rows, Cols }

// MaxGameLength implements game.Game.
func (*Game) MaxGameLength() int { return Cols * Rows }

// NewInitial implements game.Game.
func (*Game) NewInitial() game.State {
	s := &State{toMove: game.P1, lastMove: -1}
	for c := range s.height {
		s.height[c] = 0
	}
	return s
}

// State is a Connect Four position. cells are stored row-major with row 0
// at the bottom.
type State struct {
	cells    [Rows * Cols]game.Player
	height   [Cols]int
	toMove   game.Player
	lastMove int
	moves    int
	winner   game.Player
	done     bool
	hash     uint64
}

var _ game.State = (*State)(nil)

// Clone implements game.State.
func (s *State) Clone() game.State {
	c := *s
	return &c
}

// ToMove implements game.State.
func (s *State) ToMove() game.Player { return s.toMove }

// LegalMoves implements game.State.
func (s *State) LegalMoves(dst []int) []int {
	if s.done {
		return dst
	}
	for c := 0; c < Cols; c++ {
		if s.height[c] < Rows {
			dst = append(dst, c)
		}
	}
	return dst
}

// Legal implements game.State.
func (s *State) Legal(action int) bool {
	return !s.done && action >= 0 && action < Cols && s.height[action] < Rows
}

// Play implements game.State. The action is a column index.
func (s *State) Play(action int) {
	if !s.Legal(action) {
		panic("connect4: illegal move")
	}
	p := s.toMove
	row := s.height[action]
	cell := row*Cols + action
	s.cells[cell] = p
	s.height[action]++
	side := 0
	if p == game.P2 {
		side = 1
	}
	s.hash ^= zobristTab[side*Rows*Cols+cell]
	s.hash ^= zobristTab[len(zobristTab)-1]
	s.lastMove = cell
	s.moves++
	if s.winsAt(row, action, p) {
		s.winner = p
		s.done = true
	} else if s.moves == Rows*Cols {
		s.done = true
	}
	s.toMove = p.Opponent()
}

func (s *State) winsAt(row, col int, p game.Player) bool {
	dirs := [4][2]int{{0, 1}, {1, 0}, {1, 1}, {1, -1}}
	for _, d := range dirs {
		count := 1
		for sign := -1; sign <= 1; sign += 2 {
			r, c := row, col
			for {
				r += sign * d[0]
				c += sign * d[1]
				if r < 0 || r >= Rows || c < 0 || c >= Cols || s.cells[r*Cols+c] != p {
					break
				}
				count++
			}
		}
		if count >= 4 {
			return true
		}
	}
	return false
}

// Terminal implements game.State.
func (s *State) Terminal() bool { return s.done }

// Winner implements game.State.
func (s *State) Winner() game.Player { return s.winner }

// NumActions implements game.State.
func (s *State) NumActions() int { return Cols }

// EncodedShape implements game.State.
func (s *State) EncodedShape() (c, h, w int) { return Planes, Rows, Cols }

// Encode implements game.State (same plane layout as gomoku).
func (s *State) Encode(dst []float32) {
	n := Rows * Cols
	if len(dst) != Planes*n {
		panic("connect4: Encode buffer has wrong length")
	}
	for i := range dst {
		dst[i] = 0
	}
	me := s.toMove
	for i, c := range s.cells {
		switch c {
		case me:
			dst[i] = 1
		case me.Opponent():
			dst[n+i] = 1
		}
	}
	if s.lastMove >= 0 {
		dst[2*n+s.lastMove] = 1
	}
	if s.toMove == game.P1 {
		for i := 0; i < n; i++ {
			dst[3*n+i] = 1
		}
	}
}

// Hash implements game.State.
func (s *State) Hash() uint64 { return s.hash }

// AppendStateKey implements game.StateKeyer: cell occupancy plus the side
// to move — exactly the identity the Zobrist hash covers.
func (s *State) AppendStateKey(dst []byte) []byte {
	for _, c := range s.cells {
		dst = append(dst, byte(c+1))
	}
	return append(dst, byte(s.toMove+1))
}

// String renders the board, top row first.
func (s *State) String() string {
	var sb strings.Builder
	for r := Rows - 1; r >= 0; r-- {
		for c := 0; c < Cols; c++ {
			switch s.cells[r*Cols+c] {
			case game.P1:
				sb.WriteByte('X')
			case game.P2:
				sb.WriteByte('O')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
