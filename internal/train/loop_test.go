package train_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/arena"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/selfplay"
	"github.com/parmcts/parmcts/internal/train"
)

// checkedBackend wraps a version's real backend and verifies the service's
// routing invariant: every request reaching this backend must be stamped
// with exactly this version.
type checkedBackend struct {
	version    int64
	inner      evaluate.Backend
	served     *atomic.Int64
	mismatches *atomic.Int64
}

func (b *checkedBackend) RunBatch(batch []*evaluate.Request) {
	for _, req := range batch {
		if req.Version != b.version {
			b.mismatches.Add(1)
		}
	}
	b.inner.RunBatch(batch)
	b.served.Add(int64(len(batch)))
}

// fakeGen / fakeGate / fakePromoter drive the Loop's control flow without a
// fleet, for the ordering tests below.
type fakeGen struct{ replay *train.Replay }

func (g *fakeGen) Generate() train.GenRound {
	for i := 0; i < 10; i++ {
		g.replay.Add(nn.Sample{Input: make([]float32, 36), Policy: uniform(9), Value: 0})
	}
	return train.GenRound{Games: 1, Moves: 10, Samples: 10}
}

func uniform(n int) []float32 {
	p := make([]float32, n)
	for i := range p {
		p[i] = 1 / float32(n)
	}
	return p
}

type fakeGate struct {
	verdicts []bool // consumed in order; gate i promotes iff verdicts[i]
	calls    int
}

func (g *fakeGate) Gate(candidate *nn.Network, cv int64, incumbent *nn.Network, iv int64) train.GateResult {
	promote := g.calls < len(g.verdicts) && g.verdicts[g.calls]
	g.calls++
	return train.GateResult{Promote: promote, Score: 1, Games: 1, WinsCandidate: 1}
}

type fakePromoter struct {
	promoted []int64
	retired  []int64
	failOn   int64 // version whose Promote errors (0 = never)
}

func (p *fakePromoter) Promote(candidate *nn.Network, pr train.Promotion) error {
	if pr.Version == p.failOn {
		return errors.New("checkpoint disk full")
	}
	p.promoted = append(p.promoted, pr.Version)
	return nil
}

func (p *fakePromoter) Retire(version int64) { p.retired = append(p.retired, version) }

func testTTTNet(t *testing.T, seed uint64) *nn.Network {
	t.Helper()
	g := tictactoe.New()
	c, h, w := g.EncodedShape()
	net, err := nn.New(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestLoopPromotionAndRetireOrdering checks the control flow on fakes:
// versions advance only on accepted gates, a failed Promote keeps the
// incumbent, and superseded versions retire exactly once, two rounds after
// their swap.
func TestLoopPromotionAndRetireOrdering(t *testing.T) {
	net := testTTTNet(t, 1)
	incumbent := net.Clone()
	replay := train.NewReplay(1000)
	// Candidate versions are minted per gate ATTEMPT (2,3,4,5,...), never
	// reusing a rejected number: gate 2's rejected candidate consumes v4,
	// so gate 3's accepted-but-unpersistable candidate is v5.
	gate := &fakeGate{verdicts: []bool{true, true, false, true, false, false, false, false}}
	promoter := &fakePromoter{failOn: 5}
	loop := train.NewLoop(net, incumbent, replay, &fakeGen{replay: replay}, gate, promoter, train.LoopConfig{
		Rounds:        8,
		GateEvery:     1,
		SGDIterations: 1,
		BatchSize:     4,
		Seed:          1,
	})
	var promoteErrs int
	report := loop.Run(func(s train.LoopRoundStats) {
		if s.PromoteErr != nil {
			promoteErrs++
		}
	})

	// Gates at rounds 0..7; verdicts: v2 ok, v3 ok, v4 rejected, v5
	// accepted by the gate but Promote fails, then rejections.
	if len(report.Promotions) != 2 || report.Promotions[0].Version != 2 || report.Promotions[1].Version != 3 {
		t.Fatalf("promotions = %+v, want v2 then v3", report.Promotions)
	}
	if report.FinalVersion != 3 {
		t.Fatalf("final version = %d, want 3 (v5's Promote failed)", report.FinalVersion)
	}
	if promoteErrs != 1 {
		t.Fatalf("observed %d promote errors, want 1", promoteErrs)
	}
	// v1 swapped out at round 0 -> retired at round 2; v2 at round 1 -> round 3.
	if len(promoter.retired) != 2 || promoter.retired[0] != 1 || promoter.retired[1] != 2 {
		t.Fatalf("retired = %v, want [1 2]", promoter.retired)
	}
	if report.Rounds != 8 || report.Steps != 8 {
		t.Fatalf("report = %+v", report)
	}
}

// TestLoopWarmupSkipsSGDAndGate: rounds before MinSamples neither train nor
// gate. The generator runs up to two rounds ahead of the consumer (one in
// flight, one buffered), so the replay size seen at round r is bounded, not
// exact: with 10 samples/round and MinSamples 45, rounds 0-1 are certainly
// warmup ((r+3)*10 < 45) and rounds >= 4 certainly train ((r+1)*10 >= 45).
func TestLoopWarmupSkipsSGDAndGate(t *testing.T) {
	net := testTTTNet(t, 1)
	replay := train.NewReplay(1000)
	gate := &fakeGate{verdicts: []bool{true, true, true, true, true, true}}
	promoter := &fakePromoter{}
	loop := train.NewLoop(net, net.Clone(), replay, &fakeGen{replay: replay}, gate, promoter, train.LoopConfig{
		Rounds:     6,
		GateEvery:  1,
		MinSamples: 45,
	})
	var warmups, trained int
	loop.Run(func(s train.LoopRoundStats) {
		if !s.Trained {
			warmups++
			if s.Round >= 4 {
				t.Errorf("round %d was warmup with replay certainly past MinSamples", s.Round)
			}
			if s.Gate != nil {
				t.Fatal("gated during warmup")
			}
		} else {
			trained++
			if s.Round < 2 {
				t.Errorf("round %d trained before MinSamples could be reached", s.Round)
			}
			if s.Gate == nil {
				t.Errorf("round %d trained but did not gate (GateEvery=1)", s.Round)
			}
		}
	})
	if warmups < 2 || warmups > 4 {
		t.Fatalf("warmup rounds = %d, want within [2, 4]", warmups)
	}
	if gate.calls != trained {
		t.Fatalf("gate ran %d times over %d trained rounds", gate.calls, trained)
	}
}

// TestLoopServiceEndToEnd is the acceptance test for the model lifecycle
// (run with -race in CI): G concurrent self-play games generate through one
// shared inference service while the loop trains, gates and promotes across
// them. It asserts that at least two promotion gates complete with hot
// swaps under live traffic, that every evaluation was served by exactly the
// network version it was stamped for (no cross-version mixing), that no
// evaluation was dropped, and that games observed more than one serving
// version (the fleet really did keep playing across swaps).
func TestLoopServiceEndToEnd(t *testing.T) {
	g := tictactoe.New()
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(3))
	incumbent := net.Clone()

	var served, mismatches atomic.Int64
	cache := evaluate.NewCached(evaluate.NewNN(incumbent), 1<<10)
	mkBackend := func(n *nn.Network, v int64) evaluate.Backend {
		return &checkedBackend{
			version:    v,
			inner:      &evaluate.EvaluatorBackend{Eval: cache.View(v, evaluate.NewNN(n)), Workers: 2},
			served:     &served,
			mismatches: &mismatches,
		}
	}

	const games = 4
	const inflight = 2
	srv := evaluate.NewServer(mkBackend(incumbent, 1), evaluate.ServerConfig{
		Batch:          1,
		FlushDeadline:  evaluate.DefaultFlushDeadline,
		MaxOutstanding: games * inflight * 2,
		LaunchWorkers:  2,
	})

	clients := make([]*evaluate.Client, games)
	engines := make([]mcts.Engine, games)
	for i := range engines {
		clients[i] = srv.NewClient(inflight * 2)
		cfg := mcts.DefaultConfig()
		cfg.Playouts = 16
		cfg.Seed = uint64(i + 1)
		engines[i] = mcts.NewLocal(cfg, clients[i], inflight)
	}

	// Track the serving versions games pinned at start: >1 distinct value
	// proves games spanned a promotion.
	var pinMu sync.Mutex
	pinnedVersions := map[int64]int{}

	replay := train.NewReplay(4000)
	driver := selfplay.NewDriver(g, engines, replay, nil, selfplay.Config{
		TempMoves: 2,
		Seed:      11,
		OnGameStart: func(tenant int) {
			v := srv.Version()
			clients[tenant].Pin(v)
			pinMu.Lock()
			pinnedVersions[v]++
			pinMu.Unlock()
		},
		OnGameEnd: func(tenant int) { clients[tenant].Unpin() },
	})

	gate := &arena.ServerGate{
		Game:      g,
		Srv:       srv,
		MkBackend: mkBackend,
		Cfg: arena.GateConfig{
			Games:        2,
			WinThreshold: 0, // every candidate promotes: the test is about the swap machinery
			Playouts:     8,
			Temperature:  0.3,
			Seed:         5,
		},
	}
	promoter := &servicePromoter{srv: srv, cache: cache, mkBackend: mkBackend}

	loop := train.NewLoop(net, incumbent, replay, driver, gate, promoter, train.LoopConfig{
		Rounds:        6,
		GateEvery:     1,
		SGDIterations: 1,
		BatchSize:     8,
		Seed:          2,
	})
	report := loop.Run(nil)

	if len(report.Promotions) < 2 {
		t.Fatalf("completed %d promotions, want >= 2", len(report.Promotions))
	}
	if report.FinalVersion != int64(1+len(report.Promotions)) {
		t.Fatalf("final version %d does not match %d promotions", report.FinalVersion, len(report.Promotions))
	}
	if mismatches.Load() != 0 {
		t.Fatalf("%d evaluations were routed to a backend of another version", mismatches.Load())
	}
	pinMu.Lock()
	distinct := len(pinnedVersions)
	pinMu.Unlock()
	if distinct < 2 {
		t.Fatalf("all games pinned one version (%v); fleet did not keep playing across a swap", pinnedVersions)
	}
	for i, cl := range clients {
		if cl.Outstanding() != 0 {
			t.Fatalf("tenant %d still has %d undelivered evaluations (dropped work)", i, cl.Outstanding())
		}
		cl.Close()
	}
	if srv.Pending() != 0 {
		t.Fatalf("%d evaluations stranded in the service buffer", srv.Pending())
	}
	srv.Close()
	if served.Load() == 0 {
		t.Fatal("no evaluations flowed through the service")
	}
	if promoter.retires == 0 {
		t.Fatal("no superseded version was retired")
	}
}

// servicePromoter mirrors cmd/train's promoter: swap on promote, retire +
// version-scoped cache eviction at the barrier.
type servicePromoter struct {
	srv       *evaluate.Server
	cache     *evaluate.Cached
	mkBackend func(*nn.Network, int64) evaluate.Backend
	retires   int
}

func (p *servicePromoter) Promote(candidate *nn.Network, pr train.Promotion) error {
	p.srv.SwapBackend(p.mkBackend(candidate, pr.Version), pr.Version)
	return nil
}

func (p *servicePromoter) Retire(version int64) {
	p.srv.Retire(version)
	p.cache.ResetVersion(version)
	p.retires++
}

// TestLoopGenerationOverlapsSGD pins the pipelining property: the
// generator's next round runs while the consumer is still in SGD. A
// generator that records concurrency with a slow trainer proves the
// overlap.
func TestLoopGenerationOverlapsSGD(t *testing.T) {
	net := testTTTNet(t, 1)
	replay := train.NewReplay(1000)
	gen := &overlapGen{replay: replay}
	loop := train.NewLoop(net, net.Clone(), replay, gen, nil, nil, train.LoopConfig{
		Rounds:        4,
		SGDIterations: 1,
		BatchSize:     16,
	})
	loop.Run(func(train.LoopRoundStats) {
		// Simulate a slow SGD+gate stage on the consumer goroutine; the
		// generator's poll in Generate must observe it running.
		gen.inConsume.Store(true)
		time.Sleep(20 * time.Millisecond)
		gen.inConsume.Store(false)
	})
	if !gen.overlapped.Load() {
		t.Fatal("generation never overlapped the consumer stage: the loop is serial")
	}
}

type overlapGen struct {
	replay     *train.Replay
	inConsume  atomic.Bool
	overlapped atomic.Bool
	rounds     int
}

func (g *overlapGen) Generate() train.GenRound {
	// After the first round, the consumer stage runs while this generator
	// goroutine produces the next round: observe it.
	if g.rounds > 0 {
		deadline := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(deadline) {
			if g.inConsume.Load() {
				g.overlapped.Store(true)
				break
			}
		}
	}
	g.rounds++
	for i := 0; i < 40; i++ {
		g.replay.Add(nn.Sample{Input: make([]float32, 36), Policy: uniform(9), Value: 0})
	}
	return train.GenRound{Games: 1, Moves: 40, Samples: 40}
}
