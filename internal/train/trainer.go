package train

import (
	"time"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// TrainerConfig configures the full DNN-MCTS training loop.
type TrainerConfig struct {
	// Episodes is the number of self-play games (outer loop of Alg. 1).
	Episodes int
	// SGDIterations is the number of mini-batch updates per episode
	// (Algorithm 1 lines 13-15).
	SGDIterations int
	// BatchSize is the SGD mini-batch size.
	BatchSize int
	// LR, Momentum, WeightDecay are the optimizer hyper-parameters
	// (weight decay is the c||theta||^2 of Equation 2).
	LR, Momentum, WeightDecay float64
	// ReplayCapacity bounds the dataset (0 = 50000).
	ReplayCapacity int
	// TempMoves is the exploration temperature horizon per episode.
	TempMoves int
	// TrainWorkers is the thread count for gradient computation — the
	// paper's CPU configuration dedicates 32 threads to training
	// (Section 5.4); 0 uses GOMAXPROCS.
	TrainWorkers int
	// Augmenter optionally expands samples by board symmetry.
	Augmenter Augmenter
	// Seed drives episode move sampling and batch draws.
	Seed uint64
}

// EpisodeStats reports one outer-loop iteration.
type EpisodeStats struct {
	Episode int
	Moves   int
	Winner  game.Player
	// Loss is the Equation 2 decomposition of the episode's last update.
	Loss nn.BatchResult
	// SamplesProcessed counts the move samples generated this episode
	// (pre-augmentation) — the numerator of the paper's throughput metric.
	SamplesProcessed int
	// Search aggregates the episode's per-move engine stats; with
	// mcts.Config.ReuseTree set, Search.ReuseFraction reports how much of
	// the episode's playout target was served from retained subtrees.
	Search mcts.Stats
	// SearchTime and TrainTime split the episode's wall clock between the
	// tree-based search stage and the DNN update stage.
	SearchTime time.Duration
	TrainTime  time.Duration
	// Elapsed is the wall-clock time since training started (x-axis of
	// Figure 7).
	Elapsed time.Duration
}

// Throughput returns processed samples per second — the metric of Figure 6:
// samples / (tree-based search time + DNN update time).
func (s EpisodeStats) Throughput() float64 {
	denom := (s.SearchTime + s.TrainTime).Seconds()
	if denom <= 0 {
		return 0
	}
	return float64(s.SamplesProcessed) / denom
}

// Trainer owns the network, optimizer, replay buffer and search engine.
type Trainer struct {
	cfg    TrainerConfig
	g      game.Game
	engine mcts.Engine
	net    *nn.Network
	opt    *nn.SGD
	replay *Replay
	r      *rng.Rand
}

// NewTrainer assembles a training pipeline. The engine is typically the
// adaptive framework's choice; any mcts.Engine works.
func NewTrainer(g game.Game, engine mcts.Engine, net *nn.Network, cfg TrainerConfig) *Trainer {
	if cfg.Episodes < 1 {
		panic("train: Episodes must be >= 1")
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 32
	}
	if cfg.SGDIterations < 1 {
		cfg.SGDIterations = 1
	}
	if cfg.ReplayCapacity < 1 {
		cfg.ReplayCapacity = 50000
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	return &Trainer{
		cfg:    cfg,
		g:      g,
		engine: engine,
		net:    net,
		opt:    nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay),
		replay: NewReplay(cfg.ReplayCapacity),
		r:      rng.New(cfg.Seed),
	}
}

// Net returns the network being trained.
func (t *Trainer) Net() *nn.Network { return t.net }

// Replay returns the dataset.
func (t *Trainer) Replay() *Replay { return t.replay }

// Run executes the configured number of episodes, invoking onEpisode (if
// non-nil) after each one. It returns the per-episode statistics.
func (t *Trainer) Run(onEpisode func(EpisodeStats)) []EpisodeStats {
	all := make([]EpisodeStats, 0, t.cfg.Episodes)
	start := time.Now()
	for ep := 0; ep < t.cfg.Episodes; ep++ {
		res := SelfPlayEpisode(t.g, t.engine, EpisodeOptions{
			TempMoves: t.cfg.TempMoves,
			Rand:      t.r.Split(),
		})
		for _, s := range res.Samples {
			if t.cfg.Augmenter != nil {
				for _, aug := range t.cfg.Augmenter.Augment(s) {
					t.replay.Add(aug)
				}
			} else {
				t.replay.Add(s)
			}
		}

		t0 := time.Now()
		var last nn.BatchResult
		for it := 0; it < t.cfg.SGDIterations; it++ {
			batch := t.replay.Sample(t.r, t.cfg.BatchSize)
			last = nn.TrainBatch(t.net, t.opt, batch, t.cfg.TrainWorkers)
		}
		trainTime := time.Since(t0)

		stats := EpisodeStats{
			Episode:          ep,
			Moves:            res.Moves,
			Winner:           res.Winner,
			Loss:             last,
			SamplesProcessed: len(res.Samples),
			Search:           res.Search,
			SearchTime:       res.SearchTime,
			TrainTime:        trainTime,
			Elapsed:          time.Since(start),
		}
		all = append(all, stats)
		if onEpisode != nil {
			onEpisode(stats)
		}
	}
	return all
}
