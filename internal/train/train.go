// Package train implements the outer DNN-MCTS training pipeline of
// Algorithm 1: iterated data collection through self-play episodes driven
// by a (parallel) search engine, followed by SGD updates on the collected
// (state, visit-distribution, outcome) triples, with the loss of Equation 2
// tracked over wall-clock time (the metric of Figure 7) and the
// samples-per-second throughput of Figure 6.
package train

import (
	"math"
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/gomoku"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// Augmenter expands a training sample into equivalent variants (board
// symmetries). A nil Augmenter means no augmentation.
type Augmenter interface {
	Augment(s nn.Sample) []nn.Sample
}

// GomokuAugmenter applies the 8 dihedral symmetries of the square board to
// both the input planes and the policy target.
type GomokuAugmenter struct {
	Size   int // board edge
	Planes int // encoding planes
}

// AugmenterFor returns the symmetry augmenter appropriate for g, or nil
// when the game has none wired up. Only Gomoku gets the 8-fold dihedral
// expansion: its policy is a pure cell grid. Othello's action space carries
// a pass index outside the grid and Hex's rhombus admits only a 180°
// symmetry, so both train unaugmented rather than with a silently wrong
// policy permutation.
func AugmenterFor(g game.Game) Augmenter {
	if gg, ok := g.(*gomoku.Game); ok {
		c, _, _ := gg.EncodedShape()
		return GomokuAugmenter{Size: gg.Size, Planes: c}
	}
	return nil
}

// Augment implements Augmenter.
func (a GomokuAugmenter) Augment(s nn.Sample) []nn.Sample {
	out := make([]nn.Sample, 0, gomoku.NumSymmetries)
	for sym := 0; sym < gomoku.NumSymmetries; sym++ {
		if sym == 0 {
			out = append(out, s)
			continue
		}
		input := make([]float32, len(s.Input))
		policy := make([]float32, len(s.Policy))
		gomoku.ApplySymmetryPlanes(input, s.Input, sym, a.Planes, a.Size)
		gomoku.ApplySymmetryPolicy(policy, s.Policy, sym, a.Size)
		out = append(out, nn.Sample{Input: input, Policy: policy, Value: s.Value})
	}
	return out
}

// Replay is a bounded FIFO sample store ("dataset" of Algorithm 1) with
// uniform random mini-batch sampling. It is safe for concurrent use: the
// continuous training Loop samples mini-batches on the SGD goroutine while
// the self-play generator ingests finished games.
type Replay struct {
	mu   sync.Mutex
	buf  []nn.Sample
	next int
	full bool
}

// NewReplay creates a replay buffer holding up to capacity samples.
func NewReplay(capacity int) *Replay {
	if capacity < 1 {
		panic("train: replay capacity must be >= 1")
	}
	return &Replay{buf: make([]nn.Sample, 0, capacity)}
}

// Add appends a sample, evicting the oldest when full.
func (r *Replay) Add(s nn.Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % cap(r.buf)
	r.full = true
}

// Len returns the number of stored samples.
func (r *Replay) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap returns the buffer capacity.
func (r *Replay) Cap() int { return cap(r.buf) }

// Sample draws a mini-batch of up to n samples. Contract: when the buffer
// holds at least n samples, the batch is n draws uniform WITH replacement
// (standard for AlphaZero-style training; mini-batches may overlap). When
// n exceeds the current fill, the batch is the distinct fill — every
// stored sample exactly once, in random order — never padded by repeating
// entries: an undersized warmup buffer must not silently weight early
// games multiple times within one SGD step. Callers see the true batch
// size in len(result). The returned slice holds copies of the sample
// headers, so a concurrent Add that overwrites a ring slot cannot mutate a
// drawn mini-batch.
func (r *Replay) Sample(rnd *rng.Rand, n int) []nn.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 || n <= 0 {
		return nil
	}
	if n >= len(r.buf) {
		out := make([]nn.Sample, len(r.buf))
		copy(out, r.buf)
		rnd.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	out := make([]nn.Sample, n)
	for i := range out {
		out[i] = r.buf[rnd.Intn(len(r.buf))]
	}
	return out
}

// SampleAction draws an action from a visit distribution with the given
// temperature: 1 reproduces the distribution (early-game exploration),
// values near 0 sharpen towards argmax (competitive play). A temperature
// of exactly 0 is a deterministic argmax.
//
// A distribution with no positive mass returns -1 instead of defaulting to
// action 0: in placement games action 0 happens to be legal from the empty
// board, but in scenarios like Othello cell 0 is illegal almost everywhere,
// so silently returning it turned a degenerate search result (e.g. a full
// arena rejecting the root expansion) into an illegal-move panic two layers
// away. Callers fall back to an explicit legal move.
func SampleAction(rnd *rng.Rand, dist []float32, temperature float64) int {
	if temperature <= 0 {
		best, bestV := -1, float32(0)
		for a, p := range dist {
			if p > bestV {
				best, bestV = a, p
			}
		}
		return best
	}
	// Exponentiate visit shares by 1/T and sample.
	weights := make([]float64, len(dist))
	var sum float64
	for a, p := range dist {
		if p <= 0 {
			continue
		}
		w := math.Pow(float64(p), 1/temperature)
		weights[a] = w
		sum += w
	}
	if sum <= 0 {
		return SampleAction(rnd, dist, 0)
	}
	x := rnd.Float64() * sum
	for a, w := range weights {
		x -= w
		if x <= 0 && w > 0 {
			return a
		}
	}
	return SampleAction(rnd, dist, 0)
}

// SampleActionOrLegal is SampleAction with the degenerate case resolved:
// when the distribution has no positive mass (SampleAction returns -1), it
// falls back to a uniformly random legal move of st instead of letting the
// caller assume action 0 exists — which only placement games guarantee.
// Every driver that feeds a sampled action into State.Play should use this
// form.
func SampleActionOrLegal(rnd *rng.Rand, dist []float32, temperature float64, st game.State) int {
	if a := SampleAction(rnd, dist, temperature); a >= 0 {
		return a
	}
	legal := st.LegalMoves(nil)
	return legal[rnd.Intn(len(legal))]
}

// EpisodeOptions configures one self-play episode.
type EpisodeOptions struct {
	// TempMoves is the number of opening moves sampled at temperature 1;
	// later moves are argmax.
	TempMoves int
	// MaxMoves truncates pathological games (0 = game.MaxGameLength).
	MaxMoves int
	// Rand drives move sampling.
	Rand *rng.Rand
}

// EpisodeResult is the data one self-play game produced.
type EpisodeResult struct {
	// Samples holds one (s_t, pi_t, r) triple per move, outcomes filled in
	// from the final result (Algorithm 1 line 12). Unaugmented.
	Samples []nn.Sample
	// Moves is the episode length.
	Moves int
	// Winner is the game result.
	Winner game.Player
	// SearchTime is the total tree-based search time.
	SearchTime time.Duration
	// Search aggregates the per-move engine stats over the whole episode
	// (mcts.Stats.Add), so concurrent-game drivers can merge episodes
	// without hand-summing fields.
	Search mcts.Stats
}

// SelfPlayEpisode plays one complete game with the engine choosing both
// sides' moves (lines 3-12 of Algorithm 1). After every move the engine is
// advanced past the played action, so an engine configured with
// mcts.Config.ReuseTree continues each search from the played child's warm
// subtree; at the episode boundary the session is discarded so the next
// episode (typically a new game on a reused engine) starts cold.
func SelfPlayEpisode(g game.Game, engine mcts.Engine, opts EpisodeOptions) EpisodeResult {
	if opts.Rand == nil {
		opts.Rand = rng.New(0)
	}
	maxMoves := opts.MaxMoves
	if maxMoves <= 0 {
		maxMoves = g.MaxGameLength()
	}
	st := g.NewInitial()
	c, h, w := g.EncodedShape()
	inputLen := c * h * w

	var res EpisodeResult
	var movers []game.Player
	dist := make([]float32, g.NumActions())
	for !st.Terminal() && res.Moves < maxMoves {
		t0 := time.Now()
		res.Search.Add(engine.Search(st, dist))
		res.SearchTime += time.Since(t0)

		input := make([]float32, inputLen)
		st.Encode(input)
		policy := make([]float32, len(dist))
		copy(policy, dist)
		res.Samples = append(res.Samples, nn.Sample{Input: input, Policy: policy})
		movers = append(movers, st.ToMove())

		temp := 0.0
		if res.Moves < opts.TempMoves {
			temp = 1.0
		}
		action := SampleActionOrLegal(opts.Rand, dist, temp, st)
		st.Play(action)
		res.Moves++
		if !st.Terminal() && res.Moves < maxMoves {
			// Self-play drives both sides with one engine, so a single
			// Advance per move keeps the tree rooted at the next search
			// position.
			engine.Advance(action)
		}
	}
	engine.Advance(mcts.DiscardTree)
	res.Winner = st.Winner()
	for i := range res.Samples {
		res.Samples[i].Value = game.Outcome(res.Winner, movers[i])
	}
	return res
}
