package train

import (
	"math"
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/gomoku"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

func TestReplayBounds(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(nn.Sample{Value: float64(i)})
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("len/cap = %d/%d", r.Len(), r.Cap())
	}
	// Samples 0 and 1 must have been evicted.
	vals := map[float64]bool{}
	for _, s := range r.buf {
		vals[s.Value] = true
	}
	for _, old := range []float64{0, 1} {
		if vals[old] {
			t.Fatalf("sample %v not evicted", old)
		}
	}
}

func TestReplaySample(t *testing.T) {
	r := NewReplay(10)
	if got := r.Sample(rng.New(1), 4); got != nil {
		t.Fatal("sampling empty replay should return nil")
	}
	r.Add(nn.Sample{Value: 7})
	// Batch larger than the fill returns the distinct fill, not repeats.
	batch := r.Sample(rng.New(1), 5)
	if len(batch) != 1 {
		t.Fatalf("batch len = %d, want the distinct fill 1", len(batch))
	}
	if batch[0].Value != 7 {
		t.Fatal("sampled wrong element")
	}
}

func TestReplaySampleBatchLargerThanFillIsDistinct(t *testing.T) {
	// Regression for the silent with-replacement padding: a batch larger
	// than the current fill must return every stored sample exactly once —
	// an undersized warmup buffer must not weight early games multiple
	// times inside one SGD step.
	r := NewReplay(100)
	const fill = 7
	for i := 0; i < fill; i++ {
		r.Add(nn.Sample{Value: float64(i)})
	}
	batch := r.Sample(rng.New(3), 64)
	if len(batch) != fill {
		t.Fatalf("batch len = %d, want the distinct fill %d", len(batch), fill)
	}
	seen := map[float64]bool{}
	for _, s := range batch {
		if seen[s.Value] {
			t.Fatalf("sample %v repeated in an over-fill batch", s.Value)
		}
		seen[s.Value] = true
	}
	for i := 0; i < fill; i++ {
		if !seen[float64(i)] {
			t.Fatalf("sample %d missing from the distinct fill", i)
		}
	}
	// At or below the fill the batch stays exactly n, drawn with
	// replacement.
	if got := r.Sample(rng.New(4), fill-2); len(got) != fill-2 {
		t.Fatalf("under-fill batch len = %d, want %d", len(got), fill-2)
	}
}

func TestReplayPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewReplay(0)
}

func TestSampleActionTemperatureZeroIsArgmax(t *testing.T) {
	dist := []float32{0.1, 0.7, 0.2}
	r := rng.New(1)
	for i := 0; i < 20; i++ {
		if got := SampleAction(r, dist, 0); got != 1 {
			t.Fatalf("argmax = %d", got)
		}
	}
}

func TestSampleActionTemperatureOneFollowsDistribution(t *testing.T) {
	dist := []float32{0.25, 0.75, 0}
	r := rng.New(2)
	counts := [3]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleAction(r, dist, 1)]++
	}
	if counts[2] != 0 {
		t.Fatal("zero-probability action sampled")
	}
	frac := float64(counts[1]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("action 1 frequency %v, want ~0.75", frac)
	}
}

func TestSampleActionLowTemperatureSharpens(t *testing.T) {
	dist := []float32{0.4, 0.6}
	r := rng.New(3)
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[SampleAction(r, dist, 0.25)]++
	}
	frac := float64(counts[1]) / n
	// (0.6/0.4)^4 = 5.06 => expect ~83.5%
	if frac < 0.78 {
		t.Fatalf("low temperature did not sharpen: %v", frac)
	}
}

func TestGomokuAugmenterProduces8ConsistentVariants(t *testing.T) {
	g := gomoku.NewSized(7)
	st := g.NewInitial()
	st.Play(2*7 + 3)
	c, h, w := g.EncodedShape()
	input := make([]float32, c*h*w)
	st.Encode(input)
	policy := make([]float32, g.NumActions())
	policy[10] = 0.5
	policy[11] = 0.5
	aug := GomokuAugmenter{Size: 7, Planes: c}
	variants := aug.Augment(nn.Sample{Input: input, Policy: policy, Value: 0.3})
	if len(variants) != 8 {
		t.Fatalf("variants = %d", len(variants))
	}
	seen := map[string]bool{}
	for _, v := range variants {
		if v.Value != 0.3 {
			t.Fatal("value changed by augmentation")
		}
		var polSum float32
		for _, p := range v.Policy {
			polSum += p
		}
		if math.Abs(float64(polSum-1)) > 1e-5 {
			t.Fatalf("policy mass changed: %v", polSum)
		}
		var inSum float32
		for _, x := range v.Input {
			inSum += x
		}
		key := string(float32Bytes(v.Policy))
		seen[key] = true
		_ = inSum
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct policy variants (board has no symmetry axis through the stones)", len(seen))
	}
}

func float32Bytes(xs []float32) []byte {
	b := make([]byte, 0, len(xs))
	for _, x := range xs {
		b = append(b, byte(int(x*255)))
	}
	return b
}

func TestSelfPlayEpisodeTicTacToe(t *testing.T) {
	g := tictactoe.New()
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 100
	engine := mcts.NewSerial(cfg, &evaluate.Random{})
	res := SelfPlayEpisode(g, engine, EpisodeOptions{TempMoves: 2, Rand: rng.New(4)})
	if res.Moves < 5 || res.Moves > 9 {
		t.Fatalf("episode length %d outside [5,9]", res.Moves)
	}
	if len(res.Samples) != res.Moves {
		t.Fatalf("samples %d != moves %d", len(res.Samples), res.Moves)
	}
	if res.SearchTime <= 0 {
		t.Fatal("no search time recorded")
	}
	// Outcomes must be consistent: from each mover's perspective, the value
	// is +1 if that mover won, -1 if they lost, 0 on draw. Consecutive
	// moves alternate perspective, so values alternate sign (or all zero).
	for i := 1; i < len(res.Samples); i++ {
		a, b := res.Samples[i-1].Value, res.Samples[i].Value
		if a != 0 && a != -b {
			t.Fatalf("outcomes not alternating: %v then %v", a, b)
		}
	}
	if res.Winner != game.Nobody {
		last := res.Samples[len(res.Samples)-1]
		if last.Value != 1 {
			t.Fatalf("the player who made the final (winning) move should have value +1, got %v", last.Value)
		}
	}
}

func TestTrainerRunReducesOrTracksLoss(t *testing.T) {
	g := tictactoe.New()
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 40
	net := nn.MustNew(nn.TinyConfig(4, 3, 3, 9), rng.New(5))
	engine := mcts.NewSerial(cfg, evaluate.NewNN(net))
	tr := NewTrainer(g, engine, net, TrainerConfig{
		Episodes:      3,
		SGDIterations: 4,
		BatchSize:     16,
		LR:            0.02,
		TempMoves:     2,
		Seed:          6,
	})
	var calls int
	stats := tr.Run(func(s EpisodeStats) { calls++ })
	if calls != 3 || len(stats) != 3 {
		t.Fatalf("episodes reported %d/%d", calls, len(stats))
	}
	for i, s := range stats {
		if s.Episode != i {
			t.Fatalf("episode numbering wrong: %d", s.Episode)
		}
		if s.SamplesProcessed != s.Moves {
			t.Fatalf("samples %d != moves %d", s.SamplesProcessed, s.Moves)
		}
		if s.Loss.TotalLoss() <= 0 {
			t.Fatal("loss not recorded")
		}
		if s.Throughput() <= 0 {
			t.Fatal("throughput not positive")
		}
		if s.Elapsed <= 0 {
			t.Fatal("elapsed missing")
		}
	}
	if tr.Replay().Len() == 0 {
		t.Fatal("replay empty after training")
	}
	if tr.Net() != net {
		t.Fatal("Net accessor wrong")
	}
}

func TestTrainerAugmentationMultipliesSamples(t *testing.T) {
	g := gomoku.NewSized(5)
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 20
	engine := mcts.NewSerial(cfg, &evaluate.Random{})
	c, _, _ := g.EncodedShape()
	net := nn.MustNew(nn.TinyConfig(c, 5, 5, 25), rng.New(7))
	tr := NewTrainer(g, engine, net, TrainerConfig{
		Episodes:      1,
		SGDIterations: 1,
		BatchSize:     8,
		Augmenter:     GomokuAugmenter{Size: 5, Planes: c},
		Seed:          8,
	})
	stats := tr.Run(nil)
	if got, want := tr.Replay().Len(), stats[0].Moves*8; got != want {
		t.Fatalf("replay has %d samples, want %d (8-fold)", got, want)
	}
}

func TestTrainerPanicsOnZeroEpisodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero episodes did not panic")
		}
	}()
	NewTrainer(tictactoe.New(), nil, nil, TrainerConfig{})
}

func TestEpisodeStatsThroughputZeroDivision(t *testing.T) {
	var s EpisodeStats
	if s.Throughput() != 0 {
		t.Fatal("zero-time throughput should be 0")
	}
}

// TestSelfPlayEpisodeWarmsTree pins the driver half of persistent search
// sessions: SelfPlayEpisode must Advance the engine past every played
// move, so a ReuseTree engine reports retained visits from move 2 on and
// the recorded visit distributions still pass the usual sanity checks.
func TestSelfPlayEpisodeWarmsTree(t *testing.T) {
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 120
	cfg.ReuseTree = true
	e := mcts.NewSerial(cfg, &evaluate.Random{})
	res := SelfPlayEpisode(tictactoe.New(), e, EpisodeOptions{Rand: rng.New(3)})
	if res.Moves < 2 {
		t.Fatalf("degenerate episode: %d moves", res.Moves)
	}
	if res.Search.ReusedVisits == 0 {
		t.Fatal("episode with ReuseTree engine reported no subtree reuse")
	}
	if res.Search.ReuseFraction() <= 0 {
		t.Fatalf("reuse fraction = %v", res.Search.ReuseFraction())
	}
	// The episode boundary must discard the session: a fresh episode's
	// first search starts cold even though the engine is reused.
	res2 := SelfPlayEpisode(tictactoe.New(), e, EpisodeOptions{Rand: rng.New(4)})
	perMove := float64(res2.Search.ReusedVisits) / float64(res2.Moves)
	if perMove >= float64(cfg.Playouts) {
		t.Fatalf("second episode reused too much: %v visits/move", perMove)
	}
	if res2.Moves == 0 || len(res2.Samples) != res2.Moves {
		t.Fatalf("episode 2 malformed: %d moves, %d samples", res2.Moves, len(res2.Samples))
	}
}
