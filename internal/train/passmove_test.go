package train

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/othello"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/rng"
)

// zeroDistEngine is a degenerate engine that returns an all-zero visit
// distribution — what a real engine emits when its arena rejects even the
// root expansion. The driver must stay legal regardless.
type zeroDistEngine struct{}

func (zeroDistEngine) Name() string { return "zero-dist" }
func (zeroDistEngine) Search(st game.State, dist []float32) mcts.Stats {
	for i := range dist {
		dist[i] = 0
	}
	return mcts.Stats{}
}
func (zeroDistEngine) Advance(int) {}
func (zeroDistEngine) Close()      {}

// TestSampleActionEmptyDistribution pins the -1 contract: a distribution
// with no positive mass must not silently elect action 0 (which is illegal
// almost everywhere in Othello), at any temperature.
func TestSampleActionEmptyDistribution(t *testing.T) {
	r := rng.New(1)
	zero := make([]float32, 65)
	for _, temp := range []float64{0, 0.5, 1} {
		if got := SampleAction(r, zero, temp); got != -1 {
			t.Errorf("temp %v: SampleAction on all-zero dist = %d, want -1", temp, got)
		}
	}
	// A normal distribution still samples normally.
	dist := make([]float32, 65)
	dist[37] = 1
	for _, temp := range []float64{0, 0.5, 1} {
		if got := SampleAction(r, dist, temp); got != 37 {
			t.Errorf("temp %v: SampleAction on one-hot dist = %d, want 37", temp, got)
		}
	}
}

// TestSelfPlayEpisodeSurvivesZeroDist runs a full Othello episode against
// the degenerate engine: before the legal-move fallback this panicked with
// "othello: illegal move" on the very first ply (cell 0 is not playable
// from the initial position).
func TestSelfPlayEpisodeSurvivesZeroDist(t *testing.T) {
	g := othello.NewSized(4)
	res := SelfPlayEpisode(g, zeroDistEngine{}, EpisodeOptions{
		TempMoves: 2,
		Rand:      rng.New(5),
	})
	if res.Moves == 0 {
		t.Fatal("episode played no moves")
	}
	if res.Moves > g.MaxGameLength() {
		t.Fatalf("episode ran %d moves, MaxGameLength %d", res.Moves, g.MaxGameLength())
	}
	if len(res.Samples) != res.Moves {
		t.Fatalf("%d samples for %d moves", len(res.Samples), res.Moves)
	}
}

// TestSelfPlayEpisodeOthelloReuse is the driver-level form of the pass-move
// acceptance: a real warm engine plays a complete Othello episode and the
// aggregated stats report a positive reuse fraction — pass plies do not
// break the Advance chain.
func TestSelfPlayEpisodeOthelloReuse(t *testing.T) {
	g := othello.NewSized(4)
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 60
	cfg.ReuseTree = true
	cfg.Seed = 3
	e := mcts.NewSerial(cfg, stubEval{})
	res := SelfPlayEpisode(g, e, EpisodeOptions{Rand: rng.New(9)})
	if !lastStateTerminal(g, res) {
		t.Fatalf("episode did not finish: %d moves", res.Moves)
	}
	if res.Search.ReusedVisits == 0 || res.Search.ReuseFraction() <= 0 {
		t.Fatalf("no reuse across an Othello episode: %+v", res.Search)
	}
}

// lastStateTerminal replays the episode's move count bound: an Othello
// game on 4x4 always terminates well inside MaxGameLength, so a
// full-length episode means truncation (a bug), not a long game.
func lastStateTerminal(g game.Game, res EpisodeResult) bool {
	return res.Moves < g.MaxGameLength()
}

// stubEval is a deterministic uniform evaluator.
type stubEval struct{}

func (stubEval) Evaluate(input []float32, policy []float32) float64 {
	u := 1 / float32(len(policy))
	for i := range policy {
		policy[i] = u
	}
	return 0
}
