package train

import (
	"time"

	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// GenRound summarises one round of self-play generation (G concurrent
// games ingested into the shared replay buffer).
type GenRound struct {
	Games, Moves, Samples int
	Search                mcts.Stats
	Elapsed               time.Duration
}

// Generator produces self-play data: one call plays a round of games whose
// samples land in the replay buffer the Loop trains from. The fleet driver
// (internal/selfplay) is the production implementation; its engines
// evaluate through the shared inference service, so generation keeps
// running unmodified across a model promotion.
type Generator interface {
	Generate() GenRound
}

// GateResult is the evidence a promotion gate produced.
type GateResult struct {
	// Promote reports whether the candidate cleared the win-rate gate.
	Promote bool
	// Score is the candidate's match score in [0, 1] (wins + half-draws).
	Score                                      float64
	Games, WinsCandidate, WinsIncumbent, Draws int
	Elapsed                                    time.Duration
}

// Gate decides promotion: it plays candidate (to serve as candidateVersion)
// against the incumbent (serving as incumbentVersion) and reports whether
// the candidate is strong enough to replace it. Implementations that play
// through the live inference service (arena.ServerGate) must register the
// candidate version for the duration of the match and retire it on
// rejection; on promotion the registration is left in place for the
// Promoter to make current.
type Gate interface {
	Gate(candidate *nn.Network, candidateVersion int64, incumbent *nn.Network, incumbentVersion int64) GateResult
}

// Promotion records one accepted gate.
type Promotion struct {
	// Version is the promoted model version.
	Version int64
	// Round is the generation round after which the gate ran.
	Round int
	// Step is the cumulative SGD update count at promotion time.
	Step int64
	// Samples is the cumulative generated sample count at promotion time.
	Samples int
	// Gate is the match evidence.
	Gate GateResult
}

// Promoter applies an accepted promotion to the serving side: persist the
// snapshot (checkpoint store), hot-swap the inference service's current
// backend to the new version, and — once the Loop signals it safe — retire
// the superseded version and drop its cache entries.
type Promoter interface {
	// Promote makes candidate the serving model under p.Version. An error
	// aborts the promotion: the Loop keeps the old incumbent.
	Promote(candidate *nn.Network, p Promotion) error
	// Retire is called when no request pinned to version can still be in
	// flight (two generation-round barriers after the swap).
	Retire(version int64)
}

// LoopConfig tunes the continuous training loop.
type LoopConfig struct {
	// Rounds is the number of generation rounds to consume.
	Rounds int
	// GateEvery runs the promotion gate after every K trained rounds
	// (0 = never gate; the loop degenerates to generate+SGD).
	GateEvery int
	// SGDIterations is the number of mini-batch updates per round.
	SGDIterations int
	// BatchSize is the SGD mini-batch size.
	BatchSize int
	// LR, Momentum, WeightDecay are the optimizer hyper-parameters.
	LR, Momentum, WeightDecay float64
	// TrainWorkers is the gradient-computation thread count (0 = GOMAXPROCS).
	TrainWorkers int
	// MinSamples delays SGD (and therefore gating) until the replay buffer
	// has at least this many samples (0 = train from the first round).
	MinSamples int
	// StartVersion is the incumbent's model version at loop start (0 = 1).
	// Promoted candidates get consecutive versions above it.
	StartVersion int64
	// Seed drives mini-batch draws.
	Seed uint64
	// Stop, when non-nil, ends the loop early: once it is closed no further
	// generation rounds are requested, and Run returns after consuming the
	// rounds already in flight. The distributed learner closes it on
	// shutdown so a SIGTERM drains the loop instead of abandoning it
	// mid-gate. A Generator whose Generate can block indefinitely (e.g. a
	// remote ingest barrier) should watch the same channel and return.
	Stop <-chan struct{}
}

// LoopRoundStats reports one consumed generation round.
type LoopRoundStats struct {
	Round   int
	Games   int
	Moves   int
	Samples int
	// Version is the incumbent version serving the fleet AFTER this round's
	// gate (if any) resolved.
	Version int64
	// Step is the cumulative SGD update count.
	Step int64
	// Trained reports whether SGD ran this round (false during replay
	// warmup, see LoopConfig.MinSamples).
	Trained bool
	// Loss is the Equation 2 decomposition of the round's last update.
	Loss nn.BatchResult
	// Gate is the gate evidence when one ran this round (nil otherwise).
	Gate *GateResult
	// PromoteErr reports a promotion that was accepted by the gate but
	// failed to apply (checkpoint write error); the incumbent was kept.
	PromoteErr error
	// Search aggregates the round's engine stats.
	Search mcts.Stats
	// GenTime is the round's generation wall-clock (overlapped with the
	// previous round's SGD); TrainTime is this round's SGD stage; Elapsed
	// is since the loop started.
	GenTime   time.Duration
	TrainTime time.Duration
	Elapsed   time.Duration
}

// LoopReport summarises a finished Run.
type LoopReport struct {
	Rounds     int
	Steps      int64
	Samples    int
	Promotions []Promotion
	// FinalVersion is the incumbent version when the loop ended.
	FinalVersion int64
	Elapsed      time.Duration
}

// Loop is the outer ring of the self-play system: it overlaps self-play
// generation with SGD on the replay buffer and, every GateEvery rounds,
// plays a freshly cloned candidate against the incumbent through the
// promotion gate, swapping the serving model only when the candidate clears
// the win-rate threshold.
//
// Concurrency contract: the Generator runs on its own goroutine, one round
// ahead of the SGD consumer (a one-round channel buffer), so generation for
// round r+1 overlaps SGD on round r's data. The generator's engines must
// evaluate a FROZEN parameter snapshot (the incumbent behind the inference
// service), never the live training network this loop mutates; the replay
// buffer is internally synchronised. Gates and promotions run on the
// consumer goroutine while generation continues — G concurrent games keep
// running across a hot swap.
type Loop struct {
	gen       Generator
	gate      Gate
	promoter  Promoter
	net       *nn.Network // live training parameters (SGD mutates)
	incumbent *nn.Network // frozen serving snapshot (gate opponent)
	replay    *Replay
	opt       *nn.SGD
	cfg       LoopConfig
	r         *rng.Rand

	version int64
	// candidateSeq is the last version number handed to a gate candidate.
	// Every gate attempt consumes a FRESH version — a rejected candidate's
	// number is never reused, so nothing cached, registered, or logged
	// under it can ever be confused with a later candidate's artifacts.
	candidateSeq int64
	step         int64
	samples      int
	promotions   []Promotion
}

// NewLoop assembles the continuous pipeline. incumbent is the frozen clone
// currently serving the generator's inference service (version
// cfg.StartVersion); net is the live training parameter set. gate and
// promoter may be nil only when cfg.GateEvery is 0.
func NewLoop(net, incumbent *nn.Network, replay *Replay, gen Generator, gate Gate, promoter Promoter, cfg LoopConfig) *Loop {
	if net == nil || incumbent == nil {
		panic("train: loop needs both a training and an incumbent network")
	}
	if net == incumbent {
		panic("train: incumbent must be a frozen clone, not the training network")
	}
	if replay == nil || gen == nil {
		panic("train: loop needs a replay buffer and a generator")
	}
	if cfg.Rounds < 1 {
		panic("train: Rounds must be >= 1")
	}
	if cfg.GateEvery > 0 && (gate == nil || promoter == nil) {
		panic("train: gating requires a Gate and a Promoter")
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 32
	}
	if cfg.SGDIterations < 1 {
		cfg.SGDIterations = 1
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	if cfg.StartVersion < 1 {
		cfg.StartVersion = 1
	}
	return &Loop{
		gen:          gen,
		gate:         gate,
		promoter:     promoter,
		net:          net,
		incumbent:    incumbent,
		replay:       replay,
		opt:          nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay),
		cfg:          cfg,
		r:            rng.New(cfg.Seed),
		version:      cfg.StartVersion,
		candidateSeq: cfg.StartVersion,
	}
}

// Version returns the incumbent's current model version.
func (l *Loop) Version() int64 { return l.version }

// Incumbent returns the frozen snapshot currently treated as incumbent.
func (l *Loop) Incumbent() *nn.Network { return l.incumbent }

// Promotions returns the accepted promotions so far.
func (l *Loop) Promotions() []Promotion { return l.promotions }

// retireBarrier tracks a superseded version awaiting retirement: after a
// swap at round r, games started before the swap may still be pinned to the
// old version, and with the generator running one round of read-ahead the
// last such game belongs to round r+2 — so once round r+2 has been
// consumed, nothing can reference the version and the Promoter may retire
// it. Consecutive promotions queue their barriers.
type retireBarrier struct {
	version    int64
	afterRound int
}

// Run drives the loop to completion, invoking onRound (if non-nil) after
// each consumed round.
func (l *Loop) Run(onRound func(LoopRoundStats)) LoopReport {
	type timedRound struct {
		gr      GenRound
		elapsed time.Duration
	}
	rounds := make(chan timedRound, 1) // one round of read-ahead: gen overlaps SGD
	go func() {
		defer close(rounds)
		for i := 0; i < l.cfg.Rounds; i++ {
			if l.cfg.Stop != nil {
				select {
				case <-l.cfg.Stop:
					return
				default:
				}
			}
			t0 := time.Now()
			gr := l.gen.Generate()
			if l.cfg.Stop != nil {
				// A stopped generator may have returned an empty partial
				// round; don't feed it to SGD/gating after shutdown began.
				select {
				case <-l.cfg.Stop:
					return
				default:
				}
			}
			rounds <- timedRound{gr: gr, elapsed: time.Since(t0)}
		}
	}()

	start := time.Now()
	var retires []retireBarrier
	var trainedRounds int
	round := 0
	for tr := range rounds {
		gr := tr.gr
		l.samples += gr.Samples

		t0 := time.Now()
		var last nn.BatchResult
		trained := false
		if l.replay.Len() >= l.cfg.MinSamples && l.replay.Len() > 0 {
			for it := 0; it < l.cfg.SGDIterations; it++ {
				batch := l.replay.Sample(l.r, l.cfg.BatchSize)
				last = nn.TrainBatch(l.net, l.opt, batch, l.cfg.TrainWorkers)
				l.step++
			}
			trained = true
			trainedRounds++
		}
		trainTime := time.Since(t0)

		for len(retires) > 0 && round >= retires[0].afterRound {
			l.promoter.Retire(retires[0].version)
			retires = retires[1:]
		}

		stats := LoopRoundStats{
			Round:   round,
			Games:   gr.Games,
			Moves:   gr.Moves,
			Samples: gr.Samples,
			Step:    l.step,
			Trained: trained,
			Loss:    last,
			Search:  gr.Search,
			GenTime: tr.elapsed,
		}

		if l.cfg.GateEvery > 0 && trained && trainedRounds%l.cfg.GateEvery == 0 {
			candidate := l.net.Clone()
			l.candidateSeq++
			cv := l.candidateSeq
			res := l.gate.Gate(candidate, cv, l.incumbent, l.version)
			stats.Gate = &res
			if res.Promote {
				p := Promotion{Version: cv, Round: round, Step: l.step, Samples: l.samples, Gate: res}
				if err := l.promoter.Promote(candidate, p); err != nil {
					stats.PromoteErr = err
				} else {
					old := l.version
					l.incumbent = candidate
					l.version = cv
					l.promotions = append(l.promotions, p)
					// Old-version requests can be in flight until every game
					// started before the swap has ended: two round barriers.
					retires = append(retires, retireBarrier{version: old, afterRound: round + 2})
				}
			}
		}

		stats.Version = l.version
		stats.TrainTime = trainTime
		stats.Elapsed = time.Since(start)
		if onRound != nil {
			onRound(stats)
		}
		round++
	}

	return LoopReport{
		Rounds:       round,
		Steps:        l.step,
		Samples:      l.samples,
		Promotions:   l.promotions,
		FinalVersion: l.version,
		Elapsed:      time.Since(start),
	}
}
