package nn

import (
	"errors"
	"math"

	"github.com/parmcts/parmcts/internal/tensor"
)

// Quantized inference. A QuantizedNetwork is derived from a trained fp32
// Network: weights are quantized per output channel with symmetric int8
// scales (q = round(w/scale), scale = maxabs(row)/127, no zero point), and
// each GEMM's input activation gets one symmetric scale calibrated from the
// max absolute activation observed while running the fp32 network over
// calibration samples (replay positions, in the training pipeline). Every
// convolution and the two big head FCs then run as int8 x int8 -> int32
// GEMMs (tensor.MatMulTransBQ8); accumulators dequantize with
// actScale*wScale[channel], add the fp32 bias, apply ReLU and requantize
// for the next layer in one fused pass. The tiny final value FC (1 x
// ValueHide) stays fp32: it costs nothing and keeps the scalar value output
// at full precision ahead of tanh.
//
// Because activation scales are calibrated, inputs outside the calibration
// distribution saturate at +-127 rather than overflowing — the error-bound
// tests pin how far quantized policy/value outputs may drift from fp32 on
// held-out replay positions.

// qLayer is one quantized GEMM operand: int8 weights with per-output-channel
// scales and the layer's fp32 bias.
type qLayer struct {
	w      []int8    // outC x k, row-major
	wScale []float32 // len outC: dequant scale of each weight row
	bias   []float32 // len outC, fp32
	outC   int
	k      int
}

func quantizeLayer(w, bias []float32, outC, k int) qLayer {
	l := qLayer{
		w:      make([]int8, outC*k),
		wScale: make([]float32, outC),
		bias:   make([]float32, outC),
		outC:   outC,
		k:      k,
	}
	copy(l.bias, bias)
	for oc := 0; oc < outC; oc++ {
		row := w[oc*k : (oc+1)*k]
		scale := tensor.MaxAbs(row) / 127
		l.wScale[oc] = scale
		tensor.QuantizeSymmetric(l.w[oc*k:(oc+1)*k], row, scale)
	}
	return l
}

// Activation-scale slots, one per quantized GEMM input. Conv3 (policy) and
// conv4 (value) share the trunk output, so they share slot actTrunkOut.
const (
	actInput    = iota // network input planes -> conv0
	actTrunk1          // conv0 output -> conv1
	actTrunk2          // conv1 output -> conv2
	actTrunkOut        // conv2 output -> conv3 and conv4
	actPolicy          // policy 1x1 output -> policy FC
	actValue           // value 1x1 output -> value FC1
	numActScales
)

// QuantizedNetwork is the int8 serving form of a Network. It is immutable
// after construction and safe for concurrent ForwardBatchQuantized calls
// with distinct workspaces.
type QuantizedNetwork struct {
	Cfg    Config
	shapes [5]tensor.Conv2DShape

	conv [5]qLayer
	pol  qLayer
	val1 qLayer

	val2W []float32
	val2B float32

	actScale [numActScales]float32
}

// ErrNoCalibration is returned by Quantize when no calibration samples are
// supplied: activation scales cannot be derived without observing real
// activations.
var ErrNoCalibration = errors.New("nn: quantization requires calibration samples")

// Quantize derives a QuantizedNetwork from net, calibrating activation
// scales by running the fp32 network over the supplied samples (each of
// length net.InputLen()). A few hundred replay positions are plenty; the
// scales are simple max-abs statistics.
func Quantize(net *Network, calib [][]float32) (*QuantizedNetwork, error) {
	if len(calib) == 0 {
		return nil, ErrNoCalibration
	}
	cfg := net.Cfg
	q := &QuantizedNetwork{Cfg: cfg, shapes: cfg.convShapes()}
	for i, s := range q.shapes {
		q.conv[i] = quantizeLayer(net.ConvW[i].Data, net.ConvB[i].Data, s.OutC, s.ColCols())
	}
	hw := cfg.H * cfg.W
	q.pol = quantizeLayer(net.PolW.Data, net.PolB.Data, cfg.NumActions, cfg.PolicyC*hw)
	q.val1 = quantizeLayer(net.Val1W.Data, net.Val1B.Data, cfg.ValueHide, cfg.ValueC*hw)
	q.val2W = append([]float32(nil), net.Val2W.Data...)
	q.val2B = net.Val2B.Data[0]

	// Calibration: run fp32 forwards in chunks and track the max absolute
	// value of every quantized GEMM's input activation.
	const chunk = 32
	b := min(chunk, len(calib))
	ws := NewBatchWorkspace(net, b)
	policies := make([][]float32, b)
	for i := range policies {
		policies[i] = make([]float32, cfg.NumActions)
	}
	values := make([]float64, b)
	var amax [numActScales]float32
	track := func(slot int, x []float32) {
		if m := tensor.MaxAbs(x); m > amax[slot] {
			amax[slot] = m
		}
	}
	for start := 0; start < len(calib); start += chunk {
		batch := calib[start:min(start+chunk, len(calib))]
		nb := len(batch)
		net.ForwardBatch(ws, batch, policies[:nb], values[:nb])
		track(actInput, ws.xIn[:cfg.InC*nb*hw])
		for i := 0; i < 3; i++ {
			track(actTrunk1+i, ws.convAct[i][:q.shapes[i].OutC*nb*hw])
		}
		track(actPolicy, ws.convAct[3][:cfg.PolicyC*nb*hw])
		track(actValue, ws.convAct[4][:cfg.ValueC*nb*hw])
	}
	for i, m := range amax {
		q.actScale[i] = m / 127
	}
	return q, nil
}

// QuantWorkspace holds the buffers of one quantized batched forward pass.
// Not safe for concurrent use; pool per worker like BatchWorkspace.
type QuantWorkspace struct {
	cfg    Config
	shapes [5]tensor.Conv2DShape
	capB   int

	xIn  []float32 // packed fp32 input before quantization
	qA   []int8    // ping-pong int8 activation buffers, batch-major
	qB   []int8
	qCol []int8  // int8 im2col scratch, widest layer
	i32  []int32 // int32 GEMM accumulator, widest product

	qPolIn []int8 // B rows of PolicyC*H*W
	qValIn []int8 // B rows of ValueC*H*W
	logits []float32
	vHide  []float32
	vOut   []float32
}

// NewWorkspace allocates a quantized workspace for up to maxBatch samples.
func (q *QuantizedNetwork) NewWorkspace(maxBatch int) *QuantWorkspace {
	if maxBatch < 1 {
		panic("nn: quant workspace capacity must be >= 1")
	}
	cfg := q.Cfg
	hw := cfg.H * cfg.W
	ws := &QuantWorkspace{cfg: cfg, shapes: q.shapes, capB: maxBatch}
	ws.xIn = make([]float32, cfg.InC*maxBatch*hw)
	maxC := cfg.InC
	maxCol := 0
	maxI32 := maxBatch * cfg.NumActions
	if v := maxBatch * cfg.ValueHide; v > maxI32 {
		maxI32 = v
	}
	for _, s := range q.shapes {
		if s.OutC > maxC {
			maxC = s.OutC
		}
		if c := s.ColRows() * s.ColCols(); c > maxCol {
			maxCol = c
		}
		if v := s.OutC * maxBatch * s.ColRows(); v > maxI32 {
			maxI32 = v
		}
	}
	ws.qA = make([]int8, maxC*maxBatch*hw)
	ws.qB = make([]int8, maxC*maxBatch*hw)
	ws.qCol = make([]int8, maxBatch*maxCol)
	ws.i32 = make([]int32, maxI32)
	ws.qPolIn = make([]int8, maxBatch*cfg.PolicyC*hw)
	ws.qValIn = make([]int8, maxBatch*cfg.ValueC*hw)
	ws.logits = make([]float32, maxBatch*cfg.NumActions)
	ws.vHide = make([]float32, maxBatch*cfg.ValueHide)
	ws.vOut = make([]float32, maxBatch)
	return ws
}

// Cap returns the maximum batch size the workspace can process.
func (ws *QuantWorkspace) Cap() int { return ws.capB }

// quantizeInto writes q = clamp(round(x/scale)) into dst.
func quantizeInto(dst []int8, src []float32, scale float32) {
	tensor.QuantizeSymmetric(dst[:len(src)], src, scale)
}

// convQ8 runs one quantized convolution over the batch: int8 im2col gather,
// int8 GEMM into ws.i32. Output stays int32 in ws.i32, OutC x (b*pix)
// batch-major; the caller fuses dequant+bias with whatever comes next.
func convQ8(ws *QuantWorkspace, l *qLayer, s tensor.Conv2DShape, in []int8, b int) {
	pix := s.ColRows()
	kk := s.ColCols()
	imgLen := s.InH * s.InW
	for bb := 0; bb < b; bb++ {
		tensor.Im2ColStridedQ8(ws.qCol[bb*pix*kk:], in, s, bb*imgLen, b*imgLen)
	}
	n := b * pix
	tensor.MatMulTransBQ8(ws.i32[:l.outC*n], l.w, ws.qCol, l.outC, kk, n)
}

// requantRows fuses dequant + bias + ReLU + requant over the int32 conv
// output: out int8 rows get scale outScale. factor[oc] = inScale*wScale[oc].
func requantRows(out []int8, acc []int32, l *qLayer, inScale, outScale float32, n int) {
	invOut := float32(0)
	if outScale > 0 {
		invOut = 1 / outScale
	}
	for oc := 0; oc < l.outC; oc++ {
		f := inScale * l.wScale[oc]
		bias := l.bias[oc]
		src := acc[oc*n : (oc+1)*n]
		dst := out[oc*n : (oc+1)*n]
		for x, v := range src {
			fv := float32(v)*f + bias
			if fv <= 0 {
				dst[x] = 0
				continue
			}
			qv := fv*invOut + 0.5 // fv > 0: round half up == half away from zero
			if qv > 127 {
				qv = 127
			}
			dst[x] = int8(qv)
		}
	}
}

// ForwardBatchQuantized evaluates len(inputs) samples through the int8
// path. The contract matches Network.ForwardBatch: policies[i] preallocated
// with NumActions elements, values[i] receives the tanh value.
func (q *QuantizedNetwork) ForwardBatchQuantized(ws *QuantWorkspace, inputs [][]float32, policies [][]float32, values []float64) {
	b := len(inputs)
	if b == 0 {
		return
	}
	if b > ws.capB {
		panic("nn: ForwardBatchQuantized batch exceeds workspace capacity")
	}
	if len(policies) < b || len(values) < b {
		panic("nn: ForwardBatchQuantized output slices shorter than batch")
	}
	inLen := q.Cfg.InC * q.Cfg.H * q.Cfg.W
	for i, in := range inputs {
		if len(in) != inLen {
			panic("nn: ForwardBatchQuantized input length mismatch")
		}
		if len(policies[i]) < q.Cfg.NumActions {
			panic("nn: ForwardBatchQuantized policy slice shorter than NumActions")
		}
	}
	cfg := q.Cfg
	hw := cfg.H * cfg.W

	// Input: pack fp32 batch-major, quantize once with the input scale.
	tensor.PackBatch(ws.xIn[:cfg.InC*b*hw], inputs, cfg.InC, hw)
	cur := ws.qA[:cfg.InC*b*hw]
	quantizeInto(cur, ws.xIn[:cfg.InC*b*hw], q.actScale[actInput])
	next := ws.qB

	// Trunk: three int8 convolutions, each fusing dequant+bias+ReLU+requant
	// into the next layer's input scale.
	for i := 0; i < 3; i++ {
		s := q.shapes[i]
		l := &q.conv[i]
		convQ8(ws, l, s, cur, b)
		n := b * s.ColRows()
		outScale := q.actScale[actTrunk1+i] // conv2's output slot is actTrunkOut
		out := next[:l.outC*n]
		requantRows(out, ws.i32, l, q.actScale[actInput+i], outScale, n)
		cur, next = out, cur[:cap(cur)]
	}

	// Policy head: int8 1x1 conv -> requant -> int8 FC -> fp32 logits.
	lp := &q.conv[3]
	convQ8(ws, lp, q.shapes[3], cur, b)
	n := b * hw
	pAct := next[:lp.outC*n]
	requantRows(pAct, ws.i32, lp, q.actScale[actTrunkOut], q.actScale[actPolicy], n)
	pD := cfg.PolicyC * hw
	qPolIn := ws.qPolIn[:b*pD]
	tensor.UnpackBatchQ8(qPolIn, pAct, cfg.PolicyC, hw, b)
	acc := ws.i32[:b*cfg.NumActions]
	tensor.MatMulTransBQ8(acc, qPolIn, q.pol.w, b, pD, cfg.NumActions)
	logits := ws.logits[:b*cfg.NumActions]
	aPol := q.actScale[actPolicy]
	for r := 0; r < b; r++ {
		row := acc[r*cfg.NumActions : (r+1)*cfg.NumActions]
		dst := logits[r*cfg.NumActions : (r+1)*cfg.NumActions]
		for j, v := range row {
			dst[j] = float32(v)*(aPol*q.pol.wScale[j]) + q.pol.bias[j]
		}
	}
	for i := 0; i < b; i++ {
		softmax(policies[i], logits[i*cfg.NumActions:(i+1)*cfg.NumActions])
	}

	// Value head: int8 1x1 conv -> requant -> int8 FC -> fp32 hidden ReLU ->
	// fp32 final FC -> tanh.
	lv := &q.conv[4]
	convQ8(ws, lv, q.shapes[4], cur, b)
	vAct := next[:lv.outC*n]
	requantRows(vAct, ws.i32, lv, q.actScale[actTrunkOut], q.actScale[actValue], n)
	vD := cfg.ValueC * hw
	qValIn := ws.qValIn[:b*vD]
	tensor.UnpackBatchQ8(qValIn, vAct, cfg.ValueC, hw, b)
	accV := ws.i32[:b*cfg.ValueHide]
	tensor.MatMulTransBQ8(accV, qValIn, q.val1.w, b, vD, cfg.ValueHide)
	vHide := ws.vHide[:b*cfg.ValueHide]
	aVal := q.actScale[actValue]
	for r := 0; r < b; r++ {
		row := accV[r*cfg.ValueHide : (r+1)*cfg.ValueHide]
		dst := vHide[r*cfg.ValueHide : (r+1)*cfg.ValueHide]
		for j, v := range row {
			fv := float32(v)*(aVal*q.val1.wScale[j]) + q.val1.bias[j]
			if fv < 0 {
				fv = 0
			}
			dst[j] = fv
		}
	}
	vOut := ws.vOut[:b]
	tensor.MatMulTransB(vOut, vHide, q.val2W, b, cfg.ValueHide, 1)
	for i := 0; i < b; i++ {
		values[i] = math.Tanh(float64(vOut[i] + q.val2B))
	}
}
