// Package nn implements the policy/value network used by DNN-MCTS.
//
// The architecture matches the paper's evaluation setup ("5 convolution
// layers and 3 fully-connected layers", Section 5.1), which is the standard
// Gomoku AlphaZero network:
//
//	trunk:  conv3x3(inC->c1) ReLU, conv3x3(c1->c2) ReLU, conv3x3(c2->c3) ReLU
//	policy: conv1x1(c3->pc) ReLU, FC(pc*H*W -> actions), softmax
//	value:  conv1x1(c3->vc) ReLU, FC(vc*H*W -> hidden) ReLU, FC(hidden -> 1), tanh
//
// That is 5 convolutions and 3 fully-connected layers in total. Forward and
// backward passes are pure Go; batches are parallelised across samples in
// internal/evaluate and internal/accel.
package nn

import (
	"fmt"

	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tensor"
)

// Config describes the network shape.
type Config struct {
	InC, H, W  int   // input planes and board dimensions
	Trunk      []int // output channels of the three 3x3 trunk convolutions
	PolicyC    int   // channels of the 1x1 policy-head convolution
	ValueC     int   // channels of the 1x1 value-head convolution
	ValueHide  int   // width of the value head's hidden FC layer
	NumActions int   // policy output size
}

// GomokuConfig returns the paper's network for an H x W board with inC
// input planes.
func GomokuConfig(inC, h, w, actions int) Config {
	return Config{
		InC: inC, H: h, W: w,
		Trunk:      []int{32, 64, 128},
		PolicyC:    4,
		ValueC:     2,
		ValueHide:  64,
		NumActions: actions,
	}
}

// TinyConfig returns a small network for fast tests.
func TinyConfig(inC, h, w, actions int) Config {
	return Config{
		InC: inC, H: h, W: w,
		Trunk:      []int{4, 8, 8},
		PolicyC:    2,
		ValueC:     1,
		ValueHide:  8,
		NumActions: actions,
	}
}

func (c Config) validate() error {
	if c.InC <= 0 || c.H <= 0 || c.W <= 0 || c.NumActions <= 0 {
		return fmt.Errorf("nn: invalid dimensions %+v", c)
	}
	if len(c.Trunk) != 3 {
		return fmt.Errorf("nn: trunk must have exactly 3 conv layers, got %d", len(c.Trunk))
	}
	if c.PolicyC <= 0 || c.ValueC <= 0 || c.ValueHide <= 0 {
		return fmt.Errorf("nn: invalid head sizes %+v", c)
	}
	return nil
}

// convShapes returns the five convolution shapes in order: trunk x3,
// policy 1x1, value 1x1.
func (c Config) convShapes() [5]tensor.Conv2DShape {
	var s [5]tensor.Conv2DShape
	in := c.InC
	for i, out := range c.Trunk {
		s[i] = tensor.Conv2DShape{InC: in, InH: c.H, InW: c.W, OutC: out, KH: 3, KW: 3, PadH: 1, PadW: 1}
		in = out
	}
	s[3] = tensor.Conv2DShape{InC: in, InH: c.H, InW: c.W, OutC: c.PolicyC, KH: 1, KW: 1}
	s[4] = tensor.Conv2DShape{InC: in, InH: c.H, InW: c.W, OutC: c.ValueC, KH: 1, KW: 1}
	return s
}

// Network holds the parameters. Parameters are read concurrently by many
// inference workers; mutation (training steps) must be externally
// synchronised with inference (the training pipeline alternates phases, as
// in Algorithm 1).
type Network struct {
	Cfg Config

	ConvW [5]*tensor.Tensor // each OutC x (InC*KH*KW)
	ConvB [5]*tensor.Tensor // each OutC

	PolW  *tensor.Tensor // NumActions x (PolicyC*H*W)
	PolB  *tensor.Tensor // NumActions
	Val1W *tensor.Tensor // ValueHide x (ValueC*H*W)
	Val1B *tensor.Tensor // ValueHide
	Val2W *tensor.Tensor // 1 x ValueHide
	Val2B *tensor.Tensor // 1
}

// New creates a network with He-initialised weights drawn from r.
func New(cfg Config, r *rng.Rand) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{Cfg: cfg}
	shapes := cfg.convShapes()
	for i, s := range shapes {
		n.ConvW[i] = heInit(r, s.OutC, s.ColCols())
		n.ConvB[i] = tensor.New(s.OutC)
	}
	hw := cfg.H * cfg.W
	n.PolW = heInit(r, cfg.NumActions, cfg.PolicyC*hw)
	n.PolB = tensor.New(cfg.NumActions)
	n.Val1W = heInit(r, cfg.ValueHide, cfg.ValueC*hw)
	n.Val1B = tensor.New(cfg.ValueHide)
	n.Val2W = heInit(r, 1, cfg.ValueHide)
	n.Val2B = tensor.New(1)
	return n, nil
}

// MustNew is New but panics on config errors; for tests and examples.
func MustNew(cfg Config, r *rng.Rand) *Network {
	n, err := New(cfg, r)
	if err != nil {
		panic(err)
	}
	return n
}

func heInit(r *rng.Rand, fanOut, fanIn int) *tensor.Tensor {
	t := tensor.New(fanOut, fanIn)
	std := float32(1.0)
	if fanIn > 0 {
		std = float32(1.4142135623730951 / sqrtF(float64(fanIn)))
	}
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64()) * std
	}
	return t
}

func sqrtF(x float64) float64 {
	// local wrapper to keep math import out of the hot path file
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// NumParams returns the total parameter count.
func (n *Network) NumParams() int {
	total := 0
	n.visitParams(func(t *tensor.Tensor) { total += t.Len() })
	return total
}

// visitParams calls f on every parameter tensor in a fixed order.
func (n *Network) visitParams(f func(*tensor.Tensor)) {
	for i := range n.ConvW {
		f(n.ConvW[i])
		f(n.ConvB[i])
	}
	f(n.PolW)
	f(n.PolB)
	f(n.Val1W)
	f(n.Val1B)
	f(n.Val2W)
	f(n.Val2B)
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	c := &Network{Cfg: n.Cfg}
	for i := range n.ConvW {
		c.ConvW[i] = n.ConvW[i].Clone()
		c.ConvB[i] = n.ConvB[i].Clone()
	}
	c.PolW = n.PolW.Clone()
	c.PolB = n.PolB.Clone()
	c.Val1W = n.Val1W.Clone()
	c.Val1B = n.Val1B.Clone()
	c.Val2W = n.Val2W.Clone()
	c.Val2B = n.Val2B.Clone()
	return c
}

// InputLen returns the flattened input size C*H*W.
func (n *Network) InputLen() int { return n.Cfg.InC * n.Cfg.H * n.Cfg.W }

// L2Norm returns the squared L2 norm of all parameters (used by the loss
// report; weight decay itself is folded into the SGD update).
func (n *Network) L2Norm() float64 {
	var s float64
	n.visitParams(func(t *tensor.Tensor) { s += t.SumSquares() })
	return s
}
