package nn

import (
	"math"

	"github.com/parmcts/parmcts/internal/tensor"
)

// BatchWorkspace holds every buffer one batched forward pass needs, sized
// for a maximum batch. Activations live in the batch-major layout of
// tensor.Conv2DForwardBatch (channel plane c of sample b at offset
// (c*batch+b)*H*W), so each conv layer is ONE im2col gather plus ONE GEMM
// for the whole batch — the weight panel is pulled through the cache once
// per layer instead of once per sample, which is where the accelerator's
// batch-throughput curve comes from.
//
// A workspace is not safe for concurrent use; accel.Hosted pools them by
// capacity so concurrent sub-batches each own one.
type BatchWorkspace struct {
	cfg    Config
	shapes [5]tensor.Conv2DShape
	capB   int

	xIn     []float32    // InC x (B*H*W): layer-0 input, packed batch-major
	convAct [5][]float32 // per layer: OutC x (B*pix), post-ReLU
	col     []float32    // shared im2col scratch, sized for the widest layer
	polIn   []float32    // B rows of PolicyC*H*W (per-sample, for the FC head)
	valIn   []float32    // B rows of ValueC*H*W
	logits  []float32    // B x NumActions
	vHide   []float32    // B x ValueHide
	vOut    []float32    // B (pre-tanh)
}

// NewBatchWorkspace allocates a workspace able to process up to maxBatch
// samples per call.
func NewBatchWorkspace(net *Network, maxBatch int) *BatchWorkspace {
	if maxBatch < 1 {
		panic("nn: batch workspace capacity must be >= 1")
	}
	cfg := net.Cfg
	ws := &BatchWorkspace{cfg: cfg, shapes: cfg.convShapes(), capB: maxBatch}
	hw := cfg.H * cfg.W
	ws.xIn = make([]float32, cfg.InC*maxBatch*hw)
	maxCol := 0
	for i, s := range ws.shapes {
		ws.convAct[i] = make([]float32, s.OutC*maxBatch*s.ColRows())
		if c := s.ColRows() * s.ColCols(); c > maxCol {
			maxCol = c
		}
	}
	ws.col = make([]float32, maxBatch*maxCol)
	ws.polIn = make([]float32, maxBatch*cfg.PolicyC*hw)
	ws.valIn = make([]float32, maxBatch*cfg.ValueC*hw)
	ws.logits = make([]float32, maxBatch*cfg.NumActions)
	ws.vHide = make([]float32, maxBatch*cfg.ValueHide)
	ws.vOut = make([]float32, maxBatch)
	return ws
}

// Cap returns the maximum batch size the workspace can process.
func (ws *BatchWorkspace) Cap() int { return ws.capB }

// ForwardBatch evaluates len(inputs) samples in one pass. Each inputs[i]
// must have length net.InputLen(); policies[i] must be preallocated with
// NumActions elements and is filled with the softmaxed policy; values[i]
// receives the tanh value. len(inputs) must not exceed ws.Cap().
//
// The arithmetic is the same kernel sequence as the single-sample Forward
// (which is the B=1 special case); outputs agree with per-sample evaluation
// to float32 rounding tolerance (tested at 1e-5 — the GEMM's per-column
// accumulation order varies with the batched matrix width).
func (net *Network) ForwardBatch(ws *BatchWorkspace, inputs [][]float32, policies [][]float32, values []float64) {
	b := len(inputs)
	if b == 0 {
		return
	}
	if b > ws.capB {
		panic("nn: ForwardBatch batch exceeds workspace capacity")
	}
	if len(policies) < b || len(values) < b {
		panic("nn: ForwardBatch output slices shorter than batch")
	}
	inLen := net.InputLen()
	for i, in := range inputs {
		if len(in) != inLen {
			panic("nn: ForwardBatch input length mismatch")
		}
		if len(policies[i]) < net.Cfg.NumActions {
			panic("nn: ForwardBatch policy slice shorter than NumActions")
		}
	}
	cfg := ws.cfg
	hw := cfg.H * cfg.W

	// Trunk: three 3x3 convolutions, each one GEMM over the whole batch.
	tensor.PackBatch(ws.xIn[:cfg.InC*b*hw], inputs, cfg.InC, hw)
	cur := ws.xIn
	for i := 0; i < 3; i++ {
		s := ws.shapes[i]
		out := ws.convAct[i][:s.OutC*b*s.ColRows()]
		tensor.Conv2DForwardBatch(out, cur, net.ConvW[i].Data, net.ConvB[i].Data, ws.col, s, b)
		reluInPlace(out)
		cur = out
	}

	// Policy head: 1x1 conv + ReLU + batched FC + row-wise softmax.
	sp := ws.shapes[3]
	pAct := ws.convAct[3][:sp.OutC*b*hw]
	tensor.Conv2DForwardBatch(pAct, cur, net.ConvW[3].Data, net.ConvB[3].Data, ws.col, sp, b)
	reluInPlace(pAct)
	pD := cfg.PolicyC * hw
	polIn := ws.polIn[:b*pD]
	tensor.UnpackBatch(polIn, pAct, cfg.PolicyC, hw, b)
	logits := ws.logits[:b*cfg.NumActions]
	tensor.MatMulTransB(logits, polIn, net.PolW.Data, b, pD, cfg.NumActions)
	tensor.AddBiasRows(logits, net.PolB.Data, b, cfg.NumActions)
	for i := 0; i < b; i++ {
		softmax(policies[i], logits[i*cfg.NumActions:(i+1)*cfg.NumActions])
	}

	// Value head: 1x1 conv + ReLU + batched FC + ReLU + batched FC + tanh.
	sv := ws.shapes[4]
	vAct := ws.convAct[4][:sv.OutC*b*hw]
	tensor.Conv2DForwardBatch(vAct, cur, net.ConvW[4].Data, net.ConvB[4].Data, ws.col, sv, b)
	reluInPlace(vAct)
	vD := cfg.ValueC * hw
	valIn := ws.valIn[:b*vD]
	tensor.UnpackBatch(valIn, vAct, cfg.ValueC, hw, b)
	vHide := ws.vHide[:b*cfg.ValueHide]
	tensor.MatMulTransB(vHide, valIn, net.Val1W.Data, b, vD, cfg.ValueHide)
	tensor.AddBiasRows(vHide, net.Val1B.Data, b, cfg.ValueHide)
	reluInPlace(vHide)
	vOut := ws.vOut[:b]
	tensor.MatMulTransB(vOut, vHide, net.Val2W.Data, b, cfg.ValueHide, 1)
	vb := net.Val2B.Data[0]
	for i := 0; i < b; i++ {
		values[i] = math.Tanh(float64(vOut[i] + vb))
	}
}

func reluInPlace(x []float32) {
	tensor.ReLUInPlace(x)
}
