package nn

import (
	"math"

	"github.com/parmcts/parmcts/internal/tensor"
)

// Workspace holds every intermediate buffer one forward (and optionally
// backward) pass needs. Workspaces let many goroutines run inference on the
// same immutable Network concurrently with zero allocation per call: each
// inference worker owns one Workspace, mirroring how each CPU thread in the
// shared-tree scheme evaluates its own leaf.
type Workspace struct {
	cfg    Config
	shapes [5]tensor.Conv2DShape

	// forward activations (pre- and post-ReLU kept for backward)
	convPre  [5][]float32
	convAct  [5][]float32
	col      [5][]float32 // im2col scratch per conv
	pLogits  []float32
	policy   []float32
	vHidePre []float32
	vHideAct []float32
	vOutPre  []float32 // length 1 (pre-tanh)

	// lastInput records the input slice of the most recent Forward call so
	// the first trunk convolution's backward pass can rebuild its im2col.
	lastInput []float32

	// backward scratch (allocated lazily by newGradScratch)
	back *backScratch
}

// NewWorkspace allocates a workspace for net's configuration.
func NewWorkspace(net *Network) *Workspace {
	cfg := net.Cfg
	ws := &Workspace{cfg: cfg, shapes: cfg.convShapes()}
	for i, s := range ws.shapes {
		ws.convPre[i] = make([]float32, s.OutC*s.OutH()*s.OutW())
		ws.convAct[i] = make([]float32, s.OutC*s.OutH()*s.OutW())
		ws.col[i] = make([]float32, s.ColRows()*s.ColCols())
	}
	ws.pLogits = make([]float32, cfg.NumActions)
	ws.policy = make([]float32, cfg.NumActions)
	ws.vHidePre = make([]float32, cfg.ValueHide)
	ws.vHideAct = make([]float32, cfg.ValueHide)
	ws.vOutPre = make([]float32, 1)
	return ws
}

// Forward runs one sample through the network. input must have length
// net.InputLen(). The returned policy slice is owned by the workspace and is
// overwritten by the next call; callers that retain it must copy.
// value is in [-1, 1] from the perspective encoded in the input planes.
//
// Forward is the batch-size-1 special case of ForwardBatch: it runs the
// identical tensor kernels (im2col + MatMulTransB convolutions, GEMM dense
// heads), merely retaining the pre-activation buffers BackwardSample needs.
// Outputs agree with ForwardBatch to float32 rounding tolerance (the GEMM's
// per-column accumulation order varies with the batched width; the property
// test pins agreement at 1e-5).
func (net *Network) Forward(ws *Workspace, input []float32) (policy []float32, value float64) {
	if len(input) != net.InputLen() {
		panic("nn: Forward input length mismatch")
	}
	ws.lastInput = input
	cur := input
	// Three 3x3 trunk convolutions with ReLU.
	for i := 0; i < 3; i++ {
		s := ws.shapes[i]
		tensor.Conv2DForward(ws.convPre[i], cur, net.ConvW[i].Data, net.ConvB[i].Data, ws.col[i], s)
		relu(ws.convAct[i], ws.convPre[i])
		cur = ws.convAct[i]
	}
	trunkOut := cur

	// Policy head: 1x1 conv + ReLU + FC + softmax.
	sp := ws.shapes[3]
	tensor.Conv2DForward(ws.convPre[3], trunkOut, net.ConvW[3].Data, net.ConvB[3].Data, ws.col[3], sp)
	relu(ws.convAct[3], ws.convPre[3])
	denseForward(ws.pLogits, net.PolW.Data, net.PolB.Data, ws.convAct[3])
	softmax(ws.policy, ws.pLogits)

	// Value head: 1x1 conv + ReLU + FC + ReLU + FC + tanh.
	sv := ws.shapes[4]
	tensor.Conv2DForward(ws.convPre[4], trunkOut, net.ConvW[4].Data, net.ConvB[4].Data, ws.col[4], sv)
	relu(ws.convAct[4], ws.convPre[4])
	denseForward(ws.vHidePre, net.Val1W.Data, net.Val1B.Data, ws.convAct[4])
	relu(ws.vHideAct, ws.vHidePre)
	denseForward(ws.vOutPre, net.Val2W.Data, net.Val2B.Data, ws.vHideAct)
	value = math.Tanh(float64(ws.vOutPre[0]))
	return ws.policy, value
}

// denseForward computes out = W*in + b for W stored (len(out) x len(in)) —
// the single-row slice of the batched GEMM head (out = in * W^T + b).
func denseForward(out, w, b, in []float32) {
	tensor.MatMulTransB(out, in, w, 1, len(in), len(out))
	for o := range out {
		out[o] += b[o]
	}
}

func relu(dst, src []float32) {
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

func softmax(dst, src []float32) {
	maxV := src[0]
	for _, v := range src[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range src {
		e := float32(math.Exp(float64(v - maxV)))
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}
