package nn

import (
	"math"
	"testing"

	"github.com/parmcts/parmcts/internal/rng"
)

// TestForwardBatchMatchesForward is the property test for the batched fast
// path: for every tested batch size and both reference configurations, the
// one-GEMM-per-layer ForwardBatch must agree with per-sample Forward within
// 1e-5. (Not bitwise: the GEMM's per-column accumulation order depends on
// the matrix width, so batched and single-sample results differ in the
// last float32 bits.)
func TestForwardBatchMatchesForward(t *testing.T) {
	configs := map[string]Config{
		"tiny":   TinyConfig(3, 7, 7, 49),
		"gomoku": GomokuConfig(4, 15, 15, 225),
	}
	batches := []int{1, 2, 7, 16, 32}
	const tol = 1e-5
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			net := MustNew(cfg, rng.New(99))
			ws := NewWorkspace(net)
			// One workspace at the largest capacity, reused across all batch
			// sizes, as accel.Hosted's pools do.
			bws := NewBatchWorkspace(net, 32)
			r := rng.New(100)
			for _, b := range batches {
				inputs := make([][]float32, b)
				policies := make([][]float32, b)
				values := make([]float64, b)
				for i := range inputs {
					inputs[i] = randInput(r, net.InputLen())
					policies[i] = make([]float32, cfg.NumActions)
				}
				net.ForwardBatch(bws, inputs, policies, values)
				for i := range inputs {
					wantPol, wantV := net.Forward(ws, inputs[i])
					if d := math.Abs(values[i] - wantV); d > tol {
						t.Fatalf("batch %d sample %d: value diff %g", b, i, d)
					}
					for a := range wantPol {
						if d := math.Abs(float64(policies[i][a] - wantPol[a])); d > tol {
							t.Fatalf("batch %d sample %d action %d: policy diff %g", b, i, a, d)
						}
					}
				}
			}
		})
	}
}

func TestForwardBatchPanicsOverCapacity(t *testing.T) {
	net := tinyNet(t)
	bws := NewBatchWorkspace(net, 2)
	r := rng.New(5)
	inputs := make([][]float32, 3)
	policies := make([][]float32, 3)
	for i := range inputs {
		inputs[i] = randInput(r, net.InputLen())
		policies[i] = make([]float32, net.Cfg.NumActions)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("batch over workspace capacity did not panic")
		}
	}()
	net.ForwardBatch(bws, inputs, policies, make([]float64, 3))
}

func TestForwardBatchEmptyIsNoop(t *testing.T) {
	net := tinyNet(t)
	bws := NewBatchWorkspace(net, 4)
	net.ForwardBatch(bws, nil, nil, nil) // must not panic
	if bws.Cap() != 4 {
		t.Fatalf("Cap = %d", bws.Cap())
	}
}
