package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tensor"
)

// wireFormat is the serialization format version. Stamped into every saved
// network and checked on load: checkpoints are durable artifacts that
// outlive the process (internal/checkpoint), so an incompatible future
// change to the wire layout must be detected, not decoded into garbage
// parameters.
const wireFormat = 1

// netWire is the gob wire format: format version, configuration, and
// parameter payloads in visitParams order.
type netWire struct {
	Format int
	Cfg    Config
	Params [][]float32
}

// Save writes the network to w in a self-describing binary format.
func (n *Network) Save(w io.Writer) error {
	wire := netWire{Format: wireFormat, Cfg: n.Cfg}
	n.visitParams(func(t *tensor.Tensor) {
		wire.Params = append(wire.Params, t.Data)
	})
	return gob.NewEncoder(w).Encode(&wire)
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*Network, error) {
	var wire netWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("nn: decode: %w", err)
	}
	// Format 0 is the legacy pre-stamp layout, whose Cfg/Params encoding is
	// identical to format 1 — networks saved before the stamp existed stay
	// loadable. Anything else comes from a future incompatible layout.
	if wire.Format != 0 && wire.Format != wireFormat {
		return nil, fmt.Errorf("nn: unsupported wire format %d (want %d)", wire.Format, wireFormat)
	}
	net, err := New(wire.Cfg, rng.New(0)) // weights are overwritten below
	if err != nil {
		return nil, err
	}
	var idx int
	var mismatch error
	net.visitParams(func(t *tensor.Tensor) {
		if mismatch != nil {
			return
		}
		if idx >= len(wire.Params) || len(wire.Params[idx]) != len(t.Data) {
			mismatch = fmt.Errorf("nn: parameter %d shape mismatch", idx)
			return
		}
		copy(t.Data, wire.Params[idx])
		idx++
	})
	if mismatch != nil {
		return nil, mismatch
	}
	if idx != len(wire.Params) {
		return nil, fmt.Errorf("nn: %d extra parameter blobs", len(wire.Params)-idx)
	}
	return net, nil
}
