package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"sync"
	"testing"

	"github.com/parmcts/parmcts/internal/rng"
)

func tinyNet(t testing.TB) *Network {
	t.Helper()
	return MustNew(TinyConfig(2, 5, 5, 25), rng.New(42))
}

func randInput(r *rng.Rand, n int) []float32 {
	in := make([]float32, n)
	for i := range in {
		in[i] = r.Float32()
	}
	return in
}

func randPolicyTarget(r *rng.Rand, n int) []float32 {
	p := make([]float32, n)
	var sum float32
	for i := range p {
		p[i] = r.Float32()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{InC: 1, H: 3, W: 3, NumActions: 9, Trunk: []int{4, 4}, PolicyC: 1, ValueC: 1, ValueHide: 4},
		{InC: 1, H: 3, W: 3, NumActions: 9, Trunk: []int{4, 4, 4}, PolicyC: 0, ValueC: 1, ValueHide: 4},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, rng.New(1)); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(TinyConfig(2, 5, 5, 25), rng.New(1)); err != nil {
		t.Errorf("TinyConfig rejected: %v", err)
	}
}

func TestForwardOutputs(t *testing.T) {
	net := tinyNet(t)
	ws := NewWorkspace(net)
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		policy, value := net.Forward(ws, randInput(r, net.InputLen()))
		if len(policy) != 25 {
			t.Fatalf("policy length %d", len(policy))
		}
		var sum float64
		for _, p := range policy {
			if p < 0 || math.IsNaN(float64(p)) {
				t.Fatal("invalid policy entry")
			}
			sum += float64(p)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("policy sums to %v", sum)
		}
		if value < -1 || value > 1 || math.IsNaN(value) {
			t.Fatalf("value out of range: %v", value)
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	net := tinyNet(t)
	ws1, ws2 := NewWorkspace(net), NewWorkspace(net)
	in := randInput(rng.New(3), net.InputLen())
	p1, v1 := net.Forward(ws1, in)
	p2, v2 := net.Forward(ws2, in)
	if v1 != v2 {
		t.Fatal("values differ across workspaces")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("policies differ across workspaces")
		}
	}
}

func TestConcurrentForwardIsRaceFree(t *testing.T) {
	net := MustNew(TinyConfig(4, 7, 7, 49), rng.New(5))
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			ws := NewWorkspace(net)
			for i := 0; i < 50; i++ {
				net.Forward(ws, randInput(r, net.InputLen()))
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestBackwardGradientNumerically(t *testing.T) {
	// Full end-to-end gradient check of Equation 2's differentiable terms
	// against central differences, touching every parameter group.
	net := MustNew(TinyConfig(2, 4, 4, 16), rng.New(11))
	r := rng.New(12)
	sample := Sample{
		Input:  randInput(r, net.InputLen()),
		Policy: randPolicyTarget(r, 16),
		Value:  0.37,
	}
	ws := NewWorkspace(net)
	g := NewGradients(net)
	net.BackwardSample(ws, g, sample)

	loss := func() float64 {
		p, v := net.Forward(ws, sample.Input)
		var pl float64
		for i := range p {
			if sample.Policy[i] > 0 {
				pl -= float64(sample.Policy[i]) * math.Log(math.Max(float64(p[i]), 1e-12))
			}
		}
		d := v - sample.Value
		return d*d + pl
	}

	type group struct {
		name  string
		param []float32
		grad  []float32
	}
	groups := []group{
		{"conv0W", net.ConvW[0].Data, g.ConvW[0].Data},
		{"conv1W", net.ConvW[1].Data, g.ConvW[1].Data},
		{"conv2W", net.ConvW[2].Data, g.ConvW[2].Data},
		{"polConvW", net.ConvW[3].Data, g.ConvW[3].Data},
		{"valConvW", net.ConvW[4].Data, g.ConvW[4].Data},
		{"conv0B", net.ConvB[0].Data, g.ConvB[0].Data},
		{"polW", net.PolW.Data, g.PolW.Data},
		{"polB", net.PolB.Data, g.PolB.Data},
		{"val1W", net.Val1W.Data, g.Val1W.Data},
		{"val1B", net.Val1B.Data, g.Val1B.Data},
		{"val2W", net.Val2W.Data, g.Val2W.Data},
		{"val2B", net.Val2B.Data, g.Val2B.Data},
	}
	const eps = 1e-2
	for _, grp := range groups {
		checks := 6
		if len(grp.param) < checks {
			checks = len(grp.param)
		}
		for c := 0; c < checks; c++ {
			i := r.Intn(len(grp.param))
			orig := grp.param[i]
			grp.param[i] = orig + eps
			lp := loss()
			grp.param[i] = orig - eps
			lm := loss()
			grp.param[i] = orig
			num := (lp - lm) / (2 * eps)
			got := float64(grp.grad[i])
			if math.Abs(num-got) > 5e-2*math.Max(1, math.Abs(num)) {
				t.Errorf("%s[%d]: numeric %v analytic %v", grp.name, i, num, got)
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Overfit a fixed mini-dataset: total loss must drop substantially.
	net := MustNew(TinyConfig(2, 5, 5, 25), rng.New(20))
	r := rng.New(21)
	var batch []Sample
	for i := 0; i < 16; i++ {
		// One-hot policy targets have zero entropy, so the cross-entropy
		// term can in principle be driven to zero by overfitting.
		pol := make([]float32, 25)
		pol[r.Intn(25)] = 1
		batch = append(batch, Sample{
			Input:  randInput(r, net.InputLen()),
			Policy: pol,
			Value:  r.Float64()*2 - 1,
		})
	}
	opt := NewSGD(0.05, 0.9, 1e-4)
	first := TrainBatch(net, opt, batch, 4)
	var last BatchResult
	for i := 0; i < 60; i++ {
		last = TrainBatch(net, opt, batch, 4)
	}
	if !(last.TotalLoss() < 0.5*first.TotalLoss()) {
		t.Fatalf("loss did not drop: first %v last %v", first.TotalLoss(), last.TotalLoss())
	}
	if last.N != 16 {
		t.Errorf("batch size reported %d", last.N)
	}
}

func TestTrainBatchWorkerCountsAgree(t *testing.T) {
	// Gradient averaging must be independent of the parallel decomposition:
	// training with 1 worker and with 4 workers from identical initial
	// weights must produce identical (up to fp reassociation) parameters.
	mk := func() (*Network, []Sample) {
		net := MustNew(TinyConfig(2, 4, 4, 16), rng.New(30))
		r := rng.New(31)
		var batch []Sample
		for i := 0; i < 8; i++ {
			batch = append(batch, Sample{
				Input:  randInput(r, net.InputLen()),
				Policy: randPolicyTarget(r, 16),
				Value:  r.Float64()*2 - 1,
			})
		}
		return net, batch
	}
	n1, b1 := mk()
	n4, b4 := mk()
	TrainBatch(n1, NewSGD(0.01, 0, 0), b1, 1)
	TrainBatch(n4, NewSGD(0.01, 0, 0), b4, 4)
	var maxDiff float64
	for i := range n1.PolW.Data {
		d := math.Abs(float64(n1.PolW.Data[i] - n4.PolW.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-4 {
		t.Fatalf("1-worker and 4-worker updates diverge: %v", maxDiff)
	}
}

func TestTrainBatchEmpty(t *testing.T) {
	net := tinyNet(t)
	res := TrainBatch(net, NewSGD(0.1, 0.9, 0), nil, 4)
	if res.N != 0 || res.TotalLoss() != 0 {
		t.Fatal("empty batch should be a no-op")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := tinyNet(t)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng.New(2), net.InputLen())
	ws1, ws2 := NewWorkspace(net), NewWorkspace(loaded)
	p1, v1 := net.Forward(ws1, in)
	p2, v2 := loaded.Forward(ws2, in)
	if v1 != v2 {
		t.Fatalf("values differ after round trip: %v vs %v", v1, v2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("policies differ after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a network"))); err == nil {
		t.Fatal("garbage decoded successfully")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	net := tinyNet(t)
	c := net.Clone()
	c.PolW.Data[0] += 1
	if net.PolW.Data[0] == c.PolW.Data[0] {
		t.Fatal("clone shares parameters")
	}
	if net.NumParams() != c.NumParams() {
		t.Fatal("clone parameter count differs")
	}
}

func TestGomokuConfigParamCount(t *testing.T) {
	net := MustNew(GomokuConfig(4, 15, 15, 225), rng.New(1))
	// 5 convs + 3 FCs; sanity-check the magnitude (hundreds of thousands).
	n := net.NumParams()
	if n < 100_000 || n > 2_000_000 {
		t.Fatalf("unexpected parameter count %d", n)
	}
}

func TestGradientsAddAndZero(t *testing.T) {
	net := tinyNet(t)
	a, b := NewGradients(net), NewGradients(net)
	a.PolB.Data[0] = 1
	b.PolB.Data[0] = 2
	a.Add(b)
	if a.PolB.Data[0] != 3 {
		t.Fatalf("Add wrong: %v", a.PolB.Data[0])
	}
	a.Zero()
	if a.PolB.Data[0] != 0 {
		t.Fatal("Zero did not clear")
	}
}

func BenchmarkForwardGomoku(b *testing.B) {
	net := MustNew(GomokuConfig(4, 15, 15, 225), rng.New(1))
	ws := NewWorkspace(net)
	in := randInput(rng.New(2), net.InputLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(ws, in)
	}
}

func BenchmarkTrainBatch32Gomoku(b *testing.B) {
	net := MustNew(GomokuConfig(4, 15, 15, 225), rng.New(1))
	r := rng.New(2)
	var batch []Sample
	for i := 0; i < 32; i++ {
		batch = append(batch, Sample{
			Input:  randInput(r, net.InputLen()),
			Policy: randPolicyTarget(r, 225),
			Value:  r.Float64()*2 - 1,
		})
	}
	opt := NewSGD(0.01, 0.9, 1e-4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TrainBatch(net, opt, batch, 0)
	}
}

// TestLoadRejectsUnknownWireFormat: a serialized network from a different
// format version must be rejected, not decoded into garbage parameters —
// checkpoints are durable artifacts now.
func TestLoadRejectsUnknownWireFormat(t *testing.T) {
	net := MustNew(TinyConfig(2, 4, 4, 16), rng.New(1))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	// Re-encode the wire struct with a bumped format version.
	var wire netWire
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	wire.Format = wireFormat + 1
	var future bytes.Buffer
	if err := gob.NewEncoder(&future).Encode(&wire); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&future); err == nil {
		t.Fatal("future wire format accepted")
	}
}
