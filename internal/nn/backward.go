package nn

import (
	"math"
	"runtime"
	"sync"

	"github.com/parmcts/parmcts/internal/tensor"
)

// Sample is one training datapoint (s_t, pi_t, r) produced by the tree-based
// search stage (Algorithm 1 line 12).
type Sample struct {
	Input  []float32 // encoded state, length InC*H*W
	Policy []float32 // root visit distribution pi, length NumActions
	Value  float64   // final outcome r from the mover's perspective, in [-1,1]
}

// Gradients accumulates parameter gradients with the same layout as Network.
type Gradients struct {
	ConvW        [5]*tensor.Tensor
	ConvB        [5]*tensor.Tensor
	PolW, PolB   *tensor.Tensor
	Val1W, Val1B *tensor.Tensor
	Val2W, Val2B *tensor.Tensor
}

// NewGradients allocates zeroed gradients for net.
func NewGradients(net *Network) *Gradients {
	g := &Gradients{}
	shapes := net.Cfg.convShapes()
	for i, s := range shapes {
		g.ConvW[i] = tensor.New(s.OutC, s.ColCols())
		g.ConvB[i] = tensor.New(s.OutC)
	}
	hw := net.Cfg.H * net.Cfg.W
	g.PolW = tensor.New(net.Cfg.NumActions, net.Cfg.PolicyC*hw)
	g.PolB = tensor.New(net.Cfg.NumActions)
	g.Val1W = tensor.New(net.Cfg.ValueHide, net.Cfg.ValueC*hw)
	g.Val1B = tensor.New(net.Cfg.ValueHide)
	g.Val2W = tensor.New(1, net.Cfg.ValueHide)
	g.Val2B = tensor.New(1)
	return g
}

// Zero clears all accumulated gradients.
func (g *Gradients) Zero() {
	g.visit(func(t *tensor.Tensor) { t.Zero() })
}

// Add accumulates other into g.
func (g *Gradients) Add(other *Gradients) {
	pair := func(a, b *tensor.Tensor) { a.AXPY(1, b) }
	for i := range g.ConvW {
		pair(g.ConvW[i], other.ConvW[i])
		pair(g.ConvB[i], other.ConvB[i])
	}
	pair(g.PolW, other.PolW)
	pair(g.PolB, other.PolB)
	pair(g.Val1W, other.Val1W)
	pair(g.Val1B, other.Val1B)
	pair(g.Val2W, other.Val2W)
	pair(g.Val2B, other.Val2B)
}

func (g *Gradients) visit(f func(*tensor.Tensor)) {
	for i := range g.ConvW {
		f(g.ConvW[i])
		f(g.ConvB[i])
	}
	f(g.PolW)
	f(g.PolB)
	f(g.Val1W)
	f(g.Val1B)
	f(g.Val2W)
	f(g.Val2B)
}

// backScratch holds backward-pass buffers sized for one sample.
type backScratch struct {
	dConvAct  [5][]float32 // gradient w.r.t. conv post-activation
	dConvPre  [5][]float32 // gradient w.r.t. conv pre-activation
	dCol      [5][]float32
	dInput    [5][]float32 // gradient flowing into each conv's input
	dLogits   []float32
	dPolAct   []float32
	dVHide    []float32
	dVAct     []float32
	trunkGrad []float32 // sum of policy-head and value-head trunk gradients
}

func (ws *Workspace) gradScratch() *backScratch {
	if ws.back != nil {
		return ws.back
	}
	b := &backScratch{}
	for i, s := range ws.shapes {
		outLen := s.OutC * s.OutH() * s.OutW()
		b.dConvAct[i] = make([]float32, outLen)
		b.dConvPre[i] = make([]float32, outLen)
		b.dCol[i] = make([]float32, s.ColRows()*s.ColCols())
		b.dInput[i] = make([]float32, s.InC*s.InH*s.InW)
	}
	b.dLogits = make([]float32, ws.cfg.NumActions)
	b.dPolAct = make([]float32, ws.shapes[3].OutC*ws.cfg.H*ws.cfg.W)
	b.dVHide = make([]float32, ws.cfg.ValueHide)
	b.dVAct = make([]float32, ws.shapes[4].OutC*ws.cfg.H*ws.cfg.W)
	b.trunkGrad = make([]float32, ws.shapes[2].OutC*ws.cfg.H*ws.cfg.W)
	ws.back = b
	return b
}

// BackwardSample runs forward+backward for one sample, accumulating
// gradients into g and returning the sample's loss terms:
// valueLoss = (v - z)^2, policyLoss = -pi . log p  (Equation 2 without the
// L2 term, which the optimizer applies as weight decay).
func (net *Network) BackwardSample(ws *Workspace, g *Gradients, s Sample) (valueLoss, policyLoss float64) {
	policy, value := net.Forward(ws, s.Input)
	b := ws.gradScratch()

	// ---- loss gradients at the heads ----
	// Policy: L_p = -sum_a pi_a log p_a with p = softmax(logits)
	// => dL/dlogits = p - pi.
	for i := range b.dLogits {
		b.dLogits[i] = policy[i] - s.Policy[i]
		if s.Policy[i] > 0 {
			policyLoss -= float64(s.Policy[i]) * math.Log(math.Max(float64(policy[i]), 1e-12))
		}
	}
	// Value: L_v = (v - z)^2 with v = tanh(u) => dL/du = 2(v-z)(1-v^2).
	diff := value - s.Value
	valueLoss = diff * diff
	dVOut := float32(2 * diff * (1 - value*value))

	// ---- value head backward ----
	// vOut = Val2W . vHideAct + Val2B
	for i := range b.dVHide {
		b.dVHide[i] = dVOut * net.Val2W.Data[i]
		g.Val2W.Data[i] += dVOut * ws.vHideAct[i]
	}
	g.Val2B.Data[0] += dVOut
	// through hidden ReLU
	for i := range b.dVHide {
		if ws.vHidePre[i] <= 0 {
			b.dVHide[i] = 0
		}
	}
	// vHidePre = Val1W . vAct + Val1B
	denseBackward(b.dVAct, net.Val1W.Data, g.Val1W.Data, g.Val1B.Data, b.dVHide, ws.convAct[4])
	// through value-conv ReLU
	reluBackInto(b.dConvPre[4], b.dVAct, ws.convPre[4])
	// value 1x1 conv backward
	sv := ws.shapes[4]
	tensor.Im2Col(ws.col[4], ws.convAct[2], sv)
	tensor.Conv2DBackward(b.dInput[4], g.ConvW[4].Data, g.ConvB[4].Data,
		b.dConvPre[4], net.ConvW[4].Data, ws.col[4], b.dCol[4], sv)

	// ---- policy head backward ----
	denseBackward(b.dPolAct, net.PolW.Data, g.PolW.Data, g.PolB.Data, b.dLogits, ws.convAct[3])
	reluBackInto(b.dConvPre[3], b.dPolAct, ws.convPre[3])
	sp := ws.shapes[3]
	tensor.Im2Col(ws.col[3], ws.convAct[2], sp)
	tensor.Conv2DBackward(b.dInput[3], g.ConvW[3].Data, g.ConvB[3].Data,
		b.dConvPre[3], net.ConvW[3].Data, ws.col[3], b.dCol[3], sp)

	// ---- trunk backward ----
	for i := range b.trunkGrad {
		b.trunkGrad[i] = b.dInput[3][i] + b.dInput[4][i]
	}
	upstream := b.trunkGrad
	for layer := 2; layer >= 0; layer-- {
		s := ws.shapes[layer]
		reluBackInto(b.dConvPre[layer], upstream, ws.convPre[layer])
		// Recompute this conv's im2col from its forward input (the col
		// buffer was clobbered by later layers during the forward pass).
		var fwdIn []float32
		if layer == 0 {
			fwdIn = ws.lastInput
		} else {
			fwdIn = ws.convAct[layer-1]
		}
		tensor.Im2Col(ws.col[layer], fwdIn, s)
		tensor.Conv2DBackward(b.dInput[layer], g.ConvW[layer].Data, g.ConvB[layer].Data,
			b.dConvPre[layer], net.ConvW[layer].Data, ws.col[layer], b.dCol[layer], s)
		upstream = b.dInput[layer]
	}
	return valueLoss, policyLoss
}

// denseBackward accumulates dW/dB and computes dIn for out = W.in + b:
//
//	dW[o][i] += dOut[o] * in[i]
//	dB[o]    += dOut[o]
//	dIn[i]    = sum_o dOut[o] * W[o][i]
func denseBackward(dIn, w, dW, dB, dOut, in []float32) {
	inLen := len(in)
	for i := range dIn {
		dIn[i] = 0
	}
	for o, g := range dOut {
		dB[o] += g
		if g == 0 {
			continue
		}
		wRow := w[o*inLen : (o+1)*inLen]
		dwRow := dW[o*inLen : (o+1)*inLen]
		for i, v := range in {
			dwRow[i] += g * v
			dIn[i] += g * wRow[i]
		}
	}
}

func reluBackInto(dst, dOut, pre []float32) {
	for i := range dst {
		if pre[i] > 0 {
			dst[i] = dOut[i]
		} else {
			dst[i] = 0
		}
	}
}

// SGD is a momentum SGD optimizer with decoupled L2 weight decay (this is
// the c||theta||^2 term of Equation 2).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    *Gradients
}

// NewSGD creates an optimizer with the given hyper-parameters.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies one update: v = mu*v + (g + wd*theta); theta -= lr*v.
// Gradients should already be averaged over the batch.
func (o *SGD) Step(net *Network, g *Gradients) {
	if o.velocity == nil {
		o.velocity = NewGradients(net)
	}
	lr := float32(o.LR)
	mu := float32(o.Momentum)
	wd := float32(o.WeightDecay)

	var params, grads, vels []*tensor.Tensor
	net.visitParams(func(t *tensor.Tensor) { params = append(params, t) })
	g.visit(func(t *tensor.Tensor) { grads = append(grads, t) })
	o.velocity.visit(func(t *tensor.Tensor) { vels = append(vels, t) })
	for i := range params {
		p, gr, v := params[i].Data, grads[i].Data, vels[i].Data
		for j := range p {
			upd := gr[j] + wd*p[j]
			v[j] = mu*v[j] + upd
			p[j] -= lr * v[j]
		}
	}
}

// BatchResult reports the loss decomposition of one training batch.
type BatchResult struct {
	ValueLoss  float64 // mean (v - z)^2
	PolicyLoss float64 // mean -pi.log p
	L2         float64 // c * ||theta||^2 at the time of the step
	N          int
}

// TotalLoss is Equation 2 evaluated on the batch: value + policy + L2.
func (r BatchResult) TotalLoss() float64 { return r.ValueLoss + r.PolicyLoss + r.L2 }

// TrainBatch runs forward/backward over the samples in parallel (one
// goroutine per core, each with a private Workspace and Gradients shard),
// averages the gradients, and applies one SGD step. It mirrors the paper's
// CPU-training configuration where a fixed pool of threads performs SGD
// (Section 5.4). workers <= 0 selects GOMAXPROCS.
func TrainBatch(net *Network, opt *SGD, batch []Sample, workers int) BatchResult {
	if len(batch) == 0 {
		return BatchResult{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	type shard struct {
		g            *Gradients
		vLoss, pLoss float64
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(batch) {
			break
		}
		hi := lo + chunk
		if hi > len(batch) {
			hi = len(batch)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ws := NewWorkspace(net)
			g := NewGradients(net)
			var vl, pl float64
			for _, s := range batch[lo:hi] {
				v, p := net.BackwardSample(ws, g, s)
				vl += v
				pl += p
			}
			shards[w] = shard{g: g, vLoss: vl, pLoss: pl}
		}(w, lo, hi)
	}
	wg.Wait()

	total := shards[0].g
	res := BatchResult{ValueLoss: shards[0].vLoss, PolicyLoss: shards[0].pLoss, N: len(batch)}
	for _, sh := range shards[1:] {
		if sh.g == nil {
			continue
		}
		total.Add(sh.g)
		res.ValueLoss += sh.vLoss
		res.PolicyLoss += sh.pLoss
	}
	scale := float32(1.0 / float64(len(batch)))
	total.visit(func(t *tensor.Tensor) { t.Scale(scale) })
	opt.Step(net, total)
	res.ValueLoss /= float64(len(batch))
	res.PolicyLoss /= float64(len(batch))
	res.L2 = opt.WeightDecay * net.L2Norm()
	return res
}
