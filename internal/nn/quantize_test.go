package nn_test

import (
	"math"
	"testing"

	"github.com/parmcts/parmcts/internal/game"
	_ "github.com/parmcts/parmcts/internal/game/games"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// quantGameSpecs covers every registered game at its test size: the error
// bounds below must hold across all board geometries and plane counts, not
// just Gomoku's.
var quantGameSpecs = []string{"tictactoe", "connect4", "gomoku:9", "othello", "hex:7"}

// replayPositions generates encoded positions from random playouts — a
// stand-in for replay-buffer samples with the same support: every position
// is reachable and encoded exactly as the training pipeline would.
func replayPositions(tb testing.TB, g game.Game, n int, seed uint64) [][]float32 {
	tb.Helper()
	r := rng.New(seed)
	c, h, w := g.EncodedShape()
	ln := c * h * w
	out := make([][]float32, 0, n)
	var legal []int
	for len(out) < n {
		st := g.NewInitial()
		for !st.Terminal() && len(out) < n {
			in := make([]float32, ln)
			st.Encode(in)
			out = append(out, in)
			legal = st.LegalMoves(legal[:0])
			st.Play(legal[r.Intn(len(legal))])
		}
	}
	return out
}

// quantizedPair builds an fp32 network for g plus its quantized derivation,
// calibrated on calib replay positions.
func quantizedPair(tb testing.TB, g game.Game, calib [][]float32, seed uint64) (*nn.Network, *nn.QuantizedNetwork) {
	tb.Helper()
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(seed))
	q, err := nn.Quantize(net, calib)
	if err != nil {
		tb.Fatalf("Quantize: %v", err)
	}
	return net, q
}

// TestQuantizeNoCalibration pins the explicit error: activation scales
// cannot be invented without samples.
func TestQuantizeNoCalibration(t *testing.T) {
	g, err := game.NewFromSpec("tictactoe")
	if err != nil {
		t.Fatal(err)
	}
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(1))
	if _, qerr := nn.Quantize(net, nil); qerr != nn.ErrNoCalibration {
		t.Fatalf("Quantize(nil calib) error = %v, want ErrNoCalibration", qerr)
	}
}

// TestQuantizedErrorBounds is the quantization acceptance property: on
// replay-sampled positions NOT in the calibration set, the quantized
// network's policy stays within an L-infinity and KL budget of the fp32
// policy, and the value agrees in sign whenever fp32 is confident. The
// bounds are pinned at roughly 3x the worst drift observed empirically
// across all five games (L-inf ~5e-3, KL ~1.1e-3, |dv| ~3e-2), so a
// regression that meaningfully degrades int8 fidelity trips them while
// rounding jitter does not.
func TestQuantizedErrorBounds(t *testing.T) {
	const (
		nCalib    = 96
		nEval     = 64
		maxLinf   = 0.02
		maxKL     = 0.004
		maxDV     = 0.09
		confident = 0.25
	)
	for _, spec := range quantGameSpecs {
		t.Run(spec, func(t *testing.T) {
			g, err := game.NewFromSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			all := replayPositions(t, g, nCalib+nEval, 7)
			calib, eval := all[:nCalib], all[nCalib:]
			net, q := quantizedPair(t, g, calib, 42)

			acts := g.NumActions()
			fpPol := allocPolicies(nEval, acts)
			qPol := allocPolicies(nEval, acts)
			fpVal := make([]float64, nEval)
			qVal := make([]float64, nEval)
			ws := nn.NewBatchWorkspace(net, nEval)
			qws := q.NewWorkspace(nEval)
			net.ForwardBatch(ws, eval, fpPol, fpVal)
			q.ForwardBatchQuantized(qws, eval, qPol, qVal)

			var worstLinf, worstKL, worstDV float64
			for i := 0; i < nEval; i++ {
				var linf, kl float64
				for a := 0; a < acts; a++ {
					p, pq := float64(fpPol[i][a]), float64(qPol[i][a])
					if d := math.Abs(p - pq); d > linf {
						linf = d
					}
					if p > 1e-9 && pq > 1e-9 {
						kl += p * math.Log(p/pq)
					}
				}
				if linf > worstLinf {
					worstLinf = linf
				}
				if kl > worstKL {
					worstKL = kl
				}
				dv := math.Abs(fpVal[i] - qVal[i])
				if dv > worstDV {
					worstDV = dv
				}
				if math.Abs(fpVal[i]) > confident && sign(fpVal[i]) != sign(qVal[i]) {
					t.Errorf("position %d: value sign flip fp32=%.4f quant=%.4f", i, fpVal[i], qVal[i])
				}
			}
			t.Logf("%s: worst Linf=%.2e KL=%.2e |dv|=%.2e", spec, worstLinf, worstKL, worstDV)
			if worstLinf > maxLinf {
				t.Errorf("policy L-inf drift %.3e exceeds %.3e", worstLinf, maxLinf)
			}
			if worstKL > maxKL {
				t.Errorf("policy KL drift %.3e exceeds %.3e", worstKL, maxKL)
			}
			if worstDV > maxDV {
				t.Errorf("value drift %.3e exceeds %.3e", worstDV, maxDV)
			}
		})
	}
}

// TestQuantizedBatchInvariant: the int8 GEMM accumulates exactly in int32
// and all dequantization is elementwise, so unlike the fp32 path the
// quantized forward is bitwise independent of batch size.
func TestQuantizedBatchInvariant(t *testing.T) {
	g, err := game.NewFromSpec("gomoku:9")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	all := replayPositions(t, g, 64+n, 11)
	_, q := quantizedPair(t, g, all[:64], 5)
	eval := all[64:]

	acts := g.NumActions()
	batchPol := allocPolicies(n, acts)
	batchVal := make([]float64, n)
	qws := q.NewWorkspace(n)
	q.ForwardBatchQuantized(qws, eval, batchPol, batchVal)

	onePol := allocPolicies(1, acts)
	oneVal := make([]float64, 1)
	for i := 0; i < n; i++ {
		q.ForwardBatchQuantized(qws, eval[i:i+1], onePol, oneVal)
		if oneVal[0] != batchVal[i] {
			t.Fatalf("sample %d: value %v (single) != %v (batch)", i, oneVal[0], batchVal[i])
		}
		for a := 0; a < acts; a++ {
			if onePol[0][a] != batchPol[i][a] {
				t.Fatalf("sample %d action %d: policy %v (single) != %v (batch)", i, a, onePol[0][a], batchPol[i][a])
			}
		}
	}
}

func allocPolicies(n, actions int) [][]float32 {
	p := make([][]float32, n)
	for i := range p {
		p[i] = make([]float32, actions)
	}
	return p
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

func BenchmarkForwardBatchQuantized(b *testing.B) {
	g, err := game.NewFromSpec("gomoku:15")
	if err != nil {
		b.Fatal(err)
	}
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.GomokuConfig(c, h, w, g.NumActions()), rng.New(3))
	all := replayPositions(b, g, 96, 9)
	q, err := nn.Quantize(net, all[:64])
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 8, 16, 32} {
		inputs := make([][]float32, batch)
		for i := range inputs {
			inputs[i] = all[64+i%32]
		}
		pol := allocPolicies(batch, g.NumActions())
		val := make([]float64, batch)
		b.Run(benchName("batch", batch), func(b *testing.B) {
			qws := q.NewWorkspace(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.ForwardBatchQuantized(qws, inputs, pol, val)
			}
		})
	}
}

func BenchmarkForwardBatchFP32(b *testing.B) {
	g, err := game.NewFromSpec("gomoku:15")
	if err != nil {
		b.Fatal(err)
	}
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.GomokuConfig(c, h, w, g.NumActions()), rng.New(3))
	all := replayPositions(b, g, 96, 9)
	for _, batch := range []int{1, 8, 16, 32} {
		inputs := make([][]float32, batch)
		for i := range inputs {
			inputs[i] = all[64+i%32]
		}
		pol := allocPolicies(batch, g.NumActions())
		val := make([]float64, batch)
		b.Run(benchName("batch", batch), func(b *testing.B) {
			ws := nn.NewBatchWorkspace(net, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.ForwardBatch(ws, inputs, pol, val)
			}
		})
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + string(buf[i:])
}
