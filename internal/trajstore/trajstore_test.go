package trajstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/faultfs"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// testEpisode builds a deterministic episode: episode seq's content is a
// pure function of seq, so recovered stores can be verified frame by frame.
func testEpisode(seq int) Episode {
	r := rng.New(uint64(seq)*2654435761 + 1)
	ep := Episode{
		Moves:  4 + seq%5,
		Winner: game.Player(seq%3 - 1),
	}
	for i := 0; i < 3+seq%4; i++ {
		in := make([]float32, 8)
		pol := make([]float32, 4)
		for j := range in {
			in[j] = r.Float32()
		}
		for j := range pol {
			pol[j] = r.Float32()
		}
		ep.Samples = append(ep.Samples, nn.Sample{Input: in, Policy: pol, Value: float64(r.Float32())*2 - 1})
	}
	return ep
}

func sameEpisode(a, b Episode) bool {
	if a.Moves != b.Moves || a.Winner != b.Winner || len(a.Samples) != len(b.Samples) {
		return false
	}
	for i := range a.Samples {
		as, bs := a.Samples[i], b.Samples[i]
		if as.Value != bs.Value || len(as.Input) != len(bs.Input) || len(as.Policy) != len(bs.Policy) {
			return false
		}
		for j := range as.Input {
			if as.Input[j] != bs.Input[j] {
				return false
			}
		}
		for j := range as.Policy {
			if as.Policy[j] != bs.Policy[j] {
				return false
			}
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	for seq := 0; seq < 20; seq++ {
		ep := testEpisode(seq)
		got, err := decodeEpisode(encodeEpisode(ep))
		if err != nil {
			t.Fatalf("episode %d: %v", seq, err)
		}
		if !sameEpisode(ep, got) {
			t.Fatalf("episode %d did not round-trip", seq)
		}
	}
	// Empty episode (zero samples) round-trips too.
	got, err := decodeEpisode(encodeEpisode(Episode{Moves: 0, Winner: 0}))
	if err != nil || len(got.Samples) != 0 {
		t.Fatalf("empty episode: %v, %d samples", err, len(got.Samples))
	}
}

func TestAppendGetAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if s.Games() != n {
		t.Fatalf("games = %d, want %d", s.Games(), n)
	}
	for i := 0; i < n; i++ {
		ep, err := s.Get(i)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !sameEpisode(ep, testEpisode(i)) {
			t.Fatalf("episode %d content mismatch", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// 10 episodes at 3/segment: 3 sealed + the closing seal of the 1-game
	// active remnant.
	entries, _ := os.ReadDir(dir)
	sealedCount := 0
	for _, e := range entries {
		var id int64
		if matchSeg(e.Name(), ".traj", &id) {
			sealedCount++
		}
	}
	if sealedCount != 4 {
		t.Fatalf("sealed segments = %d, want 4", sealedCount)
	}
}

func TestReopenRecoversEverythingCommitted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 11
	for i := 0; i < n; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate an abrupt exit with an unsealed active segment.
	s.mu.Lock()
	if s.activeF != nil {
		s.activeF.Close()
		s.activeF = nil
	}
	s.mu.Unlock()

	re, err := Open(dir, Config{SegmentGames: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Games() != n {
		t.Fatalf("reopened games = %d, want %d", re.Games(), n)
	}
	for i := 0; i < n; i++ {
		ep, err := re.Get(i)
		if err != nil {
			t.Fatalf("get %d after reopen: %v", i, err)
		}
		if !sameEpisode(ep, testEpisode(i)) {
			t.Fatalf("episode %d mismatch after reopen", i)
		}
	}
	// And appends continue where they left off.
	if err := re.Append(testEpisode(n)); err != nil {
		t.Fatal(err)
	}
	if re.Games() != n+1 {
		t.Fatalf("games after continued append = %d", re.Games())
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 100})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // seals to seg-1.traj

	// Tear the sealed segment: append half a frame's worth of garbage.
	path := filepath.Join(dir, segSealedName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 9, 9, 9, 9, 9, 9})
	f.Close()

	re, err := Open(dir, Config{SegmentGames: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Games() != n {
		t.Fatalf("reopened games = %d, want %d (torn tail truncated)", re.Games(), n)
	}
	if rec := re.Recovery(); rec.TornBytes != 7 {
		t.Fatalf("recovery reported %d torn bytes, want 7", rec.TornBytes)
	}
	for i := 0; i < n; i++ {
		if _, err := re.Get(i); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

func TestCorruptManifestRebuiltFromScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// The manifest is an accelerator, not the only truth: garbage in it
	// must not lose committed segments.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Config{SegmentGames: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovery().ManifestRebuilt {
		t.Fatal("recovery did not report a manifest rebuild")
	}
	if re.Games() != n {
		t.Fatalf("games after manifest rebuild = %d, want %d", re.Games(), n)
	}
	for i := 0; i < n; i++ {
		if ep, err := re.Get(i); err != nil || !sameEpisode(ep, testEpisode(i)) {
			t.Fatalf("episode %d lost or corrupted after manifest rebuild (%v)", i, err)
		}
	}
}

func TestUnmanifestedSealedSegmentAdopted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Simulate a crash between seal-rename and manifest write: delete the
	// manifest entirely.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Config{SegmentGames: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovery().AdoptedSegments != 2 {
		t.Fatalf("adopted = %d, want 2", re.Recovery().AdoptedSegments)
	}
	if re.Games() != 4 {
		t.Fatalf("games = %d, want 4", re.Games())
	}
}

func TestWriteErrorDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjected(faultfs.OS)
	s, err := Open(dir, Config{SegmentGames: 100, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Fail the next fsync: that append must error and degrade the store.
	inj.Script(faultfs.Fault{Op: faultfs.OpSync, At: 4, Mode: faultfs.Fail})
	if err := s.Append(testEpisode(3)); err == nil {
		t.Fatal("append with failed fsync reported success")
	}
	if !s.ReadOnly() || s.Err() == nil {
		t.Fatal("store did not degrade to read-only")
	}
	if err := s.Append(testEpisode(4)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append on degraded store: %v, want ErrReadOnly", err)
	}
	// Reads still work: training continues sampling what is committed.
	if s.Games() != 3 {
		t.Fatalf("games = %d, want the 3 acknowledged", s.Games())
	}
	if _, err := s.Get(2); err != nil {
		t.Fatalf("read on degraded store: %v", err)
	}
	s.Close()

	// The acknowledged episodes survive a reopen; the unacknowledged 4th
	// is either absent or truncated away, never half-present.
	re, err := Open(dir, Config{SegmentGames: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Games() < 3 {
		t.Fatalf("reopen lost acknowledged games: %d < 3", re.Games())
	}
	for i := 0; i < re.Games(); i++ {
		if ep, err := re.Get(i); err != nil || !sameEpisode(ep, testEpisode(i)) {
			t.Fatalf("episode %d wrong after degraded run (%v)", i, err)
		}
	}
}

func TestSealRenameFailureKeepsDataRecoverable(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjected(faultfs.OS).Script(faultfs.Fault{Op: faultfs.OpRename, At: 1, Mode: faultfs.Fail})
	s, err := Open(dir, Config{SegmentGames: 3, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; i < 3; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			break // the 3rd append triggers the seal whose rename fails
		}
		acked++
	}
	if !s.ReadOnly() {
		t.Fatal("failed seal rename did not degrade the store")
	}
	s.Close()
	re, err := Open(dir, Config{SegmentGames: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Every append that was fsync-acknowledged survives even though the
	// seal never completed — the .open segment is recovered as-is. The
	// 3rd append's frame was durably written before the seal step failed,
	// so it may legitimately exceed acked.
	if re.Games() < acked {
		t.Fatalf("reopen lost games: %d < %d acked", re.Games(), acked)
	}
	for i := 0; i < re.Games(); i++ {
		if ep, err := re.Get(i); err != nil || !sameEpisode(ep, testEpisode(i)) {
			t.Fatalf("episode %d wrong after failed seal (%v)", i, err)
		}
	}
}

func TestDroppedWriteNeverServesTornFrames(t *testing.T) {
	// A lying disk (write acknowledged, nothing persisted) cannot be
	// detected at append time. The guarantee is weaker and still vital: no
	// reader — in-process or after reopen — ever gets back a frame whose
	// checksum fails, and recovery never resurrects bytes past a hole.
	dir := t.TempDir()
	inj := faultfs.NewInjected(faultfs.OS).Script(faultfs.Fault{Op: faultfs.OpWrite, At: 4, Mode: faultfs.Drop})
	s, err := Open(dir, Config{SegmentGames: 100, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	// Write 1 is the magic; writes 2..6 are episodes 0..4; write 4
	// (episode 2) is silently dropped.
	for i := 0; i < 5; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatalf("append %d: %v (drops are silent)", i, err)
		}
	}
	// In-process reads past the hole must error (checksum/decode), never
	// return wrong-but-plausible frames silently... except the frame that
	// slid into the hole's place, which is a VALID frame (episode 3's) —
	// identity is not protected against lying disks, integrity is.
	for i := 0; i < 5; i++ {
		ep, err := s.Get(i)
		if err != nil {
			continue
		}
		found := false
		for j := 0; j < 5; j++ {
			if sameEpisode(ep, testEpisode(j)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("get %d returned a frame that matches no appended episode", i)
		}
	}
	s.mu.Lock()
	s.activeF.Close()
	s.activeF = nil
	s.mu.Unlock()

	re, err := Open(dir, Config{SegmentGames: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Four frames physically exist (0,1,3,4 contiguously); all must verify.
	if re.Games() != 4 {
		t.Fatalf("recovered %d games, want 4 (one silently dropped)", re.Games())
	}
	want := []int{0, 1, 3, 4}
	for i, seq := range want {
		ep, err := re.Get(i)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !sameEpisode(ep, testEpisode(seq)) {
			t.Fatalf("recovered episode %d is not appended episode %d", i, seq)
		}
	}
}

func TestRetentionDropsOldestSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 2, Retain: Retention{MaxGames: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	if g := s.Games(); g > 6 {
		// 4 retained across sealed segments plus up to one active segment.
		t.Fatalf("retention kept %d games, want <= 6", g)
	}
	// The newest episodes survive; the oldest are gone.
	last, err := s.Get(s.Games() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameEpisode(last, testEpisode(9)) {
		t.Fatal("newest episode lost by retention")
	}
	s.Close()

	// Reopen: watermark honored, no resurrection of dropped segments.
	re, err := Open(dir, Config{SegmentGames: 2, Retain: Retention{MaxGames: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	first, err := re.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if sameEpisode(first, testEpisode(0)) {
		t.Fatal("dropped episode resurrected after reopen")
	}
}

func TestRetentionByAge(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Backdate the sealed segments' manifest timestamps.
	st, _ := Open(dir, Config{SegmentGames: 2})
	st.mu.Lock()
	for i := range st.man.Segments {
		st.man.Segments[i].SealedAtUnix = time.Now().Add(-time.Hour).Unix()
	}
	st.writeManifestLocked()
	st.mu.Unlock()
	st.Close()

	re, err := Open(dir, Config{SegmentGames: 2, Retain: Retention{MaxAge: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Games() != 0 {
		t.Fatalf("age retention kept %d games, want 0", re.Games())
	}
}

func TestGameTagGuardsResume(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{Game: "othello"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testEpisode(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(dir, Config{Game: "hex"}); err == nil {
		t.Fatal("store tagged othello resumed as hex")
	}
	re, err := Open(dir, Config{Game: "othello"})
	if err != nil {
		t.Fatalf("matching tag rejected: %v", err)
	}
	re.Close()
}

func TestSampleUniformDistinct(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 12
	for i := 0; i < n; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.SampleUniform(rng.New(7), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("sampled %d, want 6", len(got))
	}
	// Oversized request returns the whole store, each episode once.
	all, err := s.SampleUniform(rng.New(8), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("oversized sample returned %d, want %d", len(all), n)
	}
	matched := make([]bool, n)
	for _, ep := range all {
		for j := 0; j < n; j++ {
			if !matched[j] && sameEpisode(ep, testEpisode(j)) {
				matched[j] = true
				break
			}
		}
	}
	for j, ok := range matched {
		if !ok {
			t.Fatalf("episode %d missing from exhaustive uniform sample", j)
		}
	}
}

func TestSampleRecentPrefersNewEpisodes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	// gamma=0.9: expected age ~9, so draws should land overwhelmingly in
	// the newest half.
	const draws = 400
	got, err := s.SampleRecent(rng.New(9), draws, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != draws {
		t.Fatalf("drew %d, want %d", len(got), draws)
	}
	newHalf := 0
	for _, ep := range got {
		for j := n / 2; j < n; j++ {
			if sameEpisode(ep, testEpisode(j)) {
				newHalf++
				break
			}
		}
	}
	if newHalf < draws*3/4 {
		t.Fatalf("only %d/%d recency-weighted draws in the newest half", newHalf, draws)
	}
	// gamma=1 degenerates to uniform; must not error.
	if _, err := s.SampleRecent(rng.New(10), 10, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleRecent(rng.New(10), 10, 1.5); err == nil {
		t.Fatal("gamma > 1 accepted")
	}
}

func TestSampleWhileAppendingUnderRace(t *testing.T) {
	// The Loop samples on the SGD goroutine while the generator appends:
	// the store must serve both concurrently. Run with -race.
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentGames: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Append(testEpisode(i)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 10; i < 40; i++ {
			if err := s.Append(testEpisode(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	r := rng.New(11)
	for i := 0; i < 50; i++ {
		if _, err := s.SampleUniform(r, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := s.SampleRecent(r, 4, 0.95); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if s.Games() != 40 {
		t.Fatalf("games = %d, want 40", s.Games())
	}
}
