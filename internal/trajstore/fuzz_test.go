package trajstore

import (
	"bytes"
	"testing"

	"github.com/parmcts/parmcts/internal/faultfs"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/nn"
)

// FuzzSegmentRead feeds arbitrary bytes to the segment scanner. The
// scanner sits on the recovery path, so it runs against whatever a torn,
// bit-flipped, or hostile disk hands back. Invariants:
//
//   - never panics (allocation sizes come from attacker-controlled
//     headers and must be validated before make());
//   - never reports a valid prefix longer than the input;
//   - every frame it does return re-verifies: stored checksum matches the
//     payload AND the payload decodes as an episode. A checksum-failing
//     frame escaping the scanner would poison training data silently.
func FuzzSegmentRead(f *testing.F) {
	// Seed 1: a well-formed two-episode segment.
	var good bytes.Buffer
	good.WriteString(segMagic)
	for i := 0; i < 2; i++ {
		ep := Episode{
			Moves:  3,
			Winner: game.P1,
			Samples: []nn.Sample{
				{Input: []float32{1, 2}, Policy: []float32{0.5, 0.5}, Value: 0.25},
			},
		}
		good.Write(encodeFrame(encodeEpisode(ep)))
	}
	f.Add(good.Bytes())
	// Seed 2: truncated mid-frame.
	f.Add(good.Bytes()[:good.Len()-5])
	// Seed 3: one bit flipped inside the first payload.
	flipped := append([]byte(nil), good.Bytes()...)
	flipped[len(segMagic)+frameHeader+2] ^= 0x40
	f.Add(flipped)
	// Seed 4: header promising an absurd payload length.
	huge := []byte(segMagic + "\xff\xff\xff\x7f\x00\x00\x00\x00\x00\x00\x00\x00")
	f.Add(huge)
	// Seed 5: empty and magic-only inputs.
	f.Add([]byte{})
	f.Add([]byte(segMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		res := scanSegment(bytes.NewReader(data), int64(len(data)), 1)
		if res.valid < 0 || res.valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", res.valid, len(data))
		}
		for _, fr := range res.frames {
			if fr.off < int64(frameHeader) || fr.off+int64(fr.size) > int64(len(data)) {
				t.Fatalf("frame ref [%d,+%d) outside input of %d bytes", fr.off, fr.size, len(data))
			}
			payload := data[fr.off : fr.off+int64(fr.size)]
			wantSum := leU64at(data, fr.off-8)
			if faultfs.Checksum(payload) != wantSum {
				t.Fatal("scanner returned a checksum-failing frame")
			}
			if _, err := decodeEpisode(payload); err != nil {
				t.Fatalf("scanner returned an undecodable frame: %v", err)
			}
		}
	})
}

func leU64at(b []byte, off int64) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[off+int64(i)]) << (8 * i)
	}
	return v
}
