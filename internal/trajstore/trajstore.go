// Package trajstore is the durable half of the replay pipeline: an
// append-only, disk-backed store of encoded self-play episodes, built so a
// killed training run loses nothing it acknowledged.
//
// Layout: episodes are length-prefixed, FNV-64a-checksummed frames appended
// to segment files. The active segment (seg-N.open) takes appends — each
// Append writes one frame and fsyncs before returning, so a nil error means
// the episode is durable. After Config.SegmentGames episodes the segment is
// sealed: synced, renamed to seg-N.traj, and recorded in MANIFEST.json,
// which is rewritten atomically LAST (tmp+fsync+rename via
// faultfs.WriteAtomic — the same manifest-last commit discipline as
// internal/checkpoint).
//
// Recovery: Open rescans everything. Sealed segments are re-validated
// frame by frame; a .traj present on disk but missing from the manifest is
// adopted (crash between rename and manifest write), a segment below the
// manifest's retention watermark is deleted (crash between manifest write
// and file removal), and a corrupt or missing manifest is rebuilt from the
// directory scan — the manifest accelerates and annotates recovery, it is
// never the only copy of the truth. The active segment is truncated to its
// last valid frame: a torn append disappears, every frame before it
// survives. The in-memory frame index built during the scan serves uniform
// and recency-weighted sampling with one ReadAt per draw, no rescans.
//
// Failure semantics: the first write, sync or rename error (disk full,
// injected fault, dying device) marks the store read-only. Reads and
// sampling keep working; Append returns ErrReadOnly; the caller — see
// cmd/train — logs and continues on its in-memory ring. The store never
// takes the training run down with it.
package trajstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/faultfs"
	"github.com/parmcts/parmcts/internal/rng"
)

// ErrReadOnly is returned by Append after a storage error has degraded the
// store (or Open found the directory unwritable).
var ErrReadOnly = errors.New("trajstore: store is read-only after a storage error")

// Retention bounds the store. Zero values mean unbounded. Only sealed
// segments are dropped, oldest first, and never the one that would take
// the store below MaxGames.
type Retention struct {
	// MaxGames drops oldest sealed segments while the total committed game
	// count exceeds it.
	MaxGames int
	// MaxAge drops sealed segments whose seal time is older than this.
	MaxAge time.Duration
}

// Config tunes a store.
type Config struct {
	// SegmentGames seals the active segment after this many episodes
	// (default 256).
	SegmentGames int
	// Retain bounds disk use; zero = keep everything.
	Retain Retention
	// Game tags the manifest with the workload spec; Open rejects a
	// directory tagged with a different game (the same resume guard
	// checkpoint manifests carry). Empty = untagged.
	Game string
	// FS is the filesystem seam (nil = faultfs.OS). Tests inject faults
	// through it.
	FS faultfs.FS
	// NoSync skips the per-append fsync. Throughput-vs-durability knob for
	// benchmarks; production keeps the default (sync every append).
	NoSync bool
}

// manifest is the JSON commit record for sealed segments.
type manifest struct {
	Format       int           `json:"format"`
	Game         string        `json:"game,omitempty"`
	DroppedBelow int64         `json:"dropped_below"` // retention watermark: ids below are garbage
	Segments     []segmentMeta `json:"segments"`
}

type segmentMeta struct {
	ID           int64  `json:"id"`
	Games        int    `json:"games"`
	Bytes        int64  `json:"bytes"`
	SealedAtUnix int64  `json:"sealed_at_unix"`
	Checksum     string `json:"checksum,omitempty"` // reserved: whole-file digests
}

// RecoveryReport describes what Open had to repair.
type RecoveryReport struct {
	// TornBytes were truncated off segment tails (incomplete final frames).
	TornBytes int64
	// AdoptedSegments were sealed on disk but missing from the manifest
	// (crash after rename, before the manifest commit).
	AdoptedSegments int
	// DroppedSegments were manifest-listed but missing or below the
	// retention watermark, or leftover temp files.
	DroppedSegments int
	// ManifestRebuilt reports a corrupt/missing manifest reconstructed
	// from the directory scan.
	ManifestRebuilt bool
}

const manifestName = "MANIFEST.json"

func segOpenName(id int64) string   { return fmt.Sprintf("seg-%08d.open", id) }
func segSealedName(id int64) string { return fmt.Sprintf("seg-%08d.traj", id) }

// Store is a durable episode log. Safe for concurrent use: appends are
// serialised, sampling reads only committed frames.
type Store struct {
	dir string
	cfg Config
	fs  faultfs.FS

	mu       sync.Mutex
	man      manifest
	index    []frameRef // all committed episodes, oldest first
	active   int64      // active segment id
	activeF  faultfs.File
	activeN  int   // episodes in the active segment
	activeSz int64 // bytes in the active segment
	readOnly bool
	firstErr error
	recov    RecoveryReport
	readers  map[int64]faultfs.ReadAtCloser
	closed   bool
}

// Open opens (creating if needed) a store directory, running full crash
// recovery: torn tails truncated, unmanifested sealed segments adopted,
// retention-watermark garbage deleted, index rebuilt.
func Open(dir string, cfg Config) (*Store, error) {
	if dir == "" {
		return nil, errors.New("trajstore: empty store directory")
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS
	}
	if cfg.SegmentGames <= 0 {
		cfg.SegmentGames = 256
	}
	s := &Store{dir: dir, cfg: cfg, fs: cfg.FS, readers: make(map[int64]faultfs.ReadAtCloser)}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("trajstore: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.applyRetentionLocked(); err != nil {
		// Retention failure degrades, it does not block opening.
		s.degradeLocked(err)
	}
	return s, nil
}

// recover scans the directory into a consistent in-memory state.
func (s *Store) recover() error {
	man, manOK, manExisted := s.readManifest()
	if man.Game != "" && s.cfg.Game != "" && man.Game != s.cfg.Game {
		return fmt.Errorf("trajstore: store %s holds %q episodes, not %q; use a fresh -replay-dir", s.dir, man.Game, s.cfg.Game)
	}
	if man.Game == "" {
		man.Game = s.cfg.Game
	}

	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("trajstore: %w", err)
	}
	manifested := make(map[int64]segmentMeta, len(man.Segments))
	for _, m := range man.Segments {
		manifested[m.ID] = m
	}
	var sealed []int64
	var opens []int64
	maxID := int64(0)
	for _, e := range entries {
		var id int64
		name := e.Name()
		switch {
		case name == manifestName:
			continue
		case matchSeg(name, ".traj", &id):
			if id < man.DroppedBelow {
				// Retention removed it from the manifest; the file delete
				// crashed. Finish the job.
				s.fs.Remove(filepath.Join(s.dir, name))
				s.recov.DroppedSegments++
				continue
			}
			sealed = append(sealed, id)
		case matchSeg(name, ".open", &id):
			opens = append(opens, id)
		case len(name) > 4 && name[len(name)-4:] == ".tmp":
			s.fs.Remove(filepath.Join(s.dir, name))
			s.recov.DroppedSegments++
			continue
		default:
			continue
		}
		if id > maxID {
			maxID = id
		}
	}
	sort.Slice(sealed, func(i, j int) bool { return sealed[i] < sealed[j] })
	sort.Slice(opens, func(i, j int) bool { return opens[i] < opens[j] })

	// A fresh, empty directory needs no manifest yet (the first seal
	// commits one); only a missing/corrupt manifest over EXISTING data is
	// a rebuild.
	rebuilt := !manOK && (manExisted || len(sealed) > 0 || len(opens) > 0)
	s.recov.ManifestRebuilt = rebuilt

	// Sealed segments: re-validate every frame. The manifest's game counts
	// are advisory — the frames' checksums are the truth.
	var newMan []segmentMeta
	manChanged := rebuilt
	for _, id := range sealed {
		res, size, err := s.scanFile(segSealedName(id), id)
		if err != nil {
			return err
		}
		if res.valid < size {
			s.recov.TornBytes += size - res.valid
			if err := s.fs.Truncate(filepath.Join(s.dir, segSealedName(id)), res.valid); err != nil {
				return fmt.Errorf("trajstore: truncate torn segment %d: %w", id, err)
			}
		}
		meta, had := manifested[id]
		if !had {
			s.recov.AdoptedSegments++
			manChanged = true
			meta = segmentMeta{ID: id, SealedAtUnix: time.Now().Unix()}
		}
		if meta.Games != len(res.frames) || meta.Bytes != res.valid {
			meta.Games, meta.Bytes = len(res.frames), res.valid
			manChanged = true
		}
		newMan = append(newMan, meta)
		s.index = append(s.index, res.frames...)
		delete(manifested, id)
	}
	// Manifest entries whose file vanished: drop them (committed data lost
	// to an external fault — record it, nothing to restore from).
	if len(manifested) > 0 {
		s.recov.DroppedSegments += len(manifested)
		manChanged = true
	}
	man.Segments = newMan

	// Active segments: at most one is expected; extras (unreachable with
	// this writer, possible with a meddled directory) get sealed too so no
	// data is silently shadowed. The newest stays active.
	for i, id := range opens {
		res, size, err := s.scanFile(segOpenName(id), id)
		if err != nil {
			return err
		}
		if res.valid < size {
			s.recov.TornBytes += size - res.valid
			if err := s.fs.Truncate(filepath.Join(s.dir, segOpenName(id)), res.valid); err != nil {
				return fmt.Errorf("trajstore: truncate torn segment %d: %w", id, err)
			}
		}
		last := i == len(opens)-1
		if !last {
			if err := s.fs.Rename(filepath.Join(s.dir, segOpenName(id)), filepath.Join(s.dir, segSealedName(id))); err != nil {
				return fmt.Errorf("trajstore: seal stray segment %d: %w", id, err)
			}
			man.Segments = append(man.Segments, segmentMeta{ID: id, Games: len(res.frames), Bytes: res.valid, SealedAtUnix: time.Now().Unix()})
			manChanged = true
			s.index = append(s.index, res.frames...)
			continue
		}
		s.active = id
		s.activeN = len(res.frames)
		s.activeSz = res.valid
		s.index = append(s.index, res.frames...)
	}
	sort.Slice(man.Segments, func(i, j int) bool { return man.Segments[i].ID < man.Segments[j].ID })

	s.man = man
	if s.active == 0 {
		s.active = maxID + 1
		if s.active <= man.DroppedBelow {
			s.active = man.DroppedBelow + 1
		}
	}
	if manChanged {
		if err := s.writeManifestLocked(); err != nil {
			return err
		}
	}
	return nil
}

// scanFile opens one segment file and validates it.
func (s *Store) scanFile(name string, id int64) (scanResult, int64, error) {
	path := filepath.Join(s.dir, name)
	info, err := s.fs.Stat(path)
	if err != nil {
		return scanResult{}, 0, fmt.Errorf("trajstore: %w", err)
	}
	r, err := s.fs.OpenRead(path)
	if err != nil {
		return scanResult{}, 0, fmt.Errorf("trajstore: %w", err)
	}
	defer r.Close()
	return scanSegment(r, info.Size(), id), info.Size(), nil
}

func matchSeg(name, ext string, id *int64) bool {
	var v int64
	pattern := "seg-%08d" + ext
	if n, _ := fmt.Sscanf(name, pattern, &v); n == 1 && name == fmt.Sprintf(pattern, v) {
		*id = v
		return true
	}
	return false
}

func (s *Store) readManifest() (man manifest, ok, existed bool) {
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return manifest{Format: 1}, false, false
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil || m.Format != 1 {
		return manifest{Format: 1}, false, true
	}
	return m, true, true
}

// writeManifestLocked commits the manifest atomically (manifest-last: the
// callers have already renamed any segment it references).
func (s *Store) writeManifestLocked() error {
	raw, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("trajstore: manifest: %w", err)
	}
	if err := faultfs.WriteAtomic(s.fs, filepath.Join(s.dir, manifestName), raw); err != nil {
		return fmt.Errorf("trajstore: manifest: %w", err)
	}
	return nil
}

// degradeLocked flips the store read-only, remembering the first error.
func (s *Store) degradeLocked(err error) {
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.readOnly = true
	if s.activeF != nil {
		s.activeF.Close()
		s.activeF = nil
	}
}

// Recovery returns what Open repaired.
func (s *Store) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recov
}

// Games returns the number of committed episodes.
func (s *Store) Games() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Samples returns the total stored sample count across all episodes.
func (s *Store) Samples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.index {
		n += int(f.samples)
	}
	return n
}

// ReadOnly reports whether a storage error has degraded the store.
func (s *Store) ReadOnly() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readOnly
}

// Err returns the error that degraded the store, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// Append durably commits one episode: the frame is written and (unless
// Config.NoSync) fsynced before Append returns nil. On any storage error
// the store degrades to read-only and the episode is NOT committed.
func (s *Store) Append(ep Episode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("trajstore: store is closed")
	}
	if s.readOnly {
		return ErrReadOnly
	}
	if err := s.ensureActiveLocked(); err != nil {
		s.degradeLocked(err)
		return err
	}
	payload := encodeEpisode(ep)
	frame := encodeFrame(payload)
	if _, err := s.activeF.Write(frame); err != nil {
		// The write may have torn: recovery truncates it on next open; this
		// process must not serve the active segment past the last durable
		// frame, which the index (not advanced) already guarantees.
		s.degradeLocked(fmt.Errorf("trajstore: append: %w", err))
		return s.firstErr
	}
	if !s.cfg.NoSync {
		if err := s.activeF.Sync(); err != nil {
			s.degradeLocked(fmt.Errorf("trajstore: fsync: %w", err))
			return s.firstErr
		}
	}
	s.index = append(s.index, frameRef{
		seg:     s.active,
		off:     s.activeSz + frameHeader,
		size:    int32(len(payload)),
		samples: int32(len(ep.Samples)),
	})
	s.activeSz += int64(len(frame))
	s.activeN++
	if s.activeN >= s.cfg.SegmentGames {
		if err := s.sealLocked(); err != nil {
			s.degradeLocked(err)
			return s.firstErr
		}
		if err := s.applyRetentionLocked(); err != nil {
			s.degradeLocked(err)
			return s.firstErr
		}
	}
	return nil
}

// ensureActiveLocked opens (creating with magic) the active segment file.
func (s *Store) ensureActiveLocked() error {
	if s.activeF != nil {
		return nil
	}
	path := filepath.Join(s.dir, segOpenName(s.active))
	fresh := s.activeSz == 0
	f, err := s.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("trajstore: open segment: %w", err)
	}
	if fresh {
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return fmt.Errorf("trajstore: segment header: %w", err)
		}
		s.activeSz = int64(len(segMagic))
	}
	s.activeF = f
	return nil
}

// Seal commits the active segment early (rename + manifest), e.g. on
// graceful shutdown. A store with an empty active segment is a no-op.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	if s.activeN == 0 {
		return nil
	}
	if err := s.sealLocked(); err != nil {
		s.degradeLocked(err)
		return s.firstErr
	}
	return nil
}

// sealLocked: fsync + close the active file, rename .open -> .traj, then
// commit the manifest. The rename precedes the manifest write, so a crash
// between them leaves an adoptable sealed segment, never a lost one.
func (s *Store) sealLocked() error {
	if s.activeN == 0 {
		return nil
	}
	if err := s.ensureActiveLocked(); err != nil {
		return err
	}
	if err := s.activeF.Sync(); err != nil {
		return fmt.Errorf("trajstore: seal fsync: %w", err)
	}
	if err := s.activeF.Close(); err != nil {
		return fmt.Errorf("trajstore: seal close: %w", err)
	}
	s.activeF = nil
	id := s.active
	if err := s.fs.Rename(filepath.Join(s.dir, segOpenName(id)), filepath.Join(s.dir, segSealedName(id))); err != nil {
		return fmt.Errorf("trajstore: seal rename: %w", err)
	}
	// A cached read handle for the active segment now points at a renamed
	// file; the fd stays valid on POSIX, keep serving from it.
	s.man.Segments = append(s.man.Segments, segmentMeta{
		ID: id, Games: s.activeN, Bytes: s.activeSz, SealedAtUnix: time.Now().Unix(),
	})
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	s.active = id + 1
	s.activeN = 0
	s.activeSz = 0
	return nil
}

// applyRetentionLocked drops oldest sealed segments per Config.Retain.
// Order: manifest first (watermark raised), files second — a crash in
// between leaves orphans below the watermark that recovery deletes.
func (s *Store) applyRetentionLocked() error {
	ret := s.cfg.Retain
	if ret.MaxGames <= 0 && ret.MaxAge <= 0 {
		return nil
	}
	total := len(s.index)
	cutoff := time.Now().Add(-ret.MaxAge).Unix()
	var drop []segmentMeta
	for len(s.man.Segments) > 0 {
		m := s.man.Segments[0]
		tooMany := ret.MaxGames > 0 && total-m.Games >= ret.MaxGames
		tooOld := ret.MaxAge > 0 && m.SealedAtUnix < cutoff
		if !tooMany && !tooOld {
			break
		}
		drop = append(drop, m)
		total -= m.Games
		s.man.Segments = s.man.Segments[1:]
		if m.ID+1 > s.man.DroppedBelow {
			s.man.DroppedBelow = m.ID + 1
		}
	}
	if len(drop) == 0 {
		return nil
	}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	dropIDs := make(map[int64]bool, len(drop))
	for _, m := range drop {
		dropIDs[m.ID] = true
		if r, ok := s.readers[m.ID]; ok {
			r.Close()
			delete(s.readers, m.ID)
		}
		s.fs.Remove(filepath.Join(s.dir, segSealedName(m.ID)))
	}
	kept := s.index[:0]
	for _, f := range s.index {
		if !dropIDs[f.seg] {
			kept = append(kept, f)
		}
	}
	s.index = kept
	return nil
}

// readerLocked returns (opening and caching) a read handle for a segment.
func (s *Store) readerLocked(seg int64) (faultfs.ReadAtCloser, error) {
	if r, ok := s.readers[seg]; ok {
		return r, nil
	}
	name := segSealedName(seg)
	if seg == s.active {
		name = segOpenName(seg)
	}
	r, err := s.fs.OpenRead(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("trajstore: %w", err)
	}
	s.readers[seg] = r
	return r, nil
}

// Get reads episode i (0 = oldest committed). The frame checksum is
// re-verified on every read, so bit rot after Open is still caught.
func (s *Store) Get(i int) (Episode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(i)
}

func (s *Store) getLocked(i int) (Episode, error) {
	if i < 0 || i >= len(s.index) {
		return Episode{}, fmt.Errorf("trajstore: episode %d out of range [0,%d)", i, len(s.index))
	}
	ref := s.index[i]
	r, err := s.readerLocked(ref.seg)
	if err != nil {
		return Episode{}, err
	}
	buf := make([]byte, frameHeader+int(ref.size))
	if _, err := r.ReadAt(buf, ref.off-frameHeader); err != nil {
		return Episode{}, fmt.Errorf("trajstore: read episode %d: %w", i, err)
	}
	payload := buf[frameHeader:]
	if got := faultfs.Checksum(payload); got != binary.LittleEndian.Uint64(buf[4:12]) {
		return Episode{}, fmt.Errorf("%w: episode %d checksum mismatch", ErrCorrupt, i)
	}
	return decodeEpisode(payload)
}

// SampleUniform draws min(n, Games) episodes uniformly without replacement.
func (s *Store) SampleUniform(rnd *rng.Rand, n int) ([]Episode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := len(s.index)
	if n > total {
		n = total
	}
	if n <= 0 {
		return nil, nil
	}
	// Partial Fisher-Yates over episode indices.
	idx := rnd.Perm(total)[:n]
	return s.readAllLocked(idx)
}

// SampleRecent draws n episodes (with replacement) weighted towards the
// newest: episode j (0 = oldest) has weight gamma^(Games-1-j) for
// gamma in (0,1]. gamma = 1 degenerates to uniform-with-replacement. The
// draw is O(1) per episode via inverse-transform on the truncated
// geometric, so sampling cost is independent of store size.
func (s *Store) SampleRecent(rnd *rng.Rand, n int, gamma float64) ([]Episode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := len(s.index)
	if total == 0 || n <= 0 {
		return nil, nil
	}
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("trajstore: gamma %v outside (0,1]", gamma)
	}
	idx := make([]int, n)
	for i := range idx {
		if gamma == 1 {
			idx[i] = rnd.Intn(total)
			continue
		}
		// age ~ truncated Geometric(1-gamma) over [0, total): P(age=a) ∝ gamma^a.
		u := rnd.Float64()
		mass := 1 - math.Pow(gamma, float64(total))
		age := int(math.Log(1-u*mass) / math.Log(gamma))
		if age >= total {
			age = total - 1
		}
		idx[i] = total - 1 - age
	}
	return s.readAllLocked(idx)
}

func (s *Store) readAllLocked(idx []int) ([]Episode, error) {
	out := make([]Episode, 0, len(idx))
	for _, i := range idx {
		ep, err := s.getLocked(i)
		if err != nil {
			return nil, err
		}
		out = append(out, ep)
	}
	return out, nil
}

// Close seals the active segment (best effort) and releases handles. A
// degraded store closes without writing.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if !s.readOnly && s.activeN > 0 {
		err = s.sealLocked()
	}
	if s.activeF != nil {
		s.activeF.Close()
		s.activeF = nil
	}
	for id, r := range s.readers {
		r.Close()
		delete(s.readers, id)
	}
	return err
}
