package trajstore

import (
	"os"
	"sync"
	"testing"

	"github.com/parmcts/parmcts/internal/rng"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if bench10k.dir != "" {
		os.RemoveAll(bench10k.dir)
	}
	os.Exit(code)
}

// benchEpisode is a small synthetic episode (4 samples of 8-input/4-policy)
// so the benchmarks measure store overhead, not float copying.
func benchEpisode(seq int) Episode {
	return testEpisode(seq % 64)
}

func BenchmarkTrajstoreAppend(b *testing.B) {
	for _, bc := range []struct {
		name   string
		noSync bool
	}{
		{"sync", false},
		{"nosync", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, err := Open(b.TempDir(), Config{SegmentGames: 256, NoSync: bc.noSync})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(benchEpisode(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "episodes/s")
		})
	}
}

// bench10k lazily builds one shared 10k-game store (NoSync: the sampling
// benchmarks measure read-path latency, not disk flushes) and reuses it
// across benchmark runs within the process. Built outside b.TempDir —
// that is torn down when the creating benchmark ends, and this store
// outlives it; TestMain removes the directory.
var bench10k struct {
	once sync.Once
	dir  string
	err  error
}

func bench10kDir(b *testing.B) string {
	bench10k.once.Do(func() {
		dir, err := os.MkdirTemp("", "trajstore-bench-")
		if err != nil {
			bench10k.err = err
			return
		}
		s, err := Open(dir, Config{SegmentGames: 256, NoSync: true})
		if err != nil {
			os.RemoveAll(dir)
			bench10k.err = err
			return
		}
		for i := 0; i < 10000; i++ {
			if err := s.Append(benchEpisode(i)); err != nil {
				bench10k.err = err
				return
			}
		}
		bench10k.err = s.Close()
		bench10k.dir = dir
	})
	if bench10k.err != nil {
		b.Fatal(bench10k.err)
	}
	return bench10k.dir
}

func BenchmarkTrajstoreSample(b *testing.B) {
	s, err := Open(bench10kDir(b), Config{SegmentGames: 256, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rnd := rng.New(1)
	b.Run("uniform-batch64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.SampleUniform(rnd, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recent-batch64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.SampleRecent(rnd, 64, 0.999); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTrajstoreReopen measures the cost this design pays for having
// no trusted index on disk: every Open re-scans and re-checksums all
// segment frames. At 10k small games this is the recovery-time budget.
func BenchmarkTrajstoreReopen(b *testing.B) {
	dir := bench10kDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Config{SegmentGames: 256, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if s.Games() != 10000 {
			b.Fatalf("reopened store has %d games", s.Games())
		}
		s.Close()
	}
}
