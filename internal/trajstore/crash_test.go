package trajstore

import (
	"errors"
	"testing"

	"github.com/parmcts/parmcts/internal/faultfs"
)

// crashWorkload runs the reference append workload against dir through
// fsys: open, 10 appends across 3-game segments (so seals, rotations and
// manifest commits all happen), an explicit Seal, then Close. Episode
// content continues from the store's recovered fill, so across any number
// of crash/recover cycles the store always holds testEpisode(0..n-1).
// It returns how many appends were acknowledged (Append returned nil).
// Any error just stops the workload the way a dying process would.
const crashWorkloadEpisodes = 10

func crashWorkload(dir string, fsys faultfs.FS) (acked int) {
	s, err := Open(dir, Config{SegmentGames: 3, FS: fsys})
	if err != nil {
		return 0
	}
	start := s.Games()
	for i := 0; i < crashWorkloadEpisodes; i++ {
		if err := s.Append(testEpisode(start + i)); err != nil {
			break
		}
		acked++
	}
	s.Seal()
	s.Close()
	return acked
}

// TestCrashMatrix is the acceptance property: the writer is killed at
// EVERY mutating filesystem operation the workload performs (the op that
// is hit fails — a write tears mid-buffer — and everything after it
// errors, exactly a SIGKILL's view), and after each crash a clean reopen
// must find:
//
//   - every acknowledged episode (append fsync'd before returning nil):
//     committed games are never lost;
//   - no torn frame: every recovered episode decodes and matches the
//     exact content appended (recovery truncated, never resurrected);
//   - recovered episodes form a prefix-with-no-reordering of the appended
//     sequence.
//
// Run under -race in CI (the store is sampled concurrently in production).
func TestCrashMatrix(t *testing.T) {
	// Fault-free calibration run to size the matrix.
	calib := faultfs.NewInjected(faultfs.OS)
	ackedClean := crashWorkload(t.TempDir(), calib)
	if ackedClean != crashWorkloadEpisodes {
		t.Fatalf("calibration run acked %d/%d", ackedClean, crashWorkloadEpisodes)
	}
	totalOps := calib.Ops()
	if totalOps < 20 {
		t.Fatalf("workload only performed %d mutating ops; matrix too small to mean anything", totalOps)
	}

	for i := 1; i <= totalOps; i++ {
		dir := t.TempDir()
		inj := faultfs.NewInjected(faultfs.OS).CrashAt(i)
		acked := crashWorkload(dir, inj)

		re, err := Open(dir, Config{SegmentGames: 3})
		if err != nil {
			t.Fatalf("crash at op %d: reopen failed: %v", i, err)
		}
		got := re.Games()
		if got < acked {
			t.Fatalf("crash at op %d: %d acknowledged games, only %d recovered — committed data lost", i, acked, got)
		}
		if got > crashWorkloadEpisodes {
			t.Fatalf("crash at op %d: recovered %d games, more than ever appended", i, got)
		}
		for j := 0; j < got; j++ {
			ep, err := re.Get(j)
			if err != nil {
				t.Fatalf("crash at op %d: episode %d unreadable after recovery: %v", i, j, err)
			}
			if !sameEpisode(ep, testEpisode(j)) {
				t.Fatalf("crash at op %d: episode %d content mangled after recovery", i, j)
			}
		}
		// The recovered store must be fully writable again: recovery ends
		// in a serviceable state, not a one-shot read-only salvage.
		if err := re.Append(testEpisode(got)); err != nil {
			t.Fatalf("crash at op %d: append after recovery: %v", i, err)
		}
		re.Close()
	}
}

// TestCrashMatrixSecondCrash drives a double-fault: crash once, recover,
// crash again at every op of the RECOVERY-plus-append run, then verify a
// final clean recovery. Crash consistency has to be idempotent — a repair
// pass interrupted halfway is the nastiest real-world restart.
func TestCrashMatrixSecondCrash(t *testing.T) {
	// First crash somewhere mid-workload (op 25 lands inside appends after
	// at least one seal for the 3-game segments; verified below).
	mk := func() (string, int) {
		dir := t.TempDir()
		inj := faultfs.NewInjected(faultfs.OS).CrashAt(25)
		acked := crashWorkload(dir, inj)
		if !inj.Crashed() {
			t.Fatal("first crash point never reached; workload shrank, re-pick the op index")
		}
		return dir, acked
	}

	dir0, _ := mk()
	calib := faultfs.NewInjected(faultfs.OS)
	crashWorkload(dir0, calib) // recovery + remaining appends, fault-free
	totalOps := calib.Ops()

	for i := 1; i <= totalOps; i++ {
		dir, acked1 := mk()
		inj := faultfs.NewInjected(faultfs.OS).CrashAt(i)
		acked2 := crashWorkload(dir, inj) // recover-and-continue run, crashed again

		re, err := Open(dir, Config{SegmentGames: 3})
		if err != nil {
			t.Fatalf("second crash at op %d: final reopen failed: %v", i, err)
		}
		if re.Games() < acked1 {
			t.Fatalf("second crash at op %d: lost games committed before the FIRST crash (%d < %d)", i, re.Games(), acked1)
		}
		_ = acked2 // the second run's acks are a subset of what we verify below
		for j := 0; j < re.Games(); j++ {
			if ep, err := re.Get(j); err != nil || !sameEpisode(ep, testEpisode(j)) {
				t.Fatalf("second crash at op %d: episode %d bad after double-fault recovery (%v)", i, j, err)
			}
		}
		re.Close()
	}
}

// TestDegradedStoreNeverPoisonsAcks pins the graceful-degradation side of
// the crash story: once ANY storage error occurs, no later Append may
// claim success (an ack after a failed seal would be a durability lie).
func TestDegradedStoreNeverPoisonsAcks(t *testing.T) {
	for _, fault := range []faultfs.Fault{
		{Op: faultfs.OpWrite, At: 3, Mode: faultfs.Tear},
		{Op: faultfs.OpSync, At: 2, Mode: faultfs.Fail},
		{Op: faultfs.OpRename, At: 1, Mode: faultfs.Fail},
		{Op: faultfs.OpCreate, At: 2, Mode: faultfs.Fail},
	} {
		dir := t.TempDir()
		inj := faultfs.NewInjected(faultfs.OS).Script(fault)
		s, err := Open(dir, Config{SegmentGames: 2, FS: inj})
		if err != nil {
			continue // fault hit during open; nothing acked, nothing to check
		}
		sawError := false
		for i := 0; i < 8; i++ {
			err := s.Append(testEpisode(i))
			if err != nil {
				sawError = true
				if !errors.Is(err, ErrReadOnly) && !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("fault %+v: unexpected error class %v", fault, err)
				}
				continue
			}
			if sawError {
				t.Fatalf("fault %+v: Append acked AFTER a storage error — degradation must be sticky", fault)
			}
		}
		if !sawError {
			t.Fatalf("fault %+v never fired in the workload", fault)
		}
		if !s.ReadOnly() {
			t.Fatalf("fault %+v: store not read-only after error", fault)
		}
		s.Close()
	}
}
