package trajstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/parmcts/parmcts/internal/faultfs"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/nn"
)

// Episode is one finished self-play game: the unit of append, sampling and
// retention. Samples are the unaugmented (state, visit-distribution,
// outcome) triples — augmentation is a training-time concern, so the store
// keeps the canonical data and a restored run re-augments.
type Episode struct {
	Moves   int
	Winner  game.Player
	Samples []nn.Sample
}

// Frame layout inside a segment:
//
//	[4B LE payload length][8B LE FNV-64a(payload)][payload]
//
// The checksum covers exactly the payload bytes, so a torn or bit-flipped
// frame is detected before a single float reaches training. Segments open
// with an 8-byte magic so a scanner can reject foreign files outright.
const (
	segMagic    = "TRJSEG01"
	frameHeader = 4 + 8
	// maxFramePayload bounds one episode's encoding (64 MiB). A length
	// prefix beyond it is treated as corruption, not an allocation request —
	// the scanner must never trust four arbitrary bytes with memory.
	maxFramePayload = 64 << 20

	codecVersion = 1
)

// ErrCorrupt reports a frame or payload that failed structural validation
// or its checksum.
var ErrCorrupt = errors.New("trajstore: corrupt frame")

// appendUvarint/appendF32/appendF64 build the payload without reflection —
// the append path runs once per finished game but on multi-KB buffers.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendF32s(b []byte, vs []float32) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
	}
	return b
}

// encodeEpisode renders ep as one frame payload.
func encodeEpisode(ep Episode) []byte {
	inputLen, policyLen := 0, 0
	if len(ep.Samples) > 0 {
		inputLen = len(ep.Samples[0].Input)
		policyLen = len(ep.Samples[0].Policy)
	}
	size := 5 * binary.MaxVarintLen64
	size += len(ep.Samples) * ((inputLen+policyLen)*4 + 8)
	b := make([]byte, 0, size)
	b = appendUvarint(b, codecVersion)
	b = appendUvarint(b, uint64(ep.Moves))
	b = appendUvarint(b, uint64(int64(ep.Winner)+2)) // Player is small and may be negative
	b = appendUvarint(b, uint64(inputLen))
	b = appendUvarint(b, uint64(policyLen))
	b = appendUvarint(b, uint64(len(ep.Samples)))
	for _, s := range ep.Samples {
		b = appendF32s(b, s.Input)
		b = appendF32s(b, s.Policy)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Value))
	}
	return b
}

// decodeEpisode parses one frame payload. It validates every count before
// allocating, so arbitrary bytes fail with ErrCorrupt instead of panicking
// or ballooning memory — the FuzzSegmentRead contract.
func decodeEpisode(b []byte) (Episode, error) {
	var ep Episode
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, false
		}
		b = b[n:]
		return v, true
	}
	ver, ok := u()
	if !ok || ver != codecVersion {
		return ep, fmt.Errorf("%w: bad codec version", ErrCorrupt)
	}
	moves, ok1 := u()
	winner, ok2 := u()
	inputLen, ok3 := u()
	policyLen, ok4 := u()
	count, ok5 := u()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return ep, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if moves > 1<<20 || winner > 4 || inputLen > 1<<20 || policyLen > 1<<20 || count > 1<<20 {
		return ep, fmt.Errorf("%w: implausible header", ErrCorrupt)
	}
	perSample := (inputLen+policyLen)*4 + 8
	if uint64(len(b)) != count*perSample {
		return ep, fmt.Errorf("%w: payload size mismatch", ErrCorrupt)
	}
	ep.Moves = int(moves)
	ep.Winner = game.Player(int64(winner) - 2)
	ep.Samples = make([]nn.Sample, count)
	for i := range ep.Samples {
		in := make([]float32, inputLen)
		for j := range in {
			in[j] = math.Float32frombits(binary.LittleEndian.Uint32(b))
			b = b[4:]
		}
		pol := make([]float32, policyLen)
		for j := range pol {
			pol[j] = math.Float32frombits(binary.LittleEndian.Uint32(b))
			b = b[4:]
		}
		ep.Samples[i] = nn.Sample{
			Input:  in,
			Policy: pol,
			Value:  math.Float64frombits(binary.LittleEndian.Uint64(b)),
		}
		b = b[8:]
	}
	return ep, nil
}

// encodeFrame wraps a payload with its length prefix and checksum.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, 0, frameHeader+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint64(out, faultfs.Checksum(payload))
	return append(out, payload...)
}

// EncodeFrame renders one episode as a checksummed frame — byte-identical
// to a segment frame ([4B LE length][8B LE FNV-64a(payload)][payload]), so
// the distributed transport ships exactly the bytes the durable store
// commits and a receiver can validate them with DecodeFrame before a
// single float reaches training.
func EncodeFrame(ep Episode) []byte { return encodeFrame(encodeEpisode(ep)) }

// DecodeFrame parses and fully re-validates one frame produced by
// EncodeFrame: length bounds, payload checksum and structural decoding are
// all checked, returning ErrCorrupt on any mismatch. This is the learner's
// admission check for trajectories received over a wire — a frame that
// decodes here is the same frame the worker encoded.
func DecodeFrame(b []byte) (Episode, error) {
	if len(b) < frameHeader {
		return Episode{}, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
	}
	plen := int64(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint64(b[4:])
	if plen > maxFramePayload || int64(len(b)) != frameHeader+plen {
		return Episode{}, fmt.Errorf("%w: frame length mismatch", ErrCorrupt)
	}
	payload := b[frameHeader:]
	if faultfs.Checksum(payload) != sum {
		return Episode{}, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return decodeEpisode(payload)
}

// frameRef locates one committed episode inside a segment.
type frameRef struct {
	seg     int64 // segment id
	off     int64 // payload offset within the segment file
	size    int32 // payload length
	samples int32 // sample count (decoded once at scan, reused by restore sizing)
}

// scanResult is one segment's validated content.
type scanResult struct {
	frames []frameRef
	// valid is the byte length of the longest prefix made of whole, valid
	// frames (magic included). Everything past it is torn and must be
	// truncated, never served.
	valid int64
}

// scanSegment walks a segment image frame by frame, verifying every
// checksum, and returns the valid prefix. It never fails hard: corruption
// at any point simply ends the valid prefix, which is exactly the recovery
// semantic (truncate to the last valid frame). A missing or wrong magic
// yields an empty result.
func scanSegment(r io.ReaderAt, size int64, seg int64) scanResult {
	res := scanResult{}
	magic := make([]byte, len(segMagic))
	if size < int64(len(segMagic)) {
		return res
	}
	if _, err := r.ReadAt(magic, 0); err != nil || string(magic) != segMagic {
		return res
	}
	off := int64(len(segMagic))
	res.valid = off
	hdr := make([]byte, frameHeader)
	for off+frameHeader <= size {
		if _, err := r.ReadAt(hdr, off); err != nil {
			return res
		}
		plen := int64(binary.LittleEndian.Uint32(hdr))
		sum := binary.LittleEndian.Uint64(hdr[4:])
		if plen > maxFramePayload || off+frameHeader+plen > size {
			return res
		}
		payload := make([]byte, plen)
		if _, err := r.ReadAt(payload, off+frameHeader); err != nil {
			return res
		}
		if faultfs.Checksum(payload) != sum {
			return res
		}
		ep, err := decodeEpisode(payload)
		if err != nil {
			return res
		}
		res.frames = append(res.frames, frameRef{
			seg:     seg,
			off:     off + frameHeader,
			size:    int32(plen),
			samples: int32(len(ep.Samples)),
		})
		off += frameHeader + plen
		res.valid = off
	}
	return res
}
