package adaptive

import (
	"strings"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/connect4"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/perfmodel"
)

func searchCfg(playouts int) mcts.Config {
	cfg := mcts.DefaultConfig()
	cfg.Playouts = playouts
	return cfg
}

func TestConfigureValidation(t *testing.T) {
	g := tictactoe.New()
	if _, err := Configure(g, Options{Workers: 0, Evaluator: &evaluate.Random{}}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Configure(g, Options{Workers: 2, Platform: PlatformCPU}); err == nil {
		t.Error("missing evaluator accepted")
	}
	if _, err := Configure(g, Options{Workers: 2, Platform: PlatformAccel}); err == nil {
		t.Error("missing device accepted")
	}
}

func TestConfigureCPUSlowDNNPicksLocal(t *testing.T) {
	// A slow DNN with trivial in-tree costs is the local scheme's home
	// turf: evaluations dominate and want the full thread pool.
	g := connect4.New()
	eng, err := Configure(g, Options{
		Search:          searchCfg(64),
		Workers:         4,
		Platform:        PlatformCPU,
		Evaluator:       &evaluate.Random{Latency: 500 * time.Microsecond},
		ProfilePlayouts: 200,
		DNNProfileIters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Decision.Choice.Scheme != perfmodel.SchemeLocal {
		t.Fatalf("scheme = %v, want local; decision: %s",
			eng.Decision.Choice.Scheme, eng.Decision)
	}
	st := g.NewInitial()
	dist := make([]float32, st.NumActions())
	stats := eng.Search(st, dist)
	if stats.Playouts != 64 {
		t.Fatalf("playouts = %d", stats.Playouts)
	}
}

func TestConfigureCPUFastDNNManyWorkersPicksShared(t *testing.T) {
	// A free DNN with a huge worker count makes the master thread's serial
	// in-tree operations the bottleneck: Equation 5 explodes while
	// Equation 3 stays near T_DNN, so shared must win.
	g := connect4.New()
	eng, err := Configure(g, Options{
		Search:          searchCfg(64),
		Workers:         4096,
		Platform:        PlatformCPU,
		Evaluator:       &evaluate.Random{}, // ~free evaluation
		ProfilePlayouts: 200,
		DNNProfileIters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Decision.Choice.Scheme != perfmodel.SchemeShared {
		t.Fatalf("scheme = %v, want shared; decision: %s",
			eng.Decision.Choice.Scheme, eng.Decision)
	}
}

func TestConfigureAccelBuildsRunnableEngine(t *testing.T) {
	g := tictactoe.New()
	cost := accel.DefaultCostModel()
	cost.LaunchLatency = 0
	cost.ComputeBase = 0
	cost.ComputePerSample = 0
	dev := accel.NewModel(cost)
	eng, err := Configure(g, Options{
		Search:          searchCfg(100),
		Workers:         4,
		Platform:        PlatformAccel,
		Device:          dev,
		DeviceCost:      cost,
		ProfilePlayouts: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := g.NewInitial()
	dist := make([]float32, st.NumActions())
	stats := eng.Search(st, dist)
	if stats.Playouts != 100 {
		t.Fatalf("playouts = %d", stats.Playouts)
	}
	var sum float32
	for _, p := range dist {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("dist sums to %v", sum)
	}
}

func TestConfigureAccelUsesTestRuns(t *testing.T) {
	g := tictactoe.New()
	cost := accel.DefaultCostModel()
	dev := accel.NewModel(cost)
	probed := map[int]bool{}
	eng, err := Configure(g, Options{
		Search:   searchCfg(50),
		Workers:  32,
		Platform: PlatformAccel,
		Device:   dev, DeviceCost: cost,
		ProfilePlayouts: 100,
		TestRun: func(b int) time.Duration {
			probed[b] = true
			d := b - 10
			if d < 0 {
				d = -d
			}
			return time.Duration(d+1) * time.Microsecond // deep V, min at 10
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.Decision.Choice.BatchSize; got != 10 {
		t.Fatalf("batch size = %d, want 10", got)
	}
	if len(probed) > 14 {
		t.Fatalf("probed %d batch sizes, want O(log N)", len(probed))
	}
	if eng.Decision.Choice.Scheme != perfmodel.SchemeLocal {
		t.Fatalf("scheme = %v", eng.Decision.Choice.Scheme)
	}
}

func TestForceScheme(t *testing.T) {
	g := tictactoe.New()
	for _, scheme := range []perfmodel.Scheme{perfmodel.SchemeShared, perfmodel.SchemeLocal} {
		s := scheme
		eng, err := Configure(g, Options{
			Search:          searchCfg(60),
			Workers:         2,
			Platform:        PlatformCPU,
			Evaluator:       &evaluate.Random{},
			ProfilePlayouts: 50,
			DNNProfileIters: 3,
			ForceScheme:     &s,
		})
		if err != nil {
			t.Fatal(err)
		}
		if eng.Decision.Choice.Scheme != s {
			t.Fatalf("forced %v but got %v", s, eng.Decision.Choice.Scheme)
		}
		if want := map[perfmodel.Scheme]string{
			perfmodel.SchemeShared: "shared", perfmodel.SchemeLocal: "local",
		}[s]; eng.Name() != want {
			t.Fatalf("engine %q for scheme %v", eng.Name(), s)
		}
		st := g.NewInitial()
		dist := make([]float32, st.NumActions())
		eng.Search(st, dist)
		eng.Close()
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{
		Choice: perfmodel.Choice{
			N: 32, Scheme: perfmodel.SchemeLocal, BatchSize: 8, Probes: 9,
			PredictedShared: 320 * time.Microsecond,
			PredictedLocal:  160 * time.Microsecond,
		},
		Platform: PlatformAccel,
	}
	s := d.String()
	for _, want := range []string{"N=32", "local", "B=8", "9 probes"} {
		if !strings.Contains(s, want) {
			t.Errorf("decision string missing %q: %s", want, s)
		}
	}
}

func TestPlatformString(t *testing.T) {
	if PlatformCPU.String() != "cpu" || PlatformAccel.String() != "cpu-accel" {
		t.Fatal("platform names wrong")
	}
}

func TestConfigureFleetAccelSharesOneServer(t *testing.T) {
	g := tictactoe.New()
	cost := accel.DefaultCostModel()
	cost.ComputePerSample = 0
	dev := accel.NewModel(cost)
	s := perfmodel.SchemeLocal
	fleet, err := ConfigureFleet(g, 4, Options{
		Search:          searchCfg(40),
		Workers:         4,
		Platform:        PlatformAccel,
		Device:          dev,
		DeviceCost:      cost,
		ProfilePlayouts: 50,
		ForceScheme:     &s,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if len(fleet.Engines) != 4 {
		t.Fatalf("fleet has %d engines, want 4", len(fleet.Engines))
	}
	if fleet.Server == nil {
		t.Fatal("accel fleet must expose its shared server")
	}
	if fleet.Decision.Tenants != 4 {
		t.Fatalf("decision tenants = %d", fleet.Decision.Tenants)
	}
	// Run all four searches concurrently through the one service.
	st := g.NewInitial()
	done := make(chan mcts.Stats, 4)
	for _, e := range fleet.Engines {
		go func(e mcts.Engine) {
			dist := make([]float32, st.NumActions())
			done <- e.Search(st, dist)
		}(e)
	}
	var agg mcts.Stats
	for i := 0; i < 4; i++ {
		agg.Add(<-done)
	}
	if agg.Playouts != 4*40 {
		t.Fatalf("aggregate playouts %d, want 160", agg.Playouts)
	}
	if srvStats := fleet.Server.Stats(); srvStats.Requests == 0 {
		t.Fatal("no request reached the shared server")
	}
}

func TestConfigureFleetForcedSharedWidensThreshold(t *testing.T) {
	// A forced shared scheme on the accelerator must still aggregate: the
	// service threshold is G*N (all tenants' workers), not one tenant's N —
	// otherwise the fleet reverts to exactly the under-filled batches the
	// service exists to eliminate.
	g := tictactoe.New()
	cost := accel.DefaultCostModel()
	dev := accel.NewModel(cost)
	s := perfmodel.SchemeShared
	fleet, err := ConfigureFleet(g, 4, Options{
		Search:          searchCfg(20),
		Workers:         3,
		Platform:        PlatformAccel,
		Device:          dev,
		DeviceCost:      cost,
		ProfilePlayouts: 50,
		ForceScheme:     &s,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if got := fleet.Decision.Choice.BatchSize; got != 4*3 {
		t.Fatalf("forced-shared fleet threshold = %d, want G*N = 12", got)
	}
	if fleet.Server == nil || fleet.Server.Batch() != 12 {
		t.Fatal("shared server not built at aggregate fill")
	}
}

func TestConfigureFleetCPUSharedEvaluator(t *testing.T) {
	g := tictactoe.New()
	fleet, err := ConfigureFleet(g, 3, Options{
		Search:          searchCfg(30),
		Workers:         2,
		Platform:        PlatformCPU,
		Evaluator:       &evaluate.Random{},
		ProfilePlayouts: 50,
		DNNProfileIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if len(fleet.Engines) != 3 {
		t.Fatalf("fleet has %d engines", len(fleet.Engines))
	}
	st := g.NewInitial()
	for _, e := range fleet.Engines {
		dist := make([]float32, st.NumActions())
		if stats := e.Search(st, dist); stats.Playouts != 30 {
			t.Fatalf("playouts = %d", stats.Playouts)
		}
	}
}

func TestConfigureFleetValidation(t *testing.T) {
	g := tictactoe.New()
	if _, err := ConfigureFleet(g, 0, Options{Workers: 2, Evaluator: &evaluate.Random{}}); err == nil {
		t.Error("zero tenants accepted")
	}
	if _, err := ConfigureFleet(g, 2, Options{Workers: 0, Evaluator: &evaluate.Random{}}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := ConfigureFleet(g, 2, Options{Workers: 2, Platform: PlatformAccel}); err == nil {
		t.Error("missing device accepted")
	}
}

func TestFleetTenantsGetDistinctSeeds(t *testing.T) {
	g := tictactoe.New()
	s := perfmodel.SchemeShared
	cfg := searchCfg(60)
	// With Dirichlet noise on, identical seeds would give tenants identical
	// root distributions; the fleet must decorrelate them.
	cfg.DirichletAlpha = 0.5
	cfg.NoiseFrac = 0.4
	cfg.Seed = 9
	fleet, err := ConfigureFleet(g, 2, Options{
		Search:          cfg,
		Workers:         1,
		Platform:        PlatformCPU,
		Evaluator:       &evaluate.Random{},
		ProfilePlayouts: 50,
		DNNProfileIters: 3,
		ForceScheme:     &s,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if fleet.Decision.Tenants != 2 {
		t.Fatalf("tenants = %d", fleet.Decision.Tenants)
	}
	st := g.NewInitial()
	d0 := make([]float32, st.NumActions())
	d1 := make([]float32, st.NumActions())
	fleet.Engines[0].Search(st, d0)
	fleet.Engines[1].Search(st, d1)
	same := true
	for i := range d0 {
		if d0[i] != d1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("tenants share a noise seed: identical root distributions")
	}
}
