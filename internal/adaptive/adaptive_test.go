package adaptive

import (
	"strings"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/connect4"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/perfmodel"
)

func searchCfg(playouts int) mcts.Config {
	cfg := mcts.DefaultConfig()
	cfg.Playouts = playouts
	return cfg
}

func TestConfigureValidation(t *testing.T) {
	g := tictactoe.New()
	if _, err := Configure(g, Options{Workers: 0, Evaluator: &evaluate.Random{}}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Configure(g, Options{Workers: 2, Platform: PlatformCPU}); err == nil {
		t.Error("missing evaluator accepted")
	}
	if _, err := Configure(g, Options{Workers: 2, Platform: PlatformAccel}); err == nil {
		t.Error("missing device accepted")
	}
}

func TestConfigureCPUSlowDNNPicksLocal(t *testing.T) {
	// A slow DNN with trivial in-tree costs is the local scheme's home
	// turf: evaluations dominate and want the full thread pool.
	g := connect4.New()
	eng, err := Configure(g, Options{
		Search:          searchCfg(64),
		Workers:         4,
		Platform:        PlatformCPU,
		Evaluator:       &evaluate.Random{Latency: 500 * time.Microsecond},
		ProfilePlayouts: 200,
		DNNProfileIters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Decision.Choice.Scheme != perfmodel.SchemeLocal {
		t.Fatalf("scheme = %v, want local; decision: %s",
			eng.Decision.Choice.Scheme, eng.Decision)
	}
	st := g.NewInitial()
	dist := make([]float32, st.NumActions())
	stats := eng.Search(st, dist)
	if stats.Playouts != 64 {
		t.Fatalf("playouts = %d", stats.Playouts)
	}
}

func TestConfigureCPUFastDNNManyWorkersPicksShared(t *testing.T) {
	// A free DNN with a huge worker count makes the master thread's serial
	// in-tree operations the bottleneck: Equation 5 explodes while
	// Equation 3 stays near T_DNN, so shared must win.
	g := connect4.New()
	eng, err := Configure(g, Options{
		Search:          searchCfg(64),
		Workers:         4096,
		Platform:        PlatformCPU,
		Evaluator:       &evaluate.Random{}, // ~free evaluation
		ProfilePlayouts: 200,
		DNNProfileIters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Decision.Choice.Scheme != perfmodel.SchemeShared {
		t.Fatalf("scheme = %v, want shared; decision: %s",
			eng.Decision.Choice.Scheme, eng.Decision)
	}
}

func TestConfigureAccelBuildsRunnableEngine(t *testing.T) {
	g := tictactoe.New()
	cost := accel.DefaultCostModel()
	cost.LaunchLatency = 0
	cost.ComputeBase = 0
	cost.ComputePerSample = 0
	dev := accel.NewModel(cost)
	eng, err := Configure(g, Options{
		Search:          searchCfg(100),
		Workers:         4,
		Platform:        PlatformAccel,
		Device:          dev,
		DeviceCost:      cost,
		ProfilePlayouts: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := g.NewInitial()
	dist := make([]float32, st.NumActions())
	stats := eng.Search(st, dist)
	if stats.Playouts != 100 {
		t.Fatalf("playouts = %d", stats.Playouts)
	}
	var sum float32
	for _, p := range dist {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("dist sums to %v", sum)
	}
}

func TestConfigureAccelUsesTestRuns(t *testing.T) {
	g := tictactoe.New()
	cost := accel.DefaultCostModel()
	dev := accel.NewModel(cost)
	probed := map[int]bool{}
	eng, err := Configure(g, Options{
		Search:   searchCfg(50),
		Workers:  32,
		Platform: PlatformAccel,
		Device:   dev, DeviceCost: cost,
		ProfilePlayouts: 100,
		TestRun: func(b int) time.Duration {
			probed[b] = true
			d := b - 10
			if d < 0 {
				d = -d
			}
			return time.Duration(d+1) * time.Microsecond // deep V, min at 10
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.Decision.Choice.BatchSize; got != 10 {
		t.Fatalf("batch size = %d, want 10", got)
	}
	if len(probed) > 14 {
		t.Fatalf("probed %d batch sizes, want O(log N)", len(probed))
	}
	if eng.Decision.Choice.Scheme != perfmodel.SchemeLocal {
		t.Fatalf("scheme = %v", eng.Decision.Choice.Scheme)
	}
}

func TestForceScheme(t *testing.T) {
	g := tictactoe.New()
	for _, scheme := range []perfmodel.Scheme{perfmodel.SchemeShared, perfmodel.SchemeLocal} {
		s := scheme
		eng, err := Configure(g, Options{
			Search:          searchCfg(60),
			Workers:         2,
			Platform:        PlatformCPU,
			Evaluator:       &evaluate.Random{},
			ProfilePlayouts: 50,
			DNNProfileIters: 3,
			ForceScheme:     &s,
		})
		if err != nil {
			t.Fatal(err)
		}
		if eng.Decision.Choice.Scheme != s {
			t.Fatalf("forced %v but got %v", s, eng.Decision.Choice.Scheme)
		}
		if want := map[perfmodel.Scheme]string{
			perfmodel.SchemeShared: "shared", perfmodel.SchemeLocal: "local",
		}[s]; eng.Name() != want {
			t.Fatalf("engine %q for scheme %v", eng.Name(), s)
		}
		st := g.NewInitial()
		dist := make([]float32, st.NumActions())
		eng.Search(st, dist)
		eng.Close()
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{
		Choice: perfmodel.Choice{
			N: 32, Scheme: perfmodel.SchemeLocal, BatchSize: 8, Probes: 9,
			PredictedShared: 320 * time.Microsecond,
			PredictedLocal:  160 * time.Microsecond,
		},
		Platform: PlatformAccel,
	}
	s := d.String()
	for _, want := range []string{"N=32", "local", "B=8", "9 probes"} {
		if !strings.Contains(s, want) {
			t.Errorf("decision string missing %q: %s", want, s)
		}
	}
}

func TestPlatformString(t *testing.T) {
	if PlatformCPU.String() != "cpu" || PlatformAccel.String() != "cpu-accel" {
		t.Fatal("platform names wrong")
	}
}
