// Package adaptive is the paper's primary contribution assembled into one
// public entry point: given a game, a network (or an accelerator device),
// and a worker budget, it runs the design configuration workflow of Section
// 4.2 — profile, model, and (on accelerator platforms) the Algorithm 4
// batch-size search — and instantiates the predicted-fastest tree-parallel
// engine behind the common mcts.Engine interface.
//
// This is the programmatic equivalent of the paper's "compile-time"
// selection: configuration happens once per (algorithm, hardware, N)
// triple, and the chosen scheme then runs unchanged for the whole training
// job.
package adaptive

import (
	"fmt"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/perfmodel"
)

// Platform selects where DNN inference runs.
type Platform int

// Supported platforms.
const (
	// PlatformCPU runs inference on CPU threads (Equations 3 and 5).
	PlatformCPU Platform = iota
	// PlatformAccel offloads batched inference to an accelerator device
	// (Equations 4 and 6).
	PlatformAccel
)

// String names the platform.
func (p Platform) String() string {
	if p == PlatformCPU {
		return "cpu"
	}
	return "cpu-accel"
}

// Options configures the adaptive framework.
type Options struct {
	// Search holds the MCTS hyper-parameters (playouts, PUCT, noise).
	Search mcts.Config
	// Workers is N, the parallel worker budget.
	Workers int
	// Platform selects CPU or accelerator inference.
	Platform Platform
	// Evaluator performs CPU inference (required for PlatformCPU).
	Evaluator evaluate.Evaluator
	// Device is the accelerator (required for PlatformAccel).
	Device accel.Device
	// DeviceCost is the accelerator's latency model, used by Equations 4/6.
	DeviceCost accel.CostModel
	// SharedAccess overrides the modeled DDR access latency (0 = default).
	SharedAccess time.Duration
	// ProfilePlayouts sizes the design-time profiling episode (0 = 400).
	ProfilePlayouts int
	// DNNProfileIters sizes the T_DNN measurement (0 = 30).
	DNNProfileIters int
	// TestRun, when non-nil, replaces Equation 6 with real measured test
	// runs during the batch-size search, exactly as Algorithm 4 line 5
	// prescribes. It receives a candidate B and must return the amortized
	// round latency of a single-move search using that sub-batch size.
	TestRun func(b int) time.Duration
	// ForceScheme, when non-nil, skips the model decision (used by the
	// baseline configurations in the evaluation harness).
	ForceScheme *perfmodel.Scheme
}

// Decision records what the configuration workflow chose and why.
type Decision struct {
	Choice perfmodel.Choice
	Params perfmodel.Params
	// InTree is the synthetic-tree profile behind Params.
	InTree perfmodel.InTreeProfile
	// Platform echoes the configured platform.
	Platform Platform
}

// String renders the decision for logs and reports.
func (d Decision) String() string {
	s := fmt.Sprintf("N=%d platform=%s scheme=%s", d.Choice.N, d.Platform, d.Choice.Scheme)
	if d.Platform == PlatformAccel && d.Choice.Scheme == perfmodel.SchemeLocal {
		s += fmt.Sprintf(" B=%d (%d probes)", d.Choice.BatchSize, d.Choice.Probes)
	}
	s += fmt.Sprintf(" [pred shared=%v local=%v per-iter]",
		d.Choice.PerIterationShared(), d.Choice.PerIterationLocal())
	return s
}

// Engine wraps the chosen mcts.Engine together with the resources it owns.
type Engine struct {
	mcts.Engine
	Decision Decision
	closers  []func()
}

// Close releases the engine's evaluator pools.
func (e *Engine) Close() {
	e.Engine.Close()
	for _, f := range e.closers {
		f()
	}
}

// Configure runs the design configuration workflow for g under opts and
// returns the predicted-fastest engine, ready for Search calls.
func Configure(g game.Game, opts Options) (*Engine, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("adaptive: Workers must be >= 1, got %d", opts.Workers)
	}
	if opts.Platform == PlatformCPU && opts.Evaluator == nil {
		return nil, fmt.Errorf("adaptive: PlatformCPU requires an Evaluator")
	}
	if opts.Platform == PlatformAccel && opts.Device == nil {
		return nil, fmt.Errorf("adaptive: PlatformAccel requires a Device")
	}

	dec, err := decide(g, opts)
	if err != nil {
		return nil, err
	}
	eng, err := build(g, opts, dec)
	if err != nil {
		return nil, err
	}
	return eng, nil
}

// decide profiles and applies the performance models.
func decide(g game.Game, opts Options) (Decision, error) {
	profPlayouts := opts.ProfilePlayouts
	if profPlayouts <= 0 {
		profPlayouts = 400
	}
	dnnIters := opts.DNNProfileIters
	if dnnIters <= 0 {
		dnnIters = 30
	}
	sharedAccess := opts.SharedAccess
	if sharedAccess <= 0 {
		sharedAccess = perfmodel.DefaultSharedAccess
	}

	inTree := perfmodel.ProfileInTree(perfmodel.SyntheticSpec{
		Fanout:     g.NumActions(),
		DepthLimit: g.MaxGameLength(),
		Playouts:   profPlayouts,
		Seed:       1,
	})
	params := perfmodel.Params{
		TSelect:       inTree.TSelect,
		TBackup:       inTree.TBackup,
		TSharedAccess: sharedAccess,
	}
	c, h, w := g.EncodedShape()
	switch opts.Platform {
	case PlatformCPU:
		params.TDNNCPU = perfmodel.ProfileDNN(opts.Evaluator, c*h*w, g.NumActions(), dnnIters)
	case PlatformAccel:
		cost := opts.DeviceCost
		params.GPU = &cost
	}

	var choice perfmodel.Choice
	if opts.ForceScheme != nil {
		choice = forcedChoice(params, opts)
	} else if opts.Platform == PlatformCPU {
		choice = perfmodel.ConfigureCPU(params, opts.Workers)
	} else {
		choice = perfmodel.ConfigureGPU(params, opts.Workers, opts.TestRun)
	}
	return Decision{Choice: choice, Params: params, InTree: inTree, Platform: opts.Platform}, nil
}

func forcedChoice(params perfmodel.Params, opts Options) perfmodel.Choice {
	choice := perfmodel.Choice{N: opts.Workers, Scheme: *opts.ForceScheme, BatchSize: opts.Workers}
	if opts.Platform == PlatformAccel && choice.Scheme == perfmodel.SchemeLocal {
		// Even a forced local scheme still needs its batch size tuned.
		probe := opts.TestRun
		if probe == nil {
			n := opts.Workers
			probe = func(b int) time.Duration { return perfmodel.LocalGPU(params, n, b) }
		}
		b, probes := perfmodel.FindMinV(1, opts.Workers, probe)
		choice.BatchSize = b
		choice.Probes = probes
	}
	return choice
}

// build instantiates the engine the decision calls for.
func build(g game.Game, opts Options, dec Decision) (*Engine, error) {
	eng := &Engine{Decision: dec}
	n := opts.Workers
	switch {
	case dec.Choice.Scheme == perfmodel.SchemeShared && opts.Platform == PlatformCPU:
		eng.Engine = mcts.NewShared(opts.Search, n, opts.Evaluator)

	case dec.Choice.Scheme == perfmodel.SchemeShared && opts.Platform == PlatformAccel:
		// Shared + accelerator: full batches of size N (Section 3.3).
		sync := evaluate.NewBatchedSync(opts.Device, n)
		eng.Engine = mcts.NewShared(opts.Search, n, sync)

	case dec.Choice.Scheme == perfmodel.SchemeLocal && opts.Platform == PlatformCPU:
		pool := evaluate.NewPool(opts.Evaluator, n)
		eng.Engine = mcts.NewLocal(opts.Search, pool, n)
		eng.closers = append(eng.closers, pool.Close)

	case dec.Choice.Scheme == perfmodel.SchemeLocal && opts.Platform == PlatformAccel:
		async := evaluate.NewBatchedAsync(opts.Device, dec.Choice.BatchSize, n)
		eng.Engine = mcts.NewLocal(opts.Search, async, n)
		eng.closers = append(eng.closers, async.Close)

	default:
		return nil, fmt.Errorf("adaptive: unsupported scheme/platform combination")
	}
	_ = g
	return eng, nil
}
