// Package adaptive is the paper's primary contribution assembled into one
// public entry point: given a game, a network (or an accelerator device),
// and a worker budget, it runs the design configuration workflow of Section
// 4.2 — profile, model, and (on accelerator platforms) the Algorithm 4
// batch-size search — and instantiates the predicted-fastest tree-parallel
// engine behind the common mcts.Engine interface.
//
// This is the programmatic equivalent of the paper's "compile-time"
// selection: configuration happens once per (algorithm, hardware, N)
// triple, and the chosen scheme then runs unchanged for the whole training
// job.
package adaptive

import (
	"fmt"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/perfmodel"
)

// Platform selects where DNN inference runs.
type Platform int

// Supported platforms.
const (
	// PlatformCPU runs inference on CPU threads (Equations 3 and 5).
	PlatformCPU Platform = iota
	// PlatformAccel offloads batched inference to an accelerator device
	// (Equations 4 and 6).
	PlatformAccel
)

// String names the platform.
func (p Platform) String() string {
	if p == PlatformCPU {
		return "cpu"
	}
	return "cpu-accel"
}

// Options configures the adaptive framework.
type Options struct {
	// Search holds the MCTS hyper-parameters (playouts, PUCT, noise).
	Search mcts.Config
	// Workers is N, the parallel worker budget.
	Workers int
	// Platform selects CPU or accelerator inference.
	Platform Platform
	// Evaluator performs CPU inference (required for PlatformCPU).
	Evaluator evaluate.Evaluator
	// Device is the accelerator (required for PlatformAccel).
	Device accel.Device
	// DeviceCost is the accelerator's latency model, used by Equations 4/6.
	DeviceCost accel.CostModel
	// SharedAccess overrides the modeled DDR access latency (0 = default).
	SharedAccess time.Duration
	// ProfilePlayouts sizes the design-time profiling episode (0 = 400).
	ProfilePlayouts int
	// DNNProfileIters sizes the T_DNN measurement (0 = 30).
	DNNProfileIters int
	// TestRun, when non-nil, replaces Equation 6 with real measured test
	// runs during the batch-size search, exactly as Algorithm 4 line 5
	// prescribes. It receives a candidate B and must return the amortized
	// round latency of a single-move search using that sub-batch size.
	// It is a SINGLE-search probe: ConfigureFleet ignores it for G > 1
	// (the widened [1, G*N] threshold search uses the analytic G-tenant
	// model; supply a fleet-aware probe to perfmodel.ConfigureGPUTenants
	// directly if you have one).
	TestRun func(b int) time.Duration
	// ForceScheme, when non-nil, skips the model decision (used by the
	// baseline configurations in the evaluation harness).
	ForceScheme *perfmodel.Scheme
	// FlushDeadline bounds how long a multi-tenant service may hold a
	// partial batch (0 = evaluate.DefaultFlushDeadline). Only used by
	// ConfigureFleet, where co-tenant stragglers make a deadline mandatory.
	FlushDeadline time.Duration
}

// Decision records what the configuration workflow chose and why.
type Decision struct {
	Choice perfmodel.Choice
	Params perfmodel.Params
	// InTree is the synthetic-tree profile behind Params.
	InTree perfmodel.InTreeProfile
	// Platform echoes the configured platform.
	Platform Platform
	// Tenants is the number of co-located searches the decision models
	// (1 for a single-engine Configure; G for ConfigureFleet, where
	// Choice.BatchSize is the aggregate service threshold).
	Tenants int
}

// String renders the decision for logs and reports.
func (d Decision) String() string {
	s := fmt.Sprintf("N=%d platform=%s scheme=%s", d.Choice.N, d.Platform, d.Choice.Scheme)
	if d.Tenants > 1 {
		s += fmt.Sprintf(" G=%d", d.Tenants)
	}
	if d.Platform == PlatformAccel && d.Choice.Scheme == perfmodel.SchemeLocal {
		s += fmt.Sprintf(" B=%d (%d probes)", d.Choice.BatchSize, d.Choice.Probes)
	}
	s += fmt.Sprintf(" [pred shared=%v local=%v per-iter]",
		d.Choice.PerIterationShared(), d.Choice.PerIterationLocal())
	return s
}

// Engine wraps the chosen mcts.Engine together with the resources it owns.
type Engine struct {
	mcts.Engine
	Decision Decision
	closers  []func()
}

// Close releases the engine's evaluator pools.
func (e *Engine) Close() {
	e.Engine.Close()
	for _, f := range e.closers {
		f()
	}
}

// Configure runs the design configuration workflow for g under opts and
// returns the predicted-fastest engine, ready for Search calls.
func Configure(g game.Game, opts Options) (*Engine, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("adaptive: Workers must be >= 1, got %d", opts.Workers)
	}
	if opts.Platform == PlatformCPU && opts.Evaluator == nil {
		return nil, fmt.Errorf("adaptive: PlatformCPU requires an Evaluator")
	}
	if opts.Platform == PlatformAccel && opts.Device == nil {
		return nil, fmt.Errorf("adaptive: PlatformAccel requires a Device")
	}

	dec, err := decide(g, opts)
	if err != nil {
		return nil, err
	}
	eng, err := build(g, opts, dec)
	if err != nil {
		return nil, err
	}
	return eng, nil
}

// Fleet is G engines sharing one inference service: the output of the
// multi-tenant design configuration workflow. Engines[i] is tenant i's
// private search engine (each owns its own tree and RNG stream); Server is
// the shared evaluate.Server when the decision built one (local schemes and
// shared+accel), nil when tenants share only a synchronous evaluator.
type Fleet struct {
	Engines  []mcts.Engine
	Decision Decision
	Server   *evaluate.Server
	closers  []func()
}

// Close releases every tenant engine and then drains the shared service.
func (f *Fleet) Close() {
	for _, e := range f.Engines {
		e.Close()
	}
	for _, fn := range f.closers {
		fn()
	}
}

// ConfigureFleet runs the design configuration workflow for G co-located
// searches (tenants) sharing one inference backend. Scheme selection models
// the AGGREGATE batch fill across tenants (perfmodel.SharedGPUTenants /
// LocalGPUTenants, the G-tenant extensions of Equations 4 and 6), so the
// chosen service batch threshold may exceed one tenant's in-flight bound —
// the whole point of multiplexing. Each returned engine carries a distinct
// noise seed derived from Options.Search.Seed.
func ConfigureFleet(g game.Game, tenants int, opts Options) (*Fleet, error) {
	if tenants < 1 {
		return nil, fmt.Errorf("adaptive: tenants must be >= 1, got %d", tenants)
	}
	if opts.Workers < 1 {
		return nil, fmt.Errorf("adaptive: Workers must be >= 1, got %d", opts.Workers)
	}
	if opts.Platform == PlatformCPU && opts.Evaluator == nil {
		return nil, fmt.Errorf("adaptive: PlatformCPU requires an Evaluator")
	}
	if opts.Platform == PlatformAccel && opts.Device == nil {
		return nil, fmt.Errorf("adaptive: PlatformAccel requires a Device")
	}
	dec, err := decideTenants(g, tenants, opts)
	if err != nil {
		return nil, err
	}
	return buildFleet(g, tenants, opts, dec)
}

// decideTenants is decide with the G-tenant aggregate-fill models swapped
// in on the accelerator platform.
func decideTenants(g game.Game, tenants int, opts Options) (Decision, error) {
	dec, err := decide(g, opts)
	if err != nil {
		return dec, err
	}
	dec.Tenants = tenants
	if tenants == 1 {
		return dec, nil
	}
	// Options.TestRun measures a SINGLE search and cannot exercise service
	// thresholds beyond one tenant's in-flight bound N, so the widened
	// [1, G*N] searches below always use the analytic G-tenant model
	// (callers with a fleet-aware probe use perfmodel.ConfigureGPUTenants
	// directly).
	if opts.ForceScheme != nil {
		if opts.Platform == PlatformAccel {
			n := opts.Workers
			switch dec.Choice.Scheme {
			case perfmodel.SchemeLocal:
				// Re-tune the service threshold over the widened range.
				b, probes := perfmodel.FindMinV(1, tenants*n, func(b int) time.Duration {
					return perfmodel.LocalGPUTenants(dec.Params, n, b, tenants)
				})
				dec.Choice.BatchSize = b
				dec.Choice.Probes = probes
			case perfmodel.SchemeShared:
				// The service aggregates all tenants' synchronous workers:
				// full fill is G*N, not one tenant's N.
				dec.Choice.BatchSize = tenants * n
				dec.Choice.PredictedShared = perfmodel.PerIteration(
					perfmodel.SharedGPUTenants(dec.Params, n, tenants), n)
			}
		}
		return dec, nil
	}
	switch opts.Platform {
	case PlatformCPU:
		// Equations 3/5 are per-search: co-located CPU tenants scale the
		// worker pool, not the batch shape, so the single-search choice
		// stands.
	case PlatformAccel:
		dec.Choice = perfmodel.ConfigureGPUTenants(dec.Params, opts.Workers, tenants, nil)
	}
	return dec, nil
}

// buildFleet instantiates G engines over one shared inference backend.
func buildFleet(g game.Game, tenants int, opts Options, dec Decision) (*Fleet, error) {
	fleet := &Fleet{Decision: dec, Engines: make([]mcts.Engine, tenants)}
	n := opts.Workers
	deadline := opts.FlushDeadline
	if deadline <= 0 {
		deadline = evaluate.DefaultFlushDeadline
	}
	// Each tenant gets its own root-noise stream; identical seeds would make
	// co-tenant games collapse onto one trajectory.
	tenantCfg := func(i int) mcts.Config {
		cfg := opts.Search
		cfg.Seed = cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		return cfg
	}

	switch {
	case dec.Choice.Scheme == perfmodel.SchemeShared && opts.Platform == PlatformCPU:
		// Tenants share the (thread-safe) evaluator directly; there is no
		// batch to aggregate on a CPU.
		for i := range fleet.Engines {
			fleet.Engines[i] = mcts.NewShared(tenantCfg(i), n, opts.Evaluator)
		}

	case dec.Choice.Scheme == perfmodel.SchemeShared && opts.Platform == PlatformAccel:
		// One service aggregates all G*N workers' synchronous requests into
		// full-fill batches; the deadline releases stragglers when a tenant
		// finishes its move early and the threshold can no longer be met.
		sync := evaluate.NewBatchedSyncDeadline(opts.Device, dec.Choice.BatchSize, deadline)
		fleet.Server = sync.Server()
		for i := range fleet.Engines {
			fleet.Engines[i] = mcts.NewShared(tenantCfg(i), n, sync)
		}
		fleet.closers = append(fleet.closers, sync.Close)

	case dec.Choice.Scheme == perfmodel.SchemeLocal && opts.Platform == PlatformCPU:
		// One worker pool serves all tenants: batch size 1, concurrency
		// bounded to the physical worker budget.
		srv := evaluate.NewServer(&evaluate.EvaluatorBackend{Eval: opts.Evaluator, Workers: n}, evaluate.ServerConfig{
			Batch:          1,
			MaxOutstanding: tenants * n,
			LaunchWorkers:  n, // persistent inference threads, no per-playout spawn
		})
		fleet.Server = srv
		for i := range fleet.Engines {
			cl := srv.NewClient(n)
			fleet.Engines[i] = mcts.NewLocal(tenantCfg(i), cl, n)
			fleet.closers = append(fleet.closers, cl.Close)
		}
		fleet.closers = append(fleet.closers, srv.Close)

	case dec.Choice.Scheme == perfmodel.SchemeLocal && opts.Platform == PlatformAccel:
		// The tentpole topology: G local-tree masters stream requests into
		// one deadline-flushing service whose threshold is the aggregate
		// fill the G-tenant Equation 6 chose.
		srv := evaluate.NewServer(evaluate.DeviceBackend{Dev: opts.Device}, evaluate.ServerConfig{
			Batch:          dec.Choice.BatchSize,
			FlushDeadline:  deadline,
			MaxOutstanding: 2 * tenants * n,
		})
		fleet.Server = srv
		for i := range fleet.Engines {
			cl := srv.NewClient(n)
			fleet.Engines[i] = mcts.NewLocal(tenantCfg(i), cl, n)
			fleet.closers = append(fleet.closers, cl.Close)
		}
		fleet.closers = append(fleet.closers, srv.Close)

	default:
		return nil, fmt.Errorf("adaptive: unsupported scheme/platform combination")
	}
	_ = g
	return fleet, nil
}

// decide profiles and applies the performance models.
func decide(g game.Game, opts Options) (Decision, error) {
	profPlayouts := opts.ProfilePlayouts
	if profPlayouts <= 0 {
		profPlayouts = 400
	}
	dnnIters := opts.DNNProfileIters
	if dnnIters <= 0 {
		dnnIters = 30
	}
	sharedAccess := opts.SharedAccess
	if sharedAccess <= 0 {
		sharedAccess = perfmodel.DefaultSharedAccess
	}

	inTree := perfmodel.ProfileInTree(perfmodel.SyntheticSpec{
		Fanout:     g.NumActions(),
		DepthLimit: g.MaxGameLength(),
		Playouts:   profPlayouts,
		Seed:       1,
	})
	params := perfmodel.Params{
		TSelect:       inTree.TSelect,
		TBackup:       inTree.TBackup,
		TSharedAccess: sharedAccess,
	}
	c, h, w := g.EncodedShape()
	switch opts.Platform {
	case PlatformCPU:
		params.TDNNCPU = perfmodel.ProfileDNN(opts.Evaluator, c*h*w, g.NumActions(), dnnIters)
	case PlatformAccel:
		cost := opts.DeviceCost
		params.GPU = &cost
	}

	var choice perfmodel.Choice
	if opts.ForceScheme != nil {
		choice = forcedChoice(params, opts)
	} else if opts.Platform == PlatformCPU {
		choice = perfmodel.ConfigureCPU(params, opts.Workers)
	} else {
		choice = perfmodel.ConfigureGPU(params, opts.Workers, opts.TestRun)
	}
	return Decision{Choice: choice, Params: params, InTree: inTree, Platform: opts.Platform, Tenants: 1}, nil
}

func forcedChoice(params perfmodel.Params, opts Options) perfmodel.Choice {
	choice := perfmodel.Choice{N: opts.Workers, Scheme: *opts.ForceScheme, BatchSize: opts.Workers}
	if opts.Platform == PlatformAccel && choice.Scheme == perfmodel.SchemeLocal {
		// Even a forced local scheme still needs its batch size tuned.
		probe := opts.TestRun
		if probe == nil {
			n := opts.Workers
			probe = func(b int) time.Duration { return perfmodel.LocalGPU(params, n, b) }
		}
		b, probes := perfmodel.FindMinV(1, opts.Workers, probe)
		choice.BatchSize = b
		choice.Probes = probes
	}
	return choice
}

// build instantiates the engine the decision calls for.
func build(g game.Game, opts Options, dec Decision) (*Engine, error) {
	eng := &Engine{Decision: dec}
	n := opts.Workers
	switch {
	case dec.Choice.Scheme == perfmodel.SchemeShared && opts.Platform == PlatformCPU:
		eng.Engine = mcts.NewShared(opts.Search, n, opts.Evaluator)

	case dec.Choice.Scheme == perfmodel.SchemeShared && opts.Platform == PlatformAccel:
		// Shared + accelerator: full batches of size N (Section 3.3).
		sync := evaluate.NewBatchedSync(opts.Device, n)
		eng.Engine = mcts.NewShared(opts.Search, n, sync)

	case dec.Choice.Scheme == perfmodel.SchemeLocal && opts.Platform == PlatformCPU:
		pool := evaluate.NewPool(opts.Evaluator, n)
		eng.Engine = mcts.NewLocal(opts.Search, pool, n)
		eng.closers = append(eng.closers, pool.Close)

	case dec.Choice.Scheme == perfmodel.SchemeLocal && opts.Platform == PlatformAccel:
		async := evaluate.NewBatchedAsync(opts.Device, dec.Choice.BatchSize, n)
		eng.Engine = mcts.NewLocal(opts.Search, async, n)
		eng.closers = append(eng.closers, async.Close)

	default:
		return nil, fmt.Errorf("adaptive: unsupported scheme/platform combination")
	}
	_ = g
	return eng, nil
}
