#include "textflag.h"

// func dot4Kernel(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)
//
// out[j] = sum_{p < n} a[p]*bj[p] for j in 0..3, 4 lanes at a time with
// baseline SSE (MULPS/ADDPS are unconditionally present on amd64, so no
// CPUID feature gate is needed). n must be a multiple of 4; the Go wrapper
// handles the scalar tail. Each of the four accumulators keeps 4 partial
// sums, reduced horizontally at the end, so one a-vector load is amortised
// over four b rows and the adds form independent dependency chains.
TEXT ·dot4Kernel(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ out+48(FP), DI
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

loop:
	CMPQ CX, $4
	JL   done
	MOVUPS (SI), X0
	MOVUPS (R8), X1
	MULPS  X0, X1
	ADDPS  X1, X4
	MOVUPS (R9), X2
	MULPS  X0, X2
	ADDPS  X2, X5
	MOVUPS (R10), X3
	MULPS  X0, X3
	ADDPS  X3, X6
	MOVUPS (R11), X1
	MULPS  X0, X1
	ADDPS  X1, X7
	ADDQ   $16, SI
	ADDQ   $16, R8
	ADDQ   $16, R9
	ADDQ   $16, R10
	ADDQ   $16, R11
	SUBQ   $4, CX
	JMP    loop

done:
	// Horizontal reduction: [a b c d] -> a+c, b+d -> sum.
	PSHUFD $0xEE, X4, X0
	ADDPS  X0, X4
	PSHUFD $0x55, X4, X0
	ADDSS  X0, X4
	MOVSS  X4, 0(DI)
	PSHUFD $0xEE, X5, X0
	ADDPS  X0, X5
	PSHUFD $0x55, X5, X0
	ADDSS  X0, X5
	MOVSS  X5, 4(DI)
	PSHUFD $0xEE, X6, X0
	ADDPS  X0, X6
	PSHUFD $0x55, X6, X0
	ADDSS  X0, X6
	MOVSS  X6, 8(DI)
	PSHUFD $0xEE, X7, X0
	ADDPS  X0, X7
	PSHUFD $0x55, X7, X0
	ADDSS  X0, X7
	MOVSS  X7, 12(DI)
	RET
