package tensor

// dot4Kernel is the SSE micro-kernel in dot_amd64.s. n must be a multiple
// of 4.
//
//go:noescape
func dot4Kernel(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)

// dot8Kernel is the 8-wide AVX2+FMA micro-kernel in dot_avx2_amd64.s. n
// must be a multiple of 8. Only callable when hasAVX2 is true.
//
//go:noescape
func dot8Kernel(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)

// dot8x8Kernel is the widened AVX2+FMA register tile in dot_avx2_amd64.s:
// out[j] = dot(a[:n], b[j*stride:j*stride+n]) for j in 0..7. n must be a
// multiple of 8 and rows j*stride+n must be in bounds of the caller's
// backing slice. Only callable when hasAVX2 is true.
//
//go:noescape
func dot8x8Kernel(a, b *float32, stride, n int, out *[8]float32)

// axpy4Kernel is the AVX2+FMA AXPY micro-kernel in dot_avx2_amd64.s:
// c[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j] for j < n.
// n must be a multiple of 8. Only callable when hasAVX2 is true.
//
//go:noescape
func axpy4Kernel(c, b0, b1, b2, b3 *float32, a *[4]float32, n int)

// reluKernel is the AVX2 in-place ReLU in dot_avx2_amd64.s. n must be a
// multiple of 8. Only callable when hasAVX2 is true.
//
//go:noescape
func reluKernel(x *float32, n int)

// dotQ8AVX2Kernel is the int8 micro-kernel in dot_avx2_amd64.s
// (VPMOVSXBW sign-extension + VPMADDWD multiply-add pairs, accumulated in
// int32 lanes). n must be a multiple of 16. Only callable when hasAVX2 is
// true.
//
//go:noescape
func dotQ8AVX2Kernel(a, b0, b1, b2, b3 *int8, n int, out *[4]int32)

// dotQ8x8Kernel is the widened int8 register tile in dot_avx2_amd64.s:
// out[j] = dot(a[:n], b[j*stride:j*stride+n]) in exact int32 for j in 0..7.
// n must be a multiple of 16 and rows j*stride+n must be in bounds of the
// caller's backing slice. Only callable when hasAVX2 is true.
//
//go:noescape
func dotQ8x8Kernel(a, b *int8, stride, n int, out *[8]int32)

// cpuid and xgetbv are in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// hasAVX2 reports whether this host can run the AVX2+FMA kernels: CPU
// support for AVX, AVX2 and FMA, plus OS support for saving the YMM state
// (OSXSAVE and XCR0 bits 1-2). Detected once at package init.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX/YMM upper halves) must both be enabled
	// by the OS, otherwise YMM registers are not preserved across context
	// switches. xgetbv is only safe once OSXSAVE is confirmed.
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func availableKernels() []string {
	ks := []string{KernelGeneric, KernelSSE}
	if hasAVX2 {
		ks = append(ks, KernelAVX2)
	}
	return ks
}

func selectKernel(name string) {
	dotTile8, dotQ8Tile8 = nil, nil
	switch name {
	case KernelSSE:
		dot4, axpy4, dotQ8, reluVec = dot4SSE, axpy4Generic, dotQ8Generic, reluGeneric
	case KernelAVX2:
		dot4, axpy4, dotQ8, reluVec = dot4AVX2, axpy4AVX2, dotQ8AVX2, reluAVX2
		dotTile8 = dotTile8AVX2
		dotQ8Tile8 = dotQ8Tile8AVX2
	default:
		name = KernelGeneric
		dot4, axpy4, dotQ8, reluVec = dot4Generic, axpy4Generic, dotQ8Generic, reluGeneric
	}
	kernelName = name
}

// dot4SSE runs the 4-wide SSE kernel over the aligned prefix and a scalar
// tail.
func dot4SSE(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	n4 := n &^ 3
	if n4 > 0 {
		var out [4]float32
		dot4Kernel(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n4, &out)
		s0, s1, s2, s3 = out[0], out[1], out[2], out[3]
	}
	for p := n4; p < n; p++ {
		av := a[p]
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return
}

// dot4AVX2 runs the 8-wide AVX2+FMA kernel over the aligned prefix and a
// scalar tail.
func dot4AVX2(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	n8 := n &^ 7
	if n8 > 0 {
		var out [4]float32
		dot8Kernel(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n8, &out)
		s0, s1, s2, s3 = out[0], out[1], out[2], out[3]
	}
	for p := n8; p < n; p++ {
		av := a[p]
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return
}

// dotTile8AVX2 computes out[j] = dot(a, b[j*stride:j*stride+len(a)]) for
// j in 0..7. b must reach at least 7*stride+len(a) elements.
func dotTile8AVX2(a, b []float32, stride int) (out [8]float32) {
	n := len(a)
	n8 := n &^ 7
	if n8 > 0 {
		dot8x8Kernel(&a[0], &b[0], stride, n8, &out)
	}
	for p := n8; p < n; p++ {
		av := a[p]
		for r := 0; r < 8; r++ {
			out[r] += av * b[r*stride+p]
		}
	}
	return
}

// axpy4AVX2 runs the AVX2 AXPY kernel over the aligned prefix and a scalar
// tail.
func axpy4AVX2(ci []float32, a *[4]float32, b0, b1, b2, b3 []float32) {
	n := len(ci)
	n8 := n &^ 7
	if n8 > 0 {
		axpy4Kernel(&ci[0], &b0[0], &b1[0], &b2[0], &b3[0], a, n8)
	}
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	for j := n8; j < n; j++ {
		ci[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// reluAVX2 runs the 8-wide VMAXPS kernel over the aligned prefix and a
// scalar tail.
func reluAVX2(x []float32) {
	n := len(x)
	n8 := n &^ 7
	if n8 > 0 {
		reluKernel(&x[0], n8)
	}
	for i := n8; i < n; i++ {
		if x[i] < 0 {
			x[i] = 0
		}
	}
}

// dotQ8Tile8AVX2 computes out[j] = dot(a, b[j*stride:j*stride+len(a)]) for
// j in 0..7 in exact int32. b must reach at least 7*stride+len(a) elements.
func dotQ8Tile8AVX2(a, b []int8, stride int) (out [8]int32) {
	n := len(a)
	n16 := n &^ 15
	if n16 > 0 {
		dotQ8x8Kernel(&a[0], &b[0], stride, n16, &out)
	}
	for p := n16; p < n; p++ {
		av := int32(a[p])
		for r := 0; r < 8; r++ {
			out[r] += av * int32(b[r*stride+p])
		}
	}
	return
}

// dotQ8AVX2 runs the int8 AVX2 kernel over the aligned prefix and a scalar
// tail.
func dotQ8AVX2(a, b0, b1, b2, b3 []int8) (s0, s1, s2, s3 int32) {
	n := len(a)
	n16 := n &^ 15
	if n16 > 0 {
		var out [4]int32
		dotQ8AVX2Kernel(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n16, &out)
		s0, s1, s2, s3 = out[0], out[1], out[2], out[3]
	}
	for p := n16; p < n; p++ {
		av := int32(a[p])
		s0 += av * int32(b0[p])
		s1 += av * int32(b1[p])
		s2 += av * int32(b2[p])
		s3 += av * int32(b3[p])
	}
	return
}
