package tensor

// dot4Kernel is the SSE micro-kernel in dot_amd64.s. n must be a multiple
// of 4.
//
//go:noescape
func dot4Kernel(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)

// dot4 computes the four dot products of a against b0..b3, which must all
// share a's length. It is the register tile of MatMulTransB: four C columns
// per pass over one A row.
func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	n4 := n &^ 3
	if n4 > 0 {
		var out [4]float32
		dot4Kernel(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n4, &out)
		s0, s1, s2, s3 = out[0], out[1], out[2], out[3]
	}
	for p := n4; p < n; p++ {
		av := a[p]
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return
}
