//go:build !amd64

package tensor

// Non-amd64 hosts have only the portable Go kernels.

func availableKernels() []string { return []string{KernelGeneric} }

func selectKernel(string) {
	dot4, axpy4, dotQ8, reluVec = dot4Generic, axpy4Generic, dotQ8Generic, reluGeneric
	dotTile8, dotQ8Tile8 = nil, nil
	kernelName = KernelGeneric
}
