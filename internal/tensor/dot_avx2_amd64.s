#include "textflag.h"

// The AVX2+FMA micro-kernels. All three are gated behind runtime feature
// detection (hasAVX2 in dot_amd64.go): AVX2 for the 256-bit integer ops and
// VBROADCASTSS-from-register-free forms, FMA for VFMADD231PS. Every routine
// ends with VZEROUPPER so the transition back to SSE code carries no
// dirty-upper-state penalty.

// func dot8Kernel(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)
//
// out[j] = sum_{p < n} a[p]*bj[p] for j in 0..3, 8 lanes at a time with
// fused multiply-add. n must be a multiple of 8; the Go wrapper handles the
// scalar tail. One 8-wide a-vector load is amortised over four b rows and
// the four YMM accumulators form independent FMA dependency chains.
TEXT ·dot8Kernel(SB), NOSPLIT, $0-56
	MOVQ   a+0(FP), SI
	MOVQ   b0+8(FP), R8
	MOVQ   b1+16(FP), R9
	MOVQ   b2+24(FP), R10
	MOVQ   b3+32(FP), R11
	MOVQ   n+40(FP), CX
	MOVQ   out+48(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

	// 2x-unrolled main loop: 16 elements per pass with EIGHT independent
	// FMA chains (two per b row), enough to cover FMA latency at two FMAs
	// per cycle. The chains merge once, after the loop.
loop16:
	CMPQ        CX, $16
	JL          loop8
	VMOVUPS     (SI), Y0
	VMOVUPS     32(SI), Y12
	VMOVUPS     (R8), Y1
	VFMADD231PS Y1, Y0, Y4    // Y4 += Y0 * Y1
	VMOVUPS     32(R8), Y13
	VFMADD231PS Y13, Y12, Y8
	VMOVUPS     (R9), Y2
	VFMADD231PS Y2, Y0, Y5
	VMOVUPS     32(R9), Y14
	VFMADD231PS Y14, Y12, Y9
	VMOVUPS     (R10), Y3
	VFMADD231PS Y3, Y0, Y6
	VMOVUPS     32(R10), Y15
	VFMADD231PS Y15, Y12, Y10
	VMOVUPS     (R11), Y1
	VFMADD231PS Y1, Y0, Y7
	VMOVUPS     32(R11), Y13
	VFMADD231PS Y13, Y12, Y11
	ADDQ        $64, SI
	ADDQ        $64, R8
	ADDQ        $64, R9
	ADDQ        $64, R10
	ADDQ        $64, R11
	SUBQ        $16, CX
	JMP         loop16

loop8:
	CMPQ        CX, $8
	JL          merge
	VMOVUPS     (SI), Y0
	VMOVUPS     (R8), Y1
	VFMADD231PS Y1, Y0, Y4
	VMOVUPS     (R9), Y2
	VFMADD231PS Y2, Y0, Y5
	VMOVUPS     (R10), Y3
	VFMADD231PS Y3, Y0, Y6
	VMOVUPS     (R11), Y1
	VFMADD231PS Y1, Y0, Y7
	ADDQ        $32, SI
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	SUBQ        $8, CX
	JMP         loop8

merge:
	VADDPS Y8, Y4, Y4
	VADDPS Y9, Y5, Y5
	VADDPS Y10, Y6, Y6
	VADDPS Y11, Y7, Y7

	// Horizontal reduction of each YMM accumulator to one float32, staying
	// VEX-encoded throughout: fold the high 128-bit lane onto the low one,
	// then [a b c d] -> a+c, b+d -> sum.
	VEXTRACTF128 $1, Y4, X0
	VADDPS       X0, X4, X4
	VSHUFPS      $0xEE, X4, X4, X0
	VADDPS       X0, X4, X4
	VSHUFPS      $0x55, X4, X4, X0
	VADDSS       X0, X4, X4
	VMOVSS       X4, 0(DI)
	VEXTRACTF128 $1, Y5, X0
	VADDPS       X0, X5, X5
	VSHUFPS      $0xEE, X5, X5, X0
	VADDPS       X0, X5, X5
	VSHUFPS      $0x55, X5, X5, X0
	VADDSS       X0, X5, X5
	VMOVSS       X5, 4(DI)
	VEXTRACTF128 $1, Y6, X0
	VADDPS       X0, X6, X6
	VSHUFPS      $0xEE, X6, X6, X0
	VADDPS       X0, X6, X6
	VSHUFPS      $0x55, X6, X6, X0
	VADDSS       X0, X6, X6
	VMOVSS       X6, 8(DI)
	VEXTRACTF128 $1, Y7, X0
	VADDPS       X0, X7, X7
	VSHUFPS      $0xEE, X7, X7, X0
	VADDPS       X0, X7, X7
	VSHUFPS      $0x55, X7, X7, X0
	VADDSS       X0, X7, X7
	VMOVSS       X7, 12(DI)
	VZEROUPPER
	RET

// func dot8x8Kernel(a, b *float32, stride, n int, out *[8]float32)
//
// out[j] = sum_{p < n} a[p]*b[j*stride+p] for j in 0..7 — the widened
// AVX2 register tile: one 8-wide a load amortised over EIGHT rows of B
// (stride apart in elements), with eight YMM accumulators forming eight
// independent FMA chains. Halves the per-tile call and slice bookkeeping
// of the 4-column tile. n must be a multiple of 8; the Go wrapper handles
// the scalar tail.
TEXT ·dot8x8Kernel(SB), NOSPLIT, $0-40
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), BX
	MOVQ   stride+16(FP), R12
	SHLQ   $2, R12             // element stride -> byte stride
	MOVQ   n+24(FP), CX
	MOVQ   out+32(FP), DI
	MOVQ   BX, R8
	LEAQ   (BX)(R12*1), R9
	LEAQ   (R9)(R12*1), R10
	LEAQ   (R10)(R12*1), R11
	LEAQ   (R11)(R12*1), R13
	LEAQ   (R13)(R12*1), R14
	LEAQ   (R14)(R12*1), R15
	LEAQ   (R15)(R12*1), AX
	XORQ   DX, DX              // running byte offset, one increment per step
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	VXORPS Y12, Y12, Y12
	VXORPS Y13, Y13, Y13
	VXORPS Y14, Y14, Y14
	VXORPS Y15, Y15, Y15

loop:
	CMPQ        CX, $8
	JL          done
	VMOVUPS     (SI)(DX*1), Y0
	VMOVUPS     (R8)(DX*1), Y1
	VFMADD231PS Y1, Y0, Y8     // Y8 += Y0 * Y1
	VMOVUPS     (R9)(DX*1), Y2
	VFMADD231PS Y2, Y0, Y9
	VMOVUPS     (R10)(DX*1), Y3
	VFMADD231PS Y3, Y0, Y10
	VMOVUPS     (R11)(DX*1), Y4
	VFMADD231PS Y4, Y0, Y11
	VMOVUPS     (R13)(DX*1), Y5
	VFMADD231PS Y5, Y0, Y12
	VMOVUPS     (R14)(DX*1), Y6
	VFMADD231PS Y6, Y0, Y13
	VMOVUPS     (R15)(DX*1), Y7
	VFMADD231PS Y7, Y0, Y14
	VMOVUPS     (AX)(DX*1), Y1
	VFMADD231PS Y1, Y0, Y15
	ADDQ        $32, DX
	SUBQ        $8, CX
	JMP         loop

done:
	// Horizontal reduction of each accumulator to out[0..7].
	VEXTRACTF128 $1, Y8, X0
	VADDPS       X0, X8, X8
	VSHUFPS      $0xEE, X8, X8, X0
	VADDPS       X0, X8, X8
	VSHUFPS      $0x55, X8, X8, X0
	VADDSS       X0, X8, X8
	VMOVSS       X8, 0(DI)
	VEXTRACTF128 $1, Y9, X0
	VADDPS       X0, X9, X9
	VSHUFPS      $0xEE, X9, X9, X0
	VADDPS       X0, X9, X9
	VSHUFPS      $0x55, X9, X9, X0
	VADDSS       X0, X9, X9
	VMOVSS       X9, 4(DI)
	VEXTRACTF128 $1, Y10, X0
	VADDPS       X0, X10, X10
	VSHUFPS      $0xEE, X10, X10, X0
	VADDPS       X0, X10, X10
	VSHUFPS      $0x55, X10, X10, X0
	VADDSS       X0, X10, X10
	VMOVSS       X10, 8(DI)
	VEXTRACTF128 $1, Y11, X0
	VADDPS       X0, X11, X11
	VSHUFPS      $0xEE, X11, X11, X0
	VADDPS       X0, X11, X11
	VSHUFPS      $0x55, X11, X11, X0
	VADDSS       X0, X11, X11
	VMOVSS       X11, 12(DI)
	VEXTRACTF128 $1, Y12, X0
	VADDPS       X0, X12, X12
	VSHUFPS      $0xEE, X12, X12, X0
	VADDPS       X0, X12, X12
	VSHUFPS      $0x55, X12, X12, X0
	VADDSS       X0, X12, X12
	VMOVSS       X12, 16(DI)
	VEXTRACTF128 $1, Y13, X0
	VADDPS       X0, X13, X13
	VSHUFPS      $0xEE, X13, X13, X0
	VADDPS       X0, X13, X13
	VSHUFPS      $0x55, X13, X13, X0
	VADDSS       X0, X13, X13
	VMOVSS       X13, 20(DI)
	VEXTRACTF128 $1, Y14, X0
	VADDPS       X0, X14, X14
	VSHUFPS      $0xEE, X14, X14, X0
	VADDPS       X0, X14, X14
	VSHUFPS      $0x55, X14, X14, X0
	VADDSS       X0, X14, X14
	VMOVSS       X14, 24(DI)
	VEXTRACTF128 $1, Y15, X0
	VADDPS       X0, X15, X15
	VSHUFPS      $0xEE, X15, X15, X0
	VADDPS       X0, X15, X15
	VSHUFPS      $0x55, X15, X15, X0
	VADDSS       X0, X15, X15
	VMOVSS       X15, 28(DI)
	VZEROUPPER
	RET

// func axpy4Kernel(c, b0, b1, b2, b3 *float32, a *[4]float32, n int)
//
// c[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j] for j < n,
// 8 lanes per step with fused multiply-add. n must be a multiple of 8; the
// Go wrapper handles the scalar tail. This is the MatMul register tile:
// four broadcast A scalars stream four B rows into one pass over the C row.
TEXT ·axpy4Kernel(SB), NOSPLIT, $0-56
	MOVQ         c+0(FP), DI
	MOVQ         b0+8(FP), R8
	MOVQ         b1+16(FP), R9
	MOVQ         b2+24(FP), R10
	MOVQ         b3+32(FP), R11
	MOVQ         a+40(FP), SI
	MOVQ         n+48(FP), CX
	VBROADCASTSS 0(SI), Y0
	VBROADCASTSS 4(SI), Y1
	VBROADCASTSS 8(SI), Y2
	VBROADCASTSS 12(SI), Y3

loop:
	CMPQ        CX, $8
	JL          done
	VMOVUPS     (DI), Y4
	VMOVUPS     (R8), Y5
	VFMADD231PS Y5, Y0, Y4
	VMOVUPS     (R9), Y5
	VFMADD231PS Y5, Y1, Y4
	VMOVUPS     (R10), Y5
	VFMADD231PS Y5, Y2, Y4
	VMOVUPS     (R11), Y5
	VFMADD231PS Y5, Y3, Y4
	VMOVUPS     Y4, (DI)
	ADDQ        $32, DI
	ADDQ        $32, R8
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	SUBQ        $8, CX
	JMP         loop

done:
	VZEROUPPER
	RET

// func reluKernel(x *float32, n int)
//
// x[i] = max(x[i], 0) for i < n, 8 lanes per step. n must be a multiple of
// 8; the Go wrapper handles the tail.
TEXT ·reluKernel(SB), NOSPLIT, $0-16
	MOVQ   x+0(FP), DI
	MOVQ   n+8(FP), CX
	VXORPS Y1, Y1, Y1

loop:
	CMPQ    CX, $8
	JL      done
	VMOVUPS (DI), Y0
	VMAXPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	SUBQ    $8, CX
	JMP     loop

done:
	VZEROUPPER
	RET

// func dotQ8x8Kernel(a, b *int8, stride, n int, out *[8]int32)
//
// out[j] = sum_{p < n} int32(a[p])*int32(b[j*stride+p]) for j in 0..7 —
// the widened int8 register tile. One VPMOVSXBW sign-extension of 16
// a-bytes is amortised over EIGHT rows of B; products accumulate exactly in
// int32 via VPMADDWD pairs (see dotQ8AVX2Kernel for the overflow argument).
// n must be a multiple of 16; the Go wrapper handles the scalar tail.
TEXT ·dotQ8x8Kernel(SB), NOSPLIT, $0-40
	MOVQ  a+0(FP), SI
	MOVQ  b+8(FP), BX
	MOVQ  stride+16(FP), R12
	MOVQ  n+24(FP), CX
	MOVQ  out+32(FP), DI
	MOVQ  BX, R8
	LEAQ  (BX)(R12*1), R9
	LEAQ  (R9)(R12*1), R10
	LEAQ  (R10)(R12*1), R11
	LEAQ  (R11)(R12*1), R13
	LEAQ  (R13)(R12*1), R14
	LEAQ  (R14)(R12*1), R15
	LEAQ  (R15)(R12*1), AX
	XORQ  DX, DX
	VPXOR Y8, Y8, Y8
	VPXOR Y9, Y9, Y9
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11
	VPXOR Y12, Y12, Y12
	VPXOR Y13, Y13, Y13
	VPXOR Y14, Y14, Y14
	VPXOR Y15, Y15, Y15

loop:
	CMPQ      CX, $16
	JL        done
	VPMOVSXBW (SI)(DX*1), Y0
	VPMOVSXBW (R8)(DX*1), Y1
	VPMADDWD  Y1, Y0, Y1
	VPADDD    Y1, Y8, Y8
	VPMOVSXBW (R9)(DX*1), Y2
	VPMADDWD  Y2, Y0, Y2
	VPADDD    Y2, Y9, Y9
	VPMOVSXBW (R10)(DX*1), Y3
	VPMADDWD  Y3, Y0, Y3
	VPADDD    Y3, Y10, Y10
	VPMOVSXBW (R11)(DX*1), Y4
	VPMADDWD  Y4, Y0, Y4
	VPADDD    Y4, Y11, Y11
	VPMOVSXBW (R13)(DX*1), Y5
	VPMADDWD  Y5, Y0, Y5
	VPADDD    Y5, Y12, Y12
	VPMOVSXBW (R14)(DX*1), Y6
	VPMADDWD  Y6, Y0, Y6
	VPADDD    Y6, Y13, Y13
	VPMOVSXBW (R15)(DX*1), Y7
	VPMADDWD  Y7, Y0, Y7
	VPADDD    Y7, Y14, Y14
	VPMOVSXBW (AX)(DX*1), Y1
	VPMADDWD  Y1, Y0, Y1
	VPADDD    Y1, Y15, Y15
	ADDQ      $16, DX
	SUBQ      $16, CX
	JMP       loop

done:
	VEXTRACTI128 $1, Y8, X0
	VPADDD       X0, X8, X8
	VPSHUFD      $0xEE, X8, X0
	VPADDD       X0, X8, X8
	VPSHUFD      $0x55, X8, X0
	VPADDD       X0, X8, X8
	VMOVD        X8, 0(DI)
	VEXTRACTI128 $1, Y9, X0
	VPADDD       X0, X9, X9
	VPSHUFD      $0xEE, X9, X0
	VPADDD       X0, X9, X9
	VPSHUFD      $0x55, X9, X0
	VPADDD       X0, X9, X9
	VMOVD        X9, 4(DI)
	VEXTRACTI128 $1, Y10, X0
	VPADDD       X0, X10, X10
	VPSHUFD      $0xEE, X10, X0
	VPADDD       X0, X10, X10
	VPSHUFD      $0x55, X10, X0
	VPADDD       X0, X10, X10
	VMOVD        X10, 8(DI)
	VEXTRACTI128 $1, Y11, X0
	VPADDD       X0, X11, X11
	VPSHUFD      $0xEE, X11, X0
	VPADDD       X0, X11, X11
	VPSHUFD      $0x55, X11, X0
	VPADDD       X0, X11, X11
	VMOVD        X11, 12(DI)
	VEXTRACTI128 $1, Y12, X0
	VPADDD       X0, X12, X12
	VPSHUFD      $0xEE, X12, X0
	VPADDD       X0, X12, X12
	VPSHUFD      $0x55, X12, X0
	VPADDD       X0, X12, X12
	VMOVD        X12, 16(DI)
	VEXTRACTI128 $1, Y13, X0
	VPADDD       X0, X13, X13
	VPSHUFD      $0xEE, X13, X0
	VPADDD       X0, X13, X13
	VPSHUFD      $0x55, X13, X0
	VPADDD       X0, X13, X13
	VMOVD        X13, 20(DI)
	VEXTRACTI128 $1, Y14, X0
	VPADDD       X0, X14, X14
	VPSHUFD      $0xEE, X14, X0
	VPADDD       X0, X14, X14
	VPSHUFD      $0x55, X14, X0
	VPADDD       X0, X14, X14
	VMOVD        X14, 24(DI)
	VEXTRACTI128 $1, Y15, X0
	VPADDD       X0, X15, X15
	VPSHUFD      $0xEE, X15, X0
	VPADDD       X0, X15, X15
	VPSHUFD      $0x55, X15, X0
	VPADDD       X0, X15, X15
	VMOVD        X15, 28(DI)
	VZEROUPPER
	RET

// func dotQ8AVX2Kernel(a, b0, b1, b2, b3 *int8, n int, out *[4]int32)
//
// out[j] = sum_{p < n} int32(a[p])*int32(bj[p]) for j in 0..3, 16 int8
// lanes at a time: VPMOVSXBW sign-extends 16 bytes to 16 int16, VPMADDWD
// multiplies int16 pairs and sums adjacent products into 8 int32 lanes,
// VPADDD accumulates. Accumulation is exact for any int8 inputs with
// n <= 2^16 (|product pair sum| <= 2*127*127 << 2^31/n). n must be a
// multiple of 16; the Go wrapper handles the scalar tail.
TEXT ·dotQ8AVX2Kernel(SB), NOSPLIT, $0-56
	MOVQ  a+0(FP), SI
	MOVQ  b0+8(FP), R8
	MOVQ  b1+16(FP), R9
	MOVQ  b2+24(FP), R10
	MOVQ  b3+32(FP), R11
	MOVQ  n+40(FP), CX
	MOVQ  out+48(FP), DI
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

loop:
	CMPQ      CX, $16
	JL        done
	VPMOVSXBW (SI), Y0
	VPMOVSXBW (R8), Y1
	VPMADDWD  Y1, Y0, Y1
	VPADDD    Y1, Y4, Y4
	VPMOVSXBW (R9), Y2
	VPMADDWD  Y2, Y0, Y2
	VPADDD    Y2, Y5, Y5
	VPMOVSXBW (R10), Y3
	VPMADDWD  Y3, Y0, Y3
	VPADDD    Y3, Y6, Y6
	VPMOVSXBW (R11), Y1
	VPMADDWD  Y1, Y0, Y1
	VPADDD    Y1, Y7, Y7
	ADDQ      $16, SI
	ADDQ      $16, R8
	ADDQ      $16, R9
	ADDQ      $16, R10
	ADDQ      $16, R11
	SUBQ      $16, CX
	JMP       loop

done:
	// Horizontal int32 reduction per accumulator.
	VEXTRACTI128 $1, Y4, X0
	VPADDD       X0, X4, X4
	VPSHUFD      $0xEE, X4, X0
	VPADDD       X0, X4, X4
	VPSHUFD      $0x55, X4, X0
	VPADDD       X0, X4, X4
	VMOVD        X4, 0(DI)
	VEXTRACTI128 $1, Y5, X0
	VPADDD       X0, X5, X5
	VPSHUFD      $0xEE, X5, X0
	VPADDD       X0, X5, X5
	VPSHUFD      $0x55, X5, X0
	VPADDD       X0, X5, X5
	VMOVD        X5, 4(DI)
	VEXTRACTI128 $1, Y6, X0
	VPADDD       X0, X6, X6
	VPSHUFD      $0xEE, X6, X0
	VPADDD       X0, X6, X6
	VPSHUFD      $0x55, X6, X0
	VPADDD       X0, X6, X6
	VMOVD        X6, 8(DI)
	VEXTRACTI128 $1, Y7, X0
	VPADDD       X0, X7, X7
	VPSHUFD      $0xEE, X7, X0
	VPADDD       X0, X7, X7
	VPSHUFD      $0x55, X7, X0
	VPADDD       X0, X7, X7
	VMOVD        X7, 12(DI)
	VZEROUPPER
	RET
