// Package tensor implements the dense float32 array operations backing the
// policy/value network: blocked parallel matrix multiply, im2col convolution,
// elementwise activations, and their gradients.
//
// The package deliberately sticks to plain Go and the standard library. The
// paper offloads DNN inference to CUDA; here the same operator graph runs on
// the CPU (optionally behind the simulated accelerator in internal/accel),
// so what matters is that the operators are correct, reasonably fast, and
// have a realistic batch-scaling latency profile.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 array with an explicit shape.
// Layout for 4-D image tensors is NCHW.
type Tensor struct {
	Data  []float32
	Shape []int
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Data: make([]float32, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data with the given shape (no copy). The length of data
// must equal the product of the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Data: t.Data, Shape: append([]int(nil), shape...)}
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index (bounds unchecked beyond
// the flattened offset; intended for tests and debugging, not hot paths).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// AXPY computes t += alpha * x elementwise. Shapes must match in length.
func (t *Tensor) AXPY(alpha float32, x *Tensor) {
	if len(t.Data) != len(x.Data) {
		panic("tensor: AXPY length mismatch")
	}
	td, xd := t.Data, x.Data
	for i := range td {
		td[i] += alpha * xd[i]
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SumSquares returns the squared L2 norm of the data.
func (t *Tensor) SumSquares() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return s
}

// ReLU applies max(0, x) elementwise, writing into dst (which may alias src).
func ReLU(dst, src *Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic("tensor: ReLU length mismatch")
	}
	for i, v := range src.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// ReLUGrad computes dSrc = dDst * 1[src > 0]. act is the pre-activation
// input that was fed to ReLU.
func ReLUGrad(dSrc, dDst, act *Tensor) {
	if len(dSrc.Data) != len(dDst.Data) || len(dSrc.Data) != len(act.Data) {
		panic("tensor: ReLUGrad length mismatch")
	}
	for i := range dSrc.Data {
		if act.Data[i] > 0 {
			dSrc.Data[i] = dDst.Data[i]
		} else {
			dSrc.Data[i] = 0
		}
	}
}

// Tanh applies the hyperbolic tangent elementwise.
func Tanh(dst, src *Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic("tensor: Tanh length mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(math.Tanh(float64(v)))
	}
}

// TanhGrad computes dSrc = dDst * (1 - out^2) where out is the tanh output.
func TanhGrad(dSrc, dDst, out *Tensor) {
	if len(dSrc.Data) != len(dDst.Data) || len(dSrc.Data) != len(out.Data) {
		panic("tensor: TanhGrad length mismatch")
	}
	for i := range dSrc.Data {
		o := out.Data[i]
		dSrc.Data[i] = dDst.Data[i] * (1 - o*o)
	}
}

// SoftmaxRows applies a numerically-stable softmax independently to each row
// of an (rows, cols) matrix.
func SoftmaxRows(dst, src *Tensor, rows, cols int) {
	if rows*cols != len(src.Data) || len(dst.Data) != len(src.Data) {
		panic("tensor: SoftmaxRows shape mismatch")
	}
	for r := 0; r < rows; r++ {
		row := src.Data[r*cols : (r+1)*cols]
		out := dst.Data[r*cols : (r+1)*cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float32
		for i, v := range row {
			e := float32(math.Exp(float64(v - maxV)))
			out[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
}

// LogSoftmaxRows writes log(softmax(row)) for each row.
func LogSoftmaxRows(dst, src *Tensor, rows, cols int) {
	if rows*cols != len(src.Data) || len(dst.Data) != len(src.Data) {
		panic("tensor: LogSoftmaxRows shape mismatch")
	}
	for r := 0; r < rows; r++ {
		row := src.Data[r*cols : (r+1)*cols]
		out := dst.Data[r*cols : (r+1)*cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		lse := float32(math.Log(sum)) + maxV
		for i, v := range row {
			out[i] = v - lse
		}
	}
}
