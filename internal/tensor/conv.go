package tensor

// Conv2DShape describes a 2-D convolution with square stride 1 and symmetric
// zero padding — the only configuration the paper's Gomoku network needs
// (3x3 "same" convolutions over a 15x15 board), though arbitrary kernel and
// padding sizes are supported.
type Conv2DShape struct {
	InC, InH, InW int // input channels, height, width
	OutC          int // output channels
	KH, KW        int // kernel height/width
	PadH, PadW    int // zero padding on each side
}

// OutH returns the output height.
func (s Conv2DShape) OutH() int { return s.InH + 2*s.PadH - s.KH + 1 }

// OutW returns the output width.
func (s Conv2DShape) OutW() int { return s.InW + 2*s.PadW - s.KW + 1 }

// ColRows returns the number of rows of the im2col matrix (one per output
// pixel).
func (s Conv2DShape) ColRows() int { return s.OutH() * s.OutW() }

// ColCols returns the number of columns of the im2col matrix (one per
// kernel tap).
func (s Conv2DShape) ColCols() int { return s.InC * s.KH * s.KW }

// Im2Col expands a single image (InC x InH x InW, row-major) into a
// (OutH*OutW) x (InC*KH*KW) patch matrix, so convolution becomes one matrix
// multiply. col must have ColRows()*ColCols() capacity.
func Im2Col(col, img []float32, s Conv2DShape) {
	Im2ColStrided(col, img, s, 0, s.InH*s.InW)
}

// Im2ColStrided is Im2Col for an image embedded inside a larger activation
// matrix: channel plane c of the image starts at img[base+c*planeStride].
// With base = sample*InH*InW and planeStride = batch*InH*InW this extracts
// one sample from the batch-major activation layout used by
// Conv2DForwardBatch; Im2Col is the base = 0, planeStride = InH*InW case.
func Im2ColStrided(col, img []float32, s Conv2DShape, base, planeStride int) {
	im2colStrided(col, img, s, base, planeStride)
}

// Im2ColStridedQ8 is Im2ColStrided over int8 activations — the gather step
// of the quantized convolution path (zero padding is exact in any
// symmetric quantization, so the int8 patch matrix is the elementwise
// quantization of the fp32 one).
func Im2ColStridedQ8(col, img []int8, s Conv2DShape, base, planeStride int) {
	im2colStrided(col, img, s, base, planeStride)
}

func im2colStrided[T float32 | int8](col, img []T, s Conv2DShape, base, planeStride int) {
	outH, outW := s.OutH(), s.OutW()
	cols := s.ColCols()
	if s.KH == 1 && s.KW == 1 && s.PadH == 0 && s.PadW == 0 {
		// 1x1 convolution: the patch matrix is just a channel transpose.
		pix := outH * outW
		for c := 0; c < s.InC; c++ {
			plane := img[base+c*planeStride:]
			d := c
			for p := 0; p < pix; p++ {
				col[d] = plane[p]
				d += cols
			}
		}
		return
	}
	// General case, structured so the iy bounds check runs once per
	// (oy, c, ky) row instead of once per output pixel. The kernel-row
	// widths here are tiny (3 for the trunk convs), so in-bounds rows use a
	// short explicit loop — a memmove call would cost more than it copies.
	for oy := 0; oy < outH; oy++ {
		rowDst := col[oy*outW*cols:]
		for c := 0; c < s.InC; c++ {
			plane := img[base+c*planeStride:]
			cOff := c * s.KH * s.KW
			for ky := 0; ky < s.KH; ky++ {
				iy := oy + ky - s.PadH
				off := cOff + ky*s.KW
				if iy < 0 || iy >= s.InH {
					for ox := 0; ox < outW; ox++ {
						d := rowDst[off : off+s.KW]
						for kx := range d {
							d[kx] = 0
						}
						off += cols
					}
					continue
				}
				row := plane[iy*s.InW : iy*s.InW+s.InW]
				for ox := 0; ox < outW; ox++ {
					d := rowDst[off : off+s.KW]
					ix0 := ox - s.PadW
					if ix0 >= 0 && ix0+s.KW <= s.InW {
						src := row[ix0 : ix0+s.KW]
						for kx := range d {
							d[kx] = src[kx]
						}
					} else {
						for kx := range d {
							ix := ix0 + kx
							if ix < 0 || ix >= s.InW {
								d[kx] = 0
							} else {
								d[kx] = row[ix]
							}
						}
					}
					off += cols
				}
			}
		}
	}
}

// Col2Im scatters a patch-matrix gradient back into an image gradient,
// accumulating overlapping contributions. dImg must be zeroed by the caller
// if accumulation from scratch is intended.
func Col2Im(dImg, col []float32, s Conv2DShape) {
	outH, outW := s.OutH(), s.OutW()
	cols := s.ColCols()
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			src := col[(oy*outW+ox)*cols:]
			idx := 0
			for c := 0; c < s.InC; c++ {
				plane := dImg[c*s.InH*s.InW:]
				for ky := 0; ky < s.KH; ky++ {
					iy := oy + ky - s.PadH
					if iy < 0 || iy >= s.InH {
						idx += s.KW
						continue
					}
					rowBase := iy * s.InW
					for kx := 0; kx < s.KW; kx++ {
						ix := ox + kx - s.PadW
						if ix >= 0 && ix < s.InW {
							plane[rowBase+ix] += src[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Conv2DForward computes out = conv(img, weight) + bias for one image.
//
//	img:    InC*InH*InW
//	weight: OutC x (InC*KH*KW) row-major
//	bias:   OutC
//	out:    OutC*OutH*OutW
//	col:    scratch of size ColRows()*ColCols()
//
// The convolution is evaluated as weight * col^T via MatMulTransB, giving
// an (OutC x OutH*OutW) output in one shot. It is exactly
// Conv2DForwardBatch with batch size 1.
func Conv2DForward(out, img, weight, bias, col []float32, s Conv2DShape) {
	Conv2DForwardBatch(out, img, weight, bias, col, s, 1)
}

// Conv2DForwardBatch convolves a whole batch with ONE GEMM.
//
// Activations use a batch-major layout: channel plane c of sample b lives
// at imgs[(c*batch+b)*InH*InW]. The same layout is produced on output
// (out[(oc*batch+b)*OutH*OutW]), so consecutive conv layers chain without
// repacking — only the im2col gather needs the per-sample stride. All
// batch*OutH*OutW patch rows land in one (batch*pix) x (InC*KH*KW) column
// matrix and a single weight * col^T product evaluates the layer for every
// sample, which is where batched inference earns its throughput: the weight
// panel is loaded into cache once per layer instead of once per sample.
//
//	imgs: InC x (batch*InH*InW)  batch-major
//	out:  OutC x (batch*OutH*OutW) batch-major
//	col:  scratch of size batch*ColRows()*ColCols()
func Conv2DForwardBatch(out, imgs, weight, bias, col []float32, s Conv2DShape, batch int) {
	pix := s.ColRows()
	kk := s.ColCols()
	imgLen := s.InH * s.InW
	for b := 0; b < batch; b++ {
		Im2ColStrided(col[b*pix*kk:], imgs, s, b*imgLen, batch*imgLen)
	}
	n := batch * pix
	// out[oc][bp] = sum_k weight[oc][k] * col[bp][k]
	MatMulTransB(out, weight, col, s.OutC, kk, n)
	for oc := 0; oc < s.OutC; oc++ {
		b := bias[oc]
		row := out[oc*n : (oc+1)*n]
		for i := range row {
			row[i] += b
		}
	}
}

// PackBatch gathers per-sample images (each c*hw channel-major) into the
// batch-major activation layout consumed by Conv2DForwardBatch:
// dst[(ch*batch+b)*hw + p] = imgs[b][ch*hw + p].
func PackBatch(dst []float32, imgs [][]float32, c, hw int) {
	batch := len(imgs)
	for ch := 0; ch < c; ch++ {
		for b, img := range imgs {
			copy(dst[(ch*batch+b)*hw:(ch*batch+b+1)*hw], img[ch*hw:(ch+1)*hw])
		}
	}
}

// UnpackBatch scatters a batch-major activation matrix back into per-sample
// row vectors (one c*hw channel-major row per sample), the layout dense
// heads expect: dst[b*c*hw + ch*hw + p] = src[(ch*batch+b)*hw + p].
func UnpackBatch(dst, src []float32, c, hw, batch int) {
	unpackBatch(dst, src, c, hw, batch)
}

// UnpackBatchQ8 is UnpackBatch over int8 activations (the quantized path's
// handoff from batch-major conv activations to per-sample FC rows).
func UnpackBatchQ8(dst, src []int8, c, hw, batch int) {
	unpackBatch(dst, src, c, hw, batch)
}

func unpackBatch[T float32 | int8](dst, src []T, c, hw, batch int) {
	for ch := 0; ch < c; ch++ {
		for b := 0; b < batch; b++ {
			copy(dst[(b*c+ch)*hw:(b*c+ch+1)*hw], src[(ch*batch+b)*hw:(ch*batch+b+1)*hw])
		}
	}
}

// Conv2DBackward computes gradients for one image given dOut
// (OutC x OutH*OutW):
//
//	dW     += dOut * col           (OutC x ColCols)
//	dB     += row sums of dOut     (OutC)
//	dImg   = col2im(weight^T dOut) (InC*InH*InW, overwritten)
//
// col must contain the im2col expansion of the forward input (recompute it
// with Im2Col if it was not retained). dCol is scratch of the same size.
func Conv2DBackward(dImg, dW, dB, dOut, weight, col, dCol []float32, s Conv2DShape) {
	pix := s.ColRows()
	kk := s.ColCols()
	// dW[oc][k] += sum_p dOut[oc][p] * col[p][k]
	for oc := 0; oc < s.OutC; oc++ {
		dwRow := dW[oc*kk : (oc+1)*kk]
		doRow := dOut[oc*pix : (oc+1)*pix]
		var bsum float32
		for p := 0; p < pix; p++ {
			g := doRow[p]
			bsum += g
			if g == 0 {
				continue
			}
			cRow := col[p*kk : (p+1)*kk]
			for k := range cRow {
				dwRow[k] += g * cRow[k]
			}
		}
		dB[oc] += bsum
	}
	// dCol[p][k] = sum_oc dOut[oc][p] * weight[oc][k]
	for p := 0; p < pix; p++ {
		row := dCol[p*kk : (p+1)*kk]
		for k := range row {
			row[k] = 0
		}
		for oc := 0; oc < s.OutC; oc++ {
			g := dOut[oc*pix+p]
			if g == 0 {
				continue
			}
			wRow := weight[oc*kk : (oc+1)*kk]
			for k := range row {
				row[k] += g * wRow[k]
			}
		}
	}
	for i := range dImg {
		dImg[i] = 0
	}
	Col2Im(dImg, dCol, s)
}
