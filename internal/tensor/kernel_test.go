package tensor

import (
	"fmt"
	"math"
	"testing"

	"github.com/parmcts/parmcts/internal/rng"
)

// forceKernel switches the dispatched kernel for the duration of a test and
// restores the previous selection afterwards.
func forceKernel(t *testing.T, name string) bool {
	t.Helper()
	prev := KernelName()
	sel, err := SetKernel(name)
	if err != nil {
		t.Fatalf("SetKernel(%q): %v", name, err)
	}
	t.Cleanup(func() { SetKernel(prev) })
	if sel != name {
		t.Logf("kernel %q unavailable on this host (selected %q)", name, sel)
		return false
	}
	return true
}

func TestSetKernelUnknown(t *testing.T) {
	if _, err := SetKernel("quantum"); err == nil {
		t.Fatal("SetKernel accepted an unknown kernel name")
	}
	if _, err := SetKernel(""); err != nil {
		t.Fatalf("SetKernel(\"\") should select the best kernel: %v", err)
	}
	if got := KernelName(); got != Kernels()[len(Kernels())-1] {
		t.Fatalf("best kernel mismatch: selected %q, available %v", got, Kernels())
	}
}

func TestSetKernelUnavailableDegrades(t *testing.T) {
	// Forcing every known name must always succeed, selecting the best
	// available substitute when the hardware lacks the requested class —
	// the CI kernel matrix relies on this to run an "avx2" leg on any
	// runner.
	for _, name := range []string{KernelGeneric, KernelSSE, KernelAVX2} {
		sel, err := SetKernel(name)
		if err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		if kernelAvailable(name) && sel != name {
			t.Fatalf("SetKernel(%q) selected %q despite availability", name, sel)
		}
		if !kernelAvailable(name) && sel == name {
			t.Fatalf("SetKernel(%q) claims an unavailable kernel", name)
		}
	}
	SetKernel("")
}

// randFloats fills a slice with values in [-2, 2), including exact zeros to
// exercise the zero-skip fast paths.
func randFloats(r *rng.Rand, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		if r.Float32() < 0.1 {
			continue // leave exact zero
		}
		x[i] = r.Float32()*4 - 2
	}
	return x
}

// kernelSizes covers zero-length, sub-tile, non-multiple-of-4/8/16 tails
// and full-tile lengths.
var kernelSizes = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 100, 128, 257}

// TestDotKernelEquivalence pins every selectable dot4 kernel against the
// generic reference within 1e-5 across sizes including tails and
// zero-length edges.
func TestDotKernelEquivalence(t *testing.T) {
	r := rng.New(11)
	for _, n := range kernelSizes {
		a := randFloats(r, n)
		b0, b1, b2, b3 := randFloats(r, n), randFloats(r, n), randFloats(r, n), randFloats(r, n)
		g0, g1, g2, g3 := dot4Generic(a, b0, b1, b2, b3)
		for _, k := range Kernels() {
			if !forceKernel(t, k) {
				continue
			}
			s0, s1, s2, s3 := dot4(a, b0, b1, b2, b3)
			for i, pair := range [][2]float32{{s0, g0}, {s1, g1}, {s2, g2}, {s3, g3}} {
				if diff := math.Abs(float64(pair[0] - pair[1])); diff > 1e-5*(1+math.Abs(float64(pair[1]))) {
					t.Errorf("kernel %s n=%d lane %d: got %g want %g", k, n, i, pair[0], pair[1])
				}
			}
		}
	}
}

// TestAxpyKernelEquivalence pins every selectable axpy4 kernel against the
// generic reference.
func TestAxpyKernelEquivalence(t *testing.T) {
	r := rng.New(13)
	for _, n := range kernelSizes {
		ar := [4]float32{r.Float32()*2 - 1, r.Float32()*2 - 1, 0, r.Float32()*2 - 1}
		b0, b1, b2, b3 := randFloats(r, n), randFloats(r, n), randFloats(r, n), randFloats(r, n)
		base := randFloats(r, n)
		want := append([]float32(nil), base...)
		axpy4Generic(want, &ar, b0, b1, b2, b3)
		for _, k := range Kernels() {
			if !forceKernel(t, k) {
				continue
			}
			got := append([]float32(nil), base...)
			axpy4(got, &ar, b0, b1, b2, b3)
			for j := range got {
				if diff := math.Abs(float64(got[j] - want[j])); diff > 1e-5*(1+math.Abs(float64(want[j]))) {
					t.Errorf("kernel %s n=%d j=%d: got %g want %g", k, n, j, got[j], want[j])
				}
			}
		}
	}
}

// TestDotQ8KernelEquivalence pins the int8 kernels bitwise against the
// generic reference — integer accumulation is exact, so any difference is
// a kernel bug, not rounding.
func TestDotQ8KernelEquivalence(t *testing.T) {
	r := rng.New(17)
	randBytes := func(n int) []int8 {
		x := make([]int8, n)
		for i := range x {
			x[i] = int8(r.Intn(255) - 127)
		}
		return x
	}
	for _, n := range kernelSizes {
		a := randBytes(n)
		b0, b1, b2, b3 := randBytes(n), randBytes(n), randBytes(n), randBytes(n)
		g0, g1, g2, g3 := dotQ8Generic(a, b0, b1, b2, b3)
		for _, k := range Kernels() {
			if !forceKernel(t, k) {
				continue
			}
			s0, s1, s2, s3 := dotQ8(a, b0, b1, b2, b3)
			if s0 != g0 || s1 != g1 || s2 != g2 || s3 != g3 {
				t.Errorf("kernel %s n=%d: got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
					k, n, s0, s1, s2, s3, g0, g1, g2, g3)
			}
		}
	}
}

// referenceGEMMTransB is a naive triple loop in float64, the order-free
// ground truth both blocked fp32 kernels are compared against.
func referenceGEMMTransB(a, b []float32, m, k, n int) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a[i*k+p]) * float64(b[j*k+p])
			}
			c[i*n+j] = s
		}
	}
	return c
}

// TestMatMulTransBKernelEquivalence runs the full blocked GEMM under every
// kernel forcing value across shapes with ragged tails in every dimension
// and compares against a float64 reference.
func TestMatMulTransBKernelEquivalence(t *testing.T) {
	r := rng.New(23)
	shapes := [][3]int{{1, 1, 1}, {1, 7, 1}, {3, 5, 9}, {4, 16, 8}, {7, 33, 13}, {16, 100, 81}, {5, 257, 66}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randFloats(r, m*k)
		b := randFloats(r, n*k)
		want := referenceGEMMTransB(a, b, m, k, n)
		for _, kn := range Kernels() {
			if !forceKernel(t, kn) {
				continue
			}
			c := make([]float32, m*n)
			MatMulTransB(c, a, b, m, k, n)
			for i := range c {
				if diff := math.Abs(float64(c[i]) - want[i]); diff > 1e-4*(1+math.Abs(want[i])) {
					t.Fatalf("kernel %s m=%d k=%d n=%d idx %d: got %g want %g", kn, m, k, n, i, c[i], want[i])
				}
			}
		}
	}
}

// TestMatMulKernelEquivalence is the same sweep for the AXPY-tiled MatMul.
func TestMatMulKernelEquivalence(t *testing.T) {
	r := rng.New(29)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 5}, {4, 8, 16}, {7, 33, 13}, {16, 100, 81}, {3, 257, 40}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randFloats(r, m*k)
		bT := make([]float32, k*n) // MatMul takes B (k x n) directly
		for i := range bT {
			bT[i] = r.Float32()*4 - 2
		}
		// reference via transposing B into (n x k) and reusing the helper
		bRows := make([]float32, n*k)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bRows[j*k+p] = bT[p*n+j]
			}
		}
		want := referenceGEMMTransB(a, bRows, m, k, n)
		for _, kn := range Kernels() {
			if !forceKernel(t, kn) {
				continue
			}
			c := make([]float32, m*n)
			MatMul(c, a, bT, m, k, n)
			for i := range c {
				if diff := math.Abs(float64(c[i]) - want[i]); diff > 1e-4*(1+math.Abs(want[i])) {
					t.Fatalf("kernel %s m=%d k=%d n=%d idx %d: got %g want %g", kn, m, k, n, i, c[i], want[i])
				}
			}
		}
	}
}

// TestMatMulTransBQ8KernelEquivalence: the quantized GEMM must be bitwise
// identical across kernels and match a naive int32 reference.
func TestMatMulTransBQ8KernelEquivalence(t *testing.T) {
	r := rng.New(31)
	shapes := [][3]int{{1, 1, 1}, {1, 16, 4}, {3, 17, 9}, {8, 64, 32}, {7, 100, 13}, {16, 1152, 81}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]int8, m*k)
		b := make([]int8, n*k)
		for i := range a {
			a[i] = int8(r.Intn(255) - 127)
		}
		for i := range b {
			b[i] = int8(r.Intn(255) - 127)
		}
		want := make([]int32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s int32
				for p := 0; p < k; p++ {
					s += int32(a[i*k+p]) * int32(b[j*k+p])
				}
				want[i*n+j] = s
			}
		}
		for _, kn := range Kernels() {
			if !forceKernel(t, kn) {
				continue
			}
			c := make([]int32, m*n)
			MatMulTransBQ8(c, a, b, m, k, n)
			for i := range c {
				if c[i] != want[i] {
					t.Fatalf("kernel %s m=%d k=%d n=%d idx %d: got %d want %d", kn, m, k, n, i, c[i], want[i])
				}
			}
		}
	}
}

func TestQuantizeSymmetric(t *testing.T) {
	src := []float32{0, 0.5, -0.5, 1, -1, 2, -2, 0.24, -0.26}
	dst := make([]int8, len(src))
	QuantizeSymmetric(dst, src, 1.0/127)
	want := []int8{0, 64, -64, 127, -127, 127, -127, 30, -33}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("idx %d: got %d want %d", i, dst[i], want[i])
		}
	}
	QuantizeSymmetric(dst, src, 0) // degenerate scale must zero, not NaN-cast
	for i := range dst {
		if dst[i] != 0 {
			t.Errorf("zero scale idx %d: got %d", i, dst[i])
		}
	}
}

func BenchmarkDotKernel(b *testing.B) {
	r := rng.New(1)
	const n = 1152 // widest im2col row of the full Gomoku net (128*9)
	a := randFloats(r, n)
	b0, b1, b2, b3 := randFloats(r, n), randFloats(r, n), randFloats(r, n), randFloats(r, n)
	for _, k := range Kernels() {
		b.Run(k, func(b *testing.B) {
			prev := KernelName()
			if sel, _ := SetKernel(k); sel != k {
				b.Skipf("kernel %s unavailable", k)
			}
			defer SetKernel(prev)
			b.SetBytes(4 * 5 * n)
			for i := 0; i < b.N; i++ {
				dot4(a, b0, b1, b2, b3)
			}
		})
	}
}

func BenchmarkMatMulTransBKernels(b *testing.B) {
	r := rng.New(2)
	// policy-head FC shape of the full 9x9 net: (batch x 324) * (81 x 324)^T
	m, k, n := 16, 324, 81
	a := randFloats(r, m*k)
	bm := randFloats(r, n*k)
	c := make([]float32, m*n)
	for _, kn := range Kernels() {
		b.Run(fmt.Sprintf("%s/m%dk%dn%d", kn, m, k, n), func(b *testing.B) {
			prev := KernelName()
			if sel, _ := SetKernel(kn); sel != kn {
				b.Skipf("kernel %s unavailable", kn)
			}
			defer SetKernel(prev)
			for i := 0; i < b.N; i++ {
				MatMulTransB(c, a, bm, m, k, n)
			}
		})
	}
}

func BenchmarkMatMulTransBQ8(b *testing.B) {
	r := rng.New(3)
	m, k, n := 16, 324, 81
	a := make([]int8, m*k)
	bm := make([]int8, n*k)
	for i := range a {
		a[i] = int8(r.Intn(255) - 127)
	}
	for i := range bm {
		bm[i] = int8(r.Intn(255) - 127)
	}
	c := make([]int32, m*n)
	for _, kn := range Kernels() {
		b.Run(kn, func(b *testing.B) {
			prev := KernelName()
			if sel, _ := SetKernel(kn); sel != kn {
				b.Skipf("kernel %s unavailable", kn)
			}
			defer SetKernel(prev)
			for i := 0; i < b.N; i++ {
				MatMulTransBQ8(c, a, bm, m, k, n)
			}
		})
	}
}
