package tensor

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDotKernels feeds arbitrary float inputs (including NaN/Inf bit
// patterns and ragged lengths) through every compiled-in dot kernel and the
// int8 kernels, requiring that no kernel panics and that all agree with the
// generic reference — to rounding tolerance for fp32, bitwise for int8.
// Non-finite fp32 inputs only check for panics: NaN/Inf arithmetic is
// order-sensitive by nature.
func FuzzDotKernels(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add(make([]byte, 5*4*17), uint8(17))
	f.Fuzz(func(t *testing.T, raw []byte, nByte uint8) {
		n := int(nByte)%64 + 1
		need := 5 * 4 * n
		if len(raw) < need {
			padded := make([]byte, need)
			copy(padded, raw)
			raw = padded
		}
		vecs := make([][]float32, 5)
		finite := true
		for v := range vecs {
			vecs[v] = make([]float32, n)
			for i := 0; i < n; i++ {
				bits := binary.LittleEndian.Uint32(raw[(v*n+i)*4:])
				x := math.Float32frombits(bits)
				if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
					finite = false
				}
				vecs[v][i] = x
			}
		}
		a, b0, b1, b2, b3 := vecs[0], vecs[1], vecs[2], vecs[3], vecs[4]

		prev := KernelName()
		defer SetKernel(prev)

		g0, g1, g2, g3 := dot4Generic(a, b0, b1, b2, b3)
		qa := make([]int8, n)
		qb := make([][]int8, 4)
		for i := 0; i < n; i++ {
			qa[i] = int8(raw[i%len(raw)])
		}
		for v := range qb {
			qb[v] = make([]int8, n)
			for i := 0; i < n; i++ {
				qb[v][i] = int8(raw[(v*n+i+1)%len(raw)])
			}
		}
		qg0, qg1, qg2, qg3 := dotQ8Generic(qa, qb[0], qb[1], qb[2], qb[3])

		for _, k := range Kernels() {
			if sel, err := SetKernel(k); err != nil || sel != k {
				continue
			}
			s0, s1, s2, s3 := dot4(a, b0, b1, b2, b3)
			if finite {
				// Magnitude-relative tolerance: catastrophic cancellation
				// between huge finite values is accumulation-order
				// sensitive, which is exactly why the bound scales with
				// the largest partial product, not the result.
				var mag float64 = 1
				for i := 0; i < n; i++ {
					for _, bv := range [][]float32{b0, b1, b2, b3} {
						if m := math.Abs(float64(a[i]) * float64(bv[i])); m > mag {
							mag = m
						}
					}
				}
				tol := 1e-4 * mag * float64(n)
				for lane, pair := range [][2]float32{{s0, g0}, {s1, g1}, {s2, g2}, {s3, g3}} {
					got, want := float64(pair[0]), float64(pair[1])
					if math.IsNaN(got) != math.IsNaN(want) {
						continue // overflow to Inf/NaN can differ by order
					}
					if !math.IsInf(got, 0) && !math.IsInf(want, 0) && math.Abs(got-want) > tol {
						t.Errorf("kernel %s n=%d lane %d: got %g want %g (tol %g)", k, n, lane, got, want, tol)
					}
				}
			}
			q0, q1, q2, q3 := dotQ8(qa, qb[0], qb[1], qb[2], qb[3])
			if q0 != qg0 || q1 != qg1 || q2 != qg2 || q3 != qg3 {
				t.Errorf("kernel %s n=%d int8: got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
					k, n, q0, q1, q2, q3, qg0, qg1, qg2, qg3)
			}
		}
	})
}
