package tensor

import (
	"fmt"
	"os"
	"sort"
)

// Kernel names accepted by SetKernel and the TENSOR_KERNEL environment
// variable. Each names one implementation of the register-tile micro-kernels
// (fp32 dot4 / AXPY and the int8 quantized dot): "generic" is portable Go,
// "sse" the baseline 4-wide SSE assembly (amd64 only), "avx2" the 8-wide
// AVX2+FMA assembly (amd64 with AVX2+FMA+OS support only).
const (
	KernelGeneric = "generic"
	KernelSSE     = "sse"
	KernelAVX2    = "avx2"
)

// The dispatched micro-kernels. They are selected once — at package init
// from TENSOR_KERNEL, or explicitly via SetKernel — and read (never written)
// by every GEMM call, so selection must happen before concurrent kernel use.
var (
	// dot4 computes the four dot products of a against b0..b3, which must
	// all share a's length — the register tile of MatMulTransB: four C
	// columns per pass over one A row.
	dot4 func(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32)
	// axpy4 computes ci[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] +
	// a[3]*b3[j] — the register tile of MatMul: four B rows streamed into
	// one pass over a C row segment.
	axpy4 func(ci []float32, a *[4]float32, b0, b1, b2, b3 []float32)
	// dotQ8 is dot4 over int8 operands with exact int32 accumulation — the
	// register tile of the quantized GEMM MatMulTransBQ8.
	dotQ8 func(a, b0, b1, b2, b3 []int8) (s0, s1, s2, s3 int32)
	// reluVec clamps every element of x to [0, inf) in place — dispatched
	// alongside the GEMM tiles because ReLU runs over every activation matrix
	// between layers and is pure bandwidth.
	reluVec func(x []float32)
	// dotTile8 is the optional widened MatMulTransB tile: out[j] =
	// dot(a, b[j*stride:]) for j in 0..7, nil when the selected kernel class
	// has no 8-column tile (generic, sse). When set, matMulTransBRange
	// produces eight C columns per pass instead of four, halving tile
	// bookkeeping.
	// The tiles are returned by value so the indirect call cannot force a
	// heap allocation per row inside the GEMM inner loops.
	dotTile8 func(a, b []float32, stride int) [8]float32
	// dotQ8Tile8 is the int8 counterpart of dotTile8 (exact int32
	// accumulation), nil when unavailable.
	dotQ8Tile8 func(a, b []int8, stride int) [8]int32

	kernelName string
)

// ReLUInPlace sets x[i] = max(x[i], 0) using the dispatched kernel class.
func ReLUInPlace(x []float32) { reluVec(x) }

func init() {
	// TENSOR_KERNEL forces a kernel class at process start; an unavailable
	// or unknown value degrades to the best available kernel rather than
	// failing, so a binary built for avx2 still starts on an SSE-only host.
	if _, err := SetKernel(os.Getenv("TENSOR_KERNEL")); err != nil {
		selectKernel(bestKernel())
	}
}

// SetKernel selects the micro-kernel implementation by name ("" selects the
// best available). A known-but-unavailable name (e.g. "avx2" on a host
// without AVX2) degrades to the best available kernel and returns the name
// actually selected; an unknown name is an error. SetKernel is NOT safe to
// call concurrently with running kernels — it is for process start and test
// setup.
func SetKernel(name string) (selected string, err error) {
	switch name {
	case "":
		selectKernel(bestKernel())
	case KernelGeneric, KernelSSE, KernelAVX2:
		if !kernelAvailable(name) {
			selectKernel(bestKernel())
			return kernelName, nil
		}
		selectKernel(name)
	default:
		return kernelName, fmt.Errorf("tensor: unknown kernel %q (have %v)", name, Kernels())
	}
	return kernelName, nil
}

// KernelName reports the micro-kernel implementation currently dispatched.
func KernelName() string { return kernelName }

// Kernels returns the kernel names available on this host, best last.
func Kernels() []string {
	ks := availableKernels()
	sort.Slice(ks, func(i, j int) bool { return kernelRank(ks[i]) < kernelRank(ks[j]) })
	return ks
}

func kernelRank(name string) int {
	switch name {
	case KernelSSE:
		return 1
	case KernelAVX2:
		return 2
	}
	return 0
}

func bestKernel() string {
	best := KernelGeneric
	for _, k := range availableKernels() {
		if kernelRank(k) > kernelRank(best) {
			best = k
		}
	}
	return best
}

func kernelAvailable(name string) bool {
	for _, k := range availableKernels() {
		if k == name {
			return true
		}
	}
	return false
}

// dot4Generic is the portable register tile: the four accumulators form
// independent dependency chains, so even scalar hardware overlaps the adds.
func dot4Generic(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	for p, av := range a {
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return
}

// axpy4Generic is the portable MatMul register tile.
func axpy4Generic(ci []float32, a *[4]float32, b0, b1, b2, b3 []float32) {
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	for j := range ci {
		ci[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// reluGeneric is the portable ReLU.
func reluGeneric(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// dotQ8Generic is the portable int8 register tile. Accumulation is exact
// (int32), so unlike the fp32 kernels every implementation must agree
// bitwise — the equivalence tests pin that.
func dotQ8Generic(a, b0, b1, b2, b3 []int8) (s0, s1, s2, s3 int32) {
	for p, av := range a {
		s0 += int32(av) * int32(b0[p])
		s1 += int32(av) * int32(b1[p])
		s2 += int32(av) * int32(b2[p])
		s3 += int32(av) * int32(b3[p])
	}
	return
}
