package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/parmcts/parmcts/internal/rng"
)

func randSlice(r *rng.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = r.Float32()*2 - 1
	}
	return s
}

func naiveMatMul(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero dim did not panic")
		}
	}()
	New(3, 0)
}

func TestFromSliceAndReshape(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	tt := FromSlice(data, 2, 3)
	if tt.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", tt.At(1, 2))
	}
	tt.Set(9, 0, 1)
	if data[1] != 9 {
		t.Error("FromSlice should not copy")
	}
	r := tt.Reshape(3, 2)
	if r.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v", r.At(2, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	tt.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := New(2, 2)
	a.Fill(3)
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 3 {
		t.Error("Clone shares storage")
	}
}

func TestAtBoundsPanic(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	a.At(2, 0)
}

func TestAXPYScaleDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.AXPY(2, b)
	want := []float32{9, 12, 15}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Errorf("AXPY[%d] = %v, want %v", i, a.Data[i], want[i])
		}
	}
	a.Scale(0.5)
	if a.Data[2] != 7.5 {
		t.Errorf("Scale wrong: %v", a.Data)
	}
	if d := Dot([]float32{1, 2}, []float32{3, 4}); d != 11 {
		t.Errorf("Dot = %v", d)
	}
	if s := b.SumSquares(); math.Abs(s-77) > 1e-6 {
		t.Errorf("SumSquares = %v", s)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(21)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 13}, {64, 64, 64}, {130, 70, 90}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(r, m*k), randSlice(r, k*n)
		c := make([]float32, m*n)
		MatMul(c, a, b, m, k, n)
		want := naiveMatMul(a, b, m, k, n)
		if d := maxAbsDiff(c, want); d > 1e-4 {
			t.Errorf("MatMul(%v) max diff %v", dims, d)
		}
	}
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	r := rng.New(22)
	for _, dims := range [][3]int{{2, 3, 4}, {33, 17, 25}, {100, 64, 80}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, bT := randSlice(r, m*k), randSlice(r, n*k)
		// build B (k x n) from bT (n x k)
		b := make([]float32, k*n)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				b[p*n+j] = bT[j*k+p]
			}
		}
		c := make([]float32, m*n)
		MatMulTransB(c, a, bT, m, k, n)
		want := naiveMatMul(a, b, m, k, n)
		if d := maxAbsDiff(c, want); d > 1e-4 {
			t.Errorf("MatMulTransB(%v) max diff %v", dims, d)
		}
	}
}

func TestMatMulTransAMatchesNaive(t *testing.T) {
	r := rng.New(23)
	m, k, n := 7, 11, 5
	aT := randSlice(r, k*m) // A stored (k x m)
	b := randSlice(r, k*n)
	a := make([]float32, m*k)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			a[i*k+p] = aT[p*m+i]
		}
	}
	c := make([]float32, m*n)
	MatMulTransA(c, aT, b, m, k, n)
	want := naiveMatMul(a, b, m, k, n)
	if d := maxAbsDiff(c, want); d > 1e-4 {
		t.Errorf("MatMulTransA max diff %v", d)
	}
}

func TestMatMulPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer did not panic")
		}
	}()
	MatMul(make([]float32, 3), make([]float32, 4), make([]float32, 4), 2, 2, 2)
}

func TestAddBiasAndBiasGrad(t *testing.T) {
	m := []float32{1, 2, 3, 4}
	AddBiasRows(m, []float32{10, 20}, 2, 2)
	want := []float32{11, 22, 13, 24}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("AddBiasRows[%d] = %v", i, m[i])
		}
	}
	dB := make([]float32, 2)
	BiasGradRows(dB, []float32{1, 2, 3, 4}, 2, 2)
	if dB[0] != 4 || dB[1] != 6 {
		t.Errorf("BiasGradRows = %v", dB)
	}
}

func TestReLUAndGrad(t *testing.T) {
	src := FromSlice([]float32{-1, 0, 2}, 3)
	dst := New(3)
	ReLU(dst, src)
	if dst.Data[0] != 0 || dst.Data[1] != 0 || dst.Data[2] != 2 {
		t.Errorf("ReLU = %v", dst.Data)
	}
	dDst := FromSlice([]float32{5, 5, 5}, 3)
	dSrc := New(3)
	ReLUGrad(dSrc, dDst, src)
	if dSrc.Data[0] != 0 || dSrc.Data[1] != 0 || dSrc.Data[2] != 5 {
		t.Errorf("ReLUGrad = %v", dSrc.Data)
	}
}

func TestTanhGradNumerically(t *testing.T) {
	r := rng.New(24)
	x := FromSlice(randSlice(r, 16), 16)
	y := New(16)
	Tanh(y, x)
	dOut := FromSlice(randSlice(r, 16), 16)
	dX := New(16)
	TanhGrad(dX, dOut, y)
	const eps = 1e-3
	for i := 0; i < 16; i++ {
		xp := x.Clone()
		xp.Data[i] += eps
		xm := x.Clone()
		xm.Data[i] -= eps
		yp, ym := New(16), New(16)
		Tanh(yp, xp)
		Tanh(ym, xm)
		var lp, lm float64
		for j := range yp.Data {
			lp += float64(yp.Data[j] * dOut.Data[j])
			lm += float64(ym.Data[j] * dOut.Data[j])
		}
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dX.Data[i])) > 1e-2 {
			t.Errorf("tanh grad[%d]: numeric %v analytic %v", i, num, dX.Data[i])
		}
	}
}

func TestSoftmaxRowsProperties(t *testing.T) {
	r := rng.New(25)
	if err := quick.Check(func(seed uint64) bool {
		rr := rng.New(seed)
		rows, cols := rr.Intn(4)+1, rr.Intn(20)+2
		src := FromSlice(randSlice(r, rows*cols), rows*cols)
		// include large magnitudes to exercise stability
		src.Data[0] = 80
		dst := New(rows * cols)
		SoftmaxRows(dst, src, rows, cols)
		for row := 0; row < rows; row++ {
			var sum float64
			for c := 0; c < cols; c++ {
				v := dst.Data[row*cols+c]
				if v < 0 || math.IsNaN(float64(v)) {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSoftmaxMatchesSoftmax(t *testing.T) {
	r := rng.New(26)
	rows, cols := 3, 7
	src := FromSlice(randSlice(r, rows*cols), rows*cols)
	sm, lsm := New(rows*cols), New(rows*cols)
	SoftmaxRows(sm, src, rows, cols)
	LogSoftmaxRows(lsm, src, rows, cols)
	for i := range sm.Data {
		if math.Abs(math.Log(float64(sm.Data[i]))-float64(lsm.Data[i])) > 1e-4 {
			t.Errorf("log softmax mismatch at %d: log(%v) vs %v", i, sm.Data[i], lsm.Data[i])
		}
	}
}

// naiveConv computes a direct convolution for verification.
func naiveConv(img, weight, bias []float32, s Conv2DShape) []float32 {
	outH, outW := s.OutH(), s.OutW()
	out := make([]float32, s.OutC*outH*outW)
	for oc := 0; oc < s.OutC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := bias[oc]
				for ic := 0; ic < s.InC; ic++ {
					for ky := 0; ky < s.KH; ky++ {
						for kx := 0; kx < s.KW; kx++ {
							iy, ix := oy+ky-s.PadH, ox+kx-s.PadW
							if iy < 0 || iy >= s.InH || ix < 0 || ix >= s.InW {
								continue
							}
							w := weight[oc*s.ColCols()+ic*s.KH*s.KW+ky*s.KW+kx]
							sum += w * img[ic*s.InH*s.InW+iy*s.InW+ix]
						}
					}
				}
				out[oc*outH*outW+oy*outW+ox] = sum
			}
		}
	}
	return out
}

func TestConv2DForwardMatchesNaive(t *testing.T) {
	r := rng.New(27)
	shapes := []Conv2DShape{
		{InC: 1, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, PadH: 1, PadW: 1},
		{InC: 3, InH: 7, InW: 6, OutC: 4, KH: 3, KW: 3, PadH: 1, PadW: 1},
		{InC: 2, InH: 8, InW: 8, OutC: 3, KH: 5, KW: 5, PadH: 0, PadW: 0},
		{InC: 4, InH: 15, InW: 15, OutC: 8, KH: 3, KW: 3, PadH: 1, PadW: 1},
	}
	for _, s := range shapes {
		img := randSlice(r, s.InC*s.InH*s.InW)
		w := randSlice(r, s.OutC*s.ColCols())
		b := randSlice(r, s.OutC)
		out := make([]float32, s.OutC*s.OutH()*s.OutW())
		col := make([]float32, s.ColRows()*s.ColCols())
		Conv2DForward(out, img, w, b, col, s)
		want := naiveConv(img, w, b, s)
		if d := maxAbsDiff(out, want); d > 1e-4 {
			t.Errorf("conv %+v: max diff %v", s, d)
		}
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> must hold for the pair to be valid
	// linear adjoints, which is what the backward pass relies on.
	r := rng.New(28)
	s := Conv2DShape{InC: 2, InH: 6, InW: 5, OutC: 1, KH: 3, KW: 3, PadH: 1, PadW: 1}
	x := randSlice(r, s.InC*s.InH*s.InW)
	y := randSlice(r, s.ColRows()*s.ColCols())
	cx := make([]float32, s.ColRows()*s.ColCols())
	Im2Col(cx, x, s)
	var lhs float64
	for i := range cx {
		lhs += float64(cx[i]) * float64(y[i])
	}
	xty := make([]float32, len(x))
	Col2Im(xty, y, s)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(xty[i])
	}
	if math.Abs(lhs-rhs) > 1e-2*math.Max(1, math.Abs(lhs)) {
		t.Errorf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestConv2DBackwardNumerically(t *testing.T) {
	r := rng.New(29)
	s := Conv2DShape{InC: 2, InH: 4, InW: 4, OutC: 3, KH: 3, KW: 3, PadH: 1, PadW: 1}
	img := randSlice(r, s.InC*s.InH*s.InW)
	w := randSlice(r, s.OutC*s.ColCols())
	b := randSlice(r, s.OutC)
	pix := s.OutH() * s.OutW()
	dOut := randSlice(r, s.OutC*pix)

	loss := func(img, w, b []float32) float64 {
		out := make([]float32, s.OutC*pix)
		col := make([]float32, s.ColRows()*s.ColCols())
		Conv2DForward(out, img, w, b, col, s)
		var l float64
		for i := range out {
			l += float64(out[i]) * float64(dOut[i])
		}
		return l
	}

	col := make([]float32, s.ColRows()*s.ColCols())
	Im2Col(col, img, s)
	dImg := make([]float32, len(img))
	dW := make([]float32, len(w))
	dB := make([]float32, len(b))
	dCol := make([]float32, len(col))
	Conv2DBackward(dImg, dW, dB, dOut, w, col, dCol, s)

	const eps = 1e-2
	check := func(name string, buf []float32, grad []float32, count int) {
		for trial := 0; trial < count; trial++ {
			i := r.Intn(len(buf))
			orig := buf[i]
			buf[i] = orig + eps
			lp := loss(img, w, b)
			buf[i] = orig - eps
			lm := loss(img, w, b)
			buf[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(grad[i])) > 2e-2*math.Max(1, math.Abs(num)) {
				t.Errorf("%s grad[%d]: numeric %v analytic %v", name, i, num, grad[i])
			}
		}
	}
	check("weight", w, dW, 20)
	check("bias", b, dB, 3)
	check("input", img, dImg, 20)
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	const m, k, n = 128, 128, 128
	a, bb := randSlice(r, m*k), randSlice(r, k*n)
	c := make([]float32, m*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, bb, m, k, n)
	}
}

func BenchmarkConvGomokuLayer(b *testing.B) {
	// One 32->64-channel 3x3 conv over a 15x15 board: the dominant layer of
	// the paper's network.
	r := rng.New(2)
	s := Conv2DShape{InC: 32, InH: 15, InW: 15, OutC: 64, KH: 3, KW: 3, PadH: 1, PadW: 1}
	img := randSlice(r, s.InC*s.InH*s.InW)
	w := randSlice(r, s.OutC*s.ColCols())
	bias := randSlice(r, s.OutC)
	out := make([]float32, s.OutC*s.OutH()*s.OutW())
	col := make([]float32, s.ColRows()*s.ColCols())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Conv2DForward(out, img, w, bias, col, s)
	}
}

func TestMatMulBlockedEdgeSizes(t *testing.T) {
	// Dimensions straddling the 64x64x256 tile boundaries exercise every
	// partial-block path of the tiled kernels, including the SSE tail.
	r := rng.New(31)
	for _, dims := range [][3]int{{65, 257, 67}, {63, 260, 130}, {128, 513, 66}, {1, 259, 70}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(r, m*k), randSlice(r, k*n)
		c := make([]float32, m*n)
		MatMul(c, a, b, m, k, n)
		if d := maxAbsDiff(c, naiveMatMul(a, b, m, k, n)); d > 1e-3 {
			t.Errorf("MatMul(%v) max diff %v", dims, d)
		}
		bT := make([]float32, n*k)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				bT[j*k+p] = b[p*n+j]
			}
		}
		ct := make([]float32, m*n)
		MatMulTransB(ct, a, bT, m, k, n)
		if d := maxAbsDiff(ct, naiveMatMul(a, b, m, k, n)); d > 1e-3 {
			t.Errorf("MatMulTransB(%v) max diff %v", dims, d)
		}
	}
}

func TestPackUnpackBatchRoundTrip(t *testing.T) {
	r := rng.New(33)
	const c, hw, batch = 3, 10, 5
	imgs := make([][]float32, batch)
	for i := range imgs {
		imgs[i] = randSlice(r, c*hw)
	}
	packed := make([]float32, c*batch*hw)
	PackBatch(packed, imgs, c, hw)
	rows := make([]float32, batch*c*hw)
	UnpackBatch(rows, packed, c, hw, batch)
	for b := 0; b < batch; b++ {
		if d := maxAbsDiff(rows[b*c*hw:(b+1)*c*hw], imgs[b]); d != 0 {
			t.Fatalf("sample %d: roundtrip diff %v", b, d)
		}
	}
}

func TestConv2DForwardBatchMatchesSingle(t *testing.T) {
	r := rng.New(34)
	shapes := []Conv2DShape{
		{InC: 3, InH: 9, InW: 9, OutC: 8, KH: 3, KW: 3, PadH: 1, PadW: 1},
		{InC: 8, InH: 7, InW: 7, OutC: 5, KH: 1, KW: 1},
	}
	for _, s := range shapes {
		for _, batch := range []int{1, 2, 5} {
			w := randSlice(r, s.OutC*s.ColCols())
			bias := randSlice(r, s.OutC)
			imgs := make([][]float32, batch)
			for i := range imgs {
				imgs[i] = randSlice(r, s.InC*s.InH*s.InW)
			}
			imgLen := s.InH * s.InW
			packed := make([]float32, s.InC*batch*imgLen)
			PackBatch(packed, imgs, s.InC, imgLen)
			pix := s.ColRows()
			out := make([]float32, s.OutC*batch*pix)
			col := make([]float32, batch*pix*s.ColCols())
			Conv2DForwardBatch(out, packed, w, bias, col, s, batch)

			single := make([]float32, s.OutC*pix)
			scol := make([]float32, pix*s.ColCols())
			for b := 0; b < batch; b++ {
				Conv2DForward(single, imgs[b], w, bias, scol, s)
				for oc := 0; oc < s.OutC; oc++ {
					got := out[(oc*batch+b)*pix : (oc*batch+b+1)*pix]
					want := single[oc*pix : (oc+1)*pix]
					if d := maxAbsDiff(got, want); d > 1e-5 {
						t.Fatalf("shape %+v batch %d sample %d ch %d: diff %v", s, batch, b, oc, d)
					}
				}
			}
		}
	}
}
