//go:build !amd64

package tensor

// dot4 computes the four dot products of a against b0..b3, which must all
// share a's length. Portable fallback for the SSE micro-kernel in
// dot_amd64.s: the four accumulators still form independent dependency
// chains, so even scalar hardware overlaps the adds.
func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	for p, av := range a {
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return
}
