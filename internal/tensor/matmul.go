package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-accumulate operations
// below which MatMul runs single-threaded. Spawning goroutines for tiny
// matrices (e.g. the value head's 64x1 product) costs more than it saves.
const parallelThreshold = 1 << 16

// MatMul computes C = A * B for row-major matrices A (m x k) and B (k x n),
// writing into C (m x n). C must not alias A or B. Large products are
// parallelised across row blocks using one goroutine per available core.
func MatMul(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: MatMul buffer too small")
	}
	work := m * k * n
	procs := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || procs == 1 || m == 1 {
		matMulRange(c, a, b, 0, m, k, n)
		return
	}
	if procs > m {
		procs = m
	}
	var wg sync.WaitGroup
	chunk := (m + procs - 1) / procs
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(c, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo, hi) of C = A*B with an ikj loop order,
// which streams B rows sequentially and lets the compiler keep the
// accumulation row in cache.
func matMulRange(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A * B^T for A (m x k) and B (n x k), writing C
// (m x n). This is the natural layout for dense-layer forward passes where
// weights are stored (out, in).
func MatMulTransB(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: MatMulTransB buffer too small")
	}
	work := m * k * n
	procs := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || procs == 1 || m == 1 {
		matMulTransBRange(c, a, b, 0, m, k, n)
		return
	}
	if procs > m {
		procs = m
	}
	var wg sync.WaitGroup
	chunk := (m + procs - 1) / procs
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulTransBRange(c, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func matMulTransBRange(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
}

// MatMulTransA computes C = A^T * B for A (k x m) and B (k x n), writing C
// (m x n). This is the weight-gradient shape for dense layers
// (dW = dOut^T * in). C is overwritten.
func MatMulTransA(c, a, b []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: MatMulTransA buffer too small")
	}
	for x := 0; x < m*n; x++ {
		c[x] = 0
	}
	for p := 0; p < k; p++ {
		ap := a[p*m : (p+1)*m]
		bp := b[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// AddBiasRows adds bias (length n) to every row of the (rows x n) matrix m.
func AddBiasRows(m, bias []float32, rows, n int) {
	if len(bias) < n || len(m) < rows*n {
		panic("tensor: AddBiasRows buffer too small")
	}
	for r := 0; r < rows; r++ {
		row := m[r*n : (r+1)*n]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// BiasGradRows accumulates column sums of dOut (rows x n) into dBias.
func BiasGradRows(dBias, dOut []float32, rows, n int) {
	if len(dBias) < n || len(dOut) < rows*n {
		panic("tensor: BiasGradRows buffer too small")
	}
	for r := 0; r < rows; r++ {
		row := dOut[r*n : (r+1)*n]
		for j := range row {
			dBias[j] += row[j]
		}
	}
}
