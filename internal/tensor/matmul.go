package tensor

// parallelThreshold is the minimum number of multiply-accumulate operations
// below which a kernel runs single-threaded on the caller. Dispatching pool
// work for tiny matrices (e.g. the value head's 64x1 product) costs more
// than it saves.
const parallelThreshold = 1 << 16

// Cache-blocking tile sizes. A 64x64 float32 C tile (16 KiB) plus a 64x512
// panel of each operand fits comfortably in L2 while the 512-wide K panel
// keeps the register tile's four streamed rows (8 KiB) inside L1 between
// reuses. K blocks are deliberately wide: every extra K block costs another
// read-accumulate pass over the C tile and another round of sub-register-
// tile kernel calls, which showed up as real overhead for the network's
// k=324 im2col products when blockK was 256.
const (
	blockM = 64
	blockN = 64
	blockK = 512
)

// MatMul computes C = A * B for row-major matrices A (m x k) and B (k x n),
// writing into C (m x n). C must not alias A or B. Large products are
// tiled into cache blocks and parallelised across row blocks on the
// persistent worker pool.
func MatMul(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: MatMul buffer too small")
	}
	if m*k*n < parallelThreshold {
		matMulRange(c, a, b, 0, m, k, n)
		return
	}
	blocks := (m + blockM - 1) / blockM
	parallelBlocks(blocks, func(bi int) {
		lo := bi * blockM
		matMulRange(c, a, b, lo, min(lo+blockM, m), k, n)
	})
}

// matMulRange computes rows [lo, hi) of C = A*B, tiled over (k, n) blocks
// with a 4-row AXPY register tile (the dispatched axpy4 kernel): each step
// loads four A scalars and streams four B rows into one pass over the C row
// segment, so the floating-point adds form four independent dependency
// chains instead of one latency-bound chain — 8 lanes per FMA step on the
// AVX2 path.
func matMulRange(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
	}
	var ar [4]float32
	for p0 := 0; p0 < k; p0 += blockK {
		p1 := min(p0+blockK, k)
		for j0 := 0; j0 < n; j0 += blockN {
			j1 := min(j0+blockN, n)
			for i := lo; i < hi; i++ {
				ai := a[i*k : (i+1)*k]
				ci := c[i*n+j0 : i*n+j1]
				p := p0
				for ; p+4 <= p1; p += 4 {
					a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := b[p*n+j0 : p*n+j1]
					b1 := b[(p+1)*n+j0 : (p+1)*n+j1]
					b2 := b[(p+2)*n+j0 : (p+2)*n+j1]
					b3 := b[(p+3)*n+j0 : (p+3)*n+j1]
					ar[0], ar[1], ar[2], ar[3] = a0, a1, a2, a3
					axpy4(ci, &ar, b0, b1, b2, b3)
				}
				for ; p < p1; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					bp := b[p*n+j0 : p*n+j1]
					for j := range ci {
						ci[j] += av * bp[j]
					}
				}
			}
		}
	}
}

// MatMulTransB computes C = A * B^T for A (m x k) and B (n x k), writing C
// (m x n). This is the natural layout for dense-layer forward passes where
// weights are stored (out, in), and — via im2col — for every convolution in
// the network, so it is the hottest kernel in the codebase.
func MatMulTransB(c, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: MatMulTransB buffer too small")
	}
	if m*k*n < parallelThreshold || m == 1 {
		matMulTransBRange(c, a, b, 0, m, k, n)
		return
	}
	blocks := (m + blockM - 1) / blockM
	parallelBlocks(blocks, func(bi int) {
		lo := bi * blockM
		matMulTransBRange(c, a, b, lo, min(lo+blockM, m), k, n)
	})
}

// matMulTransBRange computes rows [lo, hi) of C = A*B^T, tiled over (n, k)
// blocks. The inner kernel produces four C columns per pass: one A load is
// amortised over four B rows and the four partial sums form independent
// dependency chains, which quadruples sustained FMA throughput over the
// naive single-accumulator dot product.
//
// Note the accumulation order for a C element depends on where its column
// falls relative to the j-blocking: columns in a full 4-wide group go
// through dot4's SIMD partial sums, the last n%4 columns of a block through
// the sequential scalar tail. Batched activations (n = B*pixels) therefore
// match single-sample results (n = pixels) only to float32 rounding
// tolerance, not bitwise; the nn property tests pin this at 1e-5.
func matMulTransBRange(c, a, b []float32, lo, hi, k, n int) {
	if k == 0 {
		// The p-block loop below would never run its first-block
		// initialising pass; keep the C = 0 contract explicit.
		for i := lo; i < hi; i++ {
			ci := c[i*n : (i+1)*n]
			for x := range ci {
				ci[x] = 0
			}
		}
		return
	}
	for j0 := 0; j0 < n; j0 += blockN {
		j1 := min(j0+blockN, n)
		for p0 := 0; p0 < k; p0 += blockK {
			p1 := min(p0+blockK, k)
			first := p0 == 0
			for i := lo; i < hi; i++ {
				ai := a[i*k+p0 : i*k+p1]
				ci := c[i*n : (i+1)*n]
				j := j0
				if dotTile8 != nil {
					for ; j+8 <= j1; j += 8 {
						out := dotTile8(ai, b[j*k+p0:], k)
						if first {
							copy(ci[j:j+8], out[:])
						} else {
							for x := range out {
								ci[j+x] += out[x]
							}
						}
					}
				}
				for ; j+4 <= j1; j += 4 {
					b0 := b[j*k+p0 : j*k+p1]
					b1 := b[(j+1)*k+p0 : (j+1)*k+p1]
					b2 := b[(j+2)*k+p0 : (j+2)*k+p1]
					b3 := b[(j+3)*k+p0 : (j+3)*k+p1]
					s0, s1, s2, s3 := dot4(ai, b0, b1, b2, b3)
					if first {
						ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
					} else {
						ci[j] += s0
						ci[j+1] += s1
						ci[j+2] += s2
						ci[j+3] += s3
					}
				}
				for ; j < j1; j++ {
					bj := b[j*k+p0 : j*k+p1]
					var sum float32
					for p, av := range ai {
						sum += av * bj[p]
					}
					if first {
						ci[j] = sum
					} else {
						ci[j] += sum
					}
				}
			}
		}
	}
}

// MatMulTransA computes C = A^T * B for A (k x m) and B (k x n), writing C
// (m x n). This is the weight-gradient shape for dense layers
// (dW = dOut^T * in). C is overwritten.
func MatMulTransA(c, a, b []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: MatMulTransA buffer too small")
	}
	for x := 0; x < m*n; x++ {
		c[x] = 0
	}
	for p := 0; p < k; p++ {
		ap := a[p*m : (p+1)*m]
		bp := b[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// AddBiasRows adds bias (length n) to every row of the (rows x n) matrix m.
func AddBiasRows(m, bias []float32, rows, n int) {
	if len(bias) < n || len(m) < rows*n {
		panic("tensor: AddBiasRows buffer too small")
	}
	for r := 0; r < rows; r++ {
		row := m[r*n : (r+1)*n]
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// BiasGradRows accumulates column sums of dOut (rows x n) into dBias.
func BiasGradRows(dBias, dOut []float32, rows, n int) {
	if len(dBias) < n || len(dOut) < rows*n {
		panic("tensor: BiasGradRows buffer too small")
	}
	for r := 0; r < rows; r++ {
		row := dOut[r*n : (r+1)*n]
		for j := range row {
			dBias[j] += row[j]
		}
	}
}
