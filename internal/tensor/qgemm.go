package tensor

// Quantized int8 GEMM. MatMulTransBQ8 is the serving-path counterpart of
// MatMulTransB: activations and weights are symmetric int8 quantizations
// (q = round(x/scale), no zero point), products accumulate exactly in
// int32, and the caller dequantizes with scaleA*scaleB[row]. Exact integer
// accumulation means every kernel implementation (generic Go, AVX2) must
// agree bitwise — the equivalence tests pin that, unlike the fp32 kernels'
// rounding-tolerance agreement.

// MatMulTransBQ8 computes C = A * B^T for int8 A (m x k) and B (n x k),
// writing int32 C (m x n). C must not alias A or B. Large products are
// parallelised across row blocks on the persistent worker pool.
func MatMulTransBQ8(c []int32, a, b []int8, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: MatMulTransBQ8 buffer too small")
	}
	if m*k*n < parallelThreshold || m == 1 {
		matMulTransBQ8Range(c, a, b, 0, m, k, n)
		return
	}
	blocks := (m + blockM - 1) / blockM
	parallelBlocks(blocks, func(bi int) {
		lo := bi * blockM
		matMulTransBQ8Range(c, a, b, lo, min(lo+blockM, m), k, n)
	})
}

// matMulTransBQ8Range computes rows [lo, hi) of C = A*B^T with the same
// 4-column register tile as the fp32 path. int8 rows are 4x denser than
// fp32 (a 1152-tap im2col row is 1.1 KiB), so the whole 4-row B tile stays
// in L1 without the fp32 path's explicit k-blocking.
func matMulTransBQ8Range(c []int32, a, b []int8, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		j := 0
		if dotQ8Tile8 != nil {
			for ; j+8 <= n; j += 8 {
				out := dotQ8Tile8(ai, b[j*k:], k)
				copy(ci[j:j+8], out[:])
			}
		}
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			ci[j], ci[j+1], ci[j+2], ci[j+3] = dotQ8(ai, b0, b1, b2, b3)
		}
		for ; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var sum int32
			for p, av := range ai {
				sum += int32(av) * int32(bj[p])
			}
			ci[j] = sum
		}
	}
}

// QuantizeSymmetric quantizes src into int8 dst with the symmetric scale:
// dst[i] = clamp(round(src[i]/scale), -127, 127). A scale <= 0 zeroes dst
// (an all-zero tensor has no meaningful scale).
func QuantizeSymmetric(dst []int8, src []float32, scale float32) {
	if len(dst) < len(src) {
		panic("tensor: QuantizeSymmetric dst too small")
	}
	if scale <= 0 {
		for i := range src {
			dst[i] = 0
		}
		return
	}
	inv := 1 / scale
	for i, v := range src {
		q := v * inv
		// round-half-away-from-zero without math.Round's call overhead
		if q >= 0 {
			q += 0.5
		} else {
			q -= 0.5
		}
		n := int32(q)
		if n > 127 {
			n = 127
		} else if n < -127 {
			n = -127
		}
		dst[i] = int8(n)
	}
}

// MaxAbs returns the largest absolute value in x (0 for empty x).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
