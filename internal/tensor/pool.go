package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernels in this package parallelise across row blocks. Spawning fresh
// goroutines per call (the original design) charges every conv layer of
// every batched inference a scheduler round-trip; with five GEMMs per
// forward pass that setup cost rivals the arithmetic for small boards. A
// persistent pool amortises it: GOMAXPROCS-1 workers started on first use,
// fed closures over an unbuffered-ish channel, with the launching goroutine
// always participating in its own kernel so a pool of zero workers
// (single-core hosts) degrades to plain inline execution.
var (
	poolOnce    sync.Once
	poolWorkers int
	poolTasks   chan func()
)

func startPool() {
	// Size the resident pool by physical cores so a temporarily lowered
	// GOMAXPROCS at first use (e.g. `go test -cpu=1,8`) doesn't permanently
	// strand the process single-threaded; parallelBlocks caps the helpers
	// it actually engages by the *current* GOMAXPROCS on every call.
	poolWorkers = runtime.NumCPU() - 1
	if poolWorkers < 0 {
		poolWorkers = 0
	}
	// Unbuffered: a send succeeds only while a worker is actually idle on
	// the receive, so a kernel never queues jobs behind another kernel's
	// work — the select-default below has the caller absorb them instead.
	poolTasks = make(chan func())
	for i := 0; i < poolWorkers; i++ {
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
}

// parallelBlocks runs fn(i) for every i in [0, blocks), sharing the work
// between the caller and the persistent pool. Work is claimed from an atomic
// counter so an early-finishing worker steals remaining blocks. If the pool
// is saturated by concurrent kernel launches the enqueue is skipped and the
// caller covers the blocks itself — correctness never depends on a worker
// picking the job up.
func parallelBlocks(blocks int, fn func(int)) {
	if blocks <= 0 {
		return
	}
	poolOnce.Do(startPool)
	if blocks == 1 || poolWorkers == 0 {
		for i := 0; i < blocks; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= blocks {
				return
			}
			fn(i)
		}
	}
	helpers := poolWorkers
	if p := runtime.GOMAXPROCS(0) - 1; helpers > p {
		helpers = p
	}
	if helpers > blocks-1 {
		helpers = blocks - 1
	}
	if helpers <= 0 {
		run()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < helpers; w++ {
		wg.Add(1)
		job := func() {
			defer wg.Done()
			run()
		}
		select {
		case poolTasks <- job:
		default:
			wg.Done() // pool busy with another kernel; caller absorbs the work
		}
	}
	run()
	wg.Wait()
}
