package tree

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/parmcts/parmcts/internal/rng"
)

func newTestTree(capacity int) *Tree {
	return New(DefaultConfig(), capacity)
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	New(DefaultConfig(), 0)
}

func TestRootProperties(t *testing.T) {
	tr := newTestTree(16)
	root := tr.Node(tr.Root())
	if root.Parent() != -1 {
		t.Error("root should have no parent")
	}
	if root.Expanded() {
		t.Error("fresh root should be unexpanded")
	}
	if tr.Allocated() != 1 {
		t.Errorf("allocated = %d, want 1", tr.Allocated())
	}
	if tr.SelectChild(tr.Root()) != -1 {
		t.Error("SelectChild on leaf should return -1")
	}
}

func TestExpandAndChildren(t *testing.T) {
	tr := newTestTree(16)
	ok := tr.Expand(tr.Root(), []int{3, 7, 9}, []float32{0.5, 0.3, 0.2})
	if !ok {
		t.Fatal("expand failed")
	}
	var actions []int
	var priors []float64
	tr.Children(tr.Root(), func(_ int32, nd *Node) {
		actions = append(actions, nd.Action())
		priors = append(priors, nd.Prior())
	})
	if len(actions) != 3 || actions[0] != 3 || actions[2] != 9 {
		t.Fatalf("children actions %v", actions)
	}
	if priors[0] != 0.5 {
		t.Fatalf("priors %v", priors)
	}
	if !tr.Node(tr.Root()).Expanded() {
		t.Error("root should be expanded")
	}
}

func TestExpandPanics(t *testing.T) {
	tr := newTestTree(16)
	for _, tc := range []struct {
		name    string
		actions []int
		priors  []float32
	}{
		{"empty", nil, nil},
		{"mismatch", []int{1, 2}, []float32{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tr.Expand(tr.Root(), tc.actions, tc.priors)
		}()
	}
}

func TestDoubleExpandIsNoOp(t *testing.T) {
	tr := newTestTree(32)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.6, 0.4})
	before := tr.Allocated()
	if !tr.Expand(tr.Root(), []int{5, 6, 7}, []float32{0.3, 0.3, 0.4}) {
		t.Fatal("second expand should report success (no-op)")
	}
	if tr.Allocated() != before {
		t.Fatal("second expand allocated nodes")
	}
	var acts []int
	tr.Children(tr.Root(), func(_ int32, nd *Node) { acts = append(acts, nd.Action()) })
	if len(acts) != 2 || acts[0] != 0 {
		t.Fatalf("children changed: %v", acts)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	tr := newTestTree(3) // root + 2 children max
	if !tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5}) {
		t.Fatal("first expand should fit")
	}
	child := tr.Node(tr.Root()).firstChild.Load()
	if tr.Expand(child, []int{0, 1}, []float32{0.5, 0.5}) {
		t.Fatal("expand should fail when arena is full")
	}
	if !tr.Full() {
		t.Error("Full() should be true after rejection")
	}
}

func TestSuggestCapacity(t *testing.T) {
	if c := SuggestCapacity(1600, 225); c != 1600*225+226 {
		t.Fatalf("SuggestCapacity = %d", c)
	}
}

func TestBackupSingleLevel(t *testing.T) {
	tr := newTestTree(16)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	child := tr.Node(tr.Root()).firstChild.Load()
	// leaf value +0.8 from the leaf mover's perspective; the edge into the
	// leaf belongs to the parent mover, so the child's W gets -0.8.
	tr.Backup(child, 0.8, false)
	c := tr.Node(child)
	if c.Visits() != 1 {
		t.Fatalf("child visits = %d", c.Visits())
	}
	if math.Abs(c.TotalValue()+0.8) > 1e-5 {
		t.Fatalf("child W = %v, want -0.8", c.TotalValue())
	}
	root := tr.Node(tr.Root())
	if root.Visits() != 1 {
		t.Fatalf("root visits = %d", root.Visits())
	}
	if math.Abs(root.TotalValue()-0.8) > 1e-5 {
		t.Fatalf("root W = %v, want +0.8 (sign alternates)", root.TotalValue())
	}
	if math.Abs(c.Q()+0.8) > 1e-5 {
		t.Fatalf("Q = %v", c.Q())
	}
}

func TestBackupDeepAlternation(t *testing.T) {
	tr := newTestTree(64)
	idx := tr.Root()
	var path []int32
	for d := 0; d < 4; d++ {
		tr.Expand(idx, []int{0}, []float32{1})
		idx = tr.Node(idx).firstChild.Load()
		path = append(path, idx)
	}
	tr.Backup(idx, 1.0, false)
	want := -1.0
	for i := len(path) - 1; i >= 0; i-- {
		got := tr.Node(path[i]).TotalValue()
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("depth %d: W = %v, want %v", i+1, got, want)
		}
		want = -want
	}
}

func TestVirtualLossAppliedAndRestored(t *testing.T) {
	tr := newTestTree(16)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	child := tr.Node(tr.Root()).firstChild.Load()
	tr.ApplyVirtualLoss(tr.Root(), false)
	tr.ApplyVirtualLoss(child, false)
	if tr.Node(child).VirtualLossCount() != 1 {
		t.Fatal("VL not applied")
	}
	if tr.OutstandingVirtualLoss() != 2 {
		t.Fatalf("outstanding VL = %d", tr.OutstandingVirtualLoss())
	}
	tr.Backup(child, 0.5, false)
	if tr.OutstandingVirtualLoss() != 0 {
		t.Fatalf("VL not restored: %d", tr.OutstandingVirtualLoss())
	}
}

func TestVirtualLossDivertsSelection(t *testing.T) {
	// With equal priors, a worker that marks a child in-flight must push
	// the next selection to a different child — the whole point of VL.
	for _, mode := range []VirtualLossMode{VLConstant, VLUnobserved} {
		cfg := DefaultConfig()
		cfg.VLMode = mode
		tr := New(cfg, 16)
		tr.Expand(tr.Root(), []int{0, 1, 2}, []float32{0.34, 0.33, 0.33})
		first := tr.SelectChild(tr.Root())
		tr.ApplyVirtualLoss(first, false)
		second := tr.SelectChild(tr.Root())
		if second == first {
			t.Errorf("mode %v: selection did not divert", mode)
		}
	}
}

func TestSelectChildPrefersPriorThenValue(t *testing.T) {
	tr := newTestTree(16)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.9, 0.1})
	first := tr.SelectChild(tr.Root())
	if tr.Node(first).Action() != 0 {
		t.Fatal("unvisited selection should follow the prior")
	}
	// Feed child 0 terrible outcomes; child 1 great outcomes.
	c0 := tr.Node(tr.Root()).firstChild.Load()
	c1 := c0 + 1
	for i := 0; i < 50; i++ {
		tr.Backup(c0, 1, false)  // leaf mover wins => bad for parent
		tr.Backup(c1, -1, false) // leaf mover loses => good for parent
	}
	best := tr.SelectChild(tr.Root())
	if tr.Node(best).Action() != 1 {
		t.Fatal("selection should follow Q once visits dominate")
	}
}

func TestMarkTerminal(t *testing.T) {
	tr := newTestTree(16)
	tr.MarkTerminal(tr.Root(), -1)
	root := tr.Node(tr.Root())
	if !root.Terminal() || root.TerminalValue() != -1 {
		t.Fatal("terminal mark lost")
	}
}

func TestVisitDistribution(t *testing.T) {
	tr := newTestTree(16)
	dst := make([]float32, 4)
	if total := tr.VisitDistribution(dst); total != 0 {
		t.Fatal("empty tree should have zero visits")
	}
	tr.Expand(tr.Root(), []int{0, 2}, []float32{0.5, 0.5})
	c0 := tr.Node(tr.Root()).firstChild.Load()
	for i := 0; i < 3; i++ {
		tr.Backup(c0, 0, false)
	}
	tr.Backup(c0+1, 0, false)
	total := tr.VisitDistribution(dst)
	if total != 4 {
		t.Fatalf("total = %d", total)
	}
	if math.Abs(float64(dst[0]-0.75)) > 1e-6 || math.Abs(float64(dst[2]-0.25)) > 1e-6 {
		t.Fatalf("distribution = %v", dst)
	}
	if dst[1] != 0 || dst[3] != 0 {
		t.Fatalf("unvisited actions should be 0: %v", dst)
	}
}

func TestResetReusesArena(t *testing.T) {
	tr := newTestTree(16)
	tr.Expand(tr.Root(), []int{0}, []float32{1})
	tr.Backup(tr.Node(tr.Root()).firstChild.Load(), 1, false)
	tr.Reset()
	if tr.Allocated() != 1 {
		t.Fatalf("allocated after reset = %d", tr.Allocated())
	}
	root := tr.Node(tr.Root())
	if root.Visits() != 0 || root.Expanded() {
		t.Fatal("root stats not cleared")
	}
}

func TestPathLengthAndMaxDepth(t *testing.T) {
	tr := newTestTree(16)
	idx := tr.Root()
	for d := 0; d < 3; d++ {
		tr.Expand(idx, []int{0}, []float32{1})
		idx = tr.Node(idx).firstChild.Load()
	}
	if got := tr.PathLength(idx); got != 3 {
		t.Fatalf("PathLength = %d", got)
	}
	if got := tr.MaxDepth(); got != 3 {
		t.Fatalf("MaxDepth = %d", got)
	}
}

// TestSearchInvariantsProperty drives a random single-threaded
// select/expand/backup loop and asserts the structural invariants the
// engines rely on.
func TestSearchInvariantsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		tr := New(DefaultConfig(), 4096)
		playouts := 100 + r.Intn(100)
		fanout := 2 + r.Intn(4)
		for p := 0; p < playouts; p++ {
			idx := tr.Root()
			tr.ApplyVirtualLoss(idx, false)
			for tr.Node(idx).Expanded() {
				idx = tr.SelectChild(idx)
				tr.ApplyVirtualLoss(idx, false)
			}
			actions := make([]int, fanout)
			priors := make([]float32, fanout)
			for i := range actions {
				actions[i] = i
				priors[i] = 1 / float32(fanout)
			}
			tr.Expand(idx, actions, priors)
			tr.Backup(idx, r.Float64()*2-1, false)
		}
		if tr.OutstandingVirtualLoss() != 0 {
			return false
		}
		if tr.Node(tr.Root()).Visits() != playouts {
			return false
		}
		// Every node's visits must be >= the sum of its children's visits
		// (each backup targets exactly one leaf inside the subtree).
		okInv := true
		for i := 0; i < tr.Allocated(); i++ {
			var childSum int
			tr.Children(int32(i), func(_ int32, nd *Node) { childSum += nd.Visits() })
			if tr.Node(int32(i)).Visits() < childSum {
				okInv = false
			}
		}
		return okInv
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSharedOps hammers the locked code paths from many
// goroutines; run with -race to validate the synchronisation story.
func TestConcurrentSharedOps(t *testing.T) {
	tr := New(DefaultConfig(), 1<<16)
	tr.Expand(tr.Root(), []int{0, 1, 2, 3}, []float32{0.25, 0.25, 0.25, 0.25})
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < iters; i++ {
				idx := tr.Root()
				tr.ApplyVirtualLoss(idx, true)
				for tr.Node(idx).Expanded() {
					idx = tr.SelectChild(idx)
					tr.ApplyVirtualLoss(idx, true)
				}
				tr.Expand(idx, []int{0, 1}, []float32{0.5, 0.5})
				tr.Backup(idx, r.Float64()*2-1, true)
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := tr.Node(tr.Root()).Visits(); got != workers*iters {
		t.Fatalf("root visits = %d, want %d", got, workers*iters)
	}
	if tr.OutstandingVirtualLoss() != 0 {
		t.Fatalf("outstanding VL = %d", tr.OutstandingVirtualLoss())
	}
}

func BenchmarkSelectChild64(b *testing.B) {
	tr := newTestTree(128)
	actions := make([]int, 64)
	priors := make([]float32, 64)
	for i := range actions {
		actions[i] = i
		priors[i] = 1.0 / 64
	}
	tr.Expand(tr.Root(), actions, priors)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.SelectChild(tr.Root())
	}
}

func BenchmarkBackupDepth10(b *testing.B) {
	tr := newTestTree(1024)
	idx := tr.Root()
	for d := 0; d < 10; d++ {
		tr.Expand(idx, []int{0}, []float32{1})
		idx = tr.Node(idx).firstChild.Load()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Backup(idx, 0.5, false)
	}
}
