// Transposition support: a lock-striped table mapping Zobrist hash (plus a
// full-state verification key) to shared per-state statistics and cached
// evaluations, turning the per-session tree into a transposition-sharing
// DAG. Distinct search lines that reach the same position attach their tree
// node to the same TransEntry, so they converge on one pool of visit
// statistics and one DNN evaluation instead of re-buying both.
//
// The table stores *state* values (from the perspective of the player to
// move at the state), while tree edges store *edge* values (parent's
// perspective). Selection uses the shared state statistics for Q — the
// UCT2-style "shared value, local exploration" rule of
// transposition-table MCTS (Childs et al.) — while the exploration term
// keeps the local edge counts so PUCT's progressive widening along each
// in-edge stays intact. See score() in tree.go for the DAG branch.
package tree

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// StateStats are the shared per-state search statistics: every tree edge
// attached to the same TransEntry contributes its backups here. Values are
// stored from the perspective of the player to move AT the state (the
// negation of the owning edges' parent perspective), fixed-point wScale
// like Node.w.
type StateStats struct {
	n  atomic.Int32 // completed backups through any in-edge
	vl atomic.Int32 // outstanding in-flight traversals across all in-edges
	w  atomic.Int64 // accumulated value, state-mover perspective, ×wScale
}

// Visits returns the shared visit count.
func (s *StateStats) Visits() int { return int(s.n.Load()) }

// VirtualLossCount returns the outstanding in-flight traversals summed over
// every in-edge.
func (s *StateStats) VirtualLossCount() int { return int(s.vl.Load()) }

// TotalValue returns the accumulated value from the state mover's
// perspective.
func (s *StateStats) TotalValue() float64 { return float64(s.w.Load()) / wScale }

// TransEntry is one transposition-table entry: the shared statistics plus
// the cached DNN evaluation of the state (clean priors, pre-noise).
type TransEntry struct {
	stats StateStats

	mu      sync.Mutex
	hasEval bool
	value   float64
	acts    []int16
	priors  []float32
}

// Stats returns the shared per-state statistics block.
func (e *TransEntry) Stats() *StateStats { return &e.stats }

// StoreEval records the state's evaluation: the DNN value plus the masked,
// normalised, noise-free priors over the legal actions. First writer wins;
// later calls are no-ops (racing workers evaluated the same state — the
// results are interchangeable, and keeping the first preserves
// determinism for single-threaded engines).
func (e *TransEntry) StoreEval(value float64, actions []int, priors []float32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.hasEval {
		return
	}
	e.acts = make([]int16, len(actions))
	for i, a := range actions {
		e.acts[i] = int16(a)
	}
	e.priors = append([]float32(nil), priors...)
	e.value = value
	e.hasEval = true
}

// LoadEval copies the cached evaluation into the caller's scratch slices
// (reallocated only if too small) and returns the value and the filled
// slices. ok is false when no evaluation has been stored yet.
func (e *TransEntry) LoadEval(acts []int, priors []float32) (value float64, actions []int, pr []float32, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.hasEval {
		return 0, acts, priors, false
	}
	k := len(e.acts)
	if cap(acts) < k {
		acts = make([]int, k)
	}
	acts = acts[:k]
	if cap(priors) < k {
		priors = make([]float32, k)
	}
	priors = priors[:k]
	for i, a := range e.acts {
		acts[i] = int(a)
	}
	copy(priors, e.priors)
	return e.value, acts, priors, true
}

// HasEval reports whether an evaluation has been stored.
func (e *TransEntry) HasEval() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hasEval
}

// transSlot binds a verification key to its entry. The verify bytes are the
// state's canonical identity (game.StateKey); two states hashing to the
// same Zobrist key but differing in verify are never merged.
type transSlot struct {
	verify  []byte
	entry   *TransEntry
	touched bool // clock/second-chance reference bit
}

// transShard is one lock stripe of the table, shaped like evaluate's
// cacheShard: a bounded map with clock (second-chance) eviction driven by a
// ring of keys.
type transShard struct {
	capacity int

	mu         sync.Mutex
	entries    map[uint64]*transSlot
	ring       []uint64
	hand       int
	hits       uint64
	misses     uint64
	collisions uint64
	evictions  uint64
	// Pad to a cache line so shard counters don't false-share.
	_ [40]byte
}

// TransStats is an aggregated snapshot of table effectiveness.
type TransStats struct {
	Hits       uint64 // verified lookups that found an existing entry
	Misses     uint64 // lookups that inserted a fresh entry
	Collisions uint64 // hash present but verification key differed (replaced)
	Evictions  uint64 // entries reclaimed by the clock hand
	Entries    int    // current resident entries
}

// HitRate returns Hits / (Hits + Misses), 0 when idle.
func (s TransStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// TransTable is the lock-striped transposition table. It is safe for
// concurrent use by many engines (the fleet-shared configuration) as well
// as a single session.
type TransTable struct {
	shards []transShard
	mask   uint64
}

// transMinPerShard keeps shards from degenerating into tiny maps when the
// configured capacity is small.
const transMinPerShard = 256

// transDefaultShards is the stripe count for large tables.
const transDefaultShards = 64

// NewTransTable creates a table bounded at roughly capacity entries, with a
// stripe count derived from the capacity (one shard per transMinPerShard
// entries, capped at transDefaultShards).
func NewTransTable(capacity int) *TransTable {
	shards := capacity / transMinPerShard
	if shards < 1 {
		shards = 1
	}
	if shards > transDefaultShards {
		shards = transDefaultShards
	}
	return NewTransTableSharded(capacity, shards)
}

// NewTransTableSharded creates a table with an explicit stripe count
// (rounded up to a power of two so shard selection is a mask).
func NewTransTableSharded(capacity, shards int) *TransTable {
	if capacity < 1 {
		panic("tree: transposition table capacity must be at least 1")
	}
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	per := (capacity + pow - 1) / pow
	if per < 1 {
		per = 1
	}
	t := &TransTable{shards: make([]transShard, pow), mask: uint64(pow - 1)}
	for i := range t.shards {
		s := &t.shards[i]
		s.capacity = per
		s.entries = make(map[uint64]*transSlot, per)
		s.ring = make([]uint64, 0, per)
	}
	return t
}

// shardFor mixes the hash before striping so that Zobrist keys sharing low
// bits spread across shards independently of the in-shard map distribution.
func (t *TransTable) shardFor(hash uint64) *transShard {
	h := hash
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &t.shards[h&t.mask]
}

// Acquire returns the entry for (hash, verify), creating one on miss. The
// verification key is compared byte-for-byte on every hash hit: a mismatch
// means a true Zobrist collision, and the resident entry is REPLACED with a
// fresh one rather than shared — two distinct positions must never merge,
// whatever the hash says. hit reports whether an existing verified entry
// was returned.
//
// The verify slice is copied on insert; callers may reuse their scratch.
func (t *TransTable) Acquire(hash uint64, verify []byte) (entry *TransEntry, hit bool) {
	s := t.shardFor(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.entries[hash]; ok {
		if bytes.Equal(slot.verify, verify) {
			slot.touched = true
			s.hits++
			return slot.entry, true
		}
		// Genuine 64-bit collision: evict the resident state. The two
		// positions cannot share a slot keyed by hash alone, and the newer
		// one is the live line.
		s.collisions++
		slot.verify = append(slot.verify[:0], verify...)
		slot.entry = &TransEntry{}
		slot.touched = true
		return slot.entry, false
	}
	s.misses++
	if len(s.entries) >= s.capacity {
		s.evictLocked()
	}
	slot := &transSlot{
		verify:  append([]byte(nil), verify...),
		entry:   &TransEntry{},
		touched: false,
	}
	s.entries[hash] = slot
	s.ring = append(s.ring, hash)
	return slot.entry, false
}

// Lookup returns the verified entry for (hash, verify) without inserting,
// or nil when absent or failing verification.
func (t *TransTable) Lookup(hash uint64, verify []byte) *TransEntry {
	s := t.shardFor(hash)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.entries[hash]; ok && bytes.Equal(slot.verify, verify) {
		slot.touched = true
		s.hits++
		return slot.entry
	}
	return nil
}

// evictLocked advances the clock hand until a second-chance victim falls
// out. Called with the shard lock held.
func (s *transShard) evictLocked() {
	for len(s.entries) >= s.capacity && len(s.ring) > 0 {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		key := s.ring[s.hand]
		slot, ok := s.entries[key]
		if !ok {
			// Stale ring key (already evicted); compact it away.
			s.ring[s.hand] = s.ring[len(s.ring)-1]
			s.ring = s.ring[:len(s.ring)-1]
			continue
		}
		if slot.touched {
			slot.touched = false
			s.hand++
			continue
		}
		delete(s.entries, key)
		s.evictions++
		s.ring[s.hand] = s.ring[len(s.ring)-1]
		s.ring = s.ring[:len(s.ring)-1]
	}
}

// Stats aggregates counters across shards.
func (t *TransTable) Stats() TransStats {
	var out TransStats
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Collisions += s.collisions
		out.Evictions += s.evictions
		out.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return out
}

// Len returns the resident entry count.
func (t *TransTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Shards returns the stripe count.
func (t *TransTable) Shards() int { return len(t.shards) }

// Reset empties the table and zeroes the counters. Callers must ensure no
// search is in flight (the fleet does this at SGD boundaries, alongside the
// eval-cache reset: a weight update invalidates every cached evaluation,
// and the stale shared statistics would bias the next round's search).
func (t *TransTable) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.entries = make(map[uint64]*transSlot, s.capacity)
		s.ring = s.ring[:0]
		s.hand = 0
		s.hits, s.misses, s.collisions, s.evictions = 0, 0, 0, 0
		s.mu.Unlock()
	}
}

// OutstandingVirtualLoss sums the shared virtual-loss counters over every
// resident entry. Like Tree.OutstandingVirtualLoss it must be zero whenever
// no search is in flight (fuzzed by FuzzTransposeTable).
func (t *TransTable) OutstandingVirtualLoss() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, slot := range s.entries {
			total += int(slot.entry.stats.vl.Load())
		}
		s.mu.Unlock()
	}
	return total
}

// DefaultTransTableSize is the per-session table budget used when a
// -transpose flag enables the table without an explicit entry count.
const DefaultTransTableSize = 1 << 16

// ParseTransposeSpec parses the -transpose flag value shared by the
// binaries: "off" (or "") disables the table, "on" enables it at
// DefaultTransTableSize entries, and "on:<n>" or a bare "<n>" sets an
// explicit entry budget. Returns the entry count (0 = disabled).
func ParseTransposeSpec(spec string) (int, error) {
	switch spec {
	case "", "off", "0", "false":
		return 0, nil
	case "on", "true":
		return DefaultTransTableSize, nil
	}
	v := spec
	if rest, ok := strings.CutPrefix(spec, "on:"); ok {
		v = rest
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad -transpose value %q: want off, on, on:<entries>, or <entries>", spec)
	}
	return n, nil
}

// ResolveTransposeFlag is the shared -transpose flag helper for the
// binaries (the games.ResolveFlag pattern): parse the spec into an entry
// budget, or print the error under the binary's name and exit 2.
func ResolveTransposeFlag(binary, spec string) int {
	n, err := ParseTransposeSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", binary, err)
		os.Exit(2)
	}
	return n
}

// TransposeFlagHelp is the usage string for the shared -transpose flag.
func TransposeFlagHelp() string {
	return fmt.Sprintf("transposition-sharing DAG search: off, on, or on:<entries> (default budget %d)", DefaultTransTableSize)
}
