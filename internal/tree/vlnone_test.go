package tree

import (
	"sync"
	"testing"
)

func TestVLNoneDoesNotDivert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VLMode = VLNone
	tr := New(cfg, 16)
	tr.Expand(tr.Root(), []int{0, 1, 2}, []float32{0.34, 0.33, 0.33})
	first := tr.SelectChild(tr.Root())
	tr.ApplyVirtualLoss(first, false)
	tr.ApplyVirtualLoss(first, false)
	if second := tr.SelectChild(tr.Root()); second != first {
		t.Fatal("VLNone must ignore in-flight traversals during selection")
	}
}

// TestVLNoneParentVisitsExcludeInFlight pins the second half of the VLNone
// contract: in-flight traversals must not leak into the parent visit total
// either, or they would scale every child's exploration bonus and a
// one-worker parallel engine could not reproduce the serial search. The
// scenario gives two children different Q values so a sqrt(parent) change
// flips the PUCT winner.
func TestVLNoneParentVisitsExcludeInFlight(t *testing.T) {
	build := func(mode VirtualLossMode) *Tree {
		cfg := DefaultConfig()
		cfg.VLMode = mode
		tr := New(cfg, 16)
		tr.Expand(tr.Root(), []int{0, 1}, []float32{0.9, 0.1})
		// Child 0: popular but losing. Child 1: rarely tried, winning.
		c0 := tr.Node(tr.Root()).firstChild.Load()
		for i := 0; i < 8; i++ {
			tr.Backup(c0, 1, false) // leaf value +1 backs up as -1 to the edge
		}
		tr.Backup(c0+1, -1, false)
		return tr
	}
	tr := build(VLNone)
	baseline := tr.SelectChild(tr.Root())
	// Pile virtual loss onto the ROOT (as an in-flight rollout would).
	for i := 0; i < 64; i++ {
		tr.ApplyVirtualLoss(tr.Root(), false)
	}
	if got := tr.SelectChild(tr.Root()); got != baseline {
		t.Fatal("VLNone selection changed when root virtual loss inflated parent visits")
	}
	// Sanity: under VLConstant the same pressure IS visible (the mode
	// difference is real, not vacuous).
	trC := build(VLConstant)
	beforeC := trC.score(float64(trC.Node(trC.Root()).n.Load()), trC.Node(trC.Node(trC.Root()).firstChild.Load()))
	for i := 0; i < 64; i++ {
		trC.ApplyVirtualLoss(trC.Root(), false)
	}
	root := trC.Node(trC.Root())
	afterC := trC.score(float64(root.n.Load()+root.vl.Load()), trC.Node(root.firstChild.Load()))
	if beforeC == afterC {
		t.Fatal("VLConstant scoring ignored parent virtual loss entirely")
	}
}

func TestDoubleExpansionsCounter(t *testing.T) {
	tr := New(DefaultConfig(), 64)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	if got := tr.DoubleExpansions(); got != 0 {
		t.Fatalf("fresh expansion counted as duplicate: %d", got)
	}
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	if got := tr.DoubleExpansions(); got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
	tr.Reset()
	if got := tr.DoubleExpansions(); got != 0 {
		t.Fatalf("Reset did not clear duplicates: %d", got)
	}
}

func TestDoubleExpansionsUnderRace(t *testing.T) {
	// W workers all race to expand the same fresh leaf: exactly one wins,
	// W-1 duplicates are counted.
	tr := New(DefaultConfig(), 1<<10)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Expand(tr.Root(), []int{0, 1, 2}, []float32{0.4, 0.3, 0.3})
		}()
	}
	wg.Wait()
	if got := tr.DoubleExpansions(); got != workers-1 {
		t.Fatalf("duplicates = %d, want %d", got, workers-1)
	}
	if got := tr.Allocated(); got != 4 { // root + 3 children, once
		t.Fatalf("allocated = %d, want 4", got)
	}
}
