package tree

import (
	"sync"
	"testing"
)

func TestVLNoneDoesNotDivert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VLMode = VLNone
	tr := New(cfg, 16)
	tr.Expand(tr.Root(), []int{0, 1, 2}, []float32{0.34, 0.33, 0.33})
	first := tr.SelectChild(tr.Root())
	tr.ApplyVirtualLoss(first, false)
	tr.ApplyVirtualLoss(first, false)
	if second := tr.SelectChild(tr.Root()); second != first {
		t.Fatal("VLNone must ignore in-flight traversals during selection")
	}
}

func TestDoubleExpansionsCounter(t *testing.T) {
	tr := New(DefaultConfig(), 64)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	if got := tr.DoubleExpansions(); got != 0 {
		t.Fatalf("fresh expansion counted as duplicate: %d", got)
	}
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	if got := tr.DoubleExpansions(); got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
	tr.Reset()
	if got := tr.DoubleExpansions(); got != 0 {
		t.Fatalf("Reset did not clear duplicates: %d", got)
	}
}

func TestDoubleExpansionsUnderRace(t *testing.T) {
	// W workers all race to expand the same fresh leaf: exactly one wins,
	// W-1 duplicates are counted.
	tr := New(DefaultConfig(), 1<<10)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Expand(tr.Root(), []int{0, 1, 2}, []float32{0.4, 0.3, 0.3})
		}()
	}
	wg.Wait()
	if got := tr.DoubleExpansions(); got != workers-1 {
		t.Fatalf("duplicates = %d, want %d", got, workers-1)
	}
	if got := tr.Allocated(); got != 4 { // root + 3 children, once
		t.Fatalf("allocated = %d, want 4", got)
	}
}
