// Package tree implements the Monte-Carlo search tree shared by all engine
// variants. Following the paper (Section 4.2), the tree is "managed as a
// dynamically allocated array of node structs": nodes live in a
// preallocated arena and refer to each other by index, which keeps the
// structure compact, cache-friendly for the local-tree scheme, and free of
// pointer-chasing allocation during search.
//
// Mutable per-node statistics (visit count N, accumulated value W, virtual
// loss VL) are stored atomically so the shared-tree scheme's selection phase
// can read them without locks, while expansion and the multi-field
// virtual-loss/backup updates take the per-node mutex exactly as Algorithm 2
// describes ("obtain lock ... release lock").
package tree

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// wScale converts float64 values into fixed-point int64 so W can be updated
// with atomic adds. Values are bounded by the playout count (<= millions),
// so 2^20 fractional bits cannot overflow int64 in any realistic search.
const wScale = 1 << 20

// nilNode marks an absent node reference.
const nilNode int32 = -1

// VirtualLossMode selects how in-flight traversals discourage path
// collisions between parallel workers.
type VirtualLossMode int

// Virtual-loss variants referenced in Section 2.1: a pre-defined constant
// penalty (Chaslot et al.) or a visit-count-style correction that treats
// in-flight evaluations as already-counted visits (WU-UCT).
const (
	// VLConstant subtracts a constant loss per in-flight traversal.
	VLConstant VirtualLossMode = iota
	// VLUnobserved counts in-flight traversals as visits without biasing Q
	// (the "watch the unobserved" correction).
	VLUnobserved
	// VLNone disables virtual loss entirely: in-flight traversals do not
	// influence selection at all. This is the no-diversification baseline
	// used by the ablation studies; parallel workers will pile onto the
	// same paths and duplicate evaluations.
	VLNone
)

// Config holds the search-tree hyper-parameters of Equation 1.
type Config struct {
	// CPuct is the exploration constant c in Equation 1.
	CPuct float64
	// VirtualLoss is the per-traversal penalty magnitude for VLConstant.
	VirtualLoss float64
	// VLMode selects the virtual-loss variant.
	VLMode VirtualLossMode
}

// DefaultConfig returns the hyper-parameters used by the evaluation.
func DefaultConfig() Config {
	return Config{CPuct: 5.0, VirtualLoss: 1.0, VLMode: VLConstant}
}

// Node is one tree node. The edge statistics (N, W, P) describe the edge
// from the node's parent to this node, following the usual AlphaZero
// formulation of Q(s,a)/N(s,a)/P(s,a).
type Node struct {
	mu sync.Mutex

	parent int32 // arena index of the parent, nilNode for the root
	action int32 // action that leads from the parent to this node

	firstChild  atomic.Int32 // arena index of the first child; nilNode while unexpanded
	numChildren int32

	prior float32 // P(s,a) from the parent's DNN policy

	n  atomic.Int32 // N(s,a): completed visits
	vl atomic.Int32 // outstanding virtual-loss traversals
	w  atomic.Int64 // W(s,a): accumulated value, fixed-point wScale

	// stats, when non-nil, points at the transposition table's shared
	// per-state statistics for the position this node represents. Selection
	// then reads Q from the shared pool (every in-edge across every
	// attached tree contributes) while the local n/vl/w keep per-edge
	// accounting for the exploration term — the DAG-UCT split documented in
	// transpose.go.
	stats atomic.Pointer[StateStats]

	terminal  bool    // the game ends at this node
	termValue float64 // outcome from the perspective of the player to move here
}

// Parent returns the parent index, or -1 for the root.
func (nd *Node) Parent() int32 { return nd.parent }

// Action returns the action leading into this node.
func (nd *Node) Action() int { return int(nd.action) }

// Prior returns P(s,a).
func (nd *Node) Prior() float64 { return float64(nd.prior) }

// Visits returns N(s,a).
func (nd *Node) Visits() int { return int(nd.n.Load()) }

// VirtualLossCount returns the number of in-flight traversals through the
// node's edge.
func (nd *Node) VirtualLossCount() int { return int(nd.vl.Load()) }

// TotalValue returns W(s,a).
func (nd *Node) TotalValue() float64 { return float64(nd.w.Load()) / wScale }

// Q returns the mean action value W/N (0 when unvisited).
func (nd *Node) Q() float64 {
	n := nd.n.Load()
	if n == 0 {
		return 0
	}
	return float64(nd.w.Load()) / wScale / float64(n)
}

// Expanded reports whether children have been attached.
func (nd *Node) Expanded() bool { return nd.firstChild.Load() != nilNode }

// SharedStats returns the transposition entry's statistics attached to this
// node, or nil when the node is not transposition-linked.
func (nd *Node) SharedStats() *StateStats { return nd.stats.Load() }

// Terminal reports whether the node is a game-over state.
func (nd *Node) Terminal() bool { return nd.terminal }

// TerminalValue returns the game outcome recorded at a terminal node, from
// the perspective of the player to move there.
func (nd *Node) TerminalValue() float64 { return nd.termValue }

// Tree is an arena of nodes plus the scoring configuration.
type Tree struct {
	cfg   Config
	nodes []Node
	// next is the allocation cursor; accessed under allocMu in shared mode.
	next    int32
	allocMu sync.Mutex
	root    int32
	full    atomic.Bool
	// doubleExpand counts Expand calls that found the node already
	// expanded by a racing worker — each one is a wasted (duplicate) DNN
	// evaluation, the quantity virtual loss exists to minimise. The counter
	// is cumulative across RebaseRoot generations (a rollout that straddles
	// a rebase still lands in the total) and cleared only by Reset;
	// genWastedBase snapshots it at each generation boundary so per-move
	// attribution stays exact.
	doubleExpand  atomic.Int64
	genWastedBase atomic.Int64
	// generation counts root epochs: it advances on every Reset and every
	// successful RebaseRoot, tagging which root a counter reading or an
	// in-flight rollout belongs to.
	generation atomic.Uint64
	// remap is the old-index -> new-index scratch used by RebaseRoot's
	// compaction; allocated once per tree (arena recycling, no per-move
	// garbage).
	remap []int32
	// priorScratch backs RemixRootPriors.
	priorScratch []float32
}

// RebaseStats reports what one RebaseRoot promotion preserved: the paper's
// evaluation currency is DNN evaluations per playout, and RetainedVisits is
// exactly the number of completed playouts whose evaluations the next move's
// search inherits instead of re-buying from the device.
type RebaseStats struct {
	// RetainedNodes is the size of the promoted subtree (including the new
	// root).
	RetainedNodes int
	// RetainedVisits is N(new root): completed rollouts preserved across
	// the move.
	RetainedVisits int
	// DiscardedNodes counts the abandoned sibling-subtree slots the
	// compaction reclaimed.
	DiscardedNodes int
	// Generation is the tree generation after the rebase.
	Generation uint64
}

// New creates a tree with storage for capacity nodes and installs a fresh
// root. Capacity is fixed for the lifetime of the tree: growing the arena
// would move nodes under concurrent readers. Size it as
// playouts*avgFanout+1 (see SuggestCapacity).
func New(cfg Config, capacity int) *Tree {
	if capacity < 1 {
		panic("tree: capacity must be at least 1")
	}
	t := &Tree{cfg: cfg, nodes: make([]Node, capacity)}
	t.Reset()
	return t
}

// SuggestCapacity returns an arena size for a search of the given playout
// budget and action-space size: every playout expands at most one node with
// at most fanout children.
func SuggestCapacity(playouts, fanout int) int {
	return playouts*fanout + fanout + 1
}

// Config returns the scoring configuration.
func (t *Tree) Config() Config { return t.cfg }

// Capacity returns the arena size.
func (t *Tree) Capacity() int { return len(t.nodes) }

// Allocated returns the number of nodes currently in use.
func (t *Tree) Allocated() int {
	t.allocMu.Lock()
	defer t.allocMu.Unlock()
	return int(t.next)
}

// Full reports whether an expansion has ever been rejected for capacity.
func (t *Tree) Full() bool { return t.full.Load() }

// DoubleExpansions returns the number of duplicate expansions since the
// last Reset — rollouts whose evaluation was wasted because a racing
// worker expanded the same leaf first. The count survives RebaseRoot, so
// wasted work is never silently dropped at a move boundary; engines that
// want per-move numbers snapshot it at search start and subtract.
func (t *Tree) DoubleExpansions() int64 { return t.doubleExpand.Load() }

// DoubleExpansionsThisGen returns the duplicate expansions recorded since
// the current root generation began (the last Reset or RebaseRoot). A
// rollout that was in flight when the generation turned over is attributed
// to the generation in which its Expand actually ran.
func (t *Tree) DoubleExpansionsThisGen() int64 {
	return t.doubleExpand.Load() - t.genWastedBase.Load()
}

// Generation returns the current root epoch. It advances on every Reset
// and every successful RebaseRoot.
func (t *Tree) Generation() uint64 { return t.generation.Load() }

// Root returns the root node index.
func (t *Tree) Root() int32 { return t.root }

// Node returns the node at index i.
func (t *Tree) Node(i int32) *Node { return &t.nodes[i] }

// Reset discards all nodes and installs a fresh root. Must not run
// concurrently with any other tree operation.
func (t *Tree) Reset() {
	t.next = 0
	t.full.Store(false)
	t.doubleExpand.Store(0)
	t.genWastedBase.Store(0)
	t.generation.Add(1)
	t.root = t.allocNode(nilNode, -1, 1)
}

// RebaseRoot promotes the child of the current root reached via action to
// be the new root, retaining its whole subtree (statistics intact) and
// reclaiming every abandoned sibling subtree's arena slot by compacting the
// survivors to the front of the arena. It returns what was retained, or
// ok=false when the root is unexpanded or has no child for action (the
// caller should Reset instead).
//
// Must not run concurrently with any other tree operation: all in-flight
// traversals must have drained (root virtual loss zero) before the rebase,
// because compaction moves nodes. The engines enforce this with their
// session locks.
//
// The compaction relies on two arena invariants: parents are always
// allocated before their children (so every retained node's ancestors have
// smaller indices), and a node's children occupy one contiguous block (so
// assigning new indices in ascending old-index order preserves block
// contiguity and each node moves to an index no larger than its own —
// making the in-place sweep safe).
func (t *Tree) RebaseRoot(action int) (RebaseStats, bool) {
	root := &t.nodes[t.root]
	first := root.firstChild.Load()
	if first == nilNode {
		return RebaseStats{}, false
	}
	newRoot := nilNode
	for i := int32(0); i < root.numChildren; i++ {
		if t.nodes[first+i].action == int32(action) {
			newRoot = first + i
			break
		}
	}
	if newRoot == nilNode {
		return RebaseStats{}, false
	}

	t.allocMu.Lock()
	defer t.allocMu.Unlock()
	n := t.next
	if t.remap == nil {
		t.remap = make([]int32, len(t.nodes))
	}
	remap := t.remap[:n]
	for i := range remap {
		remap[i] = nilNode
	}
	// Mark + number in one ascending pass: a node is retained iff it is the
	// new root or its parent is retained (parent index < child index).
	remap[newRoot] = 0
	count := int32(1)
	for i := newRoot + 1; i < n; i++ {
		if p := t.nodes[i].parent; p >= newRoot && remap[p] != nilNode {
			remap[i] = count
			count++
		}
	}
	retainedVisits := int(t.nodes[newRoot].n.Load())
	// Sweep survivors down. dst <= src always, and destinations are
	// strictly increasing, so no uncopied source is ever overwritten.
	for src := newRoot; src < n; src++ {
		dst := remap[src]
		if dst == nilNode {
			continue
		}
		s := &t.nodes[src]
		d := &t.nodes[dst]
		parent, firstChild := nilNode, s.firstChild.Load()
		if src != newRoot {
			parent = remap[s.parent]
		}
		if firstChild != nilNode {
			firstChild = remap[firstChild]
		}
		d.parent = parent
		d.action = s.action
		d.prior = s.prior
		d.numChildren = s.numChildren
		d.firstChild.Store(firstChild)
		d.n.Store(s.n.Load())
		d.vl.Store(s.vl.Load())
		d.w.Store(s.w.Load())
		// The transposition link survives compaction: entries reference
		// StateStats blocks, not arena indices, so moving the node cannot
		// dangle anything — and carrying the pointer is what makes shared
		// statistics persist across move boundaries.
		d.stats.Store(s.stats.Load())
		d.terminal = s.terminal
		d.termValue = s.termValue
	}
	t.next = count
	t.root = 0
	t.full.Store(false)
	t.genWastedBase.Store(t.doubleExpand.Load())
	gen := t.generation.Add(1)
	return RebaseStats{
		RetainedNodes:  int(count),
		RetainedVisits: retainedVisits,
		DiscardedNodes: int(n - count),
		Generation:     gen,
	}, true
}

// RemixRootPriors hands the root children's priors to mix and stores the
// result back — the re-rooted Dirichlet injection point: a node promoted by
// RebaseRoot was expanded as an interior node (clean priors), and the next
// search re-mixes exploration noise exactly once when it becomes the root.
// No-op on an unexpanded root. Must not run concurrently with a search.
func (t *Tree) RemixRootPriors(mix func(priors []float32)) {
	root := &t.nodes[t.root]
	first := root.firstChild.Load()
	if first == nilNode {
		return
	}
	k := int(root.numChildren)
	if cap(t.priorScratch) < k {
		t.priorScratch = make([]float32, k)
	}
	pr := t.priorScratch[:k]
	for i := 0; i < k; i++ {
		pr[i] = t.nodes[first+int32(i)].prior
	}
	mix(pr)
	for i := 0; i < k; i++ {
		t.nodes[first+int32(i)].prior = pr[i]
	}
}

func (t *Tree) allocNode(parent, action int32, prior float32) int32 {
	idx := t.next
	t.next++
	nd := &t.nodes[idx]
	nd.parent = parent
	nd.action = action
	nd.prior = prior
	nd.firstChild.Store(nilNode)
	nd.numChildren = 0
	nd.n.Store(0)
	nd.vl.Store(0)
	nd.w.Store(0)
	nd.stats.Store(nil)
	nd.terminal = false
	nd.termValue = 0
	return idx
}

// Expand attaches children for the given actions/priors to node idx. It is
// safe to call concurrently: the per-node mutex serialises double expansion
// (two shared-tree workers can race to the same leaf), and the second
// caller becomes a no-op. markTerminal attaches no children and records the
// game outcome instead.
//
// Expand returns false when the arena has no room for the children; the
// caller should still back up the evaluation (the node simply stays a leaf).
func (t *Tree) Expand(idx int32, actions []int, priors []float32) bool {
	if len(actions) == 0 {
		panic("tree: Expand with no actions")
	}
	if len(actions) != len(priors) {
		panic(fmt.Sprintf("tree: %d actions but %d priors", len(actions), len(priors)))
	}
	nd := &t.nodes[idx]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.firstChild.Load() != nilNode {
		t.doubleExpand.Add(1)
		return true // another worker expanded first
	}
	t.allocMu.Lock()
	if int(t.next)+len(actions) > len(t.nodes) {
		t.allocMu.Unlock()
		t.full.Store(true)
		return false
	}
	first := t.next
	for i, a := range actions {
		t.allocNode(idx, int32(a), priors[i])
	}
	t.allocMu.Unlock()
	nd.numChildren = int32(len(actions))
	// Publishing firstChild last makes the children visible atomically.
	nd.firstChild.Store(first)
	return true
}

// MarkTerminal records that the game ends at idx with the given outcome
// (from the perspective of the player to move at idx).
func (t *Tree) MarkTerminal(idx int32, value float64) {
	nd := &t.nodes[idx]
	nd.mu.Lock()
	nd.terminal = true
	nd.termValue = value
	nd.mu.Unlock()
}

// Children calls f for each child index of idx. It returns immediately for
// unexpanded nodes.
func (t *Tree) Children(idx int32, f func(child int32, nd *Node)) {
	nd := &t.nodes[idx]
	first := nd.firstChild.Load()
	if first == nilNode {
		return
	}
	for i := int32(0); i < nd.numChildren; i++ {
		f(first+i, &t.nodes[first+i])
	}
}

// score computes the PUCT score (Equation 1) of a child edge, adjusted for
// the configured virtual-loss mode.
//
// For transposition-linked children (SharedStats non-nil) the Q term comes
// from the shared per-state statistics — negated, because the table stores
// values from the perspective of the player to move AT the state while the
// selecting parent is that player's opponent — so every line converging on
// the position contributes. The exploration term keeps the LOCAL edge
// counts (n, vl of this in-edge): sqrt(parentVisits)/(1+nEff) is a
// progressive-widening schedule over the parent's own playouts, and
// inflating nEff with visits that arrived through other parents would
// starve the edge of exploration it never received. This is the UCT2-style
// "shared value, local counts" backup rule of transposition-table MCTS.
func (t *Tree) score(parentVisits float64, child *Node) float64 {
	localN := float64(child.n.Load())
	localVL := float64(child.vl.Load())
	n, vl := localN, localVL
	w := float64(child.w.Load()) / wScale
	ss := child.stats.Load()
	if ss != nil {
		// Replace the edge's value statistics with the shared pool's.
		// Sign: w_edge accumulates -v per backup where v is the state
		// mover's value, and w_state accumulates +v, over the same set of
		// traversals — so the shared Q seen from the parent is -(w_s/n_s).
		n = float64(ss.n.Load())
		vl = float64(ss.vl.Load())
		w = -float64(ss.w.Load()) / wScale
	}

	var q, nEff float64
	switch t.cfg.VLMode {
	case VLNone:
		nEff = n
		if n > 0 {
			q = w / n
		}
	case VLConstant:
		// In-flight traversals count as visits that each lost VirtualLoss.
		nEff = n + vl
		if nEff > 0 {
			q = (w - t.cfg.VirtualLoss*vl) / nEff
		}
	case VLUnobserved:
		// In-flight traversals inflate the visit count only.
		nEff = n + vl
		if n > 0 {
			q = w / n
		}
	}
	if ss != nil {
		// Exploration uses the local edge count even when Q is shared.
		nEff = localN
		if t.cfg.VLMode != VLNone {
			nEff += localVL
		}
	}
	u := t.cfg.CPuct * float64(child.prior) * math.Sqrt(parentVisits) / (1 + nEff)
	return q + u
}

// SelectChild returns the child of idx with the maximal PUCT score, or
// nilNode if idx is unexpanded. Ties break towards the lowest index, which
// is deterministic given a deterministic prior order.
func (t *Tree) SelectChild(idx int32) int32 {
	nd := &t.nodes[idx]
	first := nd.firstChild.Load()
	if first == nilNode {
		return nilNode
	}
	// Parent visit total Σ_b N(s,b) including in-flight traversals —
	// except under VLNone, whose contract is that in-flight traversals do
	// not influence selection AT ALL: with the virtual-loss term disabled,
	// counting them here would still perturb every child's exploration
	// bonus, so a one-worker engine could never reproduce the serial
	// search exactly (the cross-engine equivalence tests pin this).
	pv := nd.n.Load()
	if t.cfg.VLMode != VLNone {
		pv += nd.vl.Load()
	}
	parentVisits := float64(pv)
	if parentVisits < 1 {
		parentVisits = 1
	}
	best := first
	bestScore := math.Inf(-1)
	for i := int32(0); i < nd.numChildren; i++ {
		c := &t.nodes[first+i]
		s := t.score(parentVisits, c)
		if s > bestScore {
			bestScore = s
			best = first + i
		}
	}
	return best
}

// ApplyVirtualLoss marks the edge into idx as having an in-flight
// traversal. In shared mode the per-node lock is taken to mirror the
// paper's "obtain lock; update node's UCT score with virtual loss; release
// lock" step; pass locked=false on the single-owner master thread.
func (t *Tree) ApplyVirtualLoss(idx int32, locked bool) {
	nd := &t.nodes[idx]
	// A transposition-linked edge also marks the traversal on the shared
	// per-state counter so concurrent lines through OTHER in-edges see the
	// in-flight work. The shared bump stays inside the node mutex in locked
	// mode so it cannot race AttachShared's edge-VL transfer (which would
	// double-count this unit); Backup drains the shared unit iff it drains
	// the edge unit, keeping the two counters paired.
	if locked {
		nd.mu.Lock()
		nd.vl.Add(1)
		if ss := nd.stats.Load(); ss != nil {
			ss.vl.Add(1)
		}
		nd.mu.Unlock()
	} else {
		nd.vl.Add(1)
		if ss := nd.stats.Load(); ss != nil {
			ss.vl.Add(1)
		}
	}
}

// AttachShared links node idx to a transposition entry's shared statistics.
// Idempotent: only the first attach takes effect (a node represents one
// position, so racing attachers carry the same entry). Any virtual loss
// already outstanding on the edge is transferred to the shared counter so
// the pairing invariant (shared VL = Σ edge VL over attached in-edges)
// holds from the moment of attachment.
func (t *Tree) AttachShared(idx int32, e *TransEntry) {
	if e == nil {
		return
	}
	nd := &t.nodes[idx]
	nd.mu.Lock()
	if nd.stats.Load() == nil {
		ss := &e.stats
		nd.stats.Store(ss)
		if vl := nd.vl.Load(); vl > 0 {
			ss.vl.Add(vl)
		}
	}
	nd.mu.Unlock()
}

// Backup propagates a leaf evaluation to the root (Section 2.1 step 3),
// incrementing N, accumulating W with alternating sign, and releasing one
// unit of virtual loss per level. value must be from the perspective of the
// player to move at the leaf node.
func (t *Tree) Backup(leaf int32, value float64, locked bool) {
	// The edge into the leaf was chosen by the leaf's parent player, whose
	// perspective is the negation of the leaf mover's value.
	v := -value
	for idx := leaf; idx != nilNode; {
		nd := &t.nodes[idx]
		if locked {
			nd.mu.Lock()
		}
		nd.n.Add(1)
		nd.w.Add(int64(v * wScale))
		drained := false
		if nd.vl.Load() > 0 {
			nd.vl.Add(-1)
			drained = true
		}
		// The shared update stays inside the node mutex (locked mode) so it
		// serialises with AttachShared's edge-VL transfer: draining the
		// edge before the transfer but the shared pool after it would push
		// the shared counter negative.
		if ss := nd.stats.Load(); ss != nil {
			// Shared per-state statistics accumulate from the perspective
			// of the player to move AT the state: -v, since v at this level
			// is the parent's (selecting player's) perspective.
			ss.n.Add(1)
			ss.w.Add(int64(-v * wScale))
			// Drain the shared virtual loss only when this backup drained
			// the edge's own unit: a traversal that never applied VL (the
			// serial engines) must not consume another line's in-flight
			// marker through the shared pool.
			if drained {
				ss.vl.Add(-1)
			}
		}
		if locked {
			nd.mu.Unlock()
		}
		v = -v
		idx = nd.parent
	}
}

// PathLength returns the number of edges between idx and the root.
func (t *Tree) PathLength(idx int32) int {
	depth := 0
	for i := t.nodes[idx].parent; i != nilNode; i = t.nodes[i].parent {
		depth++
	}
	return depth
}

// VisitDistribution writes the root children's normalised visit counts into
// dst (indexed by action) and returns the total visits. This is the
// "normalized root's children list wrt visit count" of Algorithms 2 and 3.
func (t *Tree) VisitDistribution(dst []float32) int {
	for i := range dst {
		dst[i] = 0
	}
	total := 0
	t.Children(t.root, func(_ int32, nd *Node) {
		total += int(nd.n.Load())
	})
	if total == 0 {
		return 0
	}
	inv := 1 / float32(total)
	t.Children(t.root, func(_ int32, nd *Node) {
		dst[nd.action] = float32(nd.n.Load()) * inv
	})
	return total
}

// MaxDepth returns the maximum depth over all allocated nodes (root = 0).
// Intended for tests and profiling, not hot paths.
func (t *Tree) MaxDepth() int {
	t.allocMu.Lock()
	n := int(t.next)
	t.allocMu.Unlock()
	maxD := 0
	for i := 0; i < n; i++ {
		if d := t.PathLength(int32(i)); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// OutstandingVirtualLoss sums VL over all allocated nodes; it must be zero
// after every search completes (checked by property tests).
func (t *Tree) OutstandingVirtualLoss() int {
	t.allocMu.Lock()
	n := int(t.next)
	t.allocMu.Unlock()
	total := 0
	for i := 0; i < n; i++ {
		total += int(t.nodes[i].vl.Load())
	}
	return total
}
