package tree

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/parmcts/parmcts/internal/rng"
)

func TestParseTransposeSpec(t *testing.T) {
	cases := []struct {
		spec string
		want int
		err  bool
	}{
		{"", 0, false},
		{"off", 0, false},
		{"0", 0, false},
		{"false", 0, false},
		{"on", DefaultTransTableSize, false},
		{"true", DefaultTransTableSize, false},
		{"on:1024", 1024, false},
		{"4096", 4096, false},
		{"on:0", 0, true},
		{"on:-3", 0, true},
		{"banana", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseTransposeSpec(tc.spec)
		if (err != nil) != tc.err {
			t.Errorf("ParseTransposeSpec(%q) error = %v, want error %v", tc.spec, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseTransposeSpec(%q) = %d, want %d", tc.spec, got, tc.want)
		}
	}
}

func TestTransTableAcquireAndLookup(t *testing.T) {
	tt := NewTransTable(64)
	e1, hit := tt.Acquire(0xABCD, []byte{1, 2, 3})
	if hit || e1 == nil {
		t.Fatalf("first Acquire: entry=%v hit=%v, want fresh entry", e1, hit)
	}
	e2, hit := tt.Acquire(0xABCD, []byte{1, 2, 3})
	if !hit || e2 != e1 {
		t.Fatalf("second Acquire: hit=%v same=%v, want verified hit on same entry", hit, e2 == e1)
	}
	if got := tt.Lookup(0xABCD, []byte{1, 2, 3}); got != e1 {
		t.Fatalf("Lookup returned %p, want %p", got, e1)
	}
	if got := tt.Lookup(0xABCD, []byte{9, 9, 9}); got != nil {
		t.Fatal("Lookup with wrong verification key must return nil")
	}
	if got := tt.Lookup(0x1234, []byte{1, 2, 3}); got != nil {
		t.Fatal("Lookup of absent hash must return nil")
	}
	s := tt.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits (Acquire+Lookup), 1 miss, 1 entry", s)
	}
}

// TestTransTableCollisionNeverMerges is the safety property of the
// verification key: two positions with the same 64-bit hash but different
// full-state keys must get DIFFERENT entries — the resident one is
// replaced, never shared.
func TestTransTableCollisionNeverMerges(t *testing.T) {
	tt := NewTransTable(64)
	e1, _ := tt.Acquire(0x42, []byte("position-a"))
	e1.StoreEval(0.5, []int{1}, []float32{1})
	e2, hit := tt.Acquire(0x42, []byte("position-b"))
	if hit {
		t.Fatal("colliding Acquire reported a verified hit")
	}
	if e2 == e1 {
		t.Fatal("colliding positions merged into one entry")
	}
	if e2.HasEval() {
		t.Fatal("replacement entry inherited the evicted position's evaluation")
	}
	if got := tt.Lookup(0x42, []byte("position-a")); got != nil {
		t.Fatal("evicted collision victim still resident")
	}
	s := tt.Stats()
	if s.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", s.Collisions)
	}
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (replacement, not insertion)", s.Entries)
	}
}

func TestTransTableEvictionBoundsResidency(t *testing.T) {
	tt := NewTransTableSharded(8, 1)
	for i := 0; i < 100; i++ {
		tt.Acquire(uint64(i)+1000, []byte{byte(i)})
	}
	if got := tt.Len(); got > 8 {
		t.Fatalf("resident entries = %d, want <= capacity 8", got)
	}
	s := tt.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions recorded after overfilling the shard")
	}
	if s.Misses != 100 {
		t.Fatalf("misses = %d, want 100", s.Misses)
	}
}

func TestTransTableReset(t *testing.T) {
	tt := NewTransTable(64)
	tt.Acquire(1, []byte{1})
	tt.Acquire(1, []byte{1})
	tt.Reset()
	if tt.Len() != 0 {
		t.Fatalf("entries after Reset = %d", tt.Len())
	}
	s := tt.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("counters after Reset = %+v, want zeroes", s)
	}
	// The table stays usable after Reset.
	if _, hit := tt.Acquire(1, []byte{1}); hit {
		t.Fatal("hit on emptied table")
	}
}

func TestStoreEvalFirstWriterWins(t *testing.T) {
	var e TransEntry
	if _, _, _, ok := e.LoadEval(nil, nil); ok {
		t.Fatal("LoadEval on empty entry reported ok")
	}
	e.StoreEval(0.25, []int{3, 7}, []float32{0.6, 0.4})
	e.StoreEval(-0.9, []int{1}, []float32{1}) // racing second writer: no-op
	v, acts, priors, ok := e.LoadEval(nil, nil)
	if !ok || v != 0.25 {
		t.Fatalf("LoadEval = %v ok=%v, want first writer's 0.25", v, ok)
	}
	if len(acts) != 2 || acts[0] != 3 || acts[1] != 7 {
		t.Fatalf("actions = %v, want [3 7]", acts)
	}
	if len(priors) != 2 || priors[0] != 0.6 || priors[1] != 0.4 {
		t.Fatalf("priors = %v, want [0.6 0.4]", priors)
	}
	// Scratch reuse: big-enough buffers are filled in place.
	actScratch := make([]int, 0, 8)
	prScratch := make([]float32, 0, 8)
	_, acts2, _, _ := e.LoadEval(actScratch, prScratch)
	if &acts2[0] != &actScratch[:1][0] {
		t.Fatal("LoadEval reallocated despite sufficient scratch capacity")
	}
}

// TestAttachSharedPairsVirtualLoss checks the VL pairing invariant at the
// attach boundary: virtual loss applied to an edge BEFORE its node links to
// a transposition entry is transferred into the shared counter, so the
// later Backup's paired drain (edge and shared together) cannot push the
// shared counter negative.
func TestAttachSharedPairsVirtualLoss(t *testing.T) {
	tr := newTestTree(16)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	child := tr.Node(tr.Root()).firstChild.Load()

	// VL lands on the edge first (selection), then the leaf attaches.
	tr.ApplyVirtualLoss(child, true)
	var e TransEntry
	tr.AttachShared(child, &e)
	if got := e.Stats().VirtualLossCount(); got != 1 {
		t.Fatalf("shared VL after attach-with-outstanding-edge-VL = %d, want 1", got)
	}

	// VL applied after attach bumps both sides.
	tr.ApplyVirtualLoss(child, true)
	if got := e.Stats().VirtualLossCount(); got != 2 {
		t.Fatalf("shared VL after post-attach ApplyVirtualLoss = %d, want 2", got)
	}

	// Each backup drains exactly one unit from each side.
	tr.Backup(child, 0.5, true)
	tr.Backup(child, -0.25, true)
	if got := e.Stats().VirtualLossCount(); got != 0 {
		t.Fatalf("shared VL after draining backups = %d, want 0", got)
	}
	if got := tr.OutstandingVirtualLoss(); got != 0 {
		t.Fatalf("edge VL outstanding = %d, want 0", got)
	}
	// Re-attach is idempotent: no double VL transfer.
	tr.AttachShared(child, &e)
	if got := e.Stats().VirtualLossCount(); got != 0 {
		t.Fatalf("shared VL after idempotent re-attach = %d, want 0", got)
	}
}

// TestSharedStatsAcrossTrees is the DAG convergence property: two trees
// (two games in a fleet) attached to one entry pool their visit statistics,
// and the shared value is stored from the state mover's perspective — the
// negation of the edge perspective each backup used.
func TestSharedStatsAcrossTrees(t *testing.T) {
	var e TransEntry
	trees := [2]*Tree{newTestTree(16), newTestTree(16)}
	for _, tr := range trees {
		tr.Expand(tr.Root(), []int{0}, []float32{1})
		child := tr.Node(tr.Root()).firstChild.Load()
		tr.AttachShared(child, &e)
		tr.Backup(child, 0.5, false) // v = +0.5 for the mover at the child state
	}
	ss := e.Stats()
	if ss.Visits() != 2 {
		t.Fatalf("shared visits = %d, want 2 (one per tree)", ss.Visits())
	}
	if got := ss.TotalValue(); got != 1.0 {
		t.Fatalf("shared value = %v, want +1.0 (state perspective)", got)
	}
	for i, tr := range trees {
		child := tr.Node(tr.Node(tr.Root()).firstChild.Load())
		if child.TotalValue() != -0.5 {
			t.Fatalf("tree %d edge W = %v, want -0.5 (parent perspective)", i, child.TotalValue())
		}
		if ss2 := child.SharedStats(); ss2 != ss {
			t.Fatalf("tree %d shared-stats pointer diverged", i)
		}
	}
}

// TestRebasePreservesSharedStats extends the rebase invariants to the DAG:
// compaction relocates nodes, and every surviving node must carry its
// transposition link with it (the link is a pointer to entry-owned stats,
// not an arena index, which is what makes cross-move sharing survive the
// move-boundary rebase).
func TestRebasePreservesSharedStats(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		tr := New(DefaultConfig(), 1<<13)
		tt := NewTransTable(1 << 10)
		playouts := 100 + r.Intn(100)
		fanout := 2 + r.Intn(3)
		actions := make([]int, fanout)
		priors := make([]float32, fanout)
		for i := range actions {
			actions[i] = i
			priors[i] = 1 / float32(fanout)
		}
		// Serial-engine-shaped search that attaches every expanded leaf to
		// a table entry keyed by a synthetic per-leaf position id.
		for p := 0; p < playouts; p++ {
			idx := tr.Root()
			depth := 0
			for tr.Node(idx).Expanded() {
				idx = tr.SelectChild(idx)
				depth++
			}
			// Synthetic position identity: depth plus first-action parity,
			// cheap and stable so transpositions genuinely occur.
			id := byte(depth*16 + int(tr.Node(idx).Action()%4))
			entry, _ := tt.Acquire(uint64(id), []byte{id})
			tr.AttachShared(idx, entry)
			tr.Expand(idx, actions, priors)
			tr.Backup(idx, r.Float64()*2-1, false)
		}

		// Record attached stats pointers by action path, rebase, compare.
		record := func(root int32) map[string]*StateStats {
			out := map[string]*StateStats{}
			var rec func(idx int32, path string)
			rec = func(idx int32, path string) {
				out[path] = tr.Node(idx).SharedStats()
				tr.Children(idx, func(child int32, c *Node) {
					rec(child, fmt.Sprintf("%s/%d", path, c.Action()))
				})
			}
			rec(root, "")
			return out
		}
		best, bestN := -1, -1
		var bestIdx int32
		tr.Children(tr.Root(), func(child int32, nd *Node) {
			if nd.Visits() > bestN {
				best, bestN, bestIdx = nd.Action(), nd.Visits(), child
			}
		})
		before := record(bestIdx)
		if _, ok := tr.RebaseRoot(best); !ok {
			return false
		}
		after := record(tr.Root())
		if len(before) != len(after) {
			t.Logf("seed %d: %d nodes before, %d after", seed, len(before), len(after))
			return false
		}
		for path, b := range before {
			if after[path] != b {
				t.Logf("seed %d: path %q shared-stats pointer changed", seed, path)
				return false
			}
		}
		if tr.OutstandingVirtualLoss() != 0 || tt.OutstandingVirtualLoss() != 0 {
			t.Logf("seed %d: VL outstanding after quiescence", seed)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTransTableConcurrent hammers one shared table from several
// goroutines, each running a locked-mode search on its own tree (the
// fleet-shared topology), and checks that no virtual loss leaks on either
// side once every search completes. Run under -race in CI.
func TestTransTableConcurrent(t *testing.T) {
	tt := NewTransTableSharded(128, 4)
	const workers = 4
	var wg sync.WaitGroup
	trees := make([]*Tree, workers)
	for w := 0; w < workers; w++ {
		trees[w] = New(DefaultConfig(), 1<<13)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := trees[w]
			r := rng.New(uint64(w) + 1)
			actions := []int{0, 1, 2}
			priors := []float32{0.5, 0.3, 0.2}
			for p := 0; p < 400; p++ {
				idx := tr.Root()
				tr.ApplyVirtualLoss(idx, true)
				depth := 0
				for tr.Node(idx).Expanded() {
					idx = tr.SelectChild(idx)
					tr.ApplyVirtualLoss(idx, true)
					depth++
				}
				id := byte(depth*8 + int(tr.Node(idx).Action()%4))
				entry, _ := tt.Acquire(uint64(id%32), []byte{id})
				tr.AttachShared(idx, entry)
				if !tr.Node(idx).Expanded() {
					tr.Expand(idx, actions, priors)
				}
				tr.Backup(idx, r.Float64()*2-1, true)
			}
		}(w)
	}
	wg.Wait()
	if got := tt.OutstandingVirtualLoss(); got != 0 {
		t.Fatalf("shared VL outstanding after quiescence = %d", got)
	}
	for w, tr := range trees {
		if got := tr.OutstandingVirtualLoss(); got != 0 {
			t.Fatalf("tree %d edge VL outstanding = %d", w, got)
		}
	}
}

// FuzzTransposeTable drives randomized interleavings of search, attach,
// rebase and eviction against a deliberately tiny table, and checks the two
// safety properties end-to-end: entries with unequal verification keys are
// never merged (whatever the hash says), and no virtual loss leaks once the
// search quiesces.
func FuzzTransposeTable(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(3))
	f.Add(uint64(42), uint8(16), uint8(2))
	f.Add(uint64(0xDEAD), uint8(64), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, nStates, fanout8 uint8) {
		r := rng.New(seed)
		states := int(nStates%63) + 2    // distinct synthetic positions
		fanout := int(fanout8%4) + 2     // tree branching
		tt := NewTransTableSharded(8, 2) // tiny: exercises eviction + replace
		tr := New(DefaultConfig(), 1<<13)
		actions := make([]int, fanout)
		priors := make([]float32, fanout)
		for i := range actions {
			actions[i] = i
			priors[i] = 1 / float32(fanout)
		}
		// owner maps each entry pointer to the verification key it was
		// created for: one entry must never serve two distinct keys.
		owner := map[*TransEntry]byte{}
		rollouts := 150 + r.Intn(150)
		for p := 0; p < rollouts; p++ {
			idx := tr.Root()
			locked := r.Intn(2) == 0
			tr.ApplyVirtualLoss(idx, locked)
			depth := 0
			for tr.Node(idx).Expanded() {
				idx = tr.SelectChild(idx)
				tr.ApplyVirtualLoss(idx, locked)
				depth++
			}
			// Synthetic position id; hash deliberately collides (mod 4) so
			// distinct ids exercise the verification path constantly.
			id := byte((depth*fanout + int(tr.Node(idx).Action())) % states)
			entry, hit := tt.Acquire(uint64(id%4), []byte{id})
			if prev, seen := owner[entry]; seen {
				if prev != id {
					t.Fatalf("entry merged two positions: %d and %d", prev, id)
				}
				if !hit {
					// A replaced entry is always a fresh pointer, so a
					// re-returned pointer must have been a verified hit.
					t.Fatalf("known entry for %d returned with hit=false", id)
				}
			} else {
				owner[entry] = id
			}
			tr.AttachShared(idx, entry)
			if !tr.Node(idx).Expanded() {
				tr.Expand(idx, actions, priors)
			}
			tr.Backup(idx, r.Float64()*2-1, locked)

			if tr.OutstandingVirtualLoss() != 0 {
				t.Fatalf("rollout %d: edge VL leaked", p)
			}
			if tt.OutstandingVirtualLoss() != 0 {
				t.Fatalf("rollout %d: shared VL leaked", p)
			}
			// Occasional move boundary: promote a child and keep searching
			// the compacted DAG.
			if r.Intn(40) == 0 && tr.Node(tr.Root()).Expanded() {
				best, bestN := -1, -1
				tr.Children(tr.Root(), func(_ int32, nd *Node) {
					if nd.Visits() > bestN {
						best, bestN = nd.Action(), nd.Visits()
					}
				})
				if _, ok := tr.RebaseRoot(best); !ok {
					t.Fatal("rebase failed on expanded root")
				}
			}
		}
	})
}
