package tree

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"github.com/parmcts/parmcts/internal/rng"
)

// nodeSnap is one node's observable state, keyed by its action-path from
// the subtree root so it can be compared across a compaction that moves
// arena indices.
type nodeSnap struct {
	n        int
	w        float64
	prior    float64
	terminal bool
	children int
}

func snapshotSubtree(tr *Tree, idx int32, path string, out map[string]nodeSnap) {
	nd := tr.Node(idx)
	snap := nodeSnap{
		n:        nd.Visits(),
		w:        nd.TotalValue(),
		prior:    nd.Prior(),
		terminal: nd.Terminal(),
	}
	tr.Children(idx, func(child int32, c *Node) {
		snap.children++
		snapshotSubtree(tr, child, fmt.Sprintf("%s/%d", path, c.Action()), out)
	})
	out[path] = snap
}

// checkStructure validates the parent/child index invariants over the
// whole arena: every child block points back at its parent, and every
// non-root node sits inside its parent's contiguous child block.
func checkStructure(t *testing.T, tr *Tree) {
	t.Helper()
	n := int32(tr.Allocated())
	for i := int32(0); i < n; i++ {
		nd := tr.Node(i)
		tr.Children(i, func(child int32, c *Node) {
			if child < 0 || child >= n {
				t.Fatalf("node %d: child %d outside allocated range [0,%d)", i, child, n)
			}
			if c.Parent() != i {
				t.Fatalf("node %d: child %d has parent %d", i, child, c.Parent())
			}
		})
		if i == tr.Root() {
			if nd.Parent() != -1 {
				t.Fatalf("root has parent %d", nd.Parent())
			}
			continue
		}
		p := nd.Parent()
		if p < 0 || p >= n {
			t.Fatalf("node %d: parent %d outside allocated range [0,%d)", i, p, n)
		}
		parent := tr.Node(p)
		first := parent.firstChild.Load()
		if first == nilNode || i < first || i >= first+parent.numChildren {
			t.Fatalf("node %d not inside parent %d's child block [%d,%d)",
				i, p, first, first+parent.numChildren)
		}
	}
}

// randomSearch grows the tree with a single-threaded select/expand/backup
// loop (the serial engine's shape) and returns the playout count.
func randomSearch(tr *Tree, r *rng.Rand, playouts, fanout int) {
	actions := make([]int, fanout)
	priors := make([]float32, fanout)
	for i := range actions {
		actions[i] = i
		priors[i] = 1 / float32(fanout)
	}
	for p := 0; p < playouts; p++ {
		idx := tr.Root()
		tr.ApplyVirtualLoss(idx, false)
		for tr.Node(idx).Expanded() {
			idx = tr.SelectChild(idx)
			tr.ApplyVirtualLoss(idx, false)
		}
		tr.Expand(idx, actions, priors)
		tr.Backup(idx, r.Float64()*2-1, false)
	}
}

func TestRebaseRootPromotesChild(t *testing.T) {
	tr := newTestTree(64)
	tr.Expand(tr.Root(), []int{2, 5, 7}, []float32{0.5, 0.3, 0.2})
	c0 := tr.Node(tr.Root()).firstChild.Load()
	tr.Expand(c0+1, []int{0, 1}, []float32{0.6, 0.4}) // expand action-5 child
	for i := 0; i < 4; i++ {
		tr.Backup(tr.Node(c0+1).firstChild.Load(), 0.25, false)
	}
	tr.Backup(c0, -1, false)

	wantVisits := tr.Node(c0 + 1).Visits()
	rs, ok := tr.RebaseRoot(5)
	if !ok {
		t.Fatal("rebase onto existing child failed")
	}
	if tr.Root() != 0 {
		t.Fatalf("compacted root at %d, want 0", tr.Root())
	}
	if rs.RetainedNodes != 3 { // action-5 child + its 2 children
		t.Fatalf("retained nodes = %d, want 3", rs.RetainedNodes)
	}
	if rs.RetainedVisits != wantVisits {
		t.Fatalf("retained visits = %d, want %d", rs.RetainedVisits, wantVisits)
	}
	if rs.DiscardedNodes != 3 { // old root + action-2 + action-7 children
		t.Fatalf("discarded nodes = %d, want 3", rs.DiscardedNodes)
	}
	if got := tr.Allocated(); got != 3 {
		t.Fatalf("allocated after rebase = %d, want 3", got)
	}
	root := tr.Node(tr.Root())
	if root.Parent() != -1 || root.Visits() != wantVisits {
		t.Fatalf("promoted root parent=%d visits=%d", root.Parent(), root.Visits())
	}
	var acts []int
	tr.Children(tr.Root(), func(_ int32, nd *Node) { acts = append(acts, nd.Action()) })
	if len(acts) != 2 || acts[0] != 0 || acts[1] != 1 {
		t.Fatalf("promoted root children = %v", acts)
	}
	checkStructure(t, tr)
}

func TestRebaseRootFailsWithoutChild(t *testing.T) {
	tr := newTestTree(16)
	if _, ok := tr.RebaseRoot(0); ok {
		t.Fatal("rebase on unexpanded root should fail")
	}
	tr.Expand(tr.Root(), []int{1, 2}, []float32{0.5, 0.5})
	if _, ok := tr.RebaseRoot(9); ok {
		t.Fatal("rebase on missing action should fail")
	}
	if _, ok := tr.RebaseRoot(1); !ok {
		t.Fatal("rebase on existing action should succeed")
	}
}

// TestRebaseInvariants is the acceptance property: after a realistic
// random search, promoting the most-visited child must preserve its entire
// subtree's N/W/P statistics and terminal marks exactly (keyed by action
// path), keep the parent/child index structure consistent under
// compaction, and leave no virtual loss outstanding — and a continued
// search over the warm tree must still work.
func TestRebaseInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		tr := New(DefaultConfig(), 1<<14)
		playouts := 150 + r.Intn(150)
		fanout := 2 + r.Intn(4)
		randomSearch(tr, r, playouts, fanout)

		// Promote the most-visited child, the move a driver would play.
		best, bestN := int32(-1), -1
		tr.Children(tr.Root(), func(child int32, nd *Node) {
			if nd.Visits() > bestN {
				best, bestN = child, nd.Visits()
			}
		})
		action := tr.Node(best).Action()
		before := map[string]nodeSnap{}
		snapshotSubtree(tr, best, "", before)
		beforeGen := tr.Generation()

		rs, ok := tr.RebaseRoot(action)
		if !ok {
			t.Logf("seed %d: rebase failed on expanded root", seed)
			return false
		}
		after := map[string]nodeSnap{}
		snapshotSubtree(tr, tr.Root(), "", after)
		if len(before) != len(after) || len(after) != rs.RetainedNodes {
			t.Logf("seed %d: subtree size %d -> %d (stats %d)", seed, len(before), len(after), rs.RetainedNodes)
			return false
		}
		for path, b := range before {
			a, found := after[path]
			if !found || a != b {
				t.Logf("seed %d: path %q changed: %+v -> %+v", seed, path, b, a)
				return false
			}
		}
		if rs.RetainedVisits != bestN {
			return false
		}
		if tr.Allocated() != rs.RetainedNodes {
			return false
		}
		if tr.OutstandingVirtualLoss() != 0 {
			return false
		}
		if tr.Generation() != beforeGen+1 {
			return false
		}
		checkStructure(t, tr)

		// The warm tree must keep working: continue searching from it.
		randomSearch(tr, r, 50, fanout)
		if tr.Node(tr.Root()).Visits() != bestN+50 {
			return false
		}
		if tr.OutstandingVirtualLoss() != 0 {
			return false
		}
		checkStructure(t, tr)
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRebaseReclaimsArenaAndClearsFull(t *testing.T) {
	// Tight arena: root + 2 children + 2 grandchildren = 5 slots, so the
	// second grandchild expansion is rejected and marks the tree full.
	tr := newTestTree(5)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	c0 := tr.Node(tr.Root()).firstChild.Load()
	if !tr.Expand(c0, []int{0, 1}, []float32{0.5, 0.5}) {
		t.Fatal("grandchild expansion should fit")
	}
	if tr.Expand(c0+1, []int{0, 1}, []float32{0.5, 0.5}) {
		t.Fatal("arena should be exhausted")
	}
	if !tr.Full() {
		t.Fatal("Full() should be set")
	}

	rs, ok := tr.RebaseRoot(0)
	if !ok {
		t.Fatal("rebase failed")
	}
	if rs.DiscardedNodes != 2 { // old root + action-1 sibling
		t.Fatalf("discarded = %d, want 2", rs.DiscardedNodes)
	}
	if tr.Full() {
		t.Fatal("rebase should clear the full flag after reclaiming slots")
	}
	// The reclaimed slots must be allocatable again.
	gc := tr.Node(tr.Root()).firstChild.Load()
	if !tr.Expand(gc, []int{0, 1}, []float32{0.5, 0.5}) {
		t.Fatal("expansion into reclaimed slots failed")
	}
	checkStructure(t, tr)
}

func TestRebaseGenerationAndWastedCounters(t *testing.T) {
	tr := newTestTree(64)
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5})
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5}) // duplicate
	tr.Expand(tr.Root(), []int{0, 1}, []float32{0.5, 0.5}) // duplicate
	if got := tr.DoubleExpansions(); got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
	gen := tr.Generation()
	if _, ok := tr.RebaseRoot(0); !ok {
		t.Fatal("rebase failed")
	}
	// The cumulative wasted-evaluation count survives the move boundary...
	if got := tr.DoubleExpansions(); got != 2 {
		t.Fatalf("rebase dropped wasted rollouts: %d, want 2", got)
	}
	// ...while the per-generation view starts clean.
	if got := tr.DoubleExpansionsThisGen(); got != 0 {
		t.Fatalf("new generation inherited %d duplicates", got)
	}
	if tr.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", tr.Generation(), gen+1)
	}
	// A duplicate after the rebase lands in the new generation and the
	// cumulative total.
	tr.Expand(tr.Root(), []int{0}, []float32{1})
	tr.Expand(tr.Root(), []int{0}, []float32{1})
	if got := tr.DoubleExpansionsThisGen(); got != 1 {
		t.Fatalf("this-gen duplicates = %d, want 1", got)
	}
	if got := tr.DoubleExpansions(); got != 3 {
		t.Fatalf("cumulative duplicates = %d, want 3", got)
	}
	// Reset clears everything.
	tr.Reset()
	if tr.DoubleExpansions() != 0 || tr.DoubleExpansionsThisGen() != 0 {
		t.Fatal("Reset did not clear wasted counters")
	}
}

func TestRemixRootPriors(t *testing.T) {
	tr := newTestTree(16)
	if didCall := func() (called bool) {
		tr.RemixRootPriors(func([]float32) { called = true })
		return
	}(); didCall {
		t.Fatal("remix must be a no-op on an unexpanded root")
	}
	tr.Expand(tr.Root(), []int{0, 1, 2}, []float32{0.5, 0.3, 0.2})
	tr.RemixRootPriors(func(priors []float32) {
		if len(priors) != 3 || priors[0] != 0.5 {
			t.Fatalf("remix saw priors %v", priors)
		}
		for i := range priors {
			priors[i] = float32(i) * 0.1
		}
	})
	var got []float64
	tr.Children(tr.Root(), func(_ int32, nd *Node) { got = append(got, nd.Prior()) })
	for i, p := range got {
		if math.Abs(p-float64(i)*0.1) > 1e-6 {
			t.Fatalf("stored priors = %v", got)
		}
	}
}
