package mcts

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/tree"
)

// BookEntry is one precomputed opening position: the root visit
// distribution a full search produced for it, keyed by Zobrist hash plus
// the same full-state verification key the transposition table uses (a
// hash collision must miss, never serve another position's moves).
type BookEntry struct {
	Hash   uint64    `json:"hash"`
	Verify []byte    `json:"verify"`
	Ply    int       `json:"ply"`
	Visits int       `json:"visits"`
	Dist   []float32 `json:"dist"`
}

// Book is an offline opening book: precomputed root visit distributions
// for the first plies of a game, served table-first by every engine — a
// Search whose position is booked returns the stored distribution with
// zero playouts and zero DNN evaluations. Built offline with BuildBook
// (typically via cmd/bookgen), persisted as JSON.
//
// After Load or BuildBook the book is immutable, so concurrent Lookups
// from a fleet of engines need no locking.
type Book struct {
	Game     string      `json:"game"`
	Actions  int         `json:"actions"`
	MaxPly   int         `json:"max_ply"`
	Playouts int         `json:"playouts"`
	Entries  []BookEntry `json:"entries"`

	index map[uint64][]int
}

// buildIndex populates the hash → entry-indices map (collisions keep a
// slice so verification can disambiguate).
func (b *Book) buildIndex() {
	b.index = make(map[uint64][]int, len(b.Entries))
	for i, e := range b.Entries {
		b.index[e.Hash] = append(b.index[e.Hash], i)
	}
}

// Len returns the number of booked positions.
func (b *Book) Len() int { return len(b.Entries) }

// Lookup returns the booked entry for st, or nil when the position is not
// in the book (or fails verification).
func (b *Book) Lookup(st game.State) *BookEntry {
	if b == nil || b.index == nil {
		return nil
	}
	idxs, ok := b.index[st.Hash()]
	if !ok {
		return nil
	}
	key := game.StateKey(st, nil)
	for _, i := range idxs {
		if bytes.Equal(b.Entries[i].Verify, key) {
			return &b.Entries[i]
		}
	}
	return nil
}

// Fill copies the booked distribution for st into dist and reports whether
// the position was served.
func (b *Book) Fill(st game.State, dist []float32) bool {
	e := b.Lookup(st)
	if e == nil || len(e.Dist) != len(dist) {
		return false
	}
	copy(dist, e.Dist)
	return true
}

// Save writes the book as JSON.
func (b *Book) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// LoadBook reads a JSON book and builds its lookup index.
func LoadBook(r io.Reader) (*Book, error) {
	var b Book
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("book: %w", err)
	}
	b.buildIndex()
	return &b, nil
}

// bookServe answers a Search from the configured opening book, if the
// position is booked. Engines call it before touching their session: a
// book hit costs zero playouts, and the untouched session still tracks the
// game through the driver's Advance calls, so later unbooked moves resume
// normal (even warm) searching.
func bookServe(cfg Config, st game.State, dist []float32) (Stats, bool) {
	if cfg.Book == nil {
		return Stats{}, false
	}
	if !cfg.Book.Fill(st, dist) {
		return Stats{}, false
	}
	return Stats{BookHits: 1}, true
}

// BookConfig controls BuildBook's breadth-first expansion.
type BookConfig struct {
	// MaxPly is the last ply (0 = initial position only) whose positions
	// are booked.
	MaxPly int
	// MinVisitFrac prunes the expansion: only children holding at least
	// this share of the parent's root visits are descended into (their
	// siblings are opening lines a trained policy essentially never
	// plays). Zero means every positively-visited child.
	MinVisitFrac float32
	// MaxEntries caps the book size (safety valve for wide games);
	// 0 means no cap.
	MaxEntries int
}

// DefaultBookConfig books the first 4 plies along lines that hold at least
// 5% of the parent's visits.
func DefaultBookConfig() BookConfig {
	return BookConfig{MaxPly: 4, MinVisitFrac: 0.05}
}

// BuildBook precomputes the opening book for g by searching every reachable
// opening position breadth-first to MaxPly. All searches run through ONE
// shared transposition table (the caller's Config.TransposeTable, or a
// fresh table when the config has none), which is what makes the sweep
// affordable: sibling opening lines transpose heavily, so each position's
// evaluation is bought once across the whole frontier — the book is
// literally derived from the final state of that table's statistics. The
// returned Stats aggregate every search (Evaluations vs TransHits show the
// dedup).
func BuildBook(g game.Game, cfg Config, eval evaluate.Evaluator, bcfg BookConfig) (*Book, Stats) {
	cfg.ReuseTree = false // every frontier position gets a full fresh search
	cfg.Book = nil
	if cfg.TransposeTable == nil {
		size := cfg.TransposeSize
		if size <= 0 {
			size = tree.DefaultTransTableSize
		}
		cfg.TransposeTable = tree.NewTransTable(size)
	}
	eng := NewSerial(cfg, eval)
	defer eng.Close()

	book := &Book{
		Game:     g.Name(),
		Actions:  g.NumActions(),
		MaxPly:   bcfg.MaxPly,
		Playouts: cfg.Playouts,
	}
	var total Stats

	type frontierItem struct {
		st  game.State
		ply int
	}
	frontier := []frontierItem{{st: g.NewInitial(), ply: 0}}
	seen := map[string]bool{}
	dist := make([]float32, g.NumActions())
	for len(frontier) > 0 {
		if bcfg.MaxEntries > 0 && len(book.Entries) >= bcfg.MaxEntries {
			break
		}
		item := frontier[0]
		frontier = frontier[1:]
		if item.st.Terminal() {
			continue
		}
		key := game.StateKey(item.st, nil)
		id := string(key)
		if seen[id] {
			continue // transposed opening line already booked
		}
		seen[id] = true

		stats := eng.Search(item.st, dist)
		total.Add(stats)
		entry := BookEntry{
			Hash:   item.st.Hash(),
			Verify: key,
			Ply:    item.ply,
			Visits: stats.Playouts + stats.ReusedVisits,
			Dist:   append([]float32(nil), dist...),
		}
		book.Entries = append(book.Entries, entry)
		eng.Advance(DiscardTree)

		if item.ply >= bcfg.MaxPly {
			continue
		}
		for a, frac := range entry.Dist {
			if frac <= 0 || frac < bcfg.MinVisitFrac {
				continue
			}
			child := item.st.Clone()
			child.Play(a)
			frontier = append(frontier, frontierItem{st: child, ply: item.ply + 1})
		}
	}
	book.buildIndex()
	return book, total
}
