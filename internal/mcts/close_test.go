package mcts

import (
	"sync"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
)

// TestCloseDrainsInFlightSearch pins the pool-layer eviction contract: an
// engine Closed while a Search is running on another goroutine must let the
// search finish on its own tree and only then discard — never free or reset
// the session under live rollouts. Run under -race in CI (the serve session
// pool evicts engines exactly this way).
func TestCloseDrainsInFlightSearch(t *testing.T) {
	g := tictactoe.New()
	for _, mk := range []struct {
		name string
		make func(cfg Config) Engine
	}{
		{"serial", func(cfg Config) Engine {
			return NewSerial(cfg, &evaluate.Random{Latency: 200 * time.Microsecond})
		}},
		{"shared", func(cfg Config) Engine {
			return NewShared(cfg, 2, &evaluate.Random{Latency: 200 * time.Microsecond})
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Playouts = 64
			cfg.ReuseTree = true
			cfg.Seed = 7
			eng := mk.make(cfg)

			st := g.NewInitial()
			dist := make([]float32, g.NumActions())
			var wg sync.WaitGroup
			started := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				close(started)
				stats := eng.Search(st.Clone(), dist)
				if stats.Playouts == 0 {
					t.Error("in-flight search returned no playouts")
				}
			}()
			<-started
			// Race Close against the running search: it must block until the
			// search drains, then discard the tree.
			eng.Close()
			wg.Wait()

			// A second Close is a no-op, and a post-Close Advance must not
			// promote anything from the discarded tree.
			eng.Close()
			eng.Advance(0)
		})
	}
}
