package mcts

import (
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// RootParallel implements the root-parallelisation baseline of Section 2.2
// (Kato & Takeuchi): W independent trees searched by W workers with the
// playout budget split evenly, root statistics aggregated at the end. No
// communication during the search — and correspondingly, "multiple workers
// visit repetitive states".
type RootParallel struct {
	cfg     Config
	workers int
	eval    evaluate.Evaluator
	r       *rng.Rand
}

// NewRootParallel creates the baseline with the given worker count.
func NewRootParallel(cfg Config, workers int, eval evaluate.Evaluator) *RootParallel {
	if workers < 1 {
		panic("mcts: root-parallel needs >= 1 worker")
	}
	if cfg.TransposeTable == nil && cfg.TransposeSize > 0 {
		// One table across the W private trees: the workers re-search the
		// same positions by construction ("multiple workers visit
		// repetitive states"), so sharing evaluations is exactly the waste
		// the transposition table exists to reclaim. StateStats updates are
		// atomic and the table is lock-striped, so the single-owner serial
		// sub-searches stay race-free.
		cfg.TransposeTable = tree.NewTransTable(cfg.TransposeSize)
		cfg.TransposeSize = 0
	}
	return &RootParallel{cfg: cfg, workers: workers, eval: eval, r: rng.New(cfg.Seed)}
}

// Name implements Engine.
func (e *RootParallel) Name() string { return "root-parallel" }

// Close implements Engine.
func (e *RootParallel) Close() {}

// Advance implements Engine. Root parallelisation has no persistent tree
// to warm: every Search builds W fresh private trees and discards them
// after aggregation, so subtree reuse is structurally impossible and
// Advance is a no-op.
func (e *RootParallel) Advance(action int) {}

// Search implements Engine.
func (e *RootParallel) Search(st game.State, dist []float32) Stats {
	if bs, ok := bookServe(e.cfg, st, dist); ok {
		return bs
	}
	perWorker := e.cfg.Playouts / e.workers
	if perWorker < 1 {
		perWorker = 1
	}
	subCfg := e.cfg
	subCfg.Playouts = perWorker
	engines := make([]*Serial, e.workers)
	for w := range engines {
		c := subCfg
		c.Seed = e.r.Uint64()
		engines[w] = NewSerial(c, e.eval)
	}
	dists := make([][]float32, e.workers)
	shards := make([]Stats, e.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dists[w] = make([]float32, len(dist))
			shards[w] = engines[w].Search(st, dists[w])
		}(w)
	}
	wg.Wait()
	var stats Stats
	for i := range dist {
		dist[i] = 0
	}
	for w := 0; w < e.workers; w++ {
		for i := range dist {
			dist[i] += dists[w][i] / float32(e.workers)
		}
		stats.Add(shards[w]) // field-complete merge: phase timings included
	}
	// The shard sums of Playouts and Duration describe the sub-searches,
	// not this move; overwrite with the aggregate view.
	stats.Playouts = perWorker * e.workers
	stats.Duration = time.Since(start)
	return stats
}

// LeafParallel implements the leaf-parallelisation baseline of Section 2.2
// (Cazenave & Jouandeau): a single sequential tree, but each leaf is
// evaluated K times concurrently and the values averaged. With a
// deterministic DNN evaluator the K evaluations are redundant — exactly the
// "wasted parallelism due to the lack of diverse evaluation coverage" the
// paper cites — which the experiments quantify.
type LeafParallel struct {
	s     session
	k     int
	async evaluate.Async
	r     *rng.Rand

	input   []float32
	actions []int
	priors  []float32
	key     []byte
}

// NewLeafParallel creates the baseline with K parallel evaluations per leaf.
func NewLeafParallel(cfg Config, k int, async evaluate.Async) *LeafParallel {
	if k < 1 {
		panic("mcts: leaf-parallel needs K >= 1")
	}
	return &LeafParallel{s: session{cfg: cfg}, k: k, async: async, r: rng.New(cfg.Seed)}
}

// Name implements Engine.
func (e *LeafParallel) Name() string { return "leaf-parallel" }

// Close implements Engine: drains an in-flight Search/Advance and releases
// the tree (see session.close).
func (e *LeafParallel) Close() { e.s.close() }

// Advance implements Engine. The sequential tree persists between moves,
// so the baseline participates in subtree reuse like the serial engine.
func (e *LeafParallel) Advance(action int) { e.s.advance(action) }

// Search implements Engine.
func (e *LeafParallel) Search(st game.State, dist []float32) Stats {
	if bs, ok := bookServe(e.s.cfg, st, dist); ok {
		return bs
	}
	e.s.mu.Lock()
	defer e.s.mu.Unlock()
	var stats Stats
	_, budget := e.s.prepare(st, &stats, rootNoiseRemix(e.s.cfg, e.r))
	c, h, w := st.EncodedShape()
	if e.input == nil {
		e.input = make([]float32, c*h*w)
		e.priors = make([]float32, st.NumActions())
	}
	start := time.Now()
	for p := 0; p < budget; p++ {
		e.rollout(st, &stats)
	}
	stats.Playouts = budget
	stats.Duration = time.Since(start)
	e.s.finish(&stats)
	e.s.tr.VisitDistribution(dist)
	return stats
}

func (e *LeafParallel) rollout(root game.State, stats *Stats) {
	tr := e.s.tr
	st := root.Clone()
	idx := tr.Root()
	depth := 0
	for tr.Node(idx).Expanded() {
		idx = tr.SelectChild(idx)
		st.Play(tr.Node(idx).Action())
		depth++
	}
	stats.SumDepth += depth

	nd := tr.Node(idx)
	var value float64
	switch {
	case nd.Terminal():
		value = nd.TerminalValue()
		stats.TerminalHits++
	case st.Terminal():
		value = terminalValue(st)
		tr.MarkTerminal(idx, value)
		stats.TerminalHits++
	default:
		var entry *tree.TransEntry
		if tt := e.s.tt; tt != nil {
			entry, e.key = transProbe(tt, tr, st, idx, e.key)
			if v, acts, prs, ok := entry.LoadEval(e.actions[:0], e.priors[:0]); ok {
				// Served from the transposition table: the K-fold fan-out
				// (already redundant under a deterministic evaluator) is
				// skipped entirely.
				value = v
				e.actions = acts
				if idx == tr.Root() {
					applyRootNoise(e.s.cfg, e.r, prs)
				}
				tr.Expand(idx, e.actions, prs)
				stats.Expansions++
				stats.TransHits++
				break
			}
		}
		// Fan out K evaluations of the same state, average the values.
		st.Encode(e.input)
		reqs := make([]*evaluate.Request, e.k)
		for i := range reqs {
			reqs[i] = &evaluate.Request{
				Input:  e.input,
				Policy: make([]float32, st.NumActions()),
			}
			e.async.Submit(reqs[i])
		}
		e.async.Flush()
		var sum float64
		var lastPolicy []float32
		for i := 0; i < e.k; i++ {
			req := <-e.async.Completions()
			sum += req.Value
			lastPolicy = req.Policy
		}
		value = sum / float64(e.k)
		stats.Evaluations += e.k
		e.actions = st.LegalMoves(e.actions[:0])
		priors := e.priors[:len(e.actions)]
		maskedPriors(lastPolicy, e.actions, priors)
		if entry != nil {
			// Publish the clean (pre-noise) priors for transposed lines.
			entry.StoreEval(value, e.actions, priors)
		}
		if idx == tr.Root() {
			applyRootNoise(e.s.cfg, e.r, priors)
		}
		tr.Expand(idx, e.actions, priors)
		stats.Expansions++
	}
	tr.Backup(idx, value, false)
}
