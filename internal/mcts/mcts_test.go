package mcts

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/connect4"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/rng"
)

func testCfg(playouts int) Config {
	cfg := DefaultConfig()
	cfg.Playouts = playouts
	return cfg
}

// winInOnePosition returns a tic-tac-toe state where the mover (X) wins
// immediately by playing action 2.
func winInOnePosition() game.State {
	s := tictactoe.New().NewInitial()
	for _, mv := range []int{0, 3, 1, 4} {
		s.Play(mv)
	}
	return s
}

// blockPosition returns a state where O must play 2 to block X's win.
func blockPosition() game.State {
	s := tictactoe.New().NewInitial()
	for _, mv := range []int{0, 4, 1} {
		s.Play(mv)
	}
	return s
}

func argmax32(xs []float32) int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func checkDistribution(t *testing.T, st game.State, dist []float32) {
	t.Helper()
	legal := make(map[int]bool)
	for _, mv := range st.LegalMoves(nil) {
		legal[mv] = true
	}
	var sum float64
	for a, p := range dist {
		if p < 0 {
			t.Fatalf("negative probability at %d", a)
		}
		if p > 0 && !legal[a] {
			t.Fatalf("probability mass on illegal action %d", a)
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func runEngine(t *testing.T, e Engine, st game.State) ([]float32, Stats) {
	t.Helper()
	dist := make([]float32, st.NumActions())
	stats := e.Search(st, dist)
	checkDistribution(t, st, dist)
	if root := st; !root.Terminal() && stats.Playouts == 0 {
		t.Fatal("no playouts recorded")
	}
	return dist, stats
}

func TestSerialFindsImmediateWin(t *testing.T) {
	e := NewSerial(testCfg(400), &evaluate.Random{})
	dist, stats := runEngine(t, e, winInOnePosition())
	if got := argmax32(dist); got != 2 {
		t.Fatalf("best move = %d, want 2 (win); dist=%v", got, dist)
	}
	if stats.TerminalHits == 0 {
		t.Error("winning line should produce terminal hits")
	}
	if e.Tree().OutstandingVirtualLoss() != 0 {
		t.Error("serial search left virtual loss")
	}
}

func TestSerialBlocksOpponentWin(t *testing.T) {
	e := NewSerial(testCfg(1200), &evaluate.Random{})
	dist, _ := runEngine(t, e, blockPosition())
	if got := argmax32(dist); got != 2 {
		t.Fatalf("best move = %d, want 2 (block); dist=%v", got, dist)
	}
}

func TestSerialRootVisitsEqualPlayouts(t *testing.T) {
	e := NewSerial(testCfg(300), &evaluate.Random{})
	st := connect4.New().NewInitial()
	runEngine(t, e, st)
	if got := e.Tree().Node(e.Tree().Root()).Visits(); got != 300 {
		t.Fatalf("root visits = %d, want 300", got)
	}
}

func TestSerialSearchIsReusable(t *testing.T) {
	e := NewSerial(testCfg(100), &evaluate.Random{})
	st := connect4.New().NewInitial()
	d1, _ := runEngine(t, e, st)
	d2, _ := runEngine(t, e, st)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("same seedless search on same state diverged across reuse")
		}
	}
}

func TestSharedEngineCorrectness(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		e := NewShared(testCfg(400), workers, &evaluate.Random{})
		dist, _ := runEngine(t, e, winInOnePosition())
		if got := argmax32(dist); got != 2 {
			t.Errorf("workers=%d: best move = %d, want 2", workers, got)
		}
		tr := e.Tree()
		if got := tr.Node(tr.Root()).Visits(); got != 400 {
			t.Errorf("workers=%d: root visits = %d, want 400", workers, got)
		}
		if vl := tr.OutstandingVirtualLoss(); vl != 0 {
			t.Errorf("workers=%d: outstanding VL = %d", workers, vl)
		}
	}
}

func TestSharedWithBatchedSyncEvaluator(t *testing.T) {
	// Shared-tree + accelerator queue with threshold == workers (the
	// paper's shared+GPU configuration). The drain-on-retire path prevents
	// end-of-move deadlock when the final partial batch cannot fill.
	cost := accel.DefaultCostModel()
	cost.LaunchLatency = 0
	cost.ComputeBase = 0
	cost.ComputePerSample = 0
	dev := accel.NewModel(cost)
	workers := 4
	eval := evaluate.NewBatchedSync(dev, workers)
	e := NewShared(testCfg(203), workers, eval) // 203 % 4 != 0: partial final batch
	st := connect4.New().NewInitial()
	dist, _ := runEngine(t, e, st)
	_ = dist
	tr := e.Tree()
	if got := tr.Node(tr.Root()).Visits(); got != 203 {
		t.Fatalf("root visits = %d, want 203", got)
	}
}

func TestLocalEngineWithPool(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		pool := evaluate.NewPool(&evaluate.Random{}, workers)
		e := NewLocal(testCfg(400), pool, workers)
		dist, _ := runEngine(t, e, winInOnePosition())
		if got := argmax32(dist); got != 2 {
			t.Errorf("workers=%d: best move = %d, want 2", workers, got)
		}
		tr := e.Tree()
		if got := tr.Node(tr.Root()).Visits(); got != 400 {
			t.Errorf("workers=%d: root visits = %d, want 400", workers, got)
		}
		if vl := tr.OutstandingVirtualLoss(); vl != 0 {
			t.Errorf("workers=%d: outstanding VL = %d", workers, vl)
		}
		pool.Close()
	}
}

func TestLocalEngineWithBatchedAsync(t *testing.T) {
	cost := accel.DefaultCostModel()
	cost.LaunchLatency = 0
	cost.ComputeBase = 0
	cost.ComputePerSample = 0
	for _, batch := range []int{1, 3, 8} {
		dev := accel.NewModel(cost)
		async := evaluate.NewBatchedAsync(dev, batch, 16)
		e := NewLocal(testCfg(301), async, 16)
		st := connect4.New().NewInitial()
		runEngine(t, e, st)
		tr := e.Tree()
		if got := tr.Node(tr.Root()).Visits(); got != 301 {
			t.Errorf("batch=%d: root visits = %d, want 301", batch, got)
		}
		async.Close()
	}
}

func TestLocalHonoursMaxInFlight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxInFlight=0 did not panic")
		}
	}()
	NewLocal(testCfg(10), nil, 0)
}

func TestRootParallelCorrectness(t *testing.T) {
	e := NewRootParallel(testCfg(400), 4, &evaluate.Random{})
	dist, stats := runEngine(t, e, winInOnePosition())
	if got := argmax32(dist); got != 2 {
		t.Fatalf("best move = %d, want 2", got)
	}
	if stats.Playouts != 400 {
		t.Fatalf("playouts = %d", stats.Playouts)
	}
}

func TestLeafParallelCorrectness(t *testing.T) {
	pool := evaluate.NewPool(&evaluate.Random{}, 4)
	defer pool.Close()
	e := NewLeafParallel(testCfg(300), 4, pool)
	dist, _ := runEngine(t, e, winInOnePosition())
	if got := argmax32(dist); got != 2 {
		t.Fatalf("best move = %d, want 2", got)
	}
}

func TestEnginesAgreeOnTactics(t *testing.T) {
	// Every scheme must find the forced win; this is the algorithm-quality
	// analogue of Section 5.5 (parallelism alters trajectories but not the
	// ability to see one-ply tactics).
	st := winInOnePosition()
	pool := evaluate.NewPool(&evaluate.Random{}, 4)
	defer pool.Close()
	engines := []Engine{
		NewSerial(testCfg(400), &evaluate.Random{}),
		NewShared(testCfg(400), 4, &evaluate.Random{}),
		NewLocal(testCfg(400), pool, 4),
		NewRootParallel(testCfg(400), 4, &evaluate.Random{}),
	}
	for _, e := range engines {
		dist := make([]float32, st.NumActions())
		e.Search(st, dist)
		if got := argmax32(dist); got != 2 {
			t.Errorf("%s: best move = %d, want 2", e.Name(), got)
		}
		e.Close()
	}
}

func TestProfilePhaseTimes(t *testing.T) {
	cfg := testCfg(200)
	cfg.Profile = true
	e := NewSerial(cfg, &evaluate.Random{Latency: 20_000}) // 20us eval
	st := connect4.New().NewInitial()
	_, stats := runEngine(t, e, st)
	if stats.SelectTime <= 0 || stats.BackupTime <= 0 || stats.EvalTime <= 0 {
		t.Fatalf("phase times missing: %+v", stats)
	}
	if stats.EvalTime < stats.SelectTime {
		t.Errorf("eval (%v) should dominate select (%v) with a 20us DNN",
			stats.EvalTime, stats.SelectTime)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Playouts: 100, Duration: 200 * 1000, SumDepth: 250}
	if s.PerIteration() != 2000 {
		t.Fatalf("PerIteration = %v", s.PerIteration())
	}
	if s.AvgDepth() != 2.5 {
		t.Fatalf("AvgDepth = %v", s.AvgDepth())
	}
	var empty Stats
	if empty.PerIteration() != 0 || empty.AvgDepth() != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestStatsAddSumsEveryField(t *testing.T) {
	a := Stats{
		Playouts: 10, Duration: 100, Expansions: 8, TerminalHits: 2,
		SumDepth: 30, Evaluations: 9, WastedEvals: 1, ReusedNodes: 40, ReusedVisits: 20,
		SelectTime: 5, ExpandTime: 6, BackupTime: 7, EvalTime: 8,
	}
	b := Stats{
		Playouts: 1, Duration: 10, Expansions: 1, TerminalHits: 1,
		SumDepth: 3, Evaluations: 2, WastedEvals: 1, ReusedNodes: 4, ReusedVisits: 2,
		SelectTime: 1, ExpandTime: 2, BackupTime: 3, EvalTime: 4,
	}
	a.Add(b)
	want := Stats{
		Playouts: 11, Duration: 110, Expansions: 9, TerminalHits: 3,
		SumDepth: 33, Evaluations: 11, WastedEvals: 2, ReusedNodes: 44, ReusedVisits: 22,
		SelectTime: 6, ExpandTime: 8, BackupTime: 10, EvalTime: 12,
	}
	if a != want {
		t.Fatalf("Add merged to %+v, want %+v — a field was silently dropped", a, want)
	}
}

// TestStatsAddPreservesPhaseTimings pins the fix for the silent drop: the
// shared engine's shard merge must carry phase timings through Add even
// when the aggregate is assembled outside a profiling branch.
func TestStatsAddPreservesPhaseTimings(t *testing.T) {
	shards := []Stats{
		{SelectTime: 10, BackupTime: 5, Expansions: 3},
		{SelectTime: 20, BackupTime: 15, EvalTime: 9, Expansions: 4},
	}
	var merged Stats
	for _, s := range shards {
		merged.Add(s)
	}
	if merged.SelectTime != 30 || merged.BackupTime != 20 || merged.EvalTime != 9 {
		t.Fatalf("phase timings dropped in merge: %+v", merged)
	}
	if merged.Expansions != 7 {
		t.Fatalf("expansions = %d, want 7", merged.Expansions)
	}
}

func TestDirichletNoiseChangesRootPriors(t *testing.T) {
	cfg := testCfg(50)
	cfg.DirichletAlpha = 0.3
	cfg.NoiseFrac = 0.25
	cfg.Seed = 7
	e1 := NewSerial(cfg, &evaluate.Random{})
	cfg.Seed = 8
	e2 := NewSerial(cfg, &evaluate.Random{})
	st := connect4.New().NewInitial()
	d1 := make([]float32, st.NumActions())
	d2 := make([]float32, st.NumActions())
	e1.Search(st, d1)
	e2.Search(st, d2)
	same := true
	for i := range d1 {
		if d1[i] != d2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different noise seeds produced identical searches")
	}
}

func TestMaskedPriors(t *testing.T) {
	policy := []float32{0.5, 0.1, 0.2, 0.2}
	out := make([]float32, 2)
	maskedPriors(policy, []int{1, 3}, out)
	if math.Abs(float64(out[0]-1.0/3)) > 1e-6 || math.Abs(float64(out[1]-2.0/3)) > 1e-6 {
		t.Fatalf("masked priors = %v", out)
	}
	// zero-mass fallback
	maskedPriors([]float32{0, 0, 0, 0}, []int{0, 2}, out)
	if out[0] != 0.5 || out[1] != 0.5 {
		t.Fatalf("fallback priors = %v", out)
	}
}

func TestSerialDistributionProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		st := connect4.New().NewInitial()
		for i := 0; i < r.Intn(10); i++ {
			moves := st.LegalMoves(nil)
			if len(moves) == 0 || st.Terminal() {
				break
			}
			st.Play(moves[r.Intn(len(moves))])
		}
		if st.Terminal() {
			return true
		}
		e := NewSerial(testCfg(60), &evaluate.Random{})
		dist := make([]float32, st.NumActions())
		e.Search(st, dist)
		legal := make(map[int]bool)
		for _, mv := range st.LegalMoves(nil) {
			legal[mv] = true
		}
		var sum float64
		for a, p := range dist {
			if p < 0 || (p > 0 && !legal[a]) {
				return false
			}
			sum += float64(p)
		}
		return math.Abs(sum-1) < 1e-4
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
