package mcts

import (
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/connect4"
	"github.com/parmcts/parmcts/internal/stats"
)

// TestParallelDistributionsNearSerial is the statistical form of the
// Section 5.5 argument: tree-parallel execution perturbs individual search
// trajectories (virtual loss, stale statistics) but the resulting root
// visit distributions must stay close to the serial reference — parallel
// workers change *when* information arrives, not *what* the search values.
func TestParallelDistributionsNearSerial(t *testing.T) {
	g := connect4.New()
	st := g.NewInitial()
	// A midgame position with meaningful structure.
	for _, mv := range []int{3, 3, 2, 4, 4} {
		st.Play(mv)
	}
	cfg := DefaultConfig()
	cfg.Playouts = 2000

	serialDist := make([]float32, g.NumActions())
	NewSerial(cfg, &evaluate.Random{}).Search(st, serialDist)

	pool := evaluate.NewPool(&evaluate.Random{}, 4)
	defer pool.Close()
	engines := map[string]Engine{
		"shared": NewShared(cfg, 4, &evaluate.Random{}),
		"local":  NewLocal(cfg, pool, 4),
	}
	for name, e := range engines {
		dist := make([]float32, g.NumActions())
		e.Search(st, dist)
		tv := stats.TotalVariation(serialDist, dist)
		// Identical playout budgets and evaluator: the distributions agree
		// up to virtual-loss perturbation. 0.35 TV is a loose envelope —
		// failures indicate a backup or selection bug, not noise.
		if tv > 0.35 {
			t.Errorf("%s: total variation vs serial = %.3f (serial %v vs %v)",
				name, tv, serialDist, dist)
		}
		// The top move must agree whenever the serial search has a clear
		// preference; with near-tied candidates, argmax legitimately flips
		// under virtual-loss perturbation.
		top := argmax32(serialDist)
		second := float32(-1)
		for a, p := range serialDist {
			if a != top && p > second {
				second = p
			}
		}
		if serialDist[top]-second > 0.1 && top != argmax32(dist) {
			t.Errorf("%s: top move differs from serial (%d vs %d) despite a clear margin",
				name, argmax32(dist), top)
		}
	}
}
