package mcts

import (
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/connect4"
	"github.com/parmcts/parmcts/internal/tree"
)

func reuseCfg(playouts int) Config {
	cfg := DefaultConfig()
	cfg.Playouts = playouts
	cfg.ReuseTree = true
	return cfg
}

// playAndAdvance runs one search, plays the argmax move on st, and
// advances the engine past it, returning the action and the search stats.
func playAndAdvance(t *testing.T, e Engine, st game.State) (int, Stats) {
	t.Helper()
	dist := make([]float32, st.NumActions())
	stats := e.Search(st, dist)
	checkDistribution(t, st, dist)
	action := argmax32(dist)
	st.Play(action)
	e.Advance(action)
	return action, stats
}

// rootPriors reads the current root children's priors, keyed by action.
func rootPriors(tr *tree.Tree) map[int]float64 {
	out := map[int]float64{}
	tr.Children(tr.Root(), func(_ int32, nd *tree.Node) {
		out[nd.Action()] = nd.Prior()
	})
	return out
}

func TestSerialWarmSearchReducesEvaluations(t *testing.T) {
	const playouts = 400
	warm := NewSerial(reuseCfg(playouts), &evaluate.Random{})
	st := connect4.New().NewInitial()
	_, first := playAndAdvance(t, warm, st)
	if first.ReusedVisits != 0 || first.Evaluations == 0 {
		t.Fatalf("cold search stats: %+v", first)
	}

	dist := make([]float32, st.NumActions())
	second := warm.Search(st, dist)
	checkDistribution(t, st, dist)
	if second.ReusedVisits == 0 {
		t.Fatal("warm search retained no visits")
	}
	if second.Playouts+second.ReusedVisits != playouts {
		t.Fatalf("playouts %d + reused %d != target %d",
			second.Playouts, second.ReusedVisits, playouts)
	}
	if got := warm.Tree().Node(warm.Tree().Root()).Visits(); got != playouts {
		t.Fatalf("warm root visits = %d, want %d", got, playouts)
	}
	if second.ReuseFraction() <= 0 {
		t.Fatalf("reuse fraction = %v", second.ReuseFraction())
	}

	// The same position searched cold must cost strictly more evaluations.
	cold := NewSerial(reuseCfg(playouts), &evaluate.Random{})
	coldStats := cold.Search(st, dist)
	if second.Evaluations >= coldStats.Evaluations {
		t.Fatalf("warm search evaluations %d >= cold %d",
			second.Evaluations, coldStats.Evaluations)
	}
}

func TestReuseDisabledAdvanceIsNoOp(t *testing.T) {
	cfg := testCfg(200) // ReuseTree false
	e := NewSerial(cfg, &evaluate.Random{})
	st := connect4.New().NewInitial()
	playAndAdvance(t, e, st)
	dist := make([]float32, st.NumActions())
	stats := e.Search(st, dist)
	if stats.ReusedVisits != 0 || stats.ReusedNodes != 0 {
		t.Fatalf("reuse-off search reported reuse: %+v", stats)
	}
	if stats.Playouts != 200 {
		t.Fatalf("playouts = %d, want full budget 200", stats.Playouts)
	}
	// And the distribution must match a fresh engine's cold search.
	fresh := NewSerial(cfg, &evaluate.Random{})
	freshDist := make([]float32, st.NumActions())
	fresh.Search(st, freshDist)
	for i := range dist {
		if dist[i] != freshDist[i] {
			t.Fatal("reuse-off engine diverged from cold-search behaviour")
		}
	}
}

func TestAdvanceDiscardTreeGoesCold(t *testing.T) {
	e := NewSerial(reuseCfg(200), &evaluate.Random{})
	st := connect4.New().NewInitial()
	playAndAdvance(t, e, st)
	e.Advance(DiscardTree)
	dist := make([]float32, st.NumActions())
	stats := e.Search(connect4.New().NewInitial(), dist)
	if stats.ReusedVisits != 0 {
		t.Fatalf("discarded session still reported reuse: %+v", stats)
	}
	if stats.Playouts != 200 {
		t.Fatalf("playouts = %d, want 200", stats.Playouts)
	}
}

// TestWarmEnginesKeepSearchInvariants drives three moves of a game through
// every reuse-capable engine and checks the core invariants on the warm
// path: the root visit total always reaches the configured target, virtual
// loss drains to zero, and reuse appears from move 2 on.
func TestWarmEnginesKeepSearchInvariants(t *testing.T) {
	const playouts = 300
	pool := evaluate.NewPool(&evaluate.Random{}, 4)
	defer pool.Close()
	pool2 := evaluate.NewPool(&evaluate.Random{}, 4)
	defer pool2.Close()
	type testCase struct {
		name string
		e    Engine
		tr   func() *tree.Tree
	}
	serial := NewSerial(reuseCfg(playouts), &evaluate.Random{})
	shared := NewShared(reuseCfg(playouts), 4, &evaluate.Random{})
	local := NewLocal(reuseCfg(playouts), pool, 4)
	leaf := NewLeafParallel(reuseCfg(playouts), 2, pool2)
	engines := []testCase{
		{"serial", serial, serial.Tree},
		{"shared", shared, shared.Tree},
		{"local", local, local.Tree},
		{"leaf-parallel", leaf, nil},
	}
	for _, tc := range engines {
		t.Run(tc.name, func(t *testing.T) {
			st := connect4.New().NewInitial()
			for mv := 0; mv < 3 && !st.Terminal(); mv++ {
				_, stats := playAndAdvance(t, tc.e, st)
				if mv > 0 {
					if stats.ReusedVisits == 0 {
						t.Errorf("move %d: no reuse on warm tree", mv)
					}
					if stats.Playouts+stats.ReusedVisits != playouts {
						t.Errorf("move %d: playouts %d + reused %d != %d",
							mv, stats.Playouts, stats.ReusedVisits, playouts)
					}
				}
			}
			if tc.tr != nil {
				if vl := tc.tr().OutstandingVirtualLoss(); vl != 0 {
					t.Errorf("outstanding virtual loss after warm moves: %d", vl)
				}
			}
			tc.e.Close()
		})
	}
}

func TestWarmRootNoiseReinjected(t *testing.T) {
	cfg := reuseCfg(300)
	cfg.DirichletAlpha = 0.3
	cfg.NoiseFrac = 0.25
	cfg.Seed = 11
	e := NewSerial(cfg, &evaluate.Random{})
	st := connect4.New().NewInitial()
	playAndAdvance(t, e, st)

	// After Advance the promoted root's children carry the clean priors
	// they were expanded with (noise only ever lands on a root).
	before := rootPriors(e.Tree())
	if len(before) == 0 {
		t.Fatal("promoted root unexpanded")
	}
	dist := make([]float32, st.NumActions())
	e.Search(st, dist)
	after := rootPriors(e.Tree())

	changed := false
	for a, p := range before {
		if after[a] != p {
			changed = true
		}
	}
	if !changed {
		t.Fatal("warm search did not re-inject Dirichlet noise into root priors")
	}
}

// TestRebaseRaceAdvanceDuringSearch is the -race acceptance test: Advance
// fires from a second goroutine while a shared-tree search with in-flight
// virtual loss is still running. The session lock must make the rebase
// wait for every rollout (and its virtual loss) to drain before the
// compaction moves any node. Whichever side wins the race, the budget
// arithmetic and the tree structure must stay coherent.
func TestRebaseRaceAdvanceDuringSearch(t *testing.T) {
	g := connect4.New()
	cfg := reuseCfg(400)
	e := NewShared(cfg, 4, &evaluate.Random{Latency: 20 * time.Microsecond})
	defer e.Close()
	st := g.NewInitial()
	for ply := 0; ply < 4 && !st.Terminal(); ply++ {
		// The move is chosen before the search finishes — legal either
		// way — so Advance genuinely races the running search.
		action := st.LegalMoves(nil)[ply%2]
		done := make(chan Stats, 1)
		go func() {
			d := make([]float32, g.NumActions())
			done <- e.Search(st.Clone(), d)
		}()
		e.Advance(action) // races Search; must block until rollouts drain
		stats := <-done
		if stats.Playouts+stats.ReusedVisits != cfg.Playouts {
			t.Fatalf("ply %d: playouts %d + reused %d != %d",
				ply, stats.Playouts, stats.ReusedVisits, cfg.Playouts)
		}
		st.Play(action)
	}
	// The tree must still be structurally sound: a normal warm search on
	// the final position works and drains cleanly.
	dist := make([]float32, g.NumActions())
	e.Search(st, dist)
	checkDistribution(t, st, dist)
	if vl := e.Tree().OutstandingVirtualLoss(); vl != 0 {
		t.Fatalf("outstanding virtual loss: %d", vl)
	}
}

// TestAdvanceBeforeFirstSearchStaysCold pins the arena game-2 hazard: at a
// game boundary the session is discarded but the tree's memory is kept, so
// an opponent move arriving BEFORE this engine's first search of the new
// game must not rebase the previous game's leftover tree into a "warm"
// subtree for an unrelated position.
func TestAdvanceBeforeFirstSearchStaysCold(t *testing.T) {
	e := NewSerial(reuseCfg(200), &evaluate.Random{})
	st := connect4.New().NewInitial()
	playAndAdvance(t, e, st) // game 1: search + advance
	e.Advance(DiscardTree)   // game boundary

	// Game 2: the opponent moves first; their move reaches us before we
	// have searched anything this game.
	st2 := connect4.New().NewInitial()
	st2.Play(3)
	e.Advance(3)
	dist := make([]float32, st2.NumActions())
	stats := e.Search(st2, dist)
	checkDistribution(t, st2, dist)
	if stats.ReusedVisits != 0 || stats.ReusedNodes != 0 {
		t.Fatalf("stale tree was promoted as warm: %+v", stats)
	}
	if stats.Playouts != 200 {
		t.Fatalf("playouts = %d, want the full cold budget 200", stats.Playouts)
	}
	// And the session re-syncs: the next move reuses normally.
	_, s2 := playAndAdvance(t, e, st2)
	_ = s2
	dist2 := make([]float32, st2.NumActions())
	s3 := e.Search(st2, dist2)
	if s3.ReusedVisits == 0 {
		t.Fatal("session did not re-warm after its first search of the new game")
	}
}
