package mcts

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// Drainer is implemented by evaluators that buffer requests (the
// accelerator queue): Drain releases a partial batch. The shared engine
// calls it when a worker retires, so stragglers blocked on a batch that can
// no longer fill are released (end-of-move effect, Section 3.3).
type Drainer interface {
	Drain()
}

// Shared implements Algorithm 2: a pool of N threads, each executing
// complete "threadsafe_rollout"s against a single tree in shared memory.
// Virtual loss diversifies the paths; per-node locks protect the
// multi-field virtual-loss and backup updates.
type Shared struct {
	cfg     Config
	workers int
	eval    evaluate.Evaluator
	tr      *tree.Tree
	r       *rng.Rand
}

// NewShared creates a shared-tree engine with the given worker count.
func NewShared(cfg Config, workers int, eval evaluate.Evaluator) *Shared {
	if workers < 1 {
		panic("mcts: shared engine needs >= 1 worker")
	}
	return &Shared{cfg: cfg, workers: workers, eval: eval, r: rng.New(cfg.Seed)}
}

// Name implements Engine.
func (e *Shared) Name() string { return "shared" }

// Close implements Engine.
func (e *Shared) Close() {}

// Workers returns the configured worker count.
func (e *Shared) Workers() int { return e.workers }

// Search implements Engine.
func (e *Shared) Search(st game.State, dist []float32) Stats {
	if e.tr == nil {
		e.tr = newTreeFor(e.cfg, st)
	} else {
		e.tr.Reset()
	}

	var counter atomic.Int64 // playout tickets
	var wg sync.WaitGroup
	shards := make([]Stats, e.workers)
	noises := make([]*rng.Rand, e.workers)
	for w := range noises {
		noises[w] = e.r.Split() // split on one goroutine before the race
	}
	start := time.Now()
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := newWorkerScratch(st)
			noise := noises[w]
			for {
				t := counter.Add(1)
				if t > int64(e.cfg.Playouts) {
					break
				}
				e.rollout(st, ws, noise, &shards[w])
			}
			// This worker is done; release any partial accelerator batch so
			// the remaining workers are not stranded waiting for it.
			if d, ok := e.eval.(Drainer); ok {
				d.Drain()
			}
		}(w)
	}
	wg.Wait()
	var stats Stats
	for _, s := range shards {
		stats.Add(s) // field-complete merge: phase timings are never dropped
	}
	stats.Playouts = e.cfg.Playouts
	stats.Duration = time.Since(start)
	e.tr.VisitDistribution(dist)
	return stats
}

// workerScratch holds one worker thread's reusable buffers.
type workerScratch struct {
	input   []float32
	policy  []float32
	actions []int
	priors  []float32
}

func newWorkerScratch(st game.State) *workerScratch {
	c, h, w := st.EncodedShape()
	return &workerScratch{
		input:  make([]float32, c*h*w),
		policy: make([]float32, st.NumActions()),
		priors: make([]float32, st.NumActions()),
	}
}

// rollout is the threadsafe_rollout of Algorithm 2.
func (e *Shared) rollout(root game.State, ws *workerScratch, noise *rng.Rand, stats *Stats) {
	prof := e.cfg.Profile
	tr := e.tr
	st := root.Clone()
	idx := tr.Root()

	// Selection with virtual loss. The root's VL is applied too so that
	// sqrt(sum N) reflects in-flight traffic.
	t0 := now(prof)
	tr.ApplyVirtualLoss(idx, true)
	depth := 0
	for tr.Node(idx).Expanded() {
		idx = tr.SelectChild(idx)
		tr.ApplyVirtualLoss(idx, true)
		st.Play(tr.Node(idx).Action())
		depth++
	}
	stats.SelectTime += since(prof, t0)
	stats.SumDepth += depth

	nd := tr.Node(idx)
	var value float64
	switch {
	case nd.Terminal():
		value = nd.TerminalValue()
		stats.TerminalHits++
	case st.Terminal():
		value = terminalValue(st)
		tr.MarkTerminal(idx, value)
		stats.TerminalHits++
	default:
		t1 := now(prof)
		st.Encode(ws.input)
		value = e.eval.Evaluate(ws.input, ws.policy)
		stats.EvalTime += since(prof, t1)

		t2 := now(prof)
		ws.actions = st.LegalMoves(ws.actions[:0])
		priors := ws.priors[:len(ws.actions)]
		maskedPriors(ws.policy, ws.actions, priors)
		if idx == tr.Root() {
			applyRootNoise(e.cfg, noise, priors)
		}
		tr.Expand(idx, ws.actions, priors)
		stats.Expansions++
		stats.ExpandTime += since(prof, t2)
	}

	// Backup under locks, releasing one unit of virtual loss per level.
	t3 := now(prof)
	tr.Backup(idx, value, true)
	stats.BackupTime += since(prof, t3)
}

// Tree exposes the engine's tree for tests.
func (e *Shared) Tree() *tree.Tree { return e.tr }
