package mcts

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// Drainer is implemented by evaluators that buffer requests (the
// accelerator queue): Drain releases a partial batch. The shared engine
// calls it when a worker retires, so stragglers blocked on a batch that can
// no longer fill are released (end-of-move effect, Section 3.3).
type Drainer interface {
	Drain()
}

// Shared implements Algorithm 2: a pool of N threads, each executing
// complete "threadsafe_rollout"s against a single tree in shared memory.
// Virtual loss diversifies the paths; per-node locks protect the
// multi-field virtual-loss and backup updates.
//
// Worker scratch buffers, per-worker noise RNG streams, and the stats
// shards live for the engine's lifetime — a per-move Search only resets
// them, instead of reallocating the lot on every move of a game.
type Shared struct {
	s       session
	workers int
	eval    evaluate.Evaluator
	r       *rng.Rand

	// engine-lifetime worker state, lazily built on the first Search.
	scratch []*workerScratch
	noises  []*rng.Rand
	shards  []Stats
}

// NewShared creates a shared-tree engine with the given worker count.
func NewShared(cfg Config, workers int, eval evaluate.Evaluator) *Shared {
	if workers < 1 {
		panic("mcts: shared engine needs >= 1 worker")
	}
	e := &Shared{s: session{cfg: cfg}, workers: workers, eval: eval, r: rng.New(cfg.Seed)}
	// Per-worker noise streams are split once, on one goroutine, for the
	// engine's lifetime; each worker's stream then flows across moves.
	e.noises = make([]*rng.Rand, workers)
	for w := range e.noises {
		e.noises[w] = e.r.Split()
	}
	e.shards = make([]Stats, workers)
	return e
}

// Name implements Engine.
func (e *Shared) Name() string { return "shared" }

// Close implements Engine. It blocks until an in-flight Search or Advance
// drains (every worker rollout runs inside the locked Search body) and
// releases the tree — the drain-safe eviction barrier for session pools.
func (e *Shared) Close() { e.s.close() }

// Advance implements Engine. The session lock serialises the rebase
// against a concurrently running Search: the rebase compaction moves
// nodes, so Advance blocks until every in-flight rollout has backed up and
// drained its virtual loss.
func (e *Shared) Advance(action int) { e.s.advance(action) }

// Workers returns the configured worker count.
func (e *Shared) Workers() int { return e.workers }

// Search implements Engine.
func (e *Shared) Search(st game.State, dist []float32) Stats {
	if bs, ok := bookServe(e.s.cfg, st, dist); ok {
		return bs
	}
	e.s.mu.Lock()
	defer e.s.mu.Unlock()
	var stats Stats
	_, budget := e.s.prepare(st, &stats, rootNoiseRemix(e.s.cfg, e.r))
	if e.scratch == nil {
		e.scratch = make([]*workerScratch, e.workers)
		for w := range e.scratch {
			e.scratch[w] = newWorkerScratch(st)
		}
	}
	for w := range e.shards {
		e.shards[w] = Stats{}
	}

	var counter atomic.Int64 // playout tickets
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := e.scratch[w]
			noise := e.noises[w]
			for {
				t := counter.Add(1)
				if t > int64(budget) {
					break
				}
				e.rollout(st, ws, noise, &e.shards[w])
			}
			// This worker is done; release any partial accelerator batch so
			// the remaining workers are not stranded waiting for it.
			if d, ok := e.eval.(Drainer); ok {
				d.Drain()
			}
		}(w)
	}
	wg.Wait()
	for _, s := range e.shards {
		stats.Add(s) // field-complete merge: phase timings are never dropped
	}
	stats.Playouts = budget
	stats.Duration = time.Since(start)
	e.s.finish(&stats)
	e.s.tr.VisitDistribution(dist)
	return stats
}

// workerScratch holds one worker thread's reusable buffers.
type workerScratch struct {
	input   []float32
	policy  []float32
	actions []int
	priors  []float32
	key     []byte
}

func newWorkerScratch(st game.State) *workerScratch {
	c, h, w := st.EncodedShape()
	return &workerScratch{
		input:  make([]float32, c*h*w),
		policy: make([]float32, st.NumActions()),
		priors: make([]float32, st.NumActions()),
	}
}

// rollout is the threadsafe_rollout of Algorithm 2.
func (e *Shared) rollout(root game.State, ws *workerScratch, noise *rng.Rand, stats *Stats) {
	prof := e.s.cfg.Profile
	tr := e.s.tr
	st := root.Clone()
	idx := tr.Root()

	// Selection with virtual loss. The root's VL is applied too so that
	// sqrt(sum N) reflects in-flight traffic.
	t0 := now(prof)
	tr.ApplyVirtualLoss(idx, true)
	depth := 0
	for tr.Node(idx).Expanded() {
		idx = tr.SelectChild(idx)
		tr.ApplyVirtualLoss(idx, true)
		st.Play(tr.Node(idx).Action())
		depth++
	}
	stats.SelectTime += since(prof, t0)
	stats.SumDepth += depth

	nd := tr.Node(idx)
	var value float64
	switch {
	case nd.Terminal():
		value = nd.TerminalValue()
		stats.TerminalHits++
	case st.Terminal():
		value = terminalValue(st)
		tr.MarkTerminal(idx, value)
		stats.TerminalHits++
	default:
		var entry *tree.TransEntry
		if tt := e.s.tt; tt != nil {
			entry, ws.key = transProbe(tt, tr, st, idx, ws.key)
			if v, acts, prs, ok := entry.LoadEval(ws.actions[:0], ws.priors[:0]); ok {
				// Served from the transposition table: no forward pass.
				value = v
				ws.actions = acts
				if idx == tr.Root() {
					applyRootNoise(e.s.cfg, noise, prs)
				}
				tr.Expand(idx, ws.actions, prs)
				stats.Expansions++
				stats.TransHits++
				break
			}
		}
		t1 := now(prof)
		value, ws.key = evalState(e.eval, st, ws.input, ws.policy, ws.key)
		stats.Evaluations++
		stats.EvalTime += since(prof, t1)

		t2 := now(prof)
		ws.actions = st.LegalMoves(ws.actions[:0])
		priors := ws.priors[:len(ws.actions)]
		maskedPriors(ws.policy, ws.actions, priors)
		if entry != nil {
			// Publish the clean (pre-noise) priors for transposed lines.
			entry.StoreEval(value, ws.actions, priors)
		}
		if idx == tr.Root() {
			applyRootNoise(e.s.cfg, noise, priors)
		}
		tr.Expand(idx, ws.actions, priors)
		stats.Expansions++
		stats.ExpandTime += since(prof, t2)
	}

	// Backup under locks, releasing one unit of virtual loss per level.
	t3 := now(prof)
	tr.Backup(idx, value, true)
	stats.BackupTime += since(prof, t3)
}

// Tree exposes the engine's tree for tests.
func (e *Shared) Tree() *tree.Tree { return e.s.tr }
