package mcts

import (
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// Local implements Algorithm 3: a centralized master thread owns the
// complete tree (no locks anywhere on the hot path) and performs all
// in-tree operations, while node evaluations stream through an asynchronous
// evaluator — either an inference thread pool (CPU) or a batched
// accelerator with sub-batch size B (GPU, Section 3.3).
//
// The master executes the rollout_n_times loop: it keeps selecting leaves
// and submitting evaluation requests while fewer than MaxInFlight are
// outstanding; otherwise it waits for a completion, expands the leaf with
// the returned priors, and backs the value up.
type Local struct {
	s           session
	async       evaluate.Async
	maxInFlight int
	r           *rng.Rand
	free        []*localJob

	// master-thread scratch for the transposition-hit fast path.
	actions []int
	priors  []float32
	key     []byte
}

// localJob carries the state a completion needs to expand its leaf.
type localJob struct {
	req     evaluate.Request
	leaf    int32
	actions []int
	priors  []float32
	// entry, when non-nil, is the transposition entry the leaf was
	// attached to at submit time; the completion publishes its evaluation
	// there.
	entry *tree.TransEntry
}

// NewLocal creates a local-tree engine. maxInFlight is the worker-pool
// size N: the master waits once that many evaluations are outstanding
// (Algorithm 3 line 12).
func NewLocal(cfg Config, async evaluate.Async, maxInFlight int) *Local {
	if maxInFlight < 1 {
		panic("mcts: local engine needs maxInFlight >= 1")
	}
	return &Local{s: session{cfg: cfg}, async: async, maxInFlight: maxInFlight, r: rng.New(cfg.Seed)}
}

// Name implements Engine.
func (e *Local) Name() string { return "local" }

// Close implements Engine. The engine does not own the Async evaluator —
// the caller closes it (it may be shared across moves) — but Close does
// block until an in-flight Search or Advance drains and then releases the
// tree, so a session pool can evict the engine while a move is searching:
// Search never returns with an evaluation outstanding, so after the session
// mutex is acquired nothing of this engine's is in flight.
func (e *Local) Close() { e.s.close() }

// Advance implements Engine. Like every Local operation it belongs to the
// single master thread; the session lock orders it against Search, and
// Search never returns with an evaluation outstanding (its loop only
// exits once every submitted request has completed, backing up and
// releasing its virtual loss), so a rebase always runs on a quiescent
// tree.
func (e *Local) Advance(action int) { e.s.advance(action) }

// MaxInFlight returns the outstanding-evaluation bound.
func (e *Local) MaxInFlight() int { return e.maxInFlight }

// Search implements Engine.
func (e *Local) Search(st game.State, dist []float32) Stats {
	if bs, ok := bookServe(e.s.cfg, st, dist); ok {
		return bs
	}
	e.s.mu.Lock()
	defer e.s.mu.Unlock()
	var stats Stats
	_, budget := e.s.prepare(st, &stats, rootNoiseRemix(e.s.cfg, e.r))
	start := time.Now()

	submitted, completed, inflight := 0, 0, 0
	for completed < budget {
		// Opportunistically drain finished evaluations.
		for inflight > 0 {
			select {
			case req := <-e.async.Completions():
				e.finish(req, &stats)
				inflight--
				completed++
			default:
				goto drained
			}
		}
	drained:
		if submitted < budget && inflight < e.maxInFlight {
			sync := e.selectAndSubmit(st, &stats)
			submitted++
			if sync {
				completed++ // terminal rollout: no evaluation needed
			} else {
				inflight++
			}
			continue
		}
		if completed >= budget {
			break
		}
		// Master must wait (thread pool full, or budget fully submitted).
		// With a deadline-flushing evaluate.Server client, Idle is
		// constant-false and this handshake disappears: the master simply
		// blocks and the service's flush timer guarantees the partial batch
		// launches. The check remains for deadline-less queues
		// (BatchedAsync), whose partial batches only move when pushed.
		if e.async.Idle() {
			// Everything outstanding sits in a partial accelerator batch;
			// push it to the device or we wait forever.
			e.async.Flush()
		}
		req := <-e.async.Completions()
		e.finish(req, &stats)
		inflight--
		completed++
	}
	stats.Playouts = budget
	stats.Duration = time.Since(start)
	e.s.finish(&stats)
	e.s.tr.VisitDistribution(dist)
	return stats
}

// selectAndSubmit runs Selection from the root and either backs up a
// terminal outcome immediately (returning true) or submits an evaluation
// request for the leaf (returning false).
func (e *Local) selectAndSubmit(root game.State, stats *Stats) (syncDone bool) {
	prof := e.s.cfg.Profile
	tr := e.s.tr
	st := root.Clone()
	idx := tr.Root()

	t0 := now(prof)
	tr.ApplyVirtualLoss(idx, false)
	depth := 0
	for tr.Node(idx).Expanded() {
		idx = tr.SelectChild(idx)
		tr.ApplyVirtualLoss(idx, false)
		st.Play(tr.Node(idx).Action())
		depth++
	}
	stats.SelectTime += since(prof, t0)
	stats.SumDepth += depth

	nd := tr.Node(idx)
	if nd.Terminal() {
		t3 := now(prof)
		tr.Backup(idx, nd.TerminalValue(), false)
		stats.BackupTime += since(prof, t3)
		stats.TerminalHits++
		return true
	}
	if st.Terminal() {
		value := terminalValue(st)
		tr.MarkTerminal(idx, value)
		t3 := now(prof)
		tr.Backup(idx, value, false)
		stats.BackupTime += since(prof, t3)
		stats.TerminalHits++
		return true
	}

	var entry *tree.TransEntry
	if tt := e.s.tt; tt != nil {
		entry, e.key = transProbe(tt, tr, st, idx, e.key)
		if v, acts, prs, ok := entry.LoadEval(e.actions[:0], e.priors[:0]); ok {
			// Served from the transposition table: expand and back up
			// synchronously, like a terminal rollout — no request leaves
			// the master thread.
			e.actions = acts
			t2 := now(prof)
			if idx == tr.Root() {
				applyRootNoise(e.s.cfg, e.r, prs)
			}
			tr.Expand(idx, e.actions, prs)
			stats.Expansions++
			stats.ExpandTime += since(prof, t2)
			t3 := now(prof)
			tr.Backup(idx, v, false)
			stats.BackupTime += since(prof, t3)
			stats.TransHits++
			return true
		}
	}

	job := e.takeJob(st)
	job.leaf = idx
	job.entry = entry
	job.actions = st.LegalMoves(job.actions[:0])
	st.Encode(job.req.Input)
	e.async.Submit(&job.req)
	stats.Evaluations++
	return false
}

// finish expands the evaluated leaf and backs up its value.
func (e *Local) finish(req *evaluate.Request, stats *Stats) {
	prof := e.s.cfg.Profile
	job := req.Ctx.(*localJob)
	tr := e.s.tr

	t2 := now(prof)
	priors := job.priors[:len(job.actions)]
	maskedPriors(req.Policy, job.actions, priors)
	if job.entry != nil {
		// Publish the clean (pre-noise) priors for transposed lines.
		job.entry.StoreEval(req.Value, job.actions, priors)
		job.entry = nil
	}
	if job.leaf == tr.Root() {
		applyRootNoise(e.s.cfg, e.r, priors)
	}
	tr.Expand(job.leaf, job.actions, priors)
	stats.Expansions++
	stats.ExpandTime += since(prof, t2)

	t3 := now(prof)
	tr.Backup(job.leaf, req.Value, false)
	stats.BackupTime += since(prof, t3)
	e.free = append(e.free, job)
}

// takeJob recycles or allocates a job with buffers sized for st.
func (e *Local) takeJob(st game.State) *localJob {
	if n := len(e.free); n > 0 {
		job := e.free[n-1]
		e.free = e.free[:n-1]
		return job
	}
	c, h, w := st.EncodedShape()
	job := &localJob{
		req: evaluate.Request{
			Input:  make([]float32, c*h*w),
			Policy: make([]float32, st.NumActions()),
		},
		priors: make([]float32, st.NumActions()),
	}
	job.req.Ctx = job
	return job
}

// Tree exposes the engine's tree for tests.
func (e *Local) Tree() *tree.Tree { return e.s.tr }
