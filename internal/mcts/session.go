package mcts

import (
	"sync"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/tree"
)

// DiscardTree is the Advance argument that invalidates a persistent search
// session at a game boundary: the next Search starts from a cold tree
// instead of promoting a child. Any negative action behaves the same.
const DiscardTree = -1

// session is the persistent per-game search state shared by the
// tree-owning engines: the arena-backed tree, its warm/cold status, and
// the reuse accounting that Advance maintains between moves.
//
// The lifecycle contract is: Search(st) leaves the tree rooted at st and
// marks the session cold; each subsequent Advance(a) promotes the child
// reached by a (own move, then the opponent's reply) and re-warms it; the
// next Search then continues from the retained subtree instead of paying
// for its evaluations again. A Search that is not preceded by at least one
// Advance always resets — callers that never call Advance get exactly the
// rebuild-every-move behaviour the paper's workload assumes.
//
// mu serialises the whole Search body against Advance, which is what makes
// a rebase safe: compaction moves nodes, so it must wait for every
// in-flight traversal (and its virtual loss) to drain. Engines whose
// rollouts run on worker goroutines still take mu once per Search, not per
// rollout — the workers are interior to the locked region.
type session struct {
	mu  sync.Mutex
	cfg Config
	tr  *tree.Tree
	// tt is the transposition table (nil = transpositions off). Either the
	// fleet-shared Config.TransposeTable or a private table sized by
	// Config.TransposeSize. Unlike the tree it is NOT reset at move or
	// game boundaries: cached evaluations stay valid until the model
	// weights change (the owner of a shared table resets it there, next to
	// the eval-cache reset), and opening positions recur across games.
	tt   *tree.TransTable
	warm bool
	// synced reports whether the tree's root still tracks the driver's
	// game position: it turns true when a Search roots the tree at its
	// state and false at every discard. advance only rebases a synced
	// tree — an Advance that arrives before the engine's first Search of
	// a new game (arena game 2+, the engine moving second) must not
	// promote a stale subtree left over from the previous game.
	synced bool
	// what the most recent rebase chain retained, consumed by the next
	// Search's stats.
	reusedNodes  int
	reusedVisits int
}

// advance applies one game move to the session. With ReuseTree enabled and
// a non-negative action it promotes the played child's subtree to be the
// new root; otherwise (reuse disabled, discard sentinel, or no such child)
// it marks the session cold so the next Search rebuilds.
func (s *session) advance(action int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tr == nil {
		return
	}
	if !s.cfg.ReuseTree || action < 0 {
		s.warm, s.synced = false, false
		s.reusedNodes, s.reusedVisits = 0, 0
		return
	}
	if !s.synced {
		// The tree predates the current position (a new game's moves are
		// arriving before this engine has searched it); stay cold rather
		// than promote a stale subtree.
		s.warm = false
		s.reusedNodes, s.reusedVisits = 0, 0
		return
	}
	if rs, ok := s.tr.RebaseRoot(action); ok {
		s.warm = true
		s.reusedNodes, s.reusedVisits = rs.RetainedNodes, rs.RetainedVisits
	} else {
		// The root could not follow the move (unexpanded root), so the
		// tree no longer tracks the game; go fully cold.
		s.warm, s.synced = false, false
		s.reusedNodes, s.reusedVisits = 0, 0
	}
}

// prepare readies the tree for a search of st and returns the number of
// new rollouts to run: the configured playout budget minus the root visits
// a warm tree already carries (never negative; at least 1 when the root
// still needs its expansion). It fills the reuse fields of stats and
// applies the re-rooted noise remix on warm trees. Callers must hold
// s.mu.
func (s *session) prepare(st game.State, stats *Stats, remix func(priors []float32)) (tr *tree.Tree, budget int) {
	if s.tt == nil {
		if s.cfg.TransposeTable != nil {
			s.tt = s.cfg.TransposeTable
		} else if s.cfg.TransposeSize > 0 {
			s.tt = tree.NewTransTable(s.cfg.TransposeSize)
		}
	}
	if s.tr == nil {
		s.tr = newTreeFor(s.cfg, st)
		s.warm = false
	} else if s.warm && !rootMatches(s.tr, st) {
		// Defence in depth: a warm root whose children are not exactly
		// st's legal moves belongs to a different position (an
		// Advance/Search ordering slip); searching it would be garbage.
		s.warm = false
		s.reusedNodes, s.reusedVisits = 0, 0
		s.tr.Reset()
	} else if !s.warm {
		s.tr.Reset()
	}
	tr = s.tr
	if s.warm {
		stats.ReusedNodes = s.reusedNodes
		stats.ReusedVisits = s.reusedVisits
		if remix != nil {
			tr.RemixRootPriors(remix)
		}
	}
	s.warm = false
	s.synced = true // the root now corresponds to st
	s.reusedNodes, s.reusedVisits = 0, 0

	budget = s.cfg.Playouts - tr.Node(tr.Root()).Visits()
	if budget < 0 {
		budget = 0
	}
	if budget == 0 && !tr.Node(tr.Root()).Expanded() {
		budget = 1
	}
	return tr, budget
}

// finish completes the per-move accounting started by prepare. Callers
// must hold s.mu. Wasted evaluations are read from the tree's
// generation-tagged counter: Reset and RebaseRoot both open a new
// generation, so duplicates recorded by rollouts that straddle a rebase
// are attributed to the generation whose Expand actually ran, never
// double-counted or dropped.
func (s *session) finish(stats *Stats) {
	stats.WastedEvals = int(s.tr.DoubleExpansionsThisGen())
}

// close extends the session mutex to the pool layer: it blocks until any
// in-flight Search or Advance has finished, then discards the tree and all
// warm state. Session pools (internal/serve) evict engines while a move may
// still be searching on another goroutine; without this barrier the evictor
// would free or reuse the session under a live rollout. An evicted search
// therefore always finishes on its own tree and its result is simply
// discarded — never raced. The engine may be searched again afterwards (the
// next prepare rebuilds a cold tree), but pools treat close as final.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = nil
	s.warm, s.synced = false, false
	s.reusedNodes, s.reusedVisits = 0, 0
}

// rootMatches reports whether the tree root's child actions are exactly
// st's legal moves — a cheap, best-effort fingerprint used to reject a
// warm tree that has drifted from the driver's game. It is defence in
// depth behind the synced flag (the primary coherence mechanism, which
// covers every sequential misuse): in games whose legal-move set barely
// changes between positions (connect4 columns, early gomoku) a drifted
// tree can pass this check, so callers racing Search against Advance get
// coherent-but-stale output rather than an error. An unexpanded root
// cannot be checked and is accepted (the search will expand it from st's
// own evaluation).
func rootMatches(tr *tree.Tree, st game.State) bool {
	root := tr.Node(tr.Root())
	if !root.Expanded() {
		return true
	}
	legal := st.LegalMoves(nil)
	seen := make(map[int]bool, len(legal))
	for _, a := range legal {
		seen[a] = true
	}
	n := 0
	ok := true
	tr.Children(tr.Root(), func(_ int32, nd *tree.Node) {
		n++
		if !seen[nd.Action()] {
			ok = false
		}
	})
	return ok && n == len(legal)
}
