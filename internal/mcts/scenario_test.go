package mcts

import (
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/othello"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// equivCfg is the scheduling-free configuration under which every engine
// must reproduce the serial search exactly: one in-flight rollout, no
// virtual-loss influence (VLNone — including the parent-visit term, see
// tree.SelectChild), no root noise, warm trees enabled.
func equivCfg(playouts int) Config {
	cfg := DefaultConfig()
	cfg.Playouts = playouts
	cfg.Tree.VLMode = tree.VLNone
	cfg.ReuseTree = true
	cfg.Seed = 42
	return cfg
}

// TestEnginesIdenticalOnOthello is the cross-engine equivalence check on
// the pass-move scenario: Serial, Shared, Local and LeafParallel at
// concurrency 1 with a deterministic evaluator must produce bitwise
// identical root visit distributions on every move of an Othello game —
// through flips, forced passes and warm (rebased) trees alike. It extends
// the warm-engine invariants of the persistent-session layer to a game
// whose legal-move set is not monotone.
func TestEnginesIdenticalOnOthello(t *testing.T) {
	g := othello.NewSized(6)
	const playouts = 160
	eval := &evaluate.Random{}
	pool := evaluate.NewPool(eval, 1)
	defer pool.Close()
	pool2 := evaluate.NewPool(eval, 1)
	defer pool2.Close()

	engines := []struct {
		name string
		e    Engine
	}{
		{"serial", NewSerial(equivCfg(playouts), eval)},
		{"shared-1", NewShared(equivCfg(playouts), 1, eval)},
		{"local-1", NewLocal(equivCfg(playouts), pool, 1)},
		{"leaf-parallel-2", NewLeafParallel(equivCfg(playouts), 2, pool2)},
	}
	defer func() {
		for _, tc := range engines {
			tc.e.Close()
		}
	}()

	st := g.NewInitial()
	ref := make([]float32, g.NumActions())
	dist := make([]float32, g.NumActions())
	warmMoves := 0
	for ply := 0; ply < 24 && !st.Terminal(); ply++ {
		refStats := engines[0].e.Search(st, ref)
		checkDistribution(t, st, ref)
		if refStats.Playouts+refStats.ReusedVisits != playouts {
			t.Fatalf("ply %d: serial playouts %d + reused %d != %d",
				ply, refStats.Playouts, refStats.ReusedVisits, playouts)
		}
		if refStats.ReusedVisits > 0 {
			warmMoves++
		}
		for _, tc := range engines[1:] {
			s := tc.e.Search(st, dist)
			for a := range ref {
				if dist[a] != ref[a] {
					t.Fatalf("ply %d: %s dist[%d] = %v, serial %v",
						ply, tc.name, a, dist[a], ref[a])
				}
			}
			if s.Playouts != refStats.Playouts || s.ReusedVisits != refStats.ReusedVisits {
				t.Fatalf("ply %d: %s budget (%d, %d) != serial (%d, %d)",
					ply, tc.name, s.Playouts, s.ReusedVisits,
					refStats.Playouts, refStats.ReusedVisits)
			}
		}
		action := argmax32(ref)
		st.Play(action)
		if !st.Terminal() {
			for _, tc := range engines {
				tc.e.Advance(action)
			}
		}
	}
	if warmMoves == 0 {
		t.Fatal("no move ran on a warm tree; the equivalence never covered the rebase path")
	}
}

// forcedPassState returns a reachable Othello position whose mover has no
// placement (legal moves == [pass]), found by seeded random play.
func forcedPassState(t *testing.T) game.State {
	t.Helper()
	g := othello.NewSized(4)
	for seed := uint64(1); seed <= 80; seed++ {
		st := g.NewInitial().(*othello.State)
		r := rng.New(seed)
		for !st.Terminal() {
			legal := st.LegalMoves(nil)
			if len(legal) == 1 && legal[0] == st.PassAction() {
				return st
			}
			st.Play(legal[r.Intn(len(legal))])
		}
	}
	t.Fatal("no forced-pass position found")
	return nil
}

// TestSearchForcedPassRoot pins the single-child root the pass mechanics
// create: every engine must put the whole distribution on the pass action,
// spend its full budget without panicking (tree.Expand with one action),
// and keep the budget arithmetic intact.
func TestSearchForcedPassRoot(t *testing.T) {
	st := forcedPassState(t)
	pass := st.(*othello.State).PassAction()
	eval := &evaluate.Random{}
	pool := evaluate.NewPool(eval, 2)
	defer pool.Close()
	pool2 := evaluate.NewPool(eval, 2)
	defer pool2.Close()
	engines := []struct {
		name string
		e    Engine
	}{
		{"serial", NewSerial(equivCfg(80), eval)},
		{"shared", NewShared(equivCfg(80), 2, eval)},
		{"local", NewLocal(equivCfg(80), pool, 2)},
		{"leaf-parallel", NewLeafParallel(equivCfg(80), 2, pool2)},
	}
	for _, tc := range engines {
		dist := make([]float32, st.NumActions())
		stats := tc.e.Search(st.Clone(), dist)
		if dist[pass] != 1 {
			t.Errorf("%s: dist[pass] = %v, want 1 (forced pass)", tc.name, dist[pass])
		}
		checkDistribution(t, st, dist)
		if stats.Playouts+stats.ReusedVisits != 80 {
			t.Errorf("%s: playouts %d + reused %d != 80", tc.name, stats.Playouts, stats.ReusedVisits)
		}
		tc.e.Close()
	}
}

// TestWarmSessionThroughForcedPass drives a persistent session across a
// forced-pass boundary: searching the pre-pass position, advancing through
// the pass, and searching again must keep the warm tree (ReuseFraction > 0
// on Othello despite pass moves — the session layer treats pass as an
// ordinary child promotion).
func TestWarmSessionThroughForcedPass(t *testing.T) {
	const playouts = 200
	g := othello.NewSized(4)
	for seed := uint64(1); seed <= 80; seed++ {
		st := g.NewInitial().(*othello.State)
		r := rng.New(seed)
		var prePass []int
		for !st.Terminal() {
			legal := st.LegalMoves(nil)
			if len(legal) == 1 && legal[0] == st.PassAction() && st.MoveCount() >= 2 {
				break
			}
			prePass = append(prePass, legal[r.Intn(len(legal))])
			st.Play(prePass[len(prePass)-1])
		}
		if st.Terminal() || len(prePass) < 1 || !st.Legal(st.PassAction()) {
			continue
		}
		// Replay to one ply BEFORE the forced pass and run the session
		// through it: search, play, advance, search the pass position,
		// pass, advance, search again.
		cur := g.NewInitial()
		for _, a := range prePass[:len(prePass)-1] {
			cur.Play(a)
		}
		e := NewSerial(reuseCfg(playouts), &evaluate.Random{})
		dist := make([]float32, g.NumActions())
		e.Search(cur, dist)
		last := prePass[len(prePass)-1]
		cur.Play(last)
		e.Advance(last)

		passPos := cur.(*othello.State)
		stats := e.Search(passPos, dist)
		if stats.ReusedVisits == 0 {
			t.Fatalf("seed %d: no reuse entering the forced-pass position", seed)
		}
		if dist[passPos.PassAction()] != 1 {
			t.Fatalf("seed %d: warm forced-pass dist = %v", seed, dist[passPos.PassAction()])
		}
		cur.Play(passPos.PassAction())
		if cur.Terminal() {
			continue
		}
		e.Advance(passPos.PassAction())
		stats = e.Search(cur, dist)
		checkDistribution(t, cur, dist)
		if stats.ReusedVisits == 0 {
			t.Fatalf("seed %d: advancing through the pass lost the warm subtree", seed)
		}
		if stats.ReuseFraction() <= 0 {
			t.Fatalf("seed %d: reuse fraction %v", seed, stats.ReuseFraction())
		}
		return // one full pass-boundary exercise is the point
	}
	t.Skip("no usable forced-pass trajectory found (seed set exhausted)")
}
