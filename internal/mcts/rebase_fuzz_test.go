package mcts

import (
	"fmt"
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/connect4"
	"github.com/parmcts/parmcts/internal/game/hex"
	"github.com/parmcts/parmcts/internal/game/othello"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/tree"
)

// refNode is one node of the rebuild-from-scratch reference: everything
// RebaseRoot promises to preserve about a promoted node, keyed by its
// action path from the (new) root.
type refNode struct {
	action    int
	visits    int
	w         float64
	prior     float64
	terminal  bool
	termValue float64
	children  int
}

// snapshotSubtree rebuilds the subtree rooted at idx as a path-keyed map —
// the from-scratch reference a rebased tree must reproduce exactly.
func snapshotSubtree(tr *tree.Tree, idx int32, path string, out map[string]refNode) {
	nd := tr.Node(idx)
	out[path] = refNode{
		action:    nd.Action(),
		visits:    nd.Visits(),
		w:         nd.TotalValue(),
		prior:     nd.Prior(),
		terminal:  nd.Terminal(),
		termValue: nd.TerminalValue(),
		children:  childCount(tr, idx),
	}
	tr.Children(idx, func(child int32, c *tree.Node) {
		snapshotSubtree(tr, child, fmt.Sprintf("%s/%d", path, c.Action()), out)
	})
}

func childCount(tr *tree.Tree, idx int32) int {
	n := 0
	tr.Children(idx, func(int32, *tree.Node) { n++ })
	return n
}

// rootChildFor returns the root child index reached by action, or -1.
func rootChildFor(tr *tree.Tree, action int) int32 {
	found := int32(-1)
	tr.Children(tr.Root(), func(child int32, nd *tree.Node) {
		if nd.Action() == action {
			found = child
		}
	})
	return found
}

// FuzzRebaseRoot drives tree.RebaseRoot through fuzz-chosen move sequences
// on all four scenario families (placement, gravity, flip/pass, connection)
// and compares every rebased tree against a reference subtree recorded
// before the rebase: identical statistics node-for-node, the compacted
// arena exactly the retained size, parents allocated before children, and
// zero outstanding virtual loss. The 0xFF byte injects a DiscardTree to mix
// cold restarts into the sequence.
func FuzzRebaseRoot(f *testing.F) {
	f.Add(uint8(0), []byte{1, 2, 3})
	f.Add(uint8(2), []byte{0, 0xFF, 1, 4, 2})
	f.Add(uint8(3), []byte{7, 7, 7, 7, 7, 7})
	f.Add(uint8(1), []byte{250, 3, 0xFF, 0xFF, 9, 1})
	f.Fuzz(func(t *testing.T, gameSel uint8, script []byte) {
		var g game.Game
		switch gameSel % 4 {
		case 0:
			g = tictactoe.New()
		case 1:
			g = connect4.New()
		case 2:
			g = othello.NewSized(4)
		case 3:
			g = hex.NewSized(4)
		}
		cfg := reuseCfg(48)
		cfg.Seed = 7
		e := NewSerial(cfg, &evaluate.Random{})
		st := g.NewInitial()
		dist := make([]float32, g.NumActions())
		if len(script) > 12 {
			script = script[:12]
		}
		for ply, b := range script {
			if st.Terminal() {
				break
			}
			e.Search(st, dist)
			if b == 0xFF {
				e.Advance(DiscardTree)
				continue
			}
			legal := st.LegalMoves(nil)
			action := legal[int(b)%len(legal)]
			tr := e.Tree()
			child := rootChildFor(tr, action)
			if child < 0 {
				t.Fatalf("ply %d: searched root has no child for legal action %d", ply, action)
			}
			ref := map[string]refNode{}
			snapshotSubtree(tr, child, "", ref)

			e.Advance(action)

			got := map[string]refNode{}
			snapshotSubtree(tr, tr.Root(), "", got)
			if len(got) != len(ref) {
				t.Fatalf("ply %d: rebased tree has %d nodes, reference %d", ply, len(got), len(ref))
			}
			for path, want := range ref {
				if have, ok := got[path]; !ok || have != want {
					t.Fatalf("ply %d: node %q = %+v, reference %+v", ply, path, got[path], want)
				}
			}
			if alloc := tr.Allocated(); alloc != len(ref) {
				t.Fatalf("ply %d: arena holds %d nodes after compaction, reference %d", ply, alloc, len(ref))
			}
			for i := int32(0); i < int32(tr.Allocated()); i++ {
				if p := tr.Node(i).Parent(); p >= i {
					t.Fatalf("ply %d: node %d has parent %d (parents must precede children)", ply, i, p)
				}
			}
			if vl := tr.OutstandingVirtualLoss(); vl != 0 {
				t.Fatalf("ply %d: outstanding virtual loss %d after rebase", ply, vl)
			}
			st.Play(action)
		}
		// The surviving session must still search cleanly.
		if !st.Terminal() {
			e.Search(st, dist)
			checkDistribution(t, st, dist)
		}
	})
}
