package mcts

import (
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/tree"
)

// transProbe is the one probe sequence every engine shares when its session
// has a transposition table: compute the verification key, acquire (or
// create) the entry for the position, and link the leaf node to the entry's
// shared statistics. The caller then tries entry.LoadEval — a hit replaces
// the DNN forward pass — and on a miss stores its own evaluation with
// StoreEval (clean priors, before root noise) so the next line through the
// position is served from the table.
//
// key is caller-owned scratch, reused across rollouts; the extended slice
// is returned. Keeping the probe order identical across engines (probe →
// attach → load-or-evaluate → expand → backup) is what preserves the
// cross-engine move equivalence at concurrency 1.
func transProbe(tt *tree.TransTable, tr *tree.Tree, st game.State, idx int32, key []byte) (*tree.TransEntry, []byte) {
	key = game.StateKey(st, key[:0])
	entry, _ := tt.Acquire(st.Hash(), key)
	tr.AttachShared(idx, entry)
	return entry, key
}

// evalState evaluates st through ev, using the hash-keyed cache fast path
// when the evaluator offers one: the probe is keyed by the state's
// incrementally maintained Zobrist hash (verified with the full state key),
// so a cache hit costs neither the plane encoding nor the plane-bit
// hashing. Evaluators without the interface get the classic
// encode-then-evaluate sequence. key is caller-owned scratch; the extended
// slice is returned.
func evalState(ev evaluate.Evaluator, st game.State, input, policy []float32, key []byte) (float64, []byte) {
	if hc, ok := ev.(evaluate.HashedEvaluator); ok {
		key = game.StateKey(st, key[:0])
		return hc.EvaluateHashed(st.Hash(), key, st, input, policy), key
	}
	st.Encode(input)
	return ev.Evaluate(input, policy), key
}
