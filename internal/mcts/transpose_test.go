package mcts

import (
	"bytes"
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/hex"
	"github.com/parmcts/parmcts/internal/game/othello"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/tree"
)

// TestFleetSharedTableConverges checks the fleet topology: two engines
// configured with ONE shared TransposeTable pool their demand — the second
// engine searching the same opening is served evaluations the first one
// already bought, so its per-search eval count drops.
func TestFleetSharedTableConverges(t *testing.T) {
	g := othello.NewSized(6)
	tt := tree.NewTransTable(1 << 12)
	mk := func(seed uint64) *Serial {
		cfg := DefaultConfig()
		cfg.Playouts = 120
		cfg.Seed = seed
		cfg.TransposeTable = tt
		return NewSerial(cfg, &evaluate.Random{})
	}
	a, b := mk(1), mk(2)
	defer a.Close()
	defer b.Close()
	dist := make([]float32, g.NumActions())
	sa := a.Search(g.NewInitial(), dist)
	sb := b.Search(g.NewInitial(), dist)
	if sb.Evaluations >= sa.Evaluations {
		t.Fatalf("second engine evaluated %d >= first engine's %d; shared table unused",
			sb.Evaluations, sa.Evaluations)
	}
	if sb.TransHits == 0 {
		t.Fatal("second engine recorded no transposition hits")
	}
	if tt.OutstandingVirtualLoss() != 0 {
		t.Fatal("shared VL outstanding after both searches")
	}
}

// transEquivCfg is equivCfg plus a private transposition table per engine:
// the DAG search must preserve the concurrency-1 cross-engine equivalence,
// because every engine runs the identical probe sequence (probe → attach →
// load-or-evaluate → expand → backup) against its own table.
func transEquivCfg(playouts int) Config {
	cfg := equivCfg(playouts)
	cfg.TransposeSize = 1 << 12
	return cfg
}

// TestEnginesIdenticalOnOthelloTransposed extends the cross-engine
// equivalence check to transposition-aware search: Serial, Shared, Local
// and LeafParallel at concurrency 1 with private tables must stay bitwise
// move-identical over an Othello game, AND the serial reference must
// actually serve positions from its table (the scenario transposes).
func TestEnginesIdenticalOnOthelloTransposed(t *testing.T) {
	g := othello.NewSized(6)
	const playouts = 160
	eval := &evaluate.Random{}
	pool := evaluate.NewPool(eval, 1)
	defer pool.Close()
	pool2 := evaluate.NewPool(eval, 1)
	defer pool2.Close()

	engines := []struct {
		name string
		e    Engine
		// evalFactor: leaf-parallel fans each miss out to K evaluators and
		// counts all K, so its demand is a fixed multiple of serial's.
		evalFactor int
	}{
		{"serial", NewSerial(transEquivCfg(playouts), eval), 1},
		{"shared-1", NewShared(transEquivCfg(playouts), 1, eval), 1},
		{"local-1", NewLocal(transEquivCfg(playouts), pool, 1), 1},
		{"leaf-parallel-2", NewLeafParallel(transEquivCfg(playouts), 2, pool2), 2},
	}
	defer func() {
		for _, tc := range engines {
			tc.e.Close()
		}
	}()

	st := g.NewInitial()
	ref := make([]float32, g.NumActions())
	dist := make([]float32, g.NumActions())
	totalHits := 0
	for ply := 0; ply < 24 && !st.Terminal(); ply++ {
		refStats := engines[0].e.Search(st, ref)
		totalHits += refStats.TransHits
		for _, tc := range engines[1:] {
			s := tc.e.Search(st, dist)
			for a := range ref {
				if dist[a] != ref[a] {
					t.Fatalf("ply %d: %s dist[%d] = %v, serial %v",
						ply, tc.name, a, dist[a], ref[a])
				}
			}
			if s.TransHits != refStats.TransHits {
				t.Fatalf("ply %d: %s trans hits %d != serial %d",
					ply, tc.name, s.TransHits, refStats.TransHits)
			}
			if s.Evaluations != refStats.Evaluations*tc.evalFactor {
				t.Fatalf("ply %d: %s evaluations %d != serial %d x%d",
					ply, tc.name, s.Evaluations, refStats.Evaluations, tc.evalFactor)
			}
		}
		action := argmax32(ref)
		st.Play(action)
		if !st.Terminal() {
			for _, tc := range engines {
				tc.e.Advance(action)
			}
		}
	}
	if totalHits == 0 {
		t.Fatal("no transposition hits over the whole game; the DAG path was never exercised")
	}
}

// measureDemand plays a short deterministic self-play stretch with the
// serial engine and returns the aggregated stats with the table off and on.
func measureDemand(t *testing.T, g game.Game, size int) (off, on Stats) {
	t.Helper()
	for _, tableSize := range []int{0, size} {
		cfg := DefaultConfig()
		cfg.Playouts = 96
		cfg.Seed = 11
		cfg.TransposeSize = tableSize
		eng := NewSerial(cfg, &evaluate.Random{})
		st := g.NewInitial()
		dist := make([]float32, g.NumActions())
		var agg Stats
		for mv := 0; mv < 12 && !st.Terminal(); mv++ {
			agg.Add(eng.Search(st, dist))
			a := argmax32(dist)
			eng.Advance(a)
			st = st.Clone()
			st.Play(a)
		}
		eng.Close()
		if tableSize == 0 {
			off = agg
		} else {
			on = agg
		}
	}
	return off, on
}

// TestTransposeReducesEvalDemand is the tentpole's effect measured at the
// engine level: the identical search schedule with the table enabled must
// require strictly fewer DNN evaluations — transposed lines are served from
// the table — on games that genuinely transpose (Othello, Hex).
func TestTransposeReducesEvalDemand(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    game.Game
	}{
		{"othello", othello.NewSized(6)},
		{"hex", hex.NewSized(5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			off, on := measureDemand(t, tc.g, 1<<12)
			if on.TransHits == 0 {
				t.Fatal("no transposition hits with the table on")
			}
			if on.Evaluations >= off.Evaluations {
				t.Fatalf("evaluations with table = %d, without = %d; want a reduction",
					on.Evaluations, off.Evaluations)
			}
			if frac := on.TransposeFraction(); frac <= 0 || frac >= 1 {
				t.Fatalf("TransposeFraction = %v, want in (0,1)", frac)
			}
		})
	}
}

// TestBuildBookAndServe builds a small tic-tac-toe book and checks the
// full life cycle: booked positions serve stored distributions with zero
// playouts, save/load round-trips, and a session continues searching
// normally once the game leaves the book.
func TestBuildBookAndServe(t *testing.T) {
	g := tictactoe.New()
	cfg := DefaultConfig()
	cfg.Playouts = 64
	cfg.Seed = 3
	bcfg := DefaultBookConfig()
	bcfg.MaxPly = 2
	book, bstats := BuildBook(g, cfg, &evaluate.Random{}, bcfg)
	if book.Len() == 0 {
		t.Fatal("empty book")
	}
	if bstats.TransHits == 0 {
		t.Fatal("book build recorded no transposition hits; the shared-table sweep did not dedup")
	}

	// Round-trip through JSON.
	var buf bytes.Buffer
	if err := book.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBook(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != book.Len() || loaded.Game != book.Game || loaded.MaxPly != book.MaxPly {
		t.Fatalf("round-trip mismatch: %d/%s/%d vs %d/%s/%d",
			loaded.Len(), loaded.Game, loaded.MaxPly, book.Len(), book.Game, book.MaxPly)
	}

	// An engine with the book serves the initial position from it.
	cfg.Book = loaded
	eng := NewSerial(cfg, &evaluate.Random{})
	defer eng.Close()
	dist := make([]float32, g.NumActions())
	s := eng.Search(g.NewInitial(), dist)
	if s.BookHits != 1 || s.Playouts != 0 || s.Evaluations != 0 {
		t.Fatalf("booked search stats = %+v, want 1 book hit, zero playouts/evals", s)
	}
	want := book.Lookup(g.NewInitial())
	if want == nil {
		t.Fatal("initial position missing from book")
	}
	for a := range dist {
		if dist[a] != want.Dist[a] {
			t.Fatalf("served dist[%d] = %v, book %v", a, dist[a], want.Dist[a])
		}
	}

	// Play past the book horizon: the session must run a real search.
	st := g.NewInitial()
	ply := 0
	for !st.Terminal() {
		s := eng.Search(st, dist)
		if ply <= bcfg.MaxPly && s.BookHits != 1 {
			// Booked plies only miss if the sampled line was pruned out of
			// the book; the mainline (argmax descent) is always booked.
			t.Fatalf("ply %d: expected book hit, got %+v", ply, s)
		}
		if ply > bcfg.MaxPly {
			if s.BookHits != 0 {
				t.Fatalf("ply %d: book hit beyond MaxPly %d", ply, bcfg.MaxPly)
			}
			if s.Playouts != cfg.Playouts {
				t.Fatalf("ply %d: post-book search ran %d playouts, want %d", ply, s.Playouts, cfg.Playouts)
			}
			break // one real search after leaving the book is enough
		}
		a := argmax32(dist)
		eng.Advance(a)
		st = st.Clone()
		st.Play(a)
		ply++
	}
}

// TestBookVerificationRejectsCollision plants a book entry whose hash
// matches the initial position but whose verification key differs: Lookup
// and Fill must miss rather than serve another position's distribution.
func TestBookVerificationRejectsCollision(t *testing.T) {
	g := tictactoe.New()
	st := g.NewInitial()
	book := &Book{
		Game:    g.Name(),
		Actions: g.NumActions(),
		Entries: []BookEntry{{
			Hash:   st.Hash(),
			Verify: []byte("not-the-initial-position"),
			Dist:   make([]float32, g.NumActions()),
		}},
	}
	book.buildIndex()
	if book.Lookup(st) != nil {
		t.Fatal("Lookup served an entry whose verification key does not match")
	}
	dist := make([]float32, g.NumActions())
	if book.Fill(st, dist) {
		t.Fatal("Fill served a colliding entry")
	}
	// And a correct entry is served.
	good := BookEntry{Hash: st.Hash(), Verify: game.StateKey(st, nil), Dist: make([]float32, g.NumActions())}
	good.Dist[4] = 1
	book.Entries = append(book.Entries, good)
	book.buildIndex()
	if !book.Fill(st, dist) || dist[4] != 1 {
		t.Fatalf("verified entry not served: dist=%v", dist)
	}
}
