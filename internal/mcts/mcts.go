// Package mcts implements the tree-based search engines of the paper:
//
//   - Serial: the single-threaded reference (used for profiling and as the
//     algorithmic baseline of Section 5.5).
//   - Shared: Algorithm 2 — N threads share one locked tree, each thread
//     runs complete rollouts including its own node evaluation.
//   - Local: Algorithm 3 — a master thread owns the tree without locks and
//     streams node-evaluation requests to an asynchronous evaluator
//     (inference thread pool or batched accelerator).
//   - RootParallel / LeafParallel: the related-work baselines of
//     Section 2.2.
//
// All engines consume the same game.State/evaluate interfaces, forming the
// "single program template" the paper compiles its adaptive choice into.
package mcts

import (
	"time"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// Config holds the search hyper-parameters shared by every engine.
type Config struct {
	// Playouts is the per-move iteration budget (1600 in the paper).
	Playouts int
	// Tree holds the PUCT/virtual-loss parameters of Equation 1.
	Tree tree.Config
	// MaxFanout bounds the arena size; 0 means the game's action count.
	MaxFanout int
	// DirichletAlpha, when positive, mixes Dir(alpha) noise into the root
	// priors (self-play exploration). NoiseFrac is the mixing weight.
	DirichletAlpha float64
	NoiseFrac      float64
	// Seed makes root noise deterministic.
	Seed uint64
	// Profile enables per-phase latency accounting (adds two clock reads
	// per phase; leave off in throughput runs).
	Profile bool
}

// DefaultConfig returns the paper's search configuration.
func DefaultConfig() Config {
	return Config{
		Playouts: 1600,
		Tree:     tree.DefaultConfig(),
	}
}

// Stats reports one Search invocation.
type Stats struct {
	Playouts int
	Duration time.Duration
	// Expansions counts nodes expanded; TerminalHits counts rollouts that
	// ended on an already-terminal node (no DNN evaluation needed).
	Expansions   int
	TerminalHits int
	// SumDepth accumulates leaf depths (AvgDepth = SumDepth/Playouts).
	SumDepth int
	// Phase breakdown, populated when Config.Profile is set.
	SelectTime time.Duration
	ExpandTime time.Duration
	BackupTime time.Duration
	EvalTime   time.Duration
}

// Add accumulates o into s, field by field — including the phase timings,
// which per-worker and per-game merges used to hand-sum and silently drop
// when a field was missed. Concurrent-game drivers aggregate per-move stats
// with it; note that Duration then accumulates engine time, which exceeds
// wall-clock when searches overlap.
func (s *Stats) Add(o Stats) {
	s.Playouts += o.Playouts
	s.Duration += o.Duration
	s.Expansions += o.Expansions
	s.TerminalHits += o.TerminalHits
	s.SumDepth += o.SumDepth
	s.SelectTime += o.SelectTime
	s.ExpandTime += o.ExpandTime
	s.BackupTime += o.BackupTime
	s.EvalTime += o.EvalTime
}

// AvgDepth returns the mean leaf depth of the search.
func (s Stats) AvgDepth() float64 {
	if s.Playouts == 0 {
		return 0
	}
	return float64(s.SumDepth) / float64(s.Playouts)
}

// PerIteration returns the amortized per-worker-iteration latency, the
// paper's primary speed metric (Section 5.3): total move time divided by
// the playout budget.
func (s Stats) PerIteration() time.Duration {
	if s.Playouts == 0 {
		return 0
	}
	return s.Duration / time.Duration(s.Playouts)
}

// Engine is one parallel search implementation.
type Engine interface {
	// Name identifies the scheme ("serial", "shared", "local", ...).
	Name() string
	// Search runs the configured playout budget from st and writes the
	// normalised root visit distribution into dist (length NumActions).
	Search(st game.State, dist []float32) Stats
	// Close releases engine-owned goroutines.
	Close()
}

// maskedPriors extracts the priors of the legal actions from a full policy
// vector and renormalises them. If the network assigns (numerically) zero
// mass to all legal moves, the priors fall back to uniform.
func maskedPriors(policy []float32, actions []int, out []float32) {
	var sum float32
	for i, a := range actions {
		p := policy[a]
		if p < 0 {
			p = 0
		}
		out[i] = p
		sum += p
	}
	if sum <= 1e-12 {
		u := 1 / float32(len(actions))
		for i := range actions {
			out[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range actions {
		out[i] *= inv
	}
}

// applyRootNoise mixes Dirichlet noise into freshly computed root priors.
func applyRootNoise(cfg Config, r *rng.Rand, priors []float32) {
	if cfg.DirichletAlpha <= 0 || cfg.NoiseFrac <= 0 {
		return
	}
	noise := make([]float64, len(priors))
	r.Dirichlet(cfg.DirichletAlpha, noise)
	frac := float32(cfg.NoiseFrac)
	for i := range priors {
		priors[i] = (1-frac)*priors[i] + frac*float32(noise[i])
	}
}

// terminalValue returns the game outcome from the perspective of the player
// to move at st (who, being to move in a finished game, can at best have
// drawn).
func terminalValue(st game.State) float64 {
	return game.Outcome(st.Winner(), st.ToMove())
}

// newTreeFor sizes and allocates a search tree for st under cfg.
func newTreeFor(cfg Config, st game.State) *tree.Tree {
	fanout := cfg.MaxFanout
	if fanout <= 0 {
		fanout = st.NumActions()
	}
	return tree.New(cfg.Tree, tree.SuggestCapacity(cfg.Playouts, fanout))
}

// now returns the current time only when profiling, so the phase accounting
// costs nothing when disabled.
func now(enabled bool) time.Time {
	if !enabled {
		return time.Time{}
	}
	return time.Now()
}

func since(enabled bool, t time.Time) time.Duration {
	if !enabled {
		return 0
	}
	return time.Since(t)
}
