// Package mcts implements the tree-based search engines of the paper:
//
//   - Serial: the single-threaded reference (used for profiling and as the
//     algorithmic baseline of Section 5.5).
//   - Shared: Algorithm 2 — N threads share one locked tree, each thread
//     runs complete rollouts including its own node evaluation.
//   - Local: Algorithm 3 — a master thread owns the tree without locks and
//     streams node-evaluation requests to an asynchronous evaluator
//     (inference thread pool or batched accelerator).
//   - RootParallel / LeafParallel: the related-work baselines of
//     Section 2.2.
//
// All engines consume the same game.State/evaluate interfaces, forming the
// "single program template" the paper compiles its adaptive choice into.
package mcts

import (
	"time"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// Config holds the search hyper-parameters shared by every engine.
type Config struct {
	// Playouts is the per-move iteration budget (1600 in the paper).
	Playouts int
	// Tree holds the PUCT/virtual-loss parameters of Equation 1.
	Tree tree.Config
	// MaxFanout bounds the arena size; 0 means the game's action count.
	MaxFanout int
	// DirichletAlpha, when positive, mixes Dir(alpha) noise into the root
	// priors (self-play exploration). NoiseFrac is the mixing weight.
	DirichletAlpha float64
	NoiseFrac      float64
	// Seed makes root noise deterministic.
	Seed uint64
	// Profile enables per-phase latency accounting (adds two clock reads
	// per phase; leave off in throughput runs).
	Profile bool
	// ReuseTree retains the played child's subtree across moves: after a
	// driver calls Engine.Advance for each move, the next Search continues
	// from the warm tree and only spends the playout budget the retained
	// visits do not already cover — cutting DNN evaluations per move.
	// When false (the default, and the paper's rebuild-every-move
	// workload), Advance invalidates the tree and every Search starts
	// cold.
	ReuseTree bool
	// TransposeSize, when positive, gives the session a private
	// transposition table with that many entries: transposed positions
	// share one DNN evaluation and one pool of visit statistics (the tree
	// becomes a DAG, see internal/tree/transpose.go). The table persists
	// across moves and games of the session — opening positions recur
	// across self-play games — and is only dropped with the session.
	TransposeSize int
	// TransposeTable, when non-nil, overrides TransposeSize with an
	// externally owned (typically fleet-shared) table: G concurrent games
	// converge on shared statistics and evaluations. The owner must Reset
	// it whenever the model weights change.
	TransposeTable *tree.TransTable
	// Book, when non-nil, serves precomputed root visit distributions
	// table-first: a Search whose position is in the book returns the
	// stored distribution without running a single playout.
	Book *Book
}

// DefaultConfig returns the paper's search configuration.
func DefaultConfig() Config {
	return Config{
		Playouts: 1600,
		Tree:     tree.DefaultConfig(),
	}
}

// Stats reports one Search invocation. Playouts counts the rollouts the
// search actually ran: on a warm tree (Config.ReuseTree + Advance) the
// retained visits are credited against the budget, so Playouts plus
// ReusedVisits equals the configured target.
type Stats struct {
	Playouts int
	Duration time.Duration
	// Expansions counts nodes expanded; TerminalHits counts rollouts that
	// ended on an already-terminal node (no DNN evaluation needed).
	Expansions   int
	TerminalHits int
	// SumDepth accumulates leaf depths (AvgDepth = SumDepth/Playouts).
	SumDepth int
	// Evaluations counts DNN evaluation requests issued — the currency the
	// paper's performance models price. Subtree reuse lowers it at equal
	// playout targets; that drop is the point of persistent sessions.
	Evaluations int
	// WastedEvals counts duplicate expansions during this search:
	// evaluations bought for a leaf another rollout had already expanded.
	// The underlying tree counter survives rebases, so rollouts in flight
	// across a move boundary are attributed, not dropped.
	WastedEvals int
	// ReusedNodes/ReusedVisits report what Advance retained into this
	// search's warm tree (zero on cold searches).
	ReusedNodes  int
	ReusedVisits int
	// TransHits counts leaf evaluations served from the transposition
	// table instead of the network — each one is a forward pass the search
	// did not buy. Evaluations + TransHits is the eval demand the search
	// would have had with the table off (modulo changed exploration).
	TransHits int
	// BookHits counts Search calls answered entirely from the opening
	// book (zero playouts run).
	BookHits int
	// Phase breakdown, populated when Config.Profile is set.
	SelectTime time.Duration
	ExpandTime time.Duration
	BackupTime time.Duration
	EvalTime   time.Duration
}

// Add accumulates o into s, field by field — including the phase timings,
// which per-worker and per-game merges used to hand-sum and silently drop
// when a field was missed. Concurrent-game drivers aggregate per-move stats
// with it; note that Duration then accumulates engine time, which exceeds
// wall-clock when searches overlap.
func (s *Stats) Add(o Stats) {
	s.Playouts += o.Playouts
	s.Duration += o.Duration
	s.Expansions += o.Expansions
	s.TerminalHits += o.TerminalHits
	s.SumDepth += o.SumDepth
	s.Evaluations += o.Evaluations
	s.WastedEvals += o.WastedEvals
	s.ReusedNodes += o.ReusedNodes
	s.ReusedVisits += o.ReusedVisits
	s.TransHits += o.TransHits
	s.BookHits += o.BookHits
	s.SelectTime += o.SelectTime
	s.ExpandTime += o.ExpandTime
	s.BackupTime += o.BackupTime
	s.EvalTime += o.EvalTime
}

// ReuseFraction returns the share of the playout target covered by
// retained visits instead of fresh rollouts: ReusedVisits over
// (ReusedVisits + Playouts). Zero on cold searches.
func (s Stats) ReuseFraction() float64 {
	total := s.ReusedVisits + s.Playouts
	if total == 0 {
		return 0
	}
	return float64(s.ReusedVisits) / float64(total)
}

// TransposeFraction returns the share of leaf evaluations served from the
// transposition table: TransHits over (TransHits + Evaluations). Zero when
// the table is off or nothing hit.
func (s Stats) TransposeFraction() float64 {
	total := s.TransHits + s.Evaluations
	if total == 0 {
		return 0
	}
	return float64(s.TransHits) / float64(total)
}

// AvgDepth returns the mean leaf depth of the search.
func (s Stats) AvgDepth() float64 {
	if s.Playouts == 0 {
		return 0
	}
	return float64(s.SumDepth) / float64(s.Playouts)
}

// PerIteration returns the amortized per-worker-iteration latency, the
// paper's primary speed metric (Section 5.3): total move time divided by
// the playout budget.
func (s Stats) PerIteration() time.Duration {
	if s.Playouts == 0 {
		return 0
	}
	return s.Duration / time.Duration(s.Playouts)
}

// Engine is one parallel search implementation.
type Engine interface {
	// Name identifies the scheme ("serial", "shared", "local", ...).
	Name() string
	// Search runs the configured playout budget from st and writes the
	// normalised root visit distribution into dist (length NumActions).
	// On a warm tree (see Advance) the budget is reduced by the retained
	// root visits, so the total backing the distribution still matches the
	// configured target.
	Search(st game.State, dist []float32) Stats
	// Advance tells the engine the game advanced by action. Drivers call
	// it once per move — for the engine's own move and for the opponent's
	// reply — so the tree can follow the game. With Config.ReuseTree set,
	// the played child's subtree is promoted to the root (statistics
	// intact) and the next Search continues from it; otherwise, or when
	// action is negative (DiscardTree, for game boundaries), the session
	// goes cold and the next Search rebuilds from scratch. Advance waits
	// for any in-flight rollouts to drain before rebasing.
	Advance(action int)
	// Close releases engine-owned goroutines.
	Close()
}

// maskedPriors extracts the priors of the legal actions from a full policy
// vector and renormalises them. If the network assigns (numerically) zero
// mass to all legal moves, the priors fall back to uniform.
func maskedPriors(policy []float32, actions []int, out []float32) {
	var sum float32
	for i, a := range actions {
		p := policy[a]
		if p < 0 {
			p = 0
		}
		out[i] = p
		sum += p
	}
	if sum <= 1e-12 {
		u := 1 / float32(len(actions))
		for i := range actions {
			out[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range actions {
		out[i] *= inv
	}
}

// rootNoiseRemix returns the warm-root prior remix callback for
// session.prepare, or nil when root noise is disabled.
func rootNoiseRemix(cfg Config, r *rng.Rand) func(priors []float32) {
	if cfg.DirichletAlpha <= 0 || cfg.NoiseFrac <= 0 {
		return nil
	}
	return func(priors []float32) { applyRootNoise(cfg, r, priors) }
}

// applyRootNoise mixes Dirichlet noise into freshly computed root priors.
func applyRootNoise(cfg Config, r *rng.Rand, priors []float32) {
	if cfg.DirichletAlpha <= 0 || cfg.NoiseFrac <= 0 {
		return
	}
	noise := make([]float64, len(priors))
	r.Dirichlet(cfg.DirichletAlpha, noise)
	frac := float32(cfg.NoiseFrac)
	for i := range priors {
		priors[i] = (1-frac)*priors[i] + frac*float32(noise[i])
	}
}

// terminalValue returns the game outcome from the perspective of the player
// to move at st (who, being to move in a finished game, can at best have
// drawn).
func terminalValue(st game.State) float64 {
	return game.Outcome(st.Winner(), st.ToMove())
}

// newTreeFor sizes and allocates a search tree for st under cfg.
func newTreeFor(cfg Config, st game.State) *tree.Tree {
	fanout := cfg.MaxFanout
	if fanout <= 0 {
		fanout = st.NumActions()
	}
	return tree.New(cfg.Tree, tree.SuggestCapacity(cfg.Playouts, fanout))
}

// now returns the current time only when profiling, so the phase accounting
// costs nothing when disabled.
func now(enabled bool) time.Time {
	if !enabled {
		return time.Time{}
	}
	return time.Now()
}

func since(enabled bool, t time.Time) time.Duration {
	if !enabled {
		return 0
	}
	return time.Since(t)
}
