package mcts

import (
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// Serial is the single-threaded reference engine: one rollout at a time,
// no virtual loss, always acting on the most up-to-date tree statistics.
// Section 5.5 uses it as the algorithmic gold standard that the parallel
// engines' training quality is compared against, and the design-time
// profiling of Section 4.2 measures T_select/T_backup/T_DNN on it.
type Serial struct {
	s    session
	eval evaluate.Evaluator
	r    *rng.Rand

	// reusable per-search scratch
	input   []float32
	policy  []float32
	actions []int
	priors  []float32
	key     []byte
}

// NewSerial creates a serial engine.
func NewSerial(cfg Config, eval evaluate.Evaluator) *Serial {
	return &Serial{s: session{cfg: cfg}, eval: eval, r: rng.New(cfg.Seed)}
}

// Name implements Engine.
func (e *Serial) Name() string { return "serial" }

// Close implements Engine. It waits for an in-flight Search or Advance to
// drain (the session mutex extends to the pool layer) and releases the
// tree, so a session pool can evict this engine while a move is still
// searching on another goroutine: the search finishes and is discarded.
func (e *Serial) Close() { e.s.close() }

// Advance implements Engine.
func (e *Serial) Advance(action int) { e.s.advance(action) }

// Search implements Engine.
func (e *Serial) Search(st game.State, dist []float32) Stats {
	if bs, ok := bookServe(e.s.cfg, st, dist); ok {
		return bs
	}
	e.s.mu.Lock()
	defer e.s.mu.Unlock()
	var stats Stats
	_, budget := e.s.prepare(st, &stats, rootNoiseRemix(e.s.cfg, e.r))
	c, h, w := st.EncodedShape()
	if e.input == nil {
		e.input = make([]float32, c*h*w)
		e.policy = make([]float32, st.NumActions())
		e.priors = make([]float32, st.NumActions())
	}
	start := time.Now()
	for p := 0; p < budget; p++ {
		e.rollout(st, &stats)
	}
	stats.Playouts = budget
	stats.Duration = time.Since(start)
	e.s.finish(&stats)
	e.s.tr.VisitDistribution(dist)
	return stats
}

// rollout performs one Selection / Expansion / Evaluation / Backup round.
func (e *Serial) rollout(root game.State, stats *Stats) {
	prof := e.s.cfg.Profile
	tr := e.s.tr
	st := root.Clone()
	idx := tr.Root()

	t0 := now(prof)
	depth := 0
	for tr.Node(idx).Expanded() {
		idx = tr.SelectChild(idx)
		st.Play(tr.Node(idx).Action())
		depth++
	}
	stats.SelectTime += since(prof, t0)
	stats.SumDepth += depth

	nd := tr.Node(idx)
	var value float64
	switch {
	case nd.Terminal():
		value = nd.TerminalValue()
		stats.TerminalHits++
	case st.Terminal():
		value = terminalValue(st)
		tr.MarkTerminal(idx, value)
		stats.TerminalHits++
	default:
		var entry *tree.TransEntry
		if tt := e.s.tt; tt != nil {
			entry, e.key = transProbe(tt, tr, st, idx, e.key)
			if v, acts, prs, ok := entry.LoadEval(e.actions[:0], e.priors[:0]); ok {
				// Served from the transposition table: no forward pass.
				value = v
				e.actions = acts
				if idx == tr.Root() {
					applyRootNoise(e.s.cfg, e.r, prs)
				}
				tr.Expand(idx, e.actions, prs)
				stats.Expansions++
				stats.TransHits++
				break
			}
		}
		t1 := now(prof)
		value, e.key = evalState(e.eval, st, e.input, e.policy, e.key)
		stats.Evaluations++
		stats.EvalTime += since(prof, t1)

		t2 := now(prof)
		e.actions = st.LegalMoves(e.actions[:0])
		priors := e.priors[:len(e.actions)]
		maskedPriors(e.policy, e.actions, priors)
		if entry != nil {
			// Publish the clean (pre-noise) priors for transposed lines.
			entry.StoreEval(value, e.actions, priors)
		}
		if idx == tr.Root() {
			applyRootNoise(e.s.cfg, e.r, priors)
		}
		tr.Expand(idx, e.actions, priors)
		stats.Expansions++
		stats.ExpandTime += since(prof, t2)
	}

	t3 := now(prof)
	tr.Backup(idx, value, false)
	stats.BackupTime += since(prof, t3)
}

// Tree exposes the engine's tree for tests and profiling.
func (e *Serial) Tree() *tree.Tree { return e.s.tr }
