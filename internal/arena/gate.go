package arena

import (
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
)

// GateConfig configures candidate-model evaluation: the AlphaGo-Zero-style
// promotion gate in which a freshly trained network must beat the current
// best network in head-to-head play before replacing it. The paper's
// training pipeline (Algorithm 1) updates unconditionally; gating is the
// standard production extension for keeping training from regressing.
type GateConfig struct {
	// Games per evaluation match.
	Games int
	// WinThreshold is the score the candidate must reach (AlphaGo Zero
	// used 0.55).
	WinThreshold float64
	// Playouts per move for both sides.
	Playouts int
	// Temperature decorrelates repeated games (e.g. 0.2).
	Temperature float64
	// TempMoves limits Temperature to the opening (0 = whole game).
	TempMoves int
	// Seed drives move sampling.
	Seed uint64
}

// DefaultGateConfig returns the conventional gate.
func DefaultGateConfig() GateConfig {
	return GateConfig{
		Games:        20,
		WinThreshold: 0.55,
		Playouts:     100,
		Temperature:  0.2,
		TempMoves:    6,
		Seed:         1,
	}
}

// GateCandidate plays candidate against best with serial engines at equal
// budgets and reports whether the candidate clears the promotion
// threshold, along with the match evidence.
func GateCandidate(g game.Game, candidate, best *nn.Network, cfg GateConfig) (promote bool, res MatchResult) {
	if cfg.Games < 1 || cfg.Playouts < 1 {
		panic("arena: gate needs Games >= 1 and Playouts >= 1")
	}
	mk := func(net *nn.Network, seed uint64) mcts.Engine {
		c := mcts.DefaultConfig()
		c.Playouts = cfg.Playouts
		c.Seed = seed
		return mcts.NewSerial(c, evaluate.NewNN(net))
	}
	a := mk(candidate, cfg.Seed)
	b := mk(best, cfg.Seed+1)
	res = Play(g, a, b, MatchConfig{
		Games:       cfg.Games,
		Temperature: cfg.Temperature,
		TempMoves:   cfg.TempMoves,
		Seed:        cfg.Seed,
	})
	return res.Score() >= cfg.WinThreshold, res
}
