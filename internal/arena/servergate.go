package arena

import (
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/train"
)

// ServerGate is a promotion gate that plays the candidate-vs-incumbent
// match THROUGH the live multi-tenant inference service, while the
// self-play fleet keeps generating on it: the candidate's backend is
// registered under its (not yet current) version, each side's engine is a
// sync tenant pinned to its own version, and the match traffic multiplexes
// with fleet traffic in the same batch stream. Two versions are live
// simultaneously — one per tenant group — which is exactly the state a
// promotion swap later makes permanent.
//
// On rejection the candidate's version is retired immediately (its two
// match tenants are closed, nothing else ever pinned it). On promotion the
// registration is left in place for the Promoter to make current via
// SwapBackend.
type ServerGate struct {
	// Game is the gating workload.
	Game game.Game
	// Srv is the shared inference service (the fleet's server).
	Srv *evaluate.Server
	// MkBackend builds the backend serving a model version during (and, if
	// promoted, after) the match — e.g. an EvaluatorBackend over a
	// version-scoped cache view of the candidate network.
	MkBackend func(net *nn.Network, version int64) evaluate.Backend
	// OnReject, when non-nil, runs after a rejected candidate's version is
	// retired from the server — the place to drop any other state tagged
	// with that version (cmd/train evicts the shared cache's entries here,
	// so a rejected network's evaluations cannot linger in the table).
	OnReject func(version int64)
	// Cfg carries the match size, win threshold and search budget.
	Cfg GateConfig
}

// Gate implements train.Gate.
func (sg *ServerGate) Gate(candidate *nn.Network, cv int64, incumbent *nn.Network, iv int64) train.GateResult {
	return sg.GateBackend(sg.MkBackend(candidate, cv), cv, iv)
}

// GateBackend gates an already-built candidate backend against the
// registered version iv. It is the match mechanics of Gate with backend
// construction factored out, so candidates that are not plain fp32
// networks — above all an int8-quantized variant of a promoted model, whose
// backend is built from calibration data MkBackend never sees — run through
// the identical live-server match, promotion threshold, and retire-on-reject
// path as ordinary training candidates.
//
// The backend is registered under version cv for the duration of the match.
// On promotion the registration is left in place (the caller makes it
// current or retires it); on rejection it is retired immediately and
// OnReject runs.
func (sg *ServerGate) GateBackend(candidate evaluate.Backend, cv, iv int64) train.GateResult {
	if sg.Cfg.Games < 1 || sg.Cfg.Playouts < 1 {
		panic("arena: gate needs Games >= 1 and Playouts >= 1")
	}
	sg.Srv.RegisterBackend(candidate, cv)

	mk := func(version int64, seed uint64) (mcts.Engine, *evaluate.Client) {
		cl := sg.Srv.NewSyncClient()
		cl.Pin(version)
		c := mcts.DefaultConfig()
		c.Playouts = sg.Cfg.Playouts
		c.Seed = seed
		return mcts.NewSerial(c, cl), cl
	}
	a, clA := mk(cv, sg.Cfg.Seed)
	b, clB := mk(iv, sg.Cfg.Seed+1)
	res := Play(sg.Game, a, b, MatchConfig{
		Games:       sg.Cfg.Games,
		Temperature: sg.Cfg.Temperature,
		TempMoves:   sg.Cfg.TempMoves,
		Seed:        sg.Cfg.Seed,
	})
	a.Close()
	b.Close()
	clA.Close()
	clB.Close()

	promote := res.Score() >= sg.Cfg.WinThreshold
	if !promote {
		// No fleet tenant ever pins a never-promoted version; with the
		// match tenants closed the registration can go immediately.
		sg.Srv.Retire(cv)
		if sg.OnReject != nil {
			sg.OnReject(cv)
		}
	}
	return train.GateResult{
		Promote:       promote,
		Score:         res.Score(),
		Games:         res.Games,
		WinsCandidate: res.WinsA,
		WinsIncumbent: res.WinsB,
		Draws:         res.Draws,
		Elapsed:       res.Duration,
	}
}
