package arena

import (
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/othello"
	"github.com/parmcts/parmcts/internal/mcts"
)

// zeroDistEngine returns an all-zero visit distribution; the match driver
// must fall back to a random legal move instead of electing action 0.
type zeroDistEngine struct{}

func (zeroDistEngine) Name() string { return "zero-dist" }
func (zeroDistEngine) Search(st game.State, dist []float32) mcts.Stats {
	for i := range dist {
		dist[i] = 0
	}
	return mcts.Stats{}
}
func (zeroDistEngine) Advance(int) {}
func (zeroDistEngine) Close()      {}

// TestPlaySurvivesZeroDistOnOthello is the regression for the action-0
// fallback: before it, the first Othello ply panicked on an illegal move.
func TestPlaySurvivesZeroDistOnOthello(t *testing.T) {
	res := Play(othello.NewSized(4), zeroDistEngine{}, zeroDistEngine{}, MatchConfig{
		Games: 4,
		Seed:  11,
	})
	if res.Games != 4 || res.WinsA+res.WinsB+res.Draws != 4 {
		t.Fatalf("match result inconsistent: %+v", res)
	}
}

// TestMatchOthelloWithReuse runs a real engine match on the pass-move
// scenario with persistent sessions: the match must complete with both
// engines advancing through passes, and the engines' trees stay coherent
// (no illegal-move panics, every game reaches a verdict).
func TestMatchOthelloWithReuse(t *testing.T) {
	g := othello.NewSized(4)
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 40
	cfg.ReuseTree = true
	cfg.Seed = 5
	a := mcts.NewSerial(cfg, &evaluate.Random{})
	cfgB := cfg
	cfgB.Seed = 6
	b := mcts.NewSerial(cfgB, &evaluate.Random{})
	defer a.Close()
	defer b.Close()
	res := Play(g, a, b, MatchConfig{Games: 4, Temperature: 0.3, TempMoves: 4, Seed: 3})
	if res.WinsA+res.WinsB+res.Draws != 4 {
		t.Fatalf("match result inconsistent: %+v", res)
	}
}
