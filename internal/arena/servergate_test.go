package arena

import (
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// gateFixture builds a live server (incumbent v1) and a ServerGate over it.
func gateFixture(t *testing.T, threshold float64) (*evaluate.Server, *ServerGate, *nn.Network, func()) {
	t.Helper()
	g := tictactoe.New()
	c, h, w := g.EncodedShape()
	incumbent := nn.MustNew(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(1))
	mkBackend := func(n *nn.Network, v int64) evaluate.Backend {
		return &evaluate.EvaluatorBackend{Eval: evaluate.NewNN(n), Workers: 2}
	}
	srv := evaluate.NewServer(mkBackend(incumbent, 1), evaluate.ServerConfig{Batch: 1, LaunchWorkers: 2})
	sg := &ServerGate{
		Game:      g,
		Srv:       srv,
		MkBackend: mkBackend,
		Cfg: GateConfig{
			Games:        2,
			WinThreshold: threshold,
			Playouts:     8,
			Temperature:  0.3,
			Seed:         3,
		},
	}
	return srv, sg, incumbent, srv.Close
}

// TestServerGateRejectionCleansUp: a rejected candidate's version must be
// fully gone afterwards — retired from the server and reported to OnReject
// so version-tagged caches can evict, leaving nothing a later candidate
// (which always gets a fresh version number) could collide with.
func TestServerGateRejectionCleansUp(t *testing.T) {
	srv, sg, incumbent, closeSrv := gateFixture(t, 1.1) // unreachable: always reject
	defer closeSrv()
	var rejected []int64
	sg.OnReject = func(v int64) { rejected = append(rejected, v) }

	candidate := incumbent.Clone()
	res := sg.Gate(candidate, 2, incumbent, 1)
	if res.Promote {
		t.Fatal("score above an unreachable threshold")
	}
	if res.Games != 2 || res.WinsCandidate+res.WinsIncumbent+res.Draws != 2 {
		t.Fatalf("match evidence inconsistent: %+v", res)
	}
	if len(rejected) != 1 || rejected[0] != 2 {
		t.Fatalf("OnReject calls = %v, want [2]", rejected)
	}
	if vs := srv.Versions(); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("versions after rejection = %v, want [1]", vs)
	}
	if srv.Version() != 1 {
		t.Fatalf("rejection changed the current version to %d", srv.Version())
	}
}

// TestServerGatePromotionLeavesRegistration: an accepted candidate's
// backend stays registered (the Promoter makes it current) and OnReject
// does not fire.
func TestServerGatePromotionLeavesRegistration(t *testing.T) {
	srv, sg, incumbent, closeSrv := gateFixture(t, 0) // any score promotes
	defer closeSrv()
	sg.OnReject = func(v int64) { t.Errorf("OnReject(%d) fired on a promotion", v) }

	res := sg.Gate(incumbent.Clone(), 2, incumbent, 1)
	if !res.Promote {
		t.Fatal("score below a zero threshold")
	}
	if vs := srv.Versions(); len(vs) != 2 {
		t.Fatalf("versions after promotion = %v, want candidate still registered", vs)
	}
	if srv.Version() != 1 {
		t.Fatalf("gate itself changed the current version to %d (the Promoter's job)", srv.Version())
	}
	srv.Retire(2)
}

// TestServerGateQuantizedBackend gates an int8-quantized variant of the
// incumbent against its own fp32 source through GateBackend — the
// quantization acceptance path. Since the two sides compute (numerically)
// the same network, the quantized candidate must clear a near-parity
// threshold, and both cleanup behaviours must match the fp32 gate's.
func TestServerGateQuantizedBackend(t *testing.T) {
	srv, sg, incumbent, closeSrv := gateFixture(t, 0.45)
	defer closeSrv()
	sg.OnReject = func(v int64) { t.Errorf("OnReject(%d): quantized twin lost to its own fp32 source", v) }

	// Calibrate on random boards — for TicTacToe's 18-float encoding any
	// on-distribution inputs pin the activation ranges well enough.
	r := rng.New(7)
	calib := make([][]float32, 32)
	for i := range calib {
		in := make([]float32, incumbent.InputLen())
		for j := range in {
			if r.Float32() < 0.3 {
				in[j] = 1
			}
		}
		calib[i] = in
	}
	qnet, err := nn.Quantize(incumbent, calib)
	if err != nil {
		t.Fatal(err)
	}

	qb := &evaluate.EvaluatorBackend{Eval: evaluate.NewQuantized(qnet), Workers: 2}
	res := sg.GateBackend(qb, 2, 1)
	if !res.Promote {
		t.Fatalf("quantized twin scored %.2f vs its fp32 source, below 0.45", res.Score)
	}
	if res.Games != sg.Cfg.Games {
		t.Fatalf("played %d games, want %d", res.Games, sg.Cfg.Games)
	}
	if vs := srv.Versions(); len(vs) != 2 {
		t.Fatalf("versions after quantized promotion = %v, want candidate still registered", vs)
	}
	srv.Retire(2)
}
