package arena

import (
	"testing"

	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

func TestGateSelfPlayDoesNotPromote(t *testing.T) {
	// A network playing a copy of itself scores ~0.5, below the 0.55 gate
	// — identical models must not churn the best-model slot.
	g := tictactoe.New()
	net := nn.MustNew(nn.TinyConfig(4, 3, 3, 9), rng.New(1))
	clone := net.Clone()
	cfg := DefaultGateConfig()
	cfg.Games = 8
	cfg.Playouts = 40
	promote, res := GateCandidate(g, net, clone, cfg)
	if res.Games != 8 {
		t.Fatalf("games = %d", res.Games)
	}
	// Self-play match score must be near even; a sweep either way would
	// indicate a colour or engine asymmetry bug.
	if res.Score() < 0.15 || res.Score() > 0.85 {
		t.Fatalf("self-play score %.2f is lopsided: %+v", res.Score(), res)
	}
	_ = promote // promotion is legitimately possible at 0.55-0.85; no assert
}

func TestGateThresholdArithmetic(t *testing.T) {
	// Verify the promote decision against the score directly.
	g := tictactoe.New()
	net := nn.MustNew(nn.TinyConfig(4, 3, 3, 9), rng.New(2))
	cfg := DefaultGateConfig()
	cfg.Games = 4
	cfg.Playouts = 20
	cfg.WinThreshold = 0.0 // any score promotes
	promote, _ := GateCandidate(g, net, net.Clone(), cfg)
	if !promote {
		t.Fatal("zero threshold must always promote")
	}
	cfg.WinThreshold = 1.1 // impossible
	promote, _ = GateCandidate(g, net, net.Clone(), cfg)
	if promote {
		t.Fatal("impossible threshold must never promote")
	}
}

func TestGatePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero games did not panic")
		}
	}()
	GateCandidate(tictactoe.New(), nil, nil, GateConfig{Playouts: 10})
}
