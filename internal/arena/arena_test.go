package arena

import (
	"math"
	"strings"
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/mcts"
)

func engine(playouts int, seed uint64) mcts.Engine {
	cfg := mcts.DefaultConfig()
	cfg.Playouts = playouts
	cfg.Seed = seed
	return mcts.NewSerial(cfg, &evaluate.Random{})
}

func TestMatchResultScoreAndElo(t *testing.T) {
	r := MatchResult{Games: 10, WinsA: 7, WinsB: 2, Draws: 1}
	if got := r.Score(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("score = %v", got)
	}
	if elo := r.EloDiff(1000); math.Abs(elo-190.8) > 1 {
		t.Fatalf("elo = %v, want ~191", elo)
	}
	even := MatchResult{Games: 4, WinsA: 2, WinsB: 2}
	if elo := even.EloDiff(1000); math.Abs(elo) > 1e-9 {
		t.Fatalf("even match elo = %v", elo)
	}
	sweep := MatchResult{Games: 4, WinsA: 4}
	if elo := sweep.EloDiff(500); elo != 500 {
		t.Fatalf("sweep elo not clamped: %v", elo)
	}
	var empty MatchResult
	if empty.Score() != 0.5 {
		t.Fatal("empty match score should be 0.5")
	}
}

func TestMatchResultString(t *testing.T) {
	s := MatchResult{Games: 3, WinsA: 2, WinsB: 1}.String()
	for _, want := range []string{"2 : 1", "score"} {
		if !strings.Contains(s, want) {
			t.Fatalf("string missing %q: %s", want, s)
		}
	}
}

func TestPlayPanicsOnZeroGames(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero games did not panic")
		}
	}()
	Play(tictactoe.New(), engine(10, 1), engine(10, 2), MatchConfig{})
}

func TestStrongBeatsWeak(t *testing.T) {
	// 400 playouts vs 8 playouts on tic-tac-toe: the strong engine should
	// not lose the match (it can draw games — perfect play draws — but the
	// weak engine blunders).
	g := tictactoe.New()
	strong := engine(400, 1)
	weak := engine(8, 2)
	res := Play(g, strong, weak, MatchConfig{
		Games:       8,
		Temperature: 0.3, // decorrelate repeats; weak engine will blunder
		TempMoves:   3,
		Seed:        9,
	})
	if res.Games != 8 || res.WinsA+res.WinsB+res.Draws != 8 {
		t.Fatalf("game accounting wrong: %+v", res)
	}
	if res.Score() < 0.5 {
		t.Fatalf("strong engine scored %.3f: %+v", res.Score(), res)
	}
	if res.Duration <= 0 {
		t.Fatal("no duration recorded")
	}
}

func TestSelfPlayIsBalanced(t *testing.T) {
	// Identical engines with colour alternation: neither side should sweep.
	g := tictactoe.New()
	a := engine(60, 3)
	b := engine(60, 3)
	res := Play(g, a, b, MatchConfig{Games: 10, Temperature: 0.5, TempMoves: 4, Seed: 11})
	if res.WinsA == 10 || res.WinsB == 10 {
		t.Fatalf("identical engines swept: %+v", res)
	}
}

func TestRoundRobinPairCount(t *testing.T) {
	g := tictactoe.New()
	entrants := []Entrant{
		{Name: "a", Engine: engine(20, 1)},
		{Name: "b", Engine: engine(20, 2)},
		{Name: "c", Engine: engine(20, 3)},
	}
	results := RoundRobin(g, entrants, MatchConfig{Games: 2, Temperature: 0.5, Seed: 5})
	if len(results) != 3 { // C(3,2)
		t.Fatalf("pairs = %d, want 3", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.A+"-"+r.B] = true
		if r.Result.Games != 2 {
			t.Fatalf("pair %s-%s played %d games", r.A, r.B, r.Result.Games)
		}
	}
	if !seen["a-b"] || !seen["a-c"] || !seen["b-c"] {
		t.Fatalf("pairings wrong: %v", seen)
	}
}

func TestParallelSchemesMatchSerialStrength(t *testing.T) {
	// The Section 5.5 claim as a playable experiment: shared-tree search
	// with virtual loss must not be meaningfully weaker than serial search
	// at the same budget.
	g := tictactoe.New()
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 200
	serial := mcts.NewSerial(cfg, &evaluate.Random{})
	shared := mcts.NewShared(cfg, 4, &evaluate.Random{})
	res := Play(g, shared, serial, MatchConfig{Games: 6, Temperature: 0.4, TempMoves: 3, Seed: 13})
	if res.Score() < 0.2 {
		t.Fatalf("shared-tree engine collapsed against serial: %+v", res)
	}
}

// advanceRecorder wraps an engine and records the Advance calls the arena
// drives into it.
type advanceRecorder struct {
	mcts.Engine
	advances []int
}

func (r *advanceRecorder) Advance(action int) {
	r.advances = append(r.advances, action)
	r.Engine.Advance(action)
}

// TestPlayAdvancesBothEngines pins the arena half of persistent search
// sessions: every non-terminal move is advanced into BOTH engines (the
// mover's own action and the opponent's reply), and each game ends with a
// DiscardTree so warm state never leaks into the next game.
func TestPlayAdvancesBothEngines(t *testing.T) {
	reuse := func(seed uint64) mcts.Engine {
		cfg := mcts.DefaultConfig()
		cfg.Playouts = 60
		cfg.Seed = seed
		cfg.ReuseTree = true
		return mcts.NewSerial(cfg, &evaluate.Random{})
	}
	a := &advanceRecorder{Engine: reuse(1)}
	b := &advanceRecorder{Engine: reuse(2)}
	res := Play(tictactoe.New(), a, b, MatchConfig{Games: 2, Seed: 5})
	if res.Games != 2 {
		t.Fatalf("games = %d", res.Games)
	}
	if len(a.advances) != len(b.advances) {
		t.Fatalf("engines advanced unevenly: %d vs %d", len(a.advances), len(b.advances))
	}
	discards := 0
	for i, act := range a.advances {
		if act != b.advances[i] {
			t.Fatalf("advance %d diverged: %d vs %d", i, act, b.advances[i])
		}
		if act == mcts.DiscardTree {
			discards++
		}
	}
	if discards != 2 {
		t.Fatalf("discards = %d, want one per game", discards)
	}
	if len(a.advances) <= discards {
		t.Fatal("no move advances recorded")
	}
	// Discards must close each game: the final advance is a DiscardTree.
	if a.advances[len(a.advances)-1] != mcts.DiscardTree {
		t.Fatal("game did not end with a session discard")
	}
}
