// Package arena evaluates game-playing strength: it pits two search
// engines against each other over a match with alternating colours and
// estimates a relative Elo rating. Section 5.5 argues that tree-parallel
// execution changes search trajectories but not decision quality; the
// arena is the tool that makes this claim testable for any pair of engine
// configurations (serial vs shared vs local vs the related-work
// baselines), and is what an open-source user would reach for to validate
// a trained network.
package arena

import (
	"fmt"
	"math"
	"time"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/train"
)

// MatchConfig configures a head-to-head match.
type MatchConfig struct {
	// Games is the number of games; colours alternate every game.
	Games int
	// Temperature applied when sampling moves (0 = deterministic argmax).
	// A small positive value (e.g. 0.1) decorrelates repeated games.
	Temperature float64
	// TempMoves applies Temperature only to the first TempMoves plies of
	// each game (0 = all plies).
	TempMoves int
	// MaxMoves truncates pathological games (0 = game.MaxGameLength).
	MaxMoves int
	// Seed drives move sampling.
	Seed uint64
}

// MatchResult summarises a match from engine A's perspective.
type MatchResult struct {
	Games    int
	WinsA    int
	WinsB    int
	Draws    int
	Duration time.Duration
}

// Score returns A's match score in [0, 1]: wins plus half-draws.
func (r MatchResult) Score() float64 {
	if r.Games == 0 {
		return 0.5
	}
	return (float64(r.WinsA) + 0.5*float64(r.Draws)) / float64(r.Games)
}

// EloDiff estimates A's Elo advantage over B from the match score, clamped
// to ±max to keep degenerate sweeps readable.
func (r MatchResult) EloDiff(max float64) float64 {
	s := r.Score()
	const eps = 1e-3
	if s < eps {
		s = eps
	}
	if s > 1-eps {
		s = 1 - eps
	}
	elo := -400 * math.Log10(1/s-1)
	if elo > max {
		return max
	}
	if elo < -max {
		return -max
	}
	return elo
}

// String renders the result.
func (r MatchResult) String() string {
	return fmt.Sprintf("A %d : %d B (draws %d, score %.3f, elo %+.0f)",
		r.WinsA, r.WinsB, r.Draws, r.Score(), r.EloDiff(1000))
}

// Play runs the match. Engines are reused across games; they must not be
// shared with concurrent callers. Both engines are advanced past every
// played move — the mover's own action and, from the other side's view,
// the opponent's reply — so engines configured with mcts.Config.ReuseTree
// keep warm trees through a game; sessions are discarded at each game
// boundary.
func Play(g game.Game, engineA, engineB mcts.Engine, cfg MatchConfig) MatchResult {
	if cfg.Games < 1 {
		panic("arena: Games must be >= 1")
	}
	maxMoves := cfg.MaxMoves
	if maxMoves <= 0 {
		maxMoves = g.MaxGameLength()
	}
	r := rng.New(cfg.Seed)
	var res MatchResult
	start := time.Now()
	dist := make([]float32, g.NumActions())
	for i := 0; i < cfg.Games; i++ {
		aPlaysFirst := i%2 == 0
		winner := playOne(g, engineA, engineB, aPlaysFirst, maxMoves, cfg, r)
		switch {
		case winner == game.Nobody:
			res.Draws++
		case (winner == game.P1) == aPlaysFirst:
			res.WinsA++
		default:
			res.WinsB++
		}
	}
	_ = dist
	res.Games = cfg.Games
	res.Duration = time.Since(start)
	return res
}

func playOne(g game.Game, a, b mcts.Engine, aFirst bool, maxMoves int, cfg MatchConfig, r *rng.Rand) game.Player {
	st := g.NewInitial()
	dist := make([]float32, g.NumActions())
	engines := [2]mcts.Engine{a, b}
	if !aFirst {
		engines[0], engines[1] = b, a
	}
	for ply := 0; !st.Terminal() && ply < maxMoves; ply++ {
		engines[ply%2].Search(st, dist)
		temp := 0.0
		if cfg.Temperature > 0 && (cfg.TempMoves == 0 || ply < cfg.TempMoves) {
			temp = cfg.Temperature
		}
		action := train.SampleActionOrLegal(r, dist, temp, st)
		st.Play(action)
		if !st.Terminal() {
			// Warm both trees: the mover follows its own move, the other
			// engine follows the opponent's reply.
			a.Advance(action)
			b.Advance(action)
		}
	}
	// Game over: the next game starts from a fresh position, so any warm
	// subtree is invalid.
	a.Advance(mcts.DiscardTree)
	b.Advance(mcts.DiscardTree)
	return st.Winner()
}

// Tournament plays every pair of entrants once and reports a cross table
// of scores and Elo estimates relative to the first entrant.
type Entrant struct {
	Name   string
	Engine mcts.Engine
}

// TournamentResult is one pairwise outcome.
type TournamentResult struct {
	A, B   string
	Result MatchResult
}

// RoundRobin plays all distinct pairs with the given per-pair config.
func RoundRobin(g game.Game, entrants []Entrant, cfg MatchConfig) []TournamentResult {
	var out []TournamentResult
	for i := 0; i < len(entrants); i++ {
		for j := i + 1; j < len(entrants); j++ {
			res := Play(g, entrants[i].Engine, entrants[j].Engine, cfg)
			out = append(out, TournamentResult{
				A: entrants[i].Name, B: entrants[j].Name, Result: res,
			})
		}
	}
	return out
}
