package faultfs

import (
	"errors"
	"io/fs"
	"sync"
)

// ErrInjected is the error every scripted fault and every post-crash
// operation returns. Stores must treat it like any other disk error.
var ErrInjected = errors.New("faultfs: injected fault")

// Op names one interposed operation kind for fault scripting.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpClose
	OpCreate
	OpAppend
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
	numOps
)

// Mode is what a scripted fault does to its operation.
type Mode int

const (
	// Fail returns ErrInjected without applying the operation.
	Fail Mode = iota
	// Tear applies only the first half of a write's buffer, then returns
	// ErrInjected — a torn frame. On non-write operations Tear acts as Fail.
	Tear
	// Drop reports success without applying the operation — the lying-disk
	// case. Only meaningful for writes.
	Drop
)

// Fault schedules one misbehaviour: the At-th call (1-based) of the given
// Op kind runs in the given Mode.
type Fault struct {
	Op   Op
	At   int
	Mode Mode
}

// Injected wraps an FS with scripted faults and an optional crash point.
// It is safe for concurrent use.
type Injected struct {
	inner FS

	mu      sync.Mutex
	counts  [numOps]int
	total   int // all counted mutating ops, for CrashAt
	faults  []Fault
	crashAt int // 1-based total-op index; 0 = never
	crashed bool
}

// NewInjected wraps inner (nil = OS) with an empty script.
func NewInjected(inner FS) *Injected {
	if inner == nil {
		inner = OS
	}
	return &Injected{inner: inner}
}

// Script replaces the fault list.
func (i *Injected) Script(faults ...Fault) *Injected {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = append(i.faults[:0], faults...)
	return i
}

// CrashAt simulates a process kill at the n-th mutating operation
// (1-based): that operation fails (a write tears first), and every
// operation after it — reads included — returns ErrInjected.
func (i *Injected) CrashAt(n int) *Injected {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashAt = n
	return i
}

// Ops returns the number of mutating operations counted so far. Run a
// workload fault-free first, then sweep CrashAt over [1, Ops()].
func (i *Injected) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.total
}

// Crashed reports whether the crash point has been reached.
func (i *Injected) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// step counts one mutating operation and resolves its fate: the mode to
// apply (or -1 for "run normally").
func (i *Injected) step(op Op) (Mode, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return Fail, true
	}
	i.counts[op]++
	i.total++
	if i.crashAt > 0 && i.total >= i.crashAt {
		i.crashed = true
		if op == OpWrite {
			return Tear, true
		}
		return Fail, true
	}
	for _, f := range i.faults {
		if f.Op == op && f.At == i.counts[op] {
			return f.Mode, true
		}
	}
	return 0, false
}

// dead reports post-crash state for read operations.
func (i *Injected) dead() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

func (i *Injected) MkdirAll(dir string) error {
	if mode, hit := i.step(OpMkdir); hit {
		if mode == Drop {
			return nil
		}
		return ErrInjected
	}
	return i.inner.MkdirAll(dir)
}

func (i *Injected) Create(name string) (File, error) {
	if mode, hit := i.step(OpCreate); hit {
		if mode == Drop {
			return discardFile{i}, nil
		}
		return nil, ErrInjected
	}
	f, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{fs: i, f: f}, nil
}

func (i *Injected) OpenAppend(name string) (File, error) {
	if mode, hit := i.step(OpAppend); hit {
		if mode == Drop {
			return discardFile{i}, nil
		}
		return nil, ErrInjected
	}
	f, err := i.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{fs: i, f: f}, nil
}

func (i *Injected) Rename(oldpath, newpath string) error {
	if mode, hit := i.step(OpRename); hit {
		if mode == Drop {
			return nil
		}
		return ErrInjected
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injected) Remove(name string) error {
	if mode, hit := i.step(OpRemove); hit {
		if mode == Drop {
			return nil
		}
		return ErrInjected
	}
	return i.inner.Remove(name)
}

func (i *Injected) Truncate(name string, size int64) error {
	if mode, hit := i.step(OpTruncate); hit {
		if mode == Drop {
			return nil
		}
		return ErrInjected
	}
	return i.inner.Truncate(name, size)
}

func (i *Injected) ReadFile(name string) ([]byte, error) {
	if i.dead() {
		return nil, ErrInjected
	}
	return i.inner.ReadFile(name)
}

func (i *Injected) ReadDir(dir string) ([]fs.DirEntry, error) {
	if i.dead() {
		return nil, ErrInjected
	}
	return i.inner.ReadDir(dir)
}

func (i *Injected) OpenRead(name string) (ReadAtCloser, error) {
	if i.dead() {
		return nil, ErrInjected
	}
	return i.inner.OpenRead(name)
}

func (i *Injected) Stat(name string) (fs.FileInfo, error) {
	if i.dead() {
		return nil, ErrInjected
	}
	return i.inner.Stat(name)
}

// injectedFile routes Write/Sync/Close through the script.
type injectedFile struct {
	fs *Injected
	f  File
}

func (f *injectedFile) Write(p []byte) (int, error) {
	if mode, hit := f.fs.step(OpWrite); hit {
		switch mode {
		case Drop:
			return len(p), nil // lies: reports success, persists nothing
		case Tear:
			n, _ := f.f.Write(p[:len(p)/2])
			return n, ErrInjected
		default:
			return 0, ErrInjected
		}
	}
	return f.f.Write(p)
}

func (f *injectedFile) Sync() error {
	if mode, hit := f.fs.step(OpSync); hit {
		if mode == Drop {
			return nil
		}
		return ErrInjected
	}
	return f.f.Sync()
}

func (f *injectedFile) Close() error {
	if mode, hit := f.fs.step(OpClose); hit {
		// Close the real handle regardless so tests do not leak FDs; the
		// scripted error is what the store sees.
		f.f.Close()
		if mode == Drop {
			return nil
		}
		return ErrInjected
	}
	return f.f.Close()
}

// discardFile is the handle a Dropped Create/OpenAppend returns: it
// persists nothing while claiming success, except that post-crash all
// operations fail.
type discardFile struct{ fs *Injected }

func (d discardFile) Write(p []byte) (int, error) {
	if d.fs.dead() {
		return 0, ErrInjected
	}
	return len(p), nil
}
func (d discardFile) Sync() error {
	if d.fs.dead() {
		return ErrInjected
	}
	return nil
}
func (d discardFile) Close() error { return nil }
