// Package faultfs is the filesystem seam under the durable stores
// (internal/checkpoint, internal/trajstore). It has two halves:
//
// The production half is the FS interface plus the OS implementation and
// the shared durability helpers — WriteAtomic (tmp file + fsync + rename,
// the commit discipline both stores follow) and the FNV-64a Checksum both
// stores stamp into their manifests and frames.
//
// The testing half is Injected, a wrapping FS that misbehaves on a script:
// it can drop a write (report success, persist nothing), tear a write
// mid-buffer, fail an fsync, or error a rename at an exact call count, and
// it can simulate a process kill — every operation from the N-th onward
// fails — so crash consistency is property-tested across every injection
// point rather than assumed.
package faultfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
)

// File is a writable file handle: the subset of *os.File the durable
// stores append and commit through.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// ReadAtCloser is a random-access read handle over one file.
type ReadAtCloser interface {
	io.ReaderAt
	io.Closer
}

// FS is the filesystem surface the durable stores write through. Paths are
// ordinary OS paths; implementations do not virtualise a namespace, they
// interpose on the operations (which is what fault injection needs).
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// Truncate shortens name to size bytes (crash recovery cuts a torn
	// frame's bytes off a segment tail).
	Truncate(name string, size int64) error
	ReadFile(name string) ([]byte, error)
	ReadDir(dir string) ([]fs.DirEntry, error)
	OpenRead(name string) (ReadAtCloser, error)
	Stat(name string) (fs.FileInfo, error)
}

// OS is the passthrough FS backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}
func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error)  { return os.ReadDir(dir) }
func (osFS) OpenRead(name string) (ReadAtCloser, error) { return os.Open(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

// Checksum digests b with FNV-64a — the frame and manifest checksum shared
// by the durable stores.
func Checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ChecksumHex is Checksum rendered as the 16-digit hex form the JSON
// manifests record.
func ChecksumHex(b []byte) string {
	return fmt.Sprintf("%016x", Checksum(b))
}

// WriteAtomic commits data to path via the tmp+fsync+rename discipline:
// readers either see the old file or the complete new one, never a
// partial write. The temp file lives next to path (same directory, so the
// rename cannot cross filesystems) and is removed on any failure.
func WriteAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(tmp)
		return werr
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}
