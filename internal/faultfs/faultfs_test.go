package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAtomicCommitsAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file.json")
	if err := WriteAtomic(OS, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file left behind: %v", entries)
	}
	// Overwrite is atomic too.
	if err := WriteAtomic(OS, path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "world" {
		t.Fatalf("overwrite read back %q", got)
	}
}

func TestWriteAtomicFailedSyncLeavesOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file.json")
	if err := WriteAtomic(OS, path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	inj := NewInjected(OS).Script(Fault{Op: OpSync, At: 1, Mode: Fail})
	if err := WriteAtomic(inj, path, []byte("new")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file left behind after failure: %v", entries)
	}
}

func TestChecksumStableAndHex(t *testing.T) {
	a, b := Checksum([]byte("abc")), Checksum([]byte("abc"))
	if a != b {
		t.Fatal("checksum not deterministic")
	}
	if Checksum([]byte("abd")) == a {
		t.Fatal("checksum ignores content")
	}
	if h := ChecksumHex([]byte("abc")); len(h) != 16 {
		t.Fatalf("hex form %q not 16 digits", h)
	}
}

func TestInjectedScriptedFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	// Fail the 2nd write; drop the 3rd.
	inj := NewInjected(OS).Script(
		Fault{Op: OpWrite, At: 2, Mode: Fail},
		Fault{Op: OpWrite, At: 3, Mode: Drop},
		Fault{Op: OpWrite, At: 4, Mode: Tear},
	)
	f, err := inj.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("write 1 should pass: %v", err)
	}
	if _, err := f.Write([]byte("bbbb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 should fail, got %v", err)
	}
	if n, err := f.Write([]byte("cccc")); err != nil || n != 4 {
		t.Fatalf("dropped write must claim success, got n=%d err=%v", n, err)
	}
	if _, err := f.Write([]byte("dddd")); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write should report failure, got %v", err)
	}
	f.Close()

	got, _ := os.ReadFile(path)
	// write1 full, write2 failed entirely, write3 dropped, write4 torn in half.
	if string(got) != "aaaadd" {
		t.Fatalf("file content %q, want %q", got, "aaaadd")
	}
}

func TestInjectedCrashAtKillsEverything(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjected(OS).CrashAt(3) // mkdir=1, create=2, write=3 crashes
	if err := inj.MkdirAll(filepath.Join(dir, "d")); err != nil {
		t.Fatal(err)
	}
	f, err := inj.Create(filepath.Join(dir, "d", "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xxxx")); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash-point write should fail, got %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed")
	}
	// Everything after the crash fails, reads included.
	if err := inj.Rename("a", "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash rename should fail, got %v", err)
	}
	if _, err := inj.ReadFile(filepath.Join(dir, "d", "f")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash read should fail, got %v", err)
	}
	// The crash-point write tore: half the buffer landed.
	got, _ := os.ReadFile(filepath.Join(dir, "d", "f"))
	if string(got) != "xx" {
		t.Fatalf("torn crash write left %q, want %q", got, "xx")
	}
}

func TestInjectedOpsCountsMutations(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjected(OS)
	path := filepath.Join(dir, "f")
	f, _ := inj.OpenAppend(path)
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	inj.Rename(path, path+"2")
	// append + write + sync + close + rename = 5
	if got := inj.Ops(); got != 5 {
		t.Fatalf("ops = %d, want 5", got)
	}
	if _, err := inj.ReadFile(path + "2"); err != nil {
		t.Fatal(err)
	}
	if got := inj.Ops(); got != 5 {
		t.Fatalf("reads must not count as mutations: ops = %d", got)
	}
}
