package stats

import "math"

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero entries contribute nothing; the vector is not renormalised.
func Entropy(p []float32) float64 {
	var h float64
	for _, x := range p {
		if x > 0 {
			h -= float64(x) * math.Log(float64(x))
		}
	}
	return h
}

// KLDivergence returns D(p || q) in nats with additive smoothing eps on q,
// which keeps the divergence finite when q assigns zero mass where p does
// not — the situation that arises when comparing visit distributions from
// searches that explored different subsets of moves.
func KLDivergence(p, q []float32, eps float64) float64 {
	if len(p) != len(q) {
		panic("stats: KLDivergence length mismatch")
	}
	var d float64
	for i := range p {
		pi := float64(p[i])
		if pi <= 0 {
			continue
		}
		qi := float64(q[i]) + eps
		d += pi * math.Log(pi/qi)
	}
	return d
}

// TotalVariation returns the total-variation distance between two
// probability vectors: half the L1 distance, in [0, 1].
func TotalVariation(p, q []float32) float64 {
	if len(p) != len(q) {
		panic("stats: TotalVariation length mismatch")
	}
	var s float64
	for i := range p {
		s += math.Abs(float64(p[i]) - float64(q[i]))
	}
	return s / 2
}
