package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/parmcts/parmcts/internal/rng"
)

func TestWelfordAgainstDirect(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Errorf("variance = %v, want %v", w.Variance(), variance)
	}
	if w.N() != 1000 {
		t.Errorf("N = %d, want 1000", w.N())
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, x := range []float64{3, -1, 4, 1, 5} {
		w.Add(x)
	}
	if w.Min() != -1 || w.Max() != 5 {
		t.Errorf("min/max = %v/%v, want -1/5", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 || w.StdErr() != 0 {
		t.Error("empty Welford should report zeros")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64, split uint8) bool {
		r := rng.New(seed)
		n := 200
		k := int(split)%n + 1
		var all, left, right Welford
		for i := 0; i < n; i++ {
			x := r.Float64()*100 - 50
			all.Add(x)
			if i < k {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		return math.Abs(left.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(left.Variance()-all.Variance()) < 1e-7 &&
			left.N() == all.N() &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeWithEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(&b)
	if a != before {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(&a)
	if b.N() != 2 || math.Abs(b.Mean()-1.5) > 1e-12 {
		t.Errorf("merge into empty: N=%d mean=%v", b.N(), b.Mean())
	}
}

func TestWelfordAddDuration(t *testing.T) {
	var w Welford
	w.AddDuration(500 * time.Millisecond)
	w.AddDuration(1500 * time.Millisecond)
	if math.Abs(w.Mean()-1.0) > 1e-12 {
		t.Errorf("mean = %v, want 1.0s", w.Mean())
	}
}

func TestQuantiles(t *testing.T) {
	var q Quantiles
	for i := 100; i >= 1; i-- {
		q.Add(float64(i))
	}
	if q.N() != 100 {
		t.Fatalf("N = %d", q.N())
	}
	if got := q.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := q.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := q.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	var empty Quantiles
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(42)
	if h.Total() != 12 {
		t.Errorf("total = %d, want 12", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Errorf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	out := h.Render(20)
	if !strings.Contains(out, "underflow 1") || !strings.Contains(out, "overflow 1") {
		t.Errorf("render missing under/overflow:\n%s", out)
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram shape did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramBoundaryGoesToLastBucket(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.999999999)
	if h.Bucket(3) != 1 {
		t.Error("near-hi value should land in last bucket")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "N", "latency", "method")
	tb.AddRow(16, 1.234567, "shared")
	tb.AddRow(32, 250*time.Microsecond, "local")
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	s := tb.String()
	for _, want := range []string{"Figure X", "N", "latency", "shared", "local", "1.235"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "N,latency,method\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "16,1.235,shared") {
		t.Errorf("csv row wrong: %q", csv)
	}
}
