package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/parmcts/parmcts/internal/rng"
)

func TestEntropyKnownValues(t *testing.T) {
	if got := Entropy([]float32{1, 0, 0}); got != 0 {
		t.Fatalf("deterministic entropy = %v", got)
	}
	if got := Entropy([]float32{0.5, 0.5}); math.Abs(got-math.Log(2)) > 1e-7 {
		t.Fatalf("uniform-2 entropy = %v, want ln 2", got)
	}
}

func TestKLProperties(t *testing.T) {
	p := []float32{0.2, 0.3, 0.5}
	if got := KLDivergence(p, p, 0); math.Abs(got) > 1e-7 {
		t.Fatalf("D(p||p) = %v", got)
	}
	q := []float32{0.5, 0.3, 0.2}
	if KLDivergence(p, q, 1e-9) <= 0 {
		t.Fatal("D(p||q) should be positive for p != q")
	}
	// Smoothing keeps zero-support q finite.
	if d := KLDivergence([]float32{1, 0}, []float32{0, 1}, 1e-6); math.IsInf(d, 1) {
		t.Fatal("smoothed KL is infinite")
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(10) + 2
		p := make([]float32, n)
		q := make([]float32, n)
		var sp, sq float32
		for i := range p {
			p[i] = r.Float32()
			q[i] = r.Float32() + 1e-3
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		return KLDivergence(p, q, 0) >= -1e-7
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalVariation(t *testing.T) {
	if got := TotalVariation([]float32{1, 0}, []float32{0, 1}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("disjoint TV = %v, want 1", got)
	}
	p := []float32{0.25, 0.75}
	if got := TotalVariation(p, p); got != 0 {
		t.Fatalf("TV(p,p) = %v", got)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"KL": func() { KLDivergence([]float32{1}, []float32{0.5, 0.5}, 0) },
		"TV": func() { TotalVariation([]float32{1}, []float32{0.5, 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}
