// Package stats provides the measurement utilities shared by the benchmark
// harnesses: streaming moment accumulators, fixed-bucket latency histograms,
// and plain-text/CSV table rendering for reproducing the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Welford accumulates a stream of observations and reports mean and variance
// in a numerically stable way (Welford's online algorithm). The zero value is
// ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddDuration incorporates a time.Duration observation in seconds.
func (w *Welford) AddDuration(d time.Duration) { w.Add(d.Seconds()) }

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// Merge folds other into w, as if all of other's observations had been
// added to w. This is how per-worker accumulators are combined after a
// parallel run (Chan et al. parallel variance formula).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.mean += delta * float64(other.n) / float64(n)
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Quantiles stores raw samples for exact quantile queries. Use for bounded
// sample counts (e.g. the 1600 per-move iterations of one search).
type Quantiles struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (q *Quantiles) Add(x float64) {
	q.samples = append(q.samples, x)
	q.sorted = false
}

// N returns the number of samples recorded.
func (q *Quantiles) N() int { return len(q.samples) }

// Quantile returns the p-quantile (0 <= p <= 1) by linear interpolation.
func (q *Quantiles) Quantile(p float64) float64 {
	if len(q.samples) == 0 {
		return 0
	}
	if !q.sorted {
		sort.Float64s(q.samples)
		q.sorted = true
	}
	if p <= 0 {
		return q.samples[0]
	}
	if p >= 1 {
		return q.samples[len(q.samples)-1]
	}
	pos := p * float64(len(q.samples)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(q.samples) {
		return q.samples[lo]
	}
	return q.samples[lo]*(1-frac) + q.samples[lo+1]*frac
}

// Histogram is a fixed-bucket histogram over [lo, hi) with linear buckets
// plus under/overflow bins. It is not safe for concurrent use.
type Histogram struct {
	lo, hi   float64
	buckets  []int64
	under    int64
	over     int64
	total    int64
	bucketsN int
}

// NewHistogram creates a histogram with n linear buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n), bucketsN: n}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(h.bucketsN))
		if idx >= h.bucketsN {
			idx = h.bucketsN - 1
		}
		h.buckets[idx]++
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Render writes a human-readable bar chart of the histogram.
func (h *Histogram) Render(width int) string {
	var sb strings.Builder
	var maxCount int64 = 1
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	step := (h.hi - h.lo) / float64(h.bucketsN)
	for i, c := range h.buckets {
		bar := int(float64(c) / float64(maxCount) * float64(width))
		fmt.Fprintf(&sb, "[%10.4g,%10.4g) %8d %s\n",
			h.lo+float64(i)*step, h.lo+float64(i+1)*step, c, strings.Repeat("#", bar))
	}
	if h.under > 0 {
		fmt.Fprintf(&sb, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&sb, "overflow %d\n", h.over)
	}
	return sb.String()
}

// Table accumulates rows for a figure/table and renders them as aligned
// plain text or CSV. All harness binaries print their results through Table
// so EXPERIMENTS.md entries can be regenerated mechanically.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v ("%.4g" for floats).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			// Round for readability, but never to zero: sub-10us values
			// keep nanosecond precision (lock/backup latencies live there).
			if v >= 10*time.Microsecond {
				row[i] = v.Round(time.Microsecond).String()
			} else {
				row[i] = v.String()
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table in RFC-4180-ish CSV (no quoting needed for our data).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ","))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}
