package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxWireFrame bounds one message on the TCP transport. Checkpoints are the
// largest payload (manifest + full weight vector); 256 MiB leaves headroom
// for any network this repo can train while still rejecting a desynced or
// hostile length prefix before it allocates.
const maxWireFrame = 256 << 20

// tcpConn frames Msgs over a net.Conn as [1B type][4B LE length][payload].
// Reads are buffered; writes are serialized by a mutex so the learner's
// checkpoint broadcast and its per-connection replies never interleave
// bytes on the wire.
type tcpConn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, br: bufio.NewReaderSize(c, 1<<16)}
}

func (t *tcpConn) Send(m Msg) error {
	if len(m.Payload) > maxWireFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, len(m.Payload))
	}
	var hdr [5]byte
	hdr[0] = m.Type
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(m.Payload)))
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if _, err := t.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.c.Write(m.Payload)
	return err
}

func (t *tcpConn) Recv() (Msg, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
		return Msg{}, err
	}
	plen := binary.LittleEndian.Uint32(hdr[1:])
	if plen > maxWireFrame {
		return Msg{}, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrProtocol, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(t.br, payload); err != nil {
		return Msg{}, err
	}
	return Msg{Type: hdr[0], Payload: payload}, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

// tcpListener adapts a net.Listener to the transport seam.
type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }
func (t *tcpListener) Close() error { return t.l.Close() }

// ListenTCP binds the learner's TCP endpoint. addr follows net.Listen
// ("host:port"; ":0" picks a free port, reported by Addr).
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// TCPDialer returns a Dialer that opens a fresh TCP connection to addr on
// every call — the worker's reconnect loop invokes it per attempt.
func TCPDialer(addr string) Dialer {
	return func() (Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return newTCPConn(c), nil
	}
}
