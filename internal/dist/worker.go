package dist

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parmcts/parmcts/internal/checkpoint"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/selfplay"
	"github.com/parmcts/parmcts/internal/train"
	"github.com/parmcts/parmcts/internal/trajstore"
)

// WorkerConfig assembles one self-play worker: a G-game fleet over a
// local shared inference service, streaming finished episodes to the
// learner and swapping in promoted checkpoints at round barriers.
type WorkerConfig struct {
	// ID names the worker in hellos and learner logs.
	ID string
	// Game is the workload; GameSpec is its name, validated by the learner.
	Game     game.Game
	GameSpec string
	// Dial opens a connection to the learner; the reconnect loop calls it
	// on every attempt (TCPDialer or Network.Dialer).
	Dial Dialer
	// Games is the fleet size G (concurrent self-play games).
	Games int
	// Playouts is the per-move search budget.
	Playouts int
	// Workers is the inference service's thread count and each engine's
	// in-flight bound (cmd/train's -workers).
	Workers int
	// TempMoves is the exploration temperature horizon per game.
	TempMoves int
	// Rounds bounds the run (0 = until Stop).
	Rounds int
	// Seed drives the fleet's move sampling.
	Seed uint64
	// BufferEpisodes bounds the unsent-episode outbox while disconnected
	// (default 256). When full the OLDEST episode is dropped — fresher data
	// is worth more to the learner, and the drop is counted.
	BufferEpisodes int
	// ReconnectMin/ReconnectMax bound the exponential redial backoff
	// (defaults 50ms / 2s).
	ReconnectMin, ReconnectMax time.Duration
	// NewEvaluator builds the leaf evaluator for a received network
	// (nil = evaluate.NewNN). Benchmarks inject latency-modeled evaluators
	// here to measure the distributed split under device-like latency.
	NewEvaluator func(net *nn.Network) evaluate.Evaluator
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// WorkerStats counts a worker run.
type WorkerStats struct {
	// Rounds and Episodes count generation work; Playouts is the summed
	// playout count across all episodes (the scaling metric).
	Rounds, Episodes int
	Playouts         int64
	// Sent counts episodes delivered to the learner; Dropped counts
	// episodes evicted from a full outbox while disconnected.
	Sent, Dropped int
	// Reconnects counts successful (re)connections after the first.
	Reconnects int
	// Swaps counts checkpoint swaps applied at round barriers.
	Swaps int
	// Version is the model version serving when the run ended.
	Version int64
}

// pendingCkpt is the newest checkpoint received and not yet applied;
// latest wins (a worker that missed a promotion while searching applies
// only the final one at the next barrier).
type pendingCkpt struct {
	man checkpoint.Manifest
	net *nn.Network
}

// Worker runs the generation half of the distributed split. It has no
// SGD, no replay ring and no gate: it plays rounds, ships episodes, and
// serves whatever model the learner last promoted — applying swaps only
// at round barriers so every game finishes on the version it started with
// (the same guarantee the single-process fleet gets from per-game
// pinning).
type Worker struct {
	cfg WorkerConfig

	stop     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	conn    Conn // live connection, nil while disconnected
	pending *pendingCkpt
	ready   chan struct{} // closed once the first checkpoint arrives
	outbox  []Msg

	reconnects atomic.Int64
	dropped    atomic.Int64
	sent       atomic.Int64
}

// NewWorker validates the config.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Game == nil || cfg.Dial == nil {
		return nil, errors.New("dist: worker needs a game and a dialer")
	}
	if cfg.Games < 1 {
		cfg.Games = 4
	}
	if cfg.Playouts < 1 {
		cfg.Playouts = 50
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.BufferEpisodes < 1 {
		cfg.BufferEpisodes = 256
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 50 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 2 * time.Second
	}
	if cfg.NewEvaluator == nil {
		cfg.NewEvaluator = func(net *nn.Network) evaluate.Evaluator { return evaluate.NewNN(net) }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	return &Worker{
		cfg:   cfg,
		stop:  make(chan struct{}),
		ready: make(chan struct{}),
	}, nil
}

// Stop ends the run after the in-flight round's barrier. Idempotent.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
		w.mu.Lock()
		if w.conn != nil {
			w.conn.Close()
		}
		w.mu.Unlock()
	})
}

// Run drives the worker until Rounds rounds have been played or Stop is
// called. It blocks waiting for the first checkpoint (a worker cannot play
// without a model), then keeps playing through disconnections, buffering
// episodes and redialing with backoff in the background.
func (w *Worker) Run() WorkerStats {
	go w.connectLoop()

	// No model, no fleet: wait for the learner's first checkpoint.
	select {
	case <-w.ready:
	case <-w.stop:
		return WorkerStats{}
	}
	w.mu.Lock()
	first := w.pending
	w.pending = nil
	w.mu.Unlock()

	// Build the fleet around the received model: one shared inference
	// service, one engine per game, per-game version pinning — the same
	// topology as cmd/train minus replay and SGD.
	version := first.man.Version
	mkBackend := func(net *nn.Network) evaluate.Backend {
		return &evaluate.EvaluatorBackend{Eval: w.cfg.NewEvaluator(net), Workers: w.cfg.Workers}
	}
	srv := evaluate.NewServer(mkBackend(first.net), evaluate.ServerConfig{
		Batch:          1,
		FlushDeadline:  evaluate.DefaultFlushDeadline,
		MaxOutstanding: w.cfg.Games * w.cfg.Workers * 2,
		LaunchWorkers:  w.cfg.Workers,
		InitialVersion: version,
	})
	defer srv.Close()

	clients := make([]*evaluate.Client, w.cfg.Games)
	engines := make([]mcts.Engine, w.cfg.Games)
	for i := range engines {
		clients[i] = srv.NewClient(w.cfg.Workers * 2)
		mc := mcts.DefaultConfig()
		mc.Playouts = w.cfg.Playouts
		mc.DirichletAlpha = 0.3
		mc.NoiseFrac = 0.25
		mc.Seed = w.cfg.Seed + uint64(i)*7919
		engines[i] = mcts.NewLocal(mc, clients[i], w.cfg.Workers)
	}
	defer func() {
		for i := range engines {
			engines[i].Close()
			clients[i].Close()
		}
	}()

	var stats WorkerStats
	driver := selfplay.NewDriver(w.cfg.Game, engines, nil, nil, selfplay.Config{
		TempMoves:   w.cfg.TempMoves,
		Seed:        w.cfg.Seed,
		OnGameStart: func(tenant int) { clients[tenant].Pin(srv.Version()) },
		OnGameEnd:   func(tenant int) { clients[tenant].Unpin() },
		// Stream every finished game: encode it as a wire frame at the
		// round's ingest barrier (driver goroutine, deterministic order)
		// into the bounded outbox; the flush below ships it.
		OnEpisode: func(tenant int, ep *train.EpisodeResult) {
			stats.Episodes++
			stats.Playouts += int64(ep.Search.Playouts)
			w.enqueue(encodeEpisode(version, trajstore.Episode{
				Moves:   ep.Moves,
				Winner:  ep.Winner,
				Samples: ep.Samples,
			}))
		},
	})

	w.cfg.Logf("worker %s: fleet of %d games up on v%d", w.cfg.ID, w.cfg.Games, version)
	for round := 0; w.cfg.Rounds == 0 || round < w.cfg.Rounds; round++ {
		select {
		case <-w.stop:
			stats.Version = version
			w.fillStats(&stats)
			return stats
		default:
		}

		// Round barrier: apply the newest pending checkpoint. Nothing is in
		// flight between rounds, so the old backend retires immediately —
		// the in-round guarantee stays with per-game pinning.
		w.mu.Lock()
		p := w.pending
		w.pending = nil
		w.mu.Unlock()
		if p != nil && p.man.Version > version {
			old := version
			version = p.man.Version
			srv.SwapBackend(mkBackend(p.net), version)
			srv.Retire(old)
			stats.Swaps++
			w.cfg.Logf("worker %s: swapped v%d -> v%d at round %d", w.cfg.ID, old, version, round)
		}

		driver.PlayRound()
		stats.Rounds++
		w.flush()
	}
	stats.Version = version
	w.fillStats(&stats)
	return stats
}

func (w *Worker) fillStats(s *WorkerStats) {
	s.Sent = int(w.sent.Load())
	s.Dropped = int(w.dropped.Load())
	s.Reconnects = int(w.reconnects.Load())
}

// enqueue buffers one encoded episode, evicting the oldest when full.
func (w *Worker) enqueue(m Msg) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.outbox) >= w.cfg.BufferEpisodes {
		w.outbox = w.outbox[1:]
		w.dropped.Add(1)
	}
	w.outbox = append(w.outbox, m)
}

// flush ships buffered episodes over the live connection, oldest first. A
// send error stops the flush and leaves the remainder buffered for the
// next barrier (by which time the connect loop has usually redialed).
func (w *Worker) flush() {
	for {
		w.mu.Lock()
		if len(w.outbox) == 0 || w.conn == nil {
			w.mu.Unlock()
			return
		}
		c := w.conn
		m := w.outbox[0]
		w.mu.Unlock()

		if err := c.Send(m); err != nil {
			w.dropConn(c)
			return
		}
		w.sent.Add(1)
		w.mu.Lock()
		if len(w.outbox) > 0 {
			w.outbox = w.outbox[1:]
		}
		w.mu.Unlock()
	}
}

// dropConn clears (and closes) a failed connection; the connect loop's
// reader notices and redials.
func (w *Worker) dropConn(c Conn) {
	c.Close()
	w.mu.Lock()
	if w.conn == c {
		w.conn = nil
	}
	w.mu.Unlock()
}

// connectLoop maintains the learner link for the life of the worker: dial
// with exponential backoff, hello, then read checkpoints until the
// connection dies, and start over. It never touches the fleet directly —
// received checkpoints land in the pending slot for the round barrier.
func (w *Worker) connectLoop() {
	backoff := w.cfg.ReconnectMin
	connected := false
	for {
		select {
		case <-w.stop:
			return
		default:
		}

		c, err := w.cfg.Dial()
		if err != nil {
			select {
			case <-time.After(backoff):
			case <-w.stop:
				return
			}
			backoff *= 2
			if backoff > w.cfg.ReconnectMax {
				backoff = w.cfg.ReconnectMax
			}
			continue
		}
		backoff = w.cfg.ReconnectMin

		w.mu.Lock()
		var have int64
		if w.pending != nil {
			have = w.pending.man.Version
		}
		w.mu.Unlock()
		hello, herr := encodeHello(Hello{
			WorkerID:    w.cfg.ID,
			GameSpec:    w.cfg.GameSpec,
			Games:       w.cfg.Games,
			HaveVersion: have,
		})
		if herr != nil || c.Send(hello) != nil {
			c.Close()
			continue
		}

		w.mu.Lock()
		w.conn = c
		w.mu.Unlock()
		if connected {
			w.reconnects.Add(1)
			w.cfg.Logf("worker %s: reconnected to learner", w.cfg.ID)
		}
		connected = true

		w.readLoop(c)
		w.dropConn(c)

		select {
		case <-w.stop:
			return
		default:
		}
	}
}

// readLoop consumes learner messages on one connection until it errors.
// Checkpoints are fully decoded AND checksum-verified here, off the search
// path; only a validated network reaches the pending slot.
func (w *Worker) readLoop(c Conn) {
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		if m.Type != msgCheckpoint {
			w.cfg.Logf("worker %s: ignoring unexpected message type %d", w.cfg.ID, m.Type)
			continue
		}
		man, net, err := decodeCheckpoint(m)
		if err != nil {
			// A corrupt checkpoint must never serve; drop it and keep the
			// current model. The learner re-sends on the next promotion or
			// reconnect.
			w.cfg.Logf("worker %s: rejecting checkpoint: %v", w.cfg.ID, err)
			continue
		}
		w.mu.Lock()
		if w.pending == nil || man.Version > w.pending.man.Version {
			w.pending = &pendingCkpt{man: man, net: net}
		}
		w.mu.Unlock()
		select {
		case <-w.ready:
		default:
			close(w.ready)
		}
	}
}
