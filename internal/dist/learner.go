package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parmcts/parmcts/internal/arena"
	"github.com/parmcts/parmcts/internal/checkpoint"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/train"
	"github.com/parmcts/parmcts/internal/trajstore"
)

// LearnerConfig assembles the learner process: the single owner of SGD,
// checkpoint commits and arena-gated promotion in a distributed run.
type LearnerConfig struct {
	// Game is the hosted workload; gate matches are played on it.
	Game game.Game
	// GameSpec names the workload (e.g. "gomoku:9"). Worker hellos carrying
	// a different spec are rejected, and checkpoint manifests record it.
	GameSpec string
	// Store is the checkpoint store. A non-empty store resumes the learner:
	// LoadLatest seeds the incumbent and version numbering continues. An
	// empty store is seeded from NewNet (committed as version 1).
	Store *checkpoint.Store
	// NewNet builds the seed network when Store is empty.
	NewNet func() *nn.Network
	// Replay is the in-memory SGD ring.
	Replay *train.Replay
	// Traj, when non-nil, is the durable replay store: every accepted
	// episode is committed there before its samples enter the ring, and a
	// restarted learner re-ingests the newest stored games. Storage errors
	// degrade it to read-only without stopping training.
	Traj *trajstore.Store
	// Augment expands accepted samples on ingest (nil = none). Workers ship
	// raw episodes; augmentation is learner-side, like the trajstore's
	// canonical-data design.
	Augment train.Augmenter
	// RoundGames is how many worker episodes make one generation round.
	RoundGames int
	// RoundTimeout bounds how long a round waits to fill AFTER its first
	// episode arrived (default 10s): a worker dying mid-round costs at most
	// one timeout, then the partial round trains. The wait for the FIRST
	// episode is unbounded (a learner with no workers idles, it does not
	// spin through empty rounds).
	RoundTimeout time.Duration
	// Loop carries the SGD/gating knobs (Rounds, GateEvery, SGDIterations,
	// BatchSize, LR, MinSamples, Seed...). StartVersion and Stop are owned
	// by the learner and overwritten.
	Loop train.LoopConfig
	// Gate configures the learner-local promotion gate (serial engines at
	// equal budgets — arena.GateCandidate).
	Gate arena.GateConfig
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// LearnerStats counts wire-level traffic (all atomics; read via Stats).
type LearnerStats struct {
	// WorkersSeen counts accepted hellos; WorkersLive is the current count.
	WorkersSeen, WorkersLive int64
	// HellosRejected counts mismatched-game or malformed hellos.
	HellosRejected int64
	// Episodes counts accepted (checksum-verified) episodes; Rejected
	// counts frames that failed re-validation or decoding.
	Episodes, Rejected int64
	// Broadcasts counts checkpoint fan-outs (per promotion, not per worker).
	Broadcasts int64
}

type learnerStats struct {
	workersSeen, workersLive, hellosRejected atomic.Int64
	episodes, rejected, broadcasts           atomic.Int64
}

// episodeIn is one verified episode crossing from a connection handler to
// the round assembler.
type episodeIn struct {
	version int64
	ep      trajstore.Episode
}

// currentCkpt is the snapshot the learner fans out: the committed manifest
// plus the exact weight bytes its checksum covers.
type currentCkpt struct {
	man checkpoint.Manifest
	raw []byte
}

// Learner is the training-owning end of the distributed split. It
// implements train.Generator (rounds assembled from worker episode
// streams), train.Gate (local arena match) and train.Promoter (checkpoint
// commit + fan-out), so train.Loop runs unmodified on top of it.
type Learner struct {
	cfg LearnerConfig
	lis Listener

	net          *nn.Network
	startVersion int64
	baseStep     int64
	baseRounds   int
	baseSamples  int

	episodes chan episodeIn
	stop     chan struct{}
	stopOnce sync.Once

	mu    sync.Mutex
	conns map[Conn]struct{}
	cur   currentCkpt

	stats learnerStats
}

// NewLearner resumes (or seeds) the model state and binds the listener.
// Like cmd/train, resumption is two-part: the MODEL comes from the
// checkpoint store's latest committed version, the DATA from re-ingesting
// the durable replay store's newest games into the ring.
func NewLearner(lis Listener, cfg LearnerConfig) (*Learner, error) {
	if lis == nil || cfg.Game == nil || cfg.Store == nil || cfg.Replay == nil {
		return nil, errors.New("dist: learner needs a listener, game, checkpoint store and replay buffer")
	}
	if cfg.RoundGames < 1 {
		cfg.RoundGames = 8
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	l := &Learner{
		cfg:      cfg,
		lis:      lis,
		episodes: make(chan episodeIn, 4*cfg.RoundGames),
		stop:     make(chan struct{}),
		conns:    make(map[Conn]struct{}),
	}

	// Model half of the resume.
	var man checkpoint.Manifest
	switch net, m, err := cfg.Store.LoadLatest(); {
	case err == nil:
		l.net, man = net, m
		l.baseStep, l.baseRounds, l.baseSamples = m.Step, m.Rounds, m.Samples
		cfg.Logf("learner: resuming from checkpoint version %d (step %d)", m.Version, m.Step)
	case errors.Is(err, checkpoint.ErrEmpty):
		if cfg.NewNet == nil {
			return nil, errors.New("dist: empty checkpoint store and no NewNet seed factory")
		}
		seeded, serr := cfg.Store.Save(cfg.NewNet(), checkpoint.Manifest{
			Version: 1, Game: cfg.GameSpec, Note: "seed network",
		})
		if serr != nil {
			return nil, serr
		}
		net2, m2, lerr := cfg.Store.LoadVersion(seeded.Version)
		if lerr != nil {
			return nil, lerr
		}
		l.net, man = net2, m2
	default:
		return nil, err
	}
	l.startVersion = man.Version
	if err := l.setCurrent(man, l.net); err != nil {
		return nil, err
	}

	// Data half of the resume: newest stored games, oldest-first among the
	// kept window so ring eviction preserves recency.
	if cfg.Traj != nil && cfg.Traj.Games() > 0 {
		start, raw := cfg.Traj.Games(), 0
		for start > 0 && raw < cfg.Replay.Cap() {
			ep, err := cfg.Traj.Get(start - 1)
			if err != nil {
				break
			}
			raw += len(ep.Samples)
			start--
		}
		restored := 0
		for i := start; i < cfg.Traj.Games(); i++ {
			ep, err := cfg.Traj.Get(i)
			if err != nil {
				cfg.Logf("learner: replay restore: %v", err)
				break
			}
			l.ingest(ep.Samples)
			restored++
		}
		cfg.Logf("learner: replay restored %d games (ring fill %d)", restored, cfg.Replay.Len())
	}
	return l, nil
}

// setCurrent records the fan-out snapshot, verifying that re-encoding the
// network reproduces the manifest's checksum (it must — the encoding is
// deterministic — and a mismatch means the wrong network was paired with
// the manifest).
func (l *Learner) setCurrent(man checkpoint.Manifest, net *nn.Network) error {
	raw, sum, err := checkpoint.EncodeNetwork(net)
	if err != nil {
		return err
	}
	if sum != man.Checksum {
		return fmt.Errorf("dist: version %d re-encode checksum %s does not match manifest %s", man.Version, sum, man.Checksum)
	}
	l.mu.Lock()
	l.cur = currentCkpt{man: man, raw: raw}
	l.mu.Unlock()
	return nil
}

// Stats snapshots the wire counters.
func (l *Learner) Stats() LearnerStats {
	return LearnerStats{
		WorkersSeen:    l.stats.workersSeen.Load(),
		WorkersLive:    l.stats.workersLive.Load(),
		HellosRejected: l.stats.hellosRejected.Load(),
		Episodes:       l.stats.episodes.Load(),
		Rejected:       l.stats.rejected.Load(),
		Broadcasts:     l.stats.broadcasts.Load(),
	}
}

// Version returns the version the learner currently fans out.
func (l *Learner) Version() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur.man.Version
}

// Stop ends the run: the loop drains (train.LoopConfig.Stop), the listener
// stops accepting, and every worker connection is closed. Idempotent.
func (l *Learner) Stop() {
	l.stopOnce.Do(func() {
		close(l.stop)
		l.lis.Close()
		l.mu.Lock()
		for c := range l.conns {
			c.Close()
		}
		l.mu.Unlock()
	})
}

// Run serves workers and drives the training loop to completion (either
// cfg.Loop.Rounds rounds or Stop). The returned report is train.Loop's.
func (l *Learner) Run(onRound func(train.LoopRoundStats)) train.LoopReport {
	go l.acceptLoop()

	incumbent := l.net.Clone()
	loopCfg := l.cfg.Loop
	loopCfg.StartVersion = l.startVersion
	loopCfg.Stop = l.stop
	loop := train.NewLoop(l.net, incumbent, l.cfg.Replay, l, localGate{l}, l, loopCfg)
	report := loop.Run(onRound)
	l.Stop()
	return report
}

// acceptLoop hands each worker connection to its own handler. Accept
// errors (listener closed) end the loop.
func (l *Learner) acceptLoop() {
	for {
		c, err := l.lis.Accept()
		if err != nil {
			return
		}
		go l.handle(c)
	}
}

// handle owns one worker connection: validate the hello, send the current
// checkpoint, then stream episodes until the connection dies. Every frame
// is re-validated (checksum) before it can reach the replay path; a
// protocol error closes the connection and lets the worker redial.
func (l *Learner) handle(c Conn) {
	defer c.Close()

	first, err := c.Recv()
	if err != nil {
		return
	}
	hello, err := decodeHello(first)
	if err != nil {
		l.stats.hellosRejected.Add(1)
		l.cfg.Logf("learner: rejecting connection: %v", err)
		return
	}
	if l.cfg.GameSpec != "" && hello.GameSpec != "" && hello.GameSpec != l.cfg.GameSpec {
		l.stats.hellosRejected.Add(1)
		l.cfg.Logf("learner: rejecting worker %s: game %q, serving %q", hello.WorkerID, hello.GameSpec, l.cfg.GameSpec)
		return
	}

	// Always answer with the current checkpoint: a worker that already has
	// it ignores the swap, a fresh or stale one catches up immediately.
	l.mu.Lock()
	cur := l.cur
	l.conns[c] = struct{}{}
	l.mu.Unlock()
	l.stats.workersSeen.Add(1)
	l.stats.workersLive.Add(1)
	defer func() {
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
		l.stats.workersLive.Add(-1)
	}()
	msg, err := encodeCheckpoint(cur.man, cur.raw)
	if err != nil {
		return
	}
	if err := c.Send(msg); err != nil {
		return
	}
	l.cfg.Logf("learner: worker %s connected (fleet %d, has v%d, serving v%d)",
		hello.WorkerID, hello.Games, hello.HaveVersion, cur.man.Version)

	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch m.Type {
		case msgEpisode:
			version, ep, derr := decodeEpisode(m)
			if derr != nil {
				// A corrupted frame is dropped, not fatal: the transport kept
				// framing, so later episodes are still intact.
				l.stats.rejected.Add(1)
				l.cfg.Logf("learner: dropping episode from %s: %v", hello.WorkerID, derr)
				continue
			}
			select {
			case l.episodes <- episodeIn{version: version, ep: ep}:
				l.stats.episodes.Add(1)
			case <-l.stop:
				return
			}
		default:
			l.stats.rejected.Add(1)
			l.cfg.Logf("learner: worker %s sent unexpected message type %d, closing", hello.WorkerID, m.Type)
			return
		}
	}
}

// Generate implements train.Generator: one generation round is the next
// RoundGames worker episodes. The wait for the first episode is unbounded
// (watching Stop); after it, RoundTimeout caps the fill so a dead worker
// delays the loop by at most one timeout before the partial round trains.
func (l *Learner) Generate() train.GenRound {
	var round train.GenRound
	start := time.Now()

	var timeout <-chan time.Time
	for round.Games < l.cfg.RoundGames {
		select {
		case in := <-l.episodes:
			l.accept(in, &round)
			if timeout == nil {
				t := time.NewTimer(l.cfg.RoundTimeout)
				defer t.Stop()
				timeout = t.C
			}
		case <-timeout:
			round.Elapsed = time.Since(start)
			return round
		case <-l.stop:
			round.Elapsed = time.Since(start)
			return round
		}
	}
	round.Elapsed = time.Since(start)
	return round
}

// accept commits one episode durably (if a trajstore is attached) and
// ingests its samples into the ring, mirroring cmd/train's OnEpisode +
// barrier ingest.
func (l *Learner) accept(in episodeIn, round *train.GenRound) {
	if l.cfg.Traj != nil && !l.cfg.Traj.ReadOnly() {
		if err := l.cfg.Traj.Append(in.ep); err != nil {
			l.cfg.Logf("learner: replay store degraded to read-only, continuing on the in-memory ring: %v", err)
		}
	}
	l.ingest(in.ep.Samples)
	round.Games++
	round.Moves += in.ep.Moves
	round.Samples += len(in.ep.Samples)
}

// ingest feeds raw samples through the augmentation path into the ring.
func (l *Learner) ingest(samples []nn.Sample) {
	for _, s := range samples {
		if l.cfg.Augment != nil {
			for _, aug := range l.cfg.Augment.Augment(s) {
				l.cfg.Replay.Add(aug)
			}
		} else {
			l.cfg.Replay.Add(s)
		}
	}
}

// localGate adapts arena.GateCandidate to train.Gate: the learner holds
// both networks in-process, so gate matches run on learner-local serial
// engines at equal budgets — no worker involvement, generation continues
// remotely while the gate plays.
type localGate struct{ l *Learner }

func (g localGate) Gate(candidate *nn.Network, candidateVersion int64, incumbent *nn.Network, incumbentVersion int64) train.GateResult {
	promote, res := arena.GateCandidate(g.l.cfg.Game, candidate, incumbent, g.l.cfg.Gate)
	return train.GateResult{
		Promote:       promote,
		Score:         res.Score(),
		Games:         res.Games,
		WinsCandidate: res.WinsA,
		WinsIncumbent: res.WinsB,
		Draws:         res.Draws,
		Elapsed:       res.Duration,
	}
}

// Promote implements train.Promoter: checkpoint the accepted candidate
// (durability first — the commit is the promotion), then fan the snapshot
// out to every connected worker. A send error only costs that worker the
// push; it receives the same checkpoint on its next reconnect hello.
func (l *Learner) Promote(candidate *nn.Network, p train.Promotion) error {
	man, err := l.cfg.Store.Save(candidate, checkpoint.Manifest{
		Version:   p.Version,
		Step:      l.baseStep + p.Step,
		Rounds:    l.baseRounds + p.Round + 1,
		Samples:   l.baseSamples + p.Samples,
		GateScore: p.Gate.Score,
		Game:      l.cfg.GameSpec,
		Note:      "promoted by arena gate (distributed learner)",
	})
	if err != nil {
		return err
	}
	if err := l.setCurrent(man, candidate); err != nil {
		return err
	}
	l.broadcast()
	l.cfg.Logf("learner: promoted v%d (score %.2f), fanned out to %d workers", man.Version, p.Gate.Score, l.stats.workersLive.Load())
	return nil
}

// Retire implements train.Promoter. Model versions live in worker-local
// inference services; each worker retires its own superseded backend at
// the round barrier where it applies the swap, so the learner has nothing
// to do here.
func (l *Learner) Retire(int64) {}

// broadcast pushes the current checkpoint to every live connection.
func (l *Learner) broadcast() {
	l.mu.Lock()
	cur := l.cur
	conns := make([]Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	msg, err := encodeCheckpoint(cur.man, cur.raw)
	if err != nil {
		return
	}
	for _, c := range conns {
		// Best effort: a dead connection's handler is already unwinding,
		// and the worker re-hellos into the current version anyway.
		_ = c.Send(msg)
	}
	l.stats.broadcasts.Add(1)
}
