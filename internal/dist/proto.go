package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/parmcts/parmcts/internal/checkpoint"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/trajstore"
)

// ErrProtocol reports a structurally invalid message (bad framing, foreign
// type, undecodable payload). Checksum failures inside payloads surface as
// trajstore.ErrCorrupt or checkpoint verification errors instead, so the
// caller can tell transport damage from protocol confusion.
var ErrProtocol = errors.New("dist: protocol error")

// Hello is the worker's self-introduction, sent first on every
// (re)connection.
type Hello struct {
	// WorkerID names the worker for logs and stats (host:pid style).
	WorkerID string `json:"worker_id"`
	// GameSpec must match the learner's hosted game; a mismatched worker
	// is rejected at hello time rather than poisoning the replay buffer.
	GameSpec string `json:"game_spec"`
	// Games is the worker's concurrent-fleet size (reporting only).
	Games int `json:"games"`
	// HaveVersion is the checkpoint version the worker already serves
	// (0 = none). The learner always answers with its current checkpoint;
	// the worker skips the swap when the version is not newer.
	HaveVersion int64 `json:"have_version"`
}

// encodeHello renders a hello message.
func encodeHello(h Hello) (Msg, error) {
	raw, err := json.Marshal(&h)
	if err != nil {
		return Msg{}, fmt.Errorf("%w: marshal hello: %v", ErrProtocol, err)
	}
	return Msg{Type: msgHello, Payload: raw}, nil
}

// decodeHello parses a hello message.
func decodeHello(m Msg) (Hello, error) {
	if m.Type != msgHello {
		return Hello{}, fmt.Errorf("%w: expected hello, got type %d", ErrProtocol, m.Type)
	}
	var h Hello
	if err := json.Unmarshal(m.Payload, &h); err != nil {
		return Hello{}, fmt.Errorf("%w: unmarshal hello: %v", ErrProtocol, err)
	}
	return h, nil
}

// encodeEpisode renders one finished game for the wire: the generating
// model version followed by the episode as a trajstore frame — the exact
// checksummed bytes a durable segment would hold.
func encodeEpisode(version int64, ep trajstore.Episode) Msg {
	frame := trajstore.EncodeFrame(ep)
	payload := make([]byte, 0, 8+len(frame))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(version))
	payload = append(payload, frame...)
	return Msg{Type: msgEpisode, Payload: payload}
}

// decodeEpisode parses and re-validates one episode message. The frame
// checksum is verified end to end (trajstore.DecodeFrame), so an episode
// that decodes here is the episode the worker encoded.
func decodeEpisode(m Msg) (int64, trajstore.Episode, error) {
	if m.Type != msgEpisode {
		return 0, trajstore.Episode{}, fmt.Errorf("%w: expected episode, got type %d", ErrProtocol, m.Type)
	}
	if len(m.Payload) < 8 {
		return 0, trajstore.Episode{}, fmt.Errorf("%w: truncated episode header", ErrProtocol)
	}
	version := int64(binary.LittleEndian.Uint64(m.Payload))
	ep, err := trajstore.DecodeFrame(m.Payload[8:])
	if err != nil {
		return 0, trajstore.Episode{}, err
	}
	return version, ep, nil
}

// encodeCheckpoint renders one model snapshot for fan-out: the manifest
// (carrying the weights checksum) followed by the raw weight bytes.
func encodeCheckpoint(m checkpoint.Manifest, weights []byte) (Msg, error) {
	mj, err := json.Marshal(&m)
	if err != nil {
		return Msg{}, fmt.Errorf("%w: marshal manifest: %v", ErrProtocol, err)
	}
	payload := make([]byte, 0, 4+len(mj)+len(weights))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(mj)))
	payload = append(payload, mj...)
	payload = append(payload, weights...)
	return Msg{Type: msgCheckpoint, Payload: payload}, nil
}

// decodeCheckpoint parses one checkpoint message, verifies the weight
// bytes against the manifest checksum, and deserialises the network —
// exactly the validation LoadVersion performs on a disk checkpoint, so a
// bit-flipped transfer can never reach a worker's engines.
func decodeCheckpoint(m Msg) (checkpoint.Manifest, *nn.Network, error) {
	if m.Type != msgCheckpoint {
		return checkpoint.Manifest{}, nil, fmt.Errorf("%w: expected checkpoint, got type %d", ErrProtocol, m.Type)
	}
	if len(m.Payload) < 4 {
		return checkpoint.Manifest{}, nil, fmt.Errorf("%w: truncated checkpoint header", ErrProtocol)
	}
	mlen := int(binary.LittleEndian.Uint32(m.Payload))
	if mlen < 2 || 4+mlen > len(m.Payload) {
		return checkpoint.Manifest{}, nil, fmt.Errorf("%w: checkpoint manifest length %d out of bounds", ErrProtocol, mlen)
	}
	var man checkpoint.Manifest
	if err := json.Unmarshal(m.Payload[4:4+mlen], &man); err != nil {
		return checkpoint.Manifest{}, nil, fmt.Errorf("%w: unmarshal manifest: %v", ErrProtocol, err)
	}
	net, err := checkpoint.VerifyAndLoad(man, m.Payload[4+mlen:])
	if err != nil {
		return checkpoint.Manifest{}, nil, err
	}
	return man, net, nil
}
