package dist

import (
	"errors"
	"sync"
)

// ErrClosed reports an operation on a closed in-memory connection or
// listener — the in-memory analogue of a reset TCP connection.
var ErrClosed = errors.New("dist: connection closed")

// Network is a deterministic in-memory transport fabric for tests: the
// learner listens on it, workers dial it, and every message moves through
// unbounded per-direction queues with no real sockets involved. Listen may
// be called again after the active listener closes — that is how a
// learner-restart test rebinds the "address" while workers keep redialing
// the same fabric.
type Network struct {
	mu       sync.Mutex
	listener *memListener
}

// NewNetwork creates an empty fabric.
func NewNetwork() *Network { return &Network{} }

// Listen binds the fabric's single learner endpoint. It fails while a
// previous listener is still open.
func (n *Network) Listen() (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener != nil && !n.listener.closed() {
		return nil, errors.New("dist: fabric already has a listener")
	}
	l := &memListener{accept: make(chan *memConn), done: make(chan struct{})}
	n.listener = l
	return l, nil
}

// Dialer returns a Dialer connecting to whatever listener is currently
// bound. Dialing while no listener is open fails like a refused connection,
// which is exactly what a worker's backoff loop expects during a learner
// restart.
func (n *Network) Dialer() Dialer {
	return func() (Conn, error) {
		n.mu.Lock()
		l := n.listener
		n.mu.Unlock()
		if l == nil || l.closed() {
			return nil, errors.New("dist: connection refused (no listener)")
		}
		return l.dial()
	}
}

type memListener struct {
	accept chan *memConn

	once sync.Once
	done chan struct{}
}

func (l *memListener) dial() (Conn, error) {
	worker, learner := memPipe()
	select {
	case l.accept <- learner:
		return worker, nil
	case <-l.done:
		return nil, errors.New("dist: connection refused (listener closed)")
	}
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Addr() string { return "mem" }

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) closed() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}

// memConn is one endpoint of an in-memory duplex pipe. Queues are
// unbounded (slice + cond) so a Send never blocks — matching TCP's
// buffering closely enough for protocol tests while keeping deterministic
// tests free of flow-control deadlocks.
type memConn struct {
	send *memQueue
	recv *memQueue
}

func memPipe() (a, b *memConn) {
	q1 := newMemQueue()
	q2 := newMemQueue()
	return &memConn{send: q1, recv: q2}, &memConn{send: q2, recv: q1}
}

func (c *memConn) Send(m Msg) error   { return c.send.push(m) }
func (c *memConn) Recv() (Msg, error) { return c.recv.pop() }

// Close tears down both directions, unblocking the peer's Recv as a closed
// TCP socket would.
func (c *memConn) Close() error {
	c.send.close()
	c.recv.close()
	return nil
}

type memQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []Msg
	closed bool
}

func newMemQueue() *memQueue {
	q := &memQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *memQueue) push(m Msg) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.msgs = append(q.msgs, m)
	q.cond.Signal()
	return nil
}

func (q *memQueue) pop() (Msg, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.msgs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.msgs) == 0 {
		return Msg{}, ErrClosed
	}
	m := q.msgs[0]
	q.msgs = q.msgs[1:]
	return m, nil
}

func (q *memQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
