package dist

import (
	"errors"
	"strings"
	"testing"

	"github.com/parmcts/parmcts/internal/checkpoint"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/trajstore"
)

func testEpisode() trajstore.Episode {
	return trajstore.Episode{
		Moves:  3,
		Winner: game.P1,
		Samples: []nn.Sample{
			{Input: []float32{1, 2, 3, 4}, Policy: []float32{0.25, 0.75}, Value: 0.5},
			{Input: []float32{5, 6, 7, 8}, Policy: []float32{0.5, 0.5}, Value: -1},
		},
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{WorkerID: "w1", GameSpec: "tictactoe", Games: 4, HaveVersion: 7}
	m, err := encodeHello(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeHello(m)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if _, err := decodeHello(Msg{Type: msgEpisode}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("wrong-type decode: err=%v, want ErrProtocol", err)
	}
}

func TestEpisodeRoundTrip(t *testing.T) {
	ep := testEpisode()
	m := encodeEpisode(42, ep)
	version, out, err := decodeEpisode(m)
	if err != nil {
		t.Fatal(err)
	}
	if version != 42 {
		t.Fatalf("version %d, want 42", version)
	}
	if out.Moves != ep.Moves || out.Winner != ep.Winner || len(out.Samples) != len(ep.Samples) {
		t.Fatalf("episode mangled: %+v", out)
	}
	if out.Samples[1].Value != -1 || out.Samples[0].Policy[1] != 0.75 {
		t.Fatalf("sample data mangled: %+v", out.Samples)
	}
}

// TestEpisodeCorruptionRejected is the learner-side re-validation contract:
// any flipped bit in the frame body must fail the checksum, and a truncated
// message must fail framing — neither may produce an episode.
func TestEpisodeCorruptionRejected(t *testing.T) {
	m := encodeEpisode(1, testEpisode())
	for _, off := range []int{8, 20, len(m.Payload) - 1} {
		corrupt := Msg{Type: m.Type, Payload: append([]byte(nil), m.Payload...)}
		corrupt.Payload[off] ^= 0x40
		if _, _, err := decodeEpisode(corrupt); err == nil {
			t.Fatalf("flipped byte at %d decoded cleanly", off)
		}
	}
	for _, n := range []int{0, 4, 9, len(m.Payload) - 3} {
		trunc := Msg{Type: m.Type, Payload: m.Payload[:n]}
		if _, _, err := decodeEpisode(trunc); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	net := nn.MustNew(nn.TinyConfig(2, 3, 3, 9), rng.New(1))
	raw, sum, err := checkpoint.EncodeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	man := checkpoint.Manifest{Version: 3, Checksum: sum, Game: "tictactoe"}
	m, err := encodeCheckpoint(man, raw)
	if err != nil {
		t.Fatal(err)
	}
	gotMan, gotNet, err := decodeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	if gotMan.Version != 3 || gotMan.Checksum != sum {
		t.Fatalf("manifest mangled: %+v", gotMan)
	}
	raw2, sum2, err := checkpoint.EncodeNetwork(gotNet)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 != sum || len(raw2) != len(raw) {
		t.Fatalf("decoded network re-encodes to %s (%d bytes), want %s (%d bytes)", sum2, len(raw2), sum, len(raw))
	}
}

// TestCheckpointCorruptionRejected: a bit flip anywhere in the weight bytes
// must be caught by the manifest checksum before a network is built.
func TestCheckpointCorruptionRejected(t *testing.T) {
	net := nn.MustNew(nn.TinyConfig(2, 3, 3, 9), rng.New(1))
	raw, sum, err := checkpoint.EncodeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	man := checkpoint.Manifest{Version: 3, Checksum: sum}
	m, err := encodeCheckpoint(man, raw)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := Msg{Type: m.Type, Payload: append([]byte(nil), m.Payload...)}
	corrupt.Payload[len(corrupt.Payload)-5] ^= 0x01
	if _, _, err := decodeCheckpoint(corrupt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("flipped weight byte: err=%v, want checksum mismatch", err)
	}
	if _, _, err := decodeCheckpoint(Msg{Type: msgCheckpoint, Payload: []byte{1, 2}}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated header: err=%v, want ErrProtocol", err)
	}
}

func TestTCPTransport(t *testing.T) {
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	type accepted struct {
		c   Conn
		err error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		c, aerr := lis.Accept()
		acceptCh <- accepted{c, aerr}
	}()

	client, err := TCPDialer(lis.Addr())()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srv := <-acceptCh
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	defer srv.c.Close()

	// Full message round trips in both directions, including a payload big
	// enough to span many reads.
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	for _, m := range []Msg{{Type: msgHello, Payload: []byte(`{"worker_id":"w"}`)}, {Type: msgEpisode, Payload: big}} {
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
		got, err := srv.c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != m.Type || len(got.Payload) != len(m.Payload) {
			t.Fatalf("recv type=%d len=%d, want type=%d len=%d", got.Type, len(got.Payload), m.Type, len(m.Payload))
		}
	}
	if err := srv.c.Send(Msg{Type: msgCheckpoint, Payload: []byte("down")}); err != nil {
		t.Fatal(err)
	}
	if got, err := client.Recv(); err != nil || string(got.Payload) != "down" {
		t.Fatalf("server->client: %v %q", err, got.Payload)
	}

	// Concurrent senders must not interleave frames (Send is mutexed).
	const perSender, senders = 50, 4
	done := make(chan error, senders)
	for s := 0; s < senders; s++ {
		go func(s int) {
			for i := 0; i < perSender; i++ {
				if err := client.Send(encodeEpisode(int64(s), testEpisode())); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(s)
	}
	for i := 0; i < senders*perSender; i++ {
		m, err := srv.c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodeEpisode(m); err != nil {
			t.Fatalf("frame %d corrupted by interleaving: %v", i, err)
		}
	}
	for s := 0; s < senders; s++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemTransportClose(t *testing.T) {
	fabric := NewNetwork()
	lis, err := fabric.Listen()
	if err != nil {
		t.Fatal(err)
	}
	dial := fabric.Dialer()

	acceptCh := make(chan Conn, 1)
	go func() {
		c, _ := lis.Accept()
		acceptCh <- c
	}()
	client, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-acceptCh

	if err := client.Send(Msg{Type: msgHello}); err != nil {
		t.Fatal(err)
	}
	if _, err := srvConn.Recv(); err != nil {
		t.Fatal(err)
	}
	// Closing one end unblocks and errors the peer, like a reset socket.
	client.Close()
	if _, err := srvConn.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer recv after close: %v, want ErrClosed", err)
	}
	if err := srvConn.Send(Msg{Type: msgCheckpoint}); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer send after close: %v, want ErrClosed", err)
	}

	// A closed listener refuses dials; a rebound one accepts again.
	lis.Close()
	if _, err := dial(); err == nil {
		t.Fatal("dial succeeded with listener closed")
	}
	lis2, err := fabric.Listen()
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	go func() {
		c, _ := lis2.Accept()
		acceptCh <- c
	}()
	if _, err := dial(); err != nil {
		t.Fatalf("dial after rebind: %v", err)
	}
	<-acceptCh
	lis2.Close()
}
