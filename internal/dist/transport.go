// Package dist splits the continuous training loop across processes: N
// worker processes each run a self-play fleet (internal/selfplay.Driver
// with the existing per-game version pinning, so a worker finishes its
// games on the model it started them with) and stream finished
// trajectories to one learner that owns SGD, checkpoint commits and
// arena-gated promotion, fanning promoted checkpoints back out to every
// connected worker.
//
// The wire reuses the repo's existing durable formats as its payloads:
// trajectories travel as internal/trajstore episode frames (length prefix
// + FNV-64a checksum + episode codec — byte-identical to a segment frame),
// and checkpoints travel as an internal/checkpoint manifest plus the raw
// weight bytes its checksum covers. Both ends re-validate every checksum,
// so a torn or corrupted transfer is rejected exactly like a torn segment
// or a corrupted checkpoint on disk.
//
// The transport itself is a seam: a length-prefixed TCP protocol for real
// deployments (ListenTCP/TCPDialer) and a deterministic in-memory fabric
// for tests (NewNetwork). Workers reconnect with exponential backoff and
// keep generating while disconnected (bounded episode buffering); the
// learner treats every worker connection as disposable — a dead worker
// never stalls the round barrier, and a restarted learner resumes from the
// checkpoint store and the durable replay directory while workers redial.
package dist

// Message types on the wire. The protocol is deliberately tiny: a worker
// announces itself, streams episodes, and receives checkpoints.
const (
	// msgHello is the worker's first message on every (re)connection:
	// a JSON Hello identifying the worker and its game spec.
	msgHello = byte(1)
	// msgEpisode carries one finished self-play game:
	// [8B LE generating model version][trajstore episode frame].
	msgEpisode = byte(2)
	// msgCheckpoint carries one model snapshot:
	// [4B LE manifest length][manifest JSON][raw weight bytes].
	msgCheckpoint = byte(3)
)

// Msg is one framed protocol message.
type Msg struct {
	Type    byte
	Payload []byte
}

// Conn is one bidirectional message link between a worker and the learner.
// Send is safe for concurrent use (the learner broadcasts checkpoints from
// the promotion path while the per-connection handler may be replying to a
// hello); Recv is single-consumer. Close unblocks both sides.
type Conn interface {
	Send(m Msg) error
	Recv() (Msg, error)
	Close() error
}

// Listener accepts worker connections on the learner side.
type Listener interface {
	Accept() (Conn, error)
	// Addr reports the bound address (for logging and tests).
	Addr() string
	Close() error
}

// Dialer opens a fresh connection to the learner. Workers call it on every
// reconnection attempt, so implementations must be reusable.
type Dialer func() (Conn, error)
