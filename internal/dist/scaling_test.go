package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/train"
)

// latencyEval models a fixed-latency inference device: every evaluation
// sleeps evalLatency, then returns a uniform policy. On a host with too few
// cores to show compute-parallel speedup (this repo's CI is single-core),
// self-play throughput is latency-bound — exactly the regime the
// distributed split targets, where adding workers multiplies the number of
// in-flight device calls, not the CPU demand. 3ms keeps the sleep two
// orders above the per-eval CPU work even under the race detector, so the
// measured ratio reflects overlap, not scheduler contention.
const evalLatency = 3 * time.Millisecond

type latencyEval struct{}

func (latencyEval) Evaluate(input []float32, policy []float32) float64 {
	time.Sleep(evalLatency)
	for i := range policy {
		policy[i] = 1 / float32(len(policy))
	}
	return 0
}

// measureWorkers runs n workers of identical per-worker fleet size against
// one ingest-only learner and returns aggregate playouts per second.
func measureWorkers(t *testing.T, n int) (playoutsPerSec float64, playouts int64) {
	t.Helper()
	fabric := NewNetwork()
	lis, err := fabric.Listen()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testLearnerConfig(t, t.TempDir(), 1_000_000)
	cfg.RoundGames = 2 * n
	cfg.Loop.GateEvery = 0
	cfg.Loop.MinSamples = 1 << 30 // ingest-only: no SGD, no gating — measure generation
	learner, err := NewLearner(lis, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reportCh := make(chan train.LoopReport, 1)
	go func() { reportCh <- learner.Run(nil) }()

	const roundsPerWorker = 4
	workers := make([]*Worker, n)
	for i := range workers {
		// Every worker gets the SAME seed: identical per-worker workloads,
		// so the N-worker aggregate measures pure scaling with no straggler
		// (a shorter-game worker finishing early would deflate the ratio).
		wcfg := testWorkerConfig(t, fmt.Sprintf("w%d", i), fabric.Dialer(), 1)
		wcfg.Games = 2
		wcfg.Workers = 1
		wcfg.Playouts = 8
		wcfg.Rounds = roundsPerWorker
		wcfg.NewEvaluator = func(*nn.Network) evaluate.Evaluator { return latencyEval{} }
		w, werr := NewWorker(wcfg)
		if werr != nil {
			t.Fatal(werr)
		}
		workers[i] = w
	}

	start := time.Now()
	done := make(chan WorkerStats, n)
	for _, w := range workers {
		go func(w *Worker) { done <- w.Run() }(w)
	}
	for range workers {
		st := <-done
		playouts += st.Playouts
	}
	elapsed := time.Since(start)
	learner.Stop()
	<-reportCh
	return float64(playouts) / elapsed.Seconds(), playouts
}

// TestDistributedScaling is the tentpole's acceptance bar: with a
// latency-modeled evaluator, two workers at equal per-worker fleet size
// must deliver >= 1.8x the aggregate playouts/s of one worker. Set
// BENCH_DIST_OUT to also record the run as BENCH_distributed.json.
func TestDistributedScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	tp1, p1 := measureWorkers(t, 1)
	tp2, p2 := measureWorkers(t, 2)
	ratio := tp2 / tp1
	t.Logf("1 worker: %d playouts at %.0f/s; 2 workers: %d playouts at %.0f/s; scaling %.2fx",
		p1, tp1, p2, tp2, ratio)
	if ratio < 1.8 {
		t.Fatalf("2-worker scaling %.2fx < required 1.8x (1w %.0f/s, 2w %.0f/s)", ratio, tp1, tp2)
	}

	if out := os.Getenv("BENCH_DIST_OUT"); out != "" {
		doc := map[string]any{
			"description": fmt.Sprintf("Distributed self-play worker/learner split (internal/dist): aggregate self-play playouts/s of N worker processes streaming episodes to one ingest-only learner over the in-memory transport, at EQUAL per-worker fleet size (2 games x 1 in-flight eval, 8 playouts/move, tictactoe). Evaluation latency is modeled (%v sleep per leaf eval) because the CI host is single-core: a sleep-based evaluator makes throughput latency-bound, the regime where distributing the fleet multiplies in-flight device calls. Compute-bound multi-core scaling remains to be recorded on a bigger host (ROADMAP open item).", evalLatency),
			"benchmark":   "internal/dist TestDistributedScaling (BENCH_DIST_OUT set)",
			"environment": map[string]any{
				"cores":  runtime.NumCPU(),
				"goos":   runtime.GOOS,
				"goarch": runtime.GOARCH,
				"go":     runtime.Version(),
				"note":   fmt.Sprintf("latency-modeled evaluator (%v/eval); numbers measure the split's coordination overhead and scaling, not kernel speed", evalLatency),
			},
			"one_worker":  map[string]any{"playouts": p1, "playouts_per_sec": int(tp1)},
			"two_workers": map[string]any{"playouts": p2, "playouts_per_sec": int(tp2)},
			"scaling":     map[string]any{"ratio": float64(int(ratio*100)) / 100, "acceptance": "2-worker aggregate >= 1.8x of 1-worker at equal per-worker fleet size"},
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %s", out)
	}
}
