package dist

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/arena"
	"github.com/parmcts/parmcts/internal/checkpoint"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/train"
	"github.com/parmcts/parmcts/internal/trajstore"
)

// testLearnerConfig builds a fast learner over tictactoe. The gate's
// WinThreshold 0 makes every gate promote (score >= 0 always), so
// promotion-path tests are deterministic regardless of match outcomes.
func testLearnerConfig(t *testing.T, ckptDir string, rounds int) LearnerConfig {
	t.Helper()
	g := tictactoe.New()
	c, h, w := g.EncodedShape()
	store, err := checkpoint.NewStore(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	return LearnerConfig{
		Game:     g,
		GameSpec: "tictactoe",
		Store:    store,
		NewNet: func() *nn.Network {
			return nn.MustNew(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(1))
		},
		Replay:       train.NewReplay(4096),
		RoundGames:   4,
		RoundTimeout: 3 * time.Second,
		Loop: train.LoopConfig{
			Rounds:        rounds,
			GateEvery:     2,
			SGDIterations: 1,
			BatchSize:     8,
			MinSamples:    1,
			Seed:          1,
		},
		Gate: arena.GateConfig{
			Games:        2,
			WinThreshold: 0,
			Playouts:     8,
			Temperature:  0.5,
			TempMoves:    3,
			Seed:         7,
		},
		Logf: t.Logf,
	}
}

func testWorkerConfig(t *testing.T, id string, dial Dialer, seed uint64) WorkerConfig {
	t.Helper()
	return WorkerConfig{
		ID:           id,
		Game:         tictactoe.New(),
		GameSpec:     "tictactoe",
		Dial:         dial,
		Games:        2,
		Playouts:     8,
		Workers:      2,
		TempMoves:    3,
		Seed:         seed,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		Logf:         t.Logf,
	}
}

// TestDistributedLoopEndToEnd is the in-memory multi-worker smoke: two
// workers stream episodes to one learner, SGD and gating run on the
// learner, promotions fan back out, and workers apply the swaps at round
// barriers.
func TestDistributedLoopEndToEnd(t *testing.T) {
	fabric := NewNetwork()
	lis, err := fabric.Listen()
	if err != nil {
		t.Fatal(err)
	}
	learner, err := NewLearner(lis, testLearnerConfig(t, t.TempDir(), 6))
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*Worker, 2)
	workerDone := make(chan WorkerStats, len(workers))
	for i := range workers {
		w, werr := NewWorker(testWorkerConfig(t, "w"+string(rune('0'+i)), fabric.Dialer(), uint64(i+1)))
		if werr != nil {
			t.Fatal(werr)
		}
		workers[i] = w
		go func() { workerDone <- w.Run() }()
	}

	report := learner.Run(nil)
	for _, w := range workers {
		w.Stop()
	}
	var sent, swaps int
	for range workers {
		st := <-workerDone
		sent += st.Sent
		swaps += st.Swaps
	}

	if report.Rounds != 6 {
		t.Fatalf("learner consumed %d rounds, want 6", report.Rounds)
	}
	if len(report.Promotions) < 1 {
		t.Fatal("no promotion completed (gate threshold 0 promotes every gate)")
	}
	if report.FinalVersion != 1+int64(len(report.Promotions)) {
		t.Fatalf("final version %d with %d promotions from v1", report.FinalVersion, len(report.Promotions))
	}
	st := learner.Stats()
	if st.WorkersSeen < 2 {
		t.Fatalf("learner saw %d workers, want >= 2", st.WorkersSeen)
	}
	if st.Episodes < int64(report.Rounds) {
		t.Fatalf("learner accepted %d episodes over %d rounds", st.Episodes, report.Rounds)
	}
	if st.Rejected != 0 {
		t.Fatalf("%d frames rejected on a clean in-memory transport", st.Rejected)
	}
	if sent < int(st.Episodes) {
		t.Fatalf("workers sent %d episodes, learner accepted %d", sent, st.Episodes)
	}
	if swaps < 1 {
		t.Fatal("no worker applied a promoted checkpoint swap")
	}

	// The promoted versions are durable: the store's latest checkpoint is
	// the final version and loads cleanly.
	net, man, err := learner.cfg.Store.LoadLatest()
	if err != nil || net == nil {
		t.Fatalf("reloading final checkpoint: %v", err)
	}
	if man.Version != report.FinalVersion {
		t.Fatalf("store latest v%d, loop final v%d", man.Version, report.FinalVersion)
	}
}

// TestWorkerDeathDoesNotStallLearner kills one of two workers mid-run
// (abruptly — its connection just dies). The learner must keep consuming
// rounds from the survivor, complete a gated promotion, and finish.
func TestWorkerDeathDoesNotStallLearner(t *testing.T) {
	fabric := NewNetwork()
	lis, err := fabric.Listen()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testLearnerConfig(t, t.TempDir(), 6)
	cfg.RoundTimeout = 500 * time.Millisecond
	learner, err := NewLearner(lis, cfg)
	if err != nil {
		t.Fatal(err)
	}

	victim, err := NewWorker(testWorkerConfig(t, "victim", fabric.Dialer(), 1))
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := NewWorker(testWorkerConfig(t, "survivor", fabric.Dialer(), 2))
	if err != nil {
		t.Fatal(err)
	}
	go victim.Run()
	survivorDone := make(chan WorkerStats, 1)
	go func() { survivorDone <- survivor.Run() }()

	// Kill the victim after the first consumed round.
	killed := make(chan struct{})
	report := learner.Run(func(s train.LoopRoundStats) {
		if s.Round == 0 {
			victim.Stop()
			close(killed)
		}
	})
	<-killed
	survivor.Stop()
	<-survivorDone

	if report.Rounds != 6 {
		t.Fatalf("learner consumed %d rounds, want 6 (stalled by dead worker?)", report.Rounds)
	}
	if len(report.Promotions) < 1 {
		t.Fatal("no gated promotion completed after worker death")
	}
}

// TestLearnerRestartResumes kills the learner (listener torn down, workers
// left running) and starts a fresh one over the same checkpoint and replay
// stores. The new learner must resume from the committed version, the
// workers must redial with backoff and re-hello, and training must
// continue with version numbering intact.
func TestLearnerRestartResumes(t *testing.T) {
	fabric := NewNetwork()
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	trajDir := filepath.Join(t.TempDir(), "traj")

	openTraj := func() *trajstore.Store {
		ts, err := trajstore.Open(trajDir, trajstore.Config{SegmentGames: 4, Game: "tictactoe"})
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}

	// Phase 1: short run, at least one promotion.
	lis1, err := fabric.Listen()
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := testLearnerConfig(t, ckptDir, 4)
	cfg1.Loop.GateEvery = 1
	traj1 := openTraj()
	cfg1.Traj = traj1
	learner1, err := NewLearner(lis1, cfg1)
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]*Worker, 2)
	workerDone := make(chan WorkerStats, len(workers))
	for i := range workers {
		w, werr := NewWorker(testWorkerConfig(t, "w"+string(rune('0'+i)), fabric.Dialer(), uint64(i+1)))
		if werr != nil {
			t.Fatal(werr)
		}
		workers[i] = w
		go func() { workerDone <- w.Run() }()
	}

	report1 := learner1.Run(nil)
	if len(report1.Promotions) < 1 {
		t.Fatal("phase 1 made no promotion")
	}
	traj1.Close()

	// The learner is gone; workers keep playing and redial into nothing.
	// Phase 2: a fresh learner on the same fabric and stores.
	lis2, err := fabric.Listen()
	if err != nil {
		t.Fatalf("rebinding after learner death: %v", err)
	}
	cfg2 := testLearnerConfig(t, ckptDir, 3)
	traj2 := openTraj()
	cfg2.Traj = traj2
	defer traj2.Close()
	learner2, err := NewLearner(lis2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if learner2.Version() != report1.FinalVersion {
		t.Fatalf("restarted learner serves v%d, phase 1 committed v%d", learner2.Version(), report1.FinalVersion)
	}
	if cfg2.Replay.Len() == 0 {
		t.Fatal("restarted learner re-ingested nothing from the durable replay store")
	}

	report2 := learner2.Run(nil)
	for _, w := range workers {
		w.Stop()
	}
	var reconnects int
	for range workers {
		st := <-workerDone
		reconnects += st.Reconnects
	}

	if report2.Rounds != 3 {
		t.Fatalf("restarted learner consumed %d rounds, want 3", report2.Rounds)
	}
	if report2.FinalVersion < report1.FinalVersion {
		t.Fatalf("version went backwards across restart: %d -> %d", report1.FinalVersion, report2.FinalVersion)
	}
	if reconnects < 2 {
		t.Fatalf("workers reconnected %d times, want >= 2 (one per worker)", reconnects)
	}
}

// TestLearnerDropsCorruptFrames drives the wire by hand: a corrupted
// episode frame must be counted and dropped without poisoning the round,
// and the episodes around it must still train the loop to completion.
func TestLearnerDropsCorruptFrames(t *testing.T) {
	fabric := NewNetwork()
	lis, err := fabric.Listen()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testLearnerConfig(t, t.TempDir(), 1)
	cfg.RoundGames = 2
	cfg.Loop.GateEvery = 0
	learner, err := NewLearner(lis, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reportCh := make(chan train.LoopReport, 1)
	go func() { reportCh <- learner.Run(nil) }()

	c, err := fabric.Dialer()()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello, err := encodeHello(Hello{WorkerID: "hand", GameSpec: "tictactoe", Games: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(hello); err != nil {
		t.Fatal(err)
	}
	if m, err := c.Recv(); err != nil || m.Type != msgCheckpoint {
		t.Fatalf("hello answer: %v type=%d, want checkpoint", err, m.Type)
	}

	// Samples must match the learner's network shape so SGD can run.
	g := tictactoe.New()
	ch, h, w := g.EncodedShape()
	sample := nn.Sample{Input: make([]float32, ch*h*w), Policy: make([]float32, g.NumActions()), Value: 1}
	for i := range sample.Policy {
		sample.Policy[i] = 1 / float32(len(sample.Policy))
	}
	ep := trajstore.Episode{Moves: 1, Samples: []nn.Sample{sample}}

	good := encodeEpisode(1, ep)
	bad := Msg{Type: msgEpisode, Payload: append([]byte(nil), good.Payload...)}
	bad.Payload[len(bad.Payload)-1] ^= 0xFF
	for _, m := range []Msg{bad, good, good} {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}

	report := <-reportCh
	if report.Rounds != 1 || report.Samples != 2 {
		t.Fatalf("report rounds=%d samples=%d, want 1 round of the 2 valid episodes", report.Rounds, report.Samples)
	}
	st := learner.Stats()
	if st.Rejected != 1 || st.Episodes != 2 {
		t.Fatalf("stats rejected=%d episodes=%d, want 1 rejected, 2 accepted", st.Rejected, st.Episodes)
	}
}

// TestLearnerRejectsMismatchedGame: a worker for the wrong game must be
// turned away at hello time, before any episode can reach the replay path.
func TestLearnerRejectsMismatchedGame(t *testing.T) {
	fabric := NewNetwork()
	lis, err := fabric.Listen()
	if err != nil {
		t.Fatal(err)
	}
	learner, err := NewLearner(lis, testLearnerConfig(t, t.TempDir(), 1))
	if err != nil {
		t.Fatal(err)
	}
	go learner.acceptLoop()
	defer learner.Stop()

	c, err := fabric.Dialer()()
	if err != nil {
		t.Fatal(err)
	}
	hello, err := encodeHello(Hello{WorkerID: "alien", GameSpec: "hex:7", Games: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(hello); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err == nil {
		t.Fatal("mismatched-game hello was answered instead of closed")
	}
	if got := learner.Stats().HellosRejected; got != 1 {
		t.Fatalf("hellos rejected = %d, want 1", got)
	}
}
