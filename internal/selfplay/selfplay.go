// Package selfplay runs G self-play games concurrently against one shared
// inference service — the multi-tenant counterpart of train.Trainer's
// single-engine loop. Each game owns its own search engine (typically an
// mcts.Local master holding a private tree), but all engines submit node
// evaluations to the same evaluate.Server, so the device sees one
// aggregated batch stream instead of G under-filled ones (the regime
// Algorithm 4 of the paper exists to avoid). Finished games feed a shared
// replay buffer, which the round-based Trainer then consumes for SGD
// updates exactly as Algorithm 1 prescribes.
//
// Engines configured with mcts.Config.ReuseTree run as persistent search
// sessions: every game advances its engine past each played move (see
// train.SelfPlayEpisode), so each search continues from the played child's
// warm subtree and the fleet's aggregate evaluation demand per move drops
// by the recorded reuse fraction (Round.Search.ReuseFraction) — demand
// relief that multiplies directly into the shared service's throughput.
package selfplay

import (
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/train"
)

// Config tunes the concurrent driver.
type Config struct {
	// TempMoves is the exploration temperature horizon per game.
	TempMoves int
	// MaxMoves truncates pathological games (0 = game.MaxGameLength).
	MaxMoves int
	// Seed drives per-game move sampling (split per game per round).
	Seed uint64
	// OnGameStart, when non-nil, runs on the game goroutine immediately
	// before each episode. The model-lifecycle driver uses it to pin the
	// tenant's inference client to the serving version current at game
	// start, so one game's evaluations never mix model versions across a
	// mid-round hot swap.
	OnGameStart func(tenant int)
	// OnGameEnd, when non-nil, runs on the game goroutine after the episode
	// finishes (typically Client.Unpin, so the next game re-pins to
	// whatever version is current by then).
	OnGameEnd func(tenant int)
	// OnEpisode, when non-nil, receives every finished episode at the
	// round's ingest barrier — on the driver goroutine, in tenant order, so
	// the delivery sequence is deterministic for a fixed seed. This is the
	// durable-replay hook: cmd/train appends each episode to a
	// trajstore.Store here, before its samples enter the in-memory ring.
	OnEpisode func(tenant int, ep *train.EpisodeResult)
}

// Round reports one batch of G concurrent games.
type Round struct {
	// Episodes holds each game's result, indexed by tenant.
	Episodes []train.EpisodeResult
	// Search aggregates every game's per-move engine stats (Stats.Add);
	// Duration therein is summed engine time and exceeds wall-clock when
	// games overlap — the wall-clock of the round is Elapsed. With warm
	// trees, Search.ReuseFraction reports the share of the round's playout
	// target served from retained subtrees instead of fresh evaluations.
	Search mcts.Stats
	// Moves and Samples count across all games (Samples pre-augmentation).
	Moves   int
	Samples int
	// Elapsed is the wall-clock time of the concurrent round.
	Elapsed time.Duration
}

// Driver plays G games concurrently, one goroutine per game, all sharing a
// replay buffer (and, through their engines, typically one inference
// service). Engines must be distinct — each owns its own tree — and are
// mapped one-to-one onto games.
type Driver struct {
	g       game.Game
	engines []mcts.Engine
	cfg     Config
	r       *rng.Rand

	mu      sync.Mutex // guards replay ingestion from game goroutines
	replay  *train.Replay
	augment train.Augmenter
}

// NewDriver creates a concurrent driver over the given engines (one per
// game). replay receives every finished game's (augmented) samples; it must
// only be read between rounds. augment may be nil. replay may be nil for a
// streaming-only fleet — a distributed worker that ships every episode to a
// remote learner through Config.OnEpisode and trains nothing locally — in
// which case ingestion is a no-op and Replay returns nil.
func NewDriver(g game.Game, engines []mcts.Engine, replay *train.Replay, augment train.Augmenter, cfg Config) *Driver {
	if len(engines) < 1 {
		panic("selfplay: driver needs at least one engine")
	}
	if replay == nil && cfg.OnEpisode == nil {
		panic("selfplay: driver needs a replay buffer or an OnEpisode sink")
	}
	return &Driver{
		g:       g,
		engines: engines,
		cfg:     cfg,
		r:       rng.New(cfg.Seed),
		replay:  replay,
		augment: augment,
	}
}

// Games returns G, the number of concurrent games per round.
func (d *Driver) Games() int { return len(d.engines) }

// Replay returns the shared replay buffer (nil for a streaming-only
// driver). Safe to use between rounds.
func (d *Driver) Replay() *train.Replay { return d.replay }

// Ingest feeds samples through the driver's augmentation path into the
// shared replay buffer — the same path PlayRound uses at the round
// barrier. Restoring a durable store's episodes into a fresh run goes
// through here so restored data is augmented exactly like live data.
func (d *Driver) Ingest(samples []nn.Sample) { d.ingest(samples) }

// ingest adds one game's samples to the shared replay buffer. The mutex
// serializes ingestion for any future caller that streams mid-round; the
// driver itself ingests at the round barrier in game order, so the replay
// insertion sequence — and therefore SGD batch composition — is a pure
// function of the seed, not of goroutine scheduling. A replay-less
// (streaming-only) driver ingests nowhere.
func (d *Driver) ingest(samples []nn.Sample) {
	if d.replay == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range samples {
		if d.augment != nil {
			for _, aug := range d.augment.Augment(s) {
				d.replay.Add(aug)
			}
		} else {
			d.replay.Add(s)
		}
	}
}

// PlayRound plays one round of G concurrent games and returns the merged
// results. Per-game RNGs are split on the caller's goroutine before the
// fan-out, so rounds are reproducible for a fixed seed and G.
func (d *Driver) PlayRound() Round {
	g := len(d.engines)
	rands := make([]*rng.Rand, g)
	for i := range rands {
		rands[i] = d.r.Split()
	}
	episodes := make([]train.EpisodeResult, g)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if d.cfg.OnGameStart != nil {
				d.cfg.OnGameStart(i)
			}
			episodes[i] = train.SelfPlayEpisode(d.g, d.engines[i], train.EpisodeOptions{
				TempMoves: d.cfg.TempMoves,
				MaxMoves:  d.cfg.MaxMoves,
				Rand:      rands[i],
			})
			if d.cfg.OnGameEnd != nil {
				d.cfg.OnGameEnd(i)
			}
		}(i)
	}
	wg.Wait()
	// Ingest at the barrier in game order: games race in wall-clock but the
	// replay sequence stays deterministic for a fixed seed.
	for i := 0; i < g; i++ {
		if d.cfg.OnEpisode != nil {
			d.cfg.OnEpisode(i, &episodes[i])
		}
		d.ingest(episodes[i].Samples)
	}

	round := Round{Episodes: episodes, Elapsed: time.Since(start)}
	for i := range episodes {
		round.Search.Add(episodes[i].Search)
		round.Moves += episodes[i].Moves
		round.Samples += len(episodes[i].Samples)
	}
	return round
}

// Generate implements train.Generator: one continuous-loop generation round
// is one PlayRound. Through this adapter the fleet plugs into train.Loop,
// which overlaps these rounds with SGD and promotion gates on another
// goroutine.
func (d *Driver) Generate() train.GenRound {
	r := d.PlayRound()
	return train.GenRound{
		Games:   d.Games(),
		Moves:   r.Moves,
		Samples: r.Samples,
		Search:  r.Search,
		Elapsed: r.Elapsed,
	}
}

// TrainerConfig configures the round-based training loop.
type TrainerConfig struct {
	// Rounds is the number of concurrent-game rounds (each round plays G
	// games, so Rounds*G episodes total).
	Rounds int
	// SGDIterations is the number of mini-batch updates per round.
	SGDIterations int
	// BatchSize is the SGD mini-batch size.
	BatchSize int
	// LR, Momentum, WeightDecay are the optimizer hyper-parameters.
	LR, Momentum, WeightDecay float64
	// TrainWorkers is the gradient-computation thread count (0 = GOMAXPROCS).
	TrainWorkers int
	// Seed drives mini-batch draws.
	Seed uint64
}

// RoundStats reports one round of the training loop.
type RoundStats struct {
	Round   int
	Games   int
	Moves   int
	Samples int
	// Loss is the Equation 2 decomposition of the round's last update.
	Loss nn.BatchResult
	// Search is the aggregated engine stats of the round's games.
	Search mcts.Stats
	// SearchTime is the round's wall-clock self-play time (concurrent);
	// TrainTime is the SGD stage; Elapsed is since training started.
	SearchTime time.Duration
	TrainTime  time.Duration
	Elapsed    time.Duration
}

// Throughput returns processed samples per second, the Figure 6 metric
// evaluated on the concurrent pipeline: samples / (search + train) wall
// time. Concurrency raises it by shrinking the search term, not the count.
func (s RoundStats) Throughput() float64 {
	denom := (s.SearchTime + s.TrainTime).Seconds()
	if denom <= 0 {
		return 0
	}
	return float64(s.Samples) / denom
}

// Trainer alternates concurrent self-play rounds with SGD updates — the
// Algorithm 1 outer loop with line 3's episode replaced by a G-wide round.
type Trainer struct {
	d   *Driver
	net *nn.Network
	opt *nn.SGD
	cfg TrainerConfig
	r   *rng.Rand
}

// NewTrainer assembles the round-based pipeline around an existing driver.
func NewTrainer(d *Driver, net *nn.Network, cfg TrainerConfig) *Trainer {
	if cfg.Rounds < 1 {
		panic("selfplay: Rounds must be >= 1")
	}
	if d.Replay() == nil {
		panic("selfplay: a Trainer needs a driver with a replay buffer")
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 32
	}
	if cfg.SGDIterations < 1 {
		cfg.SGDIterations = 1
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	return &Trainer{
		d:   d,
		net: net,
		opt: nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay),
		cfg: cfg,
		r:   rng.New(cfg.Seed),
	}
}

// Net returns the network being trained.
func (t *Trainer) Net() *nn.Network { return t.net }

// Run executes the configured number of rounds, invoking onRound (if
// non-nil) after each one, and returns the per-round statistics.
func (t *Trainer) Run(onRound func(RoundStats)) []RoundStats {
	all := make([]RoundStats, 0, t.cfg.Rounds)
	start := time.Now()
	for round := 0; round < t.cfg.Rounds; round++ {
		res := t.d.PlayRound()

		t0 := time.Now()
		var last nn.BatchResult
		for it := 0; it < t.cfg.SGDIterations; it++ {
			batch := t.d.Replay().Sample(t.r, t.cfg.BatchSize)
			last = nn.TrainBatch(t.net, t.opt, batch, t.cfg.TrainWorkers)
		}
		trainTime := time.Since(t0)

		stats := RoundStats{
			Round:      round,
			Games:      t.d.Games(),
			Moves:      res.Moves,
			Samples:    res.Samples,
			Loss:       last,
			Search:     res.Search,
			SearchTime: res.Elapsed,
			TrainTime:  trainTime,
			Elapsed:    time.Since(start),
		}
		all = append(all, stats)
		if onRound != nil {
			onRound(stats)
		}
	}
	return all
}
