package selfplay

import (
	"sync"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/train"
)

// testFleet builds G local-tree engines sharing one deadline-flushing
// inference service over the latency-model device.
func testFleet(g, n, playouts int) ([]mcts.Engine, *evaluate.Server, func()) {
	dev := accel.NewModel(accel.CostModel{
		LaunchLatency:   5 * time.Microsecond,
		BytesPerSample:  36,
		LinkBytesPerSec: 16e9,
		ComputeBase:     10 * time.Microsecond,
	})
	srv := evaluate.NewServer(evaluate.DeviceBackend{Dev: dev}, evaluate.ServerConfig{
		Batch:          g * n,
		FlushDeadline:  500 * time.Microsecond,
		MaxOutstanding: 2 * g * n,
	})
	engines := make([]mcts.Engine, g)
	closers := make([]func(), 0, g+1)
	for i := 0; i < g; i++ {
		cfg := mcts.DefaultConfig()
		cfg.Playouts = playouts
		cfg.Seed = uint64(i + 1)
		cl := srv.NewClient(n)
		engines[i] = mcts.NewLocal(cfg, cl, n)
		closers = append(closers, cl.Close)
	}
	closers = append(closers, srv.Close)
	return engines, srv, func() {
		for _, e := range engines {
			e.Close()
		}
		for _, c := range closers {
			c()
		}
	}
}

func TestDriverPlaysGamesConcurrently(t *testing.T) {
	const g, n = 4, 4
	engines, srv, closeAll := testFleet(g, n, 32)
	defer closeAll()

	game := tictactoe.New()
	replay := train.NewReplay(1000)
	d := NewDriver(game, engines, replay, nil, Config{TempMoves: 2, Seed: 11})
	round := d.PlayRound()

	if len(round.Episodes) != g {
		t.Fatalf("round has %d episodes, want %d", len(round.Episodes), g)
	}
	if round.Moves < g || round.Samples != round.Moves {
		t.Fatalf("moves=%d samples=%d: every move yields one sample", round.Moves, round.Samples)
	}
	if replay.Len() != round.Samples {
		t.Fatalf("replay holds %d samples, round produced %d", replay.Len(), round.Samples)
	}
	// Every game ran its full playout budget per move, and Stats.Add kept
	// the aggregate consistent.
	if round.Search.Playouts != round.Moves*32 {
		t.Fatalf("aggregated playouts %d, want %d", round.Search.Playouts, round.Moves*32)
	}
	// All tenants' evaluations went through the one shared service.
	if st := srv.Stats(); st.Requests == 0 || st.Batches == 0 {
		t.Fatalf("shared server saw no traffic: %+v", st)
	}
	// Games with distinct seeds should not be identical replicas: at least
	// two episodes must differ in trajectory.
	distinct := false
	for i := 1; i < g; i++ {
		if round.Episodes[i].Moves != round.Episodes[0].Moves ||
			round.Episodes[i].Winner != round.Episodes[0].Winner {
			distinct = true
			break
		}
	}
	if !distinct {
		// Equal lengths and winners can legitimately coincide; compare the
		// first-move samples before declaring the games identical.
		s0 := round.Episodes[0].Samples[0].Policy
		for i := 1; i < g && !distinct; i++ {
			si := round.Episodes[i].Samples[0].Policy
			for j := range s0 {
				if s0[j] != si[j] {
					distinct = true
					break
				}
			}
		}
	}
	if !distinct {
		t.Fatal("all concurrent games produced identical trajectories — seeds not split")
	}
}

func TestDriverRoundsAreReproducible(t *testing.T) {
	game := tictactoe.New()
	run := func() Round {
		engines, _, closeAll := testFleet(2, 2, 16)
		defer closeAll()
		d := NewDriver(game, engines, train.NewReplay(500), nil, Config{TempMoves: 1, Seed: 42})
		return d.PlayRound()
	}
	a, b := run(), run()
	if len(a.Episodes) != len(b.Episodes) {
		t.Fatal("episode counts differ")
	}
	for i := range a.Episodes {
		if a.Episodes[i].Moves != b.Episodes[i].Moves || a.Episodes[i].Winner != b.Episodes[i].Winner {
			t.Fatalf("game %d not reproducible: (%d,%v) vs (%d,%v)", i,
				a.Episodes[i].Moves, a.Episodes[i].Winner, b.Episodes[i].Moves, b.Episodes[i].Winner)
		}
	}
}

func TestTrainerRunsRounds(t *testing.T) {
	game := tictactoe.New()
	engines, _, closeAll := testFleet(3, 2, 16)
	defer closeAll()

	c, h, w := game.EncodedShape()
	net := nn.MustNew(nn.TinyConfig(c, h, w, game.NumActions()), rng.New(3))
	replay := train.NewReplay(2000)
	d := NewDriver(game, engines, replay, nil, Config{TempMoves: 2, Seed: 5})
	tr := NewTrainer(d, net, TrainerConfig{
		Rounds:        2,
		SGDIterations: 2,
		BatchSize:     16,
		LR:            0.01,
		Seed:          5,
	})
	var seen []RoundStats
	all := tr.Run(func(s RoundStats) { seen = append(seen, s) })
	if len(all) != 2 || len(seen) != 2 {
		t.Fatalf("ran %d rounds (callback saw %d), want 2", len(all), len(seen))
	}
	for i, s := range all {
		if s.Games != 3 {
			t.Fatalf("round %d: games=%d, want 3", i, s.Games)
		}
		if s.Samples < 3 {
			t.Fatalf("round %d produced %d samples", i, s.Samples)
		}
		if s.Loss.TotalLoss() <= 0 {
			t.Fatalf("round %d: no SGD update recorded", i)
		}
		if s.Throughput() <= 0 {
			t.Fatalf("round %d: throughput %v", i, s.Throughput())
		}
	}
	if replay.Len() != all[0].Samples+all[1].Samples {
		t.Fatalf("replay %d != %d+%d", replay.Len(), all[0].Samples, all[1].Samples)
	}
}

func TestDriverPanics(t *testing.T) {
	game := tictactoe.New()
	for name, f := range map[string]func(){
		"no engines": func() { NewDriver(game, nil, train.NewReplay(10), nil, Config{}) },
		"no replay": func() {
			engines, _, closeAll := testFleet(1, 1, 4)
			defer closeAll()
			NewDriver(game, engines, nil, nil, Config{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestDriverFleetReusesSubtrees runs a round of concurrent games whose
// engines keep persistent sessions: every game's per-move searches after
// move 1 must be partially served from the retained subtree, and the
// budget arithmetic (fresh playouts + reused visits = per-move target)
// must hold in the round aggregate.
func TestDriverFleetReusesSubtrees(t *testing.T) {
	const g, n, playouts = 3, 2, 48
	dev := accel.NewModel(accel.CostModel{
		LaunchLatency:   5 * time.Microsecond,
		BytesPerSample:  36,
		LinkBytesPerSec: 16e9,
		ComputeBase:     10 * time.Microsecond,
	})
	srv := evaluate.NewServer(evaluate.DeviceBackend{Dev: dev}, evaluate.ServerConfig{
		Batch:          g * n,
		FlushDeadline:  500 * time.Microsecond,
		MaxOutstanding: 2 * g * n,
	})
	defer srv.Close()
	engines := make([]mcts.Engine, g)
	for i := 0; i < g; i++ {
		cfg := mcts.DefaultConfig()
		cfg.Playouts = playouts
		cfg.Seed = uint64(i + 1)
		cfg.ReuseTree = true
		cl := srv.NewClient(n)
		defer cl.Close()
		engines[i] = mcts.NewLocal(cfg, cl, n)
		defer engines[i].Close()
	}

	game := tictactoe.New()
	d := NewDriver(game, engines, train.NewReplay(1000), nil, Config{TempMoves: 2, Seed: 9})
	round := d.PlayRound()

	if round.Search.ReusedVisits == 0 {
		t.Fatal("reuse-enabled fleet reported no retained visits")
	}
	if round.Search.ReuseFraction() <= 0 {
		t.Fatalf("reuse fraction = %v", round.Search.ReuseFraction())
	}
	// Retained visits substitute for fresh playouts one-for-one.
	if got := round.Search.Playouts + round.Search.ReusedVisits; got != round.Moves*playouts {
		t.Fatalf("playouts %d + reused %d = %d, want %d",
			round.Search.Playouts, round.Search.ReusedVisits, got, round.Moves*playouts)
	}
}

// TestDriverGameHooks: OnGameStart/OnGameEnd run once per tenant per round,
// bracketing the episode — the seam the model-lifecycle driver uses to pin
// each game to one serving version.
func TestDriverGameHooks(t *testing.T) {
	const games = 3
	engines, _, closeAll := testFleet(games, 2, 12)
	defer closeAll()

	var mu sync.Mutex
	starts := make([]int, games)
	ends := make([]int, games)
	d := NewDriver(tictactoe.New(), engines, train.NewReplay(1024), nil, Config{
		Seed: 5,
		OnGameStart: func(tenant int) {
			mu.Lock()
			starts[tenant]++
			if starts[tenant] != ends[tenant]+1 {
				t.Errorf("tenant %d: start fired with %d starts, %d ends", tenant, starts[tenant], ends[tenant])
			}
			mu.Unlock()
		},
		OnGameEnd: func(tenant int) {
			mu.Lock()
			ends[tenant]++
			if ends[tenant] != starts[tenant] {
				t.Errorf("tenant %d: end fired with %d starts, %d ends", tenant, starts[tenant], ends[tenant])
			}
			mu.Unlock()
		},
	})
	const rounds = 2
	for r := 0; r < rounds; r++ {
		d.PlayRound()
	}
	for i := 0; i < games; i++ {
		if starts[i] != rounds || ends[i] != rounds {
			t.Fatalf("tenant %d hooks fired %d/%d times, want %d/%d", i, starts[i], ends[i], rounds, rounds)
		}
	}
}

// TestDriverGenerateAdaptsRound: the train.Generator adapter mirrors
// PlayRound's aggregates.
func TestDriverGenerateAdaptsRound(t *testing.T) {
	engines, _, closeAll := testFleet(2, 2, 12)
	defer closeAll()
	d := NewDriver(tictactoe.New(), engines, train.NewReplay(1024), nil, Config{Seed: 9})
	gr := d.Generate()
	if gr.Games != 2 {
		t.Fatalf("GenRound.Games = %d, want 2", gr.Games)
	}
	if gr.Moves < 2 || gr.Samples < 2 {
		t.Fatalf("empty round: %+v", gr)
	}
	if d.Replay().Len() != gr.Samples {
		t.Fatalf("replay holds %d samples, round reported %d", d.Replay().Len(), gr.Samples)
	}
}

// TestDriverOnEpisodeHookOrderAndIngest pins the durable-replay seam: the
// OnEpisode hook fires exactly once per tenant, in tenant order, on the
// driver goroutine at the ingest barrier (so a trajectory store sees the
// same deterministic episode sequence the replay ring does), and
// Driver.Ingest routes restored samples through the same augmentation
// path live episodes take.
func TestDriverOnEpisodeHookOrderAndIngest(t *testing.T) {
	const g, n = 4, 2
	engines, _, closeAll := testFleet(g, n, 16)
	defer closeAll()

	replay := train.NewReplay(10000)
	var gotTenants []int
	var gotSamples int
	d := NewDriver(tictactoe.New(), engines, replay, nil, Config{
		TempMoves: 2,
		Seed:      21,
		OnEpisode: func(tenant int, ep *train.EpisodeResult) {
			// Appending without a lock is the point: the hook contract is
			// single-goroutine, and the -race runs of this test enforce it.
			gotTenants = append(gotTenants, tenant)
			gotSamples += len(ep.Samples)
			if ep.Moves != len(ep.Samples) {
				t.Errorf("tenant %d: hook saw %d moves but %d samples", tenant, ep.Moves, len(ep.Samples))
			}
		},
	})
	round := d.PlayRound()

	if len(gotTenants) != g {
		t.Fatalf("hook fired %d times, want once per tenant (%d)", len(gotTenants), g)
	}
	for i, tn := range gotTenants {
		if tn != i {
			t.Fatalf("hook order %v, want tenants in order", gotTenants)
		}
	}
	if gotSamples != round.Samples {
		t.Fatalf("hook saw %d samples, round ingested %d", gotSamples, round.Samples)
	}
	if replay.Len() != round.Samples {
		t.Fatalf("replay holds %d, want %d", replay.Len(), round.Samples)
	}

	// Ingest must go through the same path as live episodes: with an
	// augmenter configured, restored samples multiply like fresh ones.
	aug := doubler{}
	d2 := NewDriver(tictactoe.New(), engines, train.NewReplay(10000), aug, Config{Seed: 22})
	d2.Ingest([]nn.Sample{{Value: 1}, {Value: 2}, {Value: 3}})
	if got := d2.Replay().Len(); got != 6 {
		t.Fatalf("Ingest bypassed augmentation: replay has %d samples, want 6", got)
	}
}

// doubler is a trivial augmenter returning each sample twice.
type doubler struct{}

func (doubler) Augment(s nn.Sample) []nn.Sample { return []nn.Sample{s, s} }
