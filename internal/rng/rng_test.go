package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	var zeroes int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeroes++
		}
	}
	if zeroes > 1 {
		t.Fatalf("zero seed produced degenerate stream (%d zero outputs)", zeroes)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream mirrors parent (%d collisions)", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(12)
	for _, alpha := range []float64{0.3, 0.5, 1, 2, 5} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.GammaFloat64(alpha)
			if v < 0 {
				t.Fatalf("gamma(%v) variate negative: %v", alpha, v)
			}
			sum += v
		}
		mean := sum / n
		if math.Abs(mean-alpha) > 0.05*math.Max(1, alpha) {
			t.Errorf("gamma(%v) mean = %v, want ~%v", alpha, mean, alpha)
		}
	}
}

func TestGammaPanicsOnNonPositiveAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GammaFloat64(0) did not panic")
		}
	}()
	New(1).GammaFloat64(0)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(13)
	if err := quick.Check(func(dimRaw uint8) bool {
		dim := int(dimRaw%30) + 2
		out := make([]float64, dim)
		r.Dirichlet(0.3, out)
		var sum float64
		for _, v := range out {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	for _, n := range []int{0, 1, 2, 17, 225} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestMul64MatchesBigMul(t *testing.T) {
	if err := quick.Check(func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// reference via math/bits-free decomposition: check lo is wrapped
		// product and the identity (a*b) mod 2^64 == lo.
		if lo != a*b {
			return false
		}
		// verify hi by reconstructing with 32-bit limbs independently
		const m = 1<<32 - 1
		al, ah := a&m, a>>32
		bl, bh := b&m, b>>32
		mid := ah*bl + (al*bl)>>32
		mid2 := mid&m + al*bh
		wantHi := ah*bh + mid>>32 + mid2>>32
		return hi == wantHi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(225)
	}
	_ = sink
}
