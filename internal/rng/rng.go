// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the library.
//
// The standard library's math/rand global generator is protected by a mutex,
// which makes it a contention point when many search workers request random
// numbers concurrently (tie-breaking in node selection, Dirichlet root noise,
// synthetic-tree generation). Every component in this repository therefore
// owns a private *rng.Rand seeded explicitly, which also makes experiments
// bit-for-bit reproducible across runs and across machines.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next value.
// SplitMix64 is used both as a seeding mixer and as the stream expander for
// Xoshiro state initialisation, following Blackman & Vigna's recommendation.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. It is NOT safe for concurrent use; give
// each goroutine its own instance (see Split).
type Rand struct {
	s [4]uint64
	// cached second normal variate for NormFloat64 (Box-Muller produces pairs)
	normCached bool
	normVal    float64
}

// New returns a generator seeded from seed. Any seed value, including zero,
// produces a well-mixed non-degenerate state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// It is the supported way to hand child goroutines their own streams.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative random 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo1 := t & mask32
	hi1 := t >> 32
	lo1 += aLo * bHi
	hi = aHi*bHi + hi1 + lo1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate using Box-Muller.
func (r *Rand) NormFloat64() float64 {
	if r.normCached {
		r.normCached = false
		return r.normVal
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	rad := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.normVal = rad * math.Sin(theta)
	r.normCached = true
	return rad * math.Cos(theta)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// GammaFloat64 samples from a Gamma(alpha, 1) distribution using the
// Marsaglia-Tsang method (with Johnk-style boosting for alpha < 1).
// It is used to sample Dirichlet exploration noise at the search root.
func (r *Rand) GammaFloat64(alpha float64) float64 {
	if alpha <= 0 {
		panic("rng: GammaFloat64 requires alpha > 0")
	}
	if alpha < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.GammaFloat64(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a sample from Dirichlet(alpha, ..., alpha) of
// dimension len(out). AlphaZero adds such noise to root priors to guarantee
// exploration during self-play.
func (r *Rand) Dirichlet(alpha float64, out []float64) {
	var sum float64
	for i := range out {
		g := r.GammaFloat64(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
