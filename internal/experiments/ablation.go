package experiments

import (
	"fmt"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/perfmodel"
	"github.com/parmcts/parmcts/internal/simsched"
	"github.com/parmcts/parmcts/internal/stats"
	"github.com/parmcts/parmcts/internal/tree"
)

// AblationVirtualLoss studies the virtual-loss magnitude (Section 2.1: VL
// "can either be a pre-defined constant value or a number tracking visit
// counts"). For each magnitude it runs the shared-tree engine on a
// low-fanout game (tic-tac-toe, where in-flight workers genuinely collide)
// and reports the duplicate-expansion count — rollouts whose DNN
// evaluation was wasted because another worker expanded the same leaf —
// which is precisely the waste virtual loss exists to reduce.
func AblationVirtualLoss(g game.Game, magnitudes []float64, workers, playouts int) *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("Ablation: virtual-loss magnitude (shared tree, %s)", g.Name()),
		"VL", "duplicate expansions", "nodes allocated", "avg depth")
	for _, vl := range magnitudes {
		cfg := mcts.DefaultConfig()
		cfg.Playouts = playouts
		cfg.Tree.VirtualLoss = vl
		// A non-trivial evaluation latency keeps several rollouts in
		// flight simultaneously so virtual loss actually has work to do.
		eng := mcts.NewShared(cfg, workers, &evaluate.Random{Latency: 100 * time.Microsecond})
		dist := make([]float32, g.NumActions())
		stats1 := eng.Search(g.NewInitial(), dist)
		tb.AddRow(vl, eng.Tree().DoubleExpansions(), eng.Tree().Allocated(),
			fmt.Sprintf("%.2f", stats1.AvgDepth()))
	}
	return tb
}

// AblationVLMode contrasts the three virtual-loss semantics on identical
// budgets: none (workers collide freely), the constant penalty (Chaslot et
// al.), and the WU-UCT unobserved-count variant that only inflates visit
// counts.
func AblationVLMode(g game.Game, workers, playouts int) *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("Ablation: virtual-loss semantics (shared tree, %s)", g.Name()),
		"mode", "duplicate expansions", "nodes allocated", "move time")
	for _, mode := range []struct {
		name string
		m    tree.VirtualLossMode
	}{
		{"none", tree.VLNone},
		{"constant", tree.VLConstant},
		{"unobserved (WU-UCT)", tree.VLUnobserved},
	} {
		cfg := mcts.DefaultConfig()
		cfg.Playouts = playouts
		cfg.Tree.VLMode = mode.m
		eng := mcts.NewShared(cfg, workers, &evaluate.Random{Latency: 100 * time.Microsecond})
		dist := make([]float32, g.NumActions())
		s := eng.Search(g.NewInitial(), dist)
		tb.AddRow(mode.name, eng.Tree().DoubleExpansions(), eng.Tree().Allocated(),
			s.Duration.Round(time.Millisecond))
	}
	return tb
}

// AblationInterconnect exercises the conclusion's generality claim ("our
// method and performance models ... can also be adopted in the context of
// many other types of accelerators — FPGAs, ASICs (e.g., TPUs)"): across
// accelerator classes with different launch-cost/compute profiles, the
// optimal sub-batch size B* moves substantially, and Algorithm 4 re-finds
// it each time with the same O(log N) probe budget — no per-device manual
// retuning.
func AblationInterconnect(p LatencyParams, n int) *stats.Table {
	tb := stats.NewTable("Ablation: accelerator class vs optimal batch size",
		"class", "launch", "compute(B)", "B*", "per-iteration", "probes")
	type point struct {
		name      string
		launch    time.Duration
		base, per time.Duration
	}
	points := []point{
		{"RPC-attached fast ASIC", 50 * time.Microsecond, 10 * time.Microsecond, 2 * time.Microsecond},
		{"high-latency link GPU", 100 * time.Microsecond, 5 * time.Microsecond, time.Microsecond},
		{"paper-calibrated GPU", 10 * time.Microsecond, 40 * time.Microsecond, 8 * time.Microsecond},
		{"on-package accelerator", 2 * time.Microsecond, 5 * time.Microsecond, time.Microsecond},
	}
	for _, pt := range points {
		m := p.Accel
		m.LaunchLatency = pt.launch
		m.ComputeBase = pt.base
		m.ComputePerSample = pt.per
		probe := func(b int) time.Duration {
			return simsched.LocalAccel(p.Workload, m, n, b).PerIteration
		}
		bStar, probes := perfmodel.FindMinV(1, n, probe)
		tb.AddRow(pt.name, pt.launch,
			fmt.Sprintf("%v+%v*B", pt.base, pt.per), bStar, probe(bStar), probes)
	}
	return tb
}

// AblationBaselines compares the paper's two tree-parallel schemes against
// the related-work baselines (Section 2.2) on equal real budgets: wall
// clock per move and nodes expanded. Leaf-parallel wastes its K-fold
// evaluations on one leaf (identical with a deterministic DNN);
// root-parallel re-explores the same states in every worker's private
// tree.
func AblationBaselines(g game.Game, workers, playouts int) *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("Ablation: tree-parallel vs related-work baselines (%s)", g.Name()),
		"engine", "move time", "distinct tree nodes", "evaluations")
	eval := &evaluate.Random{Latency: 100 * time.Microsecond}
	dist := make([]float32, g.NumActions())

	run := func(name string, e mcts.Engine, nodes func() int, evals func(mcts.Stats) int) {
		s := e.Search(g.NewInitial(), dist)
		tb.AddRow(name, s.Duration.Round(time.Millisecond), nodes(), evals(s))
		e.Close()
	}

	// Every engine now reports its exact DNN-request count in
	// Stats.Evaluations (leaf-parallel counts all K evaluations per leaf).
	evals := func(s mcts.Stats) int { return s.Evaluations }

	shared := mcts.NewShared(mctsCfg(playouts), workers, eval)
	run("shared tree (Alg.2)", shared,
		func() int { return shared.Tree().Allocated() }, evals)

	pool := evaluate.NewPool(eval, workers)
	local := mcts.NewLocal(mctsCfg(playouts), pool, workers)
	run("local tree (Alg.3)", local,
		func() int { return local.Tree().Allocated() }, evals)
	pool.Close()

	rootPar := mcts.NewRootParallel(mctsCfg(playouts), workers, eval)
	run("root-parallel", rootPar,
		func() int { return -1 }, // W private trees; distinctness not defined
		evals)

	pool2 := evaluate.NewPool(eval, workers)
	leafPar := mcts.NewLeafParallel(mctsCfg(playouts), workers, pool2)
	run(fmt.Sprintf("leaf-parallel (K=%d)", workers), leafPar,
		func() int { return -1 }, evals)
	pool2.Close()

	return tb
}

func mctsCfg(playouts int) mcts.Config {
	cfg := mcts.DefaultConfig()
	cfg.Playouts = playouts
	return cfg
}
