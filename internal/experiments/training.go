package experiments

import (
	"fmt"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/adaptive"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	_ "github.com/parmcts/parmcts/internal/game/games" // link the scenario catalogue
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/stats"
	"github.com/parmcts/parmcts/internal/train"
)

// TrainingScale sizes the real-execution training experiments (Figures 6
// and 7). The paper trains Gomoku 15x15 with 1600 playouts/move on 64
// cores; the defaults here are scaled so the experiments complete on a
// laptop in minutes while exercising the identical pipeline. Pass larger
// values (and e.g. Game "gomoku:15") to approach the paper's
// configuration, or any other registered scenario spec ("othello",
// "hex:11") to measure a different workload.
type TrainingScale struct {
	Game          string // registered game spec (default "gomoku:9")
	Playouts      int    // per-move budget (paper: 1600)
	Episodes      int    // self-play games per configuration
	SGDIterations int    // updates per episode
	BatchSize     int    // SGD mini-batch
	TempMoves     int    // exploration temperature horizon
	TinyNet       bool
	Seed          uint64
	// Backend names the registered accel backend serving the accelerator
	// platform ("" = "hosted"). "hosted-quantized" quantizes the network
	// on the fly, calibrated on random-playout positions of the scenario.
	Backend string
	// TransposeSize > 0 gives each engine a transposition-sharing DAG
	// search with that entry budget (0 = classic tree search).
	TransposeSize int
}

// DefaultTrainingScale returns a configuration that runs in seconds.
func DefaultTrainingScale() TrainingScale {
	return TrainingScale{
		Game:          "gomoku:9",
		Playouts:      48,
		Episodes:      2,
		SGDIterations: 4,
		BatchSize:     32,
		TempMoves:     4,
		TinyNet:       true,
		Seed:          1,
	}
}

// game instantiates the configured scenario.
func (sc TrainingScale) game() (game.Game, error) {
	spec := sc.Game
	if spec == "" {
		spec = "gomoku:9"
	}
	return game.NewFromSpec(spec)
}

func (sc TrainingScale) network(g game.Game) *nn.Network {
	c, h, w := g.EncodedShape()
	if sc.TinyNet {
		return nn.MustNew(nn.TinyConfig(c, h, w, g.NumActions()), rng.New(sc.Seed))
	}
	return nn.MustNew(nn.GomokuConfig(c, h, w, g.NumActions()), rng.New(sc.Seed))
}

func (sc TrainingScale) trainerConfig(g game.Game) train.TrainerConfig {
	return train.TrainerConfig{
		Episodes:      sc.Episodes,
		SGDIterations: sc.SGDIterations,
		BatchSize:     sc.BatchSize,
		LR:            0.01,
		Momentum:      0.9,
		WeightDecay:   1e-4,
		TempMoves:     sc.TempMoves,
		Augmenter:     train.AugmenterFor(g),
		Seed:          sc.Seed,
	}
}

// CalibrationInputs generates n encoded positions from seeded
// uniform-random playouts of g — on-distribution activations for int8
// calibration when no replay buffer exists yet (experiment drivers quantize
// a freshly initialised network before any self-play has run).
func CalibrationInputs(g game.Game, n int, seed uint64) [][]float32 {
	r := rng.New(seed)
	c, h, w := g.EncodedShape()
	ln := c * h * w
	out := make([][]float32, 0, n)
	var legal []int
	for len(out) < n {
		st := g.NewInitial()
		for !st.Terminal() && len(out) < n {
			in := make([]float32, ln)
			st.Encode(in)
			out = append(out, in)
			legal = st.LegalMoves(legal[:0])
			st.Play(legal[r.Intn(len(legal))])
		}
	}
	return out
}

// buildEngine assembles the adaptively-configured engine for N workers on
// the requested platform, sharing the network for both search and training.
func buildEngine(sc TrainingScale, g game.Game, net *nn.Network, n int, useAccel bool) (*adaptive.Engine, error) {
	search := mcts.DefaultConfig()
	search.Playouts = sc.Playouts
	search.DirichletAlpha = 0.3
	search.NoiseFrac = 0.25
	search.Seed = sc.Seed
	search.TransposeSize = sc.TransposeSize
	opts := adaptive.Options{
		Search:          search,
		Workers:         n,
		ProfilePlayouts: 200,
		DNNProfileIters: 5,
	}
	if useAccel {
		c, h, w := g.EncodedShape()
		cost := PaperShapedParams(sc.Playouts).Accel
		cost.BytesPerSample = c * h * w * 4
		name := sc.Backend
		if name == "" {
			name = "hosted"
		}
		spec := accel.BackendSpec{Net: net, Cost: cost}
		if name == "hosted-quantized" {
			qnet, err := nn.Quantize(net, CalibrationInputs(g, 64, sc.Seed))
			if err != nil {
				return nil, err
			}
			spec.Quant = qnet
		}
		dev, err := accel.NewBackend(name, spec)
		if err != nil {
			return nil, err
		}
		opts.Platform = adaptive.PlatformAccel
		opts.Device = dev
		opts.DeviceCost = cost
	} else {
		opts.Platform = adaptive.PlatformCPU
		opts.Evaluator = evaluate.NewNN(net)
	}
	return adaptive.Configure(g, opts)
}

// Figure6Throughput regenerates Figure 6: end-to-end training throughput
// (processed samples per second) across worker counts, on the CPU-only and
// (optionally) the accelerator platform, each under the adaptive
// configuration. One sample = one move's 1600-playout search, matching the
// paper's metric.
func Figure6Throughput(sc TrainingScale, ns []int, platforms []bool) *stats.Table {
	g, err := sc.game()
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	tb := stats.NewTable(fmt.Sprintf("Figure 6: training throughput under optimal configurations (%s)", sc.Game),
		"platform", "N", "scheme", "samples/s", "search time", "train time")
	for _, useAccel := range platforms {
		platform := "cpu"
		if useAccel {
			platform = "cpu-gpu"
		}
		for _, n := range ns {
			net := sc.network(g)
			eng, err := buildEngine(sc, g, net, n, useAccel)
			if err != nil {
				tb.AddRow(platform, n, "error", err.Error(), "", "")
				continue
			}
			tr := train.NewTrainer(g, eng, net, sc.trainerConfig(g))
			all := tr.Run(nil)
			eng.Close()
			var samples int
			var searchT, trainT float64
			for _, s := range all {
				samples += s.SamplesProcessed
				searchT += s.SearchTime.Seconds()
				trainT += s.TrainTime.Seconds()
			}
			throughput := 0.0
			if searchT+trainT > 0 {
				throughput = float64(samples) / (searchT + trainT)
			}
			tb.AddRow(platform, n, eng.Decision.Choice.Scheme.String(),
				fmt.Sprintf("%.2f", throughput),
				fmt.Sprintf("%.2fs", searchT), fmt.Sprintf("%.2fs", trainT))
		}
	}
	return tb
}

// Figure7Loss regenerates Figure 7: the Equation 2 loss over wall-clock
// time for several worker counts, each under its optimal configuration.
// Rows carry (N, episode, elapsed, value loss, policy loss, total).
func Figure7Loss(sc TrainingScale, ns []int, useAccel bool) *stats.Table {
	g, err := sc.game()
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	tb := stats.NewTable(fmt.Sprintf("Figure 7: DNN loss over time under optimal parallel configurations (%s)", sc.Game),
		"N", "episode", "elapsed", "value loss", "policy loss", "total loss")
	for _, n := range ns {
		net := sc.network(g)
		eng, err := buildEngine(sc, g, net, n, useAccel)
		if err != nil {
			tb.AddRow(n, "error", err.Error(), "", "", "")
			continue
		}
		tr := train.NewTrainer(g, eng, net, sc.trainerConfig(g))
		for _, s := range tr.Run(nil) {
			tb.AddRow(n, s.Episode, s.Elapsed.Round(1e6),
				s.Loss.ValueLoss, s.Loss.PolicyLoss, s.Loss.TotalLoss())
		}
		eng.Close()
	}
	return tb
}
