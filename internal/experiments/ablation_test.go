package experiments

import (
	"strings"
	"testing"

	"github.com/parmcts/parmcts/internal/game/gomoku"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
)

func TestAblationVirtualLossDiversity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real shared-tree searches")
	}
	tb := AblationVirtualLoss(tictactoe.New(), []float64{0, 1, 4}, 4, 150)
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(tb.CSV()), "\n")[1:]
	for _, line := range lines {
		cells := strings.Split(line, ",")
		if len(cells) != 4 {
			t.Fatalf("bad row %q", line)
		}
		nodes, err := atoi(cells[2])
		if err != nil {
			t.Fatal(err)
		}
		if nodes < 10 {
			t.Fatalf("search barely expanded the tree: %s", line)
		}
	}
}

func TestAblationVLModeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real shared-tree searches")
	}
	tb := AblationVLMode(tictactoe.New(), 4, 120)
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	for _, want := range []string{"none", "constant", "unobserved"} {
		if !strings.Contains(tb.String(), want) {
			t.Fatalf("missing mode %q", want)
		}
	}
}

func TestAblationInterconnectShiftsOptimum(t *testing.T) {
	p := PaperShapedParams(1600)
	tb := AblationInterconnect(p, 64)
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// Distinct accelerator classes must yield at least three distinct
	// optimal batch sizes — the point of re-running Algorithm 4 per device.
	lines := strings.Split(strings.TrimSpace(tb.CSV()), "\n")[1:]
	distinct := map[string]bool{}
	for _, line := range lines {
		cells := strings.Split(line, ",")
		if len(cells) != 6 {
			t.Fatalf("bad row %q", line)
		}
		distinct[cells[3]] = true
		probes, err := atoi(cells[5])
		if err != nil {
			t.Fatal(err)
		}
		if probes > 16 {
			t.Fatalf("probes = %d, want O(log 64)", probes)
		}
	}
	if len(distinct) < 3 {
		t.Fatalf("only %d distinct B* values across classes: %v", len(distinct), distinct)
	}
}

func TestAblationBaselinesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four engines")
	}
	tb := AblationBaselines(gomoku.NewSized(9), 4, 80)
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"shared tree", "local tree", "root-parallel", "leaf-parallel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing engine %q:\n%s", want, out)
		}
	}
}
