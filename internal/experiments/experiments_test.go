package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/perfmodel"
	"github.com/parmcts/parmcts/internal/simsched"
)

func TestPaperShapedParamsReproduceFigure5Orderings(t *testing.T) {
	// The central reproduction claim: with the calibrated parameters the
	// simulator reproduces the paper's Figure 5 scheme orderings —
	// shared ahead at N=16, tuned local ahead at N=32 and 64, and the
	// full-batch local baseline degrading past N=16.
	p := PaperShapedParams(1600)
	bestLocal := func(n int) (time.Duration, int) {
		probe := func(b int) time.Duration {
			return simsched.LocalAccel(p.Workload, p.Accel, n, b).PerIteration
		}
		b, _ := perfmodel.FindMinV(1, n, probe)
		return probe(b), b
	}
	s16 := simsched.SharedAccel(p.Workload, p.Accel, 16).PerIteration
	l16, _ := bestLocal(16)
	if s16 > l16 {
		t.Errorf("N=16: shared (%v) should beat tuned local (%v)", s16, l16)
	}
	for _, n := range []int{32, 64} {
		s := simsched.SharedAccel(p.Workload, p.Accel, n).PerIteration
		l, b := bestLocal(n)
		if l >= s {
			t.Errorf("N=%d: tuned local (%v @ B=%d) should beat shared (%v)", n, l, b, s)
		}
		if b <= 1 || b >= n {
			t.Errorf("N=%d: optimal batch %d should be interior", n, b)
		}
	}
	// Full-batch local at 64 must be worse than at 16/32 per-iteration
	// terms relative to the tuned value (the Figure 5 observation that
	// fixed-batch local latency rises past N=16).
	full64 := simsched.LocalAccel(p.Workload, p.Accel, 64, 64).PerIteration
	tuned64, _ := bestLocal(64)
	if full64 <= tuned64 {
		t.Errorf("N=64: full batch (%v) should lose to tuned batch (%v)", full64, tuned64)
	}
}

func TestPaperShapedParamsReproduceFigure4Crossover(t *testing.T) {
	p := PaperShapedParams(1600)
	l2 := simsched.LocalCPU(p.Workload, 2).PerIteration
	s2 := simsched.SharedCPU(p.Workload, 2).PerIteration
	if l2 > s2 {
		t.Errorf("N=2: local (%v) should beat shared (%v)", l2, s2)
	}
	l64 := simsched.LocalCPU(p.Workload, 64).PerIteration
	s64 := simsched.SharedCPU(p.Workload, 64).PerIteration
	if s64 > l64 {
		t.Errorf("N=64: shared (%v) should beat local (%v)", s64, l64)
	}
}

func TestFigure3TableShape(t *testing.T) {
	p := PaperShapedParams(400)
	tb := Figure3BatchSweep(p, []int{16, 32})
	if tb.NumRows() != 16+32 {
		t.Fatalf("rows = %d, want 48", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "Figure 3") {
		t.Fatal("title missing")
	}
}

func TestOptimalBatchProbeComplexity(t *testing.T) {
	p := PaperShapedParams(400)
	tb := OptimalBatch(p, []int{16, 32, 64})
	s := tb.CSV()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// N=64 row: Alg.4 probes must be far under the 64 linear probes.
	var n, b, probes, lin int
	var dur string
	if _, err := parseCSVRow(lines[3], &n, &b, &dur, &probes, &lin); err != nil {
		t.Fatal(err)
	}
	if lin != 64 {
		t.Fatalf("linear probes = %d", lin)
	}
	if probes > 16 {
		t.Fatalf("Alg.4 probes = %d, want O(log 64)", probes)
	}
}

func parseCSVRow(line string, n, b *int, dur *string, probes, lin *int) (int, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 5 {
		return 0, &csvErr{line}
	}
	var err error
	*n, err = atoi(parts[0])
	if err != nil {
		return 0, err
	}
	*b, err = atoi(parts[1])
	if err != nil {
		return 0, err
	}
	*dur = parts[2]
	*probes, err = atoi(parts[3])
	if err != nil {
		return 0, err
	}
	*lin, err = atoi(parts[4])
	return 5, err
}

type csvErr struct{ line string }

func (e *csvErr) Error() string { return "bad csv row: " + e.line }

func atoi(s string) (int, error) {
	v := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, &csvErr{s}
		}
		v = v*10 + int(c-'0')
	}
	return v, nil
}

func TestFigure4TableAdaptiveIsMin(t *testing.T) {
	p := PaperShapedParams(800)
	for _, n := range DefaultWorkerCounts {
		local := simsched.LocalCPU(p.Workload, n).PerIteration
		shared := simsched.SharedCPU(p.Workload, n).PerIteration
		choice := perfmodel.ConfigureCPU(perfmodel.Params{
			TSelect:       p.Workload.TSelect,
			TBackup:       p.Workload.TBackup,
			TDNNCPU:       p.Workload.TDNNCPU,
			TSharedAccess: p.Workload.TSharedAccess,
		}, n)
		adaptive := local
		if choice.Scheme == perfmodel.SchemeShared {
			adaptive = shared
		}
		best := local
		if shared < best {
			best = shared
		}
		// The model-driven choice must be within 25% of the simulated
		// optimum at every N (the models are approximations; Section 4.2).
		if float64(adaptive) > 1.25*float64(best) {
			t.Errorf("N=%d: adaptive %v vs best %v — model mispredicts badly", n, adaptive, best)
		}
	}
	tb := Figure4LatencyCPU(p, DefaultWorkerCounts)
	if tb.NumRows() != len(DefaultWorkerCounts) {
		t.Fatalf("rows = %d", tb.NumRows())
	}
}

func TestFigure5TableShape(t *testing.T) {
	p := PaperShapedParams(800)
	tb := Figure5LatencyGPU(p, []int{16, 32, 64})
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "B*") {
		t.Fatal("missing tuned-batch column")
	}
}

func TestHeadlineSpeedupsAtLeastOne(t *testing.T) {
	p := PaperShapedParams(800)
	tb := HeadlineSpeedups(p, []int{2, 16, 64})
	out := tb.CSV()
	if !strings.Contains(out, "max@N=") {
		t.Fatalf("missing max rows:\n%s", out)
	}
	// Adaptive is the min of the schemes, so every ratio must be >= 1.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		parts := strings.Split(line, ",")
		for _, cell := range parts[2:] {
			cell = strings.TrimSuffix(cell, "x")
			if cell == "" {
				continue
			}
			var v float64
			if _, err := sscanFloat(cell, &v); err != nil {
				continue
			}
			if v < 0.999 {
				t.Fatalf("speedup below 1 in row %q", line)
			}
		}
	}
}

func sscanFloat(s string, v *float64) (int, error) {
	var whole, frac float64
	var seenDot bool
	div := 1.0
	for _, c := range s {
		switch {
		case c == '.':
			seenDot = true
		case c >= '0' && c <= '9':
			if seenDot {
				div *= 10
				frac += float64(c-'0') / div
			} else {
				whole = whole*10 + float64(c-'0')
			}
		default:
			return 0, &csvErr{s}
		}
	}
	*v = whole + frac
	return 1, nil
}

func TestPhaseSplitMatchesPaperClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network profiling")
	}
	// Small board keeps the runtime down; the DNN still dominates.
	tb, evalShare := PhaseSplit(9, 60)
	if tb.NumRows() != 4 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if evalShare < 0.5 {
		t.Fatalf("DNN evaluation share = %.2f, expected the dominant cost", evalShare)
	}
}

func TestFigure6And7SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("real training run")
	}
	sc := DefaultTrainingScale()
	sc.Game = "gomoku:7"
	sc.Playouts = 16
	sc.Episodes = 1
	sc.SGDIterations = 1
	tb6 := Figure6Throughput(sc, []int{1, 2}, []bool{false})
	if tb6.NumRows() != 2 {
		t.Fatalf("fig6 rows = %d", tb6.NumRows())
	}
	if strings.Contains(tb6.CSV(), "error") {
		t.Fatalf("fig6 errors:\n%s", tb6.String())
	}
	tb7 := Figure7Loss(sc, []int{2}, false)
	if tb7.NumRows() != 1 {
		t.Fatalf("fig7 rows = %d", tb7.NumRows())
	}
	if strings.Contains(tb7.CSV(), "error") {
		t.Fatalf("fig7 errors:\n%s", tb7.String())
	}
}

func TestHostMeasuredParams(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles the real network")
	}
	p := HostMeasuredParams(100, 9)
	if p.Workload.TSelect <= 0 || p.Workload.TDNNCPU <= 0 {
		t.Fatalf("profiling produced non-positive latencies: %+v", p.Workload)
	}
}
