package experiments

import (
	"fmt"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/stats"
	"github.com/parmcts/parmcts/internal/tree"
)

// TransDemand is one TranspositionDemand measurement: the aggregated
// search stats over every move played, the table's own counters (zero
// when the table was off), and the number of moves searched.
type TransDemand struct {
	Search mcts.Stats
	Table  tree.TransStats
	Moves  int
}

// EvalsPerMove is the headline demand metric: DNN forward passes per
// searched move.
func (d TransDemand) EvalsPerMove() float64 {
	if d.Moves == 0 {
		return 0
	}
	return float64(d.Search.Evaluations) / float64(d.Moves)
}

// TranspositionDemand measures the DNN eval demand of self-play with and
// without transposition sharing: it plays `games` sequential self-play
// games of up to `moves` moves each on g with the serial engine and
// returns the aggregated search stats plus the table's own counters. With
// size > 0 one shared table persists across all games — the fleet
// configuration — so later games are also served positions discovered by
// earlier ones (openings especially). Moves are temperature-sampled for
// the first few plies and greedy afterwards, from a seeded stream, so the
// measurement is reproducible.
func TranspositionDemand(g game.Game, playouts, games, moves, size int, seed uint64) TransDemand {
	cfg := mcts.DefaultConfig()
	cfg.Playouts = playouts
	var tt *tree.TransTable
	if size > 0 {
		tt = tree.NewTransTable(size)
		cfg.TransposeTable = tt
	}
	var d TransDemand
	for gi := 0; gi < games; gi++ {
		cfg.Seed = seed + uint64(gi)
		eng := mcts.NewSerial(cfg, &evaluate.Random{})
		r := rng.New(seed + 1000 + uint64(gi))
		st := g.NewInitial()
		dist := make([]float32, g.NumActions())
		for mv := 0; mv < moves && !st.Terminal(); mv++ {
			s := eng.Search(st, dist)
			d.Search.Add(s)
			d.Moves++
			a := pickMove(dist, r, mv < 4)
			eng.Advance(a)
			st = st.Clone()
			st.Play(a)
		}
		eng.Close()
	}
	if tt != nil {
		d.Table = tt.Stats()
	}
	return d
}

// pickMove samples an action from the visit distribution (exploration
// plies) or takes the argmax (the rest).
func pickMove(dist []float32, r *rng.Rand, sample bool) int {
	if sample {
		x := r.Float32()
		var acc float32
		for a, p := range dist {
			acc += p
			if x < acc && p > 0 {
				return a
			}
		}
	}
	best, bp := -1, float32(-1)
	for a, p := range dist {
		if p > bp {
			best, bp = a, p
		}
	}
	return best
}

// AblationTranspose reports the eval-demand reduction from the
// transposition table on a set of games: total DNN evaluations for the
// same self-play schedule with the table off and on, the per-move demand,
// and the table's hit rate. The reduction is the paper-style headline for
// the DAG search: transposed lines are served from shared statistics
// instead of re-querying the network.
func AblationTranspose(gs []game.Game, playouts, games, moves, size int) *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("Ablation: transposition table eval demand (%d games x %d moves, %d playouts/move)",
		games, moves, playouts),
		"game", "evals (off)", "evals (on)", "reduction", "evals/move (on)", "trans hits", "hit rate")
	for _, g := range gs {
		off := TranspositionDemand(g, playouts, games, moves, 0, 1)
		on := TranspositionDemand(g, playouts, games, moves, size, 1)
		reduction := 0.0
		if off.Search.Evaluations > 0 {
			reduction = 1 - float64(on.Search.Evaluations)/float64(off.Search.Evaluations)
		}
		tb.AddRow(g.Name(), off.Search.Evaluations, on.Search.Evaluations,
			fmt.Sprintf("%.1f%%", 100*reduction),
			fmt.Sprintf("%.1f", on.EvalsPerMove()),
			on.Search.TransHits,
			fmt.Sprintf("%.2f", on.Table.HitRate()))
	}
	return tb
}
