// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each generator returns a stats.Table whose rows
// mirror the corresponding figure's series; the cmd/ binaries and the root
// bench_test.go are thin wrappers over these functions, and EXPERIMENTS.md
// records their output next to the paper's numbers.
//
// Two parameter sources exist:
//
//   - HostMeasuredParams profiles the current host (Section 4.2 workflow)
//     and is what a user reproducing on their own machine wants.
//   - PaperShapedParams fixes the profiled quantities to magnitudes
//     representative of the paper's 64-core + A6000 platform, so the
//     figures' crossovers land inside the N in [1,64] range regardless of
//     the host. The latency figures are then produced by the deterministic
//     timeline simulator (internal/simsched), because wall-clock
//     re-measurement of 64-way parallelism requires 64 cores.
package experiments

import (
	"fmt"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/game/gomoku"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/perfmodel"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/simsched"
	"github.com/parmcts/parmcts/internal/stats"
)

// LatencyParams bundles everything the latency experiments need.
type LatencyParams struct {
	Workload simsched.Workload
	Accel    accel.CostModel
}

// PaperShapedParams returns the calibrated parameter set. The in-tree and
// CPU-inference latencies are of the order measured for Gomoku 15x15 with
// the 5-conv+3-FC network; the accelerator model is calibrated so that the
// scheme orderings of Figures 3-5 (shared ahead at N=16, tuned local ahead
// at N=32/64, interior optimum for B) are reproduced.
func PaperShapedParams(playouts int) LatencyParams {
	if playouts <= 0 {
		playouts = 1600
	}
	return LatencyParams{
		Workload: simsched.Workload{
			TSelect:       4 * time.Microsecond,
			TBackup:       2 * time.Microsecond,
			TDNNCPU:       150 * time.Microsecond,
			TSharedAccess: 500 * time.Nanosecond,
			Playouts:      playouts,
		},
		Accel: accel.CostModel{
			LaunchLatency:    10 * time.Microsecond,
			BytesPerSample:   4 * 15 * 15 * 4,
			LinkBytesPerSec:  16e9,
			ComputeBase:      40 * time.Microsecond,
			ComputePerSample: 8 * time.Microsecond,
		},
	}
}

// HostMeasuredParams runs the Section 4.2 profiling on the current host
// against the real Gomoku network and returns measured parameters,
// keeping the calibrated accelerator model (no accelerator exists to
// measure).
func HostMeasuredParams(playouts, boardSize int) LatencyParams {
	if boardSize <= 0 {
		boardSize = 15
	}
	return HostMeasuredParamsFor(playouts, gomoku.NewSized(boardSize))
}

// HostMeasuredParamsFor is HostMeasuredParams for any registered scenario:
// the synthetic in-tree profile takes the game's fanout and depth limit,
// and T_DNN is measured on a paper-shaped network with the game's encoded
// input and action space — so the performance model sees the workload the
// -game flag selected, not Gomoku's.
func HostMeasuredParamsFor(playouts int, g game.Game) LatencyParams {
	if playouts <= 0 {
		playouts = 1600
	}
	prof := perfmodel.ProfileInTree(perfmodel.SyntheticSpec{
		Fanout:     g.NumActions(),
		DepthLimit: g.MaxGameLength(),
		Playouts:   playouts,
		Seed:       1,
	})
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.GomokuConfig(c, h, w, g.NumActions()), rng.New(1))
	tdnn := perfmodel.ProfileDNN(evaluate.NewNN(net), c*h*w, g.NumActions(), 10)
	p := PaperShapedParams(playouts)
	p.Workload.TSelect = prof.TSelect
	p.Workload.TBackup = prof.TBackup
	p.Workload.TDNNCPU = tdnn
	return p
}

// DefaultWorkerCounts is the N sweep of Figures 4-6.
var DefaultWorkerCounts = []int{1, 2, 4, 8, 16, 32, 64}

// Figure3BatchSweep regenerates Figure 3: the amortized per-iteration
// latency of the local-tree scheme on the accelerator platform as a
// function of the communication batch size B, for N in ns (the paper plots
// N = 16, 32, 64; it explores B only for N >= 16, where the question of an
// alternative batch size arises).
func Figure3BatchSweep(p LatencyParams, ns []int) *stats.Table {
	tb := stats.NewTable("Figure 3: local-tree CPU-GPU per-iteration latency vs batch size B",
		"N", "B", "per-iteration", "batches")
	for _, n := range ns {
		for b := 1; b <= n; b++ {
			res := simsched.LocalAccel(p.Workload, p.Accel, n, b)
			tb.AddRow(n, b, res.PerIteration, res.Batches)
		}
	}
	return tb
}

// OptimalBatch reports argmin_B and the probe count for each N, comparing
// Algorithm 4 against the naive linear sweep (the Section 4.2 complexity
// claim).
func OptimalBatch(p LatencyParams, ns []int) *stats.Table {
	tb := stats.NewTable("Algorithm 4: optimal batch size search",
		"N", "best B (Alg.4)", "per-iteration", "probes (Alg.4)", "probes (linear)")
	for _, n := range ns {
		probe := func(b int) time.Duration {
			return simsched.LocalAccel(p.Workload, p.Accel, n, b).PerIteration
		}
		bStar, probes := perfmodel.FindMinV(1, n, probe)
		_, linProbes := perfmodel.ArgminLinear(1, n, probe)
		tb.AddRow(n, bStar, probe(bStar), probes, linProbes)
	}
	return tb
}

// Figure4LatencyCPU regenerates Figure 4: per-worker-iteration latency on
// the CPU-only platform for the local-tree and shared-tree schemes and the
// adaptive choice, across worker counts.
func Figure4LatencyCPU(p LatencyParams, ns []int) *stats.Table {
	tb := stats.NewTable("Figure 4: iteration latency, CPU-only",
		"N", "local", "shared", "adaptive", "chosen")
	for _, n := range ns {
		local := simsched.LocalCPU(p.Workload, n).PerIteration
		shared := simsched.SharedCPU(p.Workload, n).PerIteration
		choice := perfmodel.ConfigureCPU(perfmodel.Params{
			TSelect:       p.Workload.TSelect,
			TBackup:       p.Workload.TBackup,
			TDNNCPU:       p.Workload.TDNNCPU,
			TSharedAccess: p.Workload.TSharedAccess,
		}, n)
		adaptive := local
		if choice.Scheme == perfmodel.SchemeShared {
			adaptive = shared
		}
		tb.AddRow(n, local, shared, adaptive, choice.Scheme.String())
	}
	return tb
}

// Figure5LatencyGPU regenerates Figure 5: per-worker-iteration latency on
// the CPU-GPU platform. The shared scheme uses full batches (B=N); the
// local baseline uses full batches too (what a fixed implementation without
// the batch search would do); "local B*" applies Algorithm 4; adaptive
// picks the best of shared and tuned local, as the design configuration
// workflow does.
func Figure5LatencyGPU(p LatencyParams, ns []int) *stats.Table {
	tb := stats.NewTable("Figure 5: iteration latency, CPU-GPU batched inference",
		"N", "local (B=N)", "shared (B=N)", "local (B*)", "B*", "adaptive", "chosen")
	for _, n := range ns {
		localFull := simsched.LocalAccel(p.Workload, p.Accel, n, n).PerIteration
		shared := simsched.SharedAccel(p.Workload, p.Accel, n).PerIteration
		probe := func(b int) time.Duration {
			return simsched.LocalAccel(p.Workload, p.Accel, n, b).PerIteration
		}
		bStar, _ := perfmodel.FindMinV(1, n, probe)
		localStar := probe(bStar)
		adaptive := localStar
		chosen := "local"
		if shared < localStar {
			adaptive = shared
			chosen = "shared"
		}
		tb.AddRow(n, localFull, shared, localStar, bStar, adaptive, chosen)
	}
	return tb
}

// HeadlineSpeedups derives the paper's headline claim (up to 1.5x CPU /
// 3.07x CPU-GPU over fixed schemes) from the Figure 4/5 data: for each N,
// the ratio of the worse fixed scheme to the adaptive choice, and its
// maximum over N.
func HeadlineSpeedups(p LatencyParams, ns []int) *stats.Table {
	tb := stats.NewTable("Headline: adaptive speedup over fixed schemes",
		"platform", "N", "vs local", "vs shared", "max")
	addRows := func(platform string, local, shared, adaptive func(n int) time.Duration) {
		var maxRatio float64
		var maxN int
		for _, n := range ns {
			l, s, a := local(n), shared(n), adaptive(n)
			rl := float64(l) / float64(a)
			rs := float64(s) / float64(a)
			worst := rl
			if rs > worst {
				worst = rs
			}
			if worst > maxRatio {
				maxRatio, maxN = worst, n
			}
			tb.AddRow(platform, n,
				fmt.Sprintf("%.2fx", rl), fmt.Sprintf("%.2fx", rs),
				fmt.Sprintf("%.2fx", worst))
		}
		tb.AddRow(platform, fmt.Sprintf("max@N=%d", maxN), "", "",
			fmt.Sprintf("%.2fx", maxRatio))
	}
	cpuLocal := func(n int) time.Duration { return simsched.LocalCPU(p.Workload, n).PerIteration }
	cpuShared := func(n int) time.Duration { return simsched.SharedCPU(p.Workload, n).PerIteration }
	cpuAdaptive := func(n int) time.Duration {
		l, s := cpuLocal(n), cpuShared(n)
		if l < s {
			return l
		}
		return s
	}
	addRows("cpu", cpuLocal, cpuShared, cpuAdaptive)

	gpuLocalFull := func(n int) time.Duration {
		return simsched.LocalAccel(p.Workload, p.Accel, n, n).PerIteration
	}
	gpuShared := func(n int) time.Duration {
		return simsched.SharedAccel(p.Workload, p.Accel, n).PerIteration
	}
	gpuAdaptive := func(n int) time.Duration {
		probe := func(b int) time.Duration {
			return simsched.LocalAccel(p.Workload, p.Accel, n, b).PerIteration
		}
		bStar, _ := perfmodel.FindMinV(1, n, probe)
		best := probe(bStar)
		if s := gpuShared(n); s < best {
			best = s
		}
		return best
	}
	addRows("cpu-gpu", gpuLocalFull, gpuShared, gpuAdaptive)
	return tb
}

// PhaseSplit reproduces the Section 2.1 profiling claim: in serial
// DNN-MCTS, the tree-based search stage (selection + expansion + backup +
// inference, i.e. everything but DNN *training*) accounts for >85% of an
// iteration's runtime; within a move, the split between in-tree operations
// and inference is also reported. It runs the real serial engine on a real
// Gomoku network. Returns the table and the DNN-evaluation share of the
// move time.
func PhaseSplit(boardSize, playouts int) (*stats.Table, float64) {
	return PhaseSplitFor(gomoku.NewSized(boardSize), playouts)
}

// PhaseSplitFor is PhaseSplit for any registered scenario.
func PhaseSplitFor(g game.Game, playouts int) (*stats.Table, float64) {
	c, h, w := g.EncodedShape()
	net := nn.MustNew(nn.GomokuConfig(c, h, w, g.NumActions()), rng.New(1))
	cfg := mcts.DefaultConfig()
	cfg.Playouts = playouts
	cfg.Profile = true
	engine := mcts.NewSerial(cfg, evaluate.NewNN(net))
	st := g.NewInitial()
	dist := make([]float32, g.NumActions())
	s := engine.Search(st, dist)
	total := s.SelectTime + s.ExpandTime + s.BackupTime + s.EvalTime
	tb := stats.NewTable("Section 2.1: serial tree-based search phase split",
		"phase", "time", "share")
	frac := func(d time.Duration) string {
		return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total))
	}
	tb.AddRow("selection", s.SelectTime, frac(s.SelectTime))
	tb.AddRow("expansion", s.ExpandTime, frac(s.ExpandTime))
	tb.AddRow("backup", s.BackupTime, frac(s.BackupTime))
	tb.AddRow("DNN evaluation", s.EvalTime, frac(s.EvalTime))
	return tb, float64(s.EvalTime) / float64(total)
}
