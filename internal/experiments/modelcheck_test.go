package experiments

import (
	"strings"
	"testing"
)

func TestModelAccuracyAgreesOnChoices(t *testing.T) {
	p := PaperShapedParams(1600)
	tb := ModelAccuracy(p, []int{1, 4, 16, 64})
	lines := strings.Split(strings.TrimSpace(tb.CSV()), "\n")[1:]
	if len(lines) != 4+3 { // 4 cpu rows + 3 gpu rows (N>=2)
		t.Fatalf("rows = %d", len(lines))
	}
	var cpuDisagree, gpuDisagree int
	for _, line := range lines {
		cells := strings.Split(line, ",")
		if cells[len(cells)-1] == "true" {
			continue
		}
		if cells[0] == "cpu" {
			cpuDisagree++
		} else {
			gpuDisagree++
		}
	}
	// CPU side: Equations 3/5 track the timelines closely; at most one
	// crossover-adjacent disagreement is tolerable.
	if cpuDisagree > 1 {
		t.Fatalf("CPU model disagrees with simulation on %d points:\n%s",
			cpuDisagree, tb.String())
	}
	// GPU side: Equation 6's max() form ignores pipeline bubbles and
	// sub-batch compute serialization, so it is systematically optimistic
	// for the local scheme — which is exactly why Section 4.2 bases the
	// GPU-side decision on *test runs* (Algorithm 4), as ConfigureGPU
	// does. We only require that it does not mispredict everywhere.
	if gpuDisagree > 2 {
		t.Fatalf("GPU model disagrees with simulation on all %d points:\n%s",
			gpuDisagree, tb.String())
	}
}
