package experiments

import (
	"fmt"
	"time"

	"github.com/parmcts/parmcts/internal/perfmodel"
	"github.com/parmcts/parmcts/internal/simsched"
	"github.com/parmcts/parmcts/internal/stats"
)

// ModelAccuracy validates the Section 4.2 claim that the design-time
// profiled latencies "provide a close prediction for the actual latencies
// at run time": it compares the closed-form per-iteration predictions of
// Equations 3-6 against the discrete-event timeline simulation across
// worker counts, reporting the relative error and — more importantly —
// whether the model and the simulation agree on the *scheme choice*, which
// is all the compile-time decision actually consumes.
func ModelAccuracy(p LatencyParams, ns []int) *stats.Table {
	tb := stats.NewTable("Model validation: Equations 3-6 vs simulated timelines",
		"platform", "N", "model shared", "sim shared", "err", "model local", "sim local", "err", "choice agrees")
	params := perfmodel.Params{
		TSelect:       p.Workload.TSelect,
		TBackup:       p.Workload.TBackup,
		TDNNCPU:       p.Workload.TDNNCPU,
		TSharedAccess: p.Workload.TSharedAccess,
		GPU:           &p.Accel,
	}
	relErr := func(model, sim time.Duration) string {
		if sim == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.0f%%", 100*(float64(model)-float64(sim))/float64(sim))
	}
	for _, n := range ns {
		mShared := perfmodel.PerIteration(perfmodel.SharedCPU(params, n), n)
		sShared := simsched.SharedCPU(p.Workload, n).PerIteration
		mLocal := perfmodel.PerIteration(perfmodel.LocalCPU(params, n), n)
		sLocal := simsched.LocalCPU(p.Workload, n).PerIteration
		agree := (mLocal <= mShared) == (sLocal <= sShared)
		tb.AddRow("cpu", n, mShared, sShared, relErr(mShared, sShared),
			mLocal, sLocal, relErr(mLocal, sLocal), agree)
	}
	for _, n := range ns {
		if n < 2 {
			continue
		}
		mShared := perfmodel.PerIteration(perfmodel.SharedGPU(params, n), n)
		sShared := simsched.SharedAccel(p.Workload, p.Accel, n).PerIteration
		// Compare both at the simulator-tuned batch size so the error
		// reflects the model itself, not a different operating point.
		probe := func(b int) time.Duration {
			return simsched.LocalAccel(p.Workload, p.Accel, n, b).PerIteration
		}
		bStar, _ := perfmodel.FindMinV(1, n, probe)
		mLocal := perfmodel.PerIteration(perfmodel.LocalGPU(params, n, bStar), n)
		sLocal := probe(bStar)
		agree := (mLocal <= mShared) == (sLocal <= sShared)
		tb.AddRow("cpu-gpu", n, mShared, sShared, relErr(mShared, sShared),
			mLocal, sLocal, relErr(mLocal, sLocal), agree)
	}
	return tb
}
