package serve

import (
	"net/http"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/nn"
)

// TestE2ETombstoneContractUnderSaturation pins the 410-vs-404 contract
// under sustained saturation: rejected creates must not consume the
// tombstone budget, so a genuinely evicted game keeps answering 410 Gone
// no matter how many saturated create attempts follow. Before the
// accounting fix every rejected engine-starts create burned a tombstone
// slot, flushing real evictions out of the window and turning their
// contractual 410s into indistinguishable 404s.
func TestE2ETombstoneContractUnderSaturation(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxSessions = 1
	cfg.MaxConcurrentMoves = 1
	cfg.TombstoneBudget = 8
	cfg.NewEvaluator = func(int64, *nn.Network) evaluate.Evaluator {
		return &gateEval{gate: gate}
	}
	svc, ts := startServer(t, cfg)

	// A is a real game the client holds an id for; creating B evicts it
	// (one-session budget) and records its tombstone.
	respA, snapA := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	if respA.StatusCode != http.StatusCreated {
		t.Fatalf("game A: status %d", respA.StatusCode)
	}
	respB, snapB := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	if respB.StatusCode != http.StatusCreated {
		t.Fatalf("game B: status %d", respB.StatusCode)
	}

	// Saturate: a gated move on B holds the single admission token.
	moveDone := make(chan int, 1)
	go func() {
		moveDone <- postStatus(ts.URL+"/v1/game/"+snapB.ID+"/move", moveRequest{Action: 0})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().MovesInFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("move on B never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	// Hammer the saturated server with far more rejected engine-starts
	// creates than the 8-entry tombstone window holds. Every one must
	// answer 429 and leave no tombstone behind.
	const spam = 20
	for i := 0; i < spam; i++ {
		if code := postStatus(ts.URL+"/v1/game/new", newGameRequest{EngineStarts: true}); code != http.StatusTooManyRequests {
			t.Fatalf("saturated create %d: status %d, want 429", i, code)
		}
	}

	// The contract: A was genuinely evicted, so it still answers 410 Gone —
	// its tombstone survived the spam (404 here is the regression).
	get, err := http.Get(ts.URL + "/v1/game/" + snapA.ID)
	if err != nil {
		t.Fatalf("GET game A: %v", err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusGone {
		t.Fatalf("evicted game A after create spam: status %d, want 410 (tombstone flushed by rejected creates?)", get.StatusCode)
	}

	st := svc.Stats()
	// Only A and B were ever real creations: the rejected creates undid
	// their created increment and count under rejected alone.
	if st.SessionsCreated != 2 {
		t.Fatalf("SessionsCreated = %d, want 2 (rejected creates must not count)", st.SessionsCreated)
	}
	if st.MovesRejected < spam {
		t.Fatalf("MovesRejected = %d, want >= %d", st.MovesRejected, spam)
	}
	// Evictions: A for B's create, plus at most B when a saturated create
	// made room before being rejected. Never one per rejected create.
	if st.SessionsEvicted > 2 {
		t.Fatalf("SessionsEvicted = %d, want <= 2 (rejected creates must not count as evictions)", st.SessionsEvicted)
	}

	close(gate)
	if code := <-moveDone; code != http.StatusOK && code != http.StatusGone {
		t.Fatalf("gated move on B finished with status %d, want 200 or 410", code)
	}
}

// TestMoveRejectedLeavesLRUUntouched: a 429-rejected move must not refresh
// the session's LRU position or idle clock — a client hammering a
// saturated server cannot keep itself warm with moves that never ran, nor
// push an actively-playing session toward the LRU end.
func TestMoveRejectedLeavesLRUUntouched(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxConcurrentMoves = 1
	cfg.NewEvaluator = func(int64, *nn.Network) evaluate.Evaluator {
		return &gateEval{gate: gate}
	}
	svc := NewService(cfg)
	defer func() {
		close(gate)
		svc.Close()
	}()

	snapA, _, err := svc.NewGame(false)
	if err != nil {
		t.Fatalf("NewGame A: %v", err)
	}
	snapB, _, err := svc.NewGame(false)
	if err != nil {
		t.Fatalf("NewGame B: %v", err)
	}

	lruBack := func() string {
		svc.mu.Lock()
		defer svc.mu.Unlock()
		return svc.lru.Back().Value.(*gameSession).id
	}
	lastUsed := func(id string) time.Time {
		svc.mu.Lock()
		defer svc.mu.Unlock()
		return svc.sessions[id].lastUsed
	}
	if got := lruBack(); got != snapA.ID {
		t.Fatalf("LRU back = %s, want A (%s)", got, snapA.ID)
	}
	beforeA := lastUsed(snapA.ID)

	// A gated move on B takes the single admission token and blocks.
	moveDone := make(chan error, 1)
	go func() {
		_, _, merr := svc.Move(snapB.ID, 0)
		moveDone <- merr
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().MovesInFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("move on B never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	// Hammering A while saturated: every attempt is 429-rejected and must
	// leave A exactly where it was — at the LRU end, idle clock untouched.
	for i := 0; i < 10; i++ {
		if _, _, merr := svc.Move(snapA.ID, 0); merr != ErrSaturated {
			t.Fatalf("move on A while saturated: err %v, want ErrSaturated", merr)
		}
	}
	if got := lruBack(); got != snapA.ID {
		t.Fatalf("LRU back after rejected moves = %s, want A (%s): 429s refreshed the LRU", got, snapA.ID)
	}
	if after := lastUsed(snapA.ID); !after.Equal(beforeA) {
		t.Fatalf("lastUsed of A changed across rejected moves: %v -> %v", beforeA, after)
	}

	close(gate)
	gate = make(chan struct{}) // deferred close closes the fresh one
	if merr := <-moveDone; merr != nil {
		t.Fatalf("gated move on B: %v", merr)
	}
	// An ADMITTED move does refresh the LRU: B just moved, so A stays back;
	// play one admitted move on A and it must come forward.
	if _, _, merr := svc.Move(snapA.ID, snapA.Legal[0]); merr != nil {
		t.Fatalf("admitted move on A: %v", merr)
	}
	if got := lruBack(); got == snapA.ID {
		t.Fatalf("admitted move on A did not refresh its LRU position")
	}
}

// TestNewGameSaturationRollbackAccounting: a create rejected at the
// engine-opening search is rolled back completely — no session, no
// tombstone, no eviction count, created undone — and surfaces only in the
// rejected counter.
func TestNewGameSaturationRollbackAccounting(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxConcurrentMoves = 1
	cfg.NewEvaluator = func(int64, *nn.Network) evaluate.Evaluator {
		return &gateEval{gate: gate}
	}
	svc := NewService(cfg)
	defer func() {
		close(gate)
		svc.Close()
	}()

	snapA, _, err := svc.NewGame(false)
	if err != nil {
		t.Fatalf("NewGame A: %v", err)
	}
	moveDone := make(chan error, 1)
	go func() {
		_, _, merr := svc.Move(snapA.ID, 0)
		moveDone <- merr
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().MovesInFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("move on A never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	if _, _, gerr := svc.NewGame(true); gerr != ErrSaturated {
		t.Fatalf("engine-starts create while saturated: err %v, want ErrSaturated", gerr)
	}

	st := svc.Stats()
	if st.SessionsCreated != 1 {
		t.Fatalf("SessionsCreated = %d, want 1 (rollback must undo the increment)", st.SessionsCreated)
	}
	if st.SessionsEvicted != 0 {
		t.Fatalf("SessionsEvicted = %d, want 0 (rollback is not an eviction)", st.SessionsEvicted)
	}
	if st.MovesRejected != 1 {
		t.Fatalf("MovesRejected = %d, want 1", st.MovesRejected)
	}
	svc.mu.Lock()
	tombs := len(svc.evicted)
	live := len(svc.sessions)
	svc.mu.Unlock()
	if tombs != 0 {
		t.Fatalf("tombstones after rollback = %d, want 0", tombs)
	}
	if live != 1 {
		t.Fatalf("live sessions = %d, want 1 (only A)", live)
	}

	close(gate)
	gate = make(chan struct{})
	if merr := <-moveDone; merr != nil {
		t.Fatalf("gated move on A: %v", merr)
	}
}

// TestTombstoneRingWraps drives the fixed-size tombstone ring through
// several wraps and checks the window always holds exactly the newest
// TombstoneBudget ids: older evictions fall back to 404, the newest keep
// answering 410.
func TestTombstoneRingWraps(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxSessions = 1
	cfg.TombstoneBudget = 4
	svc := NewService(cfg)
	defer svc.Close()

	const total = 11 // evicts 10 sessions: 2.5 ring wraps
	ids := make([]string, 0, total)
	for i := 0; i < total; i++ {
		snap, _, err := svc.NewGame(false)
		if err != nil {
			t.Fatalf("NewGame %d: %v", i, err)
		}
		ids = append(ids, snap.ID)
	}

	// The last session is live; of the 10 evicted, only the newest 4
	// tombstones survive the ring.
	for i, id := range ids[:total-1] {
		_, err := svc.Get(id)
		if i < total-1-cfg.TombstoneBudget {
			if err != ErrNotFound {
				t.Fatalf("old eviction %d: err %v, want ErrNotFound (outside the window)", i, err)
			}
		} else if err != ErrGone {
			t.Fatalf("recent eviction %d: err %v, want ErrGone", i, err)
		}
	}
	if _, err := svc.Get(ids[total-1]); err != nil {
		t.Fatalf("live session: %v", err)
	}
	svc.mu.Lock()
	tombs := len(svc.evicted)
	svc.mu.Unlock()
	if tombs != cfg.TombstoneBudget {
		t.Fatalf("tombstone count = %d, want exactly the %d-entry window", tombs, cfg.TombstoneBudget)
	}
}
