package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Snapshot is the wire view of a game session, returned by every endpoint
// that touches a game (API.md documents the schema).
type Snapshot struct {
	// ID is the session id issued by /v1/game/new.
	ID string `json:"id"`
	// Game is the registry spec of the hosted scenario (e.g. "gomoku:9").
	Game string `json:"game"`
	// Ply counts applied moves (user + engine).
	Ply int `json:"ply"`
	// ToMove is the side to move: 1 (first mover) or -1.
	ToMove int `json:"to_move"`
	// EngineSide is the side the engine plays: 1 or -1. The user plays the
	// other side; after every non-terminal response it is the user's turn.
	EngineSide int `json:"engine_side"`
	// Legal lists the legal action indices for the side to move (omitted on
	// terminal positions).
	Legal []int `json:"legal,omitempty"`
	// Terminal reports whether the game has ended.
	Terminal bool `json:"terminal"`
	// Winner is 1, -1, or 0 (draw / game in progress).
	Winner int `json:"winner"`
	// ModelVersion is the network version this session is pinned to.
	ModelVersion int64 `json:"model_version"`
	// EngineMove is the action the engine just played (move responses and
	// engine-starts creations only).
	EngineMove *int `json:"engine_move,omitempty"`
	// Stats describes the engine's search for EngineMove, when present.
	Stats *MoveStats `json:"stats,omitempty"`
}

// MoveStats summarises one engine reply search.
type MoveStats struct {
	// Action is the move the engine chose (also echoed as EngineMove).
	Action int `json:"action"`
	// Playouts is the number of fresh rollouts the search ran.
	Playouts int `json:"playouts"`
	// Evaluations is the number of network forward passes bought.
	Evaluations int `json:"evaluations"`
	// ReusedVisits is the visit count retained from the previous move's
	// tree (warm-session subtree reuse).
	ReusedVisits int `json:"reused_visits"`
	// ReuseFraction is ReusedVisits/(ReusedVisits+Playouts).
	ReuseFraction float64 `json:"reuse_fraction"`
	// TransHits counts evaluations served from the shared transposition
	// table instead of the network.
	TransHits int `json:"trans_hits"`
	// DurationMS is the wall-clock search+move time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
}

// newGameRequest is the /v1/game/new request body (all fields optional).
type newGameRequest struct {
	// Game, when set, must name this server's hosted spec (reject rather
	// than silently serve the wrong scenario).
	Game string `json:"game,omitempty"`
	// EngineStarts seats the engine as first mover; it replies with its
	// opening move in the creation response.
	EngineStarts bool `json:"engine_starts,omitempty"`
}

// moveRequest is the /v1/game/{id}/move request body.
type moveRequest struct {
	Action int `json:"action"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Statsz is the /statsz operational snapshot (field reference in
// OPERATIONS.md).
type Statsz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Game          string  `json:"game"`
	ModelVersion  int64   `json:"model_version"`
	// ModelVersions lists every registered version with its live session
	// count (superseded versions linger until their last session closes).
	ModelVersions map[string]int `json:"model_versions"`
	Draining      bool           `json:"draining"`

	SessionsActive   int     `json:"sessions_active"`
	SessionsBudget   int     `json:"sessions_budget"`
	SessionsCreated  int64   `json:"sessions_created"`
	SessionsEvicted  int64   `json:"sessions_evicted"`
	GamesCompleted   int64   `json:"games_completed"`
	MovesServed      int64   `json:"moves_served"`
	MovesInFlight    int64   `json:"moves_in_flight"`
	MovesRejected    int64   `json:"moves_rejected_429"`
	AdmissionLimit   int     `json:"admission_limit"`
	EvalOutstanding  int     `json:"eval_outstanding"`
	EvalMaxOutstand  int     `json:"eval_max_outstanding"`
	EvalBatches      int64   `json:"eval_batches"`
	EvalRequests     int64   `json:"eval_requests"`
	EvalAvgBatchFill float64 `json:"eval_avg_batch_fill"`

	SearchPlayouts     int64   `json:"search_playouts"`
	SearchEvaluations  int64   `json:"search_evaluations"`
	SearchReusedVisits int64   `json:"search_reused_visits"`
	ReuseFraction      float64 `json:"reuse_fraction"`
	TransHits          int64   `json:"trans_hits"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheLen    int    `json:"cache_len"`
}

// Stats renders the operational snapshot.
func (s *Service) Stats() Statsz {
	s.mu.Lock()
	active := len(s.sessions)
	versions := make(map[string]int, len(s.versions))
	for v, st := range s.versions {
		versions[strconv.FormatInt(v, 10)] = st.refs
	}
	current := s.current
	draining := s.draining
	s.mu.Unlock()

	srvStats := s.srv.Stats()
	out := Statsz{
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Game:               s.cfg.GameSpec,
		ModelVersion:       current,
		ModelVersions:      versions,
		Draining:           draining,
		SessionsActive:     active,
		SessionsBudget:     s.cfg.MaxSessions,
		SessionsCreated:    s.created.Load(),
		SessionsEvicted:    s.evictedN.Load(),
		GamesCompleted:     s.completed.Load(),
		MovesServed:        s.moves.Load(),
		MovesInFlight:      s.activeMov.Load(),
		MovesRejected:      s.rejected.Load(),
		AdmissionLimit:     s.cfg.MaxConcurrentMoves,
		EvalOutstanding:    s.srv.Outstanding(),
		EvalMaxOutstand:    s.srv.MaxOutstanding(),
		EvalBatches:        srvStats.Batches,
		EvalRequests:       srvStats.Requests,
		EvalAvgBatchFill:   srvStats.AvgFill(),
		SearchPlayouts:     s.playoutsN.Load(),
		SearchEvaluations:  s.evalsN.Load(),
		SearchReusedVisits: s.reusedVis.Load(),
		TransHits:          s.transHitsN.Load(),
	}
	if total := out.SearchReusedVisits + out.SearchPlayouts; total > 0 {
		out.ReuseFraction = float64(out.SearchReusedVisits) / float64(total)
	}
	if s.cache != nil {
		out.CacheHits, out.CacheMisses = s.cache.Stats()
		out.CacheLen = s.cache.Len()
	}
	return out
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/game/new       create a session (optional body: {"game","engine_starts"})
//	POST /v1/game/{id}/move play a move: {"action": n}
//	GET  /v1/game/{id}      poll a session
//	GET  /healthz           liveness ("ok", or 503 while draining)
//	GET  /statsz            operational stats JSON
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/game/new", s.handleNew)
	mux.HandleFunc("POST /v1/game/{id}/move", s.handleMove)
	mux.HandleFunc("GET /v1/game/{id}", s.handleGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func (s *Service) handleNew(w http.ResponseWriter, r *http.Request) {
	var req newGameRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("malformed JSON body: %v", err), 0)
			return
		}
	}
	if req.Game != "" && req.Game != s.cfg.GameSpec {
		writeError(w, http.StatusConflict, "wrong_game",
			fmt.Sprintf("this server hosts %q, not %q", s.cfg.GameSpec, req.Game), 0)
		return
	}
	snap, ms, err := s.NewGame(req.EngineStarts)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	attachMove(&snap, ms)
	writeJSON(w, http.StatusCreated, snap)
}

func (s *Service) handleMove(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req moveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("malformed JSON body: %v", err), 0)
		return
	}
	snap, ms, err := s.Move(id, req.Action)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	attachMove(&snap, ms)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Get(r.PathValue("id"))
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// attachMove folds the engine's reply into the snapshot body.
func attachMove(snap *Snapshot, ms *MoveStats) {
	if ms == nil {
		return
	}
	a := ms.Action
	snap.EngineMove = &a
	snap.Stats = ms
}

// writeServiceError maps the typed service errors onto the wire contract.
func (s *Service) writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, "not_found", err.Error(), 0)
	case errors.Is(err, ErrGone):
		writeError(w, http.StatusGone, "gone", err.Error(), 0)
	case errors.Is(err, ErrSaturated):
		writeError(w, http.StatusTooManyRequests, "saturated", err.Error(), s.cfg.RetryAfter)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error(), s.cfg.RetryAfter)
	case errors.Is(err, ErrGameOver):
		writeError(w, http.StatusConflict, "game_over", err.Error(), 0)
	case errors.Is(err, ErrIllegalMove):
		writeError(w, http.StatusBadRequest, "illegal_move", err.Error(), 0)
	case errors.Is(err, ErrWrongGame):
		writeError(w, http.StatusConflict, "wrong_game", err.Error(), 0)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		// Retry-After is whole seconds; round up so clients never retry early.
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
