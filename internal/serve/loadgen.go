package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/rng"
)

// LoadConfig drives RunLoad: N simulated users playing full games against a
// running serve instance over real HTTP.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Users is the number of concurrent simulated users (required).
	Users int
	// GamesPerUser is how many full games each user plays (default 1).
	// Ignored when Duration is set.
	GamesPerUser int
	// Duration, when positive, makes every user keep starting games until
	// the deadline instead of counting games.
	Duration time.Duration
	// Seed makes users' random move choices reproducible.
	Seed uint64
	// Client is the HTTP client (default: 30s timeout, per-host connection
	// limit sized to Users).
	Client *http.Client
	// NewGameFromSpec reconstructs the hosted game for the local mirror
	// (default game.NewFromSpec; the caller must have linked the registry,
	// e.g. by importing internal/game/games).
	NewGameFromSpec func(spec string) (game.Game, error)
}

// LoadReport aggregates a load run. Mismatches MUST be zero on a healthy
// server: every response is replayed against a local rules mirror, so a
// mis-routed move, an illegal engine move, or a divergent game outcome is
// detected, not merely counted.
type LoadReport struct {
	Users          int      `json:"users"`
	GamesStarted   int      `json:"games_started"`
	GamesCompleted int      `json:"games_completed"`
	GamesAborted   int      `json:"games_aborted_server_shutdown"`
	Moves          int      `json:"moves"`
	Rejected429    int      `json:"rejected_429_retries"`
	Mismatches     int      `json:"mismatches"`
	ErrorCount     int      `json:"error_count"`
	Errors         []string `json:"errors,omitempty"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
	MovesPerSec    float64  `json:"moves_per_second"`
	P50MS          float64  `json:"p50_move_latency_ms"`
	P90MS          float64  `json:"p90_move_latency_ms"`
	P99MS          float64  `json:"p99_move_latency_ms"`
	MaxMS          float64  `json:"max_move_latency_ms"`
	MeanReuse      float64  `json:"mean_reuse_fraction_move2plus"`
}

// loadWorker is one simulated user's accounting.
type loadWorker struct {
	latencies []time.Duration
	report    LoadReport
	reuseSum  float64
	reuseN    int
}

// RunLoad plays cfg.Users concurrent users against the server and reports
// latency percentiles, throughput and validation failures. It returns an
// error only for configuration/transport-level failures that prevent the
// run; per-move validation failures are reported in LoadReport.Mismatches
// and .Errors.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	if cfg.Users < 1 {
		return LoadReport{}, fmt.Errorf("loadgen: Users must be >= 1")
	}
	if cfg.GamesPerUser < 1 {
		cfg.GamesPerUser = 1
	}
	if cfg.NewGameFromSpec == nil {
		cfg.NewGameFromSpec = game.NewFromSpec
	}
	if cfg.Client == nil {
		tr := &http.Transport{
			MaxIdleConns:        cfg.Users + 16,
			MaxIdleConnsPerHost: cfg.Users + 16,
		}
		cfg.Client = &http.Client{Timeout: 30 * time.Second, Transport: tr}
	}

	workers := make([]loadWorker, cfg.Users)
	var wg sync.WaitGroup
	start := time.Now()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			w := &workers[u]
			r := rng.New(cfg.Seed*0x9E3779B97F4A7C15 + uint64(u) + 1)
			for g := 0; ; g++ {
				if deadline.IsZero() {
					if g >= cfg.GamesPerUser {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				engineStarts := (u+g)%2 == 1
				if !playOneGame(&cfg, w, r, engineStarts) {
					return // server shut down under this user
				}
			}
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge.
	var out LoadReport
	out.Users = cfg.Users
	var all []time.Duration
	var reuseSum float64
	var reuseN int
	for i := range workers {
		w := &workers[i]
		out.GamesStarted += w.report.GamesStarted
		out.GamesCompleted += w.report.GamesCompleted
		out.GamesAborted += w.report.GamesAborted
		out.Moves += w.report.Moves
		out.Rejected429 += w.report.Rejected429
		out.Mismatches += w.report.Mismatches
		out.ErrorCount += w.report.ErrorCount
		for _, e := range w.report.Errors {
			if len(out.Errors) < 20 {
				out.Errors = append(out.Errors, e)
			}
		}
		all = append(all, w.latencies...)
		reuseSum += w.reuseSum
		reuseN += w.reuseN
	}
	out.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		out.MovesPerSec = float64(out.Moves) / elapsed.Seconds()
	}
	if reuseN > 0 {
		out.MeanReuse = reuseSum / float64(reuseN)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		out.P50MS = ms(percentile(all, 0.50))
		out.P90MS = ms(percentile(all, 0.90))
		out.P99MS = ms(percentile(all, 0.99))
		out.MaxMS = ms(all[len(all)-1])
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// playOneGame runs one full game, validating every response against a local
// rules mirror. Returns false when the server has gone away (drain/shutdown)
// and the user should stop.
func playOneGame(cfg *LoadConfig, w *loadWorker, r *rng.Rand, engineStarts bool) bool {
	var created wireReply
	for attempt := 0; ; attempt++ {
		var status int
		var err error
		created, _, status, err = postJSON(cfg, w, "/v1/game/new", newGameRequest{EngineStarts: engineStarts})
		if err != nil {
			w.report.GamesAborted++
			return false // transport-level: server gone
		}
		if status == http.StatusServiceUnavailable {
			w.report.GamesAborted++
			return false // draining
		}
		if status == http.StatusTooManyRequests {
			// Creation with engine_starts hits admission control too; the
			// retry does not consume the user's game count.
			if attempt >= 100 {
				w.fail("new game: still saturated after %d retries", attempt)
				return true
			}
			w.report.Rejected429++
			time.Sleep(retryDelay(created.retryAfter, r))
			continue
		}
		if status != http.StatusCreated {
			w.fail("new game: unexpected status %d", status)
			return true
		}
		break
	}
	snap := created.Snapshot
	w.report.GamesStarted++

	mirrorGame, err := cfg.NewGameFromSpec(snap.Game)
	if err != nil {
		w.fail("new game: cannot mirror spec %q: %v", snap.Game, err)
		return true
	}
	mirror := mirrorGame.NewInitial()
	if !applyEngineMove(w, mirror, &snap) {
		return true
	}

	id := snap.ID
	for moveN := 0; !snap.Terminal; moveN++ {
		if mirror.Terminal() {
			w.mismatch("server says game %s continues at ply %d but mirror is terminal", id, snap.Ply)
			return true
		}
		legal := mirror.LegalMoves(nil)
		action := legal[r.Intn(len(legal))]

		reply, lat, status, err := postJSON(cfg, w, "/v1/game/"+id+"/move", moveRequest{Action: action})
		if err != nil {
			w.report.GamesAborted++
			return false
		}
		switch status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			w.report.Rejected429++
			time.Sleep(retryDelay(reply.retryAfter, r))
			moveN--
			continue
		case http.StatusServiceUnavailable:
			w.report.GamesAborted++
			return false
		case http.StatusGone:
			// Evicted under budget pressure: a legitimate server decision
			// under overload, not a dropped move — the game just ends here.
			w.report.GamesAborted++
			return true
		default:
			w.fail("move %d on %s: unexpected status %d", moveN, id, status)
			return true
		}
		w.latencies = append(w.latencies, lat)
		w.report.Moves++
		if reply.ID != id {
			w.mismatch("response for game %s carries id %s", id, reply.ID)
			return true
		}
		// Replay our move and the engine's reply on the mirror.
		if !mirror.Legal(action) {
			w.mismatch("own action %d no longer legal in mirror of %s", action, id)
			return true
		}
		mirror.Play(action)
		if !applyEngineMove(w, mirror, &reply.Snapshot) {
			return true
		}
		if reply.Stats != nil && moveN >= 1 {
			w.reuseSum += reply.Stats.ReuseFraction
			w.reuseN++
		}
		if !verifySnapshot(w, mirror, &reply.Snapshot) {
			return true
		}
		snap = reply.Snapshot
	}
	if snap.Terminal {
		w.report.GamesCompleted++
	}
	return true
}

// applyEngineMove replays the engine's move (if any) onto the mirror,
// flagging an illegal one as a mismatch.
func applyEngineMove(w *loadWorker, mirror game.State, snap *Snapshot) bool {
	if snap.EngineMove == nil {
		return true
	}
	a := *snap.EngineMove
	if !mirror.Legal(a) {
		w.mismatch("engine move %d illegal in mirror of %s at ply %d", a, snap.ID, snap.Ply)
		return false
	}
	mirror.Play(a)
	return true
}

// verifySnapshot compares the server's view with the local mirror: ply-level
// divergence here means a move was dropped or routed to the wrong session.
func verifySnapshot(w *loadWorker, mirror game.State, snap *Snapshot) bool {
	if snap.Terminal != mirror.Terminal() {
		w.mismatch("game %s: server terminal=%v mirror=%v at ply %d", snap.ID, snap.Terminal, mirror.Terminal(), snap.Ply)
		return false
	}
	if snap.Terminal {
		if game.Player(snap.Winner) != mirror.Winner() {
			w.mismatch("game %s: server winner=%d mirror=%d", snap.ID, snap.Winner, int(mirror.Winner()))
			return false
		}
		return true
	}
	if game.Player(snap.ToMove) != mirror.ToMove() {
		w.mismatch("game %s: server to_move=%d mirror=%d at ply %d", snap.ID, snap.ToMove, int(mirror.ToMove()), snap.Ply)
		return false
	}
	legal := mirror.LegalMoves(nil)
	if len(legal) != len(snap.Legal) {
		w.mismatch("game %s: server legal count=%d mirror=%d at ply %d", snap.ID, len(snap.Legal), len(legal), snap.Ply)
		return false
	}
	seen := make(map[int]bool, len(legal))
	for _, a := range legal {
		seen[a] = true
	}
	for _, a := range snap.Legal {
		if !seen[a] {
			w.mismatch("game %s: server legal move %d not legal in mirror at ply %d", snap.ID, a, snap.Ply)
			return false
		}
	}
	return true
}

func (w *loadWorker) fail(format string, args ...interface{}) {
	w.report.ErrorCount++
	if len(w.report.Errors) < 20 {
		w.report.Errors = append(w.report.Errors, fmt.Sprintf(format, args...))
	}
}

func (w *loadWorker) mismatch(format string, args ...interface{}) {
	w.report.Mismatches++
	w.fail(format, args...)
}

func retryDelay(retryAfter time.Duration, r *rng.Rand) time.Duration {
	if retryAfter <= 0 {
		retryAfter = 100 * time.Millisecond
	}
	if retryAfter > 2*time.Second {
		retryAfter = 2 * time.Second
	}
	// Jitter to decorrelate retry herds.
	return retryAfter/2 + time.Duration(r.Intn(int(retryAfter/2)+1))
}

// wireReply is a Snapshot plus transport metadata the game loop needs.
type wireReply struct {
	Snapshot
	retryAfter time.Duration
}

// postJSON posts body and decodes a Snapshot reply (on 2xx). The returned
// duration is the full request round-trip. A non-nil error means the server
// is unreachable (shutdown/drain at the TCP level).
func postJSON(cfg *LoadConfig, w *loadWorker, path string, body interface{}) (wireReply, time.Duration, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return wireReply{}, 0, 0, err
	}
	start := time.Now()
	resp, err := cfg.Client.Post(cfg.BaseURL+path, "application/json", bytes.NewReader(buf))
	lat := time.Since(start)
	if err != nil {
		return wireReply{}, lat, 0, err
	}
	defer resp.Body.Close()
	var out wireReply
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			out.retryAfter = time.Duration(secs) * time.Second
		}
	}
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out.Snapshot); err != nil {
			w.fail("%s: bad response body: %v", path, err)
		}
	}
	return out, lat, resp.StatusCode, nil
}

// BenchServing is the BENCH_serving.json document shape.
type BenchServing struct {
	Description string            `json:"description"`
	Environment map[string]string `json:"environment"`
	Serving     struct {
		Invocation string     `json:"invocation"`
		Game       string     `json:"game"`
		Playouts   int        `json:"playouts_per_move"`
		Report     LoadReport `json:"report"`
	} `json:"serving"`
	Acceptance string `json:"acceptance"`
}

// WriteBenchServing records a load report in the repo's BENCH_*.json shape.
func WriteBenchServing(path, description, invocation, gameSpec string, playouts int, rep LoadReport, acceptance string) error {
	doc := BenchServing{
		Description: description,
		Environment: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"go":     runtime.Version(),
			"cores":  strconv.Itoa(runtime.NumCPU()),
		},
	}
	doc.Serving.Invocation = invocation
	doc.Serving.Game = gameSpec
	doc.Serving.Playouts = playouts
	doc.Serving.Report = rep
	doc.Acceptance = acceptance
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
