package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/games"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
)

// testConfig is a tictactoe serving config with a random evaluator (no
// network needed — the NewEvaluator seam replaces inference).
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Game:     games.MustNew("tictactoe"),
		GameSpec: "tictactoe",
		Search:   mcts.Config{Playouts: 96, ReuseTree: true, Seed: 7},
		IdleTTL:  -1, // tests drive eviction explicitly
		NewEvaluator: func(version int64, _ *nn.Network) evaluate.Evaluator {
			return &evaluate.Random{}
		},
	}
}

func startServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func post(t *testing.T, url string, body interface{}) (*http.Response, Snapshot) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp, snap
}

// postStatus is the goroutine-safe variant of post: no testing.T calls,
// just the status code (-1 on transport failure).
func postStatus(url string, body interface{}) int {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return -1
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestE2EConcurrentGamesOverHTTP plays two concurrent full tictactoe games
// through the real HTTP stack using the load generator's rules-mirror
// validation, and checks that persistent sessions actually reuse their
// search trees from the second engine move on.
func TestE2EConcurrentGamesOverHTTP(t *testing.T) {
	_, ts := startServer(t, testConfig(t))

	rep, err := RunLoad(LoadConfig{
		BaseURL:      ts.URL,
		Users:        2,
		GamesPerUser: 2,
		Seed:         11,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Mismatches != 0 || rep.ErrorCount != 0 {
		t.Fatalf("load run reported %d mismatches, %d errors: %v", rep.Mismatches, rep.ErrorCount, rep.Errors)
	}
	if rep.GamesCompleted != 4 {
		t.Fatalf("GamesCompleted = %d, want 4 (aborted=%d)", rep.GamesCompleted, rep.GamesAborted)
	}
	if rep.Moves == 0 {
		t.Fatalf("no moves recorded")
	}
	// Session reuse: the engine's second and later searches must run warm.
	if rep.MeanReuse <= 0 {
		t.Fatalf("mean reuse fraction on move 2+ = %v, want > 0 (persistent sessions not reusing trees)", rep.MeanReuse)
	}
}

// TestE2EEvictionUnderBudget pins the LRU budget contract: with a
// one-session budget, creating a second game evicts the first, which then
// answers 410 Gone on both the move and the poll endpoint, while an
// unknown id stays 404.
func TestE2EEvictionUnderBudget(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxSessions = 1
	svc, ts := startServer(t, cfg)

	respA, snapA := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	if respA.StatusCode != http.StatusCreated {
		t.Fatalf("game A: status %d", respA.StatusCode)
	}
	respB, _ := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	if respB.StatusCode != http.StatusCreated {
		t.Fatalf("game B: status %d", respB.StatusCode)
	}

	resp, _ := post(t, ts.URL+"/v1/game/"+snapA.ID+"/move", moveRequest{Action: 0})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("move on evicted game A: status %d, want 410", resp.StatusCode)
	}
	get, err := http.Get(ts.URL + "/v1/game/" + snapA.ID)
	if err != nil {
		t.Fatalf("GET evicted game: %v", err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusGone {
		t.Fatalf("GET evicted game A: status %d, want 410", get.StatusCode)
	}
	get, err = http.Get(ts.URL + "/v1/game/ffffffffffff")
	if err != nil {
		t.Fatalf("GET unknown game: %v", err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown game: status %d, want 404", get.StatusCode)
	}
	if n := svc.Stats().SessionsEvicted; n != 1 {
		t.Fatalf("SessionsEvicted = %d, want 1", n)
	}
}

// gateEval blocks every evaluation until the gate closes, then passes
// through to a free random evaluator.
type gateEval struct {
	gate  chan struct{}
	inner evaluate.Random
}

func (g *gateEval) Evaluate(input, policy []float32) float64 {
	<-g.gate
	return g.inner.Evaluate(input, policy)
}

// TestE2ESaturation429 forces admission-control rejection: with a
// one-concurrent-move bound and a gated evaluator, a move in flight makes
// the next move answer 429 with a Retry-After hint; after the gate opens
// the blocked move completes normally.
func TestE2ESaturation429(t *testing.T) {
	gate := make(chan struct{})
	cfg := testConfig(t)
	cfg.MaxConcurrentMoves = 1
	cfg.NewEvaluator = func(int64, *nn.Network) evaluate.Evaluator {
		return &gateEval{gate: gate}
	}
	svc, ts := startServer(t, cfg)

	_, snapA := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	_, snapB := post(t, ts.URL+"/v1/game/new", newGameRequest{})

	moveDone := make(chan int, 1)
	go func() {
		moveDone <- postStatus(ts.URL+"/v1/game/"+snapA.ID+"/move", moveRequest{Action: 0})
	}()

	// Wait until A's move holds the admission token (blocked in search).
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().MovesInFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("move on A never entered flight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := post(t, ts.URL+"/v1/game/"+snapB.ID+"/move", moveRequest{Action: 0})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("move on B while saturated: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}

	close(gate)
	if code := <-moveDone; code != http.StatusOK {
		t.Fatalf("blocked move on A finished with status %d, want 200", code)
	}
	if n := svc.Stats().MovesRejected; n != 1 {
		t.Fatalf("MovesRejected = %d, want 1", n)
	}
}

// TestE2EDrainSafeEviction is the pool-layer half of the drain-safe
// eviction fix: sessions evicted under budget pressure while their move is
// in flight must let the search finish coherently (the HTTP response is a
// normal 200), and only then tear the tree down. Run under -race in CI.
func TestE2EDrainSafeEviction(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxSessions = 1
	cfg.Search.Playouts = 256
	cfg.NewEvaluator = func(int64, *nn.Network) evaluate.Evaluator {
		return &evaluate.Random{Latency: 50 * time.Microsecond}
	}
	svc, ts := startServer(t, cfg)

	_, snapA := post(t, ts.URL+"/v1/game/new", newGameRequest{})

	var wg sync.WaitGroup
	moveStatus := make(chan int, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		moveStatus <- postStatus(ts.URL+"/v1/game/"+snapA.ID+"/move", moveRequest{Action: 4})
	}()
	go func() {
		defer wg.Done()
		// Evict A (likely mid-search) by blowing the one-session budget.
		for i := 0; i < 4; i++ {
			postStatus(ts.URL+"/v1/game/new", newGameRequest{})
		}
	}()
	wg.Wait()

	// The in-flight move either completed before the eviction unlinked the
	// session (200) or found it closed (410) — never a torn state.
	if code := <-moveStatus; code != http.StatusOK && code != http.StatusGone {
		t.Fatalf("move racing eviction: status %d, want 200 or 410", code)
	}
	// Once everything settles, A must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/game/" + snapA.ID)
		if err != nil {
			t.Fatalf("GET after eviction: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusGone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("game A still answering %d after eviction", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}
	if svc.Stats().SessionsEvicted == 0 {
		t.Fatalf("no eviction recorded")
	}
}

// TestE2EModelSwapPinning: sessions keep the model version they were
// created under across a hot swap, new sessions get the new version, and a
// superseded version is retired once its last pinned session is evicted.
func TestE2EModelSwapPinning(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxSessions = 2
	versions := make(chan int64, 8)
	cfg.NewEvaluator = func(v int64, _ *nn.Network) evaluate.Evaluator {
		versions <- v
		return &evaluate.Random{}
	}
	svc, ts := startServer(t, cfg)
	if v := <-versions; v != 1 {
		t.Fatalf("initial evaluator built for version %d, want 1", v)
	}

	_, snapA := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	if snapA.ModelVersion != 1 {
		t.Fatalf("game A pinned to version %d, want 1", snapA.ModelVersion)
	}

	if v := svc.Swap(nil); v != 2 {
		t.Fatalf("Swap returned version %d, want 2", v)
	}
	if v := <-versions; v != 2 {
		t.Fatalf("swap built evaluator for version %d, want 2", v)
	}

	_, snapB := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	if snapB.ModelVersion != 2 {
		t.Fatalf("game B pinned to version %d, want 2", snapB.ModelVersion)
	}

	// A still serves moves on its pinned version after the swap.
	resp, reply := post(t, ts.URL+"/v1/game/"+snapA.ID+"/move", moveRequest{Action: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("move on pre-swap game A: status %d", resp.StatusCode)
	}
	if reply.ModelVersion != 1 {
		t.Fatalf("game A answered with version %d after swap, want 1", reply.ModelVersion)
	}

	// Evict A (third game over the 2-session budget; A is LRU after B's
	// creation and the poll-free move above keeps ordering deterministic:
	// the move bumped A, so touch B again to make A the eviction victim.
	post(t, ts.URL+"/v1/game/"+snapB.ID+"/move", moveRequest{Action: 0})
	post(t, ts.URL+"/v1/game/new", newGameRequest{})

	// Version 1's last session is gone: the version must retire.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := svc.Stats()
		if _, live := stats.ModelVersions["1"]; !live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("version 1 not retired after last pinned session evicted: %v", stats.ModelVersions)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE2EDrainAndErrors covers the remaining wire contract: draining
// answers 503 on healthz and new games, finished games answer 409, and
// illegal moves answer 400.
func TestE2EDrainAndErrors(t *testing.T) {
	svc, ts := startServer(t, testConfig(t))

	_, snap := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	// Play the game out (random-legal from the wire snapshot).
	cur := snap
	for !cur.Terminal {
		resp, reply := post(t, ts.URL+"/v1/game/"+snap.ID+"/move", moveRequest{Action: cur.Legal[0]})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("move: status %d", resp.StatusCode)
		}
		cur = reply
	}
	resp, _ := post(t, ts.URL+"/v1/game/"+snap.ID+"/move", moveRequest{Action: 0})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("move on finished game: status %d, want 409", resp.StatusCode)
	}

	_, snap2 := post(t, ts.URL+"/v1/game/new", newGameRequest{})
	resp, _ = post(t, ts.URL+"/v1/game/"+snap2.ID+"/move", moveRequest{Action: 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("illegal move: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/game/new", newGameRequest{Game: "hex:7"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong-game creation: status %d, want 409", resp.StatusCode)
	}

	svc.Drain()
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hz.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/game/new", newGameRequest{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new game while draining: status %d, want 503", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/game/"+snap2.ID+"/move", moveRequest{Action: snap2.Legal[0]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("move while draining: status %d, want 503", resp.StatusCode)
	}
}
