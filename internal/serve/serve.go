// Package serve is the networked play service: the first layer of the
// stack that faces an actual user instead of another goroutine. It exposes
// the move API of API.md (POST /v1/game/new, POST /v1/game/{id}/move,
// GET /v1/game/{id}, /healthz, /statsz) over a session manager that owns
// one persistent warm mcts session per active game — tree reuse across a
// user's moves via Engine.Advance — with LRU + idle-TTL eviction under a
// configurable session budget, every tenant multiplexed through ONE
// version-aware evaluate.Server (so concurrent games aggregate into full
// inference batches exactly like the self-play fleet), per-model-version
// shared transposition tables, admission control surfaced as 429 +
// Retry-After when the MaxOutstanding backpressure bound is reached, and
// graceful drain on shutdown and on hot model swap (a game started under a
// version finishes on it — sessions pin their client at creation).
//
// See OPERATIONS.md for the operator surface and cmd/serve / cmd/loadgen
// for the binaries.
package serve

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// Typed request-outcome errors; the HTTP layer maps each to a status code
// (API.md documents the wire contract).
var (
	// ErrNotFound: the game id was never issued by this server.
	ErrNotFound = errors.New("serve: no such game")
	// ErrGone: the game id was valid but its session has been evicted
	// (budget or idle TTL). The client must start a new game.
	ErrGone = errors.New("serve: game session evicted")
	// ErrSaturated: admission control rejected the move — the service is at
	// its concurrent-search/backpressure bound. Retry after a backoff.
	ErrSaturated = errors.New("serve: service saturated")
	// ErrDraining: the service is shutting down and accepts no new work.
	ErrDraining = errors.New("serve: service draining")
	// ErrGameOver: the game already reached a terminal state.
	ErrGameOver = errors.New("serve: game is over")
	// ErrIllegalMove: the submitted action is not legal in the current
	// position (or is out of range).
	ErrIllegalMove = errors.New("serve: illegal move")
	// ErrWrongGame: the request named a different game than this server hosts.
	ErrWrongGame = errors.New("serve: server hosts a different game")
)

// Config tunes a Service. Zero values get serving-appropriate defaults.
type Config struct {
	// Game is the hosted scenario (required). One server hosts one game
	// spec; a /v1/game/new naming a different one is rejected.
	Game game.Game
	// GameSpec is the registry spec echoed on the wire (e.g. "gomoku:9") so
	// clients can reconstruct the environment. Defaults to Game.Name().
	GameSpec string

	// Search is the per-session search configuration. ReuseTree should be
	// on for serving (it is the point of persistent sessions); cmd/serve
	// defaults it on. Seed is split per session.
	Search mcts.Config
	// SearchWorkers selects the per-session engine: 1 (default) runs the
	// serial engine — concurrency comes from concurrent games, which is
	// what fills inference batches — while >1 gives each session a
	// shared-tree engine with that many rollout workers.
	SearchWorkers int

	// MaxSessions is the session budget: creating a game beyond it evicts
	// the least-recently-used session (default 1024). Approximate memory
	// per session is the search-tree arena: SuggestCapacity(Playouts,
	// fanout) nodes at ~100 bytes each, plus the game state.
	MaxSessions int
	// IdleTTL evicts sessions idle longer than this (default 10m; negative
	// disables TTL eviction, leaving only the budget).
	IdleTTL time.Duration

	// MaxConcurrentMoves bounds concurrently searching moves (admission
	// control). Excess moves are rejected with ErrSaturated rather than
	// queued, so the client sees 429 + Retry-After instead of unbounded
	// latency. Default: MaxOutstanding / max(1, SearchWorkers), i.e. the
	// number of searches whose in-flight evaluations the backpressure
	// bound can hold without ever blocking a Submit.
	MaxConcurrentMoves int
	// RetryAfter is the backoff hint attached to saturation rejections
	// (default 500ms).
	RetryAfter time.Duration

	// Batch, FlushDeadline, MaxOutstanding and EvalWorkers configure the
	// shared evaluate.Server: the flush threshold (default 8 — concurrent
	// games aggregate into one device batch), the partial-batch deadline
	// (default evaluate.DefaultFlushDeadline), the backpressure bound
	// (default 256) and the backend's concurrent-evaluation bound (default
	// GOMAXPROCS).
	Batch          int
	FlushDeadline  time.Duration
	MaxOutstanding int
	EvalWorkers    int

	// CacheSize, when positive, shares one version-scoped evaluation cache
	// across all sessions (entries; default 1<<16, negative disables).
	CacheSize int
	// TransposeSize, when positive, gives each model version a shared
	// transposition table of that many entries: every session pinned to a
	// version shares that version's table, and the table is dropped with
	// the version — positions evaluated under different weights are never
	// mixed (default off).
	TransposeSize int

	// TombstoneBudget bounds the 410-Gone tombstone window: the ids of the
	// last N evicted sessions keep answering 410 instead of 404 (default
	// 4096). Only genuine evictions consume the budget — saturation-rejected
	// creates are rolled back without a tombstone, so a client hammering a
	// saturated server cannot flush real evictions out of the window.
	TombstoneBudget int

	// Net is the initial serving model (required unless NewEvaluator is
	// set and never touches its net argument).
	Net *nn.Network
	// InitialVersion is the model version Net serves as (default 1).
	InitialVersion int64
	// NewEvaluator builds the synchronous evaluator for a model version
	// (test seam; default evaluate.NewNN(net)). The result is wrapped in
	// the shared version-scoped cache when CacheSize > 0.
	NewEvaluator func(version int64, net *nn.Network) evaluate.Evaluator
	// Now is the clock used for idle eviction (test seam; default time.Now).
	Now func() time.Time
}

func (c *Config) setDefaults() {
	if c.Game == nil {
		panic("serve: Config.Game is required")
	}
	if c.GameSpec == "" {
		c.GameSpec = c.Game.Name()
	}
	if c.SearchWorkers < 1 {
		c.SearchWorkers = 1
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 1024
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 10 * time.Minute
	}
	if c.Batch < 1 {
		c.Batch = 8
	}
	if c.FlushDeadline == 0 {
		c.FlushDeadline = evaluate.DefaultFlushDeadline
	}
	if c.MaxOutstanding < 1 {
		c.MaxOutstanding = 256
	}
	if c.EvalWorkers < 1 {
		c.EvalWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrentMoves < 1 {
		c.MaxConcurrentMoves = c.MaxOutstanding / c.SearchWorkers
		if c.MaxConcurrentMoves < 1 {
			c.MaxConcurrentMoves = 1
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1 << 16
	}
	if c.TombstoneBudget < 1 {
		c.TombstoneBudget = 4096
	}
	if c.InitialVersion <= 0 {
		c.InitialVersion = 1
	}
	if c.NewEvaluator == nil {
		c.NewEvaluator = func(_ int64, net *nn.Network) evaluate.Evaluator {
			return evaluate.NewNN(net)
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// versionState is the service's per-model-version bookkeeping: how many
// live sessions are pinned to it and the transposition table they share.
// A superseded version is retired (backend unregistered, cache entries
// evicted, table dropped) when its last session closes.
type versionState struct {
	refs int
	tt   *tree.TransTable
}

// Service is the networked play service. Construct with NewService, mount
// Handler() on an HTTP server, and Close() on shutdown (after the HTTP
// server has drained its in-flight requests).
type Service struct {
	cfg   Config
	game  game.Game
	srv   *evaluate.Server
	cache *evaluate.Cached
	admit chan struct{}
	start time.Time

	mu       sync.Mutex
	sessions map[string]*gameSession
	lru      *list.List // front = most recently used
	// evicted holds bounded tombstones of evicted/completed-and-dropped
	// session ids so a client polling a dead game gets 410 Gone instead of
	// an indistinguishable 404. evictedRing is the fixed-size order window
	// (head = next slot to overwrite): a ring instead of a re-sliced
	// append buffer, so long-uptime eviction churn never reallocates or
	// copies the window.
	evicted     map[string]struct{}
	evictedRing []string
	evictedHead int
	versions    map[int64]*versionState
	current     int64
	draining    bool
	seedCounter uint64

	created    atomic.Int64
	evictedN   atomic.Int64
	completed  atomic.Int64
	moves      atomic.Int64
	rejected   atomic.Int64
	activeMov  atomic.Int64
	reusedVis  atomic.Int64
	playoutsN  atomic.Int64
	evalsN     atomic.Int64
	transHitsN atomic.Int64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewService builds the service: one evaluate.Server multiplexing every
// session, the initial model registered under Config.InitialVersion, and
// the idle-eviction janitor running.
func NewService(cfg Config) *Service {
	cfg.setDefaults()
	s := &Service{
		cfg:         cfg,
		game:        cfg.Game,
		admit:       make(chan struct{}, cfg.MaxConcurrentMoves),
		start:       cfg.Now(),
		sessions:    make(map[string]*gameSession),
		lru:         list.New(),
		evicted:     make(map[string]struct{}),
		evictedRing: make([]string, cfg.TombstoneBudget),
		versions:    make(map[int64]*versionState),
		current:     cfg.InitialVersion,
	}
	eval0 := cfg.NewEvaluator(cfg.InitialVersion, cfg.Net)
	if cfg.CacheSize > 0 {
		s.cache = evaluate.NewCachedSharded(eval0, cfg.CacheSize, 16)
	}
	s.srv = evaluate.NewServer(s.wrapBackend(cfg.InitialVersion, eval0), evaluate.ServerConfig{
		Batch:          cfg.Batch,
		FlushDeadline:  cfg.FlushDeadline,
		MaxOutstanding: cfg.MaxOutstanding,
		InitialVersion: cfg.InitialVersion,
	})
	s.versions[cfg.InitialVersion] = &versionState{tt: s.newTransTable()}
	if cfg.IdleTTL > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor()
	}
	return s
}

func (s *Service) newTransTable() *tree.TransTable {
	if s.cfg.TransposeSize <= 0 {
		return nil
	}
	return tree.NewTransTable(s.cfg.TransposeSize)
}

// makeBackend builds the evaluate backend serving one model version:
// the configured evaluator wrapped in the version's view of the shared
// cache, behind a bounded worker pool.
func (s *Service) makeBackend(version int64, net *nn.Network) evaluate.Backend {
	return s.wrapBackend(version, s.cfg.NewEvaluator(version, net))
}

func (s *Service) wrapBackend(version int64, eval evaluate.Evaluator) evaluate.Backend {
	if s.cache != nil {
		eval = s.cache.View(version, eval)
	}
	return &evaluate.EvaluatorBackend{Eval: eval, Workers: s.cfg.EvalWorkers}
}

// Server exposes the shared inference service (tests, stats).
func (s *Service) Server() *evaluate.Server { return s.srv }

// GameSpec returns the wire spec of the hosted game.
func (s *Service) GameSpec() string { return s.cfg.GameSpec }

// Swap hot-swaps the serving model: net is registered as a fresh version
// (current+1) and becomes current. Sessions created before the swap keep
// their pinned version — their in-flight and future searches still evaluate
// on the model they started the game with — and the superseded version is
// retired (backend unregistered, cache entries evicted, transposition table
// dropped) when its last pinned session closes. Returns the new version.
func (s *Service) Swap(net *nn.Network) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.current
	v := old + 1
	s.srv.SwapBackend(s.makeBackend(v, net), v)
	s.versions[v] = &versionState{tt: s.newTransTable()}
	s.current = v
	if st := s.versions[old]; st != nil && st.refs == 0 {
		s.retireLocked(old)
	}
	return v
}

// retireLocked drops a superseded version with no remaining sessions.
// Caller holds s.mu; the version must not be current.
func (s *Service) retireLocked(version int64) {
	delete(s.versions, version)
	s.srv.Retire(version)
	if s.cache != nil {
		s.cache.ResetVersion(version)
	}
}

// releaseVersion decrements a version's session refcount, retiring it when
// it was superseded and this was its last session.
func (s *Service) releaseVersion(version int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.versions[version]
	if st == nil {
		return
	}
	st.refs--
	if st.refs <= 0 && version != s.current {
		s.retireLocked(version)
	}
}

// newID mints a session id: 12 random hex characters.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// NewGame creates a session. engineStarts chooses which side the engine
// plays: false (the default) seats the engine as the second mover, so the
// response leaves the user to move; true makes the engine play the first
// move before the response. Returns the initial snapshot (including the
// engine's opening move and its search stats when engineStarts).
func (s *Service) NewGame(engineStarts bool) (Snapshot, *MoveStats, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Snapshot{}, nil, ErrDraining
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		if !s.evictLRULocked() {
			break
		}
	}
	id := newID()
	for _, dup := s.sessions[id]; dup; _, dup = s.sessions[id] {
		id = newID()
	}
	version := s.current
	vs := s.versions[version]
	vs.refs++
	s.seedCounter++
	sess := s.newSession(id, version, engineStarts, s.seedCounter, vs.tt)
	s.sessions[id] = sess
	sess.elem = s.lru.PushFront(sess)
	sess.lastUsed = s.cfg.Now()
	s.created.Add(1)
	s.mu.Unlock()

	if !engineStarts {
		snap, err := s.snapshot(sess)
		return snap, nil, err
	}
	// The engine opens: run its first search inside the creation request.
	if !s.acquire() {
		// Roll the session back — the client will retry the whole create.
		// The id was never handed out, so this is an admission rejection,
		// not an eviction: no tombstone (a 4096-entry budget burned by
		// rejected creates would flush genuine evictions early, turning
		// contractual 410s into 404s), no evictedN, and the created count
		// is undone — the attempt lives in rejected only.
		s.rollbackSession(sess)
		s.rejected.Add(1)
		return Snapshot{}, nil, ErrSaturated
	}
	defer s.release()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return Snapshot{}, nil, ErrGone
	}
	ms := s.engineMove(sess)
	return s.snapshotLocked(sess), ms, nil
}

// newSession builds the per-game state: a sync client pinned to the
// session's model version, and a serial (or shared) engine over it.
func (s *Service) newSession(id string, version int64, engineStarts bool, seedSalt uint64, tt *tree.TransTable) *gameSession {
	cl := s.srv.NewSyncClient()
	cl.Pin(version)
	cfg := s.cfg.Search
	cfg.Seed = cfg.Seed*0x9E3779B97F4A7C15 + seedSalt
	cfg.TransposeTable = tt
	cfg.TransposeSize = 0
	var eng mcts.Engine
	if s.cfg.SearchWorkers > 1 {
		eng = mcts.NewShared(cfg, s.cfg.SearchWorkers, cl)
	} else {
		eng = mcts.NewSerial(cfg, cl)
	}
	side := game.P2
	if engineStarts {
		side = game.P1
	}
	return &gameSession{
		id:         id,
		version:    version,
		engineSide: side,
		st:         s.game.NewInitial(),
		engine:     eng,
		cl:         cl,
		rnd:        rng.New(cfg.Seed ^ 0xC0FFEE),
		dist:       make([]float32, s.game.NumActions()),
	}
}

// acquire takes an admission token without blocking; false means the
// service is at its concurrent-move bound (or the inference backpressure
// bound is exhausted) and the caller must answer 429.
func (s *Service) acquire() bool {
	if s.srv.Saturated() {
		return false
	}
	select {
	case s.admit <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Service) release() { <-s.admit }

// Move applies the user's action to the game, then (unless the game ended)
// runs the engine's reply search on the session's warm tree and applies the
// engine's move. The returned snapshot reflects the position after both
// moves; stats describe the engine's search (nil when the user's move ended
// the game).
func (s *Service) Move(id string, action int) (Snapshot, *MoveStats, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Snapshot{}, nil, ErrDraining
	}
	sess, ok := s.sessions[id]
	if !ok {
		_, gone := s.evicted[id]
		s.mu.Unlock()
		if gone {
			return Snapshot{}, nil, ErrGone
		}
		return Snapshot{}, nil, ErrNotFound
	}
	s.mu.Unlock()

	if !s.acquire() {
		// Rejected before the LRU is touched: a client hammering a
		// saturated server with 429'd moves must not keep its session warm
		// or push an actively-playing session off the LRU end.
		s.rejected.Add(1)
		return Snapshot{}, nil, ErrSaturated
	}
	defer s.release()
	// Admitted: NOW the move counts as activity.
	s.mu.Lock()
	if sess.elem != nil {
		s.lru.MoveToFront(sess.elem)
		sess.lastUsed = s.cfg.Now()
	}
	s.mu.Unlock()
	s.activeMov.Add(1)
	defer s.activeMov.Add(-1)

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return Snapshot{}, nil, ErrGone
	}
	if sess.done {
		return Snapshot{}, nil, ErrGameOver
	}
	if action < 0 || action >= s.game.NumActions() || !sess.st.Legal(action) {
		return Snapshot{}, nil, ErrIllegalMove
	}
	sess.st.Play(action)
	sess.ply++
	sess.engine.Advance(action)
	s.moves.Add(1)

	if sess.st.Terminal() {
		s.finishLocked(sess)
		return s.snapshotLocked(sess), nil, nil
	}
	ms := s.engineMove(sess)
	return s.snapshotLocked(sess), ms, nil
}

// engineMove runs one engine search + move on a locked, live session and
// returns its stats. Caller holds sess.mu and an admission token.
func (s *Service) engineMove(sess *gameSession) *MoveStats {
	start := time.Now()
	st := sess.engine.Search(sess.st, sess.dist)
	best := -1
	var bestV float32
	for a, p := range sess.dist {
		if p > bestV {
			best, bestV = a, p
		}
	}
	if best < 0 {
		// Degenerate distribution (e.g. root expansion rejected at a full
		// tree): fall back to a uniformly random legal move.
		legal := sess.st.LegalMoves(nil)
		best = legal[sess.rnd.Intn(len(legal))]
	}
	sess.st.Play(best)
	sess.ply++
	sess.engine.Advance(best)
	sess.searches++
	sess.stats.Add(st)
	s.moves.Add(1)
	s.reusedVis.Add(int64(st.ReusedVisits))
	s.playoutsN.Add(int64(st.Playouts))
	s.evalsN.Add(int64(st.Evaluations))
	s.transHitsN.Add(int64(st.TransHits))
	if sess.st.Terminal() {
		s.finishLocked(sess)
	}
	return &MoveStats{
		Action:        best,
		Playouts:      st.Playouts,
		Evaluations:   st.Evaluations,
		ReusedVisits:  st.ReusedVisits,
		ReuseFraction: st.ReuseFraction(),
		TransHits:     st.TransHits,
		DurationMS:    float64(time.Since(start).Microseconds()) / 1000,
	}
}

// finishLocked marks a session's game complete. The session stays
// queryable until evicted, but moves to the LRU tail so budget pressure
// reclaims finished games first. Caller holds sess.mu.
func (s *Service) finishLocked(sess *gameSession) {
	sess.done = true
	s.completed.Add(1)
	s.mu.Lock()
	if sess.elem != nil {
		s.lru.MoveToBack(sess.elem)
	}
	s.mu.Unlock()
}

// Get returns the current snapshot of a session without touching its LRU
// position (polling a game does not keep it warm).
func (s *Service) Get(id string) (Snapshot, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		_, gone := s.evicted[id]
		s.mu.Unlock()
		if gone {
			return Snapshot{}, ErrGone
		}
		return Snapshot{}, ErrNotFound
	}
	s.mu.Unlock()
	return s.snapshot(sess)
}

func (s *Service) snapshot(sess *gameSession) (Snapshot, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return Snapshot{}, ErrGone
	}
	return s.snapshotLocked(sess), nil
}

// snapshotLocked renders the wire view of a session. Caller holds sess.mu.
func (s *Service) snapshotLocked(sess *gameSession) Snapshot {
	snap := Snapshot{
		ID:           sess.id,
		Game:         s.cfg.GameSpec,
		Ply:          sess.ply,
		ToMove:       int(sess.st.ToMove()),
		EngineSide:   int(sess.engineSide),
		Terminal:     sess.done,
		Winner:       int(sess.st.Winner()),
		ModelVersion: sess.version,
	}
	if !sess.done {
		snap.Legal = sess.st.LegalMoves(nil)
	}
	return snap
}

// evictLRULocked evicts the least-recently-used session. Caller holds
// s.mu. The map/LRU removal is synchronous — no new request can route to
// the session — while the engine teardown runs on its own goroutine
// because it must wait for any in-flight search to drain (mcts engine
// Close blocks on the session mutex): an evicted in-flight search finishes
// and is discarded, never raced. Returns false when the LRU is empty.
func (s *Service) evictLRULocked() bool {
	back := s.lru.Back()
	if back == nil {
		return false
	}
	sess := back.Value.(*gameSession)
	s.removeLocked(sess)
	s.evictedN.Add(1)
	go sess.shutdown(s)
	return true
}

// removeLocked unlinks a session from the map and LRU and records its
// tombstone. Caller holds s.mu.
func (s *Service) removeLocked(sess *gameSession) {
	delete(s.sessions, sess.id)
	if sess.elem != nil {
		s.lru.Remove(sess.elem)
		sess.elem = nil
	}
	if old := s.evictedRing[s.evictedHead]; old != "" {
		delete(s.evicted, old)
	}
	s.evictedRing[s.evictedHead] = sess.id
	s.evictedHead = (s.evictedHead + 1) % len(s.evictedRing)
	s.evicted[sess.id] = struct{}{}
}

// rollbackSession undoes a create the client never saw (admission
// rejection): the session is unlinked without a tombstone or eviction
// count and the created counter is decremented. If a concurrent evictor
// already removed the session, its accounting stands — the id was live in
// the LRU at that point and the eviction was genuine.
func (s *Service) rollbackSession(sess *gameSession) {
	s.mu.Lock()
	if _, live := s.sessions[sess.id]; live {
		delete(s.sessions, sess.id)
		if sess.elem != nil {
			s.lru.Remove(sess.elem)
			sess.elem = nil
		}
		s.created.Add(-1)
	}
	s.mu.Unlock()
	sess.shutdown(s)
}

// janitor evicts idle sessions every IdleTTL/4.
func (s *Service) janitor() {
	defer close(s.janitorDone)
	tick := time.NewTicker(s.cfg.IdleTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			cutoff := s.cfg.Now().Add(-s.cfg.IdleTTL)
			s.mu.Lock()
			var idle []*gameSession
			for e := s.lru.Back(); e != nil; {
				prev := e.Prev()
				sess := e.Value.(*gameSession)
				if sess.lastUsed.Before(cutoff) {
					idle = append(idle, sess)
					s.removeLocked(sess)
					s.evictedN.Add(1)
				}
				e = prev
			}
			s.mu.Unlock()
			for _, sess := range idle {
				go sess.shutdown(s)
			}
		}
	}
}

// Drain stops admission of new games and moves (handlers answer 503).
// In-flight moves keep running; call Close to wait for them.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close drains the service and tears everything down: every session is
// closed (waiting for its in-flight search to finish — the drain-safe
// eviction barrier), superseded versions are retired, and the shared
// inference server is shut down. Call after the HTTP server has stopped
// dispatching requests (http.Server.Shutdown).
func (s *Service) Close() {
	s.Drain()
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
	}
	s.mu.Lock()
	all := make([]*gameSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		all = append(all, sess)
	}
	for _, sess := range all {
		s.removeLocked(sess)
	}
	s.mu.Unlock()
	for _, sess := range all {
		sess.shutdown(s) // synchronous: waits for in-flight searches
	}
	s.srv.Close()
}

// gameSession is one user's persistent game: the live state, the warm
// search engine following it move by move, and the pinned inference client.
// mu serialises moves and extends down into the engine's own session mutex
// (Search/Advance/Close), so the pool's eviction path and the move path can
// never race on the tree.
type gameSession struct {
	id         string
	version    int64
	engineSide game.Player

	mu     sync.Mutex
	st     game.State
	engine mcts.Engine
	cl     *evaluate.Client
	rnd    *rng.Rand
	dist   []float32
	closed bool
	done   bool
	ply    int

	searches int
	stats    mcts.Stats

	elem     *list.Element // guarded by Service.mu
	lastUsed time.Time     // guarded by Service.mu
}

// shutdown finishes a session: it waits for an in-flight move to complete
// (session mutex), marks the session closed so late requests get ErrGone,
// closes the engine (which drains and discards the tree) and the pinned
// client, and releases the session's hold on its model version.
func (sess *gameSession) shutdown(s *Service) {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closed = true
	sess.engine.Close()
	sess.cl.Close()
	sess.mu.Unlock()
	s.releaseVersion(sess.version)
}
