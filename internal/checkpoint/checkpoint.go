// Package checkpoint persists versioned network snapshots — the durable
// half of the model lifecycle. A trained network no longer dies with the
// process: each promotion writes an immutable, numbered checkpoint (weights
// via nn.Save plus a JSON manifest carrying version, step count and
// training metadata), and a restarted service resumes from LoadLatest.
//
// Durability protocol: the weights file is written to a temp name and
// renamed into place first; the manifest is written and renamed LAST, so
// the manifest's existence is the commit point. A crash mid-save leaves at
// worst an orphaned weights file that Versions/LoadLatest never report. The
// manifest records an FNV-64a checksum of the weights bytes; loads verify
// it, so a truncated or corrupted checkpoint is rejected instead of
// silently serving garbage parameters.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/faultfs"
	"github.com/parmcts/parmcts/internal/nn"
)

// ErrEmpty is returned by Latest/LoadLatest on a store with no committed
// checkpoints.
var ErrEmpty = errors.New("checkpoint: store is empty")

// Manifest is the metadata committed alongside each snapshot's weights.
type Manifest struct {
	// Version is the model version (positive, strictly increasing across a
	// training run; the version stamped onto inference requests served by
	// this network).
	Version int64 `json:"version"`
	// Step is the cumulative SGD mini-batch update count at save time.
	Step int64 `json:"step"`
	// Rounds is the number of self-play generation rounds completed.
	Rounds int `json:"rounds"`
	// Samples is the cumulative count of generated training samples.
	Samples int `json:"samples"`
	// GateScore is the arena match score that promoted this version
	// (0 for an initial seed checkpoint saved without a gate).
	GateScore float64 `json:"gate_score"`
	// Game names the workload (e.g. "gomoku-9").
	Game string `json:"game,omitempty"`
	// Note carries free-form provenance.
	Note string `json:"note,omitempty"`
	// SavedAtUnix is the commit wall-clock time (Unix seconds).
	SavedAtUnix int64 `json:"saved_at_unix"`
	// WeightsFile is the snapshot's weights filename, relative to the
	// store directory.
	WeightsFile string `json:"weights_file"`
	// Checksum is the FNV-64a digest of the weights file, hex-encoded.
	Checksum string `json:"checksum"`
}

// Store is a directory of versioned checkpoints. It is safe for concurrent
// use within one process: Save serialises version assignment and commit,
// while loads only ever observe committed (manifest-renamed) checkpoints.
type Store struct {
	dir string
	fs  faultfs.FS

	mu sync.Mutex // serialises Save's version assignment + commit
}

// NewStore opens (creating if needed) a checkpoint directory.
func NewStore(dir string) (*Store, error) { return NewStoreFS(dir, faultfs.OS) }

// NewStoreFS is NewStore writing through an explicit filesystem seam —
// fault-injection tests pass a faultfs.Injected here.
func NewStoreFS(dir string, fsys faultfs.FS) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty store directory")
	}
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func manifestName(version int64) string { return fmt.Sprintf("v%06d.json", version) }
func weightsName(version int64) string  { return fmt.Sprintf("v%06d.net", version) }

// checksum digests raw weight bytes (FNV-64a, hex) — the shared digest of
// the durable stores (faultfs.ChecksumHex, also stamped into trajstore
// frames).
func checksum(b []byte) string { return faultfs.ChecksumHex(b) }

// EncodeNetwork serialises a network to the store's weight wire format and
// returns the bytes plus their FNV-64a hex checksum — the pair a Manifest
// records and the distributed checkpoint fan-out ships verbatim, so the
// bytes a worker receives are the bytes a Save would have committed.
func EncodeNetwork(net *nn.Network) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		return nil, "", fmt.Errorf("checkpoint: serialize: %w", err)
	}
	raw := buf.Bytes()
	return raw, checksum(raw), nil
}

// VerifyAndLoad validates raw weight bytes against m.Checksum and
// deserialises them — the receiving end of a checkpoint shipped as
// manifest + weights over a wire. A checksum mismatch (a torn or corrupted
// transfer) is rejected before any parameter reaches an engine.
func VerifyAndLoad(m Manifest, raw []byte) (*nn.Network, error) {
	if m.Checksum == "" {
		return nil, fmt.Errorf("checkpoint: version %d: manifest carries no checksum", m.Version)
	}
	if got := checksum(raw); got != m.Checksum {
		return nil, fmt.Errorf("checkpoint: version %d: weights checksum mismatch (manifest %s, received %s)",
			m.Version, m.Checksum, got)
	}
	net, err := nn.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: version %d: %w", m.Version, err)
	}
	return net, nil
}

// Save commits one snapshot and returns the completed manifest. If
// m.Version is 0 the next version after the latest committed one is
// assigned; an explicit version must not collide with a committed one
// (checkpoints are immutable). SavedAtUnix, WeightsFile and Checksum are
// filled in by the store.
func (s *Store) Save(net *nn.Network, m Manifest) (Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.Version == 0 {
		latest, err := s.Latest()
		switch {
		case errors.Is(err, ErrEmpty):
			m.Version = 1
		case err != nil:
			return Manifest{}, err
		default:
			m.Version = latest + 1
		}
	}
	if m.Version < 0 {
		return Manifest{}, fmt.Errorf("checkpoint: negative version %d", m.Version)
	}
	if _, err := s.fs.Stat(filepath.Join(s.dir, manifestName(m.Version))); err == nil {
		return Manifest{}, fmt.Errorf("checkpoint: version %d already committed", m.Version)
	}

	raw, sum, err := EncodeNetwork(net)
	if err != nil {
		return Manifest{}, err
	}
	m.WeightsFile = weightsName(m.Version)
	m.Checksum = sum
	m.SavedAtUnix = time.Now().Unix()

	// Weights first, manifest last: the manifest rename is the commit.
	if err := s.writeAtomic(m.WeightsFile, raw); err != nil {
		return Manifest{}, err
	}
	mj, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if err := s.writeAtomic(manifestName(m.Version), mj); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// writeAtomic writes name via a temp file + rename so readers never observe
// a partially written checkpoint file. The discipline lives in
// faultfs.WriteAtomic, shared with internal/trajstore's manifest commits.
func (s *Store) writeAtomic(name string, data []byte) error {
	if err := faultfs.WriteAtomic(s.fs, filepath.Join(s.dir, name), data); err != nil {
		return fmt.Errorf("checkpoint: commit %s: %w", name, err)
	}
	return nil
}

// Versions returns the committed versions in ascending order. Only versions
// with a parseable manifest count — orphaned weights from an interrupted
// Save are invisible.
func (s *Store) Versions() ([]int64, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []int64
	for _, e := range entries {
		var v int64
		if n, _ := fmt.Sscanf(e.Name(), "v%d.json", &v); n == 1 && e.Name() == manifestName(v) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Latest returns the highest committed version, or ErrEmpty.
func (s *Store) Latest() (int64, error) {
	vs, err := s.Versions()
	if err != nil {
		return 0, err
	}
	if len(vs) == 0 {
		return 0, ErrEmpty
	}
	return vs[len(vs)-1], nil
}

// LoadManifest reads and validates one version's manifest.
func (s *Store) LoadManifest(version int64) (Manifest, error) {
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, manifestName(version)))
	if err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: version %d: %w", version, err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: version %d: corrupt manifest: %w", version, err)
	}
	if m.Version != version {
		return Manifest{}, fmt.Errorf("checkpoint: manifest %s claims version %d", manifestName(version), m.Version)
	}
	if m.WeightsFile == "" || m.Checksum == "" {
		return Manifest{}, fmt.Errorf("checkpoint: version %d: manifest missing weights reference", version)
	}
	return m, nil
}

// LoadVersion restores one snapshot, verifying the weights checksum before
// deserializing. Corrupted or truncated checkpoints return an error.
func (s *Store) LoadVersion(version int64) (*nn.Network, Manifest, error) {
	m, err := s.LoadManifest(version)
	if err != nil {
		return nil, Manifest{}, err
	}
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, m.WeightsFile))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("checkpoint: version %d: %w", version, err)
	}
	if got := checksum(raw); got != m.Checksum {
		return nil, Manifest{}, fmt.Errorf("checkpoint: version %d: weights checksum mismatch (manifest %s, file %s)",
			version, m.Checksum, got)
	}
	net, err := nn.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, Manifest{}, fmt.Errorf("checkpoint: version %d: %w", version, err)
	}
	return net, m, nil
}

// LoadLatest restores the newest committed version that actually loads:
// when the latest checkpoint's manifest or weights are corrupt or
// truncated (a disk fault after commit — the commit protocol itself never
// leaves one), it logs the skip and falls back to the next most recent
// valid version rather than failing the whole resume. Only when every
// committed version is unloadable does it return the newest version's
// error; a store with no committed versions returns ErrEmpty.
func (s *Store) LoadLatest() (*nn.Network, Manifest, error) {
	vs, err := s.Versions()
	if err != nil {
		return nil, Manifest{}, err
	}
	if len(vs) == 0 {
		return nil, Manifest{}, ErrEmpty
	}
	var firstErr error
	for i := len(vs) - 1; i >= 0; i-- {
		net, m, err := s.LoadVersion(vs[i])
		if err == nil {
			return net, m, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		log.Printf("checkpoint: skipping unloadable version %d: %v", vs[i], err)
	}
	return nil, Manifest{}, firstErr
}
