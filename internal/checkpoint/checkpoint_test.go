package checkpoint

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

func testNet(t *testing.T, seed uint64) *nn.Network {
	t.Helper()
	net, err := nn.New(nn.TinyConfig(2, 5, 5, 25), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// forwardAll runs a fixed batch of probe inputs and returns the raw
// policy/value outputs.
func forwardAll(net *nn.Network, batch int) ([][]float32, []float64) {
	inputs := make([][]float32, batch)
	policies := make([][]float32, batch)
	values := make([]float64, batch)
	r := rng.New(99)
	for i := range inputs {
		in := make([]float32, 2*5*5)
		for j := range in {
			if r.Float64() < 0.3 {
				in[j] = 1
			}
		}
		inputs[i] = in
		policies[i] = make([]float32, 25)
	}
	ws := nn.NewBatchWorkspace(net, batch)
	net.ForwardBatch(ws, inputs, policies, values)
	return policies, values
}

// TestCheckpointRoundTripBitwise saves and reloads a network and requires
// the reloaded model's ForwardBatch outputs to be bit-for-bit identical to
// the original's — the property the hot swap relies on when a restarted
// service resumes from disk.
func TestCheckpointRoundTripBitwise(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(t, 7)
	m, err := store.Save(net, Manifest{Step: 42, Rounds: 3, Samples: 512, Game: "test-5"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Fatalf("first save assigned version %d, want 1", m.Version)
	}
	loaded, lm, err := store.LoadVersion(m.Version)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Step != 42 || lm.Rounds != 3 || lm.Samples != 512 || lm.Game != "test-5" {
		t.Fatalf("manifest metadata lost: %+v", lm)
	}
	wantP, wantV := forwardAll(net, 8)
	gotP, gotV := forwardAll(loaded, 8)
	for i := range wantP {
		if math.Float64bits(wantV[i]) != math.Float64bits(gotV[i]) {
			t.Fatalf("value %d not bitwise identical: %v vs %v", i, wantV[i], gotV[i])
		}
		for j := range wantP[i] {
			if math.Float32bits(wantP[i][j]) != math.Float32bits(gotP[i][j]) {
				t.Fatalf("policy (%d,%d) not bitwise identical: %v vs %v", i, j, wantP[i][j], gotP[i][j])
			}
		}
	}
}

// TestCheckpointLoadLatestOrdering commits three distinct networks and
// checks version enumeration and that LoadLatest restores exactly the last
// one.
func TestCheckpointLoadLatestOrdering(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty store Latest err = %v, want ErrEmpty", err)
	}
	nets := []*nn.Network{testNet(t, 1), testNet(t, 2), testNet(t, 3)}
	for i, net := range nets {
		m, err := store.Save(net, Manifest{Step: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if m.Version != int64(i+1) {
			t.Fatalf("save %d assigned version %d", i, m.Version)
		}
	}
	vs, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Fatalf("versions = %v, want [1 2 3]", vs)
	}
	loaded, m, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 || m.Step != 2 {
		t.Fatalf("LoadLatest manifest = %+v, want version 3 step 2", m)
	}
	wantP, wantV := forwardAll(nets[2], 4)
	gotP, gotV := forwardAll(loaded, 4)
	if math.Float64bits(wantV[0]) != math.Float64bits(gotV[0]) ||
		math.Float32bits(wantP[0][0]) != math.Float32bits(gotP[0][0]) {
		t.Fatal("LoadLatest did not restore the last committed network")
	}
}

// TestCheckpointCorruptManifestRejected covers garbage and truncation in
// the manifest file.
func TestCheckpointCorruptManifestRejected(t *testing.T) {
	dir := t.TempDir()
	store, _ := NewStore(dir)
	m, err := store.Save(testNet(t, 5), Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName(m.Version))

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadVersion(m.Version); err == nil {
		t.Fatal("garbage manifest accepted")
	}

	raw, _ := os.ReadFile(filepath.Join(dir, m.WeightsFile))
	_ = raw
	if err := os.WriteFile(path, []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadVersion(m.Version); err == nil {
		t.Fatal("truncated manifest accepted")
	}

	// A manifest claiming the wrong version is also rejected.
	if err := os.WriteFile(path, []byte(`{"version":9,"weights_file":"v000001.net","checksum":"00"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadVersion(m.Version); err == nil {
		t.Fatal("version-mismatched manifest accepted")
	}
}

// TestCheckpointTruncatedWeightsRejected covers torn weights files: the
// checksum recorded at commit time must catch both truncation and bit rot.
func TestCheckpointTruncatedWeightsRejected(t *testing.T) {
	dir := t.TempDir()
	store, _ := NewStore(dir)
	m, err := store.Save(testNet(t, 5), Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	wpath := filepath.Join(dir, m.WeightsFile)
	raw, err := os.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(wpath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadVersion(m.Version); err == nil {
		t.Fatal("truncated weights accepted")
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/3] ^= 0x40
	if err := os.WriteFile(wpath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadVersion(m.Version); err == nil {
		t.Fatal("bit-flipped weights accepted")
	}

	if err := os.WriteFile(wpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadVersion(m.Version); err != nil {
		t.Fatalf("restored weights rejected: %v", err)
	}
}

// TestCheckpointOrphanedWeightsInvisible simulates a crash between the
// weights rename and the manifest rename: the half-saved version must not
// be enumerated or loaded.
func TestCheckpointOrphanedWeightsInvisible(t *testing.T) {
	dir := t.TempDir()
	store, _ := NewStore(dir)
	if _, err := store.Save(testNet(t, 1), Manifest{}); err != nil {
		t.Fatal(err)
	}
	// Orphan: weights for v2 exist, manifest never committed.
	if err := os.WriteFile(filepath.Join(dir, weightsName(2)), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stray tmp files must be invisible too.
	if err := os.WriteFile(filepath.Join(dir, manifestName(3)+".tmp-123"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("versions = %v, want [1]", vs)
	}
	if latest, err := store.Latest(); err != nil || latest != 1 {
		t.Fatalf("Latest = %d, %v", latest, err)
	}
}

// TestCheckpointExplicitVersionCollision: checkpoints are immutable.
func TestCheckpointExplicitVersionCollision(t *testing.T) {
	store, _ := NewStore(t.TempDir())
	if _, err := store.Save(testNet(t, 1), Manifest{Version: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(testNet(t, 2), Manifest{Version: 5}); err == nil {
		t.Fatal("overwriting a committed version succeeded")
	}
	// Auto-assignment continues past the explicit version.
	m, err := store.Save(testNet(t, 3), Manifest{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 6 {
		t.Fatalf("auto version after explicit 5 = %d, want 6", m.Version)
	}
}

// TestCheckpointConcurrentSaves exercises the store under parallel Save
// calls (run with -race in CI): versions must come out unique and all
// commits loadable.
func TestCheckpointConcurrentSaves(t *testing.T) {
	store, _ := NewStore(t.TempDir())
	const n = 8
	nets := make([]*nn.Network, n)
	for i := range nets {
		nets[i] = testNet(t, uint64(i+1))
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = store.Save(nets[i], Manifest{Note: fmt.Sprintf("writer %d", i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	vs, err := store.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != n {
		t.Fatalf("committed %d versions, want %d", len(vs), n)
	}
	for _, v := range vs {
		if _, _, err := store.LoadVersion(v); err != nil {
			t.Fatalf("version %d unloadable: %v", v, err)
		}
	}
}

// TestLoadLatestSkipsCorruptLatest is the hardening regression: a store
// whose NEWEST checkpoint is corrupt (torn weights file, half-finished
// writer death) must fall back to the most recent checkpoint that still
// verifies instead of failing the whole restart. Only when every version
// is unloadable does LoadLatest report an error.
func TestLoadLatestSkipsCorruptLatest(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testNet(t, 11)
	if _, err := store.Save(good, Manifest{Step: 1}); err != nil {
		t.Fatal(err)
	}
	m2, err := store.Save(testNet(t, 12), Manifest{Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the latest version's weights to simulate a torn write that
	// happened after the manifest committed.
	wpath := filepath.Join(dir, weightsName(m2.Version))
	data, err := os.ReadFile(wpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wpath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, lm, err := store.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest with corrupt newest failed instead of falling back: %v", err)
	}
	if lm.Version != 1 || lm.Step != 1 {
		t.Fatalf("fell back to %+v, want version 1", lm)
	}
	wantP, wantV := forwardAll(good, 4)
	gotP, gotV := forwardAll(loaded, 4)
	if math.Float64bits(wantV[0]) != math.Float64bits(gotV[0]) ||
		math.Float32bits(wantP[0][0]) != math.Float32bits(gotP[0][0]) {
		t.Fatal("fallback did not restore the valid older network")
	}

	// Corrupt version 1 as well: now there is nothing valid left and the
	// error must surface (the newest failure, not ErrEmpty).
	w1 := filepath.Join(dir, weightsName(1))
	if err := os.WriteFile(w1, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadLatest(); err == nil {
		t.Fatal("LoadLatest succeeded with every version corrupt")
	} else if errors.Is(err, ErrEmpty) {
		t.Fatal("all-corrupt store reported ErrEmpty; should surface the load failure")
	}
}
