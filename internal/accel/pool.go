package accel

import "sync"

// wsPool pools forward-pass workspaces by power-of-two batch capacity.
//
// It replaces the earlier sync.Pool-per-bucket scheme, whose release policy
// was left to the garbage collector: one oversized Infer call (say a 512
// batch during a throughput sweep) left a multi-megabyte workspace pinned in
// its bucket until the next GC cycle that happened to drop it — or
// indefinitely under steady allocation-free load, exactly when the pool sees
// the most reuse and the least GC.
//
// The policy here is deterministic: acquisitions are counted, and every
// `window` acquisitions the pool rolls over, recording the largest capacity
// the finished window actually requested. Buckets larger than the high-water
// mark of the last TWO windows are dropped on the roll (two windows of
// hysteresis so an in-flight pattern straddling a boundary does not thrash).
// Steady-state traffic therefore stays allocation-free, while a one-off
// large batch is released within at most three window rolls (its own
// window's high-water mark, plus one window of hysteresis).
type wsPool[W interface{ Cap() int }] struct {
	newWS  func(capB int) W
	window int

	mu      sync.Mutex
	buckets map[int][]W
	calls   int
	hi      int // largest capacity requested in the current window
	prevHi  int // largest capacity requested in the previous window
	created int // total workspaces constructed (test accounting)
}

// poolWindow is the default acquisition-count window for high-water
// trimming. Small enough that an abandoned batch size is dropped promptly,
// large enough that the roll bookkeeping is free relative to a forward pass.
const poolWindow = 256

func newWSPool[W interface{ Cap() int }](newWS func(capB int) W) *wsPool[W] {
	return &wsPool[W]{newWS: newWS, window: poolWindow, buckets: make(map[int][]W)}
}

// get returns a workspace with capacity >= batch, rounding capacities up to
// powers of two so the number of distinct buckets stays logarithmic.
func (p *wsPool[W]) get(batch int) W {
	capB := 1
	for capB < batch {
		capB <<= 1
	}
	p.mu.Lock()
	if capB > p.hi {
		p.hi = capB
	}
	p.calls++
	if p.calls >= p.window {
		p.trimLocked()
	}
	if l := p.buckets[capB]; len(l) > 0 {
		ws := l[len(l)-1]
		p.buckets[capB] = l[:len(l)-1]
		p.mu.Unlock()
		return ws
	}
	p.created++
	p.mu.Unlock()
	return p.newWS(capB)
}

func (p *wsPool[W]) put(ws W) {
	p.mu.Lock()
	capB := ws.Cap()
	p.buckets[capB] = append(p.buckets[capB], ws)
	p.mu.Unlock()
}

// trimLocked rolls the window: buckets above the high-water mark of the two
// most recent windows are released to the allocator.
func (p *wsPool[W]) trimLocked() {
	keep := p.hi
	if p.prevHi > keep {
		keep = p.prevHi
	}
	for capB := range p.buckets {
		if capB > keep {
			delete(p.buckets, capB)
		}
	}
	p.prevHi = p.hi
	p.hi = 0
	p.calls = 0
}

// drain empties every bucket (backend Close).
func (p *wsPool[W]) drain() {
	p.mu.Lock()
	p.buckets = make(map[int][]W)
	p.mu.Unlock()
}

// pooledCaps reports the capacities currently held, for tests.
func (p *wsPool[W]) pooledCaps() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var caps []int
	for capB, l := range p.buckets {
		for range l {
			caps = append(caps, capB)
		}
	}
	return caps
}

// createdCount reports how many workspaces were ever constructed, for
// steady-state allocation regression tests.
func (p *wsPool[W]) createdCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}
