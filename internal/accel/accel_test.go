package accel

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

func randInputs(seed uint64, n, dim int) [][]float32 {
	r := rng.New(seed)
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, dim)
		for j := range out[i] {
			out[i][j] = r.Float32()
		}
	}
	return out
}

func TestCostModelTransferDecomposition(t *testing.T) {
	m := CostModel{
		LaunchLatency:   10 * time.Microsecond,
		BytesPerSample:  1000,
		LinkBytesPerSec: 1e9, // 1us per 1000 bytes
	}
	got := m.TransferTime(8)
	want := 10*time.Microsecond + 8*time.Microsecond
	if got != want {
		t.Fatalf("TransferTime(8) = %v, want %v", got, want)
	}
}

func TestCostModelComputeLinear(t *testing.T) {
	m := CostModel{ComputeBase: 5 * time.Microsecond, ComputePerSample: 2 * time.Microsecond}
	if got := m.ComputeTime(10); got != 25*time.Microsecond {
		t.Fatalf("ComputeTime(10) = %v", got)
	}
	if got := m.ComputeTime(0); got != 5*time.Microsecond {
		t.Fatalf("ComputeTime(0) = %v", got)
	}
}

func TestModelSpendsModeledTime(t *testing.T) {
	m := CostModel{
		LaunchLatency:    3 * time.Millisecond,
		BytesPerSample:   1,
		LinkBytesPerSec:  1e12,
		ComputeBase:      2 * time.Millisecond,
		ComputePerSample: 0,
	}
	dev := NewModel(m)
	inputs := randInputs(1, 2, 16)
	policies := [][]float32{make([]float32, 4), make([]float32, 4)}
	values := make([]float64, 2)
	start := time.Now()
	dev.Infer(inputs, policies, values)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("Infer returned in %v, modeled cost is 5ms", elapsed)
	}
}

func TestModelOutputsAreValidDistributions(t *testing.T) {
	dev := NewModel(CostModel{LinkBytesPerSec: 1e12, BytesPerSample: 1})
	inputs := randInputs(2, 5, 36)
	policies := make([][]float32, 5)
	for i := range policies {
		policies[i] = make([]float32, 9)
	}
	values := make([]float64, 5)
	dev.Infer(inputs, policies, values)
	for i := range policies {
		var sum float64
		for _, p := range policies[i] {
			if p < 0 {
				t.Fatal("negative prior")
			}
			sum += float64(p)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("policy %d sums to %v", i, sum)
		}
		if values[i] < -1 || values[i] > 1 {
			t.Fatalf("value %d out of range: %v", i, values[i])
		}
	}
}

func TestModelDistinguishesInputs(t *testing.T) {
	dev := NewModel(CostModel{LinkBytesPerSec: 1e12, BytesPerSample: 1})
	a := make([]float32, 36)
	b := make([]float32, 36)
	a[0] = 1
	b[7] = 1
	pa, pb := make([]float32, 9), make([]float32, 9)
	va, vb := make([]float64, 1), make([]float64, 1)
	dev.Infer([][]float32{a}, [][]float32{pa}, va)
	dev.Infer([][]float32{b}, [][]float32{pb}, vb)
	same := va[0] == vb[0]
	for i := range pa {
		if pa[i] != pb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different inputs produced identical synthetic outputs")
	}
}

func TestModelConcurrentInferIsSafe(t *testing.T) {
	dev := NewModel(CostModel{LinkBytesPerSec: 1e12, BytesPerSample: 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			inputs := randInputs(seed, 3, 16)
			policies := [][]float32{make([]float32, 4), make([]float32, 4), make([]float32, 4)}
			values := make([]float64, 3)
			for i := 0; i < 20; i++ {
				dev.Infer(inputs, policies, values)
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestHostedComputesRealNetworkInParallel(t *testing.T) {
	net := nn.MustNew(nn.TinyConfig(2, 4, 4, 16), rng.New(3))
	dev := NewHosted(net, CostModel{LinkBytesPerSec: 1e12, BytesPerSample: 1}, 4)
	if dev.Name() == "" {
		t.Fatal("no device name")
	}
	const batch = 10
	inputs := randInputs(4, batch, net.InputLen())
	policies := make([][]float32, batch)
	for i := range policies {
		policies[i] = make([]float32, 16)
	}
	values := make([]float64, batch)
	dev.Infer(inputs, policies, values)
	ws := nn.NewWorkspace(net)
	// Batched GEMMs may order accumulations differently from the
	// single-sample pass depending on the matrix width, so agreement is to
	// rounding tolerance rather than bitwise (see the nn property test).
	const tol = 1e-5
	for i := range inputs {
		wantPol, wantV := net.Forward(ws, inputs[i])
		if math.Abs(values[i]-wantV) > tol {
			t.Fatalf("value[%d] mismatch: %v vs %v", i, values[i], wantV)
		}
		for j := range wantPol {
			if math.Abs(float64(policies[i][j]-wantPol[j])) > tol {
				t.Fatalf("policy[%d] mismatch", i)
			}
		}
	}
}

func TestHostedWorkerClamping(t *testing.T) {
	// More workers than samples must not panic or deadlock.
	net := nn.MustNew(nn.TinyConfig(2, 4, 4, 16), rng.New(5))
	dev := NewHosted(net, CostModel{LinkBytesPerSec: 1e12, BytesPerSample: 1}, 64)
	inputs := randInputs(6, 1, net.InputLen())
	policies := [][]float32{make([]float32, 16)}
	values := make([]float64, 1)
	dev.Infer(inputs, policies, values)
}

func TestSpinShortDurations(t *testing.T) {
	start := time.Now()
	spin(50 * time.Microsecond)
	if time.Since(start) < 50*time.Microsecond {
		t.Fatal("spin returned early")
	}
	spin(0)  // no-op
	spin(-1) // no-op
}

func BenchmarkModelInferBatch16(b *testing.B) {
	dev := NewModel(CostModel{LinkBytesPerSec: 1e12, BytesPerSample: 1})
	inputs := randInputs(1, 16, 900)
	policies := make([][]float32, 16)
	for i := range policies {
		policies[i] = make([]float32, 225)
	}
	values := make([]float64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.Infer(inputs, policies, values)
	}
}
