// Package accel simulates the DNN inference accelerator of Section 3.3.
//
// The paper offloads batched node evaluations to an RTX A6000 over PCIe 4.0
// and tunes the CUDA-stream sub-batch size B. No GPU is available (or
// required) here: the performance models (Equations 4 and 6) consume only
// the accelerator's *latency profile* — a fixed per-launch cost L, a link
// bandwidth term, and a batch-compute curve T_GPU(B) — so the package
// provides devices that expose exactly those quantities:
//
//   - Model: a pure latency-model device. It returns deterministic
//     synthetic policies/values (the paper's design-time profiling likewise
//     runs the DNN "filled with random parameters") and spends modeled
//     wall-clock time. Concurrent submissions pipeline like CUDA streams:
//     transfers overlap compute, compute serialises on the device. Used by
//     the latency experiments (Figures 3-5) and the batch-size search.
//
//   - Hosted: computes the real Go network, parallelised across the batch
//     on the host's cores, with the modeled launch+transfer latency
//     injected. Used by the training experiments (Figures 6-7) where real
//     outputs matter.
package accel

import (
	"runtime"
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// Device is a batched inference backend.
type Device interface {
	// Name identifies the device in reports.
	Name() string
	// Infer evaluates a batch. policies[i] must be preallocated by the
	// caller; values[i] is written in place. Infer blocks for the device's
	// (modeled or actual) latency and is safe for concurrent use —
	// concurrent calls behave like submissions on separate CUDA streams.
	Infer(inputs [][]float32, policies [][]float32, values []float64)
}

// CostModel parameterises the latency behaviour of a simulated accelerator.
// All quantities map one-to-one onto the symbols of Equations 4 and 6.
type CostModel struct {
	// LaunchLatency is L: the fixed communication + kernel-launch latency
	// paid once per batch submission.
	LaunchLatency time.Duration
	// BytesPerSample is the PCIe payload of one inference request.
	BytesPerSample int
	// LinkBytesPerSec is the PCIe bandwidth.
	LinkBytesPerSec float64
	// ComputeBase is the fixed kernel execution time independent of batch.
	ComputeBase time.Duration
	// ComputePerSample is the marginal kernel time per batched sample.
	ComputePerSample time.Duration
}

// DefaultCostModel returns magnitudes representative of the paper's
// platform (PCIe 4.0 x16, a mid-size conv net on a large GPU).
func DefaultCostModel() CostModel {
	return CostModel{
		LaunchLatency:    30 * time.Microsecond,
		BytesPerSample:   4 * 15 * 15 * 4, // 4 planes of a 15x15 board, float32
		LinkBytesPerSec:  16e9,
		ComputeBase:      40 * time.Microsecond,
		ComputePerSample: 2 * time.Microsecond,
	}
}

// TransferTime returns the PCIe cost of one batch submission:
// L + batch*bytes/bandwidth. Summed over N/B submissions this is exactly
// the paper's T_PCIe = (N/B)*L + N/bandwidth.
func (m CostModel) TransferTime(batch int) time.Duration {
	bytes := float64(batch * m.BytesPerSample)
	return m.LaunchLatency + time.Duration(bytes/m.LinkBytesPerSec*1e9)*time.Nanosecond
}

// ComputeTime returns T_GPU_DNN(batch=B), monotonically increasing in B as
// observed in Section 4.2.
func (m CostModel) ComputeTime(batch int) time.Duration {
	return m.ComputeBase + time.Duration(batch)*m.ComputePerSample
}

// spin waits for d. Durations at or above the scheduler's sleep granularity
// use time.Sleep, which frees the core so concurrent submissions genuinely
// overlap even on small hosts; shorter waits busy-spin to stay accurate.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 500*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Model is the pure latency-model device.
type Model struct {
	model CostModel
	// computeMu serialises the compute phase across concurrent submissions,
	// emulating kernels from different CUDA streams sharing one GPU while
	// transfers overlap with compute.
	computeMu sync.Mutex
}

// NewModel creates a latency-model device.
func NewModel(model CostModel) *Model { return &Model{model: model} }

// Name implements Device.
func (d *Model) Name() string { return "sim-gpu(model)" }

// Cost returns the device's cost model.
func (d *Model) Cost() CostModel { return d.model }

// Infer implements Device: it spends the modeled transfer time (overlapping
// with other streams), then the modeled compute time (serialised), and
// fills deterministic synthetic outputs derived from each input's content.
func (d *Model) Infer(inputs [][]float32, policies [][]float32, values []float64) {
	spin(d.model.TransferTime(len(inputs)))
	d.computeMu.Lock()
	spin(d.model.ComputeTime(len(inputs)))
	d.computeMu.Unlock()
	for i, in := range inputs {
		synthesize(in, policies[i], &values[i])
	}
}

// synthesize produces a deterministic pseudo policy/value from the input
// content so searches against the Model device are reproducible and not
// degenerate (different states get different priors).
func synthesize(input []float32, policy []float32, value *float64) {
	var h uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < len(input); i += 7 {
		if input[i] != 0 {
			h ^= uint64(i+1) * 0xBF58476D1CE4E5B9
			h = (h << 13) | (h >> 51)
		}
	}
	r := rng.New(h)
	var sum float32
	for i := range policy {
		p := r.Float32() + 1e-3
		policy[i] = p
		sum += p
	}
	inv := 1 / sum
	for i := range policy {
		policy[i] *= inv
	}
	*value = r.Float64()*0.2 - 0.1 // small values: keeps search exploratory
}

// Hosted computes the real network on host cores with modeled
// launch/transfer latency injected. Batches run through the genuinely
// batched nn.ForwardBatch (one GEMM per layer for the whole sub-batch)
// rather than a per-sample loop.
type Hosted struct {
	net     *nn.Network
	model   CostModel
	workers int
	// pool reuses BatchWorkspaces across Infer calls, bucketed by
	// power-of-two batch capacity with deterministic high-water trimming
	// (see wsPool): recurring batch sizes stay allocation-free while a
	// one-off large batch cannot pin its multi-megabyte workspace forever.
	pool      *wsPool[*nn.BatchWorkspace]
	computeMu sync.Mutex
}

// NewHosted creates a hosted device that splits each batch across up to
// workers sub-batches evaluated concurrently (0 = GOMAXPROCS).
func NewHosted(net *nn.Network, model CostModel, workers int) *Hosted {
	d := &Hosted{net: net, model: model, workers: workers}
	d.pool = newWSPool(func(capB int) *nn.BatchWorkspace { return nn.NewBatchWorkspace(net, capB) })
	return d
}

// Name implements Device.
func (d *Hosted) Name() string { return "sim-gpu(hosted)" }

// Infer implements Device: the batch is split into contiguous per-worker
// sub-batches, each evaluated with one batched forward pass. As on the real
// accelerator, compute serialises across concurrent submissions while
// transfers overlap.
func (d *Hosted) Infer(inputs [][]float32, policies [][]float32, values []float64) {
	n := len(inputs)
	if n == 0 {
		return
	}
	spin(d.model.TransferTime(n))
	d.computeMu.Lock()
	defer d.computeMu.Unlock()
	workers := d.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		ws := d.pool.get(n)
		d.net.ForwardBatch(ws, inputs, policies, values)
		d.pool.put(ws)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ws := d.pool.get(hi - lo)
			defer d.pool.put(ws)
			d.net.ForwardBatch(ws, inputs[lo:hi], policies[lo:hi], values[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
}
