package accel_test

import (
	"fmt"
	"testing"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

func BenchmarkHostedInferGomoku(b *testing.B) {
	r := rng.New(7)
	net := nn.MustNew(nn.GomokuConfig(4, 15, 15, 225), r)
	model := accel.CostModel{} // zero latency model: measure pure compute
	for _, batch := range []int{1, 8, 16, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			dev := accel.NewHosted(net, model, 0)
			inputs := make([][]float32, batch)
			policies := make([][]float32, batch)
			values := make([]float64, batch)
			for i := range inputs {
				in := make([]float32, net.InputLen())
				for j := range in {
					if r.Float32() < 0.1 {
						in[j] = 1
					}
				}
				inputs[i] = in
				policies[i] = make([]float32, 225)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.Infer(inputs, policies, values)
			}
		})
	}
}
