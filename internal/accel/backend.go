package accel

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/tensor"
)

// Capabilities describes what an inference backend actually computes, so
// callers (arena gates, experiment drivers, report headers) can reason about
// a backend without knowing its concrete type.
type Capabilities struct {
	// RealOutputs is true when policies/values come from a real network
	// forward pass (Hosted, HostedQuantized) rather than the latency model's
	// synthetic outputs.
	RealOutputs bool
	// Quantized is true when inference runs the int8 path.
	Quantized bool
	// Kernel is the tensor micro-kernel class dispatched at construction
	// ("generic", "sse", "avx2").
	Kernel string
}

// Backend is the pluggable accelerator seam: a Device plus introspection and
// an explicit lifecycle. Every built-in device implements it, and binaries
// select one by name via NewBackend instead of hard-wiring a constructor.
type Backend interface {
	Device
	// Capabilities reports what this backend computes.
	Capabilities() Capabilities
	// Close releases pooled resources. The backend must not be used after
	// Close; Close is idempotent.
	Close() error
}

// BackendSpec carries everything a backend factory might need. Factories use
// the fields relevant to them and must error on missing requirements rather
// than guessing.
type BackendSpec struct {
	// Net is the fp32 network (required by "hosted", and by
	// "hosted-quantized" when Quant is nil only for its config).
	Net *nn.Network
	// Quant is the quantized network for int8 backends. Required by
	// "hosted-quantized": quantization needs calibration data the backend
	// layer cannot invent.
	Quant *nn.QuantizedNetwork
	// Cost is the simulated accelerator latency profile.
	Cost CostModel
	// Workers bounds per-Infer parallelism (0 = GOMAXPROCS).
	Workers int
}

// Factory constructs a backend from a spec.
type Factory func(spec BackendSpec) (Backend, error)

var (
	backendsMu sync.RWMutex
	backends   = map[string]Factory{}
)

// RegisterBackend makes a backend constructible by name. Duplicate names
// panic: backend names are compile-time wiring, not runtime input.
func RegisterBackend(name string, f Factory) {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if _, dup := backends[name]; dup {
		panic("accel: duplicate backend " + name)
	}
	backends[name] = f
}

// NewBackend constructs the named backend. Unknown names report the
// available set.
func NewBackend(name string, spec BackendSpec) (Backend, error) {
	backendsMu.RLock()
	f, ok := backends[name]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("accel: unknown backend %q (have %v)", name, BackendNames())
	}
	return f(spec)
}

// BackendNames returns the registered backend names, sorted.
func BackendNames() []string {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterBackend("model", func(spec BackendSpec) (Backend, error) {
		return NewModel(spec.Cost), nil
	})
	RegisterBackend("hosted", func(spec BackendSpec) (Backend, error) {
		if spec.Net == nil {
			return nil, fmt.Errorf("accel: backend \"hosted\" requires a network")
		}
		return NewHosted(spec.Net, spec.Cost, spec.Workers), nil
	})
	RegisterBackend("hosted-quantized", func(spec BackendSpec) (Backend, error) {
		if spec.Quant == nil {
			return nil, fmt.Errorf("accel: backend \"hosted-quantized\" requires a calibrated quantized network")
		}
		return NewHostedQuantized(spec.Quant, spec.Cost, spec.Workers), nil
	})
}

// Capabilities implements Backend.
func (d *Model) Capabilities() Capabilities {
	return Capabilities{Kernel: tensor.KernelName()}
}

// Close implements Backend. The latency model holds no resources.
func (d *Model) Close() error { return nil }

// Capabilities implements Backend.
func (d *Hosted) Capabilities() Capabilities {
	return Capabilities{RealOutputs: true, Kernel: tensor.KernelName()}
}

// Close implements Backend: pooled workspaces are released.
func (d *Hosted) Close() error {
	d.pool.drain()
	return nil
}

// HostedQuantized is Hosted's int8 sibling: the real network computed on
// host cores through nn.ForwardBatchQuantized, with the same modeled
// launch/transfer latency and compute serialisation. It is constructed from
// an already-calibrated nn.QuantizedNetwork — typically derived from a
// promoted checkpoint with replay-buffer calibration samples — and gated
// through the arena like any other candidate model version before serving.
type HostedQuantized struct {
	qnet      *nn.QuantizedNetwork
	model     CostModel
	workers   int
	pool      *wsPool[*nn.QuantWorkspace]
	computeMu sync.Mutex
}

// NewHostedQuantized creates a quantized hosted device splitting each batch
// across up to workers sub-batches (0 = GOMAXPROCS).
func NewHostedQuantized(qnet *nn.QuantizedNetwork, model CostModel, workers int) *HostedQuantized {
	d := &HostedQuantized{qnet: qnet, model: model, workers: workers}
	d.pool = newWSPool(func(capB int) *nn.QuantWorkspace { return qnet.NewWorkspace(capB) })
	return d
}

// Name implements Device.
func (d *HostedQuantized) Name() string { return "sim-gpu(hosted-int8)" }

// Capabilities implements Backend.
func (d *HostedQuantized) Capabilities() Capabilities {
	return Capabilities{RealOutputs: true, Quantized: true, Kernel: tensor.KernelName()}
}

// Close implements Backend.
func (d *HostedQuantized) Close() error {
	d.pool.drain()
	return nil
}

// Infer implements Device with the same submission semantics as Hosted.
func (d *HostedQuantized) Infer(inputs [][]float32, policies [][]float32, values []float64) {
	n := len(inputs)
	if n == 0 {
		return
	}
	spin(d.model.TransferTime(n))
	d.computeMu.Lock()
	defer d.computeMu.Unlock()
	workers := d.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		ws := d.pool.get(n)
		d.qnet.ForwardBatchQuantized(ws, inputs, policies, values)
		d.pool.put(ws)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ws := d.pool.get(hi - lo)
			defer d.pool.put(ws)
			d.qnet.ForwardBatchQuantized(ws, inputs[lo:hi], policies[lo:hi], values[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
}
