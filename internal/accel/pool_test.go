package accel

import (
	"testing"

	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

type fakeWS struct{ capB int }

func (f *fakeWS) Cap() int { return f.capB }

func newFakePool() *wsPool[*fakeWS] {
	return newWSPool(func(capB int) *fakeWS { return &fakeWS{capB: capB} })
}

// TestPoolSteadyStateReuse: a recurring batch size constructs exactly one
// workspace, forever — the pool's whole point is that steady-state serving
// is allocation-free.
func TestPoolSteadyStateReuse(t *testing.T) {
	p := newFakePool()
	for i := 0; i < 10*poolWindow; i++ {
		ws := p.get(4)
		if ws.Cap() != 4 {
			t.Fatalf("got cap %d, want 4", ws.Cap())
		}
		p.put(ws)
	}
	if c := p.createdCount(); c != 1 {
		t.Fatalf("steady-state traffic constructed %d workspaces, want 1", c)
	}
}

// TestPoolReleasesOversizedWorkspace is the regression test for the
// memory-pinning bug: a single oversized Infer must not pin its workspace
// once steady-state traffic shows the capacity is no longer needed. Within
// two trim windows the big bucket must be gone, deterministically — no GC
// cycle involved.
func TestPoolReleasesOversizedWorkspace(t *testing.T) {
	p := newFakePool()
	// Steady state at batch 4, then one 512 burst.
	for i := 0; i < 8; i++ {
		p.put(p.get(4))
	}
	p.put(p.get(512))
	hasCap := func(c int) bool {
		for _, v := range p.pooledCaps() {
			if v == c {
				return true
			}
		}
		return false
	}
	if !hasCap(512) {
		t.Fatal("big workspace should be pooled immediately after the burst")
	}
	// Three full windows of small traffic: the burst capacity is the
	// high-water mark of its own window, survives one more window through
	// prevHi hysteresis, and must be dropped by the third roll.
	for i := 0; i < 3*poolWindow; i++ {
		p.put(p.get(4))
	}
	if hasCap(512) {
		t.Fatalf("oversized workspace still pooled after three trim windows; pooled caps = %v", p.pooledCaps())
	}
	if !hasCap(4) {
		t.Fatal("steady-state bucket must survive trimming")
	}
}

// TestPoolHysteresisKeepsRecurrentLarge: a batch size that recurs every
// window must NOT be dropped — trimming keys on the high-water mark of the
// last two windows, not on per-bucket idleness.
func TestPoolHysteresisKeepsRecurrentLarge(t *testing.T) {
	p := newFakePool()
	for w := 0; w < 4; w++ {
		for i := 0; i < poolWindow-1; i++ {
			p.put(p.get(4))
		}
		p.put(p.get(256)) // one large call per window
	}
	if c := p.createdCount(); c != 2 {
		t.Fatalf("recurrent large batch was evicted and reconstructed: created %d workspaces, want 2", c)
	}
}

// TestHostedSteadyStateAllocations drives the real Hosted device end to end:
// after the first call warms the pool, repeated same-size Infers construct
// no further BatchWorkspaces.
func TestHostedSteadyStateAllocations(t *testing.T) {
	net := nn.MustNew(nn.TinyConfig(2, 5, 5, 25), rng.New(1))
	d := NewHosted(net, CostModel{LinkBytesPerSec: 1e12}, 1)
	defer d.Close()

	const batch = 8
	inputs := make([][]float32, batch)
	policies := make([][]float32, batch)
	for i := range inputs {
		inputs[i] = make([]float32, net.InputLen())
		policies[i] = make([]float32, net.Cfg.NumActions)
	}
	values := make([]float64, batch)

	d.Infer(inputs, policies, values)
	after := d.pool.createdCount()
	for i := 0; i < 64; i++ {
		d.Infer(inputs, policies, values)
	}
	if c := d.pool.createdCount(); c != after {
		t.Fatalf("steady-state Infer constructed %d extra workspaces", c-after)
	}
}
