// Package perfmodel implements Section 4 of the paper: the high-level
// performance models for the two tree-parallel schemes (Equations 3-6), the
// design-time profiling that supplies their inputs, the O(log N) V-sequence
// search for the accelerator sub-batch size (Algorithm 4), and the design
// configuration workflow that ties them together.
package perfmodel

import (
	"time"

	"github.com/parmcts/parmcts/internal/accel"
)

// Scheme identifies a tree-parallel implementation.
type Scheme int

// The two schemes the adaptive framework chooses between.
const (
	SchemeShared Scheme = iota
	SchemeLocal
)

// String returns the scheme name.
func (s Scheme) String() string {
	if s == SchemeShared {
		return "shared"
	}
	return "local"
}

// Params holds the profiled application/hardware quantities the models
// consume (Section 4.2). All per-iteration latencies are for a single
// worker on a single thread.
type Params struct {
	// TSelect and TBackup are the amortized per-iteration in-tree operation
	// latencies measured on a synthetic tree with the target fanout/depth.
	TSelect time.Duration
	TBackup time.Duration
	// TDNNCPU is the single-threaded CPU inference latency for one state.
	TDNNCPU time.Duration
	// TSharedAccess is the shared-memory (DDR) access latency each worker
	// pays when touching contended nodes near the root; the paper estimates
	// it "as the DDR access latency documented for the target CPU".
	TSharedAccess time.Duration
	// GPU, when non-nil, describes the accelerator (Equations 4 and 6).
	GPU *accel.CostModel
}

// SharedCPU evaluates Equation 3: the latency of one round of N worker
// iterations under the shared-tree scheme on a CPU,
//
//	T ≈ T_shared_access*N + T_select + T_backup + T_DNN_CPU
//
// The in-tree operations of the N workers overlap except for the serialised
// root-level communication (the N*T_access term); each worker then runs its
// own DNN inference on its own thread.
func SharedCPU(p Params, n int) time.Duration {
	return time.Duration(n)*p.TSharedAccess + p.TSelect + p.TBackup + p.TDNNCPU
}

// LocalCPU evaluates Equation 5: one round of N iterations under the
// local-tree scheme on a CPU,
//
//	T ≈ max((T_select+T_backup)*N, T_DNN_CPU)
//
// The master's N sequential in-tree operations overlap with the worker
// pool's N parallel inferences; whichever is longer bounds the round.
func LocalCPU(p Params, n int) time.Duration {
	inTree := time.Duration(n) * (p.TSelect + p.TBackup)
	if inTree > p.TDNNCPU {
		return inTree
	}
	return p.TDNNCPU
}

// SharedGPU evaluates Equation 4: Equation 3 with the DNN term replaced by
// a full-batch accelerator call (batch = N, as Section 3.3 prescribes for
// the shared scheme).
func SharedGPU(p Params, n int) time.Duration {
	if p.GPU == nil {
		panic("perfmodel: SharedGPU requires Params.GPU")
	}
	gpu := p.GPU.TransferTime(n) + p.GPU.ComputeTime(n)
	return time.Duration(n)*p.TSharedAccess + p.TSelect + p.TBackup + gpu
}

// PCIeTime evaluates the T_PCIe term of Equation 6 for n total samples
// moved in sub-batches of b: (n/b) launches each costing L, plus the
// bandwidth term for all n samples.
func PCIeTime(m accel.CostModel, n, b int) time.Duration {
	launches := (n + b - 1) / b
	bytes := float64(n * m.BytesPerSample)
	return time.Duration(launches)*m.LaunchLatency +
		time.Duration(bytes/m.LinkBytesPerSec*1e9)*time.Nanosecond
}

// LocalGPU evaluates Equation 6: one round of N iterations under the
// local-tree scheme with the DNN offloaded in sub-batches of size B on
// N/B streams,
//
//	T ≈ max((T_select+T_backup)*N, T_PCIe, T_GPU_compute(batch=B))
//
// Section 4.2 establishes that the first two terms are non-increasing in B
// and the third non-decreasing, making the sequence over B a V-sequence.
func LocalGPU(p Params, n, b int) time.Duration {
	if p.GPU == nil {
		panic("perfmodel: LocalGPU requires Params.GPU")
	}
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	inTree := time.Duration(n) * (p.TSelect + p.TBackup)
	pcie := PCIeTime(*p.GPU, n, b)
	compute := p.GPU.ComputeTime(b)
	m := inTree
	if pcie > m {
		m = pcie
	}
	if compute > m {
		m = compute
	}
	return m
}

// SharedGPUTenants extends Equation 4 to G co-located shared-tree searches
// whose synchronous full batches are aggregated by one inference service:
// the device sees one batch of G*N per round instead of G batches of N.
// Each tenant's workers still pay their own serialized tree access and
// selection; the (bigger) batch round-trip is shared, so the per-round
// latency is Equation 4 with the batch term evaluated at aggregate fill.
// G=1 reduces exactly to SharedGPU.
func SharedGPUTenants(p Params, n, g int) time.Duration {
	if p.GPU == nil {
		panic("perfmodel: SharedGPUTenants requires Params.GPU")
	}
	if g < 1 {
		g = 1
	}
	gpu := p.GPU.TransferTime(g*n) + p.GPU.ComputeTime(g*n)
	return time.Duration(n)*p.TSharedAccess + p.TSelect + p.TBackup + gpu
}

// LocalGPUTenants extends Equation 6 to G concurrent local-tree masters
// sharing one inference service with aggregate batch threshold B:
//
//	T ≈ max((T_select+T_backup)*N, T_PCIe(G*N, B)/G, T_GPU_compute(batch=B))
//
// Per tenant round (N iterations) the service moves G*N samples in batches
// of B, so the per-launch cost L amortizes over the aggregate fill — B may
// now exceed one tenant's in-flight bound N, the regime a single
// BatchedAsync can never reach. The in-tree term is unchanged (each master
// runs on its own core); the PCIe term is the aggregate cost shared G ways;
// the compute term is the per-batch kernel time as in Equation 6. The
// sequence over B remains a V-sequence (first two terms non-increasing,
// third non-decreasing), so Algorithm 4 applies on the widened range
// [1, G*N]. G=1 reduces exactly to LocalGPU.
func LocalGPUTenants(p Params, n, b, g int) time.Duration {
	if p.GPU == nil {
		panic("perfmodel: LocalGPUTenants requires Params.GPU")
	}
	if g < 1 {
		g = 1
	}
	if b < 1 {
		b = 1
	}
	if b > g*n {
		b = g * n
	}
	inTree := time.Duration(n) * (p.TSelect + p.TBackup)
	pcie := PCIeTime(*p.GPU, g*n, b) / time.Duration(g)
	compute := p.GPU.ComputeTime(b)
	m := inTree
	if pcie > m {
		m = pcie
	}
	if compute > m {
		m = compute
	}
	return m
}

// PerIteration converts a round latency into the paper's amortized
// per-worker-iteration metric.
func PerIteration(round time.Duration, n int) time.Duration {
	if n < 1 {
		return round
	}
	return round / time.Duration(n)
}

// DefaultSharedAccess is a representative DDR round-trip latency for a
// many-core workstation CPU, used when no measured value is supplied.
const DefaultSharedAccess = 90 * time.Nanosecond
