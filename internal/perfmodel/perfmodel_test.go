package perfmodel

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/rng"
)

func testParams() Params {
	gpu := accel.DefaultCostModel()
	return Params{
		TSelect:       2 * time.Microsecond,
		TBackup:       1 * time.Microsecond,
		TDNNCPU:       800 * time.Microsecond,
		TSharedAccess: DefaultSharedAccess,
		GPU:           &gpu,
	}
}

func TestSharedCPUFormula(t *testing.T) {
	p := testParams()
	got := SharedCPU(p, 16)
	want := 16*p.TSharedAccess + p.TSelect + p.TBackup + p.TDNNCPU
	if got != want {
		t.Fatalf("SharedCPU = %v, want %v", got, want)
	}
}

func TestLocalCPUTakesMax(t *testing.T) {
	p := testParams()
	// DNN-bound at small N.
	if got := LocalCPU(p, 1); got != p.TDNNCPU {
		t.Fatalf("LocalCPU(1) = %v, want DNN-bound %v", got, p.TDNNCPU)
	}
	// In-tree-bound at large N: (2+1)us * 1000 = 3ms > 800us.
	if got := LocalCPU(p, 1000); got != 3*time.Millisecond {
		t.Fatalf("LocalCPU(1000) = %v, want 3ms", got)
	}
}

func TestCPUModelCrossover(t *testing.T) {
	// The defining tradeoff (Section 3.2): local wins when DNN inference is
	// the bottleneck (small N), shared wins once the serialized in-tree
	// operations dominate (large N). The models must reproduce that
	// crossover for these representative parameters.
	p := testParams()
	if ConfigureCPU(p, 2).Scheme != SchemeLocal {
		t.Error("N=2 should favour local (DNN-bound)")
	}
	if ConfigureCPU(p, 2048).Scheme != SchemeShared {
		t.Error("N=2048 should favour shared (in-tree-bound)")
	}
	// Monotone handoff: once shared wins it keeps winning as N grows.
	crossed := false
	for n := 1; n <= 4096; n *= 2 {
		s := ConfigureCPU(p, n).Scheme
		if crossed && s != SchemeShared {
			t.Fatalf("scheme flipped back to local at N=%d", n)
		}
		if s == SchemeShared {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("no crossover observed")
	}
}

func TestSharedGPUFormula(t *testing.T) {
	p := testParams()
	n := 32
	got := SharedGPU(p, n)
	want := time.Duration(n)*p.TSharedAccess + p.TSelect + p.TBackup +
		p.GPU.TransferTime(n) + p.GPU.ComputeTime(n)
	if got != want {
		t.Fatalf("SharedGPU = %v, want %v", got, want)
	}
}

func TestGPUPanicsWithoutModel(t *testing.T) {
	p := testParams()
	p.GPU = nil
	for name, f := range map[string]func(){
		"SharedGPU": func() { SharedGPU(p, 4) },
		"LocalGPU":  func() { LocalGPU(p, 4, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without GPU did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPCIeTimeMatchesPaperModel(t *testing.T) {
	m := accel.DefaultCostModel()
	n, b := 64, 8
	got := PCIeTime(m, n, b)
	launches := time.Duration(8) * m.LaunchLatency
	bw := time.Duration(float64(64*m.BytesPerSample) / m.LinkBytesPerSec * 1e9)
	if got != launches+bw {
		t.Fatalf("PCIe = %v, want %v", got, launches+bw)
	}
	// (N/B)*L term: fewer launches as B grows.
	if PCIeTime(m, 64, 1) <= PCIeTime(m, 64, 64) {
		t.Error("PCIe time should fall as B grows")
	}
}

func TestLocalGPUIsVSequence(t *testing.T) {
	// Section 4.2's central observation: over B in [1, N] the Equation 6
	// latency first (weakly) falls, then (weakly) rises.
	p := testParams()
	for _, n := range []int{16, 32, 64} {
		prev := LocalGPU(p, n, 1)
		falling := true
		for b := 2; b <= n; b++ {
			cur := LocalGPU(p, n, b)
			if falling && cur > prev {
				falling = false
			} else if !falling && cur < prev {
				t.Fatalf("N=%d: sequence rose then fell at B=%d", n, b)
			}
			prev = cur
		}
	}
}

func TestLocalGPUClampsB(t *testing.T) {
	p := testParams()
	if LocalGPU(p, 8, 0) != LocalGPU(p, 8, 1) {
		t.Error("B=0 should clamp to 1")
	}
	if LocalGPU(p, 8, 99) != LocalGPU(p, 8, 8) {
		t.Error("B>N should clamp to N")
	}
}

func TestFindMinVOnKnownSequence(t *testing.T) {
	seq := []time.Duration{9, 7, 5, 3, 2, 4, 6, 8}
	arg, probes := FindMinV(0, len(seq)-1, func(i int) time.Duration { return seq[i] })
	if arg != 4 {
		t.Fatalf("argmin = %d, want 4", arg)
	}
	if probes > 8 {
		t.Fatalf("probes = %d, too many", probes)
	}
}

func TestFindMinVPropertyMatchesLinear(t *testing.T) {
	// Generate random V-sequences as element-wise max of a strictly
	// decreasing and a strictly increasing sequence — the structure Section
	// 4.2 derives for Equation 6 (measured latencies are real-valued, so
	// the paper's analysis assumes strict monotonicity within each phase) —
	// and check FindMinV returns a global minimum.
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%63 + 2
		dec := make([]time.Duration, n)
		inc := make([]time.Duration, n)
		cur := time.Duration(10000 + r.Intn(1000))
		for i := 0; i < n; i++ {
			dec[i] = cur
			cur -= time.Duration(r.Intn(40) + 1) // strictly decreasing
		}
		cur = time.Duration(r.Intn(100))
		for i := 0; i < n; i++ {
			inc[i] = cur
			cur += time.Duration(r.Intn(40) + 1) // strictly increasing
		}
		seq := make([]time.Duration, n)
		for i := range seq {
			seq[i] = dec[i]
			if inc[i] > seq[i] {
				seq[i] = inc[i]
			}
		}
		arg, _ := FindMinV(0, n-1, func(i int) time.Duration { return seq[i] })
		lin, _ := ArgminLinear(0, n-1, func(i int) time.Duration { return seq[i] })
		return seq[arg] == seq[lin]
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFindMinVProbeComplexity(t *testing.T) {
	// O(log N) probes vs the naive O(N): the whole point of Algorithm 4.
	seq := make([]time.Duration, 1024)
	for i := range seq {
		d := i - 700
		if d < 0 {
			d = -d
		}
		seq[i] = time.Duration(d)
	}
	_, probes := FindMinV(0, 1023, func(i int) time.Duration { return seq[i] })
	if probes > 2*11 { // 2 probes per halving step
		t.Fatalf("probes = %d, want <= 22", probes)
	}
	_, linProbes := ArgminLinear(0, 1023, func(i int) time.Duration { return seq[i] })
	if linProbes != 1024 {
		t.Fatalf("linear probes = %d", linProbes)
	}
}

func TestFindMinVPanicsOnEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty range did not panic")
		}
	}()
	FindMinV(3, 2, func(int) time.Duration { return 0 })
}

func TestProfileInTree(t *testing.T) {
	prof := ProfileInTree(SyntheticSpec{Fanout: 10, DepthLimit: 50, Playouts: 500, Seed: 1})
	if prof.TSelect <= 0 || prof.TBackup <= 0 {
		t.Fatalf("non-positive profile: %+v", prof)
	}
	if prof.AvgDepth <= 0 {
		t.Fatal("no depth recorded")
	}
	if prof.Nodes <= 10 {
		t.Fatalf("tree barely grew: %d nodes", prof.Nodes)
	}
}

func TestProfileInTreeDepthLimit(t *testing.T) {
	// Fanout 1 forces a line tree; depth limit must cap it.
	prof := ProfileInTree(SyntheticSpec{Fanout: 1, DepthLimit: 5, Playouts: 200, Seed: 2})
	if prof.Nodes > 7 {
		t.Fatalf("depth limit ignored: %d nodes", prof.Nodes)
	}
}

func TestProfileInTreePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad spec did not panic")
		}
	}()
	ProfileInTree(SyntheticSpec{Fanout: 0, Playouts: 10})
}

func TestProfileDNNMeasuresLatency(t *testing.T) {
	eval := &evaluate.Random{Latency: 200 * time.Microsecond}
	got := ProfileDNN(eval, 100, 25, 20)
	if got < 200*time.Microsecond || got > 2*time.Millisecond {
		t.Fatalf("profiled latency %v, expected ~200us", got)
	}
}

func TestConfigureGPUUsesTestRuns(t *testing.T) {
	p := testParams()
	n := 32
	calls := 0
	// A synthetic per-iteration V over B with minimum at B=8. Its floor
	// (2us) undercuts the Equation 4 shared prediction (~4.6us per
	// iteration at N=32 for these parameters), so the workflow must pick
	// local with the searched batch size.
	testRun := func(b int) time.Duration {
		calls++
		d := b - 8
		if d < 0 {
			d = -d
		}
		return time.Duration(d)*time.Microsecond + 2*time.Microsecond
	}
	c := ConfigureGPU(p, n, testRun)
	if c.Scheme != SchemeLocal {
		t.Fatalf("scheme = %v, want local", c.Scheme)
	}
	if c.BatchSize != 8 {
		t.Fatalf("batch = %d, want 8", c.BatchSize)
	}
	if c.Probes > 14 {
		t.Fatalf("probes = %d, want O(log 32)", c.Probes)
	}
	if calls > c.Probes+2 { // memoized: final re-probe may hit cache
		t.Fatalf("calls = %d vs probes %d", calls, c.Probes)
	}
}

func TestConfigureGPUFallsBackToShared(t *testing.T) {
	p := testParams()
	// Make every local test run slower than the shared prediction.
	slow := func(b int) time.Duration { return time.Second }
	c := ConfigureGPU(p, 16, slow)
	if c.Scheme != SchemeShared {
		t.Fatalf("scheme = %v, want shared", c.Scheme)
	}
	if c.BatchSize != 16 {
		t.Fatalf("shared batch must be N; got %d", c.BatchSize)
	}
}

func TestConfigureGPUModelFallback(t *testing.T) {
	p := testParams()
	c := ConfigureGPU(p, 64, nil)
	if c.BatchSize < 1 || c.BatchSize > 64 {
		t.Fatalf("batch = %d out of range", c.BatchSize)
	}
	if c.PredictedLocal <= 0 || c.PredictedShared <= 0 {
		t.Fatal("predictions missing")
	}
}

func TestChoicePerIteration(t *testing.T) {
	// Predictions are stored per-iteration; the accessors are identities.
	c := Choice{N: 10, PredictedShared: time.Second, PredictedLocal: 500 * time.Millisecond}
	if c.PerIterationShared() != time.Second {
		t.Fatal("PerIterationShared wrong")
	}
	if c.PerIterationLocal() != 500*time.Millisecond {
		t.Fatal("PerIterationLocal wrong")
	}
	// ConfigureCPU stores amortized per-iteration values.
	p := testParams()
	cc := ConfigureCPU(p, 8)
	if cc.PredictedShared != PerIteration(SharedCPU(p, 8), 8) {
		t.Fatal("ConfigureCPU prediction not per-iteration")
	}
}

func TestTenantModelsReduceToSingleTenant(t *testing.T) {
	p := testParams()
	for _, n := range []int{4, 16, 64} {
		if SharedGPUTenants(p, n, 1) != SharedGPU(p, n) {
			t.Fatalf("SharedGPUTenants(n=%d, g=1) != SharedGPU", n)
		}
		for b := 1; b <= n; b++ {
			if LocalGPUTenants(p, n, b, 1) != LocalGPU(p, n, b) {
				t.Fatalf("LocalGPUTenants(n=%d, b=%d, g=1) != LocalGPU", n, b)
			}
		}
	}
	c1 := ConfigureGPUTenants(p, 16, 1, nil)
	c0 := ConfigureGPU(p, 16, nil)
	if c1.Scheme != c0.Scheme || c1.BatchSize != c0.BatchSize {
		t.Fatalf("ConfigureGPUTenants(g=1) = %+v, ConfigureGPU = %+v", c1, c0)
	}
}

func TestLocalGPUTenantsAggregateFill(t *testing.T) {
	p := testParams()
	const n = 8
	// The single-tenant optimum is confined to B <= N; with G tenants the
	// service can batch past one tenant's in-flight bound and the modeled
	// per-round latency at the G-tenant optimum must be no worse — and, for
	// a launch-dominated device, strictly better.
	gpu := *p.GPU
	gpu.LaunchLatency = 200 * time.Microsecond // launch-dominated regime
	p.GPU = &gpu
	bestSingle, _ := FindMinV(1, n, func(b int) time.Duration { return LocalGPU(p, n, b) })
	singleOpt := LocalGPU(p, n, bestSingle)
	const g = 8
	bestAgg, _ := FindMinV(1, g*n, func(b int) time.Duration { return LocalGPUTenants(p, n, b, g) })
	aggOpt := LocalGPUTenants(p, n, bestAgg, g)
	if aggOpt >= singleOpt {
		t.Fatalf("aggregate fill did not help: g=8 optimum %v (B=%d) vs single %v (B=%d)",
			aggOpt, bestAgg, singleOpt, bestSingle)
	}
	if bestAgg <= n {
		t.Fatalf("launch-dominated optimum should exceed one tenant's bound: B=%d <= N=%d", bestAgg, n)
	}
}

func TestLocalGPUTenantsIsVSequence(t *testing.T) {
	p := testParams()
	const n, g = 16, 4
	prev := LocalGPUTenants(p, n, 1, g)
	falling := true
	for b := 2; b <= g*n; b++ {
		cur := LocalGPUTenants(p, n, b, g)
		if falling && cur > prev {
			falling = false
		} else if !falling && cur < prev {
			t.Fatalf("tenant sequence rose then fell at B=%d", b)
		}
		prev = cur
	}
}

func TestConfigureGPUTenantsSearchesWidenedRange(t *testing.T) {
	p := testParams()
	gpu := *p.GPU
	gpu.LaunchLatency = 200 * time.Microsecond
	p.GPU = &gpu
	c := ConfigureGPUTenants(p, 8, 8, nil)
	if c.BatchSize < 1 || c.BatchSize > 64 {
		t.Fatalf("service threshold %d out of [1, G*N]", c.BatchSize)
	}
	if c.Scheme == SchemeLocal && c.BatchSize <= 8 {
		t.Fatalf("launch-dominated G=8 search stayed inside one tenant's range: B=%d", c.BatchSize)
	}
}

func BenchmarkFindMinV(b *testing.B) {
	seq := make([]time.Duration, 64)
	for i := range seq {
		d := i - 20
		if d < 0 {
			d = -d
		}
		seq[i] = time.Duration(d)
	}
	for i := 0; i < b.N; i++ {
		FindMinV(0, 63, func(j int) time.Duration { return seq[j] })
	}
}
