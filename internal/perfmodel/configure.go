package perfmodel

import "time"

// Choice is the output of the design configuration workflow: the parallel
// scheme to compile in (and, on an accelerator platform, the sub-batch
// size B), plus the evidence behind the decision.
type Choice struct {
	// N is the worker count the choice was made for.
	N int
	// Scheme is the selected parallel implementation.
	Scheme Scheme
	// BatchSize is the accelerator sub-batch size B for the local scheme
	// (equals N for the shared scheme, which always submits full batches).
	BatchSize int
	// PredictedShared and PredictedLocal are the amortized
	// per-worker-iteration latencies the decision compared (model-derived,
	// or test-run-derived for local+GPU) — the paper's speed metric.
	PredictedShared time.Duration
	PredictedLocal  time.Duration
	// Probes counts the test runs spent searching B (0 on CPU-only).
	Probes int
}

// PerIterationShared returns the per-iteration prediction for the shared
// scheme.
func (c Choice) PerIterationShared() time.Duration { return c.PredictedShared }

// PerIterationLocal returns the per-iteration prediction for the local
// scheme.
func (c Choice) PerIterationLocal() time.Duration { return c.PredictedLocal }

// ConfigureCPU runs the CPU-only design configuration workflow: plug the
// profiled parameters into Equations 3 and 5 and pick the faster scheme.
func ConfigureCPU(p Params, n int) Choice {
	shared := PerIteration(SharedCPU(p, n), n)
	local := PerIteration(LocalCPU(p, n), n)
	c := Choice{N: n, PredictedShared: shared, PredictedLocal: local, BatchSize: n}
	if local <= shared {
		c.Scheme = SchemeLocal
	} else {
		c.Scheme = SchemeShared
	}
	return c
}

// ConfigureGPU runs the CPU-GPU workflow. The shared scheme's latency comes
// from Equation 4 (its batch size is pinned to N). The local scheme's best
// sub-batch size B is found with Algorithm 4 over testRun, the caller's
// "Test Run" that measures one move and reports the amortized
// per-worker-iteration latency at a given B (total move time / playouts,
// exactly how Section 5.3 measures); when testRun is nil the Equation 6
// model substitutes for it.
func ConfigureGPU(p Params, n int, testRun func(b int) time.Duration) Choice {
	return configureGPU(PerIteration(SharedGPU(p, n), n), p, n, testRun)
}

// ConfigureGPUMeasured is ConfigureGPU with a measured (rather than
// Equation 4-modeled) shared-scheme per-iteration latency, for workflows
// that can afford one extra test run: comparing two measurements avoids
// model error flipping marginal decisions.
func ConfigureGPUMeasured(sharedPerIter time.Duration, p Params, n int, testRun func(b int) time.Duration) Choice {
	return configureGPU(sharedPerIter, p, n, testRun)
}

// ConfigureGPUTenants runs the CPU-GPU workflow for G co-located searches
// sharing one inference service: the shared scheme's latency comes from the
// aggregate-fill Equation 4 (SharedGPUTenants), and the local scheme's
// service batch threshold B is searched with Algorithm 4 over the widened
// V-sequence [1, G*N] of LocalGPUTenants — the aggregate batch-fill model.
// The returned Choice's BatchSize is the SERVICE threshold (aggregate
// across tenants), not one tenant's sub-batch. A non-nil testRun must
// therefore measure the whole G-tenant fleet at a candidate service
// threshold; a single-search probe cannot reach thresholds beyond one
// tenant's in-flight bound and would mislead the search — pass nil to use
// the model instead. G=1 reduces to ConfigureGPU.
func ConfigureGPUTenants(p Params, n, g int, testRun func(b int) time.Duration) Choice {
	if g < 1 {
		g = 1
	}
	shared := PerIteration(SharedGPUTenants(p, n, g), n)
	probe := testRun
	if probe == nil {
		probe = func(b int) time.Duration { return PerIteration(LocalGPUTenants(p, n, b, g), n) }
	}
	bestB, probes := FindMinV(1, g*n, probe)
	local := probe(bestB)
	c := Choice{
		N:               n,
		BatchSize:       bestB,
		PredictedShared: shared,
		PredictedLocal:  local,
		Probes:          probes,
	}
	if local <= shared {
		c.Scheme = SchemeLocal
	} else {
		c.Scheme = SchemeShared
		c.BatchSize = g * n
	}
	return c
}

func configureGPU(shared time.Duration, p Params, n int, testRun func(b int) time.Duration) Choice {
	probe := testRun
	if probe == nil {
		probe = func(b int) time.Duration { return PerIteration(LocalGPU(p, n, b), n) }
	}
	bestB, probes := FindMinV(1, n, probe)
	local := probe(bestB)
	c := Choice{
		N:               n,
		BatchSize:       bestB,
		PredictedShared: shared,
		PredictedLocal:  local,
		Probes:          probes,
	}
	if local <= shared {
		c.Scheme = SchemeLocal
	} else {
		c.Scheme = SchemeShared
		c.BatchSize = n
	}
	return c
}
