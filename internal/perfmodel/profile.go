package perfmodel

import (
	"time"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/rng"
	"github.com/parmcts/parmcts/internal/tree"
)

// SyntheticSpec describes the design-time profiling workload of Section
// 4.2: a synthetic tree "constructed for one episode with random-generated
// UCT scores, emulating the same fanout and depth limit defined by the
// DNN-MCTS algorithm".
type SyntheticSpec struct {
	// Fanout is the branching factor (the game's action-space size).
	Fanout int
	// DepthLimit caps the tree depth; deeper selections are treated as
	// terminal (the game's maximum length).
	DepthLimit int
	// Playouts is the number of select/expand/backup iterations profiled
	// (one move's budget).
	Playouts int
	// Seed drives the random priors and leaf values.
	Seed uint64
}

// InTreeProfile reports the amortized single-worker in-tree latencies.
type InTreeProfile struct {
	TSelect  time.Duration // mean selection time per iteration
	TBackup  time.Duration // mean backup (incl. expansion bookkeeping) per iteration
	AvgDepth float64       // mean leaf depth reached
	Nodes    int           // nodes allocated over the episode
}

// ProfileInTree measures T_select and T_backup by running a full episode of
// pure in-tree operations (no game logic, no DNN) on a synthetic tree.
func ProfileInTree(spec SyntheticSpec) InTreeProfile {
	if spec.Fanout < 1 || spec.Playouts < 1 {
		panic("perfmodel: invalid synthetic spec")
	}
	if spec.DepthLimit < 1 {
		spec.DepthLimit = 1 << 20
	}
	r := rng.New(spec.Seed)
	tr := tree.New(tree.DefaultConfig(), tree.SuggestCapacity(spec.Playouts, spec.Fanout))
	actions := make([]int, spec.Fanout)
	for i := range actions {
		actions[i] = i
	}
	priors := make([]float32, spec.Fanout)

	var selectTotal, backupTotal time.Duration
	var depthTotal int
	for p := 0; p < spec.Playouts; p++ {
		t0 := time.Now()
		idx := tr.Root()
		depth := 0
		for tr.Node(idx).Expanded() {
			idx = tr.SelectChild(idx)
			depth++
		}
		selectTotal += time.Since(t0)
		depthTotal += depth

		if depth < spec.DepthLimit && !tr.Node(idx).Terminal() {
			var sum float32
			for i := range priors {
				priors[i] = r.Float32() + 1e-3
				sum += priors[i]
			}
			inv := 1 / sum
			for i := range priors {
				priors[i] *= inv
			}
			tr.Expand(idx, actions, priors)
		} else if depth >= spec.DepthLimit {
			tr.MarkTerminal(idx, r.Float64()*2-1)
		}

		t1 := time.Now()
		tr.Backup(idx, r.Float64()*2-1, false)
		backupTotal += time.Since(t1)
	}
	return InTreeProfile{
		TSelect:  selectTotal / time.Duration(spec.Playouts),
		TBackup:  backupTotal / time.Duration(spec.Playouts),
		AvgDepth: float64(depthTotal) / float64(spec.Playouts),
		Nodes:    tr.Allocated(),
	}
}

// ProfileDNN measures the amortized single-threaded inference latency of
// eval over iters calls on random inputs — T_DNN_CPU of Equation 3/5. The
// paper profiles "the DNN filled with random parameters and inputs of the
// same dimensions defined by the target algorithm", which is exactly what a
// freshly initialised network gives.
func ProfileDNN(eval evaluate.Evaluator, inputLen, actions, iters int) time.Duration {
	if iters < 1 {
		panic("perfmodel: ProfileDNN needs iters >= 1")
	}
	r := rng.New(0xD44)
	input := make([]float32, inputLen)
	policy := make([]float32, actions)
	for i := range input {
		input[i] = r.Float32()
	}
	// Warm-up: first call pays one-time allocation (workspace pools).
	eval.Evaluate(input, policy)
	start := time.Now()
	for i := 0; i < iters; i++ {
		input[i%inputLen] = r.Float32() // perturb to defeat value caching
		eval.Evaluate(input, policy)
	}
	return time.Since(start) / time.Duration(iters)
}
