package perfmodel

import "time"

// FindMinV locates a global minimum of a V-sequence T over the index range
// [lo, hi] using Algorithm 4: binary search that compares adjacent probes
// and recurses into the half that must contain a minimum. probe(i) is the
// paper's "Test Run with B = i" — typically a timed single-move search.
//
// The sequence must be a V-sequence: strictly decreasing then strictly
// increasing (either phase may be empty, and the two phases may share one
// equal pair at the valley). Measured latencies are real-valued, so the
// paper's analysis assumes this implicitly; with plateaus inside a phase no
// pairwise-comparison search can guarantee the global minimum. Probes are
// memoized, so the number of distinct test runs is O(log(hi-lo)) — the
// complexity claim of Section 4.2 — which FindMinV reports with the argmin.
func FindMinV(lo, hi int, probe func(int) time.Duration) (argmin int, probes int) {
	if lo > hi {
		panic("perfmodel: FindMinV with empty range")
	}
	memo := make(map[int]time.Duration)
	cached := func(i int) time.Duration {
		if v, ok := memo[i]; ok {
			return v
		}
		v := probe(i)
		memo[i] = v
		probes++
		return v
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if cached(mid) >= cached(mid+1) {
			lo = mid + 1 // minimum is strictly to the right of mid
		} else {
			hi = mid // T[mid] < T[mid+1]: mid is in the non-increasing half or at the valley
		}
	}
	return lo, probes
}

// ArgminLinear is the naive O(N) exploration FindMinV replaces; it is kept
// as the reference oracle for tests and for the ablation benchmark
// comparing the two design-space exploration strategies.
func ArgminLinear(lo, hi int, probe func(int) time.Duration) (argmin int, probes int) {
	if lo > hi {
		panic("perfmodel: ArgminLinear with empty range")
	}
	best := lo
	bestV := probe(lo)
	probes = 1
	for i := lo + 1; i <= hi; i++ {
		v := probe(i)
		probes++
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best, probes
}
