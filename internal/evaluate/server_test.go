package evaluate

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
)

// recordingBackend captures launch times and batch shapes.
type recordingBackend struct {
	mu       sync.Mutex
	launches []time.Time
	sizes    []int
	delay    time.Duration
}

func (b *recordingBackend) RunBatch(batch []*Request) {
	b.mu.Lock()
	b.launches = append(b.launches, time.Now())
	b.sizes = append(b.sizes, len(batch))
	b.mu.Unlock()
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	for i, req := range batch {
		req.Value = float64(i)
	}
}

func (b *recordingBackend) snapshot() ([]time.Time, []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]time.Time(nil), b.launches...), append([]int(nil), b.sizes...)
}

// TestServerDeadlineGuarantee pins the service-level guarantee the
// multi-tenant engine depends on: no submitted request waits longer than
// the flush deadline before its batch launches, even when the threshold is
// never reached.
func TestServerDeadlineGuarantee(t *testing.T) {
	const deadline = 20 * time.Millisecond
	backend := &recordingBackend{}
	srv := NewServer(backend, ServerConfig{Batch: 64, FlushDeadline: deadline})
	cl := srv.NewClient(8)

	// Far fewer requests than the threshold: only the deadline can launch.
	submitted := time.Now()
	for i := 0; i < 3; i++ {
		cl.Submit(&Request{Input: testInput(uint64(i), 8), Policy: make([]float32, 4), Tag: int64(i)})
	}
	for i := 0; i < 3; i++ {
		select {
		case <-cl.Completions():
		case <-time.After(10 * deadline):
			t.Fatal("deadline flush never launched the partial batch")
		}
	}
	launches, sizes := backend.snapshot()
	if len(launches) != 1 || sizes[0] != 3 {
		t.Fatalf("expected one 3-request launch, got %d launches %v", len(launches), sizes)
	}
	wait := launches[0].Sub(submitted)
	if wait < deadline/2 {
		t.Fatalf("batch launched after %v — before the deadline, with threshold unmet", wait)
	}
	// Allow 1x the deadline as scheduler slack (AfterFunc slop on a loaded
	// 1-core CI host), but keep the bound proportional so a mis-scaled
	// timer (e.g. a units bug) cannot slip through.
	if wait > 2*deadline {
		t.Fatalf("request waited %v, deadline is %v", wait, deadline)
	}

	// A request joining a part-aged buffer waits strictly less than the
	// deadline: the timer belongs to the buffer's first request.
	cl.Submit(&Request{Input: testInput(9, 8), Policy: make([]float32, 4)})
	time.Sleep(deadline / 2)
	mid := time.Now()
	cl.Submit(&Request{Input: testInput(10, 8), Policy: make([]float32, 4)})
	<-cl.Completions()
	<-cl.Completions()
	launches, _ = backend.snapshot()
	if got := launches[len(launches)-1].Sub(mid); got > deadline {
		t.Fatalf("late joiner waited %v > deadline %v", got, deadline)
	}

	cl.Close()
	srv.Close()
}

// TestServerThresholdPreemptsDeadline: a full batch launches immediately,
// not at the deadline.
func TestServerThresholdPreemptsDeadline(t *testing.T) {
	backend := &recordingBackend{}
	srv := NewServer(backend, ServerConfig{Batch: 4, FlushDeadline: time.Second})
	cl := srv.NewClient(8)
	start := time.Now()
	for i := 0; i < 4; i++ {
		cl.Submit(&Request{Input: testInput(uint64(i), 8), Policy: make([]float32, 4)})
	}
	for i := 0; i < 4; i++ {
		<-cl.Completions()
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("full batch waited for the deadline: %v", elapsed)
	}
	cl.Close()
	srv.Close()
}

// TestServerRoutesPerClient: completions reach the tenant that submitted
// them, even when one batch mixes many tenants.
func TestServerRoutesPerClient(t *testing.T) {
	dev := accel.NewModel(accel.CostModel{LinkBytesPerSec: 1e12})
	srv := NewServer(DeviceBackend{Dev: dev}, ServerConfig{Batch: 8, FlushDeadline: 5 * time.Millisecond})
	const tenants, perTenant = 4, 25
	clients := make([]*Client, tenants)
	for i := range clients {
		clients[i] = srv.NewClient(perTenant)
	}
	var wg sync.WaitGroup
	for ci, cl := range clients {
		wg.Add(1)
		go func(ci int, cl *Client) {
			defer wg.Done()
			go func() {
				for k := 0; k < perTenant; k++ {
					cl.Submit(&Request{
						Input:  testInput(uint64(ci*1000+k), 36),
						Policy: make([]float32, 9),
						Tag:    int64(ci*1000 + k),
					})
				}
			}()
			seen := make(map[int64]bool)
			for k := 0; k < perTenant; k++ {
				select {
				case req := <-cl.Completions():
					if req.Tag/1000 != int64(ci) {
						t.Errorf("tenant %d received tag %d", ci, req.Tag)
						return
					}
					if seen[req.Tag] {
						t.Errorf("tenant %d: duplicate tag %d", ci, req.Tag)
						return
					}
					seen[req.Tag] = true
				case <-time.After(10 * time.Second):
					t.Errorf("tenant %d timed out after %d completions", ci, k)
					return
				}
			}
		}(ci, cl)
	}
	wg.Wait()
	for _, cl := range clients {
		cl.Close()
	}
	srv.Close()
	if st := srv.Stats(); st.Requests != tenants*perTenant {
		t.Fatalf("served %d requests, want %d", st.Requests, tenants*perTenant)
	}
}

// TestServerConcurrentSubmitFlushClose is the race test for the service's
// lifecycle: many tenants submitting, a flusher hammering Flush, and a
// graceful drain at the end. Run with -race in CI.
func TestServerConcurrentSubmitFlushClose(t *testing.T) {
	backend := &recordingBackend{}
	srv := NewServer(backend, ServerConfig{Batch: 16, FlushDeadline: time.Millisecond, MaxOutstanding: 256})
	const tenants, perTenant = 8, 200
	clients := make([]*Client, tenants)
	for i := range clients {
		clients[i] = srv.NewClient(perTenant)
	}

	stopFlusher := make(chan struct{})
	var flusherDone sync.WaitGroup
	flusherDone.Add(1)
	go func() {
		defer flusherDone.Done()
		for {
			select {
			case <-stopFlusher:
				return
			default:
				srv.Flush()
			}
		}
	}()

	var wg sync.WaitGroup
	var delivered atomic.Int64
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *Client) {
			defer wg.Done()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for k := 0; k < perTenant; k++ {
					<-cl.Completions()
					delivered.Add(1)
				}
			}()
			for k := 0; k < perTenant; k++ {
				cl.Submit(&Request{Input: testInput(uint64(k), 4), Policy: make([]float32, 2)})
			}
			<-done
			cl.Close()
		}(cl)
	}
	wg.Wait()
	close(stopFlusher)
	flusherDone.Wait()
	srv.Close()

	if delivered.Load() != tenants*perTenant {
		t.Fatalf("delivered %d, want %d", delivered.Load(), tenants*perTenant)
	}
	if st := srv.Stats(); st.Requests != tenants*perTenant {
		t.Fatalf("server served %d, want %d", st.Requests, tenants*perTenant)
	}
}

// TestServerBackpressure: Submit blocks once MaxOutstanding requests are in
// the service, and unblocks as completions drain.
func TestServerBackpressure(t *testing.T) {
	backend := &recordingBackend{delay: 20 * time.Millisecond}
	srv := NewServer(backend, ServerConfig{Batch: 2, MaxOutstanding: 4})
	cl := srv.NewClient(16)
	for i := 0; i < 4; i++ {
		cl.Submit(&Request{Input: testInput(uint64(i), 4), Policy: make([]float32, 2)})
	}
	// The 5th submit must block until the first batch completes.
	blocked := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		cl.Submit(&Request{Input: testInput(99, 4), Policy: make([]float32, 2)})
		blocked <- time.Since(start)
	}()
	select {
	case waited := <-blocked:
		if waited < 10*time.Millisecond {
			t.Fatalf("5th submit went through after %v; backpressure absent", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("5th submit never unblocked")
	}
	srv.Flush() // release the odd request
	for i := 0; i < 5; i++ {
		<-cl.Completions()
	}
	cl.Close()
	srv.Close()
}

// TestServerCloseDrainsPartialBatch: Close flushes buffered work and waits
// for in-flight launches, so no request is ever lost on shutdown.
func TestServerCloseDrainsPartialBatch(t *testing.T) {
	backend := &recordingBackend{}
	srv := NewServer(backend, ServerConfig{Batch: 64})
	cl := srv.NewClient(8)
	for i := 0; i < 5; i++ {
		cl.Submit(&Request{Input: testInput(uint64(i), 4), Policy: make([]float32, 2)})
	}
	go srv.Close() // flushes the 5 buffered requests
	for i := 0; i < 5; i++ {
		select {
		case <-cl.Completions():
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not drain the partial batch")
		}
	}
	cl.Close()
}

// TestRequestPoolReuse: pooled requests keep a working done channel across
// acquire/release cycles (the satellite alloc fix) and BatchedSync uses it.
func TestRequestPoolReuse(t *testing.T) {
	req := AcquireRequest()
	if req.done == nil || cap(req.done) != 1 {
		t.Fatalf("pooled request needs a 1-buffered done channel, got %v", req.done)
	}
	req.Tag = 7
	req.done <- struct{}{} // stray signal must be drained on release
	ReleaseRequest(req)

	again := AcquireRequest()
	if again.Tag != 0 || again.Input != nil || again.Ctx != nil {
		t.Fatal("released request not cleared")
	}
	select {
	case <-again.done:
		t.Fatal("stray completion signal survived the pool")
	default:
	}
	ReleaseRequest(again)

	// End-to-end through BatchedSync: many evaluations, one goroutine —
	// every cycle reuses the pooled request and its channel.
	dev := accel.NewModel(accel.CostModel{LinkBytesPerSec: 1e12})
	b := NewBatchedSync(dev, 1)
	policy := make([]float32, 9)
	for i := 0; i < 50; i++ {
		b.Evaluate(testInput(uint64(i), 36), policy)
	}
	b.Close()
}

// TestEvaluatorBackendBoundsConcurrency: no more than Workers evaluations
// run at once, however many batches are in flight.
func TestEvaluatorBackendBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	eval := funcEvaluator(func(input []float32, policy []float32) float64 {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0
	})
	srv := NewServer(&EvaluatorBackend{Eval: eval, Workers: 3}, ServerConfig{Batch: 1, MaxOutstanding: 32})
	cl := srv.NewClient(64)
	const n = 40
	for i := 0; i < n; i++ {
		cl.Submit(&Request{Input: make([]float32, 4), Policy: make([]float32, 2)})
	}
	for i := 0; i < n; i++ {
		<-cl.Completions()
	}
	cl.Close()
	srv.Close()
	if peak.Load() > 3 {
		t.Fatalf("peak concurrency %d exceeds the 3-worker bound", peak.Load())
	}
}

// TestServerPersistentLaunchers: LaunchWorkers mode delivers everything
// and drains cleanly on Close — the no-spawn hot path Pool runs on.
func TestServerPersistentLaunchers(t *testing.T) {
	srv := NewServer(&EvaluatorBackend{Eval: &Random{}, Workers: 2}, ServerConfig{
		Batch:          1,
		MaxOutstanding: 8,
		LaunchWorkers:  2,
	})
	cl := srv.NewClient(8)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			cl.Submit(&Request{Input: testInput(uint64(i), 20), Policy: make([]float32, 10), Tag: int64(i)})
		}
	}()
	seen := make(map[int64]bool)
	for i := 0; i < n; i++ {
		req := <-cl.Completions()
		if seen[req.Tag] {
			t.Fatalf("tag %d delivered twice", req.Tag)
		}
		seen[req.Tag] = true
	}
	cl.Close()
	srv.Close()
	if st := srv.Stats(); st.Requests != n || st.Batches != n {
		t.Fatalf("stats %+v, want %d singleton batches", st, n)
	}
}

// funcEvaluator adapts a function to the Evaluator interface.
type funcEvaluator func(input []float32, policy []float32) float64

func (f funcEvaluator) Evaluate(input []float32, policy []float32) float64 {
	return f(input, policy)
}
