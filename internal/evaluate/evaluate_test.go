package evaluate

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

func testNet(t testing.TB) *nn.Network {
	t.Helper()
	return nn.MustNew(nn.TinyConfig(2, 5, 5, 25), rng.New(1))
}

func testInput(seed uint64, n int) []float32 {
	r := rng.New(seed)
	in := make([]float32, n)
	for i := range in {
		in[i] = r.Float32()
	}
	return in
}

func policyOK(t *testing.T, policy []float32) {
	t.Helper()
	var sum float64
	for _, p := range policy {
		if p < 0 || math.IsNaN(float64(p)) {
			t.Fatal("bad policy entry")
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("policy sums to %v", sum)
	}
}

func TestNNEvaluatorMatchesDirectForward(t *testing.T) {
	net := testNet(t)
	e := NewNN(net)
	in := testInput(2, net.InputLen())
	policy := make([]float32, 25)
	v := e.Evaluate(in, policy)
	ws := nn.NewWorkspace(net)
	wantPol, wantV := net.Forward(ws, in)
	if v != wantV {
		t.Fatalf("value %v, want %v", v, wantV)
	}
	for i := range policy {
		if policy[i] != wantPol[i] {
			t.Fatal("policy mismatch")
		}
	}
}

func testQuantNet(t testing.TB, net *nn.Network) *nn.QuantizedNetwork {
	t.Helper()
	calib := make([][]float32, 16)
	for i := range calib {
		calib[i] = testInput(100+uint64(i), net.InputLen())
	}
	qnet, err := nn.Quantize(net, calib)
	if err != nil {
		t.Fatal(err)
	}
	return qnet
}

func TestQuantizedEvaluatorMatchesDirectForward(t *testing.T) {
	net := testNet(t)
	qnet := testQuantNet(t, net)
	e := NewQuantized(qnet)
	in := testInput(2, net.InputLen())
	policy := make([]float32, 25)
	v := e.Evaluate(in, policy)
	policyOK(t, policy)

	ws := qnet.NewWorkspace(1)
	wantPol := make([]float32, 25)
	wantV := make([]float64, 1)
	qnet.ForwardBatchQuantized(ws, [][]float32{in}, [][]float32{wantPol}, wantV)
	if v != wantV[0] {
		t.Fatalf("value %v, want %v", v, wantV[0])
	}
	for i := range policy {
		if policy[i] != wantPol[i] {
			t.Fatal("policy mismatch")
		}
	}
}

func TestQuantizedEvaluatorConcurrent(t *testing.T) {
	net := testNet(t)
	e := NewQuantized(testQuantNet(t, net))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			in := testInput(seed, net.InputLen())
			policy := make([]float32, 25)
			for i := 0; i < 30; i++ {
				e.Evaluate(in, policy)
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestNNEvaluatorConcurrent(t *testing.T) {
	net := testNet(t)
	e := NewNN(net)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			in := testInput(seed, net.InputLen())
			policy := make([]float32, 25)
			for i := 0; i < 30; i++ {
				e.Evaluate(in, policy)
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestRandomEvaluatorDeterministicAndNormalized(t *testing.T) {
	e := &Random{}
	in := testInput(3, 50)
	p1 := make([]float32, 25)
	p2 := make([]float32, 25)
	v1 := e.Evaluate(in, p1)
	v2 := e.Evaluate(in, p2)
	if v1 != v2 {
		t.Fatal("random evaluator not deterministic for same input")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("policies differ")
		}
	}
	policyOK(t, p1)
}

func TestRandomEvaluatorLatency(t *testing.T) {
	e := &Random{Latency: 2 * time.Millisecond}
	in := testInput(4, 10)
	policy := make([]float32, 5)
	start := time.Now()
	e.Evaluate(in, policy)
	if took := time.Since(start); took < 2*time.Millisecond {
		t.Fatalf("latency not honoured: %v", took)
	}
}

func TestPoolProcessesAllRequests(t *testing.T) {
	e := &Random{}
	p := NewPool(e, 4)
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(&Request{
				Input:  testInput(uint64(i), 20),
				Policy: make([]float32, 10),
				Tag:    int64(i),
			})
		}
	}()
	seen := make(map[int64]bool)
	for i := 0; i < n; i++ {
		req := <-p.Completions()
		if seen[req.Tag] {
			t.Fatalf("tag %d delivered twice", req.Tag)
		}
		seen[req.Tag] = true
		policyOK(t, req.Policy)
	}
	p.Close()
	if _, ok := <-p.Completions(); ok {
		t.Fatal("completions channel should be closed")
	}
}

func TestPoolPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero workers did not panic")
		}
	}()
	NewPool(&Random{}, 0)
}

func TestBatchedSyncReleasesFullBatch(t *testing.T) {
	dev := accel.NewModel(accel.DefaultCostModel())
	b := NewBatchedSync(dev, 4)
	var wg sync.WaitGroup
	results := make([]float64, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			policy := make([]float32, 9)
			results[i] = b.Evaluate(testInput(uint64(i), 36), policy)
			policyOK(t, policy)
		}(i)
	}
	wg.Wait() // deadlocks (test timeout) if the batch never flushes
}

func TestBatchedSyncDrainReleasesPartialBatch(t *testing.T) {
	dev := accel.NewModel(accel.DefaultCostModel())
	b := NewBatchedSync(dev, 8)
	done := make(chan float64, 1)
	go func() {
		policy := make([]float32, 9)
		done <- b.Evaluate(testInput(1, 36), policy)
	}()
	// Give the goroutine time to enqueue, then drain the partial batch.
	time.Sleep(20 * time.Millisecond)
	b.Drain()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not release the blocked caller")
	}
}

func TestBatchedAsyncDeliversAll(t *testing.T) {
	dev := accel.NewModel(accel.DefaultCostModel())
	b := NewBatchedAsync(dev, 3, 16)
	const n = 20 // not a multiple of 3: exercises Flush
	for i := 0; i < n; i++ {
		b.Submit(&Request{
			Input:  testInput(uint64(i), 36),
			Policy: make([]float32, 9),
			Tag:    int64(i),
		})
	}
	b.Flush()
	seen := make(map[int64]bool)
	for i := 0; i < n; i++ {
		select {
		case req := <-b.Completions():
			if seen[req.Tag] {
				t.Fatalf("duplicate completion %d", req.Tag)
			}
			seen[req.Tag] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d completions", i)
		}
	}
	b.Close()
}

func TestBatchedAsyncOverlappedStreams(t *testing.T) {
	// With sub-batches launched on separate goroutines, submitting 4
	// batches of 4 must take well under 4x the serial batch time, because
	// transfers overlap compute (the Model device serialises only compute).
	cost := accel.CostModel{
		LaunchLatency:    4 * time.Millisecond,
		BytesPerSample:   1,
		LinkBytesPerSec:  1e12,
		ComputeBase:      2 * time.Millisecond,
		ComputePerSample: 0,
	}
	dev := accel.NewModel(cost)
	b := NewBatchedAsync(dev, 4, 64)
	start := time.Now()
	for i := 0; i < 16; i++ {
		b.Submit(&Request{Input: testInput(uint64(i), 8), Policy: make([]float32, 4)})
	}
	for i := 0; i < 16; i++ {
		<-b.Completions()
	}
	elapsed := time.Since(start)
	b.Close()
	// Fully serial would be 4*(4+2) = 24ms; with transfers overlapping the
	// serialised compute it should approach 4 + 4*2 = 12ms. Allow generous
	// scheduler slack but require clear evidence of overlap.
	serial := 4 * (cost.LaunchLatency + cost.ComputeBase)
	if elapsed >= serial-4*time.Millisecond {
		t.Fatalf("no overlap: %v elapsed vs %v serial bound", elapsed, serial)
	}
}

func TestHostedDeviceMatchesNetwork(t *testing.T) {
	net := testNet(t)
	cost := accel.DefaultCostModel()
	cost.LaunchLatency = 0
	cost.ComputeBase = 0
	dev := accel.NewHosted(net, cost, 2)
	inputs := [][]float32{testInput(1, net.InputLen()), testInput(2, net.InputLen())}
	policies := [][]float32{make([]float32, 25), make([]float32, 25)}
	values := make([]float64, 2)
	dev.Infer(inputs, policies, values)
	ws := nn.NewWorkspace(net)
	for i := range inputs {
		wantPol, wantV := net.Forward(ws, inputs[i])
		if values[i] != wantV {
			t.Fatalf("value[%d] = %v, want %v", i, values[i], wantV)
		}
		for j := range wantPol {
			if policies[i][j] != wantPol[j] {
				t.Fatalf("policy[%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	m := accel.DefaultCostModel()
	// TransferTime per batch grows with batch; amortized per-sample falls.
	prevAmortized := math.Inf(1)
	for b := 1; b <= 64; b *= 2 {
		tt := m.TransferTime(b)
		amort := float64(tt) / float64(b)
		if amort >= prevAmortized {
			t.Fatalf("amortized transfer not decreasing at B=%d", b)
		}
		prevAmortized = amort
	}
	prev := time.Duration(0)
	for b := 1; b <= 64; b++ {
		ct := m.ComputeTime(b)
		if ct < prev {
			t.Fatalf("compute time not monotonic at B=%d", b)
		}
		prev = ct
	}
}

func TestModelDeviceDeterministic(t *testing.T) {
	dev := accel.NewModel(accel.DefaultCostModel())
	in := testInput(9, 36)
	p1 := [][]float32{make([]float32, 9)}
	p2 := [][]float32{make([]float32, 9)}
	v1 := make([]float64, 1)
	v2 := make([]float64, 1)
	dev.Infer([][]float32{in}, p1, v1)
	dev.Infer([][]float32{in}, p2, v2)
	if v1[0] != v2[0] {
		t.Fatal("model device values differ for same input")
	}
	for i := range p1[0] {
		if p1[0][i] != p2[0][i] {
			t.Fatal("model device policies differ")
		}
	}
	policyOK(t, p1[0])
}
