package evaluate_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/parmcts/parmcts/internal/evaluate"
	"github.com/parmcts/parmcts/internal/game/tictactoe"
	"github.com/parmcts/parmcts/internal/mcts"
	"github.com/parmcts/parmcts/internal/rng"
)

// testInput mirrors the in-package helper; this file lives in an external
// test package to use the mcts engines without an import cycle.
func testInput(seed uint64, n int) []float32 {
	r := rng.New(seed)
	in := make([]float32, n)
	for i := range in {
		in[i] = r.Float32()
	}
	return in
}

// countingEvaluator counts how many real evaluations reach it.
type countingEvaluator struct {
	inner evaluate.Evaluator
	calls atomic.Int64
}

func (c *countingEvaluator) Evaluate(input []float32, policy []float32) float64 {
	c.calls.Add(1)
	return c.inner.Evaluate(input, policy)
}

func TestCachedHitsOnRepeat(t *testing.T) {
	base := &countingEvaluator{inner: &evaluate.Random{}}
	c := evaluate.NewCached(base, 16)
	in := testInput(1, 36)
	p1 := make([]float32, 9)
	p2 := make([]float32, 9)
	v1 := c.Evaluate(in, p1)
	v2 := c.Evaluate(in, p2)
	if v1 != v2 {
		t.Fatal("cached value differs")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("cached policy differs")
		}
	}
	if base.calls.Load() != 1 {
		t.Fatalf("inner called %d times, want 1", base.calls.Load())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestCachedDistinguishesInputs(t *testing.T) {
	// One-hot inputs with different support: both the cache's hash and the
	// Random evaluator's synthetic outputs key off the zero pattern.
	c := evaluate.NewCached(&evaluate.Random{}, 16)
	a := make([]float32, 36)
	b := make([]float32, 36)
	a[0] = 1
	b[7] = 1
	pa := make([]float32, 9)
	pb := make([]float32, 9)
	va := c.Evaluate(a, pa)
	vb := c.Evaluate(b, pb)
	if va == vb {
		same := true
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
			}
		}
		if same {
			t.Fatal("distinct inputs returned identical cached results")
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d", c.Len())
	}
}

func TestCachedEvictionBoundsSize(t *testing.T) {
	c := evaluate.NewCached(&evaluate.Random{}, 8)
	for i := 0; i < 100; i++ {
		in := testInput(uint64(i), 36)
		c.Evaluate(in, make([]float32, 9))
	}
	if c.Len() > 8 {
		t.Fatalf("cache grew to %d entries, cap 8", c.Len())
	}
}

func TestCachedSecondChanceKeepsHotEntries(t *testing.T) {
	c := evaluate.NewCached(&evaluate.Random{}, 4)
	hot := testInput(0, 36)
	pol := make([]float32, 9)
	c.Evaluate(hot, pol)
	for i := 1; i < 50; i++ {
		c.Evaluate(testInput(uint64(i), 36), pol)
		c.Evaluate(hot, pol) // re-touch the hot entry each round
	}
	hits, _ := c.Stats()
	// The hot entry must have survived most rounds: ~49 touch hits.
	if hits < 30 {
		t.Fatalf("hot entry evicted too eagerly: only %d hits", hits)
	}
}

func TestCachedConcurrentAccess(t *testing.T) {
	c := evaluate.NewCached(&evaluate.Random{}, 32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			pol := make([]float32, 9)
			for i := 0; i < 200; i++ {
				c.Evaluate(testInput(seed+uint64(i%10), 36), pol)
			}
		}(uint64(w))
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 8*200 {
		t.Fatalf("stats %d+%d != 1600", hits, misses)
	}
}

func TestCachedPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	evaluate.NewCached(&evaluate.Random{}, 0)
}

func TestCachedSpeedsUpRealSearch(t *testing.T) {
	// Transpositions occur in real game trees: a cached evaluator must
	// serve a meaningful share of a search's evaluations from cache while
	// leaving the search result identical (the evaluator is deterministic).
	g := tictactoe.New()
	base := &countingEvaluator{inner: &evaluate.Random{}}
	c := evaluate.NewCached(base, 4096)
	cfg := mcts.DefaultConfig()
	cfg.Playouts = 500
	e := mcts.NewSerial(cfg, c)
	st := g.NewInitial()
	dist := make([]float32, 9)
	e.Search(st, dist)
	e.Search(st, dist) // second move search: same root, full reuse
	hits, misses := c.Stats()
	if hits == 0 {
		t.Fatal("no cache hits across two searches of the same position")
	}
	if base.calls.Load() != int64(misses) {
		t.Fatalf("inner calls %d != misses %d", base.calls.Load(), misses)
	}
}

func TestCachedShardedExplicitShardCount(t *testing.T) {
	c := evaluate.NewCachedSharded(&evaluate.Random{}, 1024, 64)
	if c.Shards() != 64 {
		t.Fatalf("Shards = %d, want 64", c.Shards())
	}
	// shards clamp to capacity so the size bound stays exact
	c = evaluate.NewCachedSharded(&evaluate.Random{}, 8, 64)
	if c.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", c.Shards())
	}
	for i := 0; i < 200; i++ {
		c.Evaluate(testInput(uint64(i), 36), make([]float32, 9))
	}
	if c.Len() > 8 {
		t.Fatalf("sharded cache grew to %d entries, cap 8", c.Len())
	}
}

// TestCachedShardedConcurrentEviction hammers a small sharded cache from
// many goroutines (forcing constant eviction) while other goroutines read
// the aggregate Stats and Len. Run under -race this is the concurrency
// safety net for the lock-striped design.
func TestCachedShardedConcurrentEviction(t *testing.T) {
	base := &countingEvaluator{inner: &evaluate.Random{}}
	c := evaluate.NewCachedSharded(base, 64, 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Stats()
					c.Len()
				}
			}
		}()
	}
	const perWorker = 300
	var work sync.WaitGroup
	for w := 0; w < 8; w++ {
		work.Add(1)
		go func(seed uint64) {
			defer work.Done()
			pol := make([]float32, 9)
			for i := 0; i < perWorker; i++ {
				c.Evaluate(testInput(seed*1000+uint64(i%150), 36), pol)
			}
		}(uint64(w))
	}
	work.Wait()
	close(stop)
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 8*perWorker {
		t.Fatalf("stats %d+%d != %d", hits, misses, 8*perWorker)
	}
	if c.Len() > 64 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

// constEvaluator returns a fixed value (one "network version") and counts
// how many evaluations reach it.
type constEvaluator struct {
	value float64
	calls atomic.Int64
}

func (c *constEvaluator) Evaluate(input []float32, policy []float32) float64 {
	c.calls.Add(1)
	for i := range policy {
		policy[i] = 1 / float32(len(policy))
	}
	return c.value
}

// TestCacheViewsDoNotMixVersions: the same position cached under two live
// model versions must stay two separate entries, each answered by its own
// version's network.
func TestCacheViewsDoNotMixVersions(t *testing.T) {
	c := evaluate.NewCached(&constEvaluator{value: 0}, 128)
	inc := &constEvaluator{value: 1}
	cand := &constEvaluator{value: 2}
	v1 := c.View(1, inc)
	v2 := c.View(2, cand)

	pol := make([]float32, 9)
	in := testInput(7, 36)
	if got := v1.Evaluate(in, pol); got != 1 {
		t.Fatalf("v1 evaluation = %v, want 1", got)
	}
	if got := v2.Evaluate(in, pol); got != 2 {
		t.Fatalf("v2 evaluation = %v, want 2 (served the incumbent's cached entry?)", got)
	}
	// Repeats hit the per-version entries without touching the networks.
	for i := 0; i < 5; i++ {
		if got := v1.Evaluate(in, pol); got != 1 {
			t.Fatalf("v1 repeat = %v", got)
		}
		if got := v2.Evaluate(in, pol); got != 2 {
			t.Fatalf("v2 repeat = %v", got)
		}
	}
	if inc.calls.Load() != 1 || cand.calls.Load() != 1 {
		t.Fatalf("repeats missed the cache: %d/%d inner calls", inc.calls.Load(), cand.calls.Load())
	}
	if c.LenVersion(1) != 1 || c.LenVersion(2) != 1 {
		t.Fatalf("per-version entry counts = %d/%d, want 1/1", c.LenVersion(1), c.LenVersion(2))
	}
}

// TestCacheResetVersionIsScoped: retiring one model's entries must not
// evict another's — the promotion-without-collateral-eviction satellite.
func TestCacheResetVersionIsScoped(t *testing.T) {
	c := evaluate.NewCached(&constEvaluator{value: 0}, 256)
	inc := &constEvaluator{value: 1}
	cand := &constEvaluator{value: 2}
	v1 := c.View(1, inc)
	v2 := c.View(2, cand)

	pol := make([]float32, 9)
	const positions = 40
	for i := 0; i < positions; i++ {
		in := testInput(uint64(i), 36)
		v1.Evaluate(in, pol)
		v2.Evaluate(in, pol)
	}
	if c.LenVersion(1) != positions || c.LenVersion(2) != positions {
		t.Fatalf("seeded %d/%d entries, want %d/%d", c.LenVersion(1), c.LenVersion(2), positions, positions)
	}

	c.ResetVersion(1) // the old incumbent retires after a promotion
	if c.LenVersion(1) != 0 {
		t.Fatalf("version 1 kept %d entries after ResetVersion", c.LenVersion(1))
	}
	if c.LenVersion(2) != positions {
		t.Fatalf("ResetVersion(1) also evicted version 2: %d entries left, want %d", c.LenVersion(2), positions)
	}
	// The surviving version still answers from cache.
	before := cand.calls.Load()
	for i := 0; i < positions; i++ {
		if got := v2.Evaluate(testInput(uint64(i), 36), pol); got != 2 {
			t.Fatalf("post-reset v2 evaluation = %v", got)
		}
	}
	if cand.calls.Load() != before {
		t.Fatalf("surviving version re-evaluated %d positions after an unrelated reset", cand.calls.Load()-before)
	}
	// Full Reset still clears everything.
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Reset left %d entries", c.Len())
	}
}

// TestCacheResetVersionLeavesRingConsistent: vacated ring slots from a
// version-scoped reset must be compacted by the clock hand, not break the
// capacity bound.
func TestCacheResetVersionLeavesRingConsistent(t *testing.T) {
	c := evaluate.NewCachedSharded(&constEvaluator{value: 0}, 32, 1)
	v1 := c.View(1, &constEvaluator{value: 1})
	v2 := c.View(2, &constEvaluator{value: 2})
	pol := make([]float32, 9)
	for i := 0; i < 16; i++ {
		v1.Evaluate(testInput(uint64(i), 36), pol)
		v2.Evaluate(testInput(uint64(1000+i), 36), pol)
	}
	c.ResetVersion(1)
	// Refill well past capacity: eviction must walk over the stale slots.
	for i := 0; i < 80; i++ {
		v2.Evaluate(testInput(uint64(2000+i), 36), pol)
	}
	if c.Len() > 32 {
		t.Fatalf("cache exceeded capacity after version reset: %d", c.Len())
	}
}
