// Package evaluate provides the node-evaluation backends
// ("neural_network_simulate" in Algorithms 2 and 3) in the four flavours
// the paper's schemes need:
//
//   - NN: synchronous on-thread inference — one shared-tree worker
//     evaluating its own leaf on its own CPU thread.
//   - Pool: an asynchronous worker pool over any synchronous evaluator —
//     the local-tree scheme's N inference threads fed by FIFO pipes.
//   - BatchedSync: the accelerator queue with threshold flushing for the
//     shared-tree + GPU configuration (batch size is always the worker
//     count; Section 3.3).
//   - BatchedAsync: the accelerator queue with sub-batch size B and
//     stream-style overlapped submissions for the local-tree + GPU
//     configuration (the subject of the Algorithm 4 batch-size search).
//
// All three are thin clients of the multi-tenant inference Server (see
// server.go): each private backend is a one-tenant deployment of the same
// shared batcher that multi-game drivers share across G searches. A Random
// evaluator with a configurable synthetic latency supports the design-time
// profiling runs, which the paper performs with a DNN "filled with random
// parameters".
package evaluate

import (
	"sync"
	"time"

	"github.com/parmcts/parmcts/internal/accel"
	"github.com/parmcts/parmcts/internal/nn"
	"github.com/parmcts/parmcts/internal/rng"
)

// Request is one in-flight node evaluation. The requester allocates Policy;
// the evaluator fills Policy and Value. Tag carries engine-private context
// (the local-tree master stores the leaf's node index there).
type Request struct {
	Input  []float32
	Policy []float32
	Value  float64
	Tag    int64
	// Version identifies the network version that serves (or served) this
	// request. It is OWNED by the routing layer: Client.Submit stamps it on
	// every submission — the client's pinned version if Pin was called, the
	// server's current version otherwise — so requesters read it after
	// completion to learn which model produced the evaluation, but never
	// write it themselves (reused requests would otherwise carry stale
	// versions across a hot swap).
	Version int64
	// Ctx carries arbitrary requester context through the evaluator
	// (e.g. the cloned game state needed to expand the leaf on completion).
	Ctx interface{}

	// client is the tenant the Server routes the completion back to.
	client *Client
	// done is the private completion signal of sync-mode (blocking) callers;
	// it is a 1-buffered reusable channel owned by the request pool.
	done chan struct{}
}

// Evaluator evaluates one state synchronously on the caller's goroutine.
type Evaluator interface {
	// Evaluate fills policy and returns the value estimate for input.
	Evaluate(input []float32, policy []float32) float64
}

// Async is the asynchronous interface used by the local-tree master thread.
type Async interface {
	// Submit enqueues a request; completion is announced on Completions.
	Submit(*Request)
	// Completions delivers finished requests in completion order.
	Completions() <-chan *Request
	// Flush forces any internally buffered requests (partial accelerator
	// batches) to be processed.
	Flush()
	// Idle reports whether no completion can arrive without a Flush —
	// i.e. every submitted request is sitting in an internal buffer and
	// nothing is executing. The local-tree master checks this before
	// blocking, to avoid deadlocking on a partial batch.
	Idle() bool
	// Close releases worker goroutines. No Submit may follow.
	Close()
}

// NN evaluates with the real network, sharing one immutable parameter set
// across any number of calling goroutines via pooled workspaces.
type NN struct {
	net *nn.Network
	ws  sync.Pool
}

// NewNN creates a synchronous network evaluator.
func NewNN(net *nn.Network) *NN {
	e := &NN{net: net}
	e.ws.New = func() interface{} { return nn.NewWorkspace(net) }
	return e
}

// Evaluate implements Evaluator.
func (e *NN) Evaluate(input []float32, policy []float32) float64 {
	ws := e.ws.Get().(*nn.Workspace)
	defer e.ws.Put(ws)
	pol, val := e.net.Forward(ws, input)
	copy(policy, pol)
	return val
}

// Quantized evaluates with an int8-quantized network — the synchronous
// counterpart of NN for a calibrated nn.QuantizedNetwork. Like NN it shares
// one immutable parameter set across goroutines via pooled workspaces; each
// Evaluate runs a batch-of-one int8 forward pass. It exists so a quantized
// model version can serve behind the exact same EvaluatorBackend/cache-view
// plumbing as its fp32 source — in particular so an arena gate can race the
// two through one live server before the int8 path is trusted.
type Quantized struct {
	qnet *nn.QuantizedNetwork
	ws   sync.Pool
}

// quantScratch bundles a workspace with batch-of-one slice headers so
// Evaluate allocates nothing per call.
type quantScratch struct {
	ws       *nn.QuantWorkspace
	inputs   [1][]float32
	policies [1][]float32
	values   [1]float64
}

// NewQuantized creates a synchronous evaluator over a calibrated quantized
// network.
func NewQuantized(qnet *nn.QuantizedNetwork) *Quantized {
	e := &Quantized{qnet: qnet}
	e.ws.New = func() interface{} { return &quantScratch{ws: qnet.NewWorkspace(1)} }
	return e
}

// Evaluate implements Evaluator.
func (e *Quantized) Evaluate(input []float32, policy []float32) float64 {
	s := e.ws.Get().(*quantScratch)
	defer e.ws.Put(s)
	s.inputs[0], s.policies[0] = input, policy
	e.qnet.ForwardBatchQuantized(s.ws, s.inputs[:], s.policies[:], s.values[:])
	s.inputs[0], s.policies[0] = nil, nil
	return s.values[0]
}

// Random produces deterministic pseudo-random priors and near-zero values,
// burning a configurable synthetic latency. It stands in for the DNN during
// design-time profiling (T_DNN is then fully controlled) and in engine
// correctness tests where network quality is irrelevant.
type Random struct {
	// Latency is the busy-wait cost per evaluation (0 = free).
	Latency time.Duration
}

// Evaluate implements Evaluator.
func (e *Random) Evaluate(input []float32, policy []float32) float64 {
	if e.Latency > 0 {
		deadline := time.Now().Add(e.Latency)
		for time.Now().Before(deadline) {
		}
	}
	var h uint64 = 0xA5A5A5A5
	for i := 0; i < len(input); i += 11 {
		if input[i] != 0 {
			h = h*0x100000001B3 + uint64(i)
		}
	}
	r := rng.New(h)
	var sum float32
	for i := range policy {
		p := r.Float32() + 1e-3
		policy[i] = p
		sum += p
	}
	inv := 1 / sum
	for i := range policy {
		policy[i] *= inv
	}
	return r.Float64()*0.2 - 0.1
}

// Pool runs a synchronous evaluator on a fixed set of worker goroutines —
// the local-tree scheme's inference thread pool (Figure 2a). It is a
// one-tenant deployment of the shared Server: batch size 1, an
// EvaluatorBackend bounding concurrency to the worker count, and
// backpressure standing in for the bounded FIFO pipe.
type Pool struct {
	srv *Server
	cl  *Client
}

// NewPool starts a pool evaluating with eval on up to workers concurrent
// evaluations.
func NewPool(eval Evaluator, workers int) *Pool {
	if workers < 1 {
		panic("evaluate: pool needs at least one worker")
	}
	srv := NewServer(&EvaluatorBackend{Eval: eval, Workers: workers}, ServerConfig{
		Batch:          1,
		MaxOutstanding: workers * 4,
		// Persistent launchers: one long-lived goroutine per inference
		// thread, exactly the seed pool's topology — no per-playout spawn.
		LaunchWorkers: workers,
	})
	return &Pool{srv: srv, cl: srv.NewClient(workers * 4)}
}

// Submit implements Async.
func (p *Pool) Submit(req *Request) { p.cl.Submit(req) }

// Completions implements Async.
func (p *Pool) Completions() <-chan *Request { return p.cl.Completions() }

// Flush implements Async (the pool buffers nothing: batch size is 1).
func (p *Pool) Flush() {}

// Idle implements Async: the pool never buffers, so every submitted request
// eventually completes without intervention.
func (p *Pool) Idle() bool { return false }

// Close implements Async.
func (p *Pool) Close() {
	p.cl.Close()
	p.srv.Close()
}

// BatchedSync adapts a batched accelerator device to the synchronous
// Evaluator interface: callers block until the accelerator queue reaches
// the threshold and the whole batch is submitted. In the shared-tree + GPU
// configuration the threshold equals the number of workers, so "the
// selection processes are parallel, resulting in the nearly simultaneous
// arrival of all inference tasks" (Section 3.3). It is a sync-mode client
// of a one-tenant Server; requests come from the shared request pool.
type BatchedSync struct {
	srv *Server
	cl  *Client
}

// NewBatchedSync creates the adapter with the given flush threshold and no
// flush deadline (classic threshold-only accelerator queue).
func NewBatchedSync(dev accel.Device, threshold int) *BatchedSync {
	return NewBatchedSyncDeadline(dev, threshold, 0)
}

// NewBatchedSyncDeadline creates the adapter with a flush deadline: partial
// batches launch at most deadline after their oldest request arrived. Used
// when workers from several co-tenant games share one queue and a straggler
// game can no longer fill the threshold on its own.
func NewBatchedSyncDeadline(dev accel.Device, threshold int, deadline time.Duration) *BatchedSync {
	srv := NewServer(DeviceBackend{Dev: dev}, ServerConfig{
		Batch:         threshold,
		FlushDeadline: deadline,
	})
	return &BatchedSync{srv: srv, cl: srv.NewSyncClient()}
}

// Evaluate implements Evaluator.
func (b *BatchedSync) Evaluate(input []float32, policy []float32) float64 {
	req := AcquireRequest()
	req.Input, req.Policy = input, policy
	b.cl.Submit(req)
	req.wait()
	v := req.Value
	ReleaseRequest(req)
	return v
}

// Server exposes the underlying service (shared across co-tenant engines).
func (b *BatchedSync) Server() *Server { return b.srv }

// Drain flushes a partial batch, releasing any blocked callers. Needed at
// the end of a move when fewer than threshold workers remain.
func (b *BatchedSync) Drain() { b.srv.Flush() }

// Close drains the underlying service. No Evaluate may follow.
func (b *BatchedSync) Close() {
	b.cl.Close()
	b.srv.Close()
}

// BatchedAsync adapts a batched accelerator device to the Async interface
// with sub-batch size B: every B submissions launch one device call on its
// own goroutine ("CUDA stream"), so transfers and compute overlap with the
// master thread's in-tree operations exactly as in Section 3.3. It is an
// async client of a one-tenant Server.
type BatchedAsync struct {
	srv *Server
	cl  *Client
}

// NewBatchedAsync creates the adapter with sub-batch size batch.
// maxOutstanding bounds the requests in flight (backpressure): Submit
// blocks once 2*maxOutstanding requests are buffered or executing.
func NewBatchedAsync(dev accel.Device, batch, maxOutstanding int) *BatchedAsync {
	if maxOutstanding < batch {
		maxOutstanding = batch
	}
	srv := NewServer(DeviceBackend{Dev: dev}, ServerConfig{
		Batch:          batch,
		MaxOutstanding: maxOutstanding * 2,
	})
	return &BatchedAsync{srv: srv, cl: srv.NewClient(maxOutstanding * 2)}
}

// Idle implements Async.
func (b *BatchedAsync) Idle() bool { return b.cl.Idle() }

// Submit implements Async.
func (b *BatchedAsync) Submit(req *Request) { b.cl.Submit(req) }

// Completions implements Async.
func (b *BatchedAsync) Completions() <-chan *Request { return b.cl.Completions() }

// Flush implements Async: submits any partial batch immediately.
func (b *BatchedAsync) Flush() { b.cl.Flush() }

// Server exposes the underlying service.
func (b *BatchedAsync) Server() *Server { return b.srv }

// Close implements Async.
func (b *BatchedAsync) Close() {
	b.cl.Close()
	b.srv.Close()
}
